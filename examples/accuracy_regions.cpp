// Accuracy regions walkthrough: shows, for one similarity function of one
// block, how the paper's region-accuracy machinery works — the fitted
// threshold, the equal-width and k-means region profiles, and where the
// region decisions differ from the threshold decisions.
//
//   $ ./build/examples/accuracy_regions [name] [function]

#include <iostream>

#include "core/decision.h"
#include "core/weber.h"
#include "ml/splitter.h"

using namespace weber;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "cohen";
  const std::string function = argc > 2 ? argv[2] : "F2";

  auto data = corpus::SyntheticWebGenerator(corpus::Www05Config()).Generate();
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const corpus::Block* block = nullptr;
  for (const corpus::Block& b : data->dataset.blocks) {
    if (b.query == name) block = &b;
  }
  if (block == nullptr) {
    std::cerr << "no block named '" << name << "'\n";
    return 1;
  }

  // Features and one similarity matrix.
  extract::FeatureExtractor extractor(&data->gazetteer, {});
  std::vector<extract::PageInput> pages;
  for (const corpus::Document& d : block->documents) {
    pages.push_back({d.url, d.text});
  }
  auto bundles = extractor.ExtractBlock(pages, block->query);
  if (!bundles.ok()) {
    std::cerr << bundles.status() << "\n";
    return 1;
  }
  auto fns = core::MakeFunctions({function});
  if (!fns.ok()) {
    std::cerr << fns.status() << "\n";
    return 1;
  }
  graph::SimilarityMatrix sims =
      core::ComputeSimilarityMatrix(*fns->front(), *bundles);

  // Training pairs (the paper's 10%).
  Rng rng(99);
  auto train_pairs = ml::SampleTrainingPairs(block->num_documents(), 0.10, &rng);
  std::vector<ml::LabeledSimilarity> training;
  for (const auto& [a, b] : train_pairs) {
    training.push_back(
        {sims.Get(a, b), block->entity_labels[a] == block->entity_labels[b]});
  }
  std::cout << "function " << function << " on block '" << name << "': "
            << training.size() << " labeled training pairs\n\n";

  // Fit all three criteria.
  core::ThresholdCriterion threshold;
  auto eq = core::RegionCriterion::EqualWidth(10);
  auto km = core::RegionCriterion::KMeans(8);
  for (core::DecisionCriterion* c :
       std::initializer_list<core::DecisionCriterion*>{&threshold, eq.get(),
                                                       km.get()}) {
    if (auto st = c->Fit(training, &rng); !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  std::cout << "threshold criterion: t* = "
            << FormatDouble(threshold.threshold(), 4)
            << ", train accuracy = "
            << FormatDouble(threshold.train_accuracy(), 4) << "\n";
  std::cout << "equal-width regions train accuracy = "
            << FormatDouble(eq->train_accuracy(), 4) << "\n";
  std::cout << "k-means regions train accuracy     = "
            << FormatDouble(km->train_accuracy(), 4) << "\n\n";

  // Region profile (k-means).
  std::cout << "k-means region profile (accuracy of link existence):\n";
  const ml::RegionAccuracyModel& model = km->model();
  for (int r = 0; r < model.regions().num_regions(); ++r) {
    double acc = model.region_accuracies()[r];
    std::cout << "  center " << FormatDouble(model.regions().center(r), 3)
              << "  samples " << model.region_sample_counts()[r] << "\t"
              << std::string(static_cast<int>(acc * 40 + 0.5), '#') << " "
              << FormatDouble(acc, 3)
              << (acc >= 0.5 ? "  -> link" : "  -> no link") << "\n";
  }

  // Where do the rules disagree on the full block, and who is right?
  long long disagreements = 0, region_right = 0, threshold_right = 0;
  const int n = block->num_documents();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v = sims.Get(i, j);
      bool td = threshold.Decide(v);
      bool rd = km->Decide(v);
      if (td == rd) continue;
      ++disagreements;
      bool truth = block->entity_labels[i] == block->entity_labels[j];
      if (rd == truth) ++region_right;
      if (td == truth) ++threshold_right;
    }
  }
  std::cout << "\npairs where threshold and k-means regions disagree: "
            << disagreements << "\n";
  if (disagreements > 0) {
    std::cout << "  region rule correct on " << region_right
              << ", threshold rule correct on " << threshold_right << "\n"
              << (region_right > threshold_right
                      ? "  -> the region model captures structure the "
                        "threshold cannot (the paper's Section IV-A point)\n"
                      : "  -> for this function the threshold is adequate\n");
  }
  return 0;
}

// Web people search: the paper's motivating scenario end to end.
//
// Generates a WWW'05-scale corpus, resolves every ambiguous name with the
// full framework, prints a per-name summary and shows how a user query
// ("which person is this page about?") is answered — including a TF-IDF
// search over the block via the library's inverted index.
//
//   $ ./build/examples/web_people_search [name]

#include <iostream>

#include "core/weber.h"
#include "text/inverted_index.h"

using namespace weber;

int main(int argc, char** argv) {
  const std::string wanted = argc > 1 ? argv[1] : "cohen";

  std::cout << "generating WWW'05-like corpus...\n";
  auto data = corpus::SyntheticWebGenerator(corpus::Www05Config()).Generate();
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }

  core::ResolverOptions options;  // full framework defaults
  auto resolver = core::EntityResolver::Create(&data->gazetteer, options);
  if (!resolver.ok()) {
    std::cerr << resolver.status() << "\n";
    return 1;
  }

  // Resolve every name; report quality.
  TablePrinter table;
  table.SetHeader({"name", "pages", "true persons", "found", "chosen graph",
                   "Fp", "F", "Rand"});
  Rng rng(2026);
  const corpus::Block* focus = nullptr;
  graph::Clustering focus_clusters;
  for (const corpus::Block& block : data->dataset.blocks) {
    auto resolution = resolver->ResolveBlock(block, &rng);
    if (!resolution.ok()) {
      std::cerr << "failed on '" << block.query << "': " << resolution.status()
                << "\n";
      return 1;
    }
    auto report = eval::Evaluate(block.GroundTruth(), resolution->clustering);
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    table.AddRow({block.query, std::to_string(block.num_documents()),
                  std::to_string(block.NumEntities()),
                  std::to_string(resolution->clustering.num_clusters()),
                  resolution->chosen_source,
                  FormatDouble(report->fp_measure, 4),
                  FormatDouble(report->f_measure, 4),
                  FormatDouble(report->rand_index, 4)});
    if (block.query == wanted) {
      focus = &block;
      focus_clusters = resolution->clustering;
    }
  }
  table.Print(std::cout);

  if (focus == nullptr) {
    std::cout << "\n(no block named '" << wanted
              << "'; pass one of the names above)\n";
    return 0;
  }

  // "People search" view for the chosen name: one result group per found
  // person, with a retrieval example.
  std::cout << "\n== people search results for query '" << focus->query
            << "' ==\n";
  auto groups = focus_clusters.Groups();
  for (size_t c = 0; c < groups.size() && c < 6; ++c) {
    std::cout << "person " << c + 1 << " (" << groups[c].size()
              << " pages): ";
    for (size_t i = 0; i < groups[c].size() && i < 5; ++i) {
      std::cout << focus->documents[groups[c][i]].id << " ";
    }
    if (groups[c].size() > 5) std::cout << "...";
    std::cout << "\n";
  }
  if (groups.size() > 6) {
    std::cout << "(" << groups.size() - 6 << " more persons)\n";
  }

  // Keyword search within the block, scoped to the biggest person.
  text::InvertedIndex index;
  for (const corpus::Document& d : focus->documents) {
    index.AddDocument(d.text);
  }
  if (auto st = index.Finalize(); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  // Use the dominant person's most frequent topic words as a demo query:
  // just search for the person's name plus "research".
  std::string query = focus->query + " research";
  auto hits = index.Search(query, 5);
  if (hits.ok()) {
    std::cout << "\ntop pages for query \"" << query << "\":\n";
    for (const auto& hit : *hits) {
      std::cout << "  " << focus->documents[hit.doc].id << "  (person "
                << focus_clusters.label(hit.doc) + 1 << ", score "
                << FormatDouble(hit.score, 3) << ")\n";
    }
  }
  return 0;
}

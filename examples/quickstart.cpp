// Quickstart: generate a small labeled Web corpus, resolve one ambiguous
// name with the full framework, and print the resulting clusters with
// quality metrics.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "core/weber.h"

using namespace weber;

int main() {
  // 1. A small synthetic Web-people-search corpus: 3 ambiguous names, 30
  //    pages each, plus the entity dictionary for extraction.
  corpus::SyntheticWebGenerator generator(corpus::TinyConfig());
  auto data = generator.Generate();
  if (!data.ok()) {
    std::cerr << "generation failed: " << data.status() << "\n";
    return 1;
  }
  const corpus::Dataset& dataset = data->dataset;
  std::cout << "dataset '" << dataset.name << "': " << dataset.num_blocks()
            << " blocks, " << dataset.TotalDocuments() << " documents\n\n";

  // 2. Configure the resolver: all ten similarity functions, region-based
  //    decision criteria, best-graph combination, transitive closure.
  core::ResolverOptions options;
  auto resolver = core::EntityResolver::Create(&data->gazetteer, options);
  if (!resolver.ok()) {
    std::cerr << "resolver setup failed: " << resolver.status() << "\n";
    return 1;
  }

  // 3. Resolve every block and evaluate against the ground truth.
  Rng rng(42);
  for (const corpus::Block& block : dataset.blocks) {
    auto resolution = resolver->ResolveBlock(block, &rng);
    if (!resolution.ok()) {
      std::cerr << "resolution failed: " << resolution.status() << "\n";
      return 1;
    }
    auto report = eval::Evaluate(block.GroundTruth(), resolution->clustering);
    if (!report.ok()) {
      std::cerr << "evaluation failed: " << report.status() << "\n";
      return 1;
    }
    std::cout << "name '" << block.query << "': " << block.num_documents()
              << " pages, " << block.NumEntities() << " true persons, "
              << resolution->clustering.num_clusters() << " found\n"
              << "  chosen decision graph: " << resolution->chosen_source
              << "\n"
              << "  Fp=" << FormatDouble(report->fp_measure, 4)
              << "  F=" << FormatDouble(report->f_measure, 4)
              << "  Rand=" << FormatDouble(report->rand_index, 4) << "\n";

    // Show the found clusters for the first block.
    if (&block == &dataset.blocks.front()) {
      auto groups = resolution->clustering.Groups();
      for (size_t c = 0; c < groups.size(); ++c) {
        std::cout << "  cluster " << c << ":";
        for (int doc : groups[c]) {
          std::cout << " " << block.documents[doc].id;
        }
        std::cout << "\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}

// Streaming resolution: pages arrive one at a time (a crawl), and the
// incremental resolver assigns each to a person on arrival — the regime
// where batch Algorithm 1 would have to re-run per page. Compares the
// final streaming partition against the batch resolver on the same block.
//
//   $ ./build/examples/streaming_resolution

#include <iostream>

#include "core/weber.h"
#include "ml/splitter.h"

using namespace weber;

int main() {
  auto data = corpus::SyntheticWebGenerator(corpus::Www05Config()).Generate();
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const corpus::Block& block = data->dataset.blocks[3];  // "cohen"
  std::cout << "streaming " << block.num_documents() << " pages for '"
            << block.query << "' (" << block.NumEntities()
            << " real persons)\n\n";

  // Shared preprocessing.
  extract::FeatureExtractor extractor(&data->gazetteer, {});
  std::vector<extract::PageInput> pages;
  for (const corpus::Document& d : block.documents) {
    pages.push_back({d.url, d.text});
  }
  auto bundles = extractor.ExtractBlock(pages, block.query);
  if (!bundles.ok()) {
    std::cerr << bundles.status() << "\n";
    return 1;
  }
  Rng rng(77);
  auto training =
      ml::SampleTrainingPairs(block.num_documents(), 0.10, &rng, 10);

  // Streaming pass.
  auto incremental = core::IncrementalResolver::Create({});
  if (!incremental.ok()) {
    std::cerr << incremental.status() << "\n";
    return 1;
  }
  if (auto st = incremental->CalibrateThreshold(*bundles, block.entity_labels,
                                                training);
      !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "calibrated match threshold: "
            << FormatDouble(incremental->threshold(), 4) << "\n";
  int new_clusters = 0;
  for (int d = 0; d < block.num_documents(); ++d) {
    int before = static_cast<int>(incremental->clusters().size());
    int assigned = incremental->Add((*bundles)[d]);
    if (static_cast<int>(incremental->clusters().size()) > before) {
      ++new_clusters;
    }
    if (d < 8) {
      std::cout << "  page " << block.documents[d].id << " -> person "
                << assigned + 1
                << (static_cast<int>(incremental->clusters().size()) > before
                        ? " (new)"
                        : "")
                << "\n";
    }
  }
  std::cout << "  ... (" << block.num_documents() - 8 << " more pages)\n"
            << "opened " << new_clusters << " person clusters while "
            << "streaming\n\n";

  // Compare against batch Algorithm 1 on the identical inputs.
  auto batch = core::EntityResolver::Create(&data->gazetteer, {});
  if (!batch.ok()) {
    std::cerr << batch.status() << "\n";
    return 1;
  }
  auto batch_result =
      batch->ResolveExtracted(*bundles, block.entity_labels, training, &rng);
  if (!batch_result.ok()) {
    std::cerr << batch_result.status() << "\n";
    return 1;
  }

  auto truth = block.GroundTruth();
  auto streaming_report =
      eval::Evaluate(truth, incremental->CurrentClustering());
  auto batch_report = eval::Evaluate(truth, batch_result->clustering);
  if (!streaming_report.ok() || !batch_report.ok()) {
    std::cerr << "evaluation failed\n";
    return 1;
  }
  TablePrinter table;
  table.SetHeader({"mode", "clusters", "Fp", "F", "Rand"});
  table.AddRow({"streaming (one pass)",
                std::to_string(incremental->CurrentClustering().num_clusters()),
                FormatDouble(streaming_report->fp_measure, 4),
                FormatDouble(streaming_report->f_measure, 4),
                FormatDouble(streaming_report->rand_index, 4)});
  table.AddRow({"batch (Algorithm 1)",
                std::to_string(batch_result->clustering.num_clusters()),
                FormatDouble(batch_report->fp_measure, 4),
                FormatDouble(batch_report->f_measure, 4),
                FormatDouble(batch_report->rand_index, 4)});
  table.Print(std::cout);
  std::cout << "\nThe batch resolver sees all pairwise evidence at once and "
               "wins; the streaming pass never revisits an assignment but "
               "stays close — and handles each new page in milliseconds.\n";
  return 0;
}

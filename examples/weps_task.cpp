// The WePS clustering task: generate the WePS-2-like dataset, persist it to
// disk in the WEBER text format (as a real evaluation would distribute it),
// reload it, and run the paper's full method — demonstrating the dataset
// round-trip API together with the resolver.
//
//   $ ./build/examples/weps_task [output-dir]

#include <iostream>

#include "core/weber.h"

using namespace weber;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string dataset_path = dir + "/weps2_synthetic.weber.txt";

  // 1. Generate and persist.
  auto data = corpus::SyntheticWebGenerator(corpus::WepsConfig()).Generate();
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  if (auto st = corpus::SaveDatasetToFile(data->dataset, dataset_path);
      !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << data->dataset.TotalDocuments() << " documents ("
            << data->dataset.num_blocks() << " ambiguous names) to "
            << dataset_path << "\n";

  // 2. Reload (as a task participant would).
  auto reloaded = corpus::LoadDatasetFromFile(dataset_path);
  if (!reloaded.ok()) {
    std::cerr << reloaded.status() << "\n";
    return 1;
  }

  // 3. Resolve every name with the full method and report the WePS metrics.
  core::ExperimentRunner runner(&*reloaded, &data->gazetteer, /*num_runs=*/3,
                                /*seed=*/0xEE);
  if (auto st = runner.Prepare(); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  core::ExperimentConfig config;
  config.label = "C10 (full method)";
  auto result = runner.Run(config);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  TablePrinter table;
  table.SetHeader({"name", "Fp", "F", "Rand", "B-cubed F"});
  for (size_t b = 0; b < reloaded->blocks.size(); ++b) {
    const auto& r = result->per_block[b];
    table.AddRow({reloaded->blocks[b].query, FormatDouble(r.fp_measure, 4),
                  FormatDouble(r.f_measure, 4),
                  FormatDouble(r.rand_index, 4),
                  FormatDouble(r.bcubed_f, 4)});
  }
  table.AddSeparator();
  table.AddRow({"MEAN", FormatDouble(result->overall.fp_measure, 4),
                FormatDouble(result->overall.f_measure, 4),
                FormatDouble(result->overall.rand_index, 4),
                FormatDouble(result->overall.bcubed_f, 4)});
  table.Print(std::cout);
  std::cout << "\n(the paper reports Fp 0.7880 for its method on WePS, with "
               "the WePS-2 winner at 0.7800)\n";
  return 0;
}

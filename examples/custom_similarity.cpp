// Extending the framework: plugging a user-defined similarity function into
// the resolution pipeline alongside the standard ones.
//
// The paper's framework is deliberately open: any symmetric [0,1]-valued
// pairwise function benefits from the same region-accuracy treatment. This
// example defines a "document length affinity" function (pages about the
// same person often have similar lengths — weak but non-trivial signal) and
// measures how much the combination framework gains from it.
//
//   $ ./build/examples/custom_similarity

#include <cmath>
#include <iostream>

#include "core/decision.h"
#include "core/weber.h"
#include "ml/splitter.h"

using namespace weber;

namespace {

/// A user-defined similarity: TF-IDF mass affinity. Uses only public API.
class LengthAffinity final : public core::SimilarityFunction {
 public:
  std::string_view name() const override { return "LEN"; }
  std::string_view description() const override {
    return "Document vector mass / ratio affinity";
  }
  double Compute(const extract::FeatureBundle& a,
                 const extract::FeatureBundle& b) const override {
    // Sparse pages have few distinct indexed terms; similar term counts
    // give values near 1.
    double la = static_cast<double>(a.tfidf.size());
    double lb = static_cast<double>(b.tfidf.size());
    if (la == 0.0 && lb == 0.0) return 1.0;
    if (la == 0.0 || lb == 0.0) return 0.0;
    return std::min(la, lb) / std::max(la, lb);
  }
};

}  // namespace

int main() {
  auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const corpus::Block& block = data->dataset.blocks[0];

  // Extract features once.
  extract::FeatureExtractor extractor(&data->gazetteer, {});
  std::vector<extract::PageInput> pages;
  for (const corpus::Document& d : block.documents) {
    pages.push_back({d.url, d.text});
  }
  auto bundles = extractor.ExtractBlock(pages, block.query);
  if (!bundles.ok()) {
    std::cerr << bundles.status() << "\n";
    return 1;
  }

  // Evaluate the custom function on its own, with the framework's decision
  // machinery: similarity matrix -> fitted criteria -> decision graph ->
  // transitive closure.
  LengthAffinity custom;
  graph::SimilarityMatrix sims =
      core::ComputeSimilarityMatrix(custom, *bundles);
  Rng rng(7);
  auto train_pairs = ml::SampleTrainingPairs(block.num_documents(), 0.2, &rng);
  std::vector<ml::LabeledSimilarity> training;
  for (const auto& [a, b] : train_pairs) {
    training.push_back(
        {sims.Get(a, b), block.entity_labels[a] == block.entity_labels[b]});
  }
  auto criterion = core::RegionCriterion::KMeans(6);
  if (auto st = criterion->Fit(training, &rng); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  const int n = block.num_documents();
  graph::DecisionGraph decisions(n, 0, 1);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      decisions.Set(i, j, criterion->Decide(sims.Get(i, j)) ? 1 : 0);
    }
  }
  auto clusters = graph::TransitiveClosure(decisions);
  auto report = eval::Evaluate(block.GroundTruth(), clusters);
  std::cout << "custom function '" << custom.name() << "' ("
            << custom.description() << ") alone on block '" << block.query
            << "':\n  Fp = " << FormatDouble(report->fp_measure, 4)
            << "  (train accuracy of its k-means regions: "
            << FormatDouble(criterion->train_accuracy(), 4) << ")\n\n";

  // Compare the standard framework with and without strong functions, to
  // show where a weak custom signal would matter.
  for (auto [label, names] :
       {std::pair<const char*, std::vector<std::string>>{
            "standard F1..F10", core::kSubsetI10},
        {"weak subset F2+F5", {"F2", "F5"}}}) {
    core::ResolverOptions options;
    options.function_names = names;
    auto resolver = core::EntityResolver::Create(&data->gazetteer, options);
    if (!resolver.ok()) {
      std::cerr << resolver.status() << "\n";
      return 1;
    }
    Rng block_rng(13);
    auto resolution = resolver->ResolveBlock(block, &block_rng);
    if (!resolution.ok()) {
      std::cerr << resolution.status() << "\n";
      return 1;
    }
    auto rep = eval::Evaluate(block.GroundTruth(), resolution->clustering);
    std::cout << label << ": Fp = " << FormatDouble(rep->fp_measure, 4)
              << " (chose " << resolution->chosen_source << ")\n";
  }
  std::cout << "\nTo register a custom function inside EntityResolver, add "
               "it to the vector returned by MakeStandardFunctions, or drive "
               "the pipeline manually as above — every stage is public "
               "API.\n";
  return 0;
}

#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace weber {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t;
  t.SetHeader({"name", "Fp"});
  t.AddRow({"cohen", "0.8991"});
  t.AddRow({"ng", "0.88"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  // Header present, rule under header, right-aligned numeric column.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("cohen  0.8991"), std::string::npos);
  EXPECT_NE(out.find("ng       0.88"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorProducesRule) {
  TablePrinter t;
  t.SetHeader({"a"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::ostringstream os;
  t.Print(os);
  // Two rules: one under the header, one for the separator.
  std::string out = os.str();
  size_t first = out.find('-');
  ASSERT_NE(first, std::string::npos);
  size_t second = out.find('-', out.find('\n', first));
  EXPECT_NE(second, std::string::npos);
}

TEST(TablePrinterTest, LeftAlignOption) {
  TablePrinter t;
  t.SetHeader({"k", "v"});
  t.SetAlign(1, TablePrinter::Align::kLeft);
  t.AddRow({"key", "x"});
  t.AddRow({"k2", "longer"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("key  x"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutputSkipsSeparatorsAndPadding) {
  TablePrinter t;
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddSeparator();
  t.AddRow({"3", "4"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, ShortRowsPadWithEmptyCells) {
  TablePrinter t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace weber

#include "text/sparse_vector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace weber {
namespace text {
namespace {

TEST(SparseVectorTest, FromPairsSortsAndMergesDuplicates) {
  SparseVector v = SparseVector::FromPairs({{5, 1.0}, {2, 2.0}, {5, 3.0}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].id, 2);
  EXPECT_DOUBLE_EQ(v.entries()[0].weight, 2.0);
  EXPECT_EQ(v.entries()[1].id, 5);
  EXPECT_DOUBLE_EQ(v.entries()[1].weight, 4.0);
}

TEST(SparseVectorTest, FromCountsCountsOccurrences) {
  SparseVector v = SparseVector::FromCounts({3, 1, 3, 3, 1});
  EXPECT_DOUBLE_EQ(v.GetWeight(1), 2.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(3), 3.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(2), 0.0);
}

TEST(SparseVectorTest, FromMapMatchesFromPairs) {
  std::unordered_map<TermId, double> m = {{1, 0.5}, {9, 2.5}};
  SparseVector a = SparseVector::FromMap(m);
  SparseVector b = SparseVector::FromPairs({{9, 2.5}, {1, 0.5}});
  EXPECT_EQ(a, b);
}

TEST(SparseVectorTest, EmptyVectorBasics) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.Norm(), 0.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.Dot(v), 0.0);
  EXPECT_EQ(v.OverlapCount(v), 0);
  EXPECT_EQ(v.UnionCount(v), 0);
}

TEST(SparseVectorTest, DotProductOfDisjointIsZero) {
  SparseVector a = SparseVector::FromPairs({{1, 1.0}, {3, 2.0}});
  SparseVector b = SparseVector::FromPairs({{2, 5.0}, {4, 5.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_EQ(a.OverlapCount(b), 0);
  EXPECT_EQ(a.UnionCount(b), 4);
}

TEST(SparseVectorTest, DotProductKnownValue) {
  SparseVector a = SparseVector::FromPairs({{1, 2.0}, {2, 3.0}});
  SparseVector b = SparseVector::FromPairs({{2, 4.0}, {3, 5.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 12.0);
  EXPECT_EQ(a.OverlapCount(b), 1);
  EXPECT_EQ(a.UnionCount(b), 3);
}

TEST(SparseVectorTest, NormAndNormalize) {
  SparseVector v = SparseVector::FromPairs({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  SparseVector unit = v.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(unit.GetWeight(0), 0.6, 1e-12);
  EXPECT_NEAR(unit.GetWeight(1), 0.8, 1e-12);
}

TEST(SparseVectorTest, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  EXPECT_EQ(v.Normalized(), v);
}

TEST(SparseVectorTest, ScaleMultipliesWeights) {
  SparseVector v = SparseVector::FromPairs({{0, 1.0}, {7, -2.0}});
  v.Scale(3.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(0), 3.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(7), -6.0);
}

TEST(SparseVectorTest, GetWeightBinarySearch) {
  SparseVector v = SparseVector::FromCounts({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(v.GetWeight(10), 1.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(50), 1.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(35), 0.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(0), 0.0);
  EXPECT_DOUBLE_EQ(v.GetWeight(99), 0.0);
}

// Property suite over random vectors.
class SparseVectorProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static SparseVector RandomVector(Rng* rng, int max_id, int entries) {
    std::vector<SparseVector::Entry> e;
    for (int i = 0; i < entries; ++i) {
      e.push_back({static_cast<TermId>(rng->UniformInt(0, max_id)),
                   rng->UniformDouble(0.1, 5.0)});
    }
    return SparseVector::FromPairs(std::move(e));
  }
};

TEST_P(SparseVectorProperty, DotIsSymmetricAndCauchySchwarzHolds) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    SparseVector a = RandomVector(&rng, 40, 15);
    SparseVector b = RandomVector(&rng, 40, 15);
    EXPECT_DOUBLE_EQ(a.Dot(b), b.Dot(a));
    EXPECT_LE(std::abs(a.Dot(b)), a.Norm() * b.Norm() + 1e-9);
  }
}

TEST_P(SparseVectorProperty, UnionOverlapInclusionExclusion) {
  Rng rng(GetParam() ^ 0x55);
  for (int trial = 0; trial < 50; ++trial) {
    SparseVector a = RandomVector(&rng, 30, 10);
    SparseVector b = RandomVector(&rng, 30, 10);
    EXPECT_EQ(a.UnionCount(b) + a.OverlapCount(b),
              static_cast<int>(a.size() + b.size()));
    EXPECT_EQ(a.OverlapCount(b), b.OverlapCount(a));
  }
}

TEST_P(SparseVectorProperty, EntriesAreSortedUnique) {
  Rng rng(GetParam() ^ 0xAA);
  SparseVector v = RandomVector(&rng, 20, 60);
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_LT(v.entries()[i - 1].id, v.entries()[i].id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVectorProperty,
                         ::testing::Values(1, 7, 99, 12345));

}  // namespace
}  // namespace text
}  // namespace weber

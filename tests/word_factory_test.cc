#include "corpus/word_factory.h"

#include <gtest/gtest.h>

#include <set>

namespace weber {
namespace corpus {
namespace {

TEST(WordFactoryTest, WordsAreDistinctAcrossIndices) {
  std::set<std::string> words;
  for (int i = 0; i < 5000; ++i) words.insert(WordFactory::Word(i));
  EXPECT_EQ(words.size(), 5000u);
}

TEST(WordFactoryTest, WordsAreDeterministic) {
  EXPECT_EQ(WordFactory::Word(123), WordFactory::Word(123));
  EXPECT_NE(WordFactory::Word(123), WordFactory::Word(124));
}

TEST(WordFactoryTest, WordsAreLowercaseAlphabetic) {
  for (int i = 0; i < 200; ++i) {
    for (char c : WordFactory::Word(i)) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << WordFactory::Word(i);
    }
  }
}

TEST(WordFactoryTest, FirstNamesCycleWithSuffix) {
  std::string base = WordFactory::FirstName(0);
  std::string cycled = WordFactory::FirstName(64);
  EXPECT_EQ(cycled, base + "2");
  EXPECT_NE(WordFactory::FirstName(0), WordFactory::FirstName(1));
}

TEST(WordFactoryTest, LastNamesAreDistinctWithinPool) {
  std::set<std::string> names;
  for (int i = 0; i < 48; ++i) names.insert(WordFactory::LastName(i));
  EXPECT_EQ(names.size(), 48u);
}

TEST(WordFactoryTest, ConceptPhrasesAreMultiWord) {
  for (int i = 0; i < 50; ++i) {
    std::string phrase = WordFactory::ConceptPhrase(i);
    EXPECT_NE(phrase.find(' '), std::string::npos) << phrase;
  }
}

TEST(WordFactoryTest, ConceptPhrasesAreDistinct) {
  std::set<std::string> phrases;
  for (int i = 0; i < 2000; ++i) phrases.insert(WordFactory::ConceptPhrase(i));
  EXPECT_EQ(phrases.size(), 2000u);
}

TEST(WordFactoryTest, OrganizationsHaveSuffix) {
  std::set<std::string> orgs;
  for (int i = 0; i < 300; ++i) {
    std::string org = WordFactory::Organization(i);
    EXPECT_NE(org.find(' '), std::string::npos) << org;
    orgs.insert(org);
  }
  EXPECT_EQ(orgs.size(), 300u);
}

TEST(WordFactoryTest, LocationsAreDistinct) {
  std::set<std::string> locs;
  for (int i = 0; i < 300; ++i) locs.insert(WordFactory::Location(i));
  EXPECT_EQ(locs.size(), 300u);
}

TEST(WordFactoryTest, DomainsLookLikeDomains) {
  for (int i = 0; i < 100; ++i) {
    std::string domain = WordFactory::Domain(i);
    EXPECT_NE(domain.find('.'), std::string::npos) << domain;
  }
}

TEST(WordFactoryTest, HostingDomainsCycleThroughSmallPool) {
  std::set<std::string> hosts;
  for (int i = 0; i < 100; ++i) hosts.insert(WordFactory::HostingDomain(i));
  EXPECT_LE(hosts.size(), 8u);
  EXPECT_EQ(WordFactory::HostingDomain(0), WordFactory::HostingDomain(8));
}

TEST(WordFactoryTest, FunctionWordsAreStopwordLike) {
  const auto& words = WordFactory::FunctionWords();
  EXPECT_GT(words.size(), 20u);
  EXPECT_NE(std::find(words.begin(), words.end(), "the"), words.end());
}

}  // namespace
}  // namespace corpus
}  // namespace weber

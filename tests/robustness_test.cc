// Fuzz-style robustness tests: random and adversarial bytes through every
// parsing/processing entry point. Nothing may crash; failures must arrive
// as Status, and outputs must respect their documented invariants.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "core/experiment.h"
#include "corpus/dataset_io.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "corpus/resolution_io.h"
#include "extract/feature_extractor.h"
#include "extract/url.h"
#include "text/analyzer.h"
#include "text/person_name.h"
#include "text/phonetic.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace weber {
namespace {

std::string RandomBytes(Rng* rng, int max_len) {
  int len = rng->UniformInt(0, max_len);
  std::string s;
  s.reserve(len);
  for (int i = 0; i < len; ++i) {
    s += static_cast<char>(rng->UniformInt(1, 255));  // no NULs in text APIs
  }
  return s;
}

std::string RandomAsciiish(Rng* rng, int max_len) {
  int len = rng->UniformInt(0, max_len);
  std::string s;
  constexpr std::string_view alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 .,;:-'\"\n\t#@/\\()[]{}";
  for (int i = 0; i < len; ++i) {
    s += alphabet[rng->UniformUint64(alphabet.size())];
  }
  return s;
}

class RobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RobustnessTest, TextPipelineNeverMisbehaves) {
  Rng rng(GetParam());
  text::Tokenizer tokenizer;
  text::Analyzer analyzer;
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes =
        trial % 2 == 0 ? RandomBytes(&rng, 400) : RandomAsciiish(&rng, 400);
    for (const std::string& token : tokenizer.Tokenize(bytes)) {
      EXPECT_FALSE(token.empty());
      EXPECT_LE(token.size(), 64u);
    }
    for (const std::string& term : analyzer.Analyze(bytes)) {
      EXPECT_GE(term.size(), 2u);
    }
  }
}

TEST_P(RobustnessTest, StringMeasuresStayBoundedOnGarbage) {
  Rng rng(GetParam() ^ 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a = RandomBytes(&rng, 60);
    std::string b = RandomBytes(&rng, 60);
    for (double v :
         {text::LevenshteinSimilarity(a, b), text::JaroSimilarity(a, b),
          text::JaroWinklerSimilarity(a, b), text::NgramSimilarity(a, b),
          text::LongestCommonSubstringRatio(a, b),
          text::NameCompatibilitySimilarity(a, b),
          text::PhoneticNameSimilarity(a, b)}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    std::string sx = text::Soundex(a);
    EXPECT_TRUE(sx.empty() || sx.size() == 4u);
  }
}

TEST_P(RobustnessTest, UrlParserNeverCrashes) {
  Rng rng(GetParam() ^ 2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string url = RandomAsciiish(&rng, 80);
    auto parsed = extract::ParseUrl(url);
    if (parsed.ok()) {
      EXPECT_FALSE(parsed->host.empty());
      EXPECT_FALSE(parsed->path.empty());
    }
    double sim = extract::UrlSimilarity(url, RandomAsciiish(&rng, 80));
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

TEST_P(RobustnessTest, DatasetLoaderRejectsGarbageGracefully) {
  Rng rng(GetParam() ^ 3);
  for (int trial = 0; trial < 100; ++trial) {
    std::stringstream ss(RandomAsciiish(&rng, 500));
    auto loaded = corpus::LoadDataset(ss);
    // Either a parse error or an (unlikely) valid tiny dataset; never UB.
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(RobustnessTest, DatasetLoaderSurvivesMutatedValidInput) {
  Rng rng(GetParam() ^ 4);
  // Start from a valid serialization and corrupt single bytes.
  corpus::Dataset dataset;
  dataset.name = "mutate";
  corpus::Block block;
  block.query = "q";
  block.documents.push_back({"q/0", "http://x.com", "some text\nmore text"});
  block.documents.push_back({"q/1", "http://y.com", "other"});
  block.entity_labels = {0, 1};
  dataset.blocks.push_back(block);
  std::stringstream base;
  ASSERT_TRUE(corpus::SaveDataset(dataset, base).ok());
  const std::string original = base.str();

  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = original;
    int pos = rng.UniformInt(0, static_cast<int>(mutated.size()) - 1);
    mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    std::stringstream ss(mutated);
    auto loaded = corpus::LoadDataset(ss);  // must not crash
    if (loaded.ok()) {
      EXPECT_LE(loaded->num_blocks(), 2);
    }
  }
}

TEST_P(RobustnessTest, ResolutionLoaderSurvivesGarbage) {
  Rng rng(GetParam() ^ 5);
  for (int trial = 0; trial < 100; ++trial) {
    std::stringstream ss(RandomAsciiish(&rng, 300));
    auto loaded = corpus::LoadResolutions(ss);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(RobustnessTest, FeatureExtractionOnGarbagePages) {
  Rng rng(GetParam() ^ 6);
  extract::Gazetteer gazetteer;
  gazetteer.Add("alice cohen", extract::EntityType::kPerson);
  gazetteer.Add("acme corp", extract::EntityType::kOrganization);
  gazetteer.Add("entity resolution", extract::EntityType::kConcept, 1.5);
  gazetteer.Build();
  extract::FeatureExtractor extractor(&gazetteer, {});
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<extract::PageInput> pages;
    int n = rng.UniformInt(1, 5);
    for (int i = 0; i < n; ++i) {
      pages.push_back({RandomAsciiish(&rng, 40), RandomBytes(&rng, 300)});
    }
    auto bundles = extractor.ExtractBlock(pages, "cohen");
    ASSERT_TRUE(bundles.ok()) << bundles.status();
    for (const auto& fb : *bundles) {
      EXPECT_GE(fb.informativeness, 0.0);
      EXPECT_LE(fb.informativeness, 1.0);
    }
  }
}

TEST_P(RobustnessTest, PersonNameParserOnGarbage) {
  Rng rng(GetParam() ^ 7);
  for (int trial = 0; trial < 300; ++trial) {
    text::PersonName name = text::ParsePersonName(RandomBytes(&rng, 50));
    if (!name.first.empty()) EXPECT_FALSE(name.last.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         ::testing::Values(0xF1, 0xF2, 0xF3));

// --- Truncation sweep: a valid serialized dataset cut at every line
// boundary must come back as ok or a Status, never crash. ---

TEST(TruncationSweepTest, EveryPrefixLoadsOrFailsCleanly) {
  corpus::Dataset dataset;
  dataset.name = "trunc";
  for (int b = 0; b < 3; ++b) {
    corpus::Block block;
    block.query = "q" + std::to_string(b);
    for (int d = 0; d < 3; ++d) {
      block.documents.push_back({block.query + "/" + std::to_string(d),
                                 "http://site" + std::to_string(d) + ".com",
                                 "line one\nline two\nline three"});
      block.entity_labels.push_back(d % 2);
    }
    dataset.blocks.push_back(block);
  }
  std::stringstream full;
  ASSERT_TRUE(corpus::SaveDataset(dataset, full).ok());
  const std::string text = full.str();

  std::vector<size_t> boundaries;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') boundaries.push_back(i + 1);
  }
  ASSERT_GT(boundaries.size(), 10u);

  for (size_t end : boundaries) {
    const std::string prefix = text.substr(0, end);
    {
      std::stringstream ss(prefix);
      auto loaded = corpus::LoadDataset(ss);  // strict: must not crash
      if (!loaded.ok()) {
        EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
      }
    }
    {
      // Lenient mode on the same prefix: also crash-free, and whatever
      // loads is a usable dataset.
      std::stringstream ss(prefix);
      corpus::LoadOptions options;
      options.lenient = true;
      corpus::LoadReport report;
      auto loaded = corpus::LoadDataset(ss, options, &report);
      if (loaded.ok()) {
        EXPECT_EQ(loaded->num_blocks(), report.blocks_loaded);
        for (const corpus::Block& block : loaded->blocks) {
          EXPECT_EQ(block.documents.size(), block.entity_labels.size());
        }
      }
    }
  }
}

// --- Chaos test: every fault point armed at once; the full pipeline must
// complete, report failures as Status only, and account for the damage in
// RunHealth. ---

TEST(ChaosTest, FullPipelineSurvivesAllFaultPointsArmed) {
  faults::ScopedFaultClearance clearance;
  faults::FaultInjector& fi = faults::FaultInjector::Instance();
  fi.Seed(0xC4A05);

  auto generated =
      corpus::SyntheticWebGenerator(corpus::TinyConfig(0x31)).Generate();
  ASSERT_TRUE(generated.ok()) << generated.status();
  corpus::SyntheticData data = std::move(generated).ValueOrDie();

  // dataset_io.read: transient I/O errors (fail twice, then succeed) are
  // absorbed by the retry loop.
  const std::string path = ::testing::TempDir() + "/weber_chaos_dataset.txt";
  ASSERT_TRUE(corpus::SaveDatasetToFile(data.dataset, path).ok());
  ASSERT_TRUE(fi.ArmFromSpec("dataset_io.read=ioerror:1:0:2").ok());
  corpus::LoadOptions load_options;
  load_options.max_retries = 3;
  load_options.retry_backoff_ms = 1;
  corpus::LoadReport report;
  auto loaded = corpus::LoadDatasetFromFile(path, load_options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(loaded->TotalDocuments(), data.dataset.TotalDocuments());

  // Now the resolution-time points, all at once.
  ASSERT_TRUE(fi.ArmFromSpec("similarity.compute=nan:0.2;"
                             "resolver.train=error:0.3;"
                             "clustering.run=error:0.5")
                  .ok());

  core::ExperimentRunner runner(&data.dataset, &data.gazetteer, /*runs=*/2,
                                /*seed=*/0xBEEF);
  ASSERT_TRUE(runner.Prepare().ok());
  core::ExperimentConfig config;
  config.label = "chaos";
  auto results = runner.RunAll({config});
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 1u);

  const core::RunHealth& health = (*results)[0].health;
  EXPECT_TRUE(health.AnyDegradation());
  EXPECT_GT(health.value_violations, 0);
  // At 20% NaN most functions quarantine before any criterion is fitted, so
  // the damage shows up as quarantines and/or skipped criteria.
  EXPECT_GT(health.quarantined_functions + health.skipped_criteria, 0);
  EXPECT_GT(health.clustering_fallbacks + health.degraded_blocks +
                health.quarantined_functions,
            0);

  // resolver.train faults alone (healthy similarities): criterion fits are
  // skipped, yet every block still resolves.
  fi.DisarmAll();
  ASSERT_TRUE(fi.ArmFromSpec("resolver.train=error:0.5").ok());
  core::ExperimentRunner train_runner(&data.dataset, &data.gazetteer, 1,
                                      0xBEEF);
  ASSERT_TRUE(train_runner.Prepare().ok());
  auto train_results = train_runner.RunAll({config});
  ASSERT_TRUE(train_results.ok()) << train_results.status();
  EXPECT_GT((*train_results)[0].health.skipped_criteria, 0);

  // The damage report survives into the experiment JSON.
  std::ostringstream os;
  ASSERT_TRUE(
      core::WriteExperimentJson(data.dataset, 2, *results, os).ok());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"health\":"), std::string::npos);
  EXPECT_NE(json.find("\"value_violations\":"), std::string::npos);
  EXPECT_EQ(json.find("\"value_violations\":0,"), std::string::npos);

  // Disarmed, the same pipeline is pristine again.
  fi.DisarmAll();
  core::ExperimentRunner clean_runner(&data.dataset, &data.gazetteer, 2,
                                      0xBEEF);
  ASSERT_TRUE(clean_runner.Prepare().ok());
  auto clean = clean_runner.RunAll({config});
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_FALSE((*clean)[0].health.AnyDegradation());
}

}  // namespace
}  // namespace weber

// Fuzz-style robustness tests: random and adversarial bytes through every
// parsing/processing entry point. Nothing may crash; failures must arrive
// as Status, and outputs must respect their documented invariants.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/random.h"
#include "corpus/dataset_io.h"
#include "corpus/resolution_io.h"
#include "extract/feature_extractor.h"
#include "extract/url.h"
#include "text/analyzer.h"
#include "text/person_name.h"
#include "text/phonetic.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace weber {
namespace {

std::string RandomBytes(Rng* rng, int max_len) {
  int len = rng->UniformInt(0, max_len);
  std::string s;
  s.reserve(len);
  for (int i = 0; i < len; ++i) {
    s += static_cast<char>(rng->UniformInt(1, 255));  // no NULs in text APIs
  }
  return s;
}

std::string RandomAsciiish(Rng* rng, int max_len) {
  int len = rng->UniformInt(0, max_len);
  std::string s;
  const char* alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 .,;:-'\"\n\t#@/\\()[]{}";
  for (int i = 0; i < len; ++i) {
    s += alphabet[rng->UniformUint64(58)];
  }
  return s;
}

class RobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RobustnessTest, TextPipelineNeverMisbehaves) {
  Rng rng(GetParam());
  text::Tokenizer tokenizer;
  text::Analyzer analyzer;
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes =
        trial % 2 == 0 ? RandomBytes(&rng, 400) : RandomAsciiish(&rng, 400);
    for (const std::string& token : tokenizer.Tokenize(bytes)) {
      EXPECT_FALSE(token.empty());
      EXPECT_LE(token.size(), 64u);
    }
    for (const std::string& term : analyzer.Analyze(bytes)) {
      EXPECT_GE(term.size(), 2u);
    }
  }
}

TEST_P(RobustnessTest, StringMeasuresStayBoundedOnGarbage) {
  Rng rng(GetParam() ^ 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a = RandomBytes(&rng, 60);
    std::string b = RandomBytes(&rng, 60);
    for (double v :
         {text::LevenshteinSimilarity(a, b), text::JaroSimilarity(a, b),
          text::JaroWinklerSimilarity(a, b), text::NgramSimilarity(a, b),
          text::LongestCommonSubstringRatio(a, b),
          text::NameCompatibilitySimilarity(a, b),
          text::PhoneticNameSimilarity(a, b)}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    std::string sx = text::Soundex(a);
    EXPECT_TRUE(sx.empty() || sx.size() == 4u);
  }
}

TEST_P(RobustnessTest, UrlParserNeverCrashes) {
  Rng rng(GetParam() ^ 2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string url = RandomAsciiish(&rng, 80);
    auto parsed = extract::ParseUrl(url);
    if (parsed.ok()) {
      EXPECT_FALSE(parsed->host.empty());
      EXPECT_FALSE(parsed->path.empty());
    }
    double sim = extract::UrlSimilarity(url, RandomAsciiish(&rng, 80));
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

TEST_P(RobustnessTest, DatasetLoaderRejectsGarbageGracefully) {
  Rng rng(GetParam() ^ 3);
  for (int trial = 0; trial < 100; ++trial) {
    std::stringstream ss(RandomAsciiish(&rng, 500));
    auto loaded = corpus::LoadDataset(ss);
    // Either a parse error or an (unlikely) valid tiny dataset; never UB.
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(RobustnessTest, DatasetLoaderSurvivesMutatedValidInput) {
  Rng rng(GetParam() ^ 4);
  // Start from a valid serialization and corrupt single bytes.
  corpus::Dataset dataset;
  dataset.name = "mutate";
  corpus::Block block;
  block.query = "q";
  block.documents.push_back({"q/0", "http://x.com", "some text\nmore text"});
  block.documents.push_back({"q/1", "http://y.com", "other"});
  block.entity_labels = {0, 1};
  dataset.blocks.push_back(block);
  std::stringstream base;
  ASSERT_TRUE(corpus::SaveDataset(dataset, base).ok());
  const std::string original = base.str();

  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = original;
    int pos = rng.UniformInt(0, static_cast<int>(mutated.size()) - 1);
    mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    std::stringstream ss(mutated);
    auto loaded = corpus::LoadDataset(ss);  // must not crash
    if (loaded.ok()) {
      EXPECT_LE(loaded->num_blocks(), 2);
    }
  }
}

TEST_P(RobustnessTest, ResolutionLoaderSurvivesGarbage) {
  Rng rng(GetParam() ^ 5);
  for (int trial = 0; trial < 100; ++trial) {
    std::stringstream ss(RandomAsciiish(&rng, 300));
    auto loaded = corpus::LoadResolutions(ss);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(RobustnessTest, FeatureExtractionOnGarbagePages) {
  Rng rng(GetParam() ^ 6);
  extract::Gazetteer gazetteer;
  gazetteer.Add("alice cohen", extract::EntityType::kPerson);
  gazetteer.Add("acme corp", extract::EntityType::kOrganization);
  gazetteer.Add("entity resolution", extract::EntityType::kConcept, 1.5);
  gazetteer.Build();
  extract::FeatureExtractor extractor(&gazetteer, {});
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<extract::PageInput> pages;
    int n = rng.UniformInt(1, 5);
    for (int i = 0; i < n; ++i) {
      pages.push_back({RandomAsciiish(&rng, 40), RandomBytes(&rng, 300)});
    }
    auto bundles = extractor.ExtractBlock(pages, "cohen");
    ASSERT_TRUE(bundles.ok()) << bundles.status();
    for (const auto& fb : *bundles) {
      EXPECT_GE(fb.informativeness, 0.0);
      EXPECT_LE(fb.informativeness, 1.0);
    }
  }
}

TEST_P(RobustnessTest, PersonNameParserOnGarbage) {
  Rng rng(GetParam() ^ 7);
  for (int trial = 0; trial < 300; ++trial) {
    text::PersonName name = text::ParsePersonName(RandomBytes(&rng, 50));
    if (!name.first.empty()) EXPECT_FALSE(name.last.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         ::testing::Values(0xF1, 0xF2, 0xF3));

}  // namespace
}  // namespace weber

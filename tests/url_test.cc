#include "extract/url.h"

#include <gtest/gtest.h>

namespace weber {
namespace extract {
namespace {

TEST(ParseUrlTest, FullUrl) {
  auto r = ParseUrl("https://people.epfl.ch/~yerva/index.html?x=1#top");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scheme, "https");
  EXPECT_EQ(r->host, "people.epfl.ch");
  EXPECT_EQ(r->registrable_domain, "epfl.ch");
  EXPECT_EQ(r->path, "/~yerva/index.html");
  EXPECT_EQ(r->port, 0);
}

TEST(ParseUrlTest, SchemelessDefaultsToHttp) {
  auto r = ParseUrl("www.example.com/page");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scheme, "http");
  EXPECT_EQ(r->host, "www.example.com");
}

TEST(ParseUrlTest, HostOnlyGetsRootPath) {
  auto r = ParseUrl("http://example.com");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, "/");
}

TEST(ParseUrlTest, PortAndUserinfo) {
  auto r = ParseUrl("http://user@host.org:8080/a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->host, "host.org");
  EXPECT_EQ(r->port, 8080);
  EXPECT_EQ(r->path, "/a");
}

TEST(ParseUrlTest, HostIsLowercased) {
  auto r = ParseUrl("HTTP://WWW.EPFL.CH/X");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->host, "www.epfl.ch");
  EXPECT_EQ(r->path, "/X");  // path case is preserved
}

TEST(ParseUrlTest, RejectsEmptyAndHostless) {
  EXPECT_FALSE(ParseUrl("").ok());
  EXPECT_FALSE(ParseUrl("   ").ok());
  EXPECT_FALSE(ParseUrl("http:///path-only").ok());
}

TEST(RegistrableDomainTest, StandardTlds) {
  EXPECT_EQ(RegistrableDomain("people.epfl.ch"), "epfl.ch");
  EXPECT_EQ(RegistrableDomain("epfl.ch"), "epfl.ch");
  EXPECT_EQ(RegistrableDomain("a.b.c.example.com"), "example.com");
  EXPECT_EQ(RegistrableDomain("localhost"), "localhost");
}

TEST(RegistrableDomainTest, SecondLevelPublicSuffixes) {
  EXPECT_EQ(RegistrableDomain("www.bbc.co.uk"), "bbc.co.uk");
  EXPECT_EQ(RegistrableDomain("lab.u-tokyo.ac.jp"), "u-tokyo.ac.jp");
  EXPECT_EQ(RegistrableDomain("shop.example.com.au"), "example.com.au");
}

TEST(UrlSimilarityTest, TierValues) {
  // Same host, same path.
  EXPECT_DOUBLE_EQ(
      UrlSimilarity("http://a.com/x/y.html", "http://a.com/x/y.html"), 1.0);
  // Same host, shared first directory.
  EXPECT_DOUBLE_EQ(
      UrlSimilarity("http://a.com/x/one.html", "http://a.com/x/two.html"),
      0.9);
  // Same host, different directories.
  EXPECT_DOUBLE_EQ(
      UrlSimilarity("http://a.com/x/one.html", "http://a.com/z/two.html"),
      0.8);
  // Same registrable domain, different hosts.
  EXPECT_DOUBLE_EQ(
      UrlSimilarity("http://www.epfl.ch/a", "http://people.epfl.ch/b"), 0.6);
}

TEST(UrlSimilarityTest, CrossDomainIsWeak) {
  double sim = UrlSimilarity("http://abc.com/x", "http://xyz.org/y");
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 0.4);
}

TEST(UrlSimilarityTest, UnparseableScoresZero) {
  EXPECT_DOUBLE_EQ(UrlSimilarity("", "http://a.com"), 0.0);
  EXPECT_DOUBLE_EQ(UrlSimilarity("http://a.com", ""), 0.0);
}

TEST(UrlSimilarityTest, NonMonotoneTiersSupportRegionCriteria) {
  // The structural fact the F2 region criterion exploits: same-host pages
  // on a hosting provider (different directories, 0.8) score *above*
  // same-domain-different-host personal pages (0.6), even though the
  // latter are more likely the same person. A threshold cannot accept 0.6
  // while rejecting 0.8; regions can.
  double hosting_pair =
      UrlSimilarity("http://hostral.com/u1/p.html", "http://hostral.com/u2/q.html");
  double home_pair =
      UrlSimilarity("http://www.velonar.edu/cohen/a.html",
                    "http://people.velonar.edu/cohen/b.html");
  EXPECT_GT(hosting_pair, home_pair);
}

}  // namespace
}  // namespace extract
}  // namespace weber

// weber::obs metrics: percentile math (the LatencyRecorder truncation
// regression), the reservoir, counters/gauges/histograms, and the
// registry's Prometheus text exposition.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace weber {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Percentile / Summarize

TEST(PercentileTest, InterpolatesKnownQuantiles) {
  const std::vector<double> samples = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // Regression for the truncating index bug: the old code computed
  // samples[int(0.99 * 10)] = samples[9] only by accident of saturation,
  // and p50 of an even-sized sample landed on the lower element (5.0)
  // instead of the midpoint.
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.50), 5.5);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.95), 9.55);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.99), 9.91);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 1.0), 10.0);
}

TEST(PercentileTest, SingleSampleIsEveryQuantile) {
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(Percentile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(one, 0.99), 42.0);
}

TEST(PercentileTest, EmptyAndClampedInputs) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.99), 0.0);
  const std::vector<double> samples = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(samples, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 1.5), 3.0);
}

TEST(SummarizeTest, EmptyInputIsMarkedNoSamples) {
  const LatencySummary summary = Summarize({});
  EXPECT_TRUE(summary.no_samples());
  EXPECT_EQ(summary.count, 0);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(summary.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(summary.p99_ms, 0.0);
}

TEST(SummarizeTest, KnownDistribution) {
  std::vector<double> samples;
  for (int i = 10; i >= 1; --i) samples.push_back(i);  // unsorted on purpose
  const LatencySummary summary = Summarize(samples);
  EXPECT_FALSE(summary.no_samples());
  EXPECT_EQ(summary.count, 10);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 5.5);
  EXPECT_DOUBLE_EQ(summary.p50_ms, 5.5);
  EXPECT_DOUBLE_EQ(summary.p95_ms, 9.55);
  EXPECT_DOUBLE_EQ(summary.p99_ms, 9.91);
}

// ---------------------------------------------------------------------------
// LatencyReservoir

TEST(LatencyReservoirTest, SmallSampleIsExact) {
  LatencyReservoir reservoir;
  for (int i = 1; i <= 10; ++i) reservoir.Record(i);
  const LatencySummary summary = reservoir.Summary();
  EXPECT_EQ(summary.count, 10);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 5.5);
  EXPECT_DOUBLE_EQ(summary.p99_ms, 9.91);
}

TEST(LatencyReservoirTest, EmptyReservoirReportsNoSamples) {
  LatencyReservoir reservoir;
  EXPECT_TRUE(reservoir.Summary().no_samples());
}

TEST(LatencyReservoirTest, LargeStreamKeepsExactCountAndMean) {
  LatencyReservoir reservoir;
  const int n = 100000;  // well past the 2^14 reservoir
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>(i % 1000);
    reservoir.Record(v);
    sum += v;
  }
  const LatencySummary summary = reservoir.Summary();
  EXPECT_EQ(summary.count, n);
  EXPECT_DOUBLE_EQ(summary.mean_ms, sum / n);
  // Percentiles are estimates from an unbiased sample of a uniform
  // 0..999 stream; generous bounds keep this deterministic-seeded check
  // meaningful without being brittle.
  EXPECT_GT(summary.p50_ms, 400.0);
  EXPECT_LT(summary.p50_ms, 600.0);
  EXPECT_GT(summary.p99_ms, 950.0);
}

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), static_cast<long long>(kThreads) * kPerThread);
}

TEST(CounterTest, DeltaIncrements) {
  Counter counter;
  counter.Increment(5);
  counter.Increment(7);
  EXPECT_EQ(counter.Value(), 12);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
}

TEST(HistogramTest, BucketsAndSum) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // le=1
  histogram.Observe(1.0);    // le=1 (inclusive upper edge)
  histogram.Observe(5.0);    // le=10
  histogram.Observe(50.0);   // le=100
  histogram.Observe(500.0);  // +Inf
  const Histogram::Snapshot snap = histogram.Snap();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2);
  EXPECT_EQ(snap.buckets[1], 1);
  EXPECT_EQ(snap.buckets[2], 1);
  EXPECT_EQ(snap.buckets[3], 1);
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 556.5);
}

TEST(HistogramTest, DefaultLatencyBucketsAreSortedAndPositive) {
  const std::vector<double> bounds = DefaultLatencyBucketsMs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_GT(bounds.front(), 0.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry + Prometheus exposition

// Minimal line-shape validator for Prometheus text exposition.
bool IsCommentLine(const std::string& line) {
  return line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0;
}

bool IsSampleLine(const std::string& line) {
  // <name>{labels}? <value> with a finite numeric value.
  const size_t space = line.rfind(' ');
  if (space == std::string::npos || space == 0) return false;
  char* end = nullptr;
  const double value = std::strtod(line.c_str() + space + 1, &end);
  if (end == line.c_str() + space + 1 || *end != '\0') return false;
  return std::isfinite(value);
}

TEST(MetricsRegistryTest, WritesValidPrometheusText) {
  MetricsRegistry registry;
  registry.GetCounter("test_requests_total", "Requests served")->Increment(3);
  registry.GetGauge("test_queue_depth", "Items queued")->Set(7.0);
  Histogram* hist =
      registry.GetHistogram("test_latency_ms", "Latency", {1.0, 10.0});
  hist->Observe(0.5);
  hist->Observe(5.0);
  hist->Observe(50.0);
  registry.GetCounter("test_sheds_total", "Sheds by kind", "kind", "budget")
      ->Increment();
  registry.GetCounter("test_sheds_total", "Sheds by kind", "kind", "breaker")
      ->Increment(2);

  std::ostringstream os;
  registry.WritePrometheusText(os);
  const std::string text = os.str();

  std::istringstream lines(text);
  std::string line;
  int comments = 0;
  int samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (IsCommentLine(line)) {
      ++comments;
    } else {
      EXPECT_TRUE(IsSampleLine(line)) << "bad sample line: " << line;
      ++samples;
    }
  }
  EXPECT_EQ(comments, 2 * 4);  // one HELP + one TYPE per family
  EXPECT_GT(samples, 0);

  EXPECT_NE(text.find("# TYPE test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_ms histogram"), std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="10" holds 2, +Inf holds all 3,
  // and the _count sample agrees with the +Inf bucket.
  EXPECT_NE(text.find("test_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("test_sheds_total{kind=\"budget\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_sheds_total{kind=\"breaker\"} 2"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ReregistrationReturnsSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dup_total", "help");
  Counter* b = registry.GetCounter("dup_total", "help");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.FamilyCount(), 1u);
}

TEST(MetricsRegistryTest, TypeClashReturnsDetachedMetric) {
  MetricsRegistry registry;
  registry.GetCounter("clash_total", "help")->Increment(9);
  // Same name, different type: the caller still gets a usable metric, but
  // it is never exported and the original family is untouched.
  Gauge* detached = registry.GetGauge("clash_total", "help");
  ASSERT_NE(detached, nullptr);
  detached->Set(123.0);
  EXPECT_EQ(registry.FamilyCount(), 1u);
  std::ostringstream os;
  registry.WritePrometheusText(os);
  EXPECT_NE(os.str().find("clash_total 9"), std::string::npos);
  EXPECT_EQ(os.str().find("123"), std::string::npos);
}

TEST(MetricsRegistryTest, CallbackValuesAreClampedFinite) {
  MetricsRegistry registry;
  registry.RegisterCallback("cb_ok", "finite", MetricType::kGauge,
                            [] { return 4.5; });
  registry.RegisterCallback(
      "cb_nan", "never finite", MetricType::kGauge,
      [] { return std::numeric_limits<double>::quiet_NaN(); });
  registry.RegisterCallback(
      "cb_inf", "never finite", MetricType::kCounter,
      [] { return std::numeric_limits<double>::infinity(); });
  std::ostringstream os;
  registry.WritePrometheusText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cb_ok 4.5"), std::string::npos);
  EXPECT_NE(text.find("cb_nan 0"), std::string::npos);
  EXPECT_NE(text.find("cb_inf 0"), std::string::npos);
  // No sample value may render as a non-finite literal (" nan"/" inf").
  EXPECT_EQ(text.find(" nan"), std::string::npos);
  EXPECT_EQ(text.find(" inf"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("esc_total", "help", "path", "a\"b\\c\nd")->Increment();
  std::ostringstream os;
  registry.WritePrometheusText(os);
  EXPECT_NE(os.str().find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndExport) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        registry
            .GetCounter("concurrent_total", "help", "worker",
                        std::to_string(t))
            ->Increment();
        if (i % 50 == 0) {
          std::ostringstream os;
          registry.WritePrometheusText(os);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::ostringstream os;
  registry.WritePrometheusText(os);
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(os.str().find("concurrent_total{worker=\"" +
                            std::to_string(t) + "\"} 200"),
              std::string::npos);
  }
}

TEST(MetricsRegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace obs
}  // namespace weber

#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace weber {
namespace {

TEST(ExecutorTest, SubmitRunsEveryTask) {
  Executor pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ExecutorTest, SingleThreadStillWorks) {
  Executor pool(1);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 10);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexExactlyOnce) {
  Executor pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(257, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 257; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, ParallelForZeroAndOne) {
  Executor pool(2);
  pool.ParallelFor(0, [&](int) { FAIL() << "no indices to visit"; });
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ExecutorTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    Executor pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1);
      });
    }
  }
  // The destructor joins only after the queue is empty.
  EXPECT_EQ(count.load(), 32);
}

TEST(ExecutorTest, TasksSubmittedFromTasksComplete) {
  Executor pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> inner(4);
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back(pool.Submit([&, i] {
      inner[i] = pool.Submit([&] { count.fetch_add(1); });
    }));
  }
  for (auto& f : outer) f.get();
  for (auto& f : inner) f.get();
  EXPECT_EQ(count.load(), 4);
}

TEST(ExecutorTest, ClampsThreadCount) {
  Executor pool(0);  // clamped to at least one worker
  std::atomic<int> count{0};
  pool.Submit([&] { count.fetch_add(1); }).get();
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace weber

#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace weber {
namespace {

TEST(ExecutorTest, SubmitRunsEveryTask) {
  Executor pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ExecutorTest, SingleThreadStillWorks) {
  Executor pool(1);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 10);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexExactlyOnce) {
  Executor pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(257, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 257; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, ParallelForZeroAndOne) {
  Executor pool(2);
  pool.ParallelFor(0, [&](int) { FAIL() << "no indices to visit"; });
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ExecutorTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    Executor pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1);
      });
    }
  }
  // The destructor joins only after the queue is empty.
  EXPECT_EQ(count.load(), 32);
}

TEST(ExecutorTest, TasksSubmittedFromTasksComplete) {
  Executor pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> inner(4);
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back(pool.Submit([&, i] {
      inner[i] = pool.Submit([&] { count.fetch_add(1); });
    }));
  }
  for (auto& f : outer) f.get();
  for (auto& f : inner) f.get();
  EXPECT_EQ(count.load(), 4);
}

TEST(ExecutorTest, ClampsThreadCount) {
  Executor pool(0);  // clamped to at least one worker
  std::atomic<int> count{0};
  pool.Submit([&] { count.fetch_add(1); }).get();
  EXPECT_EQ(count.load(), 1);
}

TEST(ExecutorTest, TrySubmitWithoutCapBehavesLikeSubmit) {
  Executor pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    auto submitted = pool.TrySubmit([&] { count.fetch_add(1); });
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 16);
  EXPECT_EQ(pool.rejected(), 0);
}

TEST(ExecutorTest, TrySubmitRejectsAtCapAndAcceptsAfterDrain) {
  Executor pool(1, /*queue_cap=*/2);
  // Park the single worker so queued tasks cannot drain.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> parked;
  auto blocker = pool.Submit([&, gate] {
    parked.set_value();
    gate.wait();
  });
  parked.get_future().wait();

  std::vector<std::future<void>> accepted;
  for (int i = 0; i < 2; ++i) {
    auto submitted = pool.TrySubmit([] {});
    ASSERT_TRUE(submitted.ok()) << "task " << i;
    accepted.push_back(std::move(*submitted));
  }
  auto rejected = pool.TrySubmit([] { FAIL() << "must never run"; });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(pool.rejected(), 1);
  // Submit itself stays unbounded — ParallelFor depends on that.
  auto unbounded = pool.Submit([] {});

  release.set_value();
  blocker.get();
  for (auto& f : accepted) f.get();
  unbounded.get();
  auto after_drain = pool.TrySubmit([] {});
  EXPECT_TRUE(after_drain.ok());
  after_drain->get();
  EXPECT_EQ(pool.rejected(), 1);
}

TEST(ExecutorTest, ConcurrentTrySubmitStormNeverLosesOrDuplicatesTasks) {
  // Hammer TrySubmit from many threads against a tiny cap: every accepted
  // task must run exactly once, every rejection must be counted, and the
  // whole dance must be clean under TSan.
  Executor pool(2, /*queue_cap=*/4);
  std::atomic<long long> ran{0};
  std::atomic<long long> accepted{0};
  std::atomic<long long> rejected{0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto submitted = pool.TrySubmit([&] { ran.fetch_add(1); });
        if (submitted.ok()) {
          accepted.fetch_add(1);
          futures[t].push_back(std::move(*submitted));
        } else {
          ASSERT_EQ(submitted.status().code(), StatusCode::kUnavailable);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }
  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<long long>(kThreads) * kPerThread);
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_EQ(pool.rejected(), rejected.load());
}

}  // namespace
}  // namespace weber

#include "core/resolver.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/presets.h"
#include "eval/metrics.h"
#include "ml/splitter.h"

namespace weber {
namespace core {
namespace {

/// Shared tiny corpus for resolver tests.
class ResolverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result =
        corpus::SyntheticWebGenerator(corpus::TinyConfig(0x1234)).Generate();
    ASSERT_TRUE(result.ok()) << result.status();
    data_ = new corpus::SyntheticData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* ResolverTest::data_ = nullptr;

TEST_F(ResolverTest, CreateValidatesArguments) {
  EXPECT_FALSE(EntityResolver::Create(nullptr, {}).ok());

  ResolverOptions bad_fraction;
  bad_fraction.train_fraction = 0.0;
  EXPECT_FALSE(EntityResolver::Create(&data_->gazetteer, bad_fraction).ok());

  ResolverOptions bad_fn;
  bad_fn.function_names = {"F1", "nope"};
  EXPECT_EQ(EntityResolver::Create(&data_->gazetteer, bad_fn).status().code(),
            StatusCode::kNotFound);

  ResolverOptions none;
  none.function_names = {};
  EXPECT_FALSE(EntityResolver::Create(&data_->gazetteer, none).ok());
}

TEST_F(ResolverTest, ResolveBlockProducesFullClustering) {
  auto resolver = EntityResolver::Create(&data_->gazetteer, {});
  ASSERT_TRUE(resolver.ok());
  Rng rng(1);
  const corpus::Block& block = data_->dataset.blocks[0];
  auto r = resolver->ResolveBlock(block, &rng);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->clustering.num_items(), block.num_documents());
  EXPECT_GE(r->clustering.num_clusters(), 1);
  EXPECT_FALSE(r->chosen_source.empty());
  EXPECT_FALSE(r->training_pairs.empty());
  // 10 functions x 3 criteria.
  EXPECT_EQ(r->sources.size(), 30u);
}

TEST_F(ResolverTest, ThresholdOnlyModeHasOneCriterionPerFunction) {
  ResolverOptions options;
  options.use_region_criteria = false;
  options.function_names = kSubsetI4;
  auto resolver = EntityResolver::Create(&data_->gazetteer, options);
  ASSERT_TRUE(resolver.ok());
  Rng rng(2);
  auto r = resolver->ResolveBlock(data_->dataset.blocks[0], &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sources.size(), 4u);
  for (const auto& s : r->sources) {
    EXPECT_EQ(s.criterion_name, "threshold");
  }
}

TEST_F(ResolverTest, EmptyBlockRejected) {
  auto resolver = EntityResolver::Create(&data_->gazetteer, {});
  ASSERT_TRUE(resolver.ok());
  Rng rng(3);
  corpus::Block empty;
  empty.query = "nobody";
  EXPECT_EQ(resolver->ResolveBlock(empty, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ResolverTest, LabelMismatchRejected) {
  auto resolver = EntityResolver::Create(&data_->gazetteer, {});
  ASSERT_TRUE(resolver.ok());
  Rng rng(4);
  corpus::Block broken = data_->dataset.blocks[0];
  broken.entity_labels.pop_back();
  EXPECT_EQ(resolver->ResolveBlock(broken, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ResolverTest, BadTrainingPairsRejected) {
  auto resolver = EntityResolver::Create(&data_->gazetteer, {});
  ASSERT_TRUE(resolver.ok());
  Rng rng(5);
  std::vector<extract::FeatureBundle> bundles(3);
  std::vector<int> labels = {0, 0, 1};
  EXPECT_FALSE(
      resolver->ResolveExtracted(bundles, labels, {{0, 3}}, &rng).ok());
  EXPECT_FALSE(
      resolver->ResolveExtracted(bundles, labels, {{1, 1}}, &rng).ok());
  EXPECT_FALSE(
      resolver->ResolveExtracted(bundles, labels, {{-1, 2}}, &rng).ok());
}

TEST_F(ResolverTest, SingleDocumentBlockIsTrivial) {
  auto resolver = EntityResolver::Create(&data_->gazetteer, {});
  ASSERT_TRUE(resolver.ok());
  Rng rng(6);
  corpus::Block tiny;
  tiny.query = "cohen";
  tiny.documents.push_back(data_->dataset.blocks[0].documents[0]);
  tiny.entity_labels = {0};
  auto r = resolver->ResolveBlock(tiny, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clustering.num_items(), 1);
  EXPECT_EQ(r->clustering.num_clusters(), 1);
}

TEST_F(ResolverTest, DeterministicGivenSameSeed) {
  auto resolver = EntityResolver::Create(&data_->gazetteer, {});
  ASSERT_TRUE(resolver.ok());
  Rng rng_a(7), rng_b(7);
  auto a = resolver->ResolveBlock(data_->dataset.blocks[1], &rng_a);
  auto b = resolver->ResolveBlock(data_->dataset.blocks[1], &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->clustering, b->clustering);
  EXPECT_EQ(a->chosen_source, b->chosen_source);
}

TEST_F(ResolverTest, PlantedSeparableBlockIsResolvedPerfectly) {
  // Hand-built bundles where F8 separates the two entities perfectly; any
  // sane configuration must recover the ground truth.
  using text::SparseVector;
  std::vector<extract::FeatureBundle> bundles(8);
  std::vector<int> labels(8);
  for (int i = 0; i < 8; ++i) {
    labels[i] = i < 4 ? 0 : 1;
    // Entity 0 lives on terms {0,1}; entity 1 on terms {5,6}.
    int base = labels[i] == 0 ? 0 : 5;
    bundles[i].tfidf =
        SparseVector::FromPairs({{base, 0.8}, {base + 1, 0.6}});
    bundles[i].tfidf_dimension = 10;
    bundles[i].most_frequent_name = labels[i] == 0 ? "alice x" : "bob x";
    bundles[i].closest_name = bundles[i].most_frequent_name;
    bundles[i].url = labels[i] == 0 ? "http://a.edu/x/p.html"
                                    : "http://b.edu/x/p.html";
  }
  ResolverOptions options;
  options.function_names = {"F3", "F8"};
  auto resolver = EntityResolver::Create(&data_->gazetteer, options);
  ASSERT_TRUE(resolver.ok());
  Rng rng(8);
  auto pairs = ml::SampleTrainingPairs(8, 0.5, &rng);
  auto r = resolver->ResolveExtracted(bundles, labels, pairs, &rng);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->clustering, graph::Clustering::FromLabels(labels));
}

TEST_F(ResolverTest, CorrelationClusteringPathWorks) {
  ResolverOptions options;
  options.clustering = ClusteringAlgorithm::kCorrelationClustering;
  options.combination = CombinationStrategy::kWeightedAverage;
  auto resolver = EntityResolver::Create(&data_->gazetteer, options);
  ASSERT_TRUE(resolver.ok());
  Rng rng(9);
  auto r = resolver->ResolveBlock(data_->dataset.blocks[0], &rng);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->clustering.num_items(),
            data_->dataset.blocks[0].num_documents());
}

TEST_F(ResolverTest, SourceDiagnosticsAreConsistent) {
  auto resolver = EntityResolver::Create(&data_->gazetteer, {});
  ASSERT_TRUE(resolver.ok());
  Rng rng(10);
  auto r = resolver->ResolveBlock(data_->dataset.blocks[2], &rng);
  ASSERT_TRUE(r.ok());
  for (const auto& s : r->sources) {
    EXPECT_GE(s.train_accuracy, 0.0);
    EXPECT_LE(s.train_accuracy, 1.0);
    EXPECT_GE(s.num_edges, 0);
  }
  // The chosen source must be one of the reported sources.
  bool found = false;
  for (const auto& s : r->sources) {
    if (s.function_name + "/" + s.criterion_name == r->chosen_source) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ClusteringAlgorithmNamesTest, Stable) {
  EXPECT_EQ(ClusteringAlgorithmToString(ClusteringAlgorithm::kTransitiveClosure),
            "transitive-closure");
  EXPECT_EQ(
      ClusteringAlgorithmToString(ClusteringAlgorithm::kCorrelationClustering),
      "correlation-clustering");
}

}  // namespace
}  // namespace core
}  // namespace weber

# Live-migration drill smoke test: weber_crashtest --migrate forks three
# weber_serve backends behind an in-process weber::router, storms writes,
# SIGKILLs the source backend mid-copy (migration must roll back) and
# mid-flip (migration must complete from the copied state), then runs one
# clean migration and asserts the moved block's dump is byte-identical
# through the router, with zero acked-write loss and reads served through
# both outages. Invoked by ctest with -DWEBER_BIN=<weber>
# -DSERVE_BIN=<weber_serve> -DCRASH_BIN=<weber_crashtest>
# -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

run(${CRASH_BIN}
    --dataset=${WORK_DIR}/dataset.txt
    --gazetteer=${WORK_DIR}/gazetteer.txt
    --serve_bin=${SERVE_BIN}
    --data_dir=${WORK_DIR}/store
    --migrate --writers=4 --seed=20260809
    --out=${WORK_DIR}/BENCH_migrate.json)

if(NOT LAST_OUTPUT MATCHES "migrate drill ok:")
  message(FATAL_ERROR "migrate drill did not report success:\n${LAST_OUTPUT}")
endif()
if(NOT EXISTS "${WORK_DIR}/BENCH_migrate.json")
  message(FATAL_ERROR "migrate drill did not write BENCH_migrate.json")
endif()
file(READ "${WORK_DIR}/BENCH_migrate.json" BENCH)
if(NOT BENCH MATCHES "\"lost\":0,")
  message(FATAL_ERROR "BENCH_migrate.json does not record zero loss:\n${BENCH}")
endif()
if(NOT BENCH MATCHES "\"midcopy_rolled_back\":true")
  message(FATAL_ERROR "mid-copy kill did not roll the migration back:\n${BENCH}")
endif()
if(NOT BENCH MATCHES "\"midflip_completed\":true")
  message(FATAL_ERROR "mid-flip kill did not complete the migration:\n${BENCH}")
endif()
if(NOT BENCH MATCHES "\"clean_dump_identical\":true")
  message(FATAL_ERROR "clean migration broke dump byte-identity:\n${BENCH}")
endif()
if(NOT BENCH MATCHES "\"read_failures\":0[,}]")
  message(FATAL_ERROR "reads failed during the migration drill:\n${BENCH}")
endif()

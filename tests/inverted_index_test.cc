#include "text/inverted_index.h"

#include <gtest/gtest.h>

namespace weber {
namespace text {
namespace {

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_graph_ = index_.AddDocument("graph clustering of entity graphs");
    doc_web_ = index_.AddDocument("web people search on web documents");
    doc_cook_ = index_.AddDocument("cooking recipes for the oven");
    ASSERT_TRUE(index_.Finalize().ok());
  }

  InvertedIndex index_;
  DocId doc_graph_ = -1;
  DocId doc_web_ = -1;
  DocId doc_cook_ = -1;
};

TEST_F(InvertedIndexTest, CountsDocumentsAndTerms) {
  EXPECT_EQ(index_.num_documents(), 3);
  EXPECT_GT(index_.num_terms(), 5);
}

TEST_F(InvertedIndexTest, SearchRanksTopicalDocumentFirst) {
  auto hits = index_.Search("entity graph clustering", 3);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].doc, doc_graph_);
}

TEST_F(InvertedIndexTest, SearchRespectsK) {
  auto hits = index_.Search("web graph oven", 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(InvertedIndexTest, NoMatchesYieldsEmpty) {
  auto hits = index_.Search("zebra quantum", 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(InvertedIndexTest, ScoresAreSortedDescending) {
  auto hits = index_.Search("web graph cooking", 10);
  ASSERT_TRUE(hits.ok());
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_GE((*hits)[i - 1].score, (*hits)[i].score);
  }
}

TEST_F(InvertedIndexTest, DocumentFrequency) {
  // "web" appears (stemmed) in one document... "web" is a stopword in the
  // default set, so query via a contentful term instead.
  EXPECT_EQ(index_.DocumentFrequency("graph"), 1);
  EXPECT_EQ(index_.DocumentFrequency("absent"), 0);
}

TEST_F(InvertedIndexTest, DocumentVectorsAreNormalized) {
  for (DocId d = 0; d < index_.num_documents(); ++d) {
    EXPECT_NEAR(index_.DocumentVector(d).Norm(), 1.0, 1e-9);
  }
}

TEST(InvertedIndexErrorsTest, SearchBeforeFinalizeFails) {
  InvertedIndex index;
  index.AddDocument("something");
  auto hits = index.Search("something", 1);
  EXPECT_EQ(hits.status().code(), StatusCode::kFailedPrecondition);
}

TEST(InvertedIndexErrorsTest, FinalizeEmptyIndexFails) {
  InvertedIndex index;
  EXPECT_EQ(index.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(InvertedIndexErrorsTest, NonPositiveKIsRejected) {
  InvertedIndex index;
  index.AddDocument("something here");
  ASSERT_TRUE(index.Finalize().ok());
  EXPECT_EQ(index.Search("something", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InvertedIndexIncrementalTest, AddAfterFinalizeRequiresRefinalize) {
  InvertedIndex index;
  index.AddDocument("first document text");
  ASSERT_TRUE(index.Finalize().ok());
  index.AddDocument("second document text");
  // Index dropped back to unfinalized state.
  EXPECT_EQ(index.Search("document", 5).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(index.Finalize().ok());
  auto hits = index.Search("document", 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

}  // namespace
}  // namespace text
}  // namespace weber

// Service-level durability tests: WAL + snapshot recovery through
// ResolutionService::Create, torn-tail tolerance surfaced in RunHealth,
// snapshot-write faults that must not lose acked writes, and the
// durability-off contract (no data_dir, no files, no behaviour change).

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "graph/clustering.h"
#include "serve/resolution_service.h"

namespace weber {
namespace serve {
namespace {

class DurableServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// A scratch data dir unique to the test, wiped of any previous contents
  /// (two levels: shard directories holding wal.log + snapshots).
  static std::string FreshDataDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "weber_durable_" + name +
                            "_" + std::to_string(::getpid());
    auto entries = ListDirectory(dir);
    if (entries.ok()) {
      for (const std::string& entry : entries.ValueOrDie()) {
        const std::string sub = dir + "/" + entry;
        auto files = ListDirectory(sub);
        if (files.ok()) {
          for (const std::string& f : files.ValueOrDie()) {
            (void)RemoveFileIfExists(sub + "/" + f);
          }
          ::rmdir(sub.c_str());
        } else {
          (void)RemoveFileIfExists(sub);
        }
      }
    }
    return dir;
  }

  static std::unique_ptr<ResolutionService> MakeService(
      const std::string& data_dir) {
    ServiceOptions options;
    options.durability.data_dir = data_dir;
    auto service =
        ResolutionService::Create(data_->dataset, &data_->gazetteer, options);
    EXPECT_TRUE(service.ok()) << service.status();
    return service.ok() ? std::move(service).ValueOrDie() : nullptr;
  }

  static const corpus::Block& Block(int i) {
    return data_->dataset.blocks[i];
  }

  /// The shard directory for block `i` (named shard-<id>-<block name>).
  static std::string ShardDir(const std::string& data_dir, int i) {
    auto entries = ListDirectory(data_dir);
    EXPECT_TRUE(entries.ok()) << entries.status();
    if (entries.ok()) {
      for (const std::string& entry : entries.ValueOrDie()) {
        if (entry.find(Block(i).query) != std::string::npos) {
          return data_dir + "/" + entry;
        }
      }
    }
    ADD_FAILURE() << "no shard dir for block " << Block(i).query;
    return data_dir;
  }

  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* DurableServiceTest::data_ = nullptr;

TEST_F(DurableServiceTest, DisabledWithoutDataDir) {
  ServiceOptions options;
  auto service =
      ResolutionService::Create(data_->dataset, &data_->gazetteer, options);
  ASSERT_TRUE(service.ok()) << service.status();
  auto result = service.ValueOrDie()->Assign(Block(0).query, 0);
  ASSERT_TRUE(result.ok()) << result.status();
  const ServiceStats stats = service.ValueOrDie()->Stats();
  EXPECT_FALSE(stats.durability.enabled);
  EXPECT_EQ(stats.durability.wal_appends, 0);
}

TEST_F(DurableServiceTest, ColdStartRecoversNothing) {
  auto service = MakeService(FreshDataDir("cold"));
  ASSERT_NE(service, nullptr);
  const ServiceStats stats = service->Stats();
  EXPECT_TRUE(stats.durability.enabled);
  EXPECT_EQ(stats.durability.recovered_docs, 0);
  EXPECT_EQ(stats.durability.recovered_snapshots, 0);
}

TEST_F(DurableServiceTest, RecoversAckedAssignsAfterRestart) {
  const std::string dir = FreshDataDir("restart");
  const int docs = 6;
  {
    auto service = MakeService(dir);
    ASSERT_NE(service, nullptr);
    for (int d = 0; d < docs; ++d) {
      auto r = service->Assign(Block(0).query, d);
      ASSERT_TRUE(r.ok()) << r.status();
    }
    EXPECT_GE(service->Stats().durability.wal_appends,
              static_cast<long long>(docs));
  }
  auto recovered = MakeService(dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->Stats().durability.recovered_docs, docs);
  ASSERT_TRUE(recovered->Compact(Block(0).query).ok());
  auto served = recovered->DumpPartition(Block(0).query);
  ASSERT_TRUE(served.ok()) << served.status();

  // Reference: the same documents through a fresh in-memory service.
  ServiceOptions plain;
  auto reference =
      ResolutionService::Create(data_->dataset, &data_->gazetteer, plain);
  ASSERT_TRUE(reference.ok());
  for (int d = 0; d < docs; ++d) {
    ASSERT_TRUE(reference.ValueOrDie()->Assign(Block(0).query, d).ok());
  }
  ASSERT_TRUE(reference.ValueOrDie()->Compact(Block(0).query).ok());
  auto expected = reference.ValueOrDie()->DumpPartition(Block(0).query);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(graph::Clustering::FromLabels(served.ValueOrDie()),
            graph::Clustering::FromLabels(expected.ValueOrDie()));
}

TEST_F(DurableServiceTest, CompactionSnapshotSpeedsRecovery) {
  const std::string dir = FreshDataDir("snapshotted");
  const int docs = Block(1).num_documents();
  {
    auto service = MakeService(dir);
    ASSERT_NE(service, nullptr);
    for (int d = 0; d < docs; ++d) {
      ASSERT_TRUE(service->Assign(Block(1).query, d).ok());
    }
    ASSERT_TRUE(service->Compact(Block(1).query).ok());
    EXPECT_EQ(service->Stats().durability.snapshots_written, 1);
  }
  auto recovered = MakeService(dir);
  ASSERT_NE(recovered, nullptr);
  const ServiceStats stats = recovered->Stats();
  EXPECT_EQ(stats.durability.recovered_snapshots, 1);
  EXPECT_EQ(stats.durability.recovered_docs, docs);
  auto served = recovered->DumpPartition(Block(1).query);
  ASSERT_TRUE(served.ok());
  for (int label : served.ValueOrDie()) {
    EXPECT_GE(label, 0);
  }
}

TEST_F(DurableServiceTest, TornWalTailIsTruncatedAndCounted) {
  const std::string dir = FreshDataDir("torn");
  const int docs = 5;
  {
    auto service = MakeService(dir);
    ASSERT_NE(service, nullptr);
    for (int d = 0; d < docs; ++d) {
      ASSERT_TRUE(service->Assign(Block(0).query, d).ok());
    }
  }
  // Simulate a crash mid-append: a partial header at the end of the WAL.
  {
    std::ofstream wal(ShardDir(dir, 0) + "/wal.log",
                      std::ios::binary | std::ios::app);
    ASSERT_TRUE(wal);
    wal.write("\x40\x00\x00", 3);
  }
  auto recovered = MakeService(dir);
  ASSERT_NE(recovered, nullptr);
  const ServiceStats stats = recovered->Stats();
  EXPECT_EQ(stats.durability.recovered_docs, docs);
  EXPECT_GE(stats.health.torn_wal_tails, 1LL);
  auto served = recovered->DumpPartition(Block(0).query);
  ASSERT_TRUE(served.ok());
  int assigned = 0;
  for (int label : served.ValueOrDie()) {
    if (label >= 0) ++assigned;
  }
  EXPECT_EQ(assigned, docs);
}

TEST_F(DurableServiceTest, SnapshotWriteFaultDoesNotLoseAckedWrites) {
  faults::ScopedFaultClearance clearance;
  const std::string dir = FreshDataDir("snapfault");
  const int docs = 4;
  {
    auto service = MakeService(dir);
    ASSERT_NE(service, nullptr);
    for (int d = 0; d < docs; ++d) {
      ASSERT_TRUE(service->Assign(Block(0).query, d).ok());
    }
    ASSERT_TRUE(faults::FaultInjector::Instance()
                    .ArmFromSpec("serve.snapshot.write=ioerror")
                    .ok());
    // The compaction still swaps in-memory state; only the durable
    // publication fails, and the WAL already covers every acked write.
    ASSERT_TRUE(service->Compact(Block(0).query).ok());
    faults::FaultInjector::Instance().DisarmAll();
    const ServiceStats stats = service->Stats();
    EXPECT_EQ(stats.durability.failed_publishes, 1);
    EXPECT_EQ(stats.durability.snapshots_written, 0);
  }
  auto recovered = MakeService(dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->Stats().durability.recovered_docs, docs);
}

}  // namespace
}  // namespace serve
}  // namespace weber

#include "core/guarded_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/resolver.h"
#include "corpus/generator.h"
#include "corpus/presets.h"

namespace weber {
namespace core {
namespace {

/// Test double returning a fixed value regardless of input.
class ConstantFunction : public SimilarityFunction {
 public:
  explicit ConstantFunction(double value) : value_(value) {}
  std::string_view name() const override { return "const"; }
  std::string_view description() const override { return "constant"; }
  double Compute(const extract::FeatureBundle&,
                 const extract::FeatureBundle&) const override {
    return value_;
  }

 private:
  double value_;
};

/// Violates symmetry: depends only on the first argument.
class AsymmetricFunction : public SimilarityFunction {
 public:
  std::string_view name() const override { return "asym"; }
  std::string_view description() const override { return "asymmetric"; }
  double Compute(const extract::FeatureBundle& a,
                 const extract::FeatureBundle&) const override {
    return a.informativeness;
  }
};

extract::FeatureBundle Bundle(double informativeness = 0.0) {
  extract::FeatureBundle b;
  b.informativeness = informativeness;
  return b;
}

TEST(GuardedFunctionTest, WellBehavedFunctionPassesThroughUntouched) {
  ConstantFunction inner(0.75);
  GuardOptions options;
  options.symmetry_check_interval = 1;  // check every call
  GuardedSimilarityFunction guard(&inner, options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(guard.Compute(Bundle(), Bundle()), 0.75);
  }
  EXPECT_EQ(guard.violations().total(), 0);
  EXPECT_FALSE(guard.quarantined());
  EXPECT_EQ(guard.calls(), 100);
  EXPECT_EQ(guard.name(), "const");
}

TEST(GuardedFunctionTest, NaNClampsToZeroAndQuarantines) {
  ConstantFunction inner(std::numeric_limits<double>::quiet_NaN());
  GuardOptions options;
  options.quarantine_threshold = 5;
  GuardedSimilarityFunction guard(&inner, options);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(guard.Compute(Bundle(), Bundle()), 0.0);
    EXPECT_FALSE(guard.quarantined());
  }
  EXPECT_EQ(guard.Compute(Bundle(), Bundle()), 0.0);  // fifth strike
  EXPECT_TRUE(guard.quarantined());
  EXPECT_EQ(guard.violations().non_finite, 5);
  // Still computes (and clamps) after quarantine.
  EXPECT_EQ(guard.Compute(Bundle(), Bundle()), 0.0);
}

TEST(GuardedFunctionTest, InfinityClampsIntoRange) {
  ConstantFunction pos(std::numeric_limits<double>::infinity());
  GuardedSimilarityFunction guard(&pos, {});
  EXPECT_EQ(guard.Compute(Bundle(), Bundle()), 0.0);
  EXPECT_EQ(guard.violations().non_finite, 1);
}

TEST(GuardedFunctionTest, OutOfRangeClampsToNearestBound) {
  ConstantFunction high(1.8);
  GuardedSimilarityFunction guard_high(&high, {});
  EXPECT_EQ(guard_high.Compute(Bundle(), Bundle()), 1.0);
  EXPECT_EQ(guard_high.violations().out_of_range, 1);

  ConstantFunction low(-0.3);
  GuardedSimilarityFunction guard_low(&low, {});
  EXPECT_EQ(guard_low.Compute(Bundle(), Bundle()), 0.0);
  EXPECT_EQ(guard_low.violations().out_of_range, 1);
}

TEST(GuardedFunctionTest, ZeroThresholdDisablesQuarantine) {
  ConstantFunction inner(std::numeric_limits<double>::quiet_NaN());
  GuardOptions options;
  options.quarantine_threshold = 0;
  GuardedSimilarityFunction guard(&inner, options);
  for (int i = 0; i < 50; ++i) guard.Compute(Bundle(), Bundle());
  EXPECT_EQ(guard.violations().non_finite, 50);
  EXPECT_FALSE(guard.quarantined());
}

TEST(GuardedFunctionTest, SymmetrySpotCheckCatchesAsymmetry) {
  AsymmetricFunction inner;
  GuardOptions options;
  options.symmetry_check_interval = 1;
  GuardedSimilarityFunction guard(&inner, options);
  // Symmetric inputs: no violation.
  guard.Compute(Bundle(0.4), Bundle(0.4));
  EXPECT_EQ(guard.violations().asymmetry, 0);
  // Asymmetric pair: f(a,b)=0.4, f(b,a)=0.9.
  guard.Compute(Bundle(0.4), Bundle(0.9));
  EXPECT_EQ(guard.violations().asymmetry, 1);
}

/// End-to-end quarantine: a resolver given the standard functions plus one
/// NaN-emitting function must quarantine the offender and produce exactly
/// the clustering it would have produced without it (same seeds, same RNG
/// stream), with the quarantine visible in RunHealth.
class GuardedResolverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result =
        corpus::SyntheticWebGenerator(corpus::TinyConfig(0x77)).Generate();
    ASSERT_TRUE(result.ok()) << result.status();
    data_ = new corpus::SyntheticData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* GuardedResolverTest::data_ = nullptr;

TEST_F(GuardedResolverTest, QuarantinedFunctionDoesNotChangeResult) {
  ResolverOptions options;
  options.guard.quarantine_threshold = 4;

  auto healthy = MakeFunctions(kSubsetI4);
  ASSERT_TRUE(healthy.ok());
  auto clean_resolver = EntityResolver::CreateWithFunctions(
      &data_->gazetteer, options, std::move(healthy).ValueOrDie());
  ASSERT_TRUE(clean_resolver.ok()) << clean_resolver.status();

  auto poisoned = MakeFunctions(kSubsetI4);
  ASSERT_TRUE(poisoned.ok());
  auto functions = std::move(poisoned).ValueOrDie();
  functions.push_back(std::make_unique<ConstantFunction>(
      std::numeric_limits<double>::quiet_NaN()));
  auto dirty_resolver = EntityResolver::CreateWithFunctions(
      &data_->gazetteer, options, std::move(functions));
  ASSERT_TRUE(dirty_resolver.ok()) << dirty_resolver.status();

  const corpus::Block& block = data_->dataset.blocks[0];
  Rng clean_rng(0xABC);
  Rng dirty_rng(0xABC);
  auto clean = clean_resolver->ResolveBlock(block, &clean_rng);
  auto dirty = dirty_resolver->ResolveBlock(block, &dirty_rng);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(dirty.ok()) << dirty.status();

  EXPECT_EQ(dirty->health.quarantined_functions, 1);
  EXPECT_GT(dirty->health.value_violations, 0);
  EXPECT_EQ(clean->health.quarantined_functions, 0);
  EXPECT_EQ(clean->health.value_violations, 0);

  // Identical clustering and chosen source: quarantining is equivalent to
  // never having configured the broken function.
  EXPECT_EQ(dirty->clustering.labels(), clean->clustering.labels());
  EXPECT_EQ(dirty->chosen_source, clean->chosen_source);
  EXPECT_EQ(dirty->sources.size(), clean->sources.size());
}

TEST_F(GuardedResolverTest, AllFunctionsQuarantinedFallsBackGracefully) {
  ResolverOptions options;
  options.guard.quarantine_threshold = 2;
  std::vector<std::unique_ptr<SimilarityFunction>> functions;
  functions.push_back(std::make_unique<ConstantFunction>(
      std::numeric_limits<double>::quiet_NaN()));
  auto resolver = EntityResolver::CreateWithFunctions(
      &data_->gazetteer, options, std::move(functions));
  ASSERT_TRUE(resolver.ok()) << resolver.status();

  const corpus::Block& block = data_->dataset.blocks[0];
  Rng rng(7);
  auto r = resolver->ResolveBlock(block, &rng);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->clustering.num_items(), block.num_documents());
  EXPECT_EQ(r->health.quarantined_functions, 1);
  EXPECT_EQ(r->health.degraded_blocks, 1);
  EXPECT_TRUE(r->chosen_source.rfind("fallback/", 0) == 0)
      << r->chosen_source;
}

TEST_F(GuardedResolverTest, GuardDisabledReproducesGuardedResults) {
  // With well-behaved functions the guard must be value-transparent:
  // guarded and unguarded runs agree bit-for-bit.
  ResolverOptions guarded;
  ResolverOptions unguarded;
  unguarded.guard_functions = false;
  auto a = EntityResolver::Create(&data_->gazetteer, guarded);
  auto b = EntityResolver::Create(&data_->gazetteer, unguarded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const corpus::Block& block = data_->dataset.blocks[0];
  Rng rng_a(0x5);
  Rng rng_b(0x5);
  auto ra = a->ResolveBlock(block, &rng_a);
  auto rb = b->ResolveBlock(block, &rng_b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->clustering.labels(), rb->clustering.labels());
  EXPECT_EQ(ra->chosen_source, rb->chosen_source);
  EXPECT_EQ(ra->health.TotalViolations(), 0);
}

}  // namespace
}  // namespace core
}  // namespace weber

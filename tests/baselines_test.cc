#include "core/baselines.h"

#include <gtest/gtest.h>

#include "ml/splitter.h"

namespace weber {
namespace core {
namespace {

using extract::FeatureBundle;
using text::SparseVector;

/// Two well-separated planted entities over TF-IDF and names.
std::vector<FeatureBundle> PlantedBundles(std::vector<int>* labels) {
  std::vector<FeatureBundle> bundles(10);
  labels->resize(10);
  for (int i = 0; i < 10; ++i) {
    int entity = i < 5 ? 0 : 1;
    (*labels)[i] = entity;
    int base = entity == 0 ? 0 : 20;
    bundles[i].tfidf = SparseVector::FromPairs(
        {{base, 0.7}, {base + 1, 0.5}, {base + 2 + (i % 3), 0.5}});
    bundles[i].tfidf = bundles[i].tfidf.Normalized();
    bundles[i].tfidf_dimension = 40;
    bundles[i].most_frequent_name = entity == 0 ? "alice x" : "bob x";
    bundles[i].closest_name = bundles[i].most_frequent_name;
    bundles[i].url = entity == 0 ? "http://a.edu/x/p.html"
                                 : "http://b.org/y/q.html";
    bundles[i].organizations =
        SparseVector::FromPairs({{100 + entity, 1.0}});
    bundles[i].informativeness = 0.8;
  }
  return bundles;
}

TEST(MergeBundlesTest, UnionsEvidence) {
  FeatureBundle a, b;
  a.concepts = SparseVector::FromPairs({{1, 1.0}});
  b.concepts = SparseVector::FromPairs({{2, 1.0}});
  a.most_frequent_name = "alice";
  b.most_frequent_name = "bob";
  b.closest_name = "bob";
  a.url = "";
  b.url = "http://x.com";
  a.informativeness = 0.2;
  b.informativeness = 0.7;
  a.tfidf = SparseVector::FromPairs({{0, 1.0}});
  b.tfidf = SparseVector::FromPairs({{1, 1.0}});
  FeatureBundle merged = MergeBundles(a, b);
  EXPECT_EQ(merged.concepts.size(), 2u);
  EXPECT_EQ(merged.most_frequent_name, "alice");  // a wins when non-empty
  EXPECT_EQ(merged.closest_name, "bob");          // a empty, b wins
  EXPECT_EQ(merged.url, "http://x.com");
  EXPECT_DOUBLE_EQ(merged.informativeness, 0.7);
  EXPECT_NEAR(merged.tfidf.Norm(), 1.0, 1e-9);  // renormalized
}

TEST(SwooshTest, CreateValidates) {
  BaselineOptions bad;
  bad.function_names = {"F99"};
  EXPECT_FALSE(SwooshResolver::Create(bad).ok());
  EXPECT_TRUE(SwooshResolver::Create({}).ok());
}

TEST(SwooshTest, ResolvesPlantedEntities) {
  std::vector<int> labels;
  auto bundles = PlantedBundles(&labels);
  auto resolver = SwooshResolver::Create({});
  ASSERT_TRUE(resolver.ok());
  Rng rng(1);
  auto pairs = ml::SampleTrainingPairs(10, 0.5, &rng);
  auto clustering = resolver->Resolve(bundles, labels, pairs, &rng);
  ASSERT_TRUE(clustering.ok()) << clustering.status();
  EXPECT_EQ(*clustering, graph::Clustering::FromLabels(labels));
}

TEST(SwooshTest, RejectsDegenerateInput) {
  auto resolver = SwooshResolver::Create({});
  ASSERT_TRUE(resolver.ok());
  Rng rng(2);
  EXPECT_FALSE(resolver->Resolve({}, {}, {}, &rng).ok());
  std::vector<int> labels;
  auto bundles = PlantedBundles(&labels);
  labels.pop_back();
  EXPECT_FALSE(resolver->Resolve(bundles, labels, {{0, 1}}, &rng).ok());
}

TEST(SwooshTest, NoTrainingPairsRejected) {
  std::vector<int> labels;
  auto bundles = PlantedBundles(&labels);
  auto resolver = SwooshResolver::Create({});
  ASSERT_TRUE(resolver.ok());
  Rng rng(3);
  EXPECT_FALSE(resolver->Resolve(bundles, labels, {}, &rng).ok());
}

TEST(SwooshTest, SingleDocumentIsTrivial) {
  auto resolver = SwooshResolver::Create({});
  ASSERT_TRUE(resolver.ok());
  Rng rng(4);
  std::vector<FeatureBundle> one(1);
  auto clustering = resolver->Resolve(one, {0}, {}, &rng);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->num_clusters(), 1);
}

TEST(SortedNeighborhoodTest, CreateValidates) {
  SortedNeighborhoodOptions bad;
  bad.window = 1;
  EXPECT_FALSE(SortedNeighborhoodResolver::Create(bad).ok());
  SortedNeighborhoodOptions bad_fn;
  bad_fn.function_names = {"nope"};
  EXPECT_FALSE(SortedNeighborhoodResolver::Create(bad_fn).ok());
  EXPECT_TRUE(SortedNeighborhoodResolver::Create({}).ok());
}

TEST(SortedNeighborhoodTest, ResolvesPlantedEntities) {
  std::vector<int> labels;
  auto bundles = PlantedBundles(&labels);
  SortedNeighborhoodOptions options;
  options.window = 6;
  auto resolver = SortedNeighborhoodResolver::Create(options);
  ASSERT_TRUE(resolver.ok());
  Rng rng(5);
  auto pairs = ml::SampleTrainingPairs(10, 0.5, &rng);
  auto clustering = resolver->Resolve(bundles, labels, pairs, &rng);
  ASSERT_TRUE(clustering.ok()) << clustering.status();
  EXPECT_EQ(*clustering, graph::Clustering::FromLabels(labels));
}

TEST(SortedNeighborhoodTest, SmallWindowMissesDistantMatches) {
  // With 5 same-entity docs adjacent under the name sort, a window of 2
  // still links them transitively — but if the sort keys interleave the
  // entities, small windows lose recall. Construct interleaving keys.
  std::vector<int> labels;
  auto bundles = PlantedBundles(&labels);
  // Same most_frequent_name for everyone: name pass gives no useful order;
  // url hosts also shared.
  for (int i = 0; i < 10; ++i) {
    bundles[i].most_frequent_name = "x" + std::to_string(i % 5);  // interleave
    bundles[i].closest_name = bundles[i].most_frequent_name;
    bundles[i].url = "http://h" + std::to_string(i % 5) + ".com/a";
  }
  SortedNeighborhoodOptions tiny;
  tiny.window = 2;
  auto resolver = SortedNeighborhoodResolver::Create(tiny);
  ASSERT_TRUE(resolver.ok());
  Rng rng(6);
  auto pairs = ml::SampleTrainingPairs(10, 0.5, &rng);
  auto clustering = resolver->Resolve(bundles, labels, pairs, &rng);
  ASSERT_TRUE(clustering.ok());
  // The interleaved keys put cross-entity docs adjacent: a window of 2
  // cannot see all same-entity pairs directly; recall depends on the
  // transitive closure of what it did link. The result must still be a
  // valid partition of all 10 docs.
  EXPECT_EQ(clustering->num_items(), 10);
}

}  // namespace
}  // namespace core
}  // namespace weber

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace weber {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello World"), "hello world");
  EXPECT_EQ(ToLowerAscii("ABC123xyz"), "abc123xyz");
  EXPECT_EQ(ToLowerAscii(""), "");
  // Non-ASCII bytes pass through untouched.
  EXPECT_EQ(ToLowerAscii("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(StringUtilTest, ToUpperAscii) {
  EXPECT_EQ(ToUpperAscii("weber"), "WEBER");
  EXPECT_EQ(ToUpperAscii("a1b2"), "A1B2");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("\t\r\na b\n"), "a b");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("no-trim"), "no-trim");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string original = "x|yy|zzz";
  EXPECT_EQ(Join(Split(original, '|'), "|"), original);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("#dataset foo", "#dataset "));
  EXPECT_FALSE(StartsWith("#data", "#dataset"));
  EXPECT_TRUE(EndsWith("page.html", ".html"));
  EXPECT_FALSE(EndsWith("html", "page.html"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping scan
  EXPECT_EQ(ReplaceAll("none", "x", "y"), "none");
  EXPECT_EQ(ReplaceAll("abc", "", "y"), "abc");  // empty pattern is a no-op
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.87739, 4), "0.8774");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, ParseDoubleAcceptsValid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(ParseDouble("  -1.25e2 ", &v));
  EXPECT_DOUBLE_EQ(v, -125.0);
}

TEST(StringUtilTest, ParseDoubleRejectsJunk) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(StringUtilTest, ParseIntAcceptsValid) {
  int v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt(" -7 ", &v));
  EXPECT_EQ(v, -7);
}

TEST(StringUtilTest, ParseIntRejectsJunk) {
  int v = 0;
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("4.2", &v));
  EXPECT_FALSE(ParseInt("12abc", &v));
  EXPECT_FALSE(ParseInt("99999999999999999999", &v));  // overflow
}

}  // namespace
}  // namespace weber

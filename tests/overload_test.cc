// Unit tests for the overload-protection primitives: RequestDeadline
// arithmetic and the CircuitBreaker state machine, including the
// single-probe half-open contract under concurrency.

#include "serve/overload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace weber {
namespace serve {
namespace {

TEST(RequestDeadlineTest, DefaultHasNoDeadline) {
  RequestDeadline none;
  EXPECT_FALSE(none.has_deadline());
  EXPECT_FALSE(none.Expired());
  EXPECT_GT(none.RemainingMs(), 1e12);  // effectively unbounded
}

TEST(RequestDeadlineTest, NonPositiveBudgetMeansNoDeadline) {
  EXPECT_FALSE(RequestDeadline::In(0.0).has_deadline());
  EXPECT_FALSE(RequestDeadline::In(-5.0).has_deadline());
}

TEST(RequestDeadlineTest, ExpiresAfterItsBudget) {
  RequestDeadline deadline = RequestDeadline::In(1.0);
  EXPECT_TRUE(deadline.has_deadline());
  EXPECT_LE(deadline.RemainingMs(), 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMs(), 0.0);
}

TEST(RequestDeadlineTest, GenerousBudgetDoesNotExpireImmediately) {
  RequestDeadline deadline = RequestDeadline::In(60000.0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingMs(), 59000.0);
}

TEST(CircuitBreakerTest, DisabledBreakerAlwaysAdmits) {
  CircuitBreaker breaker;  // failure_threshold == 0
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.Admit().ok());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker({/*failure_threshold=*/3, /*cooldown_ms=*/60000.0});
  ASSERT_TRUE(breaker.enabled());
  // A success in between resets the consecutive count.
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  Status shed = breaker.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown_ms=*/5.0});
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(breaker.Admit().ok());  // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Admit().ok());  // second caller is shed
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.recoveries(), 1);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithFreshCooldown) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown_ms=*/5.0});
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.RecordFailure();  // the probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_EQ(breaker.recoveries(), 0);
  EXPECT_FALSE(breaker.Admit().ok());  // cooldown restarted
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ConcurrentProbersAdmitExactlyOne) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown_ms=*/1.0});
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (breaker.Admit().ok()) admitted.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 1);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(BreakerStateNameTest, NamesEveryState) {
  EXPECT_STREQ(BreakerStateName(CircuitBreaker::State::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(CircuitBreaker::State::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace serve
}  // namespace weber

#include "ml/threshold.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace weber {
namespace ml {
namespace {

TEST(ThresholdAccuracyTest, CountsCorrectDecisions) {
  std::vector<LabeledSimilarity> sample = {
      {0.2, false}, {0.4, false}, {0.6, true}, {0.8, true}};
  EXPECT_DOUBLE_EQ(ThresholdAccuracy(sample, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(ThresholdAccuracy(sample, 0.0), 0.5);   // all linked
  EXPECT_DOUBLE_EQ(ThresholdAccuracy(sample, 0.9), 0.5);   // none linked
  EXPECT_DOUBLE_EQ(ThresholdAccuracy({}, 0.5), 0.0);
}

TEST(FitOptimalThresholdTest, RejectsEmpty) {
  EXPECT_FALSE(FitOptimalThreshold({}).ok());
}

TEST(FitOptimalThresholdTest, PerfectlySeparableData) {
  std::vector<LabeledSimilarity> training = {
      {0.1, false}, {0.3, false}, {0.7, true}, {0.9, true}};
  auto fit = FitOptimalThreshold(training);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->train_accuracy, 1.0);
  EXPECT_GT(fit->threshold, 0.3);
  EXPECT_LE(fit->threshold, 0.7);
}

TEST(FitOptimalThresholdTest, AllPositiveFavorsZeroThreshold) {
  std::vector<LabeledSimilarity> training = {{0.1, true}, {0.9, true}};
  auto fit = FitOptimalThreshold(training);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->train_accuracy, 1.0);
  EXPECT_LE(fit->threshold, 0.1);
}

TEST(FitOptimalThresholdTest, AllNegativeFavorsHighThreshold) {
  std::vector<LabeledSimilarity> training = {{0.1, false}, {0.9, false}};
  auto fit = FitOptimalThreshold(training);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->train_accuracy, 1.0);
  EXPECT_GT(fit->threshold, 0.9);
}

TEST(FitOptimalThresholdTest, NoisyDataPicksBestCut) {
  // Below 0.5: 3 negatives, 1 positive. Above: 3 positives, 1 negative.
  // Cut at 0.5 gets 6/8; no cut does better.
  std::vector<LabeledSimilarity> training = {
      {0.1, false}, {0.2, true},  {0.3, false}, {0.4, false},
      {0.6, true},  {0.7, false}, {0.8, true},  {0.9, true},
  };
  auto fit = FitOptimalThreshold(training);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->train_accuracy, 6.0 / 8.0, 1e-12);
  EXPECT_GT(fit->threshold, 0.4);
  EXPECT_LE(fit->threshold, 0.6);
}

TEST(FitOptimalThresholdTest, DuplicateValuesHandled) {
  std::vector<LabeledSimilarity> training = {
      {0.5, false}, {0.5, false}, {0.5, true}, {0.9, true}};
  auto fit = FitOptimalThreshold(training);
  ASSERT_TRUE(fit.ok());
  // Best cut: above 0.5 (3/4 correct: two negatives right, 0.9 right,
  // 0.5-positive wrong).
  EXPECT_NEAR(fit->train_accuracy, 0.75, 1e-12);
  EXPECT_GT(fit->threshold, 0.5);
}

TEST(FitOptimalThresholdTest, ReportedAccuracyIsAchievedAndOptimal) {
  // Property: the returned threshold realizes the returned accuracy, and no
  // brute-force candidate beats it.
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<LabeledSimilarity> training;
    int n = rng.UniformInt(2, 40);
    for (int i = 0; i < n; ++i) {
      double v = rng.UniformDouble();
      training.push_back({v, rng.Bernoulli(v)});  // noisy monotone labels
    }
    auto fit = FitOptimalThreshold(training);
    ASSERT_TRUE(fit.ok());
    EXPECT_NEAR(ThresholdAccuracy(training, fit->threshold),
                fit->train_accuracy, 1e-12);
    // Brute force over a fine grid plus all sample values.
    double best = 0.0;
    for (int g = 0; g <= 1000; ++g) {
      best = std::max(best, ThresholdAccuracy(training, g / 1000.0));
    }
    for (const auto& s : training) {
      best = std::max(best, ThresholdAccuracy(training, s.value));
      best = std::max(best, ThresholdAccuracy(training, s.value + 1e-9));
    }
    EXPECT_GE(fit->train_accuracy + 1e-12, best);
  }
}

}  // namespace
}  // namespace ml
}  // namespace weber

#include "extract/gazetteer.h"

#include <gtest/gtest.h>

namespace weber {
namespace extract {
namespace {

TEST(GazetteerTest, AnnotatesTypedMentions) {
  Gazetteer g;
  int alice = g.Add("alice cooper", EntityType::kPerson);
  int epfl = g.Add("epfl", EntityType::kOrganization);
  g.Build();
  auto mentions = g.Annotate("Alice Cooper studied at EPFL.");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].entry_id, alice);
  EXPECT_EQ(mentions[1].entry_id, epfl);
}

TEST(GazetteerTest, MatchingIsCaseInsensitive) {
  Gazetteer g;
  g.Add("Zurich", EntityType::kLocation);
  g.Build();
  EXPECT_EQ(g.Annotate("ZURICH zurich ZuRiCh").size(), 3u);
}

TEST(GazetteerTest, LongestMatchWinsWithinType) {
  Gazetteer g;
  g.Add("cohen", EntityType::kPerson);
  int full = g.Add("william cohen", EntityType::kPerson);
  g.Build();
  auto mentions = g.Annotate("talk by william cohen today");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entry_id, full);
}

TEST(GazetteerTest, OverlapAcrossTypesBothKept) {
  Gazetteer g;
  int person = g.Add("jordan", EntityType::kPerson);
  int place = g.Add("jordan", EntityType::kLocation);
  g.Build();
  auto mentions = g.Annotate("jordan");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_NE(mentions[0].entry_id, mentions[1].entry_id);
  (void)person;
  (void)place;
}

TEST(GazetteerTest, WholeWordOnly) {
  Gazetteer g;
  g.Add("ng", EntityType::kPerson);
  g.Build();
  EXPECT_TRUE(g.Annotate("running strings").empty());
  EXPECT_EQ(g.Annotate("prof ng spoke").size(), 1u);
}

TEST(GazetteerTest, DuplicateAddKeepsMaxWeight) {
  Gazetteer g;
  int first = g.Add("machine learning", EntityType::kConcept, 0.5);
  int second = g.Add("Machine Learning", EntityType::kConcept, 1.5);
  EXPECT_EQ(first, second);
  EXPECT_DOUBLE_EQ(g.entry(first).weight, 1.5);
  EXPECT_EQ(g.size(), 1);
}

TEST(GazetteerTest, SameSurfaceDifferentTypesAreDistinctEntries) {
  Gazetteer g;
  int a = g.Add("washington", EntityType::kPerson);
  int b = g.Add("washington", EntityType::kLocation);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.size(), 2);
}

TEST(GazetteerTest, MentionsReturnedInDocumentOrder) {
  Gazetteer g;
  g.Add("beta", EntityType::kConcept);
  g.Add("alpha", EntityType::kConcept);
  g.Build();
  auto mentions = g.Annotate("beta then alpha then beta");
  ASSERT_EQ(mentions.size(), 3u);
  EXPECT_LT(mentions[0].begin, mentions[1].begin);
  EXPECT_LT(mentions[1].begin, mentions[2].begin);
}

TEST(GazetteerTest, OffsetsPointIntoText) {
  Gazetteer g;
  g.Add("entity resolution", EntityType::kConcept);
  g.Build();
  std::string text = "a survey of Entity Resolution methods";
  auto mentions = g.Annotate(text);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(text.substr(mentions[0].begin,
                        mentions[0].end - mentions[0].begin),
            "Entity Resolution");
}

TEST(GazetteerTest, EmptyGazetteerAnnotatesNothing) {
  Gazetteer g;
  g.Build();
  EXPECT_TRUE(g.Annotate("anything at all").empty());
}

TEST(EntityTypeTest, Names) {
  EXPECT_EQ(EntityTypeToString(EntityType::kPerson), "person");
  EXPECT_EQ(EntityTypeToString(EntityType::kOrganization), "organization");
  EXPECT_EQ(EntityTypeToString(EntityType::kLocation), "location");
  EXPECT_EQ(EntityTypeToString(EntityType::kConcept), "concept");
}

}  // namespace
}  // namespace extract
}  // namespace weber

#include "eval/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace weber {
namespace eval {
namespace {

TEST(CalibrationTest, RejectsBadInput) {
  EXPECT_FALSE(EvaluateCalibration({}).ok());
  EXPECT_FALSE(EvaluateCalibration({{0.5, true}}, 0).ok());
}

TEST(CalibrationTest, PerfectPredictionsScoreZero) {
  std::vector<LabeledProbability> preds = {
      {1.0, true}, {1.0, true}, {0.0, false}, {0.0, false}};
  auto r = EvaluateCalibration(preds);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->brier_score, 0.0, 1e-12);
  EXPECT_NEAR(r->expected_calibration_error, 0.0, 1e-12);
  EXPECT_LT(r->log_loss, 1e-5);
}

TEST(CalibrationTest, ConstantHalfPredictionsScoreQuarterBrier) {
  std::vector<LabeledProbability> preds;
  for (int i = 0; i < 100; ++i) preds.push_back({0.5, i % 2 == 0});
  auto r = EvaluateCalibration(preds);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->brier_score, 0.25, 1e-12);
  EXPECT_NEAR(r->log_loss, std::log(2.0), 1e-9);
  // 0.5 predicted, 0.5 observed: perfectly calibrated albeit useless.
  EXPECT_NEAR(r->expected_calibration_error, 0.0, 1e-12);
}

TEST(CalibrationTest, ConfidentlyWrongIsPenalized) {
  std::vector<LabeledProbability> preds = {{0.99, false}, {0.01, true}};
  auto r = EvaluateCalibration(preds);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->brier_score, 0.9);
  EXPECT_GT(r->log_loss, 4.0);
  EXPECT_GT(r->expected_calibration_error, 0.9);
}

TEST(CalibrationTest, ReliabilityBinsTrackObservedRates) {
  std::vector<LabeledProbability> preds;
  // Bin [0.2, 0.3): predicted 0.25, observed 0.25 (1 of 4).
  for (int i = 0; i < 4; ++i) preds.push_back({0.25, i == 0});
  // Bin [0.8, 0.9): predicted 0.85, observed 0.5 (miscalibrated).
  for (int i = 0; i < 4; ++i) preds.push_back({0.85, i < 2});
  auto r = EvaluateCalibration(preds, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->reliability.size(), 2u);
  EXPECT_NEAR(r->reliability[0].mean_predicted, 0.25, 1e-12);
  EXPECT_NEAR(r->reliability[0].observed_rate, 0.25, 1e-12);
  EXPECT_EQ(r->reliability[0].count, 4);
  EXPECT_NEAR(r->reliability[1].mean_predicted, 0.85, 1e-12);
  EXPECT_NEAR(r->reliability[1].observed_rate, 0.50, 1e-12);
  // ECE = 0.5 * |0.25-0.25| + 0.5 * |0.85-0.5| = 0.175.
  EXPECT_NEAR(r->expected_calibration_error, 0.175, 1e-12);
}

TEST(CalibrationTest, ProbabilityOneLandsInTopBin) {
  std::vector<LabeledProbability> preds = {{1.0, true}, {0.97, true}};
  auto r = EvaluateCalibration(preds, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->reliability.size(), 1u);
  EXPECT_EQ(r->reliability[0].count, 2);
}

TEST(CalibrationTest, WellCalibratedNoisePassesEceCheck) {
  // Predictions drawn so that P(outcome) == predicted probability: ECE
  // must be small.
  Rng rng(99);
  std::vector<LabeledProbability> preds;
  for (int i = 0; i < 20000; ++i) {
    double p = rng.UniformDouble();
    preds.push_back({p, rng.Bernoulli(p)});
  }
  auto r = EvaluateCalibration(preds, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->expected_calibration_error, 0.02);
  // Brier of a perfectly calibrated uniform predictor: E[p(1-p)] = 1/6.
  EXPECT_NEAR(r->brier_score, 1.0 / 6.0, 0.01);
}

}  // namespace
}  // namespace eval
}  // namespace weber

// weber::match matcher tests: threshold/greedy/optimal semantics, the
// Hungarian solver against brute-force enumeration on small random
// matrices, the size-cutoff fallback, and symmetric-best-match filtering.

#include "match/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"

namespace weber {
namespace match {
namespace {

ScoreMatrix Matrix(int rows, int cols, std::vector<double> values) {
  ScoreMatrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.set(r, c, values[r * cols + c]);
  }
  return m;
}

std::set<std::pair<int, int>> PairSet(const Matching& matching) {
  std::set<std::pair<int, int>> out;
  for (const MatchedPair& p : matching.pairs) out.emplace(p.left, p.right);
  return out;
}

/// True iff no left or right index appears twice.
bool IsOneToOne(const Matching& matching) {
  std::set<int> lefts, rights;
  for (const MatchedPair& p : matching.pairs) {
    if (!lefts.insert(p.left).second) return false;
    if (!rights.insert(p.right).second) return false;
  }
  return true;
}

/// Sum of reduced weights (score - threshold) over the matched pairs — the
/// objective SolveOptimalAssignment maximizes.
double Gain(const Matching& matching, const ScoreMatrix& scores,
            double threshold) {
  double gain = 0.0;
  for (const MatchedPair& p : matching.pairs) {
    gain += scores.at(p.left, p.right) - threshold;
  }
  return gain;
}

/// Brute-force maximum assignment gain: every row picks a distinct free
/// column (or none); only pairs strictly above the threshold contribute.
double BruteForceGain(const ScoreMatrix& scores, double threshold, int row,
                      std::vector<char>* used) {
  if (row == scores.rows()) return 0.0;
  double best = BruteForceGain(scores, threshold, row + 1, used);  // skip row
  for (int c = 0; c < scores.cols(); ++c) {
    if ((*used)[c] || scores.at(row, c) <= threshold) continue;
    (*used)[c] = 1;
    best = std::max(best, scores.at(row, c) - threshold +
                              BruteForceGain(scores, threshold, row + 1, used));
    (*used)[c] = 0;
  }
  return best;
}

double BruteForceGain(const ScoreMatrix& scores, double threshold) {
  std::vector<char> used(scores.cols(), 0);
  return BruteForceGain(scores, threshold, 0, &used);
}

TEST(ThresholdMatcher, KeepsEveryEdgeAtOrAboveThreshold) {
  ScoreMatrix scores = Matrix(2, 2, {0.9, 0.5, 0.4, 0.6});
  MatcherOptions options;
  options.threshold = 0.5;
  Matching matching = MakeThresholdMatcher(options)->Match(scores);
  EXPECT_EQ(PairSet(matching),
            (std::set<std::pair<int, int>>{{0, 0}, {0, 1}, {1, 1}}));
  EXPECT_NEAR(matching.total_score, 0.9 + 0.5 + 0.6, 1e-12);
}

TEST(ThresholdMatcher, IsManyToMany) {
  // One left document similar to every right document: the threshold
  // matcher keeps all of them (it is the many-to-many baseline).
  ScoreMatrix scores = Matrix(1, 3, {0.8, 0.9, 0.7});
  Matching matching = MakeThresholdMatcher()->Match(scores);
  EXPECT_EQ(matching.pairs.size(), 3u);
  EXPECT_FALSE(IsOneToOne(matching));
}

TEST(ThresholdMatcher, EmptyMatrixYieldsEmptyMatching) {
  Matching matching = MakeThresholdMatcher()->Match(ScoreMatrix());
  EXPECT_TRUE(matching.pairs.empty());
  EXPECT_EQ(matching.total_score, 0.0);
}

TEST(GreedyMatcher, TakesEdgesBestFirstWhileEndpointsFree) {
  // Best edge (0,0)=0.9 blocks both cheaper completions; greedy ends with
  // one pair where the optimal assignment would find two.
  ScoreMatrix scores = Matrix(2, 2, {0.9, 0.8, 0.85, 0.2});
  MatcherOptions options;
  options.threshold = 0.5;
  Matching greedy = MakeGreedyMatcher(options)->Match(scores);
  EXPECT_EQ(PairSet(greedy), (std::set<std::pair<int, int>>{{0, 0}}));

  Matching optimal = MakeOptimalMatcher(options)->Match(scores);
  EXPECT_EQ(PairSet(optimal), (std::set<std::pair<int, int>>{{0, 1}, {1, 0}}));
  EXPECT_GT(optimal.total_score, greedy.total_score);
}

TEST(GreedyMatcher, OutputIsOneToOneAndSorted) {
  Rng rng(7);
  ScoreMatrix scores(6, 5);
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 5; ++c) scores.set(r, c, rng.UniformDouble());
  }
  Matching matching = MakeGreedyMatcher()->Match(scores);
  EXPECT_TRUE(IsOneToOne(matching));
  EXPECT_TRUE(std::is_sorted(
      matching.pairs.begin(), matching.pairs.end(),
      [](const MatchedPair& a, const MatchedPair& b) {
        return a.left != b.left ? a.left < b.left : a.right < b.right;
      }));
  for (const MatchedPair& p : matching.pairs) {
    EXPECT_GE(scores.at(p.left, p.right), 0.5);
  }
}

TEST(OptimalMatcher, MatchesBruteForceOnSmallRandomMatrices) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const int rows = 1 + static_cast<int>(rng.UniformUint64(4));
    const int cols = 1 + static_cast<int>(rng.UniformUint64(4));
    ScoreMatrix scores(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) scores.set(r, c, rng.UniformDouble());
    }
    const double threshold = 0.3;
    Matching matching = SolveOptimalAssignment(scores, threshold);
    EXPECT_TRUE(IsOneToOne(matching)) << "seed " << seed;
    for (const MatchedPair& p : matching.pairs) {
      EXPECT_GE(scores.at(p.left, p.right), threshold) << "seed " << seed;
    }
    EXPECT_NEAR(Gain(matching, scores, threshold),
                BruteForceGain(scores, threshold), 1e-9)
        << "seed " << seed << " rows " << rows << " cols " << cols;
  }
}

TEST(OptimalMatcher, HandlesBothRectangularOrientations) {
  // Wide: 1 row, 3 cols — picks the single best column.
  ScoreMatrix wide = Matrix(1, 3, {0.6, 0.9, 0.7});
  Matching m = SolveOptimalAssignment(wide, 0.5);
  EXPECT_EQ(PairSet(m), (std::set<std::pair<int, int>>{{0, 1}}));

  // Tall: 3 rows, 1 col — same matrix transposed.
  ScoreMatrix tall = Matrix(3, 1, {0.6, 0.9, 0.7});
  m = SolveOptimalAssignment(tall, 0.5);
  EXPECT_EQ(PairSet(m), (std::set<std::pair<int, int>>{{1, 0}}));
}

TEST(OptimalMatcher, LeavesBelowThresholdPairsUnmatched) {
  ScoreMatrix scores = Matrix(2, 2, {0.2, 0.1, 0.3, 0.4});
  Matching matching = SolveOptimalAssignment(scores, 0.5);
  EXPECT_TRUE(matching.pairs.empty());
}

TEST(OptimalMatcher, FallsBackToGreedyAboveSizeCutoff) {
  // The 2x2 trap above: optimal and greedy disagree, so the fallback is
  // observable through the output.
  ScoreMatrix scores = Matrix(2, 2, {0.9, 0.8, 0.85, 0.2});
  MatcherOptions options;
  options.threshold = 0.5;
  options.optimal_size_cutoff = 1;
  Matching fallback = MakeOptimalMatcher(options)->Match(scores);
  Matching greedy = MakeGreedyMatcher(options)->Match(scores);
  EXPECT_EQ(PairSet(fallback), PairSet(greedy));
}

TEST(SymmetricBest, KeepsOnlyReciprocalBestPairs) {
  // Row 0's best is col 0 and col 0's best is row 0 — kept. Row 1's best
  // is col 0 (taken from its perspective), so its threshold edge to col 1
  // is not reciprocal-best and gets dropped.
  ScoreMatrix scores = Matrix(2, 2, {0.9, 0.6, 0.8, 0.55});
  Matching all = MakeThresholdMatcher()->Match(scores);
  ASSERT_EQ(all.pairs.size(), 4u);
  Matching filtered = FilterSymmetricBest(scores, all);
  EXPECT_EQ(PairSet(filtered), (std::set<std::pair<int, int>>{{0, 0}}));
}

TEST(SymmetricBest, ComposesWithAnyMatcherViaOptions) {
  ScoreMatrix scores = Matrix(2, 2, {0.9, 0.6, 0.8, 0.55});
  MatcherOptions options;
  options.symmetric_best = true;
  Matching matching = MakeThresholdMatcher(options)->Match(scores);
  EXPECT_EQ(PairSet(matching), (std::set<std::pair<int, int>>{{0, 0}}));
}

TEST(SymmetricBest, TiesBreakTowardLowestIndex) {
  // Both columns score 0.8 against row 0: the row's best is col 0, so only
  // (0,0) can be reciprocal-best.
  ScoreMatrix scores = Matrix(1, 2, {0.8, 0.8});
  Matching filtered =
      FilterSymmetricBest(scores, MakeThresholdMatcher()->Match(scores));
  EXPECT_EQ(PairSet(filtered), (std::set<std::pair<int, int>>{{0, 0}}));
}

TEST(Matching, LeftAssignmentMapsUnmatchedToMinusOne) {
  Matching matching;
  matching.pairs = {{0, 2, 0.9}, {2, 0, 0.8}};
  EXPECT_EQ(matching.LeftAssignment(4), (std::vector<int>{2, -1, 0, -1}));
}

TEST(MakeMatcherByName, ResolvesKnownKindsAndRejectsUnknown) {
  for (const char* kind : {"threshold", "greedy", "optimal"}) {
    auto matcher = MakeMatcher(kind);
    ASSERT_TRUE(matcher.ok()) << kind;
    EXPECT_EQ((*matcher)->name(), kind);
  }
  auto bad = MakeMatcher("hungarian-ish");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace match
}  // namespace weber

// Pairwise matching metrics: precision/recall/F1 over a ground-truth
// partial bijection, the degenerate-denominator conventions, and
// micro-averaged aggregation across blocks.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "eval/metrics.h"

namespace weber {
namespace eval {
namespace {

using Pairs = std::vector<std::pair<int, int>>;

TEST(MatchingMetrics, PerfectPredictionScoresOne) {
  Pairs truth = {{0, 0}, {1, 2}, {2, 1}};
  MatchingReport report = EvaluateMatching(truth, truth);
  EXPECT_EQ(report.true_positives, 3);
  EXPECT_EQ(report.false_positives, 0);
  EXPECT_EQ(report.false_negatives, 0);
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
  EXPECT_DOUBLE_EQ(report.f1, 1.0);
}

TEST(MatchingMetrics, CountsHitsMissesAndSpurious) {
  Pairs truth = {{0, 0}, {1, 1}};
  Pairs predicted = {{0, 0}, {2, 2}};
  MatchingReport report = EvaluateMatching(truth, predicted);
  EXPECT_EQ(report.true_positives, 1);
  EXPECT_EQ(report.false_positives, 1);
  EXPECT_EQ(report.false_negatives, 1);
  EXPECT_DOUBLE_EQ(report.precision, 0.5);
  EXPECT_DOUBLE_EQ(report.recall, 0.5);
  EXPECT_DOUBLE_EQ(report.f1, 0.5);
}

TEST(MatchingMetrics, OrderOfPairsDoesNotMatter) {
  Pairs truth = {{1, 1}, {0, 0}};
  Pairs predicted = {{0, 0}, {1, 1}};
  MatchingReport report = EvaluateMatching(truth, predicted);
  EXPECT_EQ(report.true_positives, 2);
  EXPECT_DOUBLE_EQ(report.f1, 1.0);
}

TEST(MatchingMetrics, DuplicatePredictionsCollapse) {
  Pairs truth = {{0, 0}};
  Pairs predicted = {{0, 0}, {0, 0}, {0, 0}};
  MatchingReport report = EvaluateMatching(truth, predicted);
  EXPECT_EQ(report.true_positives, 1);
  EXPECT_EQ(report.false_positives, 0);
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
}

TEST(MatchingMetrics, NoPredictionsMeansVacuousPrecision) {
  // Empty prediction sets make no mistakes: precision 1, recall 0.
  Pairs truth = {{0, 0}, {1, 1}};
  MatchingReport report = EvaluateMatching(truth, {});
  EXPECT_EQ(report.true_positives, 0);
  EXPECT_EQ(report.false_negatives, 2);
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
  EXPECT_DOUBLE_EQ(report.recall, 0.0);
  EXPECT_DOUBLE_EQ(report.f1, 0.0);
}

TEST(MatchingMetrics, NoTruthMeansVacuousRecall) {
  Pairs predicted = {{0, 0}};
  MatchingReport report = EvaluateMatching({}, predicted);
  EXPECT_EQ(report.false_positives, 1);
  EXPECT_DOUBLE_EQ(report.precision, 0.0);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
  EXPECT_DOUBLE_EQ(report.f1, 0.0);
}

TEST(MatchingMetrics, EmptyTruthAndPredictionIsPerfect) {
  MatchingReport report = EvaluateMatching({}, {});
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
  EXPECT_DOUBLE_EQ(report.f1, 1.0);
}

TEST(MatchingMetrics, UnmatchedTruthPairsCountAsMisses) {
  // A matcher that leaves everything unmatched must not score well just
  // because it produced nothing wrong.
  Pairs truth = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  Pairs predicted = {{0, 0}};
  MatchingReport report = EvaluateMatching(truth, predicted);
  EXPECT_EQ(report.false_negatives, 3);
  EXPECT_DOUBLE_EQ(report.recall, 0.25);
}

TEST(MatchingMetrics, SumIsMicroAveraged) {
  // Block 1: 1 tp, 1 fp, 0 fn. Block 2: 1 tp, 0 fp, 3 fn. Micro-average
  // sums the counts first: P = 2/3, R = 2/5 — not the mean of the
  // per-block rates.
  MatchingReport a = EvaluateMatching({{0, 0}}, {{0, 0}, {1, 1}});
  MatchingReport b =
      EvaluateMatching({{0, 0}, {1, 1}, {2, 2}, {3, 3}}, {{0, 0}});
  MatchingReport sum = SumMatchingReports({a, b});
  EXPECT_EQ(sum.true_positives, 2);
  EXPECT_EQ(sum.false_positives, 1);
  EXPECT_EQ(sum.false_negatives, 3);
  EXPECT_DOUBLE_EQ(sum.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(sum.recall, 2.0 / 5.0);
}

TEST(MatchingMetrics, SumOfNothingIsPerfect) {
  MatchingReport sum = SumMatchingReports({});
  EXPECT_EQ(sum.true_positives, 0);
  EXPECT_DOUBLE_EQ(sum.precision, 1.0);
  EXPECT_DOUBLE_EQ(sum.recall, 1.0);
}

}  // namespace
}  // namespace eval
}  // namespace weber

# Overload-protection smoke test, two legs:
#
#   1. Deterministic latency chaos over stdio: a 30 ms injected delay at
#      serve.assign plus 1 ms request deadlines produces DEADLINE_EXCEEDED
#      twice, trips the shard breaker (threshold 2), and the next write is
#      answered OVERLOADED while reads keep serving — all asserted line by
#      line, plus the stats counters.
#   2. Open-loop storm over TCP: weber_loadgen --overload measures a
#      closed-loop baseline, drives assigns at 4x that rate against a
#      server with a per-shard pending budget and probabilistic injected
#      latency, and self-asserts the contract: nonzero sheds, bounded
#      answered p99, zero crashes, recovery QPS/p50 within 10% of baseline.
#
# Invoked by ctest with -DWEBER_BIN=<weber> -DSERVE_BIN=<weber_serve>
# -DLOADGEN_BIN=<weber_loadgen> -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

# --help must document the overload flags.
run(${SERVE_BIN} --help)
foreach(flag queue-cap max-pending-per-shard default-deadline-ms
        breaker-failures max-connections read-timeout-ms listen-backlog)
  if(NOT LAST_OUTPUT MATCHES "--${flag}")
    message(FATAL_ERROR "--help does not mention --${flag}:\n${LAST_OUTPUT}")
  endif()
endforeach()

# ---------------------------------------------------------------------------
# Leg 1 — deterministic latency chaos over stdio.
file(WRITE "${WORK_DIR}/chaos_session.txt" "\
assign cohen 0 deadline 1
assign cohen 1 deadline 1
assign cohen 2
query cohen 0
stats
ping
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
          --breaker-failures=2 --breaker-cooldown-ms=60000
          --retry-after-ms=25
          "--faults=serve.assign=latency:1:30"
  INPUT_FILE ${WORK_DIR}/chaos_session.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos session failed (${rc}):\n${out}\n${err}")
endif()
string(REGEX REPLACE "\n$" "" out "${out}")
string(REPLACE "\n" ";" lines "${out}")
list(GET lines 0 l_first)
list(GET lines 1 l_second)
list(GET lines 2 l_shed)
list(GET lines 3 l_query)
list(GET lines 4 l_stats)
list(GET lines 5 l_ping)
list(GET lines 6 l_quit)
if(NOT l_first STREQUAL "DEADLINE_EXCEEDED")
  message(FATAL_ERROR "first deadlined assign: ${l_first}")
endif()
if(NOT l_second STREQUAL "DEADLINE_EXCEEDED")
  message(FATAL_ERROR "second deadlined assign: ${l_second}")
endif()
if(NOT l_shed STREQUAL "OVERLOADED 25")
  message(FATAL_ERROR "tripped breaker did not shed the write: ${l_shed}")
endif()
if(NOT l_query MATCHES "^ok -?[0-9]+ [0-9]+$")
  message(FATAL_ERROR "read was not served while the breaker is open: ${l_query}")
endif()
foreach(needle
    "\"deadline_exceeded\":2" "\"breaker_trips\":1" "\"breaker_sheds\":1"
    "\"breakers_open\":1" "\"total_sheds\":1" "\"breaker\":\"open\""
    "\"deadline_hits\":2")
  if(NOT l_stats MATCHES "${needle}")
    message(FATAL_ERROR "stats missing ${needle}:\n${l_stats}")
  endif()
endforeach()
if(NOT l_ping STREQUAL "ok")
  message(FATAL_ERROR "server did not survive the chaos leg: ${l_ping}")
endif()
if(NOT l_quit STREQUAL "ok")
  message(FATAL_ERROR "quit response unexpected: ${l_quit}")
endif()

# An oversized request line (no newline for > 4096 bytes) must be answered
# with one error and contained, not crash or stall the stdio loop.
string(REPEAT "x" 9000 long_line)
file(WRITE "${WORK_DIR}/oversized_session.txt" "${long_line}
ping
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
  INPUT_FILE ${WORK_DIR}/oversized_session.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "oversized session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "err InvalidArgument")
  message(FATAL_ERROR "oversized line was not rejected:\n${out}")
endif()
if(NOT out MATCHES "\nok\n")
  message(FATAL_ERROR "server did not resync after the oversized line:\n${out}")
endif()

# ---------------------------------------------------------------------------
# Leg 2 — open-loop overload storm over TCP.
file(WRITE "${WORK_DIR}/storm.sh" "\
cd '${WORK_DIR}' || exit 1
'${SERVE_BIN}' --dataset=dataset.txt --gazetteer=gazetteer.txt \\
  --nostdio --port=0 \\
  --max-connections=64 --max-pending-per-shard=2 --queue-cap=64 \\
  --retry-after-ms=5 \\
  '--faults=serve.assign=latency:0.5:10' \\
  > server.out 2> server.err &
pid=\$!
port=''
i=0
while [ \$i -lt 100 ]; do
  port=\$(sed -n 's/^listening on 127.0.0.1:\\([0-9]*\\)\$/\\1/p' server.out)
  [ -n \"\$port\" ] && break
  i=\$((i + 1))
  sleep 0.1
done
if [ -z \"\$port\" ]; then
  echo 'server never announced its port' >&2
  cat server.err >&2
  kill \$pid 2>/dev/null
  exit 1
fi
# The storm rate is pinned, not derived from the query baseline: the
# baseline phase measures microsecond reads, while storm assigns cost
# ~5 ms each under the injected latency — 2000/s is >4x the server's
# admitted-assign capacity (real saturation). 16 connections keep the
# instantaneous per-shard concurrency above the pending budget so the
# server sheds early; with too few connections nearly every assign is
# admitted and the answered p99 measures client socket queueing instead
# of server behaviour.
'${LOADGEN_BIN}' --port=\$port --dataset=dataset.txt --overload \\
  --clients=16 --baseline_seconds=2.5 --storm_seconds=3 \\
  --recovery_seconds=2.5 --storm_qps=2000 --overload_deadline_ms=50 \\
  --require_sheds --recovery_tolerance=0.10 --max_storm_p99_ms=2000 \\
  --out=BENCH_overload.json
rc=\$?
kill -TERM \$pid 2>/dev/null
wait \$pid
srv=\$?
if [ \$rc -ne 0 ]; then
  echo \"loadgen failed (\$rc)\" >&2
  cat server.err >&2
  exit \$rc
fi
if [ \$srv -ne 0 ]; then
  echo \"server exited \$srv after SIGTERM (expected graceful 0)\" >&2
  cat server.err >&2
  exit 1
fi
exit 0
")
execute_process(
  COMMAND sh ${WORK_DIR}/storm.sh
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "overload storm failed (${rc}):\n${out}\n${err}")
endif()
message(STATUS "storm leg output:\n${out}")

# The report must carry the storm's shed accounting.
file(READ "${WORK_DIR}/BENCH_overload.json" report)
foreach(needle "\"benchmark\":\"weber_serve_overload\"" "\"storm\""
        "\"sheds\"" "\"deadline_exceeded\"" "\"server_sheds_delta\""
        "\"violations\":0")
  if(NOT report MATCHES "${needle}")
    message(FATAL_ERROR "BENCH_overload.json missing ${needle}:\n${report}")
  endif()
endforeach()

message(STATUS "weber_serve overload smoke test passed")

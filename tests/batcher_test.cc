#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace weber {
namespace serve {
namespace {

/// Collects flushed batches and lets tests wait for a request count.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<int>> batches;
  int total = 0;

  void Flush(std::vector<int> batch) {
    std::lock_guard<std::mutex> lock(mu);
    total += static_cast<int>(batch.size());
    batches.push_back(std::move(batch));
    cv.notify_all();
  }

  bool WaitForTotal(int n, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return total >= n; });
  }
};

TEST(MicroBatcherTest, SizeTriggeredFlush) {
  Collector collector;
  BatcherOptions options;
  options.max_batch_size = 4;
  options.max_delay_ms = 10000.0;  // deadline effectively off
  MicroBatcher<int> batcher(options,
                            [&](std::vector<int> b) { collector.Flush(std::move(b)); });
  for (int i = 0; i < 8; ++i) batcher.Submit(i);
  ASSERT_TRUE(collector.WaitForTotal(8));
  std::lock_guard<std::mutex> lock(collector.mu);
  // Order preserved across batches; each batch at most max_batch_size.
  std::vector<int> flat;
  for (const auto& batch : collector.batches) {
    EXPECT_LE(batch.size(), 4u);
    flat.insert(flat.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(flat, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(MicroBatcherTest, DeadlineTriggeredFlush) {
  Collector collector;
  BatcherOptions options;
  options.max_batch_size = 1000;  // size trigger effectively off
  options.max_delay_ms = 5.0;
  MicroBatcher<int> batcher(options,
                            [&](std::vector<int> b) { collector.Flush(std::move(b)); });
  batcher.Submit(42);
  // Nothing reaches the size trigger; only the deadline can flush this.
  ASSERT_TRUE(collector.WaitForTotal(1));
  std::lock_guard<std::mutex> lock(collector.mu);
  ASSERT_EQ(collector.batches.size(), 1u);
  EXPECT_EQ(collector.batches[0], (std::vector<int>{42}));
}

TEST(MicroBatcherTest, DestructorFlushesPending) {
  Collector collector;
  {
    BatcherOptions options;
    options.max_batch_size = 1000;
    options.max_delay_ms = 60000.0;
    MicroBatcher<int> batcher(options, [&](std::vector<int> b) {
      collector.Flush(std::move(b));
    });
    for (int i = 0; i < 5; ++i) batcher.Submit(i);
  }
  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_EQ(collector.total, 5);
}

TEST(MicroBatcherTest, CountersTrackFlushes) {
  Collector collector;
  BatcherOptions options;
  options.max_batch_size = 2;
  options.max_delay_ms = 10000.0;
  MicroBatcher<int> batcher(options,
                            [&](std::vector<int> b) { collector.Flush(std::move(b)); });
  for (int i = 0; i < 6; ++i) batcher.Submit(i);
  ASSERT_TRUE(collector.WaitForTotal(6));
  EXPECT_EQ(batcher.requests_flushed(), 6);
  EXPECT_GE(batcher.batches_flushed(), 3);
}

TEST(MicroBatcherTest, ConcurrentSubmittersLoseNothing) {
  Collector collector;
  BatcherOptions options;
  options.max_batch_size = 8;
  options.max_delay_ms = 1.0;
  {
    MicroBatcher<int> batcher(options, [&](std::vector<int> b) {
      collector.Flush(std::move(b));
    });
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 100; ++i) batcher.Submit(t * 100 + i);
      });
    }
    for (auto& t : threads) t.join();
  }
  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_EQ(collector.total, 400);
  std::vector<bool> seen(400, false);
  for (const auto& batch : collector.batches) {
    for (int v : batch) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 400);
      EXPECT_FALSE(seen[v]) << "duplicate " << v;
      seen[v] = true;
    }
  }
}

TEST(MicroBatcherTest, LeftoverAfterPartialDrainKeepsItsDeadline) {
  // Regression: a size-triggered partial drain used to restart the leftover
  // request's delay from the drain instant, so a straggler left behind by a
  // burst could wait nearly twice max_delay_ms with no follow-up traffic.
  // The flush deadline must stay anchored to the oldest pending arrival.
  using ClockMs = std::chrono::duration<double, std::milli>;
  Collector collector;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  int flushes = 0;
  std::vector<std::chrono::steady_clock::time_point> flush_times;
  BatcherOptions options;
  options.max_batch_size = 2;
  options.max_delay_ms = 1000.0;
  MicroBatcher<int> batcher(options, [&](std::vector<int> b) {
    {
      std::unique_lock<std::mutex> lock(gate_mu);
      // Park the flusher on its first flush (a sacrificial full batch) so
      // the test can over-fill the next batch while no drain can happen —
      // guaranteeing a partial drain with a leftover in every interleaving.
      if (++flushes == 1) gate_cv.wait(lock, [&] { return gate_open; });
      flush_times.push_back(std::chrono::steady_clock::now());
    }
    collector.Flush(std::move(b));
  });
  const auto start = std::chrono::steady_clock::now();
  batcher.Submit(100);
  batcher.Submit(101);  // full batch: drains, then blocks on the gate
  batcher.Submit(0);    // opens the batch under test at ~t0
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  batcher.Submit(1);
  batcher.Submit(2);  // three pending: the drain will leave one behind
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(collector.WaitForTotal(5, 5000));
  std::lock_guard<std::mutex> lock(gate_mu);
  ASSERT_EQ(flush_times.size(), 3u);
  const double leftover_ms = ClockMs(flush_times[2] - start).count();
  const double drain_to_leftover_ms =
      ClockMs(flush_times[2] - flush_times[1]).count();
  // Anchored deadline: the straggler flushes max_delay_ms after the batch
  // under test opened (~1000 ms from start), i.e. ~500 ms after the partial
  // drain. The old behaviour waited a fresh max_delay_ms from the drain
  // instant, so its drain-to-leftover gap was never below 1000 ms;
  // comparing against the observed drain time keeps the bound meaningful
  // even when a loaded scheduler delays everything.
  EXPECT_GE(leftover_ms, options.max_delay_ms - 50.0);
  EXPECT_LT(drain_to_leftover_ms, options.max_delay_ms - 100.0);
}

TEST(MicroBatcherTest, TrySubmitRejectsAtCapAndAcceptsAfterDrain) {
  Collector collector;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  BatcherOptions options;
  options.max_batch_size = 1;  // every submit drains immediately...
  options.max_delay_ms = 10000.0;
  options.max_pending = 2;
  MicroBatcher<int> batcher(options, [&](std::vector<int> b) {
    {
      // ...but the flusher parks here, so pending requests pile up.
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    collector.Flush(std::move(b));
  });
  int first = 100;
  ASSERT_TRUE(batcher.TrySubmit(first));
  // The flusher may or may not have claimed the first request yet, so admit
  // until the cap reports full, then assert rejection is sticky.
  int value = 200;
  int admitted = 1;
  while (batcher.TrySubmit(value)) {
    ++value;
    ++admitted;
    ASSERT_LE(admitted, 4) << "cap never enforced";
  }
  int rejected_value = 999;
  EXPECT_FALSE(batcher.TrySubmit(rejected_value));
  EXPECT_EQ(rejected_value, 999);  // rejected requests are left untouched
  EXPECT_GE(batcher.rejected(), 2);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(collector.WaitForTotal(admitted));
  int late = 300;
  EXPECT_TRUE(batcher.TrySubmit(late));  // drained: admission resumes
  ASSERT_TRUE(collector.WaitForTotal(admitted + 1));
  std::lock_guard<std::mutex> lock(collector.mu);
  for (const auto& batch : collector.batches) {
    for (int v : batch) EXPECT_NE(v, 999) << "rejected request was flushed";
  }
}

TEST(MicroBatcherTest, ZeroBatchSizeClampsToOne) {
  Collector collector;
  BatcherOptions options;
  options.max_batch_size = 0;
  options.max_delay_ms = 10000.0;
  MicroBatcher<int> batcher(options,
                            [&](std::vector<int> b) { collector.Flush(std::move(b)); });
  batcher.Submit(7);
  ASSERT_TRUE(collector.WaitForTotal(1));
}

}  // namespace
}  // namespace serve
}  // namespace weber

// Tests for the experiment JSON export and the parallel runner.

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "corpus/generator.h"
#include "corpus/presets.h"

namespace weber {
namespace core {
namespace {

class ExperimentJsonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result =
        corpus::SyntheticWebGenerator(corpus::TinyConfig(0x9)).Generate();
    ASSERT_TRUE(result.ok());
    data_ = new corpus::SyntheticData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* ExperimentJsonTest::data_ = nullptr;

TEST_F(ExperimentJsonTest, ParallelMatchesSerialExactly) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 2, 0xF00);
  ASSERT_TRUE(runner.Prepare().ok());
  std::vector<ExperimentConfig> configs(3);
  configs[0].label = "C10";
  configs[1].label = "I10";
  configs[1].options.use_region_criteria = false;
  configs[2].label = "W";
  configs[2].options.combination = CombinationStrategy::kWeightedAverage;

  auto serial = runner.RunAll(configs);
  auto parallel = runner.RunAllParallel(configs, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].label, (*parallel)[i].label);
    EXPECT_DOUBLE_EQ((*serial)[i].overall.fp_measure,
                     (*parallel)[i].overall.fp_measure);
    EXPECT_DOUBLE_EQ((*serial)[i].overall.rand_index,
                     (*parallel)[i].overall.rand_index);
  }
}

TEST_F(ExperimentJsonTest, ParallelWithOneThreadFallsBackToSerial) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 1, 0xF01);
  ASSERT_TRUE(runner.Prepare().ok());
  ExperimentConfig config;
  config.label = "x";
  auto r = runner.RunAllParallel({config}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST_F(ExperimentJsonTest, ParallelPropagatesErrors) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 1, 0xF02);
  ASSERT_TRUE(runner.Prepare().ok());
  std::vector<ExperimentConfig> configs(2);
  configs[0].label = "good";
  configs[1].label = "bad";
  configs[1].options.function_names = {"F77"};
  EXPECT_EQ(runner.RunAllParallel(configs, 2).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExperimentJsonTest, ParallelRequiresPrepare) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 1, 0xF03);
  ExperimentConfig config;
  EXPECT_EQ(runner.RunAllParallel({config}, 2).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ExperimentJsonTest, JsonExportContainsEveryBlockAndConfig) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 1, 0xF04);
  ASSERT_TRUE(runner.Prepare().ok());
  ExperimentConfig config;
  config.label = "C10";
  auto results = runner.RunAll({config});
  ASSERT_TRUE(results.ok());
  std::ostringstream os;
  ASSERT_TRUE(WriteExperimentJson(data_->dataset, 1, *results, os).ok());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"dataset\":\"tiny-synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"C10\""), std::string::npos);
  for (const corpus::Block& block : data_->dataset.blocks) {
    EXPECT_NE(json.find("\"name\":\"" + block.query + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"fp\":"), std::string::npos);
  // RunHealth diagnostics are part of every config object; a clean run
  // reports all-zero counters.
  EXPECT_NE(json.find("\"health\":"), std::string::npos);
  for (const char* key :
       {"\"value_violations\":", "\"asymmetry_violations\":",
        "\"quarantined_functions\":", "\"skipped_criteria\":",
        "\"degraded_blocks\":", "\"deadline_hits\":", "\"budget_hits\":",
        "\"skipped_pairs\":", "\"clustering_fallbacks\":",
        "\"retried_loads\":", "\"skipped_blocks\":",
        "\"dimension_corrections\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"value_violations\":0"), std::string::npos);
  // Well-formed bracket balance (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(ExperimentJsonTest, JsonExportRejectsMisalignedResults) {
  ExperimentResult bogus;
  bogus.label = "x";
  bogus.per_block.resize(1);  // dataset has 3 blocks
  std::ostringstream os;
  EXPECT_EQ(WriteExperimentJson(data_->dataset, 1, {bogus}, os).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace core
}  // namespace weber

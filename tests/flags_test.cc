#include "common/flags.h"

#include <gtest/gtest.h>

namespace weber {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

class FlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flags_.AddString("name", "default", "a string");
    flags_.AddInt("count", 5, "an int");
    flags_.AddDouble("rate", 0.5, "a double");
    flags_.AddBool("verbose", false, "a bool");
  }
  FlagParser flags_;
};

TEST_F(FlagsTest, DefaultsApplyWithoutArguments) {
  auto argv = Argv({});
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags_.GetString("name"), "default");
  EXPECT_EQ(flags_.GetInt("count"), 5);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("rate"), 0.5);
  EXPECT_FALSE(flags_.GetBool("verbose"));
  EXPECT_FALSE(flags_.WasSet("name"));
}

TEST_F(FlagsTest, EqualsSyntax) {
  auto argv = Argv({"--name=weber", "--count=9", "--rate=0.25",
                    "--verbose=true"});
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags_.GetString("name"), "weber");
  EXPECT_EQ(flags_.GetInt("count"), 9);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags_.GetBool("verbose"));
  EXPECT_TRUE(flags_.WasSet("count"));
}

TEST_F(FlagsTest, SpaceSeparatedValues) {
  auto argv = Argv({"--name", "x", "--count", "3"});
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags_.GetString("name"), "x");
  EXPECT_EQ(flags_.GetInt("count"), 3);
}

TEST_F(FlagsTest, BareAndNoBooleanForms) {
  {
    auto argv = Argv({"--verbose"});
    ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
    EXPECT_TRUE(flags_.GetBool("verbose"));
  }
  {
    auto argv = Argv({"--noverbose"});
    ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
    EXPECT_FALSE(flags_.GetBool("verbose"));
  }
}

TEST_F(FlagsTest, PositionalArgumentsCollected) {
  auto argv = Argv({"first", "--count=1", "second"});
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags_.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST_F(FlagsTest, UnknownFlagRejected) {
  auto argv = Argv({"--bogus=1"});
  EXPECT_EQ(flags_.Parse(static_cast<int>(argv.size()), argv.data()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FlagsTest, MalformedValuesRejected) {
  {
    auto argv = Argv({"--count=abc"});
    EXPECT_FALSE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
  {
    auto argv = Argv({"--rate=x"});
    EXPECT_FALSE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
  {
    auto argv = Argv({"--verbose=maybe"});
    EXPECT_FALSE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
}

TEST_F(FlagsTest, MissingTrailingValueRejected) {
  auto argv = Argv({"--name"});
  EXPECT_FALSE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST_F(FlagsTest, UsageListsAllFlags) {
  std::string usage = flags_.Usage("test program");
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("a double"), std::string::npos);
  EXPECT_NE(usage.find("test program"), std::string::npos);
}

}  // namespace
}  // namespace weber

# End-to-end smoke test of the weber_serve binary: --help, then a real
# request/response round-trip over the stdio protocol against a generated
# corpus. Invoked by ctest with -DWEBER_BIN=<weber> -DSERVE_BIN=<weber_serve>
# -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --help must exit 0 and document the serving flags.
run(${SERVE_BIN} --help)
foreach(flag dataset gazetteer port compact_every max_batch_size)
  if(NOT LAST_OUTPUT MATCHES "--${flag}")
    message(FATAL_ERROR "--help does not mention --${flag}:\n${LAST_OUTPUT}")
  endif()
endforeach()

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

# One scripted session over stdin/stdout: liveness, assignment, compaction,
# snapshot read-back, stats, quit.
file(WRITE "${WORK_DIR}/session.txt" "\
ping
assign cohen 0
assign cohen 1
compact cohen
query cohen 0
dump cohen
stats
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
  INPUT_FILE ${WORK_DIR}/session.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve session failed (${rc}):\n${out}\n${err}")
endif()

string(REPLACE "\n" ";" lines "${out}")
list(GET lines 0 l_ping)
list(GET lines 1 l_assign0)
list(GET lines 3 l_compact)
list(GET lines 4 l_query)
list(GET lines 5 l_dump)
list(GET lines 6 l_stats)
list(GET lines 7 l_quit)
if(NOT l_ping STREQUAL "ok")
  message(FATAL_ERROR "ping response unexpected: ${l_ping}")
endif()
if(NOT l_assign0 MATCHES "^ok [0-9]+ [0-9]+$")
  message(FATAL_ERROR "assign response unexpected: ${l_assign0}")
endif()
if(NOT l_compact MATCHES "^ok 1$")
  message(FATAL_ERROR "compact response unexpected: ${l_compact}")
endif()
if(NOT l_query MATCHES "^ok (-?[0-9]+) 1$")
  message(FATAL_ERROR "query response unexpected: ${l_query}")
endif()
if(NOT l_dump MATCHES "^ok 30 0:")
  message(FATAL_ERROR "dump response unexpected: ${l_dump}")
endif()
if(NOT l_stats MATCHES "^ok \\{.*\"assigns\":2.*\\}$")
  message(FATAL_ERROR "stats response unexpected: ${l_stats}")
endif()
if(NOT l_quit STREQUAL "ok")
  message(FATAL_ERROR "quit response unexpected: ${l_quit}")
endif()

# The metrics verb over stdio: "ok <n>" followed by n Prometheus text
# lines. Run with --slow-request-ms so tracing is armed and the trace
# counters appear in the payload.
file(WRITE "${WORK_DIR}/metrics.txt" "\
assign cohen 0
query cohen 0
metrics
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
          --slow-request-ms=10000
  INPUT_FILE ${WORK_DIR}/metrics.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT err MATCHES "slow-request logging armed")
  message(FATAL_ERROR "slow-request arming not announced:\n${err}")
endif()
string(REPLACE "\n" ";" metrics_lines "${out}")
list(GET metrics_lines 2 m_header)
if(NOT m_header MATCHES "^ok ([0-9]+)$")
  message(FATAL_ERROR "metrics header unexpected: ${m_header}")
endif()
set(m_count ${CMAKE_MATCH_1})
list(LENGTH metrics_lines m_total)
# assign + query + header + payload(n) + quit (the trailing newline's
# empty element is dropped by CMake's list handling)
math(EXPR m_expected "${m_count} + 4")
if(NOT m_total EQUAL m_expected)
  message(FATAL_ERROR
          "metrics payload advertised ${m_count} lines but session produced "
          "${m_total} elements (expected ${m_expected}):\n${out}")
endif()
if(NOT out MATCHES "# TYPE weber_assigns_total counter")
  message(FATAL_ERROR "metrics payload lacks weber_assigns_total:\n${out}")
endif()
if(NOT out MATCHES "weber_assigns_total 1")
  message(FATAL_ERROR "weber_assigns_total should read 1:\n${out}")
endif()
if(NOT out MATCHES "weber_trace_spans_total")
  message(FATAL_ERROR "trace counters missing despite --slow-request-ms:\n${out}")
endif()

# A bad request must produce an err line, not kill the server.
file(WRITE "${WORK_DIR}/bad.txt" "\
assign nonesuch 0
ping
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
  INPUT_FILE ${WORK_DIR}/bad.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bad-request session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "err NotFound")
  message(FATAL_ERROR "bad request did not produce err NotFound:\n${out}")
endif()

# Chaos: with serve.compact armed, compaction reports an error but the
# server keeps serving (ping and quit still answer).
file(WRITE "${WORK_DIR}/chaos.txt" "\
assign cohen 0
compact cohen
ping
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
          "--faults=serve.compact=error"
  INPUT_FILE ${WORK_DIR}/chaos.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "err ")
  message(FATAL_ERROR "armed compaction fault did not surface:\n${out}")
endif()
string(REPLACE "\n" ";" chaos_lines "${out}")
list(GET chaos_lines 2 chaos_ping)
if(NOT chaos_ping STREQUAL "ok")
  message(FATAL_ERROR "server did not survive the failed compaction: ${out}")
endif()

message(STATUS "weber_serve smoke test passed")

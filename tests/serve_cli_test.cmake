# End-to-end smoke test of the weber_serve binary: --help, then a real
# request/response round-trip over the stdio protocol against a generated
# corpus. Invoked by ctest with -DWEBER_BIN=<weber> -DSERVE_BIN=<weber_serve>
# -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --help must exit 0 and document the serving flags.
run(${SERVE_BIN} --help)
foreach(flag dataset gazetteer port compact_every max_batch_size)
  if(NOT LAST_OUTPUT MATCHES "--${flag}")
    message(FATAL_ERROR "--help does not mention --${flag}:\n${LAST_OUTPUT}")
  endif()
endforeach()

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

# One scripted session over stdin/stdout: liveness, assignment, compaction,
# snapshot read-back, stats, quit.
file(WRITE "${WORK_DIR}/session.txt" "\
ping
assign cohen 0
assign cohen 1
compact cohen
query cohen 0
dump cohen
stats
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
  INPUT_FILE ${WORK_DIR}/session.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve session failed (${rc}):\n${out}\n${err}")
endif()

string(REPLACE "\n" ";" lines "${out}")
list(GET lines 0 l_ping)
list(GET lines 1 l_assign0)
list(GET lines 3 l_compact)
list(GET lines 4 l_query)
list(GET lines 5 l_dump)
list(GET lines 6 l_stats)
list(GET lines 7 l_quit)
if(NOT l_ping STREQUAL "ok")
  message(FATAL_ERROR "ping response unexpected: ${l_ping}")
endif()
if(NOT l_assign0 MATCHES "^ok [0-9]+ [0-9]+$")
  message(FATAL_ERROR "assign response unexpected: ${l_assign0}")
endif()
if(NOT l_compact MATCHES "^ok 1$")
  message(FATAL_ERROR "compact response unexpected: ${l_compact}")
endif()
if(NOT l_query MATCHES "^ok (-?[0-9]+) 1$")
  message(FATAL_ERROR "query response unexpected: ${l_query}")
endif()
if(NOT l_dump MATCHES "^ok 30 0:")
  message(FATAL_ERROR "dump response unexpected: ${l_dump}")
endif()
if(NOT l_stats MATCHES "^ok \\{.*\"assigns\":2.*\\}$")
  message(FATAL_ERROR "stats response unexpected: ${l_stats}")
endif()
if(NOT l_quit STREQUAL "ok")
  message(FATAL_ERROR "quit response unexpected: ${l_quit}")
endif()

# A bad request must produce an err line, not kill the server.
file(WRITE "${WORK_DIR}/bad.txt" "\
assign nonesuch 0
ping
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
  INPUT_FILE ${WORK_DIR}/bad.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bad-request session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "err NotFound")
  message(FATAL_ERROR "bad request did not produce err NotFound:\n${out}")
endif()

# Chaos: with serve.compact armed, compaction reports an error but the
# server keeps serving (ping and quit still answer).
file(WRITE "${WORK_DIR}/chaos.txt" "\
assign cohen 0
compact cohen
ping
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
          "--faults=serve.compact=error"
  INPUT_FILE ${WORK_DIR}/chaos.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "err ")
  message(FATAL_ERROR "armed compaction fault did not surface:\n${out}")
endif()
string(REPLACE "\n" ";" chaos_lines "${out}")
list(GET chaos_lines 2 chaos_ping)
if(NOT chaos_ping STREQUAL "ok")
  message(FATAL_ERROR "server did not survive the failed compaction: ${out}")
endif()

message(STATUS "weber_serve smoke test passed")

#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace weber {
namespace {

TEST(JsonWriterTest, FlatObject) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("name").String("cohen");
  json.Key("fp").Number(0.8774);
  json.Key("n").Number(100);
  json.Key("ok").Bool(true);
  json.Key("missing").Null();
  json.EndObject();
  EXPECT_EQ(os.str(),
            "{\"name\":\"cohen\",\"fp\":0.8774,\"n\":100,\"ok\":true,"
            "\"missing\":null}");
}

TEST(JsonWriterTest, NestedStructures) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("sizes").BeginArray();
  json.Number(3).Number(2).Number(1);
  json.EndArray();
  json.Key("inner").BeginObject();
  json.Key("x").Number(1);
  json.EndObject();
  json.EndObject();
  EXPECT_EQ(os.str(), "{\"sizes\":[3,2,1],\"inner\":{\"x\":1}}");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginArray();
  json.BeginObject().Key("a").Number(1).EndObject();
  json.BeginObject().Key("b").Number(2).EndObject();
  json.EndArray();
  EXPECT_EQ(os.str(), "[{\"a\":1},{\"b\":2}]");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginArray();
  json.Number(std::numeric_limits<double>::quiet_NaN());
  json.Number(std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriterTest, EmptyContainers) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("empty_array").BeginArray().EndArray();
  json.Key("empty_object").BeginObject().EndObject();
  json.EndObject();
  EXPECT_EQ(os.str(), "{\"empty_array\":[],\"empty_object\":{}}");
}

TEST(JsonWriterTest, NumbersAreLocaleIndependentAndPrecise) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginArray();
  json.Number(0.5);
  json.Number(-1.25);
  json.Number(1e-9);
  json.EndArray();
  EXPECT_EQ(os.str(), "[0.5,-1.25,1e-09]");
}

}  // namespace
}  // namespace weber

#include "core/experiment.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/presets.h"

namespace weber {
namespace core {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result =
        corpus::SyntheticWebGenerator(corpus::TinyConfig(0x777)).Generate();
    ASSERT_TRUE(result.ok()) << result.status();
    data_ = new corpus::SyntheticData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* ExperimentTest::data_ = nullptr;

TEST_F(ExperimentTest, RunBeforePrepareFails) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 2, 1);
  ExperimentConfig config;
  config.label = "x";
  EXPECT_EQ(runner.Run(config).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ExperimentTest, PrepareValidates) {
  ExperimentRunner null_runner(nullptr, &data_->gazetteer, 2, 1);
  EXPECT_FALSE(null_runner.Prepare().ok());
  ExperimentRunner zero_runs(&data_->dataset, &data_->gazetteer, 0, 1);
  EXPECT_FALSE(zero_runs.Prepare().ok());
}

TEST_F(ExperimentTest, RunProducesPerBlockAndOverall) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 2, 42);
  ASSERT_TRUE(runner.Prepare().ok());
  ExperimentConfig config;
  config.label = "C-tiny";
  auto result = runner.Run(config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->label, "C-tiny");
  EXPECT_EQ(result->per_block.size(), 3u);
  EXPECT_GT(result->overall.fp_measure, 0.0);
  EXPECT_LE(result->overall.fp_measure, 1.0);
}

TEST_F(ExperimentTest, RunIsDeterministic) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 2, 42);
  ASSERT_TRUE(runner.Prepare().ok());
  ExperimentConfig config;
  config.label = "det";
  auto a = runner.Run(config);
  auto b = runner.Run(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->overall.fp_measure, b->overall.fp_measure);
  EXPECT_DOUBLE_EQ(a->overall.rand_index, b->overall.rand_index);
}

TEST_F(ExperimentTest, ConfigsShareTrainingSplits) {
  // Two configurations run on the same runner must see the same splits:
  // a config identical in behaviour yields identical numbers.
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 2, 43);
  ASSERT_TRUE(runner.Prepare().ok());
  ExperimentConfig a, b;
  a.label = "a";
  b.label = "b";
  // Different label, same options.
  auto ra = runner.Run(a);
  auto rb = runner.Run(b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(ra->overall.fp_measure, rb->overall.fp_measure);
}

TEST_F(ExperimentTest, RunAllEvaluatesEveryConfig) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 2, 44);
  ASSERT_TRUE(runner.Prepare().ok());
  ExperimentConfig i10, c10;
  i10.label = "I10";
  i10.options.use_region_criteria = false;
  c10.label = "C10";
  auto results = runner.RunAll({i10, c10});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].label, "I10");
  EXPECT_EQ((*results)[1].label, "C10");
}

TEST_F(ExperimentTest, InvalidConfigSurfacesStatus) {
  ExperimentRunner runner(&data_->dataset, &data_->gazetteer, 1, 45);
  ASSERT_TRUE(runner.Prepare().ok());
  ExperimentConfig bad;
  bad.label = "bad";
  bad.options.function_names = {"F77"};
  EXPECT_EQ(runner.Run(bad).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace core
}  // namespace weber

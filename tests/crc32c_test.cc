// CRC32C tests: the published Castagnoli check value, incremental
// extension, and sensitivity to single-bit damage — the property the WAL
// and snapshot formats lean on.

#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace weber {
namespace {

TEST(Crc32cTest, KnownCheckValue) {
  // The standard CRC32C test vector.
  const char* data = "123456789";
  EXPECT_EQ(Crc32c(data, std::strlen(data)), 0xE3069283u);
}

TEST(Crc32cTest, EmptyBufferIsZero) {
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = ExtendCrc32c(0, data.data(), split);
    crc = ExtendCrc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, EverySingleBitFlipChangesTheChecksum) {
  std::string data = "weber wal record payload";
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
  }
  EXPECT_EQ(Crc32c(data.data(), data.size()), clean);
}

TEST(Crc32cTest, DistinctInputsDistinctChecksums) {
  EXPECT_NE(Crc32c("a", 1), Crc32c("b", 1));
  EXPECT_NE(Crc32c("ab", 2), Crc32c("ba", 2));
}

}  // namespace
}  // namespace weber

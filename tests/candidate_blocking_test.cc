#include "core/candidate_blocking.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/presets.h"

namespace weber {
namespace core {
namespace {

TEST(CandidateBlockingTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateCandidatePairs({}).ok());
  CandidateBlockingOptions bad;
  bad.min_shared_terms = 0;
  EXPECT_FALSE(GenerateCandidatePairs({"a"}, bad).ok());
}

TEST(CandidateBlockingTest, PairsDocumentsSharingRareTerms) {
  CandidateBlockingOptions options;
  options.min_shared_terms = 2;
  options.max_term_doc_fraction = 0.8;
  std::vector<std::string> docs = {
      "quantum entanglement research laboratory",   // 0
      "quantum entanglement experiments ongoing",   // 1
      "cooking recipes with fresh tomatoes",        // 2
      "fresh tomatoes and cooking techniques",      // 3
  };
  auto result = GenerateCandidatePairs(docs, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // (0,1) share quantum+entanglement; (2,3) share cooking+fresh+tomatoes.
  EXPECT_EQ(result->pairs, (std::vector<std::pair<int, int>>{{0, 1}, {2, 3}}));
  EXPECT_GT(result->blocking_terms, 3);
  EXPECT_NEAR(result->pair_fraction, 2.0 / 6.0, 1e-12);
}

TEST(CandidateBlockingTest, CommonTermsAreNotBlockingKeys) {
  CandidateBlockingOptions options;
  options.min_shared_terms = 1;
  options.max_term_doc_fraction = 0.5;  // terms on > 2 of 4 docs skipped
  std::vector<std::string> docs = {
      "shared background shared background alpha",
      "shared background beta",
      "shared background gamma",
      "shared background delta",
  };
  auto result = GenerateCandidatePairs(docs, options);
  ASSERT_TRUE(result.ok());
  // "shared"/"background" appear on all 4 docs -> excluded; the unique
  // terms pair nothing.
  EXPECT_TRUE(result->pairs.empty());
}

TEST(CandidateBlockingTest, MinSharedTermsFilters) {
  std::vector<std::string> docs = {
      "alpha beta unrelated",
      "alpha gamma different",
  };
  CandidateBlockingOptions one;
  one.min_shared_terms = 1;
  one.max_term_doc_fraction = 1.0;
  auto r1 = GenerateCandidatePairs(docs, one);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->pairs.size(), 1u);  // share "alpha"
  CandidateBlockingOptions two = one;
  two.min_shared_terms = 2;
  auto r2 = GenerateCandidatePairs(docs, two);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->pairs.empty());
}

TEST(BlockingRecallTest, CountsCoveredTruePairs) {
  std::vector<int> labels = {0, 0, 0, 1};  // true pairs: (0,1),(0,2),(1,2)
  EXPECT_DOUBLE_EQ(BlockingRecall({{0, 1}, {0, 2}, {1, 2}}, labels), 1.0);
  EXPECT_NEAR(BlockingRecall({{0, 1}, {2, 3}}, labels), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(BlockingRecall({}, labels), 0.0);
  // No true pairs at all: vacuous full recall.
  EXPECT_DOUBLE_EQ(BlockingRecall({}, {0, 1, 2}), 1.0);
}

TEST(CandidateBlockingTest, HighRecallOnSyntheticBlock) {
  // End-to-end sanity: on a generated block, token blocking with modest
  // settings must retain nearly all true pairs while pruning the space.
  auto data =
      corpus::SyntheticWebGenerator(corpus::TinyConfig(0xB10C)).Generate();
  ASSERT_TRUE(data.ok());
  const corpus::Block& block = data->dataset.blocks[0];
  std::vector<std::string> texts;
  for (const auto& d : block.documents) texts.push_back(d.text);
  CandidateBlockingOptions options;
  options.min_shared_terms = 2;
  options.max_term_doc_fraction = 0.5;
  auto result = GenerateCandidatePairs(texts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(BlockingRecall(result->pairs, block.entity_labels), 0.9);
  EXPECT_LT(result->pair_fraction, 1.0);
}

}  // namespace
}  // namespace core
}  // namespace weber

#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "text/vector_similarity.h"

namespace weber {
namespace text {
namespace {

TEST(VocabularyTest, InterningAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0);
  EXPECT_EQ(vocab.GetOrAdd("beta"), 1);
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0);
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.term(1), "beta");
}

TEST(VocabularyTest, LookupUnknownIsMinusOne) {
  Vocabulary vocab;
  vocab.GetOrAdd("x");
  EXPECT_EQ(vocab.Lookup("x"), 0);
  EXPECT_EQ(vocab.Lookup("y"), -1);
}

TEST(VocabularyTest, BulkOperations) {
  Vocabulary vocab;
  auto ids = vocab.GetOrAddAll({"a", "b", "a", "c"});
  EXPECT_EQ(ids, (std::vector<TermId>{0, 1, 0, 2}));
  auto looked = vocab.LookupAll({"c", "missing", "a"});
  EXPECT_EQ(looked, (std::vector<TermId>{2, 0}));  // unknown skipped
}

TEST(TfIdfTest, FinalizeRequiresDocuments) {
  TfIdfModel model;
  EXPECT_EQ(model.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(TfIdfTest, RareTermsOutweighCommonTerms) {
  TfIdfModel model;
  // "common" in every doc, "rare" in one.
  model.AddDocument({"common", "rare"});
  model.AddDocument({"common", "x"});
  model.AddDocument({"common", "y"});
  model.AddDocument({"common", "z"});
  ASSERT_TRUE(model.Finalize().ok());
  EXPECT_GT(model.Idf("rare"), model.Idf("common"));
}

TEST(TfIdfTest, VectorizeIsL2NormalizedByDefault) {
  TfIdfModel model;
  model.AddDocument({"a", "b"});
  model.AddDocument({"a", "c"});
  ASSERT_TRUE(model.Finalize().ok());
  SparseVector v = model.Vectorize({"a", "b", "b"});
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
}

TEST(TfIdfTest, UnknownTermsIgnoredAtVectorizeTime) {
  TfIdfModel model;
  model.AddDocument({"a"});
  model.AddDocument({"b"});
  ASSERT_TRUE(model.Finalize().ok());
  SparseVector v = model.Vectorize({"never-seen", "also-new"});
  EXPECT_TRUE(v.empty());
}

TEST(TfIdfTest, IdfOfUnknownTermIsZero) {
  TfIdfModel model;
  model.AddDocument({"a"});
  ASSERT_TRUE(model.Finalize().ok());
  EXPECT_DOUBLE_EQ(model.Idf("missing"), 0.0);
}

TEST(TfIdfTest, SublinearTfDampsRepetition) {
  TfIdfOptions options;
  options.l2_normalize = false;
  TfIdfModel model(options);
  model.AddDocument({"a", "b"});
  model.AddDocument({"c"});
  ASSERT_TRUE(model.Finalize().ok());
  double once = model.Vectorize({"a"}).GetWeight(0);
  double tenx = model
                    .Vectorize({"a", "a", "a", "a", "a", "a", "a", "a", "a",
                                "a"})
                    .GetWeight(0);
  EXPECT_GT(tenx, once);
  EXPECT_LT(tenx, 10.0 * once);  // sublinear
  EXPECT_NEAR(tenx / once, 1.0 + std::log(10.0), 1e-9);
}

TEST(TfIdfTest, MinDocFreqFiltersHapaxes) {
  TfIdfOptions options;
  options.min_doc_freq = 2;
  TfIdfModel model(options);
  model.AddDocument({"shared", "solo1"});
  model.AddDocument({"shared", "solo2"});
  ASSERT_TRUE(model.Finalize().ok());
  SparseVector v = model.Vectorize({"shared", "solo1"});
  EXPECT_EQ(v.size(), 1u);  // solo1 filtered out
}

TEST(TfIdfTest, DocumentFrequencyCountsOncePerDocument) {
  TfIdfModel model;
  model.AddDocument({"dup", "dup", "dup"});
  model.AddDocument({"dup"});
  model.AddDocument({"other"});
  ASSERT_TRUE(model.Finalize().ok());
  // df(dup) = 2 of 3: idf = log(4/3)+1; df(other) = 1: idf = log(2)+1.
  EXPECT_NEAR(model.Idf("dup"), std::log(4.0 / 3.0) + 1.0, 1e-12);
  EXPECT_NEAR(model.Idf("other"), std::log(2.0) + 1.0, 1e-12);
}

TEST(TfIdfTest, SimilarDocumentsScoreHigherThanDissimilar) {
  TfIdfModel model;
  std::vector<std::vector<std::string>> docs = {
      {"graph", "cluster", "entiti"},
      {"graph", "cluster", "vertex"},
      {"cook", "recip", "oven"},
  };
  for (const auto& d : docs) model.AddDocument(d);
  ASSERT_TRUE(model.Finalize().ok());
  auto v0 = model.Vectorize(docs[0]);
  auto v1 = model.Vectorize(docs[1]);
  auto v2 = model.Vectorize(docs[2]);
  EXPECT_GT(CosineSimilarity(v0, v1), CosineSimilarity(v0, v2));
}

}  // namespace
}  // namespace text
}  // namespace weber

#include "text/phonetic.h"

#include <gtest/gtest.h>

namespace weber {
namespace text {
namespace {

TEST(SoundexTest, CanonicalExamples) {
  // The classic reference set.
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // h does not separate s and c
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, PaddingAndCase) {
  EXPECT_EQ(Soundex("Lee"), "L000");
  EXPECT_EQ(Soundex("lee"), "L000");
  EXPECT_EQ(Soundex("A"), "A000");
}

TEST(SoundexTest, NonAlphabeticHandling) {
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBrien"));
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
}

TEST(SoundexTest, MisspellingsCollide) {
  EXPECT_EQ(Soundex("kaelbling"), Soundex("kelbling"));
  EXPECT_EQ(Soundex("pereira"), Soundex("perreira"));
  EXPECT_EQ(Soundex("mccallum"), Soundex("macallum"));
}

TEST(RefinedSoundexTest, FinerThanSoundex) {
  // c/k/s vs d/t separate in the refined classes where plain Soundex
  // collapses them to one digit-class pattern.
  EXPECT_NE(RefinedSoundex("robert"), RefinedSoundex("ronald"));
  EXPECT_EQ(RefinedSoundex(""), "");
  EXPECT_EQ(RefinedSoundex("braz"), RefinedSoundex("broz"));
  // b and p share a refined class: robert/rupert collide in both schemes.
  EXPECT_EQ(RefinedSoundex("robert"), RefinedSoundex("rupert"));
}

TEST(SoundexSimilarityTest, BinaryOutcome) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("robert", "rupert"), 1.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("robert", "cohen"), 0.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("", "cohen"), 0.0);
}

TEST(PhoneticNameSimilarityTest, Scores) {
  EXPECT_DOUBLE_EQ(PhoneticNameSimilarity("adam kaelbling", "adam kelbling"),
                   1.0);
  EXPECT_DOUBLE_EQ(PhoneticNameSimilarity("kaelbling", "adam kelbling"), 0.7);
  EXPECT_DOUBLE_EQ(PhoneticNameSimilarity("brian kaelbling", "adam kelbling"),
                   0.2);
  EXPECT_DOUBLE_EQ(PhoneticNameSimilarity("adam cohen", "adam ng"), 0.0);
  EXPECT_DOUBLE_EQ(PhoneticNameSimilarity("", "adam ng"), 0.0);
}

}  // namespace
}  // namespace text
}  // namespace weber

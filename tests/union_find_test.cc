#include "graph/union_find.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace weber {
namespace graph {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_elements(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.SetSize(i), 1);
    for (int j = i + 1; j < 5; ++j) {
      EXPECT_FALSE(uf.Connected(i, j));
    }
  }
}

TEST(UnionFindTest, UnionConnectsAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already connected
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.SetSize(1), 3);
  EXPECT_FALSE(uf.Connected(0, 3));
}

TEST(UnionFindTest, TransitivityChain) {
  UnionFind uf(100);
  for (int i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_TRUE(uf.Connected(0, 99));
  EXPECT_EQ(uf.SetSize(50), 100);
}

TEST(UnionFindTest, FindIsIdempotentRepresentative) {
  UnionFind uf(10);
  uf.Union(3, 7);
  uf.Union(7, 9);
  int root = uf.Find(3);
  EXPECT_EQ(uf.Find(7), root);
  EXPECT_EQ(uf.Find(9), root);
  EXPECT_EQ(uf.Find(root), root);
}

TEST(UnionFindTest, MatchesNaivePartitionOnRandomOperations) {
  Rng rng(77);
  const int n = 40;
  UnionFind uf(n);
  // Naive reference: label array with full relabeling on merge.
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = i;
  for (int op = 0; op < 200; ++op) {
    int a = rng.UniformInt(0, n - 1);
    int b = rng.UniformInt(0, n - 1);
    uf.Union(a, b);
    int from = labels[b], to = labels[a];
    for (int& l : labels) {
      if (l == from) l = to;
    }
    // Spot-check equivalences.
    for (int check = 0; check < 10; ++check) {
      int x = rng.UniformInt(0, n - 1);
      int y = rng.UniformInt(0, n - 1);
      EXPECT_EQ(uf.Connected(x, y), labels[x] == labels[y]);
    }
  }
}

}  // namespace
}  // namespace graph
}  // namespace weber

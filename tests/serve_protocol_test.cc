// Protocol grammar tests plus LineServer dispatch, including a real TCP
// round-trip on an ephemeral loopback port.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "corpus/presets.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

namespace weber {
namespace serve {
namespace {

TEST(ParseRequestTest, ParsesEveryVerb) {
  auto assign = ParseRequest("assign cohen 3");
  ASSERT_TRUE(assign.ok());
  EXPECT_EQ(assign->op, Request::Op::kAssign);
  EXPECT_EQ(assign->block, "cohen");
  EXPECT_EQ(assign->doc, 3);

  auto query = ParseRequest("query baker 0");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->op, Request::Op::kQuery);

  auto compact = ParseRequest("compact cohen");
  ASSERT_TRUE(compact.ok());
  EXPECT_EQ(compact->op, Request::Op::kCompact);
  EXPECT_EQ(compact->block, "cohen");

  auto compact_all = ParseRequest("compact");
  ASSERT_TRUE(compact_all.ok());
  EXPECT_EQ(compact_all->op, Request::Op::kCompactAll);

  auto dump = ParseRequest("dump cohen");
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump->op, Request::Op::kDump);

  EXPECT_EQ(ParseRequest("stats")->op, Request::Op::kStats);
  EXPECT_EQ(ParseRequest("ping")->op, Request::Op::kPing);
  EXPECT_EQ(ParseRequest("quit")->op, Request::Op::kQuit);
}

TEST(ParseRequestTest, ToleratesExtraWhitespace) {
  auto request = ParseRequest("  assign   cohen\t7  ");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->block, "cohen");
  EXPECT_EQ(request->doc, 7);
}

TEST(ParseRequestTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("   ").ok());
  EXPECT_FALSE(ParseRequest("frobnicate").ok());
  EXPECT_FALSE(ParseRequest("assign cohen").ok());
  EXPECT_FALSE(ParseRequest("assign cohen 1 2").ok());
  EXPECT_FALSE(ParseRequest("assign cohen -1").ok());
  EXPECT_FALSE(ParseRequest("assign cohen x").ok());
  EXPECT_FALSE(ParseRequest("assign cohen 3x").ok());
  EXPECT_FALSE(ParseRequest("ping extra").ok());
  EXPECT_FALSE(ParseRequest("stats extra").ok());
  EXPECT_FALSE(ParseRequest("dump").ok());
}

TEST(ParseRequestTest, RebalanceDrainAndShardStatsVerbs) {
  // `stats shards` is the planner's deep-probe form; anything else after
  // `stats` is still malformed.
  auto shards = ParseRequest("stats shards");
  ASSERT_TRUE(shards.ok()) << shards.status();
  EXPECT_EQ(shards->op, Request::Op::kStats);
  EXPECT_TRUE(shards->shard_detail);
  EXPECT_FALSE(ParseRequest("stats")->shard_detail);
  EXPECT_FALSE(ParseRequest("stats shards extra").ok());

  auto start = ParseRequest("rebalance 127.0.0.1:7001 127.0.0.1:7002");
  ASSERT_TRUE(start.ok()) << start.status();
  EXPECT_EQ(start->op, Request::Op::kRebalance);
  EXPECT_TRUE(start->subcommand.empty());
  EXPECT_EQ(start->endpoints,
            (std::vector<std::string>{"127.0.0.1:7001", "127.0.0.1:7002"}));

  auto status = ParseRequest("rebalance status");
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_EQ(status->subcommand, "status");
  EXPECT_TRUE(status->endpoints.empty());
  EXPECT_EQ(ParseRequest("rebalance abort")->subcommand, "abort");

  EXPECT_FALSE(ParseRequest("rebalance").ok());
  EXPECT_FALSE(ParseRequest("rebalance notanendpoint").ok())
      << "a bare word is neither a subcommand nor a host:port";
  EXPECT_FALSE(ParseRequest("rebalance 127.0.0.1:7001 nonsense").ok());

  auto drain = ParseRequest("drain 127.0.0.1:7003");
  ASSERT_TRUE(drain.ok()) << drain.status();
  EXPECT_EQ(drain->op, Request::Op::kDrain);
  EXPECT_EQ(drain->endpoint, "127.0.0.1:7003");
  EXPECT_FALSE(ParseRequest("drain").ok());
  EXPECT_FALSE(ParseRequest("drain a b").ok());

  // Round trips through FormatRequest.
  EXPECT_EQ(FormatRequest(*shards), "stats shards");
  EXPECT_EQ(FormatRequest(*start),
            "rebalance 127.0.0.1:7001 127.0.0.1:7002");
  EXPECT_EQ(FormatRequest(*status), "rebalance status");
  EXPECT_EQ(FormatRequest(*drain), "drain 127.0.0.1:7003");
}

TEST(ParseRequestTest, DeadlineSuffix) {
  auto assign = ParseRequest("assign cohen 3 deadline 50");
  ASSERT_TRUE(assign.ok());
  EXPECT_EQ(assign->op, Request::Op::kAssign);
  EXPECT_EQ(assign->doc, 3);
  EXPECT_DOUBLE_EQ(assign->deadline_ms, 50.0);

  auto query = ParseRequest("query cohen 1 DEADLINE 2.5");  // case-insensitive
  ASSERT_TRUE(query.ok());
  EXPECT_DOUBLE_EQ(query->deadline_ms, 2.5);

  auto compact = ParseRequest("compact cohen deadline 100");
  ASSERT_TRUE(compact.ok());
  EXPECT_EQ(compact->op, Request::Op::kCompact);
  EXPECT_DOUBLE_EQ(compact->deadline_ms, 100.0);

  EXPECT_DOUBLE_EQ(ParseRequest("assign cohen 3")->deadline_ms, 0.0);

  EXPECT_FALSE(ParseRequest("assign cohen 3 deadline").ok());
  EXPECT_FALSE(ParseRequest("assign cohen 3 deadline 0").ok());
  EXPECT_FALSE(ParseRequest("assign cohen 3 deadline -5").ok());
  EXPECT_FALSE(ParseRequest("assign cohen 3 deadline soon").ok());
  EXPECT_FALSE(ParseRequest("ping deadline 50").ok());  // ping takes no args
}

TEST(ParseRequestTest, RejectsOversizedLine) {
  std::string line = "assign ";
  line += std::string(kMaxRequestLineBytes, 'a');
  line += " 0";
  auto request = ParseRequest(line);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
  // A line exactly at the cap is still parsed (and then rejected only on
  // its own merits — here an unknown verb is fine, overlong is not).
  std::string at_cap(kMaxRequestLineBytes, 'a');
  EXPECT_EQ(ParseRequest(at_cap).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, RejectsEmbeddedNul) {
  std::string line = "assign cohen 3";
  line[7] = '\0';
  auto request = ParseRequest(line);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

TEST(FormatErrorTest, SingleLineWithCodeName) {
  const std::string formatted =
      FormatError(Status::NotFound("no shard\nfor block"));
  EXPECT_EQ(formatted.rfind("err NotFound ", 0), 0u);
  EXPECT_EQ(formatted.find('\n'), std::string::npos);
}

TEST(FormatFailureTest, OverloadAndDeadlineWireLines) {
  EXPECT_EQ(FormatOverloaded(50.0), "OVERLOADED 50");
  EXPECT_EQ(FormatOverloaded(0.0), "OVERLOADED 1");  // hint floor
  EXPECT_EQ(FormatDeadlineExceeded(), "DEADLINE_EXCEEDED");
  EXPECT_EQ(FormatFailure(Status::Unavailable("full"), 25.0),
            "OVERLOADED 25");
  EXPECT_EQ(FormatFailure(Status::DeadlineExceeded("late"), 25.0),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(FormatFailure(Status::NotFound("gone"), 25.0).rfind("err ", 0),
            0u);
}

TEST(FormatRequestTest, RoundTripsThroughParseRequest) {
  for (const char* line :
       {"assign cohen 3", "query baker 0", "compact cohen", "compact",
        "dump cohen", "stats", "metrics", "ping", "quit"}) {
    auto request = ParseRequest(line);
    ASSERT_TRUE(request.ok()) << line;
    EXPECT_EQ(FormatRequest(*request), line);
  }
}

TEST(FormatRequestTest, CarriesTheDeadlineSuffix) {
  auto request = ParseRequest("assign cohen 3 deadline 50");
  ASSERT_TRUE(request.ok());
  const std::string wire = FormatRequest(*request);
  EXPECT_EQ(wire.rfind("assign cohen 3 deadline ", 0), 0u);
  auto reparsed = ParseRequest(wire);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_DOUBLE_EQ(reparsed->deadline_ms, 50.0);

  // The router rewrites the budget per hop: shrinking the deadline must
  // survive the format/parse cycle too.
  request->deadline_ms = 12.5;
  reparsed = ParseRequest(FormatRequest(*request));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_DOUBLE_EQ(reparsed->deadline_ms, 12.5);
}

TEST(ParseResponseTest, ParsesEveryStatusWord) {
  auto bare_ok = ParseResponse("ok");
  ASSERT_TRUE(bare_ok.ok());
  EXPECT_EQ(bare_ok->kind, Response::Kind::kOk);
  EXPECT_TRUE(bare_ok->body.empty());

  auto ok = ParseResponse("ok 4 17");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok());
  EXPECT_EQ(ok->body, "4 17");

  auto shed = ParseResponse("OVERLOADED 50");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->kind, Response::Kind::kOverloaded);
  EXPECT_DOUBLE_EQ(shed->retry_after_ms, 50.0);

  auto expired = ParseResponse("DEADLINE_EXCEEDED");
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->kind, Response::Kind::kDeadlineExceeded);

  auto error = ParseResponse("err NotFound no shard for block 'zzz'");
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->kind, Response::Kind::kError);
  EXPECT_EQ(error->code, StatusCode::kNotFound);
  EXPECT_EQ(error->message, "no shard for block 'zzz'");
}

TEST(ParseResponseTest, UnknownErrorCodeWordBecomesInternal) {
  auto error = ParseResponse("err Frobnicated something odd");
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->kind, Response::Kind::kError);
  EXPECT_EQ(error->code, StatusCode::kInternal);
}

TEST(ParseResponseTest, RejectsUnknownStatusWord) {
  for (const char* line : {"", "   ", "OK 3", "yes", "overloaded 50",
                           "503 Service Unavailable"}) {
    auto response = ParseResponse(line);
    ASSERT_FALSE(response.ok()) << "'" << line << "'";
    EXPECT_EQ(response.status().code(), StatusCode::kCorruption);
  }
}

TEST(ParseResponseTest, RejectsMalformedOverloadedHint) {
  EXPECT_FALSE(ParseResponse("OVERLOADED").ok());
  EXPECT_FALSE(ParseResponse("OVERLOADED soon").ok());
  EXPECT_FALSE(ParseResponse("OVERLOADED -5").ok());
  EXPECT_FALSE(ParseResponse("err").ok());  // error without a code word
}

TEST(ParseResponseTest, RejectsOversizedLine) {
  std::string line = "ok ";
  line += std::string(kMaxResponseLineBytes, 'x');
  auto response = ParseResponse(line);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCorruption);
}

TEST(MetricsFramingTest, HeaderAndPayloadRoundTrip) {
  auto n = ParseMetricsHeader("ok 3");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3);

  std::vector<std::string> wire = {"# TYPE a counter", "a 1", "b 2"};
  size_t cursor = 0;
  auto payload = ReadMetricsPayload(*n, [&]() -> Result<std::string> {
    return wire.at(cursor++);
  });
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, wire);
}

TEST(MetricsFramingTest, RejectsBadHeaders) {
  EXPECT_FALSE(ParseMetricsHeader("ok").ok());
  EXPECT_FALSE(ParseMetricsHeader("ok x").ok());
  EXPECT_FALSE(ParseMetricsHeader("ok -1").ok());
  EXPECT_FALSE(ParseMetricsHeader("err Internal boom").ok());
  // A header announcing an absurd payload is refused outright instead of
  // looping on the peer's say-so.
  EXPECT_FALSE(
      ParseMetricsHeader("ok " + std::to_string(kMaxMetricsPayloadLines + 1))
          .ok());
  EXPECT_TRUE(ParseMetricsHeader("ok 0").ok());
}

TEST(MetricsFramingTest, TruncatedPayloadIsCorruptionNotIOError) {
  int calls = 0;
  auto payload = ReadMetricsPayload(5, [&]() -> Result<std::string> {
    if (++calls <= 2) return std::string("line");
    return Status::IOError("connection reset");
  });
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kCorruption);
  EXPECT_NE(payload.status().ToString().find("2 of 5"), std::string::npos)
      << payload.status();
}

TEST(ParseDumpResponseTest, ParsesAndRejects) {
  auto labels = ParseDumpResponse("ok 3 0:1 1:-1 2:7");
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<int>{1, -1, 7}));

  EXPECT_FALSE(ParseDumpResponse("ok").ok());
  EXPECT_FALSE(ParseDumpResponse("ok x").ok());
  EXPECT_FALSE(ParseDumpResponse("ok 2 0:1").ok());        // missing a pair
  EXPECT_FALSE(ParseDumpResponse("ok 2 5:1 0:0").ok());    // doc out of range
  EXPECT_FALSE(ParseDumpResponse("ok 2 0:1 1").ok());      // missing colon
  EXPECT_FALSE(ParseDumpResponse("err Internal boom").ok());
}

class LineServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
    auto service = ResolutionService::Create(data_->dataset,
                                             &data_->gazetteer, {});
    ASSERT_TRUE(service.ok()) << service.status();
    service_ = std::move(service).ValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static const std::string& BlockName() {
    return service_->block_names().front();
  }

  static corpus::SyntheticData* data_;
  static ResolutionService* service_;
};

corpus::SyntheticData* LineServerTest::data_ = nullptr;
ResolutionService* LineServerTest::service_ = nullptr;

TEST_F(LineServerTest, HandleLineDispatches) {
  LineServer server(service_);
  bool quit = false;
  EXPECT_EQ(server.HandleLine("ping", &quit), "ok");
  EXPECT_FALSE(quit);

  std::string response = server.HandleLine("assign " + BlockName() + " 0",
                                           &quit);
  EXPECT_EQ(response.rfind("ok ", 0), 0u);

  response = server.HandleLine("query " + BlockName() + " 0", &quit);
  EXPECT_EQ(response.rfind("ok ", 0), 0u);

  response = server.HandleLine("compact " + BlockName(), &quit);
  EXPECT_EQ(response.rfind("ok ", 0), 0u);

  response = server.HandleLine("dump " + BlockName(), &quit);
  EXPECT_EQ(response.rfind("ok ", 0), 0u);

  response = server.HandleLine("stats", &quit);
  EXPECT_EQ(response.rfind("ok {", 0), 0u);

  response = server.HandleLine("bogus", &quit);
  EXPECT_EQ(response.rfind("err ", 0), 0u);
  EXPECT_FALSE(quit);

  EXPECT_EQ(server.HandleLine("quit", &quit), "ok");
  EXPECT_TRUE(quit);
}

TEST_F(LineServerTest, ServeStdioAnswersLineByLine) {
  LineServer server(service_);
  std::istringstream in("ping\n\nassign " + BlockName() +
                        " 1\nbogus\nquit\nping\n");
  std::ostringstream out;
  ASSERT_TRUE(server.ServeStdio(in, out).ok());
  std::vector<std::string> lines;
  std::string line;
  std::istringstream reader(out.str());
  while (std::getline(reader, line)) lines.push_back(line);
  // Blank line skipped; loop stops at quit, so the trailing ping is unread.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "ok");
  EXPECT_EQ(lines[1].rfind("ok ", 0), 0u);
  EXPECT_EQ(lines[2].rfind("err ", 0), 0u);
  EXPECT_EQ(lines[3], "ok");
}

TEST_F(LineServerTest, TcpRoundTripOnEphemeralPort) {
  LineServer server(service_);
  ASSERT_TRUE(server.StartTcp(0).ok());
  ASSERT_GT(server.tcp_port(), 0);

  LineConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.tcp_port()).ok());
  auto pong = conn.Call("ping");
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(*pong, "ok");
  auto assigned = conn.Call("assign " + BlockName() + " 2");
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned->rfind("ok ", 0), 0u);
  auto bad = conn.Call("assign " + BlockName() + " 999999");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->rfind("err InvalidArgument", 0), 0u);
  conn.Close();
  server.StopTcp();
}

TEST_F(LineServerTest, TcpServesConcurrentConnections) {
  LineServer server(service_);
  ASSERT_TRUE(server.StartTcp(0).ok());
  const int port = server.tcp_port();
  std::vector<std::thread> clients;
  std::atomic<int> oks{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      LineConnection conn;
      if (!conn.Connect("127.0.0.1", port).ok()) return;
      for (int i = 0; i < 25; ++i) {
        auto response = conn.Call(
            "query " + BlockName() + " " + std::to_string((c * 25 + i) % 30));
        if (response.ok() && response->rfind("ok ", 0) == 0) {
          oks.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(oks.load(), 100);
  server.StopTcp();
}

TEST_F(LineServerTest, QuitClosesTheTcpConnection) {
  LineServer server(service_);
  ASSERT_TRUE(server.StartTcp(0).ok());
  LineConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.tcp_port()).ok());
  auto bye = conn.Call("quit");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "ok");
  // The server hangs up after quit; the next read reports EOF.
  EXPECT_FALSE(conn.ReadLine().ok());
  server.StopTcp();
}

}  // namespace
}  // namespace serve
}  // namespace weber

#include "core/combiner.h"

#include <gtest/gtest.h>

namespace weber {
namespace core {
namespace {

/// A 4-node source whose decision graph links the given pairs at the given
/// probability (probability `low` elsewhere).
DecisionSource MakeSource(const std::string& fn, const std::string& crit,
                          double accuracy,
                          const std::vector<std::pair<int, int>>& links,
                          double p_link = 0.9, double p_nolink = 0.1) {
  DecisionSource s;
  s.function_name = fn;
  s.criterion_name = crit;
  s.train_accuracy = accuracy;
  s.decisions = graph::DecisionGraph(4, 0, 1);
  s.link_probs = graph::SimilarityMatrix(4, p_nolink, 1.0);
  for (const auto& [a, b] : links) {
    s.decisions.Set(a, b, 1);
    s.link_probs.Set(a, b, p_link);
  }
  return s;
}

TEST(CombinerTest, EmptySourcesRejected) {
  auto r = CombineDecisionGraphs({}, {}, CombinationStrategy::kBestGraph);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CombinerTest, SizeMismatchRejected) {
  DecisionSource a = MakeSource("F1", "t", 0.9, {});
  DecisionSource b = MakeSource("F2", "t", 0.8, {});
  b.decisions = graph::DecisionGraph(5, 0, 1);
  b.link_probs = graph::SimilarityMatrix(5, 0.0, 1.0);
  auto r = CombineDecisionGraphs({a, b}, {}, CombinationStrategy::kBestGraph);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BestGraphTest, PicksHighestEstimatedAccuracy) {
  auto r = CombineDecisionGraphs(
      {MakeSource("F1", "threshold", 0.70, {{0, 1}}),
       MakeSource("F3", "regions-km8", 0.95, {{2, 3}}),
       MakeSource("F2", "threshold", 0.80, {{0, 2}})},
      {}, CombinationStrategy::kBestGraph);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->chosen_source, "F3/regions-km8");
  EXPECT_EQ(r->decisions.Get(2, 3), 1);
  EXPECT_EQ(r->decisions.Get(0, 1), 0);
}

TEST(BestGraphTest, SingleSourcePassesThrough) {
  auto r = CombineDecisionGraphs({MakeSource("F5", "threshold", 0.5, {{1, 2}})},
                                 {}, CombinationStrategy::kBestGraph);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->chosen_source, "F5/threshold");
  EXPECT_EQ(r->decisions.Get(1, 2), 1);
}

TEST(WeightedAverageTest, AgreementProducesConfidentEdges) {
  // Three equally-good sources agree on (0,1) and disagree elsewhere.
  std::vector<DecisionSource> sources = {
      MakeSource("F1", "t", 0.9, {{0, 1}}),
      MakeSource("F2", "t", 0.9, {{0, 1}, {2, 3}}),
      MakeSource("F3", "t", 0.9, {{0, 1}}),
  };
  // Training pairs: (0,1) is a link, (0,2) and (2,3) are not.
  graph::SimilarityMatrix probe(4);
  std::vector<TrainingPair> training = {
      {0, 1, probe.Index(0, 1), true},
      {0, 2, probe.Index(0, 2), false},
      {2, 3, probe.Index(2, 3), false},
  };
  auto r = CombineDecisionGraphs(sources, training,
                                 CombinationStrategy::kWeightedAverage);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->decisions.Get(0, 1), 1);
  EXPECT_EQ(r->decisions.Get(2, 3), 0);  // only one source voted for it
  // Combined probability of the unanimous edge is the agreed 0.9.
  EXPECT_NEAR(r->link_probs.Get(0, 1), 0.9, 1e-9);
  EXPECT_LT(r->link_probs.Get(2, 3), 0.5);
}

TEST(WeightedAverageTest, WeakSourcesAreDownweighted) {
  // One excellent source says link; many useless ones say otherwise with
  // high claimed probabilities but low estimated accuracy.
  std::vector<DecisionSource> sources = {
      MakeSource("F1", "t", 0.95, {{0, 1}}, 0.95, 0.05),
  };
  for (int i = 0; i < 6; ++i) {
    sources.push_back(
        MakeSource("N" + std::to_string(i), "t", 0.15, {{2, 3}}, 0.9, 0.4));
  }
  graph::SimilarityMatrix probe(4);
  std::vector<TrainingPair> training = {
      {0, 1, probe.Index(0, 1), true},
      {1, 2, probe.Index(1, 2), false},
  };
  auto r = CombineDecisionGraphs(sources, training,
                                 CombinationStrategy::kWeightedAverage);
  ASSERT_TRUE(r.ok());
  // The good source's edge must carry more combined probability than the
  // noise floor.
  EXPECT_GT(r->link_probs.Get(0, 1), r->link_probs.Get(1, 3));
}

TEST(WeightedAverageTest, WorksWithoutTrainingPairs) {
  auto r = CombineDecisionGraphs({MakeSource("F1", "t", 0.9, {{0, 1}})}, {},
                                 CombinationStrategy::kWeightedAverage);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->threshold, 0.5);  // default when unlearnable
  EXPECT_EQ(r->decisions.Get(0, 1), 1);
}

TEST(MajorityVoteTest, StrictMajorityWins) {
  std::vector<DecisionSource> sources = {
      MakeSource("F1", "t", 0.9, {{0, 1}, {1, 2}}),
      MakeSource("F2", "t", 0.9, {{0, 1}}),
      MakeSource("F3", "t", 0.9, {{0, 1}, {2, 3}}),
  };
  auto r =
      CombineDecisionGraphs(sources, {}, CombinationStrategy::kMajorityVote);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->decisions.Get(0, 1), 1);  // 3/3
  EXPECT_EQ(r->decisions.Get(1, 2), 0);  // 1/3
  EXPECT_EQ(r->decisions.Get(2, 3), 0);  // 1/3
  EXPECT_EQ(r->chosen_source, "majority-vote");
  EXPECT_NEAR(r->link_probs.Get(0, 1), 1.0, 1e-9);
  EXPECT_NEAR(r->link_probs.Get(1, 2), 1.0 / 3, 1e-9);
}

TEST(MajorityVoteTest, ExactTieIsNoLink) {
  std::vector<DecisionSource> sources = {
      MakeSource("F1", "t", 0.9, {{0, 1}}),
      MakeSource("F2", "t", 0.9, {}),
  };
  auto r =
      CombineDecisionGraphs(sources, {}, CombinationStrategy::kMajorityVote);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->decisions.Get(0, 1), 0);  // 1/2 is not a strict majority
}

TEST(StrategyNamesTest, Stable) {
  EXPECT_EQ(CombinationStrategyToString(CombinationStrategy::kBestGraph),
            "best-graph");
  EXPECT_EQ(CombinationStrategyToString(CombinationStrategy::kWeightedAverage),
            "weighted-average");
  EXPECT_EQ(CombinationStrategyToString(CombinationStrategy::kMajorityVote),
            "majority-vote");
}

}  // namespace
}  // namespace core
}  // namespace weber

#include "graph/clustering.h"

#include <gtest/gtest.h>

namespace weber {
namespace graph {
namespace {

TEST(ClusteringTest, FromLabelsCanonicalizes) {
  Clustering c = Clustering::FromLabels({7, 3, 7, 9, 3});
  EXPECT_EQ(c.num_items(), 5);
  EXPECT_EQ(c.num_clusters(), 3);
  // Canonical labels by first appearance: 7->0, 3->1, 9->2.
  EXPECT_EQ(c.labels(), (std::vector<int>{0, 1, 0, 2, 1}));
}

TEST(ClusteringTest, SingletonsAndOneCluster) {
  Clustering s = Clustering::Singletons(4);
  EXPECT_EQ(s.num_clusters(), 4);
  EXPECT_FALSE(s.SameCluster(0, 1));
  EXPECT_EQ(s.NumIntraPairs(), 0);

  Clustering o = Clustering::OneCluster(4);
  EXPECT_EQ(o.num_clusters(), 1);
  EXPECT_TRUE(o.SameCluster(0, 3));
  EXPECT_EQ(o.NumIntraPairs(), 6);
}

TEST(ClusteringTest, EmptyClustering) {
  Clustering c = Clustering::FromLabels({});
  EXPECT_EQ(c.num_items(), 0);
  EXPECT_EQ(c.num_clusters(), 0);
  EXPECT_EQ(Clustering::OneCluster(0).num_clusters(), 0);
}

TEST(ClusteringTest, GroupsPartitionTheItems) {
  Clustering c = Clustering::FromLabels({1, 2, 1, 3, 2, 1});
  auto groups = c.Groups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 2, 5}));
  EXPECT_EQ(groups[1], (std::vector<int>{1, 4}));
  EXPECT_EQ(groups[2], (std::vector<int>{3}));
}

TEST(ClusteringTest, NumIntraPairsMatchesDefinition) {
  // Sizes 3, 2, 1 -> 3 + 1 + 0 = 4.
  Clustering c = Clustering::FromLabels({0, 0, 0, 1, 1, 2});
  EXPECT_EQ(c.NumIntraPairs(), 4);
}

TEST(ClusteringTest, EqualityIsCanonical) {
  // Different raw labels, same partition -> equal after canonicalization.
  EXPECT_EQ(Clustering::FromLabels({5, 5, 9}),
            Clustering::FromLabels({1, 1, 0}));
  EXPECT_NE(Clustering::FromLabels({0, 1, 1}),
            Clustering::FromLabels({0, 0, 1}));
}

}  // namespace
}  // namespace graph
}  // namespace weber

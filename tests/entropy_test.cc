#include "ml/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace weber {
namespace ml {
namespace {

TEST(EntropyTest, UniformDistribution) {
  EXPECT_NEAR(ShannonEntropy({1.0, 1.0, 1.0, 1.0}), 2.0, 1e-12);
  EXPECT_NEAR(ShannonEntropy({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
}

TEST(EntropyTest, DegenerateDistribution) {
  EXPECT_DOUBLE_EQ(ShannonEntropy({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy({1.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy({}), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy({-1.0, -2.0}), 0.0);  // ignores negatives
}

TEST(EntropyTest, UnnormalizedInputIsNormalized) {
  EXPECT_NEAR(ShannonEntropy({10.0, 10.0}), 1.0, 1e-12);
  EXPECT_NEAR(ShannonEntropy({0.001, 0.001}), 1.0, 1e-12);
}

TEST(EntropyTest, KnownSkewedValue) {
  // p = (0.75, 0.25): H = -(0.75 log2 0.75 + 0.25 log2 0.25) = 0.811278.
  EXPECT_NEAR(ShannonEntropy({3.0, 1.0}), 0.811278, 1e-5);
}

TEST(NormalizedEntropyTest, RangeAndEndpoints) {
  EXPECT_DOUBLE_EQ(NormalizedEntropy({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEntropy({}), 0.0);
  EXPECT_NEAR(NormalizedEntropy({1.0, 1.0, 1.0}), 1.0, 1e-12);
  double skewed = NormalizedEntropy({9.0, 1.0});
  EXPECT_GT(skewed, 0.0);
  EXPECT_LT(skewed, 1.0);
}

TEST(NormalizedEntropyTest, IgnoresZeroEntriesInDenominator) {
  // {1,1,0,0} has 2 positive entries -> normalized by log2(2) = 1.
  EXPECT_NEAR(NormalizedEntropy({1.0, 1.0, 0.0, 0.0}), 1.0, 1e-12);
}

TEST(PerplexityTest, EffectiveItemCount) {
  EXPECT_NEAR(Perplexity({1.0, 1.0, 1.0, 1.0}), 4.0, 1e-9);
  EXPECT_NEAR(Perplexity({1.0}), 1.0, 1e-9);
  double skewed = Perplexity({8.0, 1.0, 1.0});
  EXPECT_GT(skewed, 1.0);
  EXPECT_LT(skewed, 3.0);
}

}  // namespace
}  // namespace ml
}  // namespace weber

#include "corpus/resolution_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace weber {
namespace corpus {
namespace {

BlockResolutionRecord MakeRecord() {
  BlockResolutionRecord r;
  r.query = "cohen";
  r.document_ids = {"cohen/0", "cohen/1", "cohen/2"};
  r.clustering = graph::Clustering::FromLabels({0, 1, 0});
  return r;
}

TEST(ResolutionIoTest, RoundTrip) {
  std::stringstream ss;
  ASSERT_TRUE(SaveResolutions({MakeRecord()}, ss).ok());
  auto loaded = LoadResolutions(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].query, "cohen");
  EXPECT_EQ((*loaded)[0].document_ids,
            (std::vector<std::string>{"cohen/0", "cohen/1", "cohen/2"}));
  EXPECT_EQ((*loaded)[0].clustering, graph::Clustering::FromLabels({0, 1, 0}));
}

TEST(ResolutionIoTest, MultipleBlocks) {
  BlockResolutionRecord a = MakeRecord();
  BlockResolutionRecord b = MakeRecord();
  b.query = "ng";
  b.document_ids = {"ng/0"};
  b.clustering = graph::Clustering::Singletons(1);
  std::stringstream ss;
  ASSERT_TRUE(SaveResolutions({a, b}, ss).ok());
  auto loaded = LoadResolutions(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[1].query, "ng");
}

TEST(ResolutionIoTest, SaveRejectsInconsistentRecord) {
  BlockResolutionRecord r = MakeRecord();
  r.document_ids.pop_back();
  std::stringstream ss;
  EXPECT_EQ(SaveResolutions({r}, ss).code(), StatusCode::kInvalidArgument);
}

TEST(ResolutionIoTest, LoadRejectsMalformedInput) {
  {
    std::stringstream ss("garbage\n");
    EXPECT_EQ(LoadResolutions(ss).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream ss("#resolution cohen 2\ncohen/0\t0\n");
    EXPECT_EQ(LoadResolutions(ss).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream ss("#resolution cohen 1\nno-tab-here\n");
    EXPECT_EQ(LoadResolutions(ss).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream ss("#resolution cohen 1\ncohen/0\tnotanint\n");
    EXPECT_EQ(LoadResolutions(ss).status().code(), StatusCode::kCorruption);
  }
}

TEST(AlignResolutionTest, ReordersById) {
  Block block;
  block.query = "cohen";
  block.documents = {{"cohen/2", "u", "t"}, {"cohen/0", "u", "t"},
                     {"cohen/1", "u", "t"}};
  block.entity_labels = {0, 0, 1};
  // Record lists documents in a different order.
  BlockResolutionRecord record = MakeRecord();  // ids 0,1,2; labels 0,1,0
  auto aligned = AlignResolution(block, record);
  ASSERT_TRUE(aligned.ok()) << aligned.status();
  // block order is (2, 0, 1) -> labels (0, 0, 1) under record {0:0,1:1,2:0}.
  EXPECT_EQ(*aligned, graph::Clustering::FromLabels({0, 0, 1}));
}

TEST(AlignResolutionTest, RejectsMismatches) {
  Block block;
  block.query = "cohen";
  block.documents = {{"cohen/0", "u", "t"}, {"cohen/9", "u", "t"},
                     {"cohen/2", "u", "t"}};
  block.entity_labels = {0, 1, 2};
  EXPECT_FALSE(AlignResolution(block, MakeRecord()).ok());  // missing cohen/9

  Block short_block;
  short_block.query = "cohen";
  short_block.documents = {{"cohen/0", "u", "t"}};
  short_block.entity_labels = {0};
  EXPECT_FALSE(AlignResolution(short_block, MakeRecord()).ok());

  BlockResolutionRecord dup = MakeRecord();
  dup.document_ids[1] = "cohen/0";  // duplicate id
  Block block2;
  block2.query = "cohen";
  block2.documents = {{"cohen/0", "u", "t"}, {"cohen/1", "u", "t"},
                      {"cohen/2", "u", "t"}};
  block2.entity_labels = {0, 1, 2};
  EXPECT_FALSE(AlignResolution(block2, dup).ok());
}

}  // namespace
}  // namespace corpus
}  // namespace weber

#include "text/person_name.h"

#include <gtest/gtest.h>

namespace weber {
namespace text {
namespace {

TEST(ParsePersonNameTest, FullName) {
  PersonName n = ParsePersonName("Adam Cohen");
  EXPECT_EQ(n.first, "adam");
  EXPECT_EQ(n.last, "cohen");
  EXPECT_EQ(n.middle, "");
  EXPECT_FALSE(n.first_is_initial);
}

TEST(ParsePersonNameTest, InitialForms) {
  PersonName n = ParsePersonName("a cohen");
  EXPECT_EQ(n.first, "a");
  EXPECT_TRUE(n.first_is_initial);
  PersonName dotted = ParsePersonName("A. Cohen");
  EXPECT_EQ(dotted.first, "a");
  EXPECT_TRUE(dotted.first_is_initial);
}

TEST(ParsePersonNameTest, MiddleNames) {
  PersonName n = ParsePersonName("william w cohen");
  EXPECT_EQ(n.first, "william");
  EXPECT_EQ(n.middle, "w");
  EXPECT_EQ(n.last, "cohen");
}

TEST(ParsePersonNameTest, BareLastName) {
  PersonName n = ParsePersonName("cohen");
  EXPECT_EQ(n.first, "");
  EXPECT_EQ(n.last, "cohen");
  EXPECT_FALSE(n.first_is_initial);
}

TEST(ParsePersonNameTest, EmptyInput) {
  EXPECT_EQ(ParsePersonName("").last, "");
  EXPECT_EQ(ParsePersonName("   ").last, "");
}

TEST(CompareNamesTest, FullMatrix) {
  auto cmp = [](const char* a, const char* b) {
    return CompareNames(ParsePersonName(a), ParsePersonName(b));
  };
  EXPECT_EQ(cmp("adam cohen", "adam cohen"), NameCompatibility::kSameName);
  EXPECT_EQ(cmp("adam cohen", "a cohen"), NameCompatibility::kInitialMatch);
  EXPECT_EQ(cmp("a cohen", "adam cohen"), NameCompatibility::kInitialMatch);
  EXPECT_EQ(cmp("a cohen", "a cohen"), NameCompatibility::kInitialMatch);
  EXPECT_EQ(cmp("adam cohen", "cohen"), NameCompatibility::kLastNameOnly);
  EXPECT_EQ(cmp("cohen", "cohen"), NameCompatibility::kLastNameOnly);
  EXPECT_EQ(cmp("adam cohen", "brian cohen"), NameCompatibility::kDifferent);
  EXPECT_EQ(cmp("b cohen", "adam cohen"), NameCompatibility::kDifferent);
  EXPECT_EQ(cmp("adam cohen", "adam ng"), NameCompatibility::kDifferent);
  EXPECT_EQ(cmp("", "cohen"), NameCompatibility::kDifferent);
}

TEST(NameCompatibilitySimilarityTest, ScoresOrdered) {
  double same = NameCompatibilitySimilarity("adam cohen", "adam cohen");
  double initial = NameCompatibilitySimilarity("adam cohen", "a cohen");
  double bare = NameCompatibilitySimilarity("adam cohen", "cohen");
  double contra = NameCompatibilitySimilarity("adam cohen", "brian cohen");
  double different = NameCompatibilitySimilarity("adam cohen", "adam ng");
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_GT(same, initial);
  EXPECT_GT(initial, bare);
  EXPECT_GT(bare, contra);
  EXPECT_GT(contra, different);
  EXPECT_DOUBLE_EQ(different, 0.0);
}

TEST(NameCompatibilitySimilarityTest, BeatsStringSimilarityOnContradiction) {
  // The whole point: "adam cohen" vs "brian cohen" are *different people*
  // (0.05 here), even though plain edit/Jaro similarity of the strings is
  // high. Structured comparison encodes that.
  EXPECT_LT(NameCompatibilitySimilarity("adam cohen", "brian cohen"), 0.1);
}

}  // namespace
}  // namespace text
}  // namespace weber

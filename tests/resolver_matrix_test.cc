// Configuration-matrix property suite: every (combination strategy x
// clustering algorithm x criteria family) cell of the resolver must produce
// a valid resolution on the same block — the output invariants hold no
// matter how the pipeline is configured.

#include <gtest/gtest.h>

#include <tuple>

#include "core/resolver.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "eval/metrics.h"

namespace weber {
namespace core {
namespace {

using MatrixParam =
    std::tuple<CombinationStrategy, ClusteringAlgorithm, bool /*regions*/,
               bool /*isotonic*/>;

class ResolverMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static void SetUpTestSuite() {
    auto result =
        corpus::SyntheticWebGenerator(corpus::TinyConfig(0x3A7)).Generate();
    ASSERT_TRUE(result.ok());
    data_ = new corpus::SyntheticData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* ResolverMatrixTest::data_ = nullptr;

TEST_P(ResolverMatrixTest, ProducesValidResolution) {
  const auto& [combination, clustering, regions, isotonic] = GetParam();
  ResolverOptions options;
  options.combination = combination;
  options.clustering = clustering;
  options.use_region_criteria = regions;
  options.include_isotonic_criterion = isotonic;
  auto resolver = EntityResolver::Create(&data_->gazetteer, options);
  ASSERT_TRUE(resolver.ok()) << resolver.status();

  for (const corpus::Block& block : data_->dataset.blocks) {
    Rng rng(0x5EED);
    auto resolution = resolver->ResolveBlock(block, &rng);
    ASSERT_TRUE(resolution.ok()) << resolution.status();
    // Output invariants: full coverage, canonical labels, evaluable.
    EXPECT_EQ(resolution->clustering.num_items(), block.num_documents());
    EXPECT_GE(resolution->clustering.num_clusters(), 1);
    EXPECT_LE(resolution->clustering.num_clusters(), block.num_documents());
    auto report = eval::Evaluate(block.GroundTruth(), resolution->clustering);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->fp_measure, 0.0);
    EXPECT_LE(report->fp_measure, 1.0);
    // Every source family is present and scored.
    size_t expected_criteria = regions ? 3u : 1u;
    if (isotonic) expected_criteria += 1;
    EXPECT_EQ(resolution->sources.size(),
              options.function_names.size() * expected_criteria);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, ResolverMatrixTest,
    ::testing::Combine(
        ::testing::Values(CombinationStrategy::kBestGraph,
                          CombinationStrategy::kWeightedAverage,
                          CombinationStrategy::kMajorityVote),
        ::testing::Values(ClusteringAlgorithm::kTransitiveClosure,
                          ClusteringAlgorithm::kCorrelationClustering,
                          ClusteringAlgorithm::kAgglomerative),
        ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      // NOTE: no structured bindings here — commas inside their brackets
      // would split the surrounding macro's arguments.
      std::string name =
          CombinationStrategyToString(std::get<0>(info.param)) + "_" +
          ClusteringAlgorithmToString(std::get<1>(info.param)) +
          (std::get<2>(info.param) ? "_regions" : "_thresh") +
          (std::get<3>(info.param) ? "_iso" : "");
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace core
}  // namespace weber

#include "extract/aho_corasick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/random.h"

namespace weber {
namespace extract {
namespace {

TEST(AhoCorasickTest, FindsSinglePattern) {
  AhoCorasick ac;
  int id = ac.AddPattern("abc");
  ac.Build();
  auto matches = ac.FindAll("xxabcxxabc");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (Match{id, 2, 5}));
  EXPECT_EQ(matches[1], (Match{id, 7, 10}));
}

TEST(AhoCorasickTest, ReportsOverlappingMatches) {
  AhoCorasick ac;
  int a = ac.AddPattern("ab");
  int b = ac.AddPattern("abc");
  int c = ac.AddPattern("bc");
  ac.Build();
  auto matches = ac.FindAll("abc");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{a, 0, 2}));
  // bc and abc both end at offset 3.
  EXPECT_TRUE((matches[1] == Match{c, 1, 3} && matches[2] == Match{b, 0, 3}) ||
              (matches[1] == Match{b, 0, 3} && matches[2] == Match{c, 1, 3}));
}

TEST(AhoCorasickTest, SuffixPatternViaFailureLinks) {
  AhoCorasick ac;
  ac.AddPattern("bananas");
  int nas = ac.AddPattern("nas");
  ac.Build();
  auto matches = ac.FindAll("bananas");
  // "nas" must be found even though the automaton is deep in "bananas".
  bool found = false;
  for (const Match& m : matches) {
    if (m.pattern_id == nas) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AhoCorasickTest, EmptyPatternRejected) {
  AhoCorasick ac;
  EXPECT_EQ(ac.AddPattern(""), -1);
  ac.AddPattern("x");
  ac.Build();
  EXPECT_EQ(ac.num_patterns(), 1);
}

TEST(AhoCorasickTest, NoMatchesInUnrelatedText) {
  AhoCorasick ac;
  ac.AddPattern("needle");
  ac.Build();
  EXPECT_TRUE(ac.FindAll("haystack without it").empty());
  EXPECT_TRUE(ac.FindAll("").empty());
}

TEST(AhoCorasickTest, WholeWordFiltering) {
  AhoCorasick ac;
  int art = ac.AddPattern("art");
  ac.Build();
  EXPECT_TRUE(ac.FindAllWholeWords("cartel").empty());
  EXPECT_TRUE(ac.FindAllWholeWords("artist").empty());
  EXPECT_TRUE(ac.FindAllWholeWords("mart").empty());
  auto matches = ac.FindAllWholeWords("the art of war; art!");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].pattern_id, art);
}

TEST(AhoCorasickTest, WholeWordMultiWordPhrases) {
  AhoCorasick ac;
  ac.AddPattern("new york");
  ac.Build();
  EXPECT_EQ(ac.FindAllWholeWords("in new york city").size(), 1u);
  EXPECT_TRUE(ac.FindAllWholeWords("renew yorker").empty());
}

TEST(AhoCorasickTest, DuplicatePatternsGetDistinctIds) {
  AhoCorasick ac;
  int first = ac.AddPattern("dup");
  int second = ac.AddPattern("dup");
  ac.Build();
  EXPECT_NE(first, second);
  auto matches = ac.FindAll("dup");
  EXPECT_EQ(matches.size(), 2u);  // both ids reported
}

// Property: matches agree with a naive scan, over random patterns and text.
class AhoCorasickProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AhoCorasickProperty, AgreesWithNaiveSearch) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    // Small alphabet to force overlaps and shared prefixes.
    auto random_string = [&](int max_len) {
      int len = rng.UniformInt(1, max_len);
      std::string s;
      for (int i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.UniformInt(0, 2));
      }
      return s;
    };
    std::vector<std::string> patterns;
    AhoCorasick ac;
    int n_patterns = rng.UniformInt(1, 8);
    for (int p = 0; p < n_patterns; ++p) {
      patterns.push_back(random_string(4));
      ac.AddPattern(patterns.back());
    }
    ac.Build();
    std::string text = random_string(60);

    std::vector<Match> expected;
    for (int p = 0; p < n_patterns; ++p) {
      const std::string& pat = patterns[p];
      for (size_t pos = 0; pos + pat.size() <= text.size(); ++pos) {
        if (text.compare(pos, pat.size(), pat) == 0) {
          expected.push_back({p, static_cast<int>(pos),
                              static_cast<int>(pos + pat.size())});
        }
      }
    }
    std::vector<Match> actual = ac.FindAll(text);
    auto key = [](const Match& m) {
      return std::tuple<int, int, int>(m.pattern_id, m.begin, m.end);
    };
    std::sort(expected.begin(), expected.end(),
              [&](const Match& x, const Match& y) { return key(x) < key(y); });
    std::sort(actual.begin(), actual.end(),
              [&](const Match& x, const Match& y) { return key(x) < key(y); });
    EXPECT_EQ(actual, expected) << "text=" << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhoCorasickProperty,
                         ::testing::Values(5, 55, 555, 5555, 55555));

}  // namespace
}  // namespace extract
}  // namespace weber

// Schema/finiteness checks for the observable surfaces of weber_serve: the
// stats JSON line and the Prometheus text behind the `metrics` verb. A
// scripted session drives a real service through assign/compact/query,
// then every numeric value in both payloads must be finite and every
// expected key present — the regression net for NaN/Inf leaking into
// operator-facing output.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

namespace weber {
namespace serve {
namespace {

/// Scans a flat-or-nested JSON text for every `"key": <number>` pair and
/// returns the parsed numbers. Good enough for JsonWriter output (no
/// numbers inside strings except the quoted-and-escaped server_stats echo,
/// which this test never feeds through).
std::vector<std::pair<std::string, double>> NumericFields(
    const std::string& json) {
  std::vector<std::pair<std::string, double>> fields;
  size_t i = 0;
  while (i < json.size()) {
    if (json[i] != '"') {
      ++i;
      continue;
    }
    const size_t key_start = i + 1;
    size_t key_end = key_start;
    while (key_end < json.size() && json[key_end] != '"') {
      if (json[key_end] == '\\') ++key_end;  // skip escapes
      ++key_end;
    }
    if (key_end >= json.size()) break;
    const std::string key = json.substr(key_start, key_end - key_start);
    size_t after = key_end + 1;
    while (after < json.size() && std::isspace(json[after])) ++after;
    if (after >= json.size() || json[after] != ':') {
      i = key_end + 1;
      continue;
    }
    ++after;
    while (after < json.size() && std::isspace(json[after])) ++after;
    if (after < json.size() &&
        (json[after] == '-' || std::isdigit(json[after]))) {
      char* end = nullptr;
      const double value = std::strtod(json.c_str() + after, &end);
      fields.emplace_back(key, value);
      i = static_cast<size_t>(end - json.c_str());
    } else {
      i = after;
    }
  }
  return fields;
}

bool HasKey(const std::vector<std::pair<std::string, double>>& fields,
            const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

class StatsSchemaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// A service with tracing armed, driven through one of every request
  /// kind so the counters, reservoirs, and histograms are all non-trivial.
  void StartTracedService() {
    obs::TraceOptions trace_options;
    trace_options.slow_ms = 1e-9;  // everything is "slow": exercises logging
    trace_ = std::make_unique<obs::TraceCollector>(trace_options);
    ServiceOptions options;
    options.trace = trace_.get();
    auto service =
        ResolutionService::Create(data_->dataset, &data_->gazetteer, options);
    ASSERT_TRUE(service.ok()) << service.status();
    service_ = std::move(service).ValueOrDie();
    server_ = std::make_unique<LineServer>(service_.get());

    bool quit = false;
    const std::string& shard = data_->dataset.blocks[0].query;
    EXPECT_EQ(server_->HandleLine("assign " + shard + " 0", &quit)
                  .rfind("ok ", 0),
              0u);
    EXPECT_EQ(server_->HandleLine("assign " + shard + " 1", &quit)
                  .rfind("ok ", 0),
              0u);
    EXPECT_EQ(server_->HandleLine("compact " + shard, &quit), "ok 1");
    EXPECT_EQ(server_->HandleLine("query " + shard + " 0", &quit)
                  .rfind("ok ", 0),
              0u);
  }

  static corpus::SyntheticData* data_;
  std::unique_ptr<obs::TraceCollector> trace_;
  std::unique_ptr<ResolutionService> service_;
  std::unique_ptr<LineServer> server_;
};

corpus::SyntheticData* StatsSchemaTest::data_ = nullptr;

TEST_F(StatsSchemaTest, StatsJsonIsFiniteAndComplete) {
  StartTracedService();
  bool quit = false;
  const std::string response = server_->HandleLine("stats", &quit);
  ASSERT_EQ(response.rfind("ok {", 0), 0u) << response;
  const std::string json = response.substr(3);

  const auto fields = NumericFields(json);
  ASSERT_FALSE(fields.empty());
  for (const auto& [key, value] : fields) {
    EXPECT_TRUE(std::isfinite(value)) << key << " is not finite";
  }
  // The raw text must never carry a bare NaN/Infinity literal either.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  for (const char* key :
       {"assigns", "queries", "compactions", "failed_compactions",
        "failed_assigns", "snapshot_swaps", "batches_flushed",
        "batched_requests", "hits", "misses", "evictions", "entries",
        "hit_rate", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
        "wal_appends", "snapshots_written"}) {
    EXPECT_TRUE(HasKey(fields, key)) << "stats JSON lost key " << key;
  }
}

TEST_F(StatsSchemaTest, MetricsVerbEmitsParsableFinitePrometheusText) {
  StartTracedService();
  bool quit = false;
  const std::string response = server_->HandleLine("metrics", &quit);
  ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;

  // "ok <n>\n" then exactly n payload lines (the final newline is added by
  // the transport loop, so the last payload line has none here).
  const size_t header_end = response.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const long long advertised =
      std::atoll(response.c_str() + 3);
  ASSERT_GT(advertised, 0);

  std::vector<std::string> lines;
  size_t start = header_end + 1;
  while (start <= response.size()) {
    const size_t end = response.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(response.substr(start));
      break;
    }
    lines.push_back(response.substr(start, end - start));
    start = end + 1;
  }
  EXPECT_EQ(static_cast<long long>(lines.size()), advertised);

  int families = 0;
  int samples = 0;
  bool in_typed_family = false;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty()) << "empty line in metrics payload";
    if (line.rfind("# HELP ", 0) == 0) {
      ++families;
      in_typed_family = false;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      in_typed_family = true;
      continue;
    }
    // Sample line: <name>[{labels}] <finite value>.
    EXPECT_TRUE(in_typed_family) << "sample before # TYPE: " << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "trailing junk in: " << line;
    EXPECT_TRUE(std::isfinite(value)) << "non-finite sample: " << line;
    ++samples;
  }
  EXPECT_GT(families, 10);
  EXPECT_GT(samples, families);

  const std::string text = response.substr(header_end + 1);
  for (const char* needle :
       {"weber_assigns_total 2", "weber_queries_total 1",
        "weber_compactions_total 1", "weber_request_latency_ms_bucket",
        "weber_request_latency_ms_count", "weber_batch_size",
        "weber_cache_hits_total", "weber_shards",
        "weber_server_connections_accepted_total",
        "weber_trace_spans_total"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "metrics payload lost " << needle;
  }

  // Tracing was armed with a sub-nanosecond slow threshold, so every span
  // counted as slow and the exported counters must agree with the
  // collector.
  EXPECT_GT(trace_->spans_recorded(), 0);
  EXPECT_GT(trace_->slow_spans(), 0);
  EXPECT_NE(text.find("weber_trace_slow_spans_total"), std::string::npos);
}

TEST_F(StatsSchemaTest, TraceSpansCoverTheRequestPath) {
  StartTracedService();
  std::vector<std::string> names;
  for (const obs::TraceSpan& span : trace_->Spans()) {
    names.push_back(span.name);
  }
  for (const char* expected :
       {"serve.request", "serve.parse", "serve.assign", "serve.shard",
        "serve.resolver", "serve.query", "serve.compact"}) {
    bool found = false;
    for (const std::string& name : names) {
      if (name == expected) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no span named " << expected;
  }
  // Spans carry the request IDs the server allocated (no zero IDs on the
  // direct request path).
  for (const obs::TraceSpan& span : trace_->Spans()) {
    if (std::string(span.name).rfind("serve.", 0) == 0 &&
        std::string(span.name) != "serve.batcher.park" &&
        std::string(span.name) != "serve.batch_flush") {
      EXPECT_GT(span.request_id, 0u) << span.name;
    }
  }
}

TEST_F(StatsSchemaTest, UntracedServiceStatsStaysByteStable) {
  // The no-flag contract: a service without a trace collector must emit a
  // stats line identical in shape to the seed's — no new keys, no spans.
  ServiceOptions options;
  auto service =
      ResolutionService::Create(data_->dataset, &data_->gazetteer, options);
  ASSERT_TRUE(service.ok()) << service.status();
  LineServer server(service->get());
  bool quit = false;
  const std::string response = server.HandleLine("stats", &quit);
  ASSERT_EQ(response.rfind("ok {", 0), 0u);
  EXPECT_EQ(response.find("trace"), std::string::npos);
  EXPECT_EQ(response.find("span"), std::string::npos);
  const auto fields = NumericFields(response.substr(3));
  for (const auto& [key, value] : fields) {
    EXPECT_TRUE(std::isfinite(value)) << key;
  }
}

TEST_F(StatsSchemaTest, ShardDetailIsLazyAndPlainStatsStaysByteIdentical) {
  // `stats shards` feeds the router's rebalance planner: every shard entry
  // grows a wal_bytes field. Plain `stats` must not pay for that — its
  // payload stays byte-for-byte what an unscraped service emits.
  ServiceOptions options;
  auto service =
      ResolutionService::Create(data_->dataset, &data_->gazetteer, options);
  ASSERT_TRUE(service.ok()) << service.status();
  LineServer server(service->get());
  bool quit = false;

  const auto count = [](const std::string& text, const std::string& needle) {
    size_t n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };

  // The durability section has always carried one aggregate wal_bytes; the
  // per-shard copies only appear on request.
  const std::string before = server.HandleLine("stats", &quit);
  ASSERT_EQ(before.rfind("ok {", 0), 0u);
  EXPECT_EQ(count(before, "\"wal_bytes\":"), 1u) << before;

  const std::string detailed = server.HandleLine("stats shards", &quit);
  ASSERT_EQ(detailed.rfind("ok {", 0), 0u);
  // Every shard entry carries the field, not just the first.
  const size_t shard_entries = count(detailed, "\"documents\":");
  EXPECT_GT(shard_entries, 0u);
  EXPECT_EQ(count(detailed, "\"wal_bytes\":"), shard_entries + 1) << detailed;
  for (const auto& [key, value] : NumericFields(detailed.substr(3))) {
    EXPECT_TRUE(std::isfinite(value)) << key;
    if (key == "wal_bytes") {
      EXPECT_GE(value, 0.0);
    }
  }

  // Asking for detail must not leak state into the plain form afterwards.
  const std::string after = server.HandleLine("stats", &quit);
  EXPECT_EQ(after, before);
}

TEST_F(StatsSchemaTest, BackendsRefuseRouterAdminVerbs) {
  // Rebalance and drain are fleet-level decisions; a backend asked to run
  // one answers with a pointer to the router rather than guessing.
  ServiceOptions options;
  auto service =
      ResolutionService::Create(data_->dataset, &data_->gazetteer, options);
  ASSERT_TRUE(service.ok()) << service.status();
  LineServer server(service->get());
  bool quit = false;

  const std::string rebalance =
      server.HandleLine("rebalance host1:1 host2:2", &quit);
  EXPECT_EQ(rebalance.rfind("err ", 0), 0u) << rebalance;
  EXPECT_NE(rebalance.find("'rebalance' is a router admin verb"),
            std::string::npos)
      << rebalance;

  const std::string drain = server.HandleLine("drain host1:1", &quit);
  EXPECT_EQ(drain.rfind("err ", 0), 0u) << drain;
  EXPECT_NE(drain.find("'drain' is a router admin verb"), std::string::npos)
      << drain;
  EXPECT_FALSE(quit);
}

}  // namespace
}  // namespace serve
}  // namespace weber

#include "corpus/dataset_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/fault_injection.h"

namespace weber {
namespace corpus {
namespace {

Dataset MakeSample() {
  Dataset d;
  d.name = "sample";
  Block block;
  block.query = "cohen";
  block.documents.push_back(
      {"cohen/0", "http://a.com/x", "first page text\nsecond line"});
  block.documents.push_back({"cohen/1", "http://b.com/y", "single line"});
  block.documents.push_back({"cohen/2", "http://c.com/z", ""});
  block.entity_labels = {0, 1, 0};
  d.blocks.push_back(block);
  Block other;
  other.query = "ng";
  other.documents.push_back({"ng/0", "http://d.com", "about ng"});
  other.entity_labels = {5};
  d.blocks.push_back(other);
  return d;
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  Dataset original = MakeSample();
  std::stringstream ss;
  ASSERT_TRUE(SaveDataset(original, ss).ok());
  auto loaded = LoadDataset(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name, "sample");
  ASSERT_EQ(loaded->num_blocks(), 2);
  const Block& b0 = loaded->blocks[0];
  EXPECT_EQ(b0.query, "cohen");
  ASSERT_EQ(b0.num_documents(), 3);
  EXPECT_EQ(b0.documents[0].id, "cohen/0");
  EXPECT_EQ(b0.documents[0].url, "http://a.com/x");
  EXPECT_EQ(b0.documents[0].text, "first page text\nsecond line");
  EXPECT_EQ(b0.documents[2].text, "");
  EXPECT_EQ(b0.entity_labels, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(loaded->blocks[1].entity_labels, (std::vector<int>{5}));
}

TEST(DatasetIoTest, SaveRejectsInconsistentBlock) {
  Dataset d;
  d.name = "broken";
  Block block;
  block.query = "x";
  block.documents.push_back({"x/0", "u", "t"});
  // entity_labels missing.
  d.blocks.push_back(block);
  std::stringstream ss;
  EXPECT_EQ(SaveDataset(d, ss).code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, LoadRejectsMissingHeader) {
  std::stringstream ss("#block x 0\n");
  auto loaded = LoadDataset(ss);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, LoadRejectsTruncatedBlock) {
  std::stringstream ss(
      "#dataset t\n#block q 2\n#doc q/0 0\n#url u\n#text 0\n");
  auto loaded = LoadDataset(ss);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, LoadRejectsBadLabel) {
  std::stringstream ss("#dataset t\n#block q 1\n#doc q/0 notanint\n");
  EXPECT_EQ(LoadDataset(ss).status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, LoadRejectsUnknownDirective) {
  std::stringstream ss("#dataset t\n#bogus\n");
  EXPECT_EQ(LoadDataset(ss).status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, LoadRejectsWrongTextLineCount) {
  std::stringstream ss(
      "#dataset t\n#block q 1\n#doc q/0 0\n#url u\n#text 3\nonly one line\n");
  EXPECT_EQ(LoadDataset(ss).status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, EmptyDatasetRoundTrips) {
  Dataset d;
  d.name = "empty";
  std::stringstream ss;
  ASSERT_TRUE(SaveDataset(d, ss).ok());
  auto loaded = LoadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, "empty");
  EXPECT_EQ(loaded->num_blocks(), 0);
}

TEST(DatasetIoTest, FileRoundTrip) {
  Dataset original = MakeSample();
  std::string path = ::testing::TempDir() + "/weber_dataset_io_test.txt";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());
  auto loaded = LoadDatasetFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalDocuments(), original.TotalDocuments());
}

TEST(DatasetIoTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadDatasetFromFile("/nonexistent/definitely/missing").status().code(),
            StatusCode::kIOError);
}

TEST(DatasetIoTest, RejectsImplausibleHeaderCounts) {
  // Negative and absurd counts must fail fast with Corruption instead of
  // attempting a giant reserve.
  for (const char* header : {"#block q -3\n", "#block q 2000000000\n",
                             "#block q 987654321987654321\n"}) {
    std::stringstream ss(std::string("#dataset t\n") + header);
    auto loaded = LoadDataset(ss);
    ASSERT_FALSE(loaded.ok()) << header;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << header;
  }
  {
    // Same for the per-document text line count.
    std::stringstream ss(
        "#dataset t\n#block q 1\n#doc q/0 0\n#url u\n#text 99999999999\n");
    EXPECT_EQ(LoadDataset(ss).status().code(), StatusCode::kCorruption);
  }
}

TEST(DatasetIoTest, LenientModeSkipsCorruptMiddleBlock) {
  std::stringstream ss(
      "#dataset t\n"
      "#block good1 1\n#doc good1/0 0\n#url u1\n#text 1\nhello\n"
      "#block broken 2\n#doc broken/0 notanint\n"
      "#block good2 1\n#doc good2/0 4\n#url u2\n#text 0\n");
  LoadOptions options;
  options.lenient = true;
  LoadReport report;
  auto loaded = LoadDataset(ss, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_blocks(), 2);
  EXPECT_EQ(loaded->blocks[0].query, "good1");
  EXPECT_EQ(loaded->blocks[1].query, "good2");
  EXPECT_EQ(loaded->blocks[1].entity_labels, (std::vector<int>{4}));
  EXPECT_EQ(report.blocks_loaded, 2);
  EXPECT_EQ(report.blocks_skipped, 1);
  ASSERT_EQ(report.block_errors.size(), 1u);
  EXPECT_EQ(report.block_errors[0].query, "broken");
  EXPECT_EQ(report.block_errors[0].status.code(), StatusCode::kCorruption);

  // The same input fails outright in strict mode.
  std::stringstream strict(ss.str());
  EXPECT_EQ(LoadDataset(strict).status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, LenientModeStillFailsWhenHeaderIsMissing) {
  std::stringstream ss("#block q 0\n");
  LoadOptions options;
  options.lenient = true;
  EXPECT_EQ(LoadDataset(ss, options, nullptr).status().code(),
            StatusCode::kCorruption);
}

TEST(DatasetIoTest, RetryRecoversFromTransientIOErrors) {
  faults::ScopedFaultClearance clearance;
  Dataset original = MakeSample();
  std::string path = ::testing::TempDir() + "/weber_dataset_retry_test.txt";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());

  // Fail the first two read attempts; the third succeeds.
  ASSERT_TRUE(faults::FaultInjector::Instance()
                  .ArmFromSpec("dataset_io.read=ioerror:1:0:2")
                  .ok());
  LoadOptions options;
  options.max_retries = 3;
  options.retry_backoff_ms = 1;
  LoadReport report;
  auto loaded = LoadDatasetFromFile(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(loaded->TotalDocuments(), original.TotalDocuments());
}

TEST(DatasetIoTest, RetriesExhaustedSurfaceTheIOError) {
  faults::ScopedFaultClearance clearance;
  Dataset original = MakeSample();
  std::string path = ::testing::TempDir() + "/weber_dataset_retry_test2.txt";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());

  ASSERT_TRUE(faults::FaultInjector::Instance()
                  .ArmFromSpec("dataset_io.read=ioerror")
                  .ok());
  LoadOptions options;
  options.max_retries = 2;
  options.retry_backoff_ms = 1;
  LoadReport report;
  auto loaded = LoadDatasetFromFile(path, options, &report);
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_EQ(report.retries, 2);
}

TEST(DatasetIoTest, CorruptionIsNeverRetried) {
  std::string path = ::testing::TempDir() + "/weber_dataset_corrupt_test.txt";
  {
    std::ofstream out(path);
    out << "#dataset t\n#bogus\n";
  }
  LoadOptions options;
  options.max_retries = 5;
  options.retry_backoff_ms = 1;
  LoadReport report;
  auto loaded = LoadDatasetFromFile(path, options, &report);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(report.retries, 0);
}

TEST(GazetteerIoTest, RoundTrip) {
  extract::Gazetteer g;
  g.Add("alice cohen", extract::EntityType::kPerson);
  g.Add("epfl", extract::EntityType::kOrganization, 1.25);
  g.Add("machine learning", extract::EntityType::kConcept, 0.75);
  g.Add("zurich", extract::EntityType::kLocation);
  std::stringstream ss;
  ASSERT_TRUE(SaveGazetteer(g, ss).ok());
  auto loaded = LoadGazetteer(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 4);
  EXPECT_EQ(loaded->entry(1).surface, "epfl");
  EXPECT_EQ(loaded->entry(1).type, extract::EntityType::kOrganization);
  EXPECT_NEAR(loaded->entry(1).weight, 1.25, 1e-9);
  // Loaded gazetteer is ready to annotate.
  EXPECT_EQ(loaded->Annotate("alice cohen went to zurich").size(), 2u);
}

TEST(GazetteerIoTest, RejectsMalformedInput) {
  {
    std::stringstream ss("nonsense");
    EXPECT_EQ(LoadGazetteer(ss).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream ss("#gazetteer 1\nbadline-without-tabs\n");
    EXPECT_EQ(LoadGazetteer(ss).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream ss("#gazetteer 2\nperson\t1.0\tok name\n");
    EXPECT_EQ(LoadGazetteer(ss).status().code(), StatusCode::kCorruption);
  }
  {
    std::stringstream ss("#gazetteer 1\nmartian\t1.0\tname\n");
    EXPECT_EQ(LoadGazetteer(ss).status().code(), StatusCode::kCorruption);
  }
}

}  // namespace
}  // namespace corpus
}  // namespace weber

#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace weber {
namespace text {
namespace {

TEST(TokenizerTest, BasicSplitting) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, world!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("MiXeD CaSe"),
            (std::vector<std::string>{"mixed", "case"}));
}

TEST(TokenizerTest, CanPreserveCase) {
  TokenizerOptions options;
  options.lowercase = false;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("MiXeD"), (std::vector<std::string>{"MiXeD"}));
}

TEST(TokenizerTest, KeepsInternalApostropheAndHyphen) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("o'brien's entity-resolution"),
            (std::vector<std::string>{"o'brien's", "entity-resolution"}));
}

TEST(TokenizerTest, LeadingTrailingJoinersAreSeparators) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("-abc- 'def'"),
            (std::vector<std::string>{"abc", "def"}));
}

TEST(TokenizerTest, NumbersKeptByDefault) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("icde 2010"),
            (std::vector<std::string>{"icde", "2010"}));
}

TEST(TokenizerTest, NumbersCanBeDropped) {
  TokenizerOptions options;
  options.keep_numbers = false;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("icde 2010 x86"),
            (std::vector<std::string>{"icde", "x86"}));
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerOptions options;
  options.min_token_length = 3;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("a an the cat"),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(TokenizerTest, MaxLengthTruncates) {
  TokenizerOptions options;
  options.max_token_length = 4;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("abcdefgh"), (std::vector<std::string>{"abcd"}));
}

TEST(TokenizerTest, NonAsciiBytesSeparate) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("caf\xc3\xa9 bar"),
            (std::vector<std::string>{"caf", "bar"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize(" .,;!? \n\t").empty());
}

TEST(TokenizerTest, UrlsSplitIntoComponents) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("http://www.epfl.ch/~yerva"),
            (std::vector<std::string>{"http", "www", "epfl", "ch", "yerva"}));
}

}  // namespace
}  // namespace text
}  // namespace weber

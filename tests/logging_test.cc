#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace weber {
namespace {

/// Captures std::cerr for the lifetime of the object.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = Logger::level(); }
  void TearDown() override { Logger::SetLevel(previous_level_); }
  LogLevel previous_level_;
};

TEST_F(LoggingTest, DefaultLevelSuppressesInfo) {
  Logger::SetLevel(LogLevel::kWarning);
  CerrCapture capture;
  WEBER_LOG(INFO) << "invisible";
  WEBER_LOG(DEBUG) << "also invisible";
  EXPECT_EQ(capture.str(), "");
}

TEST_F(LoggingTest, WarningAndErrorPassAtDefaultLevel) {
  Logger::SetLevel(LogLevel::kWarning);
  CerrCapture capture;
  WEBER_LOG(WARNING) << "watch out";
  WEBER_LOG(ERROR) << "boom " << 42;
  std::string out = capture.str();
  EXPECT_NE(out.find("watch out"), std::string::npos);
  EXPECT_NE(out.find("boom 42"), std::string::npos);
  EXPECT_NE(out.find("[W "), std::string::npos);
  EXPECT_NE(out.find("[E "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, LoweringTheLevelEnablesDebug) {
  Logger::SetLevel(LogLevel::kDebug);
  CerrCapture capture;
  WEBER_LOG(DEBUG) << "now visible";
  EXPECT_NE(capture.str().find("now visible"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::SetLevel(LogLevel::kOff);
  CerrCapture capture;
  WEBER_LOG(ERROR) << "even errors";
  EXPECT_EQ(capture.str(), "");
}

TEST_F(LoggingTest, StreamedExpressionsNotEvaluatedWhenSuppressed) {
  Logger::SetLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  WEBER_LOG(DEBUG) << count();
  EXPECT_EQ(evaluations, 0);  // short-circuited by the level check
  CerrCapture capture;
  WEBER_LOG(ERROR) << count();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace weber

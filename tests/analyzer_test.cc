#include "text/analyzer.h"

#include <gtest/gtest.h>

namespace weber {
namespace text {
namespace {

TEST(StopwordSetTest, DefaultEnglishContainsCoreWords) {
  StopwordSet set = StopwordSet::DefaultEnglish();
  for (const char* w : {"the", "and", "of", "is", "was", "their", "www"}) {
    EXPECT_TRUE(set.Contains(w)) << w;
  }
  EXPECT_FALSE(set.Contains("entity"));
  EXPECT_FALSE(set.Contains("cohen"));
  EXPECT_GT(set.size(), 150u);
}

TEST(StopwordSetTest, EmptyAndCustomSets) {
  EXPECT_EQ(StopwordSet::Empty().size(), 0u);
  StopwordSet custom = StopwordSet::FromWords({"foo", "bar"});
  EXPECT_TRUE(custom.Contains("foo"));
  EXPECT_FALSE(custom.Contains("baz"));
}

TEST(AnalyzerTest, FullPipelineDropsStopwordsAndStems) {
  Analyzer analyzer;
  auto terms = analyzer.Analyze("The entities were connected by the resolver");
  // "the", "were", "by" dropped; remaining tokens stemmed.
  EXPECT_EQ(terms, (std::vector<std::string>{"entiti", "connect", "resolv"}));
}

TEST(AnalyzerTest, StemmingCanBeDisabled) {
  AnalyzerOptions options;
  options.stem = false;
  Analyzer analyzer(options);
  auto terms = analyzer.Analyze("connected entities");
  EXPECT_EQ(terms, (std::vector<std::string>{"connected", "entities"}));
}

TEST(AnalyzerTest, StopwordRemovalCanBeDisabled) {
  AnalyzerOptions options;
  options.remove_stopwords = false;
  options.stem = false;
  Analyzer analyzer(options);
  auto terms = analyzer.Analyze("the cat");
  EXPECT_EQ(terms, (std::vector<std::string>{"the", "cat"}));
}

TEST(AnalyzerTest, MinTermLengthAppliesAfterStemming) {
  AnalyzerOptions options;
  options.min_term_length = 5;
  Analyzer analyzer(options);
  // "ties" stems to "ti" (2 chars) -> dropped at 5; "relational" -> "relat".
  auto terms = analyzer.Analyze("ties relational");
  EXPECT_EQ(terms, (std::vector<std::string>{"relat"}));
}

TEST(AnalyzerTest, CustomStopwords) {
  Analyzer analyzer(AnalyzerOptions{}, StopwordSet::FromWords({"weber"}));
  auto terms = analyzer.Analyze("weber resolves weber entities");
  EXPECT_EQ(terms, (std::vector<std::string>{"resolv", "entiti"}));
}

TEST(AnalyzerTest, EmptyInput) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.Analyze("").empty());
  EXPECT_TRUE(analyzer.Analyze("the of and").empty());
}

}  // namespace
}  // namespace text
}  // namespace weber

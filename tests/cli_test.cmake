# End-to-end test of the weber CLI: generate -> stats -> resolve ->
# evaluate -> experiment, all through the shipped binary. Invoked by ctest
# with -DWEBER_BIN=<path> -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})
if(NOT EXISTS "${WORK_DIR}/dataset.txt" OR NOT EXISTS "${WORK_DIR}/gazetteer.txt")
  message(FATAL_ERROR "generate did not produce the expected files")
endif()

run(${WEBER_BIN} stats --dataset=${WORK_DIR}/dataset.txt)
if(NOT LAST_OUTPUT MATCHES "3 blocks")
  message(FATAL_ERROR "stats output unexpected:\n${LAST_OUTPUT}")
endif()

run(${WEBER_BIN} resolve --dataset=${WORK_DIR}/dataset.txt
    --gazetteer=${WORK_DIR}/gazetteer.txt --out=${WORK_DIR}/resolution.txt)
if(NOT LAST_OUTPUT MATCHES "MEAN  Fp=")
  message(FATAL_ERROR "resolve output unexpected:\n${LAST_OUTPUT}")
endif()

run(${WEBER_BIN} evaluate --dataset=${WORK_DIR}/dataset.txt
    --resolution=${WORK_DIR}/resolution.txt)
if(NOT LAST_OUTPUT MATCHES "MEAN")
  message(FATAL_ERROR "evaluate output unexpected:\n${LAST_OUTPUT}")
endif()

run(${WEBER_BIN} experiment --dataset=${WORK_DIR}/dataset.txt
    --gazetteer=${WORK_DIR}/gazetteer.txt --runs=1 --threads=2
    --json=${WORK_DIR}/results.json)
if(NOT LAST_OUTPUT MATCHES "C10")
  message(FATAL_ERROR "experiment output unexpected:\n${LAST_OUTPUT}")
endif()
file(READ "${WORK_DIR}/results.json" json)
if(NOT json MATCHES "\"label\":\"C10\"")
  message(FATAL_ERROR "experiment JSON unexpected:\n${json}")
endif()

# Unknown flags / subcommands must fail loudly.
execute_process(COMMAND ${WEBER_BIN} bogus RESULT_VARIABLE rc OUTPUT_QUIET
                ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown subcommand did not fail")
endif()
execute_process(COMMAND ${WEBER_BIN} stats --no-such-flag=1
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown flag did not fail")
endif()

# StatusCode-specific exit codes (scriptable failure triage): a missing
# dataset is IOError -> exit 3, a corrupt one is Corruption -> exit 4, and
# the error report goes to stderr, not stdout.
execute_process(COMMAND ${WEBER_BIN} stats --dataset=${WORK_DIR}/no_such_file
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "missing dataset should exit 3 (IOError), got ${rc}")
endif()
if(NOT err MATCHES "IOError")
  message(FATAL_ERROR "missing-dataset error not on stderr:\n${err}")
endif()
file(WRITE "${WORK_DIR}/corrupt.txt" "#dataset x\n#bogus\n")
execute_process(COMMAND ${WEBER_BIN} stats --dataset=${WORK_DIR}/corrupt.txt
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR "corrupt dataset should exit 4 (Corruption), got ${rc}")
endif()

# Fault injection is reachable from the CLI and the run degrades instead of
# dying: resolve with every resolution fault point armed.
execute_process(COMMAND ${WEBER_BIN} resolve --dataset=${WORK_DIR}/dataset.txt
                --gazetteer=${WORK_DIR}/gazetteer.txt
                "--faults=similarity.compute=nan:0.2;resolver.train=error:0.3;clustering.run=error:0.5"
                --fault_seed=7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos resolve failed (${rc}):\n${out}\n${err}")
endif()
if(NOT err MATCHES "health:")
  message(FATAL_ERROR "chaos resolve did not report degraded health:\n${err}")
endif()

message(STATUS "weber CLI end-to-end test passed")

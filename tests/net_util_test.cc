// Direct unit coverage for the TCP client plumbing (net::DialTcp,
// net::LineSocket) that carries every router→backend hop and the migration
// export/import stream: failure *classification* (budget expiry must be
// DeadlineExceeded, a dead peer must be IOError — callers route on the
// difference), line framing across CRLF/partial reads, and oversized-line
// behaviour: the transport never caps a line, the serving loop's
// per-prefix caps do.

#include "common/net_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "serve/protocol.h"
#include "serve/server.h"

namespace weber {
namespace net {
namespace {

/// A bare loopback listener the tests script by hand: accept, trickle
/// bytes, hang up — the peer behaviours LineSocket must classify.
class TestListener {
 public:
  TestListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~TestListener() {
    if (fd_ >= 0) ::close(fd_);
  }

  int port() const { return port_; }
  int Accept() { return ::accept(fd_, nullptr, nullptr); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  int port_ = 0;
};

TEST(DialTcpTest, RefusedConnectIsIOErrorNotDeadline) {
  // Grab a port the kernel just proved free, close the listener, dial it:
  // the refusal must classify as a transport failure, not a timeout, even
  // with a generous budget armed.
  int port = 0;
  {
    TestListener listener;
    port = listener.port();
  }
  Result<int> fd = DialTcp("127.0.0.1", port, 1000.0);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kIOError) << fd.status();
}

TEST(DialTcpTest, BadAddressLiteralIsInvalidArgument) {
  Result<int> fd = DialTcp("not-an-ipv4-literal", 80, 100.0);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kInvalidArgument);
}

TEST(DialTcpTest, ConnectsAndReturnsBlockingFd) {
  TestListener listener;
  Result<int> fd = DialTcp("127.0.0.1", listener.port(), 1000.0);
  ASSERT_TRUE(fd.ok()) << fd.status();
  ::close(*fd);
}

TEST(LineSocketTest, ReadBudgetExpiryIsDeadlineExceeded) {
  TestListener listener;
  LineSocket socket;
  ASSERT_TRUE(socket.Connect("127.0.0.1", listener.port(), 1000.0).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);
  // The peer is alive but silent: the bounded read must expire with
  // DeadlineExceeded, which callers (router probes, migration fetches)
  // treat differently from a dead peer.
  Result<std::string> line = socket.ReadLine(50.0);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kDeadlineExceeded)
      << line.status();
  ::close(peer);
}

TEST(LineSocketTest, PeerResetIsIOError) {
  TestListener listener;
  LineSocket socket;
  ASSERT_TRUE(socket.Connect("127.0.0.1", listener.port(), 1000.0).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);
  ::close(peer);  // hang up before answering
  Result<std::string> line = socket.ReadLine(1000.0);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kIOError) << line.status();
}

TEST(LineSocketTest, SendWithoutConnectFailsPrecondition) {
  LineSocket socket;
  Status st = socket.SendLine("ping");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(socket.ReadLine(10.0).ok());
}

TEST(LineSocketTest, SplitsCrlfLinesFromOneSegment) {
  TestListener listener;
  LineSocket socket;
  ASSERT_TRUE(socket.Connect("127.0.0.1", listener.port(), 1000.0).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);
  const std::string wire = "alpha\r\nbeta\n";
  ASSERT_TRUE(SendAll(peer, wire.data(), wire.size()).ok());
  Result<std::string> first = socket.ReadLine(1000.0);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, "alpha");  // '\r' stripped
  Result<std::string> second = socket.ReadLine(1000.0);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*second, "beta");
  ::close(peer);
}

TEST(LineSocketTest, ReassemblesLineTrickledAcrossSends) {
  TestListener listener;
  LineSocket socket;
  ASSERT_TRUE(socket.Connect("127.0.0.1", listener.port(), 1000.0).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);
  std::thread trickler([peer] {
    const std::string head = "hel";
    const std::string tail = "lo\n";
    ASSERT_TRUE(SendAll(peer, head.data(), head.size()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(SendAll(peer, tail.data(), tail.size()).ok());
  });
  Result<std::string> line = socket.ReadLine(2000.0);
  trickler.join();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, "hello");
  ::close(peer);
}

TEST(LineSocketTest, CarriesLinesLargerThanTheServingCapsIntact) {
  // The transport imposes no line cap — containment is the serving loop's
  // job, so a migration import frame far beyond kMaxRequestLineBytes must
  // arrive byte-perfect.
  TestListener listener;
  LineSocket socket;
  ASSERT_TRUE(socket.Connect("127.0.0.1", listener.port(), 1000.0).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);
  std::string big(2 * serve::kMaxRequestLineBytes + 37, 'x');
  big[0] = 'a';
  big.back() = 'z';
  std::thread sender([&] {
    std::string wire = big;
    wire += '\n';
    ASSERT_TRUE(SendAll(peer, wire.data(), wire.size()).ok());
  });
  Result<std::string> line = socket.ReadLine(5000.0);
  sender.join();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, big);
  ::close(peer);
}

// The serving loop's per-prefix containment over this same transport: an
// unterminated flood past the cap is answered once and the stream resyncs,
// while an `import `-prefixed line of the same size — legitimate migration
// traffic — reaches the handler whole.
TEST(LineSocketTest, ServingLoopCapsDependOnTheVerbPrefix) {
  std::string seen_request;
  serve::LineServer server(
      [&seen_request](const std::string& line, bool* quit) {
        *quit = false;
        seen_request = line;
        return std::string("ok");
      });
  ASSERT_TRUE(server.StartTcp(0).ok());

  // A non-import line just past the request cap is contained and refused.
  {
    LineSocket socket;
    ASSERT_TRUE(
        socket.Connect("127.0.0.1", server.tcp_port(), 1000.0).ok());
    const std::string flood(2 * serve::kMaxRequestLineBytes, 'a');
    ASSERT_TRUE(socket.SendLine(flood).ok());
    Result<std::string> err = socket.ReadLine(5000.0);
    ASSERT_TRUE(err.ok()) << err.status();
    EXPECT_EQ(err->rfind("err InvalidArgument", 0), 0u) << *err;
  }

  // The same size with the import prefix rides the larger import cap and
  // reaches the handler intact.
  {
    LineSocket socket;
    ASSERT_TRUE(
        socket.Connect("127.0.0.1", server.tcp_port(), 1000.0).ok());
    std::string import_line = "import blk 4 ";
    import_line += std::string(2 * serve::kMaxRequestLineBytes, 'b');
    ASSERT_TRUE(socket.SendLine(import_line).ok());
    Result<std::string> response = socket.ReadLine(5000.0);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(*response, "ok");
    EXPECT_EQ(seen_request, import_line);
  }
  server.StopTcp();
}

}  // namespace
}  // namespace net
}  // namespace weber

#include "ml/region_model.h"

#include <gtest/gtest.h>

namespace weber {
namespace ml {
namespace {

TEST(RegionModelTest, EqualWidthDeciles) {
  RegionModel m = RegionModel::EqualWidth(10);
  EXPECT_EQ(m.num_regions(), 10);
  EXPECT_EQ(m.RegionOf(0.0), 0);
  EXPECT_EQ(m.RegionOf(0.05), 0);
  EXPECT_EQ(m.RegionOf(0.1), 1);  // boundaries belong to the upper region
  EXPECT_EQ(m.RegionOf(0.95), 9);
  EXPECT_EQ(m.RegionOf(1.0), 9);
  EXPECT_NEAR(m.center(0), 0.05, 1e-12);
  EXPECT_NEAR(m.center(9), 0.95, 1e-12);
}

TEST(RegionModelTest, ValuesOutsideUnitIntervalAreClamped) {
  RegionModel m = RegionModel::EqualWidth(4);
  EXPECT_EQ(m.RegionOf(-0.5), 0);
  EXPECT_EQ(m.RegionOf(1.5), 3);
}

TEST(RegionModelTest, SingleRegionCoversEverything) {
  RegionModel m = RegionModel::EqualWidth(1);
  EXPECT_EQ(m.num_regions(), 1);
  EXPECT_EQ(m.RegionOf(0.0), 0);
  EXPECT_EQ(m.RegionOf(1.0), 0);
}

TEST(RegionModelTest, KMeansRegionsUseMidpointBoundaries) {
  Rng rng(1);
  // Two tight clumps at 0.2 and 0.8 -> boundary at 0.5.
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(0.2);
    values.push_back(0.8);
  }
  auto m = RegionModel::KMeansRegions(values, 2, &rng);
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->num_regions(), 2);
  ASSERT_EQ(m->boundaries().size(), 1u);
  EXPECT_NEAR(m->boundaries()[0], 0.5, 1e-6);
  EXPECT_EQ(m->RegionOf(0.49), 0);
  EXPECT_EQ(m->RegionOf(0.51), 1);
}

TEST(RegionModelTest, KMeansRegionsRejectEmptyInput) {
  Rng rng(2);
  EXPECT_FALSE(RegionModel::KMeansRegions({}, 3, &rng).ok());
}

TEST(RegionAccuracyModelTest, FitRejectsEmptyTraining) {
  auto m = RegionAccuracyModel::Fit(RegionModel::EqualWidth(10), {});
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegionAccuracyModelTest, PerRegionLinkRates) {
  // Region [0, 0.5): 1 of 4 are links; region [0.5, 1]: 3 of 4.
  std::vector<LabeledSimilarity> training = {
      {0.1, false}, {0.2, false}, {0.3, true},  {0.4, false},
      {0.6, true},  {0.7, true},  {0.8, false}, {0.9, true},
  };
  auto m = RegionAccuracyModel::Fit(RegionModel::EqualWidth(2), training);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->region_accuracies()[0], 0.25, 1e-12);
  EXPECT_NEAR(m->region_accuracies()[1], 0.75, 1e-12);
  EXPECT_EQ(m->region_sample_counts()[0], 4);
  EXPECT_EQ(m->region_sample_counts()[1], 4);
  EXPECT_NEAR(m->prior_link_rate(), 0.5, 1e-12);
}

TEST(RegionAccuracyModelTest, DecisionRuleFollowsMajority) {
  std::vector<LabeledSimilarity> training = {
      {0.1, false}, {0.2, false}, {0.8, true}, {0.9, true},
  };
  auto m = RegionAccuracyModel::Fit(RegionModel::EqualWidth(2), training);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Decide(0.3));
  EXPECT_TRUE(m->Decide(0.7));
  EXPECT_DOUBLE_EQ(m->LinkProbability(0.3), 0.0);
  EXPECT_DOUBLE_EQ(m->LinkProbability(0.7), 1.0);
}

TEST(RegionAccuracyModelTest, EmptyRegionsFallBackToPrior) {
  // All training mass in [0, 0.1); the other nine deciles are empty and
  // must report the prior link rate (0.5 here).
  std::vector<LabeledSimilarity> training = {{0.05, true}, {0.06, false}};
  auto m = RegionAccuracyModel::FitEqualWidth(training, 10);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->LinkProbability(0.95), 0.5, 1e-12);
  EXPECT_NEAR(m->LinkProbability(0.05), 0.5, 1e-12);  // the filled one: 1/2
}

TEST(RegionAccuracyModelTest, DecisionAccuracyIsMajorityRate) {
  std::vector<LabeledSimilarity> training = {
      {0.1, false}, {0.1, false}, {0.15, false}, {0.12, true},
  };
  auto m = RegionAccuracyModel::FitEqualWidth(training, 5);
  ASSERT_TRUE(m.ok());
  // Region 0 link rate 0.25 -> decision "no link" with accuracy 0.75.
  EXPECT_FALSE(m->Decide(0.1));
  EXPECT_NEAR(m->DecisionAccuracy(0.1), 0.75, 1e-12);
}

TEST(RegionAccuracyModelTest, NonMonotoneProfileIsRepresentable) {
  // The Figure-1 structure a threshold cannot express: link-rich middle,
  // link-poor top.
  std::vector<LabeledSimilarity> training;
  for (int i = 0; i < 20; ++i) {
    training.push_back({0.15, false});
    training.push_back({0.55, true});
    training.push_back({0.85, false});
  }
  auto m = RegionAccuracyModel::FitEqualWidth(training, 10);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Decide(0.15));
  EXPECT_TRUE(m->Decide(0.55));
  EXPECT_FALSE(m->Decide(0.85));
}

TEST(RegionAccuracyModelTest, KMeansFitConvenience) {
  Rng rng(3);
  std::vector<LabeledSimilarity> training;
  for (int i = 0; i < 30; ++i) {
    training.push_back({0.2, false});
    training.push_back({0.8, true});
  }
  auto m = RegionAccuracyModel::FitKMeans(training, 4, &rng);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Decide(0.2));
  EXPECT_TRUE(m->Decide(0.8));
}

TEST(RegionSchemeTest, Names) {
  EXPECT_EQ(RegionSchemeToString(RegionScheme::kEqualWidth), "equal-width");
  EXPECT_EQ(RegionSchemeToString(RegionScheme::kKMeans), "k-means");
}

}  // namespace
}  // namespace ml
}  // namespace weber

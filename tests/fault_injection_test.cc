#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

namespace weber {
namespace faults {
namespace {

TEST(FaultInjectionTest, DisarmedIsNoOp) {
  ScopedFaultClearance clearance;
  FaultInjector::Instance().DisarmAll();
  EXPECT_FALSE(FaultInjector::Instance().AnyArmed());
  EXPECT_TRUE(MaybeFail("dataset_io.read").ok());
  double v = 0.5;
  EXPECT_FALSE(MaybeCorrupt("similarity.compute", &v));
  EXPECT_EQ(v, 0.5);
}

TEST(FaultInjectionTest, ArmedErrorFiresWithConfiguredCode) {
  ScopedFaultClearance clearance;
  FaultConfig config;
  config.kind = FaultKind::kError;
  config.code = StatusCode::kCorruption;
  FaultInjector::Instance().Arm("p.test", config);
  EXPECT_TRUE(FaultInjector::Instance().AnyArmed());
  Status s = MaybeFail("p.test");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  // Unarmed points stay healthy while another point is armed.
  EXPECT_TRUE(MaybeFail("p.other").ok());
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("p.test"), 1);
}

TEST(FaultInjectionTest, DisarmRestoresPoint) {
  ScopedFaultClearance clearance;
  FaultInjector::Instance().Arm("p.test", {});
  FaultInjector::Instance().Disarm("p.test");
  EXPECT_FALSE(FaultInjector::Instance().AnyArmed());
  EXPECT_TRUE(MaybeFail("p.test").ok());
}

TEST(FaultInjectionTest, MaxTriggersModelsTransientFailures) {
  ScopedFaultClearance clearance;
  FaultConfig config;
  config.max_triggers = 2;
  FaultInjector::Instance().Arm("p.transient", config);
  EXPECT_FALSE(MaybeFail("p.transient").ok());
  EXPECT_FALSE(MaybeFail("p.transient").ok());
  // Third and later attempts succeed: a retry loop recovers.
  EXPECT_TRUE(MaybeFail("p.transient").ok());
  EXPECT_TRUE(MaybeFail("p.transient").ok());
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("p.transient"), 2);
}

TEST(FaultInjectionTest, CorruptionKindsProduceTheirValues) {
  ScopedFaultClearance clearance;
  FaultInjector& fi = FaultInjector::Instance();
  double v = 0.5;

  FaultConfig nan_config;
  nan_config.kind = FaultKind::kNaN;
  fi.Arm("p.val", nan_config);
  ASSERT_TRUE(MaybeCorrupt("p.val", &v));
  EXPECT_TRUE(std::isnan(v));

  v = 0.5;
  FaultConfig pos_config;
  pos_config.kind = FaultKind::kPosInf;
  fi.Arm("p.val", pos_config);
  ASSERT_TRUE(MaybeCorrupt("p.val", &v));
  EXPECT_TRUE(std::isinf(v) && v > 0);

  v = 0.5;
  FaultConfig neg_config;
  neg_config.kind = FaultKind::kNegInf;
  fi.Arm("p.val", neg_config);
  ASSERT_TRUE(MaybeCorrupt("p.val", &v));
  EXPECT_TRUE(std::isinf(v) && v < 0);

  v = 0.5;
  FaultConfig oor_config;
  oor_config.kind = FaultKind::kOutOfRange;
  oor_config.param = 7.25;
  fi.Arm("p.val", oor_config);
  ASSERT_TRUE(MaybeCorrupt("p.val", &v));
  EXPECT_EQ(v, 7.25);

  // Error-kind points never corrupt values.
  v = 0.5;
  fi.Arm("p.val", {});
  EXPECT_FALSE(MaybeCorrupt("p.val", &v));
  EXPECT_EQ(v, 0.5);
}

TEST(FaultInjectionTest, ProbabilisticTriggeringIsDeterministicUnderSeed) {
  ScopedFaultClearance clearance;
  FaultInjector& fi = FaultInjector::Instance();
  FaultConfig config;
  config.probability = 0.3;

  auto trace = [&](uint64_t seed) {
    fi.Seed(seed);
    fi.Arm("p.prob", config);  // re-arm reseeds the stream
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!MaybeFail("p.prob").ok());
    return fired;
  };

  std::vector<bool> a = trace(42);
  std::vector<bool> b = trace(42);
  std::vector<bool> c = trace(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  int hits = 0;
  for (bool f : a) hits += f;
  // ~60 expected; wide tolerance, the point is "some but not all".
  EXPECT_GT(hits, 20);
  EXPECT_LT(hits, 120);
}

TEST(FaultInjectionTest, LatencyFaultSleepsThenSucceeds) {
  ScopedFaultClearance clearance;
  FaultConfig config;
  config.kind = FaultKind::kLatency;
  config.param = 20.0;  // ms
  FaultInjector::Instance().Arm("p.slow", config);
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(MaybeFail("p.slow").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 15);
}

TEST(FaultInjectionTest, JitterFaultSleepsWithinItsBoundThenSucceeds) {
  ScopedFaultClearance clearance;
  ASSERT_TRUE(
      FaultInjector::Instance().ArmFromSpec("p.jitter=jitter:1:10").ok());
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(MaybeFail("p.jitter").ok());  // jitter delays, never fails
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  // Five draws from [0, 10) ms: strictly under 50 ms of injected delay
  // (plus scheduling slop), and the point triggered every time.
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("p.jitter"), 5);
  EXPECT_LT(elapsed, 500);
}

TEST(FaultInjectionTest, JitterDrawDoesNotPerturbOtherKindsStreams) {
  // The uniform draw that scales a jitter sleep must come from an extra
  // RNG step taken only for jitter faults, so the trigger sequence of a
  // probabilistic error fault is bit-identical whether or not jitter
  // support exists. Guard the determinism contract the chaos smoke test
  // (seeded storms) depends on.
  ScopedFaultClearance clearance;
  FaultInjector& fi = FaultInjector::Instance();
  std::vector<bool> first;
  ASSERT_TRUE(fi.ArmFromSpec("p.prob=error:0.3").ok());
  for (int i = 0; i < 100; ++i) first.push_back(!MaybeFail("p.prob").ok());
  fi.DisarmAll();
  ASSERT_TRUE(fi.ArmFromSpec("p.prob=error:0.3").ok());
  std::vector<bool> second;
  for (int i = 0; i < 100; ++i) second.push_back(!MaybeFail("p.prob").ok());
  EXPECT_EQ(first, second);
}

TEST(FaultInjectionTest, ArmFromSpecParsesEveryKind) {
  ScopedFaultClearance clearance;
  FaultInjector& fi = FaultInjector::Instance();
  ASSERT_TRUE(fi.ArmFromSpec("a=error;b=ioerror:0.5;c=corruption;d=nan:0.1;"
                             "e=posinf;f=neginf;g=oor:1:3.5;h=latency:1:5;"
                             "i=error:1:0:2")
                  .ok());
  EXPECT_EQ(fi.ArmedPoints().size(), 9u);
  EXPECT_EQ(MaybeFail("a").code(), StatusCode::kIOError);
  EXPECT_EQ(MaybeFail("c").code(), StatusCode::kCorruption);
  double v = 0.0;
  ASSERT_TRUE(MaybeCorrupt("g", &v));
  EXPECT_EQ(v, 3.5);
  // i: max_triggers=2.
  EXPECT_FALSE(MaybeFail("i").ok());
  EXPECT_FALSE(MaybeFail("i").ok());
  EXPECT_TRUE(MaybeFail("i").ok());
}

TEST(FaultInjectionTest, ArmFromSpecRejectsMalformedSpecs) {
  ScopedFaultClearance clearance;
  FaultInjector& fi = FaultInjector::Instance();
  for (const char* spec :
       {"nokind", "p=", "p=martian", "p=nan:2.0", "p=nan:-0.1",
        "p=error:1:0:-3", "p=error:1:0:2:extra", "=error"}) {
    EXPECT_FALSE(fi.ArmFromSpec(spec).ok()) << spec;
  }
  // Empty spec arms nothing but is not an error (flag default).
  EXPECT_TRUE(fi.ArmFromSpec("").ok());
}

}  // namespace
}  // namespace faults
}  // namespace weber

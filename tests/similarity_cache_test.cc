#include "serve/similarity_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace weber {
namespace serve {
namespace {

CacheKey Key(uint32_t shard, uint32_t function, uint32_t a, uint32_t b) {
  CacheKey key;
  key.shard = shard;
  key.function = function;
  key.a = a;
  key.b = b;
  return key;
}

TEST(SimilarityCacheTest, MissThenHit) {
  SimilarityCache cache;
  double value = -1.0;
  EXPECT_FALSE(cache.Lookup(Key(0, 0, 1, 2), &value));
  cache.Insert(Key(0, 0, 1, 2), 0.75);
  ASSERT_TRUE(cache.Lookup(Key(0, 0, 1, 2), &value));
  EXPECT_DOUBLE_EQ(value, 0.75);

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(SimilarityCacheTest, HitRateIsZeroWithNoLookups) {
  // Regression: the 0/0 hit rate must come out as a finite 0.0, never NaN,
  // so the stats JSON stays parseable for a fresh cache.
  SimilarityCache cache;
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.0);
}

TEST(SimilarityCacheTest, DistinctKeysDoNotCollide) {
  SimilarityCache cache;
  cache.Insert(Key(0, 0, 1, 2), 0.1);
  cache.Insert(Key(0, 1, 1, 2), 0.2);  // different function
  cache.Insert(Key(1, 0, 1, 2), 0.3);  // different shard
  cache.Insert(Key(0, 0, 1, 3), 0.4);  // different pair
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(Key(0, 0, 1, 2), &value));
  EXPECT_DOUBLE_EQ(value, 0.1);
  ASSERT_TRUE(cache.Lookup(Key(0, 1, 1, 2), &value));
  EXPECT_DOUBLE_EQ(value, 0.2);
  ASSERT_TRUE(cache.Lookup(Key(1, 0, 1, 2), &value));
  EXPECT_DOUBLE_EQ(value, 0.3);
  ASSERT_TRUE(cache.Lookup(Key(0, 0, 1, 3), &value));
  EXPECT_DOUBLE_EQ(value, 0.4);
}

TEST(SimilarityCacheTest, InsertRefreshesValue) {
  SimilarityCache cache;
  cache.Insert(Key(0, 0, 1, 2), 0.1);
  cache.Insert(Key(0, 0, 1, 2), 0.9);
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(Key(0, 0, 1, 2), &value));
  EXPECT_DOUBLE_EQ(value, 0.9);
  EXPECT_EQ(cache.Stats().entries, 1);
}

TEST(SimilarityCacheTest, EvictsLeastRecentlyUsedWithinStripe) {
  SimilarityCache::Options options;
  options.capacity = 4;
  options.num_shards = 1;  // one stripe -> global LRU order
  SimilarityCache cache(options);
  for (uint32_t i = 0; i < 4; ++i) cache.Insert(Key(0, 0, 0, i), i);
  double value = 0.0;
  // Touch key 0 so key 1 becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(Key(0, 0, 0, 0), &value));
  cache.Insert(Key(0, 0, 0, 9), 9.0);
  EXPECT_FALSE(cache.Lookup(Key(0, 0, 0, 1), &value));
  ASSERT_TRUE(cache.Lookup(Key(0, 0, 0, 0), &value));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 4);
}

TEST(SimilarityCacheTest, CapacityBoundsTotalEntries) {
  SimilarityCache::Options options;
  options.capacity = 64;
  options.num_shards = 4;
  SimilarityCache cache(options);
  for (uint32_t i = 0; i < 1000; ++i) cache.Insert(Key(0, 0, i, i + 1), 0.5);
  EXPECT_LE(cache.Stats().entries, 64);
  EXPECT_GT(cache.Stats().evictions, 0);
}

TEST(SimilarityCacheTest, ClearDropsEntriesKeepsCounters) {
  SimilarityCache cache;
  cache.Insert(Key(0, 0, 1, 2), 0.5);
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(Key(0, 0, 1, 2), &value));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(Key(0, 0, 1, 2), &value));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(SimilarityCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  SimilarityCache::Options options;
  options.capacity = 512;
  options.num_shards = 8;
  SimilarityCache cache(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (uint32_t i = 0; i < 2000; ++i) {
        const CacheKey key = Key(0, static_cast<uint32_t>(t % 2), i % 97,
                                 (i % 97) + 1 + i % 3);
        const double expected = static_cast<double>(key.a) + key.b;
        double value = 0.0;
        if (cache.Lookup(key, &value)) {
          EXPECT_DOUBLE_EQ(value, expected);
        } else {
          cache.Insert(key, expected);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 4 * 2000);
  EXPECT_LE(stats.entries, 512);
}

}  // namespace
}  // namespace serve
}  // namespace weber

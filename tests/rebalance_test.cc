// Fleet self-healing tests: the rebalance planner end-to-end against real
// resolution-service backends (shrink, grow, status/abort, refusals),
// drain/decommission semantics, route-override persistence across router
// restarts (CRC-checked state file, corruption starts clean), hard-loss
// replica promotion, and admin-verb serialization under concurrency (the
// TSan suite ConcurrentAdminTest).

#include "router/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/crc32c.h"
#include "common/file_util.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "serve/protocol.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

namespace weber {
namespace router {
namespace {

/// A real weber_serve backend: a ResolutionService behind a LineServer on
/// an ephemeral TCP port, so export/import/stats all answer for real.
class ServiceBackend {
 public:
  explicit ServiceBackend(const corpus::SyntheticData& data) {
    auto service =
        serve::ResolutionService::Create(data.dataset, &data.gazetteer, {});
    EXPECT_TRUE(service.ok()) << service.status();
    service_ = std::move(service).ValueOrDie();
    server_ = std::make_unique<serve::LineServer>(service_.get());
    EXPECT_TRUE(server_->StartTcp(0).ok());
    port_ = server_->tcp_port();
  }

  void Kill() { server_->StopTcp(); }

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port_);
  }
  serve::ResolutionService* service() { return service_.get(); }

 private:
  int port_ = 0;
  std::unique_ptr<serve::ResolutionService> service_;
  std::unique_ptr<serve::LineServer> server_;
};

RouterOptions FastOptions() {
  RouterOptions options;
  options.dial_timeout_ms = 200.0;
  options.call_timeout_ms = 2000.0;
  options.probe_timeout_ms = 200.0;
  options.max_retries = 1;
  options.retry_backoff_ms = 1.0;
  options.health.down_probe_interval_ms = 0.0;
  options.breaker.failure_threshold = 100;  // out of the way by default
  options.migrate_pause_ms = 2000.0;
  return options;
}

class RebalanceServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      backends_.push_back(std::make_unique<ServiceBackend>(*data_));
      endpoints_.push_back(backends_.back()->endpoint());
    }
  }

  static std::vector<std::string> Blocks() {
    std::vector<std::string> blocks;
    for (const corpus::Block& block : data_->dataset.blocks) {
      blocks.push_back(block.query);
    }
    return blocks;
  }

  /// One request line through the router, asserting nothing.
  static std::string Call(Router* router, const std::string& line) {
    bool quit = false;
    return router->HandleLine(line, &quit);
  }

  /// Seeds a few documents into every block through the router, so shards
  /// are non-empty and dumps are comparable.
  static void SeedWrites(Router* router, int docs_per_block) {
    for (const std::string& block : Blocks()) {
      for (int d = 0; d < docs_per_block; ++d) {
        const std::string response =
            Call(router, "assign " + block + " " + std::to_string(d));
        ASSERT_EQ(response.rfind("ok", 0), 0u) << response;
      }
    }
  }

  static std::vector<std::string> Dumps(Router* router) {
    std::vector<std::string> dumps;
    for (const std::string& block : Blocks()) {
      dumps.push_back(Call(router, "dump " + block));
    }
    return dumps;
  }

  size_t IndexOf(const std::string& endpoint) const {
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      if (endpoints_[i] == endpoint) return i;
    }
    return endpoints_.size();
  }

  static corpus::SyntheticData* data_;
  std::vector<std::unique_ptr<ServiceBackend>> backends_;
  std::vector<std::string> endpoints_;
};

corpus::SyntheticData* RebalanceServiceTest::data_ = nullptr;

TEST_F(RebalanceServiceTest, ShrinkMovesEveryBlockOffTheRemovedBackend) {
  Router router(endpoints_, FastOptions());
  SeedWrites(&router, 4);
  const std::vector<std::string> before = Dumps(&router);

  // Propose a fleet without backend 2: every block it owned must move.
  const std::string response =
      Call(&router, "rebalance " + endpoints_[0] + " " + endpoints_[1]);
  ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
  EXPECT_NE(response.find("\"failed\":0"), std::string::npos) << response;
  EXPECT_NE(response.find("\"aborted\":false"), std::string::npos) << response;

  for (const std::string& block : Blocks()) {
    EXPECT_NE(router.EffectiveOrder(block)[0], 2u)
        << block << " still routes to the removed backend";
  }
  // Moved or stayed, every dump still answers identically — zero loss.
  EXPECT_EQ(Dumps(&router), before);
}

TEST_F(RebalanceServiceTest, GrowRestoresRendezvousAndClearsOverrides) {
  Router router(endpoints_, FastOptions());
  SeedWrites(&router, 3);
  ASSERT_EQ(Call(&router,
                 "rebalance " + endpoints_[0] + " " + endpoints_[1])
                .rfind("ok ", 0),
            0u);
  const std::vector<std::string> before = Dumps(&router);

  // Growing back to the full fleet puts every block on its pure rendezvous
  // owner, which erases (not merely rewrites) the override table.
  const std::string response =
      Call(&router, "rebalance " + endpoints_[0] + " " + endpoints_[1] +
                        " " + endpoints_[2]);
  ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
  EXPECT_TRUE(router.RouteOverrides().empty())
      << "full-fleet rebalance should leave pure rendezvous routing";
  for (const std::string& block : Blocks()) {
    EXPECT_EQ(router.EffectiveOrder(block)[0],
              Router::RouteOrder(block, endpoints_.size())[0]);
  }
  EXPECT_EQ(Dumps(&router), before);
}

TEST_F(RebalanceServiceTest, StatusAndAbortSurface) {
  Router router(endpoints_, FastOptions());
  // Before any plan: a status you can poll without tripping anything.
  const std::string idle = Call(&router, "rebalance status");
  ASSERT_EQ(idle.rfind("ok ", 0), 0u) << idle;
  EXPECT_NE(idle.find("\"started\":false"), std::string::npos) << idle;
  // Abort with no plan running is an idempotent no-op...
  EXPECT_EQ(Call(&router, "rebalance abort"), "ok");
  // ...but the armed flag must not poison the NEXT plan.
  SeedWrites(&router, 2);
  const std::string response =
      Call(&router, "rebalance " + endpoints_[0] + " " + endpoints_[1]);
  ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
  EXPECT_NE(response.find("\"aborted\":false"), std::string::npos) << response;
  const std::string after = Call(&router, "rebalance status");
  EXPECT_NE(after.find("\"started\":true"), std::string::npos) << after;
  EXPECT_NE(after.find("\"active\":false"), std::string::npos) << after;
  EXPECT_NE(after.find("\"kind\":\"rebalance\""), std::string::npos) << after;
  EXPECT_NE(after.find("\"failed\":0"), std::string::npos) << after;
}

TEST_F(RebalanceServiceTest, UnknownEndpointsAreRefused) {
  Router router(endpoints_, FastOptions());
  const std::string response =
      Call(&router, "rebalance " + endpoints_[0] + " 127.0.0.1:1");
  EXPECT_EQ(response.rfind("err NotFound", 0), 0u) << response;
  // A refused plan never starts, so status still reports none.
  EXPECT_NE(Call(&router, "rebalance status").find("\"started\":false"),
            std::string::npos);
}

TEST_F(RebalanceServiceTest, DrainEmptiesABackendAndRefusesItsWrites) {
  Router router(endpoints_, FastOptions());
  SeedWrites(&router, 3);
  const std::vector<std::string> before = Dumps(&router);

  const std::string response = Call(&router, "drain " + endpoints_[2]);
  ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
  EXPECT_EQ(router.DrainedEndpoints(),
            std::vector<std::string>{endpoints_[2]});
  for (const std::string& block : Blocks()) {
    EXPECT_NE(router.EffectiveOrder(block)[0], 2u) << block;
  }
  EXPECT_EQ(Dumps(&router), before);

  // Writes routed at a drained backend are durably re-homed onto the
  // first non-drained backend instead of shed forever — OVERLOADED's
  // retry hint would promise progress a permanent drain can never make.
  const std::string block = Blocks()[0];
  router.SetRouteOverride(block, 2);
  const std::string rerouted = Call(&router, "assign " + block + " 9");
  EXPECT_EQ(rerouted.rfind("ok", 0), 0u) << rerouted;
  EXPECT_NE(router.EffectiveOrder(block)[0], 2u)
      << "the write should have flipped the block off the drained backend";
  router.SetRouteOverride(block, endpoints_.size());  // clear

  // Admin verbs refuse to aim at a drained backend.
  EXPECT_EQ(Call(&router, "migrate " + block + " " + endpoints_[2])
                .rfind("err FailedPrecondition", 0),
            0u);
  EXPECT_EQ(Call(&router, "rebalance " + endpoints_[0] + " " + endpoints_[2])
                .rfind("err FailedPrecondition", 0),
            0u);
  EXPECT_EQ(Call(&router, "drain " + endpoints_[2])
                .rfind("err FailedPrecondition", 0),
            0u)
      << "double drain";
  // Stats surface the drained endpoint.
  EXPECT_NE(Call(&router, "stats").find("\"drained\":[\"" + endpoints_[2] +
                                        "\"]"),
            std::string::npos);
}

TEST_F(RebalanceServiceTest, DrainingTheWholeFleetIsRefused) {
  Router router(endpoints_, FastOptions());
  ASSERT_EQ(Call(&router, "drain " + endpoints_[0]).rfind("ok ", 0), 0u);
  ASSERT_EQ(Call(&router, "drain " + endpoints_[1]).rfind("ok ", 0), 0u);
  EXPECT_EQ(Call(&router, "drain " + endpoints_[2])
                .rfind("err FailedPrecondition", 0),
            0u)
      << "the last backend has nowhere to send its blocks";
}

TEST_F(RebalanceServiceTest, DrainRefusesAnUnreachableVictim) {
  // A dead victim contributes nothing to the plan's block universe, so a
  // drain "completing" against it would mark a backend that still holds
  // the only copy of its blocks as safe to decommission. It must refuse.
  Router router(endpoints_, FastOptions());
  SeedWrites(&router, 2);
  backends_[2]->Kill();
  const std::string response = Call(&router, "drain " + endpoints_[2]);
  EXPECT_EQ(response.rfind("err Unavailable", 0), 0u) << response;
  EXPECT_TRUE(router.DrainedEndpoints().empty())
      << "an unverifiable drain must not set the drained mark";
}

TEST_F(RebalanceServiceTest, WritesRerouteOffADrainedOwnerDurably) {
  const std::string state_file =
      ::testing::TempDir() + "/weber_rebalance_reroute";
  RemoveFileIfExists(state_file);
  RouterOptions options = FastOptions();
  options.state_file = state_file;
  Router router(endpoints_, options);
  SeedWrites(&router, 2);
  // Drain the rendezvous owner of block 0, then force the block back onto
  // it (a stale operator override): the next write must re-home the block
  // durably instead of shedding forever.
  const std::string block = Blocks()[0];
  const size_t victim = Router::RouteOrder(block, endpoints_.size())[0];
  ASSERT_EQ(Call(&router, "drain " + endpoints_[victim]).rfind("ok ", 0),
            0u);
  router.SetRouteOverride(block, victim);

  const std::string response = Call(&router, "assign " + block + " 9");
  EXPECT_EQ(response.rfind("ok", 0), 0u) << response;
  EXPECT_NE(router.EffectiveOrder(block)[0], victim);
  // The victim is the block's pure rendezvous owner, so the reroute must
  // be a real override entry (not an erase back to rendezvous).
  EXPECT_EQ(router.RouteOverrides().count(block), 1u)
      << "the reroute should be an override, not a per-request decision";

  // Durable: a restarted router routes the block off the victim too.
  Router restarted(endpoints_, options);
  EXPECT_NE(restarted.EffectiveOrder(block)[0], victim);
  RemoveFileIfExists(state_file);
}

TEST_F(RebalanceServiceTest, WritesWithEveryBackendDrainedAreNonRetryable) {
  // Unreachable through the drain verb (the last drain is refused), but a
  // restored state file can say so; the answer must be a non-retryable
  // error, not an OVERLOADED hint a client would honor forever.
  const std::string state_file =
      ::testing::TempDir() + "/weber_rebalance_all_drained";
  std::string body = "weber-router-state v1\n";
  for (const std::string& endpoint : endpoints_) {
    body += "drained " + endpoint + "\n";
  }
  body += "crc " + std::to_string(Crc32c(body.data(), body.size())) + "\n";
  ASSERT_TRUE(WriteFileAtomic(state_file, body, false).ok());
  RouterOptions options = FastOptions();
  options.state_file = state_file;
  Router router(endpoints_, options);
  ASSERT_EQ(router.DrainedEndpoints().size(), endpoints_.size());
  const std::string response = Call(&router, "assign " + Blocks()[0] + " 1");
  EXPECT_EQ(response.rfind("err FailedPrecondition", 0), 0u) << response;
  RemoveFileIfExists(state_file);
}

TEST_F(RebalanceServiceTest, StateFileRoundTripsOverridesAndDrains) {
  const std::string state_file =
      ::testing::TempDir() + "/weber_rebalance_state_roundtrip";
  RemoveFileIfExists(state_file);
  RouterOptions options = FastOptions();
  options.state_file = state_file;

  // Drain the backend that owns block 0, so the drain provably installs
  // at least one override (a backend owning nothing would persist none).
  const std::string victim =
      endpoints_[Router::RouteOrder(Blocks()[0], endpoints_.size())[0]];
  std::unordered_map<std::string, size_t> saved_overrides;
  {
    Router router(endpoints_, options);
    SeedWrites(&router, 2);
    ASSERT_EQ(Call(&router, "drain " + victim).rfind("ok ", 0), 0u);
    saved_overrides = router.RouteOverrides();
    ASSERT_FALSE(saved_overrides.empty())
        << "the drain should have installed at least one override";
  }

  // A fresh router (the restart) replays the file: same overrides, same
  // drained set, and the stats surface says so.
  Router restarted(endpoints_, options);
  EXPECT_EQ(restarted.RouteOverrides(), saved_overrides);
  EXPECT_EQ(restarted.DrainedEndpoints(), std::vector<std::string>{victim});
  const std::string stats = Call(&restarted, "stats");
  EXPECT_NE(stats.find("\"load_ok\":true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"restored_drained\":1"), std::string::npos) << stats;
  EXPECT_EQ(stats.find("\"restored_overrides\":0"), std::string::npos)
      << stats;
  RemoveFileIfExists(state_file);
}

TEST_F(RebalanceServiceTest, CorruptStateFileStartsCleanAndIsSurfaced) {
  const std::string state_file =
      ::testing::TempDir() + "/weber_rebalance_state_corrupt";
  RouterOptions options = FastOptions();
  options.state_file = state_file;
  {
    Router router(endpoints_, options);
    router.SetRouteOverride(Blocks()[0], 1);
  }
  Result<std::string> contents = ReadFileToString(state_file);
  ASSERT_TRUE(contents.ok()) << contents.status();
  std::string corrupted = contents.ValueOrDie();
  ASSERT_FALSE(corrupted.empty());
  corrupted[corrupted.size() / 2] ^= 0x20;  // flip a bit under the CRC
  ASSERT_TRUE(WriteFileAtomic(state_file, corrupted, false).ok());

  Router router(endpoints_, options);
  EXPECT_TRUE(router.RouteOverrides().empty())
      << "half-trusted state is worse than none";
  const std::string stats = Call(&router, "stats");
  EXPECT_NE(stats.find("\"load_ok\":false"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"restored_overrides\":0"), std::string::npos)
      << stats;
  // The router still works (and the next flip rewrites a good file).
  router.SetRouteOverride(Blocks()[0], 1);
  Router recovered(endpoints_, options);
  EXPECT_EQ(recovered.RouteOverrides().size(), 1u);
  RemoveFileIfExists(state_file);
}

TEST_F(RebalanceServiceTest, StateEntriesForUnknownEndpointsAreSkipped) {
  const std::string state_file =
      ::testing::TempDir() + "/weber_rebalance_state_skip";
  RouterOptions options = FastOptions();
  options.state_file = state_file;
  {
    Router router(endpoints_, options);
    router.SetRouteOverride(Blocks()[0], 1);
  }
  // Restart with a fleet that no longer contains backend 1: the file's
  // override names an unknown endpoint and must be skipped, not fatal.
  std::vector<std::string> shrunk = {endpoints_[0], endpoints_[2]};
  Router router(shrunk, options);
  EXPECT_TRUE(router.RouteOverrides().empty());
  const std::string stats = Call(&router, "stats");
  EXPECT_NE(stats.find("\"load_ok\":true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"skipped\":1"), std::string::npos) << stats;
  RemoveFileIfExists(state_file);
}

TEST_F(RebalanceServiceTest, TrailingBytesAfterTheCrcTrailerAreCorruption) {
  // Bytes appended after the crc line escape the checksum entirely;
  // accepting them would hollow out the corruption detection, so the
  // whole file is discarded like any other corruption.
  const std::string state_file =
      ::testing::TempDir() + "/weber_rebalance_state_trailing";
  RouterOptions options = FastOptions();
  options.state_file = state_file;
  {
    Router router(endpoints_, options);
    router.SetRouteOverride(Blocks()[0], 1);
  }
  Result<std::string> contents = ReadFileToString(state_file);
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_TRUE(WriteFileAtomic(
                  state_file,
                  contents.ValueOrDie() + "override evil " + endpoints_[2] +
                      "\n",
                  false)
                  .ok());
  Router router(endpoints_, options);
  EXPECT_TRUE(router.RouteOverrides().empty());
  const std::string stats = Call(&router, "stats");
  EXPECT_NE(stats.find("\"load_ok\":false"), std::string::npos) << stats;
  EXPECT_NE(stats.find("trailing bytes"), std::string::npos) << stats;
  RemoveFileIfExists(state_file);
}

// ---------------------------------------------------------------------------
// Hard-loss replica promotion
// ---------------------------------------------------------------------------

TEST_F(RebalanceServiceTest, PromotionFlipsOwnershipOnHardLoss) {
  RouterOptions options = FastOptions();
  options.health.suspect_after = 1;
  options.health.down_after = 1;
  options.promote_after_ms = 1.0;
  options.replicas = 2;
  Router router(endpoints_, options);
  SeedWrites(&router, 3);

  const std::string block = Blocks()[0];
  const size_t owner = router.EffectiveOrder(block)[0];
  backends_[owner]->Kill();

  // One probe cycle marks the dead backend down; after the (1ms) hard-loss
  // deadline the next cycle promotes its blocks to the first routable
  // standby. Bounded wait: promotion must land within a few cycles.
  bool promoted = false;
  for (int i = 0; i < 50 && !promoted; ++i) {
    router.ProbeOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    promoted = router.EffectiveOrder(block)[0] != owner;
  }
  ASSERT_TRUE(promoted) << "hard loss never promoted the standby";
  const size_t standby = router.EffectiveOrder(block)[0];
  EXPECT_NE(standby, owner);

  // The promoted standby serves reads and writes for the block.
  EXPECT_EQ(Call(&router, "assign " + block + " 7").rfind("ok", 0), 0u);
  EXPECT_EQ(Call(&router, "query " + block + " 0").rfind("ok", 0), 0u);
  const std::string stats = Call(&router, "stats");
  EXPECT_NE(stats.find("\"promotions\":"), std::string::npos) << stats;
  EXPECT_EQ(stats.find("\"promotions\":0"), std::string::npos)
      << "at least one block must have been promoted: " << stats;
}

TEST_F(RebalanceServiceTest, PromotionCountsPossiblyLostWritesHonestly) {
  // replicas=1: nothing is ever confirmed replicated, so every acked write
  // to the lost owner's blocks is possibly lost — the counter must say so.
  RouterOptions options = FastOptions();
  options.health.suspect_after = 1;
  options.health.down_after = 1;
  options.promote_after_ms = 1.0;
  Router router(endpoints_, options);

  const std::string block = Blocks()[0];
  const size_t owner = router.EffectiveOrder(block)[0];
  for (int d = 0; d < 5; ++d) {
    ASSERT_EQ(Call(&router, "assign " + block + " " + std::to_string(d))
                  .rfind("ok", 0),
              0u);
  }
  backends_[owner]->Kill();
  for (int i = 0; i < 50; ++i) {
    router.ProbeOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (router.EffectiveOrder(block)[0] != owner) break;
  }
  ASSERT_NE(router.EffectiveOrder(block)[0], owner);
  const std::string stats = Call(&router, "stats");
  EXPECT_NE(stats.find("\"possibly_lost_writes\":5"), std::string::npos)
      << stats;
}

TEST_F(RebalanceServiceTest, PromotionCoversIdleBlocksSeededByDeepProbes) {
  // A freshly restarted router has seen no traffic; its promotion universe
  // must come from the deep-probe shard scrape, or idle blocks would never
  // fail over when their owner hard-fails.
  RouterOptions options = FastOptions();
  options.health.suspect_after = 1;
  options.health.down_after = 1;
  options.promote_after_ms = 1.0;
  options.deep_probe_every = 1;  // every cycle is deep
  Router router(endpoints_, options);

  const std::string block = Blocks()[0];
  const size_t owner = router.EffectiveOrder(block)[0];
  router.ProbeOnce();  // scrapes every backend's shards into the universe
  backends_[owner]->Kill();
  bool promoted = false;
  for (int i = 0; i < 50 && !promoted; ++i) {
    router.ProbeOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    promoted = router.EffectiveOrder(block)[0] != owner;
  }
  ASSERT_TRUE(promoted)
      << "an idle (never-routed) block was not promoted on hard loss";
}

TEST_F(RebalanceServiceTest, PromotionCoversBlocksRestoredFromTheStateFile) {
  // The state file's override keys seed the universe too, so a router
  // restarted just before a hard loss promotes them without needing
  // traffic or a deep probe first.
  const std::string state_file =
      ::testing::TempDir() + "/weber_rebalance_promo_seed";
  RemoveFileIfExists(state_file);
  RouterOptions options = FastOptions();
  options.state_file = state_file;
  options.health.suspect_after = 1;
  options.health.down_after = 1;
  options.promote_after_ms = 1.0;
  options.deep_probe_every = 0;  // ping-only: isolate the state-file seed

  const std::string block = Blocks()[0];
  const size_t pure = Router::RouteOrder(block, endpoints_.size())[0];
  const size_t target = (pure + 1) % endpoints_.size();
  {
    Router router(endpoints_, options);
    router.SetRouteOverride(block, target);
  }
  Router restarted(endpoints_, options);
  ASSERT_EQ(restarted.EffectiveOrder(block)[0], target);
  backends_[target]->Kill();
  bool promoted = false;
  for (int i = 0; i < 50 && !promoted; ++i) {
    restarted.ProbeOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    promoted = restarted.EffectiveOrder(block)[0] != target;
  }
  ASSERT_TRUE(promoted)
      << "a block known only from the state file was not promoted";
  RemoveFileIfExists(state_file);
}

// ---------------------------------------------------------------------------
// Admin-verb serialization under concurrency (runs under TSan via
// scripts/check.sh --tsan; the filter matches ConcurrentAdminTest).
// ---------------------------------------------------------------------------

class ConcurrentAdminTest : public RebalanceServiceTest {};

TEST_F(ConcurrentAdminTest, AdminVerbsSerializeOrRefuseCleanly) {
  Router router(endpoints_, FastOptions());
  SeedWrites(&router, 2);
  const std::vector<std::string> before = Dumps(&router);
  const std::string block = Blocks()[0];

  // Three admin verbs race: whichever wins runs; the others either run
  // after it or are refused with "router busy" — never interleaved, never
  // a torn override table.
  std::vector<std::string> verbs = {
      "rebalance " + endpoints_[0] + " " + endpoints_[1],
      "migrate " + block + " " + endpoints_[2],
      "rebalance " + endpoints_[0] + " " + endpoints_[1] + " " +
          endpoints_[2],
  };
  std::vector<std::string> responses(verbs.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < verbs.size(); ++i) {
    threads.emplace_back([&router, &verbs, &responses, i] {
      bool quit = false;
      responses[i] = router.HandleLine(verbs[i], &quit);
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t i = 0; i < responses.size(); ++i) {
    const bool ok = responses[i].rfind("ok", 0) == 0;
    const bool refused = responses[i].rfind("err ", 0) == 0;
    EXPECT_TRUE(ok || refused) << verbs[i] << " -> " << responses[i];
    if (refused) {
      // The only legitimate refusals: the serialization one ("router
      // busy"), or a migrate that lost the race and found its target
      // already the owner. Anything else means the verbs interleaved.
      EXPECT_TRUE(responses[i].find("busy") != std::string::npos ||
                  responses[i].find("already owns") != std::string::npos)
          << verbs[i] << " -> " << responses[i];
    }
  }
  // Whatever interleaving happened, the table is consistent: every
  // override names a real backend and every block routes somewhere that
  // still answers its dump identically.
  for (const auto& [name, target] : router.RouteOverrides()) {
    EXPECT_LT(target, endpoints_.size()) << name;
  }
  EXPECT_EQ(Dumps(&router), before);
  // And the fleet converges: a final full rebalance always succeeds.
  EXPECT_EQ(Call(&router, "rebalance " + endpoints_[0] + " " +
                              endpoints_[1] + " " + endpoints_[2])
                .rfind("ok ", 0),
            0u);
}

}  // namespace
}  // namespace router
}  // namespace weber

# `match` verb smoke over the real weber_serve binary: a scripted stdio
# session that assigns, compacts, matches, and checks the stats gating
# (no match counters before the verb is used, counters after). Invoked by
# ctest with -DWEBER_BIN=<weber> -DSERVE_BIN=<weber_serve>
# -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

# Session A never uses the verb: its stats line must not mention matches
# (byte-compatibility with match-free deployments).
file(WRITE "${WORK_DIR}/no_match.txt" "\
assign cohen 0
compact cohen
stats
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
  INPUT_FILE ${WORK_DIR}/no_match.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "match-free session failed (${rc}):\n${out}\n${err}")
endif()
if(out MATCHES "match")
  message(FATAL_ERROR "match-free stats mention the match subsystem:\n${out}")
endif()

# Session B: match against the compacted snapshot, then with a deadline,
# then malformed requests that must err without killing the server.
file(WRITE "${WORK_DIR}/match.txt" "\
assign cohen 0
assign cohen 1
assign cohen 2
compact cohen
match cohen 0 1 2
match cohen 2 deadline 10000
match cohen
match cohen 99999
match nonesuch 0
stats
quit
")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt
  INPUT_FILE ${WORK_DIR}/match.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "match session failed (${rc}):\n${out}\n${err}")
endif()

string(REPLACE "\n" ";" lines "${out}")
list(GET lines 4 l_match)
list(GET lines 5 l_deadline)
list(GET lines 6 l_noargs)
list(GET lines 7 l_range)
list(GET lines 8 l_block)
list(GET lines 9 l_stats)
if(NOT l_match MATCHES "^ok 3 0:-?[0-9]+ 1:-?[0-9]+ 2:-?[0-9]+$")
  message(FATAL_ERROR "match response unexpected: ${l_match}")
endif()
if(NOT l_deadline MATCHES "^ok 1 2:-?[0-9]+$")
  message(FATAL_ERROR "deadline match response unexpected: ${l_deadline}")
endif()
if(NOT l_noargs MATCHES "^err InvalidArgument")
  message(FATAL_ERROR "argless match should err InvalidArgument: ${l_noargs}")
endif()
if(NOT l_range MATCHES "^err InvalidArgument")
  message(FATAL_ERROR "out-of-range match should err: ${l_range}")
endif()
if(NOT l_block MATCHES "^err NotFound")
  message(FATAL_ERROR "unknown-block match should err NotFound: ${l_block}")
endif()
if(NOT l_stats MATCHES "\"matches\":2")
  message(FATAL_ERROR "stats should count 2 matches: ${l_stats}")
endif()
if(NOT l_stats MATCHES "\"match\"")
  message(FATAL_ERROR "stats lacks the match endpoint section: ${l_stats}")
endif()

message(STATUS "weber_serve match smoke test passed")

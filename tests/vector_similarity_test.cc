#include "text/vector_similarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace weber {
namespace text {
namespace {

SparseVector V(std::vector<SparseVector::Entry> e) {
  return SparseVector::FromPairs(std::move(e));
}

TEST(CosineTest, IdenticalVectorsScoreOne) {
  SparseVector a = V({{0, 1.0}, {1, 2.0}});
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalVectorsScoreZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity(V({{0, 1.0}}), V({{1, 1.0}})), 0.0);
}

TEST(CosineTest, ScaleInvariant) {
  SparseVector a = V({{0, 1.0}, {1, 2.0}});
  SparseVector b = V({{0, 0.5}, {1, 3.0}});
  SparseVector b_scaled = b;
  b_scaled.Scale(7.0);
  EXPECT_NEAR(CosineSimilarity(a, b), CosineSimilarity(a, b_scaled), 1e-12);
}

TEST(CosineTest, KnownValue) {
  // cos([1,1],[1,0]) = 1/sqrt(2)
  EXPECT_NEAR(CosineSimilarity(V({{0, 1.0}, {1, 1.0}}), V({{0, 1.0}})),
              1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CosineTest, EmptyVectorScoresZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity(SparseVector(), V({{0, 1.0}})), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(SparseVector(), SparseVector()), 0.0);
}

TEST(PearsonTest, IdenticalNonConstantVectorsScoreOne) {
  SparseVector a = V({{0, 1.0}, {1, 2.0}});
  EXPECT_NEAR(PearsonSimilarity(a, a, 10), 1.0, 1e-9);
}

TEST(PearsonTest, PerfectlyAntiCorrelatedScoreZero) {
  // Over dimension 2: a=[1,0], b=[0,1] -> r = -1 -> rescaled 0.
  EXPECT_NEAR(PearsonSimilarity(V({{0, 1.0}}), V({{1, 1.0}}), 2), 0.0, 1e-9);
}

TEST(PearsonTest, DegenerateConstantVectorScoresHalf) {
  // A vector that is constant across the dimension has zero variance.
  SparseVector constant = V({{0, 1.0}, {1, 1.0}});
  SparseVector other = V({{0, 2.0}});
  EXPECT_DOUBLE_EQ(PearsonSimilarity(constant, other, 2), 0.5);
}

TEST(PearsonTest, EmptyVectorsScoreHalf) {
  EXPECT_DOUBLE_EQ(PearsonSimilarity(SparseVector(), SparseVector(), 100),
                   0.5);
}

TEST(PearsonTest, MatchesDenseReferenceComputation) {
  // a = [1, 2, 0, 0], b = [2, 1, 1, 0] over dimension 4.
  SparseVector a = V({{0, 1.0}, {1, 2.0}});
  SparseVector b = V({{0, 2.0}, {1, 1.0}, {2, 1.0}});
  const double ma = 3.0 / 4, mb = 4.0 / 4;
  double cov = (1 - ma) * (2 - mb) + (2 - ma) * (1 - mb) +
               (0 - ma) * (1 - mb) + (0 - ma) * (0 - mb);
  double va = (1 - ma) * (1 - ma) + (2 - ma) * (2 - ma) + 2 * ma * ma;
  double vb = (2 - mb) * (2 - mb) + 2 * (1 - mb) * (1 - mb) + mb * mb;
  double expected = (cov / std::sqrt(va * vb) + 1.0) / 2.0;
  EXPECT_NEAR(PearsonSimilarity(a, b, 4), expected, 1e-12);
}

TEST(ExtendedJaccardTest, IdenticalVectorsScoreOne) {
  SparseVector a = V({{0, 1.5}, {2, 2.5}});
  EXPECT_NEAR(ExtendedJaccardSimilarity(a, a), 1.0, 1e-12);
}

TEST(ExtendedJaccardTest, DisjointVectorsScoreZero) {
  EXPECT_DOUBLE_EQ(ExtendedJaccardSimilarity(V({{0, 1.0}}), V({{1, 1.0}})),
                   0.0);
}

TEST(ExtendedJaccardTest, KnownValue) {
  // a=[1,0], b=[1,1]: dot=1, |a|^2=1, |b|^2=2 -> 1/(1+2-1) = 0.5
  EXPECT_NEAR(ExtendedJaccardSimilarity(V({{0, 1.0}}), V({{0, 1.0}, {1, 1.0}})),
              0.5, 1e-12);
}

TEST(ExtendedJaccardTest, BothEmptyScoreZero) {
  EXPECT_DOUBLE_EQ(ExtendedJaccardSimilarity(SparseVector(), SparseVector()),
                   0.0);
}

TEST(SetOverlapTest, JaccardDiceOverlapKnownValues) {
  SparseVector a = V({{0, 1.0}, {1, 1.0}, {2, 1.0}});
  SparseVector b = V({{2, 1.0}, {3, 1.0}});
  EXPECT_NEAR(JaccardOverlap(a, b), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(DiceOverlap(a, b), 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(OverlapCoefficient(a, b), 1.0 / 2.0, 1e-12);
}

TEST(SetOverlapTest, EmptyInputs) {
  SparseVector empty;
  SparseVector a = V({{0, 1.0}});
  EXPECT_DOUBLE_EQ(JaccardOverlap(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(DiceOverlap(empty, a), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(empty, a), 0.0);
}

TEST(SaturatingOverlapTest, GrowsWithOverlapAndSaturates) {
  SparseVector a = V({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}});
  EXPECT_DOUBLE_EQ(SaturatingOverlap(a, V({{9, 1.0}})), 0.0);
  double one = SaturatingOverlap(a, V({{0, 1.0}}));
  double two = SaturatingOverlap(a, V({{0, 1.0}, {1, 1.0}}));
  double four = SaturatingOverlap(a, a);
  EXPECT_LT(one, two);
  EXPECT_LT(two, four);
  EXPECT_LT(four, 1.0);
  EXPECT_NEAR(one, 1.0 / 3.0, 1e-12);  // damping 2: 1/(1+2)
}

TEST(SaturatingOverlapTest, ZeroDampingDisjointVectorsScoreZeroNotNaN) {
  // Regression: with damping 0 a disjoint pair evaluated 0/0 and returned
  // NaN, which then poisoned every decision graph the matrix fed. The
  // empty-overlap case must short-circuit to 0 before the division.
  EXPECT_EQ(SaturatingOverlap(V({{0, 1.0}}), V({{5, 1.0}}), 0.0), 0.0);
  EXPECT_EQ(SaturatingOverlap(SparseVector(), SparseVector(), 0.0), 0.0);
  EXPECT_EQ(SaturatingOverlap(SparseVector(), V({{1, 1.0}}), 0.0), 0.0);
  // Non-empty overlap with damping 0 is n/n = 1, exactly.
  SparseVector a = V({{0, 1.0}, {1, 1.0}});
  EXPECT_EQ(SaturatingOverlap(a, a, 0.0), 1.0);
  EXPECT_EQ(SaturatingOverlap(a, V({{1, 2.0}}), 0.0), 1.0);
}

TEST(PearsonTest, StaleDimensionIsClampedToUnionAndCounted) {
  // Regression: a dimension smaller than the union size (a stale
  // vocabulary count) produced a negative variance in release builds. The
  // dimension is now clamped up to the union size, the result equals the
  // exact-union computation, and each correction is counted so RunHealth
  // can surface it.
  SparseVector a = V({{0, 1.0}, {1, 2.0}, {7, 1.5}});
  SparseVector b = V({{1, 0.5}, {3, 1.0}});
  const int union_count = a.UnionCount(b);
  const long long before = PearsonDimensionCorrections();
  const double clamped = PearsonSimilarity(a, b, 2);
  EXPECT_EQ(PearsonDimensionCorrections(), before + 1);
  const double exact = PearsonSimilarity(a, b, union_count);
  EXPECT_EQ(PearsonDimensionCorrections(), before + 1);  // healthy: no count
  EXPECT_EQ(clamped, exact);
  EXPECT_TRUE(std::isfinite(clamped));
  EXPECT_GE(clamped, 0.0);
  EXPECT_LE(clamped, 1.0);
}

// Property: every measure stays in [0, 1] and is symmetric, for random
// non-negative vectors.
class VectorSimilarityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorSimilarityProperty, BoundsAndSymmetry) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<SparseVector::Entry> ea, eb;
    int na = rng.UniformInt(0, 12), nb = rng.UniformInt(0, 12);
    for (int i = 0; i < na; ++i) {
      ea.push_back({static_cast<TermId>(rng.UniformInt(0, 25)),
                    rng.UniformDouble(0.01, 4.0)});
    }
    for (int i = 0; i < nb; ++i) {
      eb.push_back({static_cast<TermId>(rng.UniformInt(0, 25)),
                    rng.UniformDouble(0.01, 4.0)});
    }
    SparseVector a = SparseVector::FromPairs(std::move(ea));
    SparseVector b = SparseVector::FromPairs(std::move(eb));
    int dim = 26;

    const double measures[] = {
        CosineSimilarity(a, b),          PearsonSimilarity(a, b, dim),
        ExtendedJaccardSimilarity(a, b), JaccardOverlap(a, b),
        DiceOverlap(a, b),               OverlapCoefficient(a, b),
        SaturatingOverlap(a, b),
    };
    for (double m : measures) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
    EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), CosineSimilarity(b, a));
    EXPECT_DOUBLE_EQ(PearsonSimilarity(a, b, dim),
                     PearsonSimilarity(b, a, dim));
    EXPECT_DOUBLE_EQ(ExtendedJaccardSimilarity(a, b),
                     ExtendedJaccardSimilarity(b, a));
    EXPECT_DOUBLE_EQ(SaturatingOverlap(a, b), SaturatingOverlap(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorSimilarityProperty,
                         ::testing::Values(3, 17, 2024, 777));

}  // namespace
}  // namespace text
}  // namespace weber

#include "core/compiled_path.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <random>
#include <thread>

#include "core/decision.h"
#include "core/incremental.h"
#include "core/resolver.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "ml/splitter.h"
#include "text/batch_similarity.h"
#include "text/vector_similarity.h"

namespace weber {
namespace core {
namespace {

using extract::FeatureBundle;
using text::SparseVector;

SparseVector RandomVector(std::mt19937_64& rng, int max_terms, int id_range) {
  std::vector<SparseVector::Entry> entries;
  const int n = static_cast<int>(rng() % (max_terms + 1));
  std::uniform_real_distribution<double> weight(0.0, 1.0);
  for (int k = 0; k < n; ++k) {
    // One in five entries carries weight exactly 0.0 (an idf-0 term): it is
    // present for overlap counting but contributes nothing to dot products.
    const double w = rng() % 5 == 0 ? 0.0 : weight(rng);
    entries.push_back({static_cast<int32_t>(rng() % id_range), w});
  }
  return SparseVector::FromPairs(std::move(entries));
}

/// Every kernel must reproduce its scalar counterpart bitwise under the
/// given kernel mode, including empty vectors and zero-weight entries.
void RunKernelEquivalence(text::KernelMode mode) {
  text::ForceKernelMode(mode);
  std::mt19937_64 rng(0xC0FFEE);
  constexpr int kDimension = 96;  // > any id, so Pearson is batch-eligible
  for (int round = 0; round < 20; ++round) {
    const int n = 1 + static_cast<int>(rng() % 24);
    std::vector<SparseVector> vecs(n);
    std::vector<const SparseVector*> ptrs(n);
    for (int i = 0; i < n; ++i) {
      vecs[i] = RandomVector(rng, 30, kDimension - 4);
      ptrs[i] = &vecs[i];
    }
    if (round % 3 == 0) vecs[0] = SparseVector();  // empty-vector edge case
    text::FrozenVectors frozen = text::FrozenVectors::Freeze(ptrs);
    text::BatchScorer scorer(&frozen);
    scorer.PreparePearson(kDimension);
    std::vector<double> out(n);
    std::vector<int32_t> overlap(n);
    for (int a = 0; a < n; ++a) {
      scorer.SetAnchor(a);
      scorer.Dot(0, n, out.data());
      for (int j = 0; j < n; ++j) EXPECT_EQ(out[j], vecs[a].Dot(vecs[j]));
      scorer.OverlapCount(0, n, overlap.data());
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(overlap[j], vecs[a].OverlapCount(vecs[j]));
      }
      scorer.Cosine(0, n, out.data());
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(out[j], text::CosineSimilarity(vecs[a], vecs[j]));
      }
      for (double damping : {2.0, 1.5, 0.0}) {
        scorer.SaturatingOverlap(damping, 0, n, out.data());
        for (int j = 0; j < n; ++j) {
          EXPECT_EQ(out[j],
                    text::SaturatingOverlap(vecs[a], vecs[j], damping));
        }
      }
      scorer.ExtendedJaccard(0, n, out.data());
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(out[j], text::ExtendedJaccardSimilarity(vecs[a], vecs[j]));
      }
      scorer.Pearson(0, n, out.data());
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(out[j],
                  text::PearsonSimilarity(vecs[a], vecs[j], kDimension));
      }
    }
  }
  text::ForceKernelMode(text::KernelMode::kAuto);
}

TEST(CompiledPathKernels, ScalarKernelsMatchScalarFunctionsBitwise) {
  RunKernelEquivalence(text::KernelMode::kScalar);
  EXPECT_EQ(text::ActiveKernelMode(),
            text::Avx2Available() ? text::KernelMode::kAvx2
                                  : text::KernelMode::kScalar);
}

TEST(CompiledPathKernels, Avx2KernelsMatchScalarFunctionsBitwise) {
  if (!text::Avx2Available()) {
    GTEST_SKIP() << "no AVX2 on this machine/build";
  }
  RunKernelEquivalence(text::KernelMode::kAvx2);
}

TEST(CompiledPathKernels, ForcedScalarModeIsHonored) {
  text::ForceKernelMode(text::KernelMode::kScalar);
  EXPECT_EQ(text::ActiveKernelMode(), text::KernelMode::kScalar);
  text::ForceKernelMode(text::KernelMode::kAuto);
  EXPECT_EQ(text::ActiveKernelMode(),
            text::Avx2Available() ? text::KernelMode::kAvx2
                                  : text::KernelMode::kScalar);
}

TEST(CompiledPathKernels, CosineClampMasksOutOfRangeIntermediate) {
  // dot = 3 exactly, but |v|*|v| rounds to 2.9999999999999996, so the raw
  // ratio exceeds 1 before the [0, 1] clamp hides it. The clamp is part of
  // the scalar contract, so the kernels must replicate it — this pins the
  // case where batch-vs-scalar drift would otherwise be invisible.
  const SparseVector v =
      SparseVector::FromPairs({{0, 1.0}, {1, 1.0}, {2, 1.0}});
  const double raw = v.Dot(v) / (v.Norm() * v.Norm());
  EXPECT_GT(raw, 1.0);
  EXPECT_EQ(text::CosineSimilarity(v, v), 1.0);

  text::FrozenVectors frozen = text::FrozenVectors::Freeze({&v, &v});
  text::BatchScorer scorer(&frozen);
  scorer.SetAnchor(0);
  double out[2];
  scorer.Cosine(0, 2, out);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 1.0);
}

TEST(CompiledPathKernels, SaturatingOverlapZeroOverZeroIsZero) {
  // Regression: disjoint vectors with damping 0 used to evaluate 0/0 and
  // return NaN, which then poisoned similarity matrices downstream.
  const SparseVector a = SparseVector::FromPairs({{0, 1.0}});
  const SparseVector b = SparseVector::FromPairs({{5, 1.0}});
  EXPECT_EQ(text::SaturatingOverlap(a, b, 0.0), 0.0);
  EXPECT_EQ(text::SaturatingOverlap(a, a, 0.0), 1.0);  // n/n stays exact
  EXPECT_EQ(text::SaturatingOverlap(SparseVector(), SparseVector(), 0.0),
            0.0);

  text::FrozenVectors frozen = text::FrozenVectors::Freeze({&a, &b});
  text::BatchScorer scorer(&frozen);
  scorer.SetAnchor(0);
  double out[2];
  scorer.SaturatingOverlap(0.0, 0, 2, out);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(CompiledPathKernels, PearsonClampsStaleDimensionAndCountsIt) {
  // Regression: a dimension below the union size only tripped an assert in
  // debug builds; release builds computed a negative variance. It is now
  // clamped up to the union size and the correction is counted.
  const SparseVector a =
      SparseVector::FromPairs({{0, 1.0}, {1, 2.0}, {7, 1.5}});
  const SparseVector b = SparseVector::FromPairs({{1, 0.5}, {3, 1.0}});
  const int union_count = a.UnionCount(b);
  ASSERT_EQ(union_count, 4);

  const long long before = text::PearsonDimensionCorrections();
  const double clamped = text::PearsonSimilarity(a, b, 2);
  EXPECT_EQ(text::PearsonDimensionCorrections(), before + 1);

  // The healthy path (dimension already >= union) must not count.
  const double reference = text::PearsonSimilarity(a, b, union_count);
  EXPECT_EQ(text::PearsonDimensionCorrections(), before + 1);
  EXPECT_EQ(clamped, reference);
  EXPECT_TRUE(std::isfinite(clamped));
  EXPECT_GE(clamped, 0.0);
  EXPECT_LE(clamped, 1.0);

  // Degenerate dimensions stay at the r = 0 midpoint.
  EXPECT_EQ(text::PearsonSimilarity(SparseVector(), SparseVector(), 0), 0.5);
  EXPECT_EQ(text::PearsonSimilarity(SparseVector(), SparseVector(), 1), 0.5);
}

// ---------------------------------------------------------------------------
// Compiled decision tables

std::vector<double> ProbeValues(
    const std::vector<ml::LabeledSimilarity>& training,
    const CompiledDecision& table) {
  std::vector<double> probes = {0.0,
                                1.0,
                                0.5,
                                -0.5,
                                1.5,
                                std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity()};
  for (const ml::LabeledSimilarity& s : training) probes.push_back(s.value);
  for (double b : table.boundaries) {
    // Boundary-exact values and their immediate floating-point neighbours:
    // the upper_bound-vs-count equivalence has to hold at the knife edge.
    probes.push_back(b);
    probes.push_back(std::nextafter(b, -1e300));
    probes.push_back(std::nextafter(b, 1e300));
  }
  return probes;
}

TEST(CompiledPathDecision, FuzzCompiledMatchesInterpretedPerCriterion) {
  std::mt19937_64 rng(0xDEC1DE);
  Rng weber_rng(17);
  std::vector<CriterionFactory> factories =
      MakeStandardCriterionFactories(10, 8);
  factories.push_back([] {
    return std::unique_ptr<DecisionCriterion>(
        std::make_unique<IsotonicCriterion>());
  });

  std::map<std::string, long long> checks_per_criterion;
  std::uniform_real_distribution<double> value(0.0, 1.0);
  for (int round = 0; round < 60; ++round) {
    const int m = 8 + static_cast<int>(rng() % 60);
    std::vector<ml::LabeledSimilarity> training;
    training.reserve(m);
    for (int i = 0; i < m; ++i) {
      const double v = value(rng);
      // Links correlate with the value plus noise, so fitted thresholds and
      // regions land at varied, non-degenerate places.
      const bool link = v + 0.4 * value(rng) > 0.7;
      training.push_back({v, link});
    }
    for (const CriterionFactory& factory : factories) {
      std::unique_ptr<DecisionCriterion> criterion = factory();
      ASSERT_TRUE(criterion->Fit(training, &weber_rng).ok());
      CompiledDecision table;
      ASSERT_TRUE(criterion->Compile(&table)) << criterion->name();
      for (double p : ProbeValues(training, table)) {
        EXPECT_EQ(criterion->Decide(p), table.Decide(p))
            << criterion->name() << " at " << p;
        EXPECT_EQ(criterion->LinkProbability(p), table.LinkProbability(p))
            << criterion->name() << " at " << p;
        ++checks_per_criterion[criterion->name()];
      }
    }
  }
  ASSERT_EQ(checks_per_criterion.size(), 4u);  // threshold, eq, km, isotonic
  for (const auto& [name, checks] : checks_per_criterion) {
    EXPECT_GE(checks, 1000) << name;
  }
}

TEST(CompiledPathDecision, EvalBlockMatchesPerValueCalls) {
  std::mt19937_64 rng(0xB10C);
  std::vector<ml::LabeledSimilarity> training;
  std::uniform_real_distribution<double> value(0.0, 1.0);
  for (int i = 0; i < 40; ++i) {
    const double v = value(rng);
    training.push_back({v, v > 0.6});
  }
  Rng weber_rng(23);
  auto criterion = RegionCriterion::EqualWidth(10);
  ASSERT_TRUE(criterion->Fit(training, &weber_rng).ok());
  CompiledDecision table;
  ASSERT_TRUE(criterion->Compile(&table));

  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(value(rng) * 1.2 - 0.1);
  values.push_back(std::numeric_limits<double>::quiet_NaN());

  std::vector<char> decisions(values.size(), 2);
  std::vector<double> probs(values.size(), -1.0);
  table.EvalBlock(values.data(), values.size(), decisions.data(),
                  probs.data());
  for (size_t k = 0; k < values.size(); ++k) {
    EXPECT_EQ(decisions[k] != 0, table.Decide(values[k]));
    EXPECT_EQ(probs[k], table.LinkProbability(values[k]));
  }

  // Either output may be omitted.
  std::vector<char> only_decisions(values.size(), 2);
  table.EvalBlock(values.data(), values.size(), only_decisions.data(),
                  nullptr);
  EXPECT_EQ(only_decisions, decisions);
  std::vector<double> only_probs(values.size(), -1.0);
  table.EvalBlock(values.data(), values.size(), nullptr, only_probs.data());
  EXPECT_EQ(only_probs, probs);
}

TEST(CompiledPathDecision, UnfittedCriteriaRefuseToCompile) {
  CompiledDecision table;
  ThresholdCriterion threshold;
  EXPECT_FALSE(threshold.Compile(&table));
  EXPECT_FALSE(RegionCriterion::EqualWidth(10)->Compile(&table));
  IsotonicCriterion isotonic;
  EXPECT_FALSE(isotonic.Compile(&table));
}

TEST(CompiledPathDecision, FusedWeightedAverageMatchesTwoPassLoop) {
  std::mt19937_64 rng(0xFACE);
  std::uniform_real_distribution<double> value(0.0, 1.0);
  const size_t num_sources = 7, num_pairs = 113;
  std::vector<double> accuracies(num_sources);
  std::vector<std::vector<double>> probs(num_sources,
                                         std::vector<double>(num_pairs));
  std::vector<const double*> prob_ptrs(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    accuracies[s] = value(rng);
    for (double& p : probs[s]) p = value(rng);
    prob_ptrs[s] = probs[s].data();
  }

  // The pre-refactor combiner loop, verbatim: source-major accumulation
  // followed by one multiply with the reciprocal of the weight total.
  double best_score = 0.0;
  for (double acc : accuracies) best_score = std::max(best_score, acc);
  std::vector<double> expected(num_pairs, 0.0);
  double total_weight = 0.0;
  for (size_t s = 0; s < num_sources; ++s) {
    const double rel =
        best_score > 0.0 ? accuracies[s] / best_score : 1.0;
    const double w = rel * rel * rel * rel + 0.01;
    total_weight += w;
    for (size_t k = 0; k < num_pairs; ++k) expected[k] += w * probs[s][k];
  }
  const double inv = 1.0 / total_weight;
  for (size_t k = 0; k < num_pairs; ++k) expected[k] *= inv;

  const CompiledCombineWeights baked = BakeCombineWeights(accuracies);
  std::vector<double> fused(num_pairs, 0.0);
  FusedWeightedAverage(prob_ptrs, baked, num_pairs, fused.data());
  for (size_t k = 0; k < num_pairs; ++k) EXPECT_EQ(fused[k], expected[k]);
}

// ---------------------------------------------------------------------------
// End-to-end resolver equivalence

class CompiledPathResolver : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result =
        corpus::SyntheticWebGenerator(corpus::TinyConfig(0xAB1E)).Generate();
    ASSERT_TRUE(result.ok()) << result.status();
    data_ = new corpus::SyntheticData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// Resolves every block with the compiled path on and off; the results
  /// must be indistinguishable (clustering, sources, accuracies, timings
  /// aside).
  void ExpectCompiledOffOnEquivalence(ResolverOptions options) {
    options.compiled_path = true;
    auto compiled = EntityResolver::Create(&data_->gazetteer, options);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    options.compiled_path = false;
    auto interpreted = EntityResolver::Create(&data_->gazetteer, options);
    ASSERT_TRUE(interpreted.ok()) << interpreted.status();

    for (size_t b = 0; b < data_->dataset.blocks.size(); ++b) {
      const corpus::Block& block = data_->dataset.blocks[b];
      Rng rng_a(1000 + b), rng_b(1000 + b);
      auto ra = compiled->ResolveBlock(block, &rng_a);
      auto rb = interpreted->ResolveBlock(block, &rng_b);
      ASSERT_TRUE(ra.ok()) << ra.status();
      ASSERT_TRUE(rb.ok()) << rb.status();
      EXPECT_EQ(ra->clustering.labels(), rb->clustering.labels());
      EXPECT_EQ(ra->chosen_source, rb->chosen_source);
      ASSERT_EQ(ra->sources.size(), rb->sources.size());
      for (size_t s = 0; s < ra->sources.size(); ++s) {
        EXPECT_EQ(ra->sources[s].function_name,
                  rb->sources[s].function_name);
        EXPECT_EQ(ra->sources[s].criterion_name,
                  rb->sources[s].criterion_name);
        EXPECT_EQ(ra->sources[s].train_accuracy,
                  rb->sources[s].train_accuracy);
        EXPECT_EQ(ra->sources[s].num_edges, rb->sources[s].num_edges);
      }
    }
  }

  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* CompiledPathResolver::data_ = nullptr;

TEST_F(CompiledPathResolver, DefaultConfigurationIsBitIdentical) {
  ExpectCompiledOffOnEquivalence(ResolverOptions{});
}

TEST_F(CompiledPathResolver, WeightedCombinationIsBitIdentical) {
  ResolverOptions options;
  options.combination = CombinationStrategy::kWeightedAverage;
  ExpectCompiledOffOnEquivalence(options);
}

TEST_F(CompiledPathResolver, IsotonicAndGatingAreBitIdentical) {
  ResolverOptions options;
  options.include_isotonic_criterion = true;
  options.min_pair_informativeness = 0.05;
  ExpectCompiledOffOnEquivalence(options);
}

TEST_F(CompiledPathResolver, ThresholdOnlySubsetIsBitIdentical) {
  ResolverOptions options;
  options.use_region_criteria = false;
  options.function_names = kSubsetI4;
  ExpectCompiledOffOnEquivalence(options);
}

TEST_F(CompiledPathResolver, ForcedScalarKernelsAreBitIdentical) {
  text::ForceKernelMode(text::KernelMode::kScalar);
  ExpectCompiledOffOnEquivalence(ResolverOptions{});
  text::ForceKernelMode(text::KernelMode::kAuto);
}

TEST_F(CompiledPathResolver, DimensionCorrectionsSurfaceInRunHealth) {
  // Poison one bundle's vocabulary dimension so the interpreted Pearson
  // path must correct it; the counter has to land in the block's health.
  auto resolver = EntityResolver::Create(&data_->gazetteer, ResolverOptions{});
  ASSERT_TRUE(resolver.ok());
  const corpus::Block& block = data_->dataset.blocks[0];
  std::vector<extract::PageInput> pages;
  for (const corpus::Document& d : block.documents) {
    pages.push_back({d.url, d.text});
  }
  extract::FeatureExtractor extractor(&data_->gazetteer, {});
  auto bundles = extractor.ExtractBlock(pages, block.query);
  ASSERT_TRUE(bundles.ok());
  for (auto& b : *bundles) b.tfidf_dimension = 2;  // stale vocabulary

  Rng rng(9);
  auto pairs = ml::SampleTrainingPairs(
      static_cast<int>(bundles->size()), 0.10, &rng, 10);
  auto r = resolver->ResolveExtracted(*bundles, block.entity_labels, pairs,
                                      &rng);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->health.dimension_corrections, 0);
  EXPECT_TRUE(r->health.AnyDegradation());
}

// ---------------------------------------------------------------------------
// Incremental batch resolve

std::vector<FeatureBundle> PlantedStream(std::vector<int>* labels) {
  std::vector<FeatureBundle> bundles(12);
  labels->resize(12);
  for (int i = 0; i < 12; ++i) {
    const int entity = i % 3;
    (*labels)[i] = entity;
    const int base = entity * 10;
    bundles[i].tfidf = SparseVector::FromPairs(
        {{base, 0.7}, {base + 1, 0.6}, {base + 2 + (i % 2), 0.4}});
    bundles[i].tfidf = bundles[i].tfidf.Normalized();
    bundles[i].tfidf_dimension = 40;
    bundles[i].concepts = SparseVector::FromPairs(
        {{base, 1.0}, {base + 1, 1.0}});
    bundles[i].weighted_concepts = bundles[i].concepts;
    bundles[i].organizations = SparseVector::FromPairs({{entity, 1.0}});
    bundles[i].most_frequent_name =
        std::string(1, static_cast<char>('a' + entity)) + "lice x";
    bundles[i].closest_name = bundles[i].most_frequent_name;
    bundles[i].url = "http://e" + std::to_string(entity) + ".edu/x/p.html";
  }
  return bundles;
}

std::unique_ptr<IncrementalResolver> MakeCalibrated(
    const std::vector<FeatureBundle>& bundles, const std::vector<int>& labels,
    bool compiled_path) {
  IncrementalOptions options;
  options.compiled_path = compiled_path;
  auto created = IncrementalResolver::Create(options);
  EXPECT_TRUE(created.ok());
  auto resolver =
      std::make_unique<IncrementalResolver>(std::move(created).ValueOrDie());
  Rng rng(1);
  auto pairs =
      ml::SampleTrainingPairs(static_cast<int>(bundles.size()), 0.6, &rng);
  EXPECT_TRUE(resolver->CalibrateThreshold(bundles, labels, pairs).ok());
  for (const auto& b : bundles) resolver->Add(b);
  return resolver;
}

TEST(CompiledPathIncremental, BatchResolveMatchesInterpreted) {
  std::vector<int> labels;
  const auto bundles = PlantedStream(&labels);
  auto compiled = MakeCalibrated(bundles, labels, /*compiled_path=*/true);
  auto interpreted = MakeCalibrated(bundles, labels, /*compiled_path=*/false);
  auto batch_a = compiled->BatchResolve();
  auto batch_b = interpreted->BatchResolve();
  ASSERT_TRUE(batch_a.ok());
  ASSERT_TRUE(batch_b.ok());
  EXPECT_EQ(batch_a->labels(), batch_b->labels());
  EXPECT_EQ(*batch_a, graph::Clustering::FromLabels(labels));
}

TEST(CompiledPathIncremental, ConcurrentBatchResolvesAgree) {
  // Exercised under TSan by check.sh: BatchResolve is const and the batch
  // scorer is per-call state, so concurrent calls must neither race nor
  // diverge.
  std::vector<int> labels;
  const auto bundles = PlantedStream(&labels);
  auto resolver = MakeCalibrated(bundles, labels, /*compiled_path=*/true);
  const auto expected = resolver->BatchResolve();
  ASSERT_TRUE(expected.ok());

  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        auto got = resolver->BatchResolve();
        if (!got.ok() || !(*got == *expected)) ++mismatches[t];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace core
}  // namespace weber

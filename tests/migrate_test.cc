// Shard migration unit tests: the CRC32C export/import wire framing, the
// service-level ExportShard/ImportShard contract (consistent snapshot+tail
// cut, corruption refused with shard state unchanged, dump byte-identity
// across a round trip), and one TCP end-to-end pass of the `export` /
// `import` verbs between two live servers.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/net_util.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "durability/snapshot_file.h"
#include "durability/wal.h"
#include "serve/protocol.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

namespace weber {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// Wire framing: FormatExportFrame / ParseExportFrame and the binary import
// blob (AppendImportFrame / SplitImportBlob).

TEST(ExportFrameTest, RoundTripsArbitraryBytes) {
  std::string payload = "snapshot";
  payload.push_back('\0');
  payload.push_back('\n');
  payload += std::string("\xff\x01 tail", 7);
  const std::string line = FormatExportFrame(payload);
  Result<std::string> back = ParseExportFrame(line);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, payload);
}

TEST(ExportFrameTest, RoundTripsTheEmptyPayload) {
  Result<std::string> back = ParseExportFrame(FormatExportFrame(""));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->empty());
}

TEST(ExportFrameTest, FlippedPayloadBitIsCorruption) {
  std::string line = FormatExportFrame("the payload under the checksum");
  // Corrupt one hex digit of the payload (the last token), keeping the
  // announced length and CRC intact.
  char& digit = line[line.size() - 1];
  digit = (digit == '0') ? '1' : '0';
  Result<std::string> back = ParseExportFrame(line);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption) << back.status();
}

TEST(ExportFrameTest, LengthMismatchIsCorruption) {
  const std::string good = FormatExportFrame("abcdef");
  // Rewrite the length token ("6 ...") to lie about the decoded size.
  std::string lying = "7" + good.substr(1);
  EXPECT_FALSE(ParseExportFrame(lying).ok());
}

TEST(ExportFrameTest, MalformedLinesAreRejected) {
  EXPECT_FALSE(ParseExportFrame("").ok());
  EXPECT_FALSE(ParseExportFrame("nonsense").ok());
  EXPECT_FALSE(ParseExportFrame("4 12 zz!!").ok());
  EXPECT_FALSE(ParseExportFrame("-1 0 ").ok());
}

TEST(ExportHeaderTest, ParsesAndBoundsTheFrameCount) {
  Result<long long> n = ParseExportHeader("ok 17");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 17);
  EXPECT_FALSE(ParseExportHeader("err NotFound nope").ok());
  EXPECT_FALSE(ParseExportHeader("ok -3").ok());
  EXPECT_FALSE(ParseExportHeader("ok many").ok());
  EXPECT_FALSE(
      ParseExportHeader("ok " + std::to_string(kMaxExportFrames + 1)).ok());
}

TEST(ImportBlobTest, RoundTripsConcatenatedFrames) {
  std::vector<std::string> payloads = {"first", "", "third\nwith\nnewlines"};
  std::string blob;
  for (const std::string& p : payloads) AppendImportFrame(blob, p);
  Result<std::vector<std::string>> back = SplitImportBlob(blob);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, payloads);
}

TEST(ImportBlobTest, TornTailIsCorruptionNotASilentDrop) {
  std::string blob;
  AppendImportFrame(blob, "whole frame");
  AppendImportFrame(blob, "torn frame");
  blob.resize(blob.size() - 3);
  Result<std::vector<std::string>> back = SplitImportBlob(blob);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption) << back.status();
}

TEST(ImportBlobTest, FlippedByteIsCorruption) {
  std::string blob;
  AppendImportFrame(blob, "payload bytes under the per-frame checksum");
  blob[blob.size() - 1] ^= 0x40;
  EXPECT_FALSE(SplitImportBlob(blob).ok());
}

TEST(HexCodecTest, RoundTripsAndRejects) {
  const std::string bytes("\x00\x01\xfe\xff ab", 6);
  Result<std::string> back = HexDecode(HexEncode(bytes));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, bytes);
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex digit
  EXPECT_TRUE(HexDecode("").ok());
}

// ---------------------------------------------------------------------------
// Service-level contract: ExportShard / ImportShard between two services
// built from the same corpus (and therefore the same per-shard
// calibration, which import insists on).

class MigrateServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static std::unique_ptr<ResolutionService> MakeService() {
    auto service =
        ResolutionService::Create(data_->dataset, &data_->gazetteer, {});
    EXPECT_TRUE(service.ok()) << service.status();
    return std::move(service).ValueOrDie();
  }

  static const corpus::Block& Block(int i) { return data_->dataset.blocks[i]; }

  static std::vector<int> Dump(ResolutionService* service,
                               const std::string& block) {
    auto dump = service->DumpPartition(block);
    EXPECT_TRUE(dump.ok()) << dump.status();
    return std::move(dump).ValueOrDie();
  }

  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* MigrateServiceTest::data_ = nullptr;

TEST_F(MigrateServiceTest, ExportImportRoundTripPreservesTheDump) {
  const std::string block = Block(0).query;
  auto source = MakeService();
  // A compacted prefix plus an uncompacted tail: the export must carry
  // both, and the import must replay the tail through the live resolver.
  const int total = Block(0).num_documents();
  const int compacted = total / 2;
  for (int d = 0; d < compacted; ++d) {
    ASSERT_TRUE(source->Assign(block, d).ok());
  }
  ASSERT_TRUE(source->CompactAll().ok());
  for (int d = compacted; d < total; ++d) {
    ASSERT_TRUE(source->Assign(block, d).ok());
  }

  auto exported = source->ExportShard(block);
  ASSERT_TRUE(exported.ok()) << exported.status();
  EXPECT_EQ(static_cast<int>(exported->snapshot.canonical_ids.size()),
            compacted);
  EXPECT_EQ(static_cast<int>(exported->tail.size()), total - compacted);

  auto target = MakeService();
  auto outcome = target->ImportShard(block, *exported);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->version, exported->snapshot.version);
  EXPECT_EQ(outcome->documents, total);
  EXPECT_EQ(Dump(target.get(), block), Dump(source.get(), block));
  // Unrelated shards on the target are untouched.
  EXPECT_TRUE(Dump(target.get(), Block(1).query).empty() ||
              Dump(target.get(), Block(1).query) ==
                  std::vector<int>(Block(1).num_documents(), -1));
}

TEST_F(MigrateServiceTest, ImportIsIdempotent) {
  const std::string block = Block(0).query;
  auto source = MakeService();
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    ASSERT_TRUE(source->Assign(block, d).ok());
  }
  ASSERT_TRUE(source->CompactAll().ok());
  auto exported = source->ExportShard(block);
  ASSERT_TRUE(exported.ok()) << exported.status();

  auto target = MakeService();
  ASSERT_TRUE(target->ImportShard(block, *exported).ok());
  const std::vector<int> once = Dump(target.get(), block);
  // Replaying the same export (a retried migration) lands on the same
  // state and the same published version.
  auto again = target->ImportShard(block, *exported);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->version, exported->snapshot.version);
  EXPECT_EQ(Dump(target.get(), block), once);
}

TEST_F(MigrateServiceTest, EmptyShardExportsAndImportsCleanly) {
  const std::string block = Block(0).query;
  auto source = MakeService();
  auto exported = source->ExportShard(block);
  ASSERT_TRUE(exported.ok()) << exported.status();
  EXPECT_TRUE(exported->snapshot.canonical_ids.empty());
  EXPECT_TRUE(exported->tail.empty());
  auto target = MakeService();
  auto outcome = target->ImportShard(block, *exported);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->documents, 0);
}

TEST_F(MigrateServiceTest, CorruptImportsAreRefusedWithStateUnchanged) {
  const std::string block = Block(0).query;
  auto source = MakeService();
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    ASSERT_TRUE(source->Assign(block, d).ok());
  }
  ASSERT_TRUE(source->CompactAll().ok());
  auto exported = source->ExportShard(block);
  ASSERT_TRUE(exported.ok()) << exported.status();

  // Seed the target with its own state so "unchanged" is observable.
  auto target = MakeService();
  ASSERT_TRUE(target->Assign(block, 0).ok());
  ASSERT_TRUE(target->Assign(block, 1).ok());
  ASSERT_TRUE(target->CompactAll().ok());
  const std::vector<int> before = Dump(target.get(), block);

  {  // Mismatched label count.
    ShardExport bad = *exported;
    bad.snapshot.labels.pop_back();
    auto refused = target->ImportShard(block, bad);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kCorruption);
  }
  {  // Foreign calibration.
    ShardExport bad = *exported;
    bad.snapshot.threshold += 0.125;
    auto refused = target->ImportShard(block, bad);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  }
  {  // Out-of-range document id in the snapshot.
    ShardExport bad = *exported;
    bad.snapshot.canonical_ids.back() = Block(0).num_documents() + 5;
    EXPECT_FALSE(target->ImportShard(block, bad).ok());
  }
  {  // Document repeated between snapshot and tail.
    ShardExport bad = *exported;
    bad.tail.push_back(bad.snapshot.canonical_ids.front());
    EXPECT_FALSE(target->ImportShard(block, bad).ok());
  }
  {  // Unknown shard.
    EXPECT_EQ(target->ImportShard("nonesuch", *exported).status().code(),
              StatusCode::kNotFound);
  }

  EXPECT_EQ(Dump(target.get(), block), before);
  // The shard still serves writes after all those refusals.
  EXPECT_TRUE(target->Assign(block, 2).ok());
}

TEST_F(MigrateServiceTest, FaultPointsCoverExportAndImport) {
  const std::string block = Block(0).query;
  auto source = MakeService();
  ASSERT_TRUE(source->Assign(block, 0).ok());
  auto exported = source->ExportShard(block);
  ASSERT_TRUE(exported.ok()) << exported.status();

  faults::FaultInjector& injector = faults::FaultInjector::Instance();
  injector.DisarmAll();
  ASSERT_TRUE(injector.ArmFromSpec("migrate.export=error:1:0:1").ok());
  EXPECT_FALSE(source->ExportShard(block).ok());
  // The single-shot trigger is spent: the next export works again.
  EXPECT_TRUE(source->ExportShard(block).ok());

  auto target = MakeService();
  const std::vector<int> before = Dump(target.get(), block);
  ASSERT_TRUE(injector.ArmFromSpec("migrate.import=error:1:0:1").ok());
  EXPECT_FALSE(target->ImportShard(block, *exported).ok());
  EXPECT_EQ(Dump(target.get(), block), before);
  EXPECT_TRUE(target->ImportShard(block, *exported).ok());
  injector.DisarmAll();
}

// ---------------------------------------------------------------------------
// TCP end-to-end: `export` from one live server, repack the frames into an
// import blob, `import` into a second server, compare `dump` wire lines.

class MigrateWireTest : public MigrateServiceTest {};

TEST_F(MigrateWireTest, ExportImportAcrossTwoServersKeepsDumpsByteIdentical) {
  const std::string block = Block(0).query;
  auto source_service = MakeService();
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    ASSERT_TRUE(source_service->Assign(block, d).ok());
  }
  ASSERT_TRUE(source_service->CompactAll().ok());
  // Leave an uncompacted straggler so the export carries a tail frame.
  ASSERT_TRUE(source_service->Assign(Block(1).query, 0).ok());

  auto target_service = MakeService();
  LineServer source(source_service.get());
  LineServer target(target_service.get());
  ASSERT_TRUE(source.StartTcp(0).ok());
  ASSERT_TRUE(target.StartTcp(0).ok());

  net::LineSocket from_source;
  ASSERT_TRUE(
      from_source.Connect("127.0.0.1", source.tcp_port(), 2000.0).ok());
  ASSERT_TRUE(from_source.SendLine("export " + block).ok());
  Result<std::string> header = from_source.ReadLine(5000.0);
  ASSERT_TRUE(header.ok()) << header.status();
  Result<long long> frames = ParseExportHeader(*header);
  ASSERT_TRUE(frames.ok()) << frames.status();
  ASSERT_GE(*frames, 1);
  std::string blob;
  for (long long i = 0; i < *frames; ++i) {
    Result<std::string> line = from_source.ReadLine(5000.0);
    ASSERT_TRUE(line.ok()) << line.status();
    Result<std::string> payload = ParseExportFrame(*line);
    ASSERT_TRUE(payload.ok()) << payload.status();
    AppendImportFrame(blob, *payload);
  }

  Request import;
  import.op = Request::Op::kImport;
  import.block = block;
  import.blob = blob;
  net::LineSocket to_target;
  ASSERT_TRUE(
      to_target.Connect("127.0.0.1", target.tcp_port(), 2000.0).ok());
  ASSERT_TRUE(to_target.SendLine(FormatRequest(import)).ok());
  Result<std::string> ack = to_target.ReadLine(5000.0);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->rfind("ok ", 0), 0u) << *ack;

  // Compare the dumps as raw wire lines — byte identity, not just equal
  // partitions.
  auto dump_over = [&block](net::LineSocket& socket) {
    EXPECT_TRUE(socket.SendLine("dump " + block).ok());
    Result<std::string> line = socket.ReadLine(5000.0);
    EXPECT_TRUE(line.ok()) << line.status();
    return line.ok() ? *line : std::string();
  };
  const std::string source_dump = dump_over(from_source);
  const std::string target_dump = dump_over(to_target);
  EXPECT_EQ(source_dump, target_dump);
  EXPECT_EQ(source_dump.rfind("ok ", 0), 0u) << source_dump;

  // A corrupted blob is refused on the wire and leaves the target's dump
  // untouched.
  Request bad = import;
  bad.blob[bad.blob.size() / 2] ^= 0x20;
  ASSERT_TRUE(to_target.SendLine(FormatRequest(bad)).ok());
  Result<std::string> refused = to_target.ReadLine(5000.0);
  ASSERT_TRUE(refused.ok()) << refused.status();
  EXPECT_EQ(refused->rfind("err ", 0), 0u) << *refused;
  EXPECT_EQ(dump_over(to_target), target_dump);

  source.StopTcp();
  target.StopTcp();
}

}  // namespace
}  // namespace serve
}  // namespace weber

#include "text/string_similarity.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace weber {
namespace text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  // The canonical MARTHA / MARHTA example: Jaro = 0.944444.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  // DWAYNE / DUANE: Jaro = 0.822222.
  EXPECT_NEAR(JaroSimilarity("dwayne", "duane"), 0.822222, 1e-5);
}

TEST(JaroWinklerTest, KnownValues) {
  // MARTHA / MARHTA with 3-char common prefix: 0.961111.
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  // DIXON / DICKSONX: Jaro 0.766667, prefix 2 -> 0.813333.
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.813333, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostCapsAtFourChars) {
  double jw4 = JaroWinklerSimilarity("abcdx", "abcdy");
  double jw5 = JaroWinklerSimilarity("abcdex", "abcdey");
  // Both get the max 4-char prefix boost relative to their Jaro base;
  // neither exceeds 1.
  EXPECT_LE(jw4, 1.0);
  EXPECT_LE(jw5, 1.0);
  EXPECT_GT(jw4, JaroSimilarity("abcdx", "abcdy"));
}

TEST(JaroWinklerTest, NamesWithSharedSurname) {
  // The F7 regime: same last name, different first name -> clearly below
  // identical names.
  double same = JaroWinklerSimilarity("adam cohen", "adam cohen");
  double diff = JaroWinklerSimilarity("adam cohen", "brian cohen");
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_LT(diff, 0.9);
  EXPECT_GT(diff, 0.4);
}

TEST(NgramTest, BigramKnownValue) {
  // "night" vs "nacht": bigrams {ni,ig,gh,ht} vs {na,ac,ch,ht} -> 1 shared.
  EXPECT_NEAR(NgramSimilarity("night", "nacht"), 2.0 * 1 / 8, 1e-12);
  EXPECT_DOUBLE_EQ(NgramSimilarity("abc", "abc"), 1.0);
}

TEST(NgramTest, ShortStringsFallBackToExactMatch) {
  EXPECT_DOUBLE_EQ(NgramSimilarity("a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("a", "b"), 0.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("", ""), 1.0);
}

TEST(NgramTest, RepeatedGramsAreMultisetMatched) {
  // "aaaa" vs "aa": grams {aa,aa,aa} vs {aa} -> 1 shared, 2*1/(3+1)=0.5.
  EXPECT_NEAR(NgramSimilarity("aaaa", "aa"), 0.5, 1e-12);
}

TEST(LcsTest, KnownValues) {
  EXPECT_DOUBLE_EQ(LongestCommonSubstringRatio("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LongestCommonSubstringRatio("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(LongestCommonSubstringRatio("abc", "abc"), 1.0);
  // Longest common substring of "ababc" (5) and "abcba" (5) is "abc".
  EXPECT_NEAR(LongestCommonSubstringRatio("ababc", "abcba"), 3.0 / 5.0, 1e-12);
  // Ratio uses the shorter string: "xabcx" vs "abc" -> 3/3.
  EXPECT_DOUBLE_EQ(LongestCommonSubstringRatio("xabcx", "abc"), 1.0);
}

// Properties over random strings.
class StringSimilarityProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static std::string RandomWord(Rng* rng, int max_len) {
    int len = rng->UniformInt(0, max_len);
    std::string s;
    for (int i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng->UniformInt(0, 5));  // small alphabet
    }
    return s;
  }
};

TEST_P(StringSimilarityProperty, AllMeasuresBoundedSymmetricReflexive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 80; ++trial) {
    std::string a = RandomWord(&rng, 12);
    std::string b = RandomWord(&rng, 12);
    for (auto measure : {LevenshteinSimilarity, JaroSimilarity,
                         JaroWinklerSimilarity,
                         LongestCommonSubstringRatio}) {
      double ab = measure(a, b);
      EXPECT_GE(ab, 0.0) << a << " / " << b;
      EXPECT_LE(ab, 1.0) << a << " / " << b;
      EXPECT_DOUBLE_EQ(ab, measure(b, a)) << a << " / " << b;
      EXPECT_DOUBLE_EQ(measure(a, a), 1.0) << a;
    }
    double ng = NgramSimilarity(a, b);
    EXPECT_GE(ng, 0.0);
    EXPECT_LE(ng, 1.0);
  }
}

TEST_P(StringSimilarityProperty, LevenshteinTriangleInequality) {
  Rng rng(GetParam() ^ 0x77);
  for (int trial = 0; trial < 40; ++trial) {
    std::string a = RandomWord(&rng, 10);
    std::string b = RandomWord(&rng, 10);
    std::string c = RandomWord(&rng, 10);
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
  }
}

TEST_P(StringSimilarityProperty, LevenshteinMatchesNaiveRecursionOnTiny) {
  Rng rng(GetParam() ^ 0x99);
  // Reference implementation: full DP matrix.
  auto reference = [](const std::string& a, const std::string& b) {
    std::vector<std::vector<int>> d(a.size() + 1,
                                    std::vector<int>(b.size() + 1));
    for (size_t i = 0; i <= a.size(); ++i) d[i][0] = static_cast<int>(i);
    for (size_t j = 0; j <= b.size(); ++j) d[0][j] = static_cast<int>(j);
    for (size_t i = 1; i <= a.size(); ++i) {
      for (size_t j = 1; j <= b.size(); ++j) {
        int cost = a[i - 1] == b[j - 1] ? 0 : 1;
        d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                            d[i - 1][j - 1] + cost});
      }
    }
    return d[a.size()][b.size()];
  };
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = RandomWord(&rng, 8);
    std::string b = RandomWord(&rng, 8);
    EXPECT_EQ(LevenshteinDistance(a, b), reference(a, b)) << a << "/" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringSimilarityProperty,
                         ::testing::Values(11, 29, 404, 8191));

}  // namespace
}  // namespace text
}  // namespace weber

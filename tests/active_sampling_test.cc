#include "core/active_sampling.h"

#include <gtest/gtest.h>

#include <set>

namespace weber {
namespace core {
namespace {

graph::SimilarityMatrix Matrix(int n, double value) {
  return graph::SimilarityMatrix(n, value, 1.0);
}

TEST(ActiveSamplingTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(SelectTrainingPairs({}, 5, &rng).ok());
  EXPECT_FALSE(SelectTrainingPairs({Matrix(4, 0.5)}, 0, &rng).ok());
  EXPECT_FALSE(
      SelectTrainingPairs({Matrix(4, 0.5), Matrix(5, 0.5)}, 3, &rng).ok());
}

TEST(ActiveSamplingTest, BudgetIsRespectedAndPairsValid) {
  Rng rng(2);
  const int n = 10;  // 45 pairs
  auto pairs = SelectTrainingPairs({Matrix(n, 0.5)}, 12, &rng);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 12u);
  std::set<std::pair<int, int>> unique(pairs->begin(), pairs->end());
  EXPECT_EQ(unique.size(), 12u);
  for (const auto& [a, b] : *pairs) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, b);
    EXPECT_LT(b, n);
  }
}

TEST(ActiveSamplingTest, BudgetCappedAtPairCount) {
  Rng rng(3);
  auto pairs = SelectTrainingPairs({Matrix(4, 0.5)}, 100, &rng);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 6u);
}

TEST(ActiveSamplingTest, SingleDocumentBlockYieldsNothing) {
  Rng rng(4);
  auto pairs = SelectTrainingPairs({Matrix(1, 0.5)}, 5, &rng);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(ActiveSamplingTest, CommitteeDisagreementIsPrioritized) {
  // Two functions; they agree on every pair except (0,1) where one says
  // high and the other low. With no exploration, (0,1) must be chosen
  // first.
  const int n = 6;
  graph::SimilarityMatrix a(n, 0.1, 1.0);
  graph::SimilarityMatrix b(n, 0.1, 1.0);
  a.Set(0, 1, 0.9);  // b stays low: disagreement
  // Give both functions some high pairs so the medians split the values.
  a.Set(2, 3, 0.9);
  b.Set(2, 3, 0.9);
  a.Set(4, 5, 0.9);
  b.Set(4, 5, 0.9);
  ActiveSamplingOptions options;
  options.exploration_fraction = 0.0;
  Rng rng(5);
  auto pairs = SelectTrainingPairs({a, b}, 1, &rng, options);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0], std::make_pair(0, 1));
}

TEST(ActiveSamplingTest, MarginSamplingPicksBoundaryPairs) {
  const int n = 8;
  graph::SimilarityMatrix m(n, 0.0, 1.0);
  // Most pairs at extremes; (2,5) sits exactly at the median-ish middle.
  int toggle = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      m.Set(i, j, (toggle++ % 2 == 0) ? 0.05 : 0.95);
    }
  }
  m.Set(2, 5, 0.5);
  ActiveSamplingOptions options;
  options.strategy = ActiveStrategy::kMarginSampling;
  options.exploration_fraction = 0.0;
  Rng rng(6);
  auto pairs = SelectTrainingPairs({m}, 1, &rng, options);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  // The chosen pair's value must be the one nearest the median of values.
  EXPECT_EQ((*pairs)[0], std::make_pair(2, 5));
}

TEST(ActiveSamplingTest, ExplorationQuotaAddsRandomPairs) {
  const int n = 12;
  graph::SimilarityMatrix m(n, 0.5, 1.0);  // all pairs identical: no signal
  ActiveSamplingOptions options;
  options.exploration_fraction = 1.0;  // pure random
  Rng rng_a(7), rng_b(8);
  auto first = SelectTrainingPairs({m}, 10, &rng_a, options);
  auto second = SelectTrainingPairs({m}, 10, &rng_b, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->size(), 10u);
  EXPECT_NE(*first, *second);  // different seeds pick different pairs
}

TEST(ActiveSamplingTest, DeterministicForFixedSeed) {
  const int n = 15;
  Rng noise(9);
  graph::SimilarityMatrix m(n, 0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) m.Set(i, j, noise.UniformDouble());
  }
  Rng rng_a(10), rng_b(10);
  auto first = SelectTrainingPairs({m}, 20, &rng_a);
  auto second = SelectTrainingPairs({m}, 20, &rng_b);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);
}

}  // namespace
}  // namespace core
}  // namespace weber

// ResolutionService tests: hot-path assignment, RCU snapshot publication,
// chaos behaviour of failed compactions, and the multi-writer/multi-reader
// convergence guarantee (batch re-resolution is arrival-order invariant).

#include "serve/resolution_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "graph/clustering.h"

namespace weber {
namespace serve {
namespace {

class ResolutionServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static std::unique_ptr<ResolutionService> MakeService(
      ServiceOptions options = {}) {
    auto service = ResolutionService::Create(data_->dataset,
                                             &data_->gazetteer, options);
    EXPECT_TRUE(service.ok()) << service.status();
    return std::move(service).ValueOrDie();
  }

  static const corpus::Block& Block(int i) { return data_->dataset.blocks[i]; }

  /// Assigns every document of every block in canonical order, then
  /// compacts — the single-threaded reference state.
  static void FillSequentially(ResolutionService* service) {
    for (const corpus::Block& block : data_->dataset.blocks) {
      for (int d = 0; d < block.num_documents(); ++d) {
        auto r = service->Assign(block.query, d);
        ASSERT_TRUE(r.ok()) << r.status();
      }
    }
    ASSERT_TRUE(service->CompactAll().ok());
  }

  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* ResolutionServiceTest::data_ = nullptr;

TEST_F(ResolutionServiceTest, CreateExposesOneShardPerBlock) {
  auto service = MakeService();
  ASSERT_EQ(service->block_names().size(), data_->dataset.blocks.size());
  for (const corpus::Block& block : data_->dataset.blocks) {
    auto size = service->BlockSize(block.query);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, block.num_documents());
    auto threshold = service->ShardThreshold(block.query);
    ASSERT_TRUE(threshold.ok());
    EXPECT_GT(*threshold, 0.0);
    EXPECT_LT(*threshold, 1.0);
  }
}

TEST_F(ResolutionServiceTest, UnknownBlockIsNotFound) {
  auto service = MakeService();
  EXPECT_FALSE(service->Assign("nonesuch", 0).ok());
  EXPECT_FALSE(service->Query("nonesuch", 0).ok());
  EXPECT_FALSE(service->Compact("nonesuch").ok());
  EXPECT_FALSE(service->DumpPartition("nonesuch").ok());
}

TEST_F(ResolutionServiceTest, AssignRejectsOutOfRangeDocument) {
  auto service = MakeService();
  const std::string& block = Block(0).query;
  EXPECT_FALSE(service->Assign(block, -1).ok());
  EXPECT_FALSE(service->Assign(block, Block(0).num_documents()).ok());
}

TEST_F(ResolutionServiceTest, AssignIsIdempotent) {
  auto service = MakeService();
  const std::string& block = Block(0).query;
  auto first = service->Assign(block, 0);
  ASSERT_TRUE(first.ok());
  auto again = service->Assign(block, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->cluster, first->cluster);
  EXPECT_EQ(service->Stats().assigns, 1);  // the repeat is not a new assign
}

TEST_F(ResolutionServiceTest, QueryAgainstEmptySnapshotIsUnknown) {
  auto service = MakeService();
  auto result = service->Query(Block(0).query, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cluster, -1);
  EXPECT_EQ(result->snapshot_version, 0u);
}

TEST_F(ResolutionServiceTest, CompactPublishesMonotoneVersions) {
  auto service = MakeService();
  const std::string& block = Block(0).query;
  for (int d = 0; d < 5; ++d) {
    ASSERT_TRUE(service->Assign(block, d).ok());
  }
  ASSERT_TRUE(service->Compact(block).ok());
  auto snap1 = service->Snapshot(block);
  ASSERT_TRUE(snap1.ok());
  EXPECT_EQ((*snap1)->version, 1u);
  EXPECT_EQ((*snap1)->num_documents(), 5);
  ASSERT_TRUE(service->Compact(block).ok());
  auto snap2 = service->Snapshot(block);
  ASSERT_TRUE(snap2.ok());
  EXPECT_EQ((*snap2)->version, 2u);
}

TEST_F(ResolutionServiceTest, QueryResolvesAssignedDocumentAfterCompact) {
  auto service = MakeService();
  const std::string& block = Block(0).query;
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    ASSERT_TRUE(service->Assign(block, d).ok());
  }
  ASSERT_TRUE(service->Compact(block).ok());
  auto dump = service->DumpPartition(block);
  ASSERT_TRUE(dump.ok());
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    auto q = service->Query(block, d);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->snapshot_version, 1u);
    // A document the snapshot contains must resolve to its own cluster.
    EXPECT_EQ(q->cluster, (*dump)[d]);
  }
}

TEST_F(ResolutionServiceTest, ShuffledArrivalConvergesAfterCompaction) {
  auto reference = MakeService();
  FillSequentially(reference.get());

  auto shuffled = MakeService();
  Rng rng(0xD1CE);
  for (const corpus::Block& block : data_->dataset.blocks) {
    std::vector<int> order(block.num_documents());
    for (int d = 0; d < block.num_documents(); ++d) order[d] = d;
    rng.Shuffle(&order);
    for (int d : order) {
      ASSERT_TRUE(shuffled->Assign(block.query, d).ok());
    }
  }
  ASSERT_TRUE(shuffled->CompactAll().ok());

  for (const corpus::Block& block : data_->dataset.blocks) {
    auto a = reference->DumpPartition(block.query);
    auto b = shuffled->DumpPartition(block.query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(graph::Clustering::FromLabels(*a),
              graph::Clustering::FromLabels(*b))
        << "shard " << block.query;
  }
}

TEST_F(ResolutionServiceTest, ConcurrentWritersAndReadersConverge) {
  auto reference = MakeService();
  FillSequentially(reference.get());

  auto service = MakeService();
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  std::atomic<bool> stop_readers{false};
  std::atomic<int> assign_failures{0};

  std::vector<std::thread> threads;
  // Writers: each handles the arithmetic slice d ≡ w (mod kWriters) of
  // every block, so all documents are assigned exactly once overall.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (const corpus::Block& block : data_->dataset.blocks) {
        for (int d = w; d < block.num_documents(); d += kWriters) {
          if (!service->Assign(block.query, d).ok()) {
            assign_failures.fetch_add(1);
          }
        }
      }
    });
  }
  // Readers: hammer Query concurrently; results only need to be valid.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(100 + r);
      while (!stop_readers.load()) {
        const corpus::Block& block =
            Block(static_cast<int>(rng.UniformUint64(
                data_->dataset.blocks.size())));
        int doc = static_cast<int>(
            rng.UniformUint64(static_cast<uint64_t>(block.num_documents())));
        auto q = service->Query(block.query, doc);
        ASSERT_TRUE(q.ok()) << q.status();
        ASSERT_GE(q->cluster, -1);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop_readers.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  ASSERT_EQ(assign_failures.load(), 0);

  // Quiesced: every document present. Compaction must reach the reference
  // partition regardless of the interleaving the writers produced.
  ASSERT_TRUE(service->CompactAll().ok());
  for (const corpus::Block& block : data_->dataset.blocks) {
    auto got = service->DumpPartition(block.query);
    auto want = reference->DumpPartition(block.query);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(graph::Clustering::FromLabels(*got),
              graph::Clustering::FromLabels(*want))
        << "shard " << block.query;
  }
}

TEST_F(ResolutionServiceTest, FailedCompactionKeepsServingPreviousSnapshot) {
  faults::ScopedFaultClearance clearance;
  auto service = MakeService();
  const std::string& block = Block(0).query;
  for (int d = 0; d < 6; ++d) ASSERT_TRUE(service->Assign(block, d).ok());
  ASSERT_TRUE(service->Compact(block).ok());
  auto before = service->Snapshot(block);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->version, 1u);

  // More documents arrive, then compaction starts failing.
  for (int d = 6; d < 10; ++d) ASSERT_TRUE(service->Assign(block, d).ok());
  faults::FaultInjector::Instance().ArmFromSpec("serve.compact=error");
  EXPECT_FALSE(service->Compact(block).ok());

  // The previous snapshot is still what readers see, verbatim.
  auto after = service->Snapshot(block);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->get(), before->get());
  EXPECT_EQ((*after)->version, 1u);
  auto q = service->Query(block, 0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->snapshot_version, 1u);

  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.failed_compactions, 1);
  EXPECT_EQ(stats.health.degraded_blocks, 1);
  EXPECT_TRUE(stats.health.AnyDegradation());

  // Recovery: disarm, compact again, the new documents get served.
  faults::FaultInjector::Instance().DisarmAll();
  ASSERT_TRUE(service->Compact(block).ok());
  auto recovered = service->Snapshot(block);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->num_documents(), 10);
}

TEST_F(ResolutionServiceTest, AssignFaultIsCountedAndRecoverable) {
  faults::ScopedFaultClearance clearance;
  auto service = MakeService();
  const std::string& block = Block(0).query;
  // max_triggers=1: the first assignment fails, the next succeeds.
  faults::FaultInjector::Instance().ArmFromSpec("serve.assign=error:1:0:1");
  EXPECT_FALSE(service->Assign(block, 0).ok());
  auto retry = service->Assign(block, 0);
  ASSERT_TRUE(retry.ok());
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.failed_assigns, 1);
  EXPECT_EQ(stats.assigns, 1);
}

TEST_F(ResolutionServiceTest, AssignAsyncGoesThroughTheBatcher) {
  ServiceOptions options;
  options.batcher.max_batch_size = 8;
  options.batcher.max_delay_ms = 1.0;
  auto service = MakeService(options);
  const std::string& block = Block(0).query;
  std::vector<std::future<Result<AssignResult>>> futures;
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    futures.push_back(service->AssignAsync(block, d));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_GE(r->cluster, 0);
  }
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.batched_requests, Block(0).num_documents());
  EXPECT_GE(stats.batches_flushed, 1);
  // Async and sync assignment agree on the resulting live partition.
  auto reference = MakeService();
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    ASSERT_TRUE(reference->Assign(block, d).ok());
  }
  ASSERT_TRUE(service->Compact(block).ok());
  ASSERT_TRUE(reference->Compact(block).ok());
  auto got = service->DumpPartition(block);
  auto want = reference->DumpPartition(block);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(graph::Clustering::FromLabels(*got),
            graph::Clustering::FromLabels(*want));
}

TEST_F(ResolutionServiceTest, AssignAsyncUnknownBlockFailsFast) {
  auto service = MakeService();
  auto r = service->AssignAsync("nonesuch", 0).get();
  EXPECT_FALSE(r.ok());
}

TEST_F(ResolutionServiceTest, AutoCompactionTriggersInBackground) {
  ServiceOptions options;
  options.compact_every = 4;
  auto service = MakeService(options);
  const std::string& block = Block(0).query;
  for (int d = 0; d < Block(0).num_documents(); ++d) {
    ASSERT_TRUE(service->Assign(block, d).ok());
  }
  // Background compactions race with this check; poll with a generous
  // deadline (sanitized builds on a loaded machine schedule the pool
  // thread late — normally the first few tries suffice).
  uint64_t version = 0;
  for (int tries = 0; tries < 4000 && version == 0; ++tries) {
    auto snap = service->Snapshot(block);
    ASSERT_TRUE(snap.ok());
    version = (*snap)->version;
    if (version == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_GT(version, 0u);
  EXPECT_GT(service->Stats().compactions, 0);
}

TEST_F(ResolutionServiceTest, CacheServesRepeatedScores) {
  auto service = MakeService();
  FillSequentially(service.get());
  const CacheStats after_fill = service->Stats().cache;
  // Compacting again recomputes every pairwise score; all of them must now
  // come from the cache.
  ASSERT_TRUE(service->CompactAll().ok());
  const CacheStats again = service->Stats().cache;
  EXPECT_GT(again.hits, after_fill.hits);
  EXPECT_EQ(again.misses, after_fill.misses);
}

TEST_F(ResolutionServiceTest, StatsJsonHasTheExpectedShape) {
  auto service = MakeService();
  ASSERT_TRUE(service->Assign(Block(0).query, 0).ok());
  ASSERT_TRUE(service->Compact(Block(0).query).ok());
  std::ostringstream os;
  service->WriteStatsJson(os);
  const std::string json = os.str();
  for (const char* key :
       {"\"endpoints\"", "\"assign\"", "\"query\"", "\"compact\"",
        "\"cache\"", "\"hit_rate\"", "\"counters\"", "\"snapshot_swaps\"",
        "\"shards\"", "\"health\"", "\"degraded_blocks\"", "\"p99_ms\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(json.find('\n'), std::string::npos) << "stats JSON must be one line";
}

TEST_F(ResolutionServiceTest, ExpiredDeadlineRejectsWriteBeforeMutation) {
  auto service = MakeService();
  const std::string& block = Block(0).query;
  RequestDeadline deadline = RequestDeadline::In(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(deadline.Expired());
  auto result = service->Assign(block, 0, deadline);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.assigns, 0);  // shed before any state changed
  EXPECT_GE(stats.overload.deadline_exceeded, 1);
  EXPECT_GE(stats.health.deadline_hits, 1);
}

TEST_F(ResolutionServiceTest, ExpiredDeadlineRejectsQuery) {
  auto service = MakeService();
  RequestDeadline deadline = RequestDeadline::In(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto result = service->Query(Block(0).query, 0, deadline);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(service->Stats().overload.deadline_exceeded, 1);
}

TEST_F(ResolutionServiceTest, DefaultDeadlineCoversUnstampedRequests) {
  faults::ScopedFaultClearance clearance;
  ServiceOptions options;
  options.overload.default_deadline_ms = 1.0;
  auto service = MakeService(options);
  // 20 ms of injected latency blows the 1 ms default budget.
  faults::FaultInjector::Instance().ArmFromSpec("serve.assign=latency:1:20");
  auto result = service->Assign(Block(0).query, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(service->Stats().overload.deadline_exceeded, 1);
}

TEST_F(ResolutionServiceTest, BreakerTripsOpensShedsAndRecovers) {
  faults::ScopedFaultClearance clearance;
  ServiceOptions options;
  options.overload.breaker_failure_threshold = 2;
  options.overload.breaker_cooldown_ms = 50.0;
  auto service = MakeService(options);
  const std::string& block = Block(0).query;

  // Two consecutive injected failures trip the shard's breaker.
  faults::FaultInjector::Instance().ArmFromSpec("serve.assign=error:1:0:2");
  EXPECT_FALSE(service->Assign(block, 0).ok());
  EXPECT_FALSE(service->Assign(block, 0).ok());

  // Open: writes shed instantly with Unavailable, reads still serve.
  auto shed = service->Assign(block, 0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(service->Query(block, 0).ok());
  ServiceStats open_stats = service->Stats();
  EXPECT_EQ(open_stats.overload.breaker_trips, 1);
  EXPECT_GE(open_stats.overload.breaker_sheds, 1);
  EXPECT_EQ(open_stats.overload.breakers_open, 1);
  EXPECT_GE(open_stats.health.degraded_blocks, 1);

  // After the cooldown one probe is admitted; the fault has burnt out, so
  // the probe succeeds and closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto probe = service->Assign(block, 0);
  ASSERT_TRUE(probe.ok()) << probe.status();
  ServiceStats closed_stats = service->Stats();
  EXPECT_EQ(closed_stats.overload.breaker_recoveries, 1);
  EXPECT_EQ(closed_stats.overload.breakers_open, 0);
  EXPECT_TRUE(service->Assign(block, 1).ok());
}

TEST_F(ResolutionServiceTest, PerShardPendingBudgetShedsExcessWrites) {
  ServiceOptions options;
  options.overload.max_pending_per_shard = 1;
  options.batcher.max_batch_size = 1000;
  options.batcher.max_delay_ms = 10000.0;  // parks admitted writes
  std::future<Result<AssignResult>> parked;
  {
    auto service = MakeService(options);
    const std::string& block = Block(0).query;
    parked = service->AssignAsync(block, 0);
    // The budget slot is held while the first write is parked, so the
    // second is shed without waiting.
    auto shed = service->AssignAsync(block, 1).get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
    ServiceStats stats = service->Stats();
    EXPECT_GE(stats.overload.budget_sheds, 1);
    EXPECT_TRUE(stats.overload.configured);
    // Destruction flushes the batcher and completes the parked write.
  }
  auto first = parked.get();
  EXPECT_TRUE(first.ok()) << first.status();
}

TEST_F(ResolutionServiceTest, BatcherQueueCapShedsAsyncWrites) {
  ServiceOptions options;
  options.overload.batcher_queue_cap = 1;
  options.batcher.max_batch_size = 1000;
  options.batcher.max_delay_ms = 10000.0;
  std::future<Result<AssignResult>> parked;
  {
    auto service = MakeService(options);
    const std::string& block = Block(0).query;
    parked = service->AssignAsync(block, 0);
    auto shed = service->AssignAsync(block, 1).get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
    EXPECT_GE(service->Stats().overload.batcher_sheds, 1);
  }
  auto first = parked.get();
  EXPECT_TRUE(first.ok()) << first.status();
}

TEST_F(ResolutionServiceTest, DeadlineExpiresWhileParkedInBatcher) {
  ServiceOptions options;
  options.batcher.max_batch_size = 1000;
  options.batcher.max_delay_ms = 50.0;  // flushes well after the deadline
  auto service = MakeService(options);
  auto result =
      service->AssignAsync(Block(0).query, 0, RequestDeadline::In(1.0)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  ServiceStats stats = service->Stats();
  EXPECT_GE(stats.overload.deadline_exceeded, 1);
  EXPECT_EQ(stats.assigns, 0);
}

TEST_F(ResolutionServiceTest, CompactAbandonsResultPastDeadline) {
  faults::ScopedFaultClearance clearance;
  auto service = MakeService();
  const std::string& block = Block(0).query;
  for (int d = 0; d < 6; ++d) ASSERT_TRUE(service->Assign(block, d).ok());
  ASSERT_TRUE(service->Compact(block).ok());
  auto before = service->Snapshot(block);
  ASSERT_TRUE(before.ok());

  // Injected latency pushes the compaction past its budget; the rebuilt
  // snapshot must be abandoned, never published.
  faults::FaultInjector::Instance().ArmFromSpec("serve.compact=latency:1:20");
  Status result = service->Compact(block, RequestDeadline::In(5.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kDeadlineExceeded);
  auto after = service->Snapshot(block);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->get(), before->get());
  EXPECT_GE(service->Stats().failed_compactions, 1);

  faults::FaultInjector::Instance().DisarmAll();
  ASSERT_TRUE(service->Compact(block).ok());
}

TEST_F(ResolutionServiceTest, StatsJsonOmitsOverloadSectionsWhenUnset) {
  auto service = MakeService();
  ASSERT_TRUE(service->Assign(Block(0).query, 0).ok());
  std::ostringstream os;
  service->WriteStatsJson(os);
  // Byte-identical contract: a service with no overload features
  // configured and none fired serializes exactly the pre-overload shape.
  EXPECT_EQ(os.str().find("\"overload\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"breaker\""), std::string::npos);

  ServiceOptions options;
  options.overload.breaker_failure_threshold = 3;
  auto configured = MakeService(options);
  std::ostringstream os2;
  configured->WriteStatsJson(os2);
  EXPECT_NE(os2.str().find("\"overload\""), std::string::npos);
  EXPECT_NE(os2.str().find("\"breaker\":\"closed\""), std::string::npos);
  EXPECT_NE(os2.str().find("\"total_sheds\""), std::string::npos);
}

TEST_F(ResolutionServiceTest, CreateRejectsBadInputs) {
  corpus::Dataset empty;
  EXPECT_FALSE(ResolutionService::Create(empty, &data_->gazetteer, {}).ok());
  EXPECT_FALSE(
      ResolutionService::Create(data_->dataset, nullptr, {}).ok());
  corpus::Dataset unlabeled = data_->dataset;
  for (auto& label : unlabeled.blocks[0].entity_labels) label = -1;
  EXPECT_FALSE(
      ResolutionService::Create(unlabeled, &data_->gazetteer, {}).ok());
}

}  // namespace
}  // namespace serve
}  // namespace weber

// LineServer overload behaviour over a real TCP loopback: connection-cap
// accept sheds, idle read timeouts, oversized-line containment, and the
// stats "server" section gating.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "corpus/generator.h"
#include "corpus/presets.h"
#include "serve/protocol.h"
#include "serve/resolution_service.h"

namespace weber {
namespace serve {
namespace {

class ServerOverloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
    auto service = ResolutionService::Create(data_->dataset,
                                             &data_->gazetteer, {});
    ASSERT_TRUE(service.ok()) << service.status();
    service_ = std::move(service).ValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static corpus::SyntheticData* data_;
  static ResolutionService* service_;
};

corpus::SyntheticData* ServerOverloadTest::data_ = nullptr;
ResolutionService* ServerOverloadTest::service_ = nullptr;

TEST_F(ServerOverloadTest, MaxConnectionsShedsExcessAccepts) {
  ServerOptions options;
  options.max_connections = 1;
  options.retry_after_ms = 7.0;
  LineServer server(service_, options);
  ASSERT_TRUE(server.StartTcp(0).ok());

  LineConnection first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.tcp_port()).ok());
  auto pong = first.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "ok");

  // The second connection is shed at accept time: one OVERLOADED line
  // carrying the retry hint, then EOF — without sending anything.
  LineConnection second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server.tcp_port()).ok());
  auto shed = second.ReadLine();
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(*shed, "OVERLOADED 7");
  EXPECT_FALSE(second.ReadLine().ok());  // closed
  second.Close();

  EXPECT_EQ(server.stats().accept_sheds, 1);
  EXPECT_EQ(server.stats().connections_accepted, 1);

  // Releasing the admitted connection frees the slot; the handler notices
  // EOF asynchronously, so poll until a fresh connect is served.
  first.Close();
  bool admitted = false;
  for (int tries = 0; tries < 400 && !admitted; ++tries) {
    LineConnection third;
    ASSERT_TRUE(third.Connect("127.0.0.1", server.tcp_port()).ok());
    // A shed connection answers the ping with its unsolicited OVERLOADED
    // line (or fails the send outright); an admitted one answers "ok".
    auto response = third.Call("ping");
    if (response.ok() && *response == "ok") {
      admitted = true;
    } else {
      third.Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(admitted);
  server.StopTcp();
}

TEST_F(ServerOverloadTest, ReadTimeoutDropsIdleConnection) {
  ServerOptions options;
  options.read_timeout_ms = 50.0;
  LineServer server(service_, options);
  ASSERT_TRUE(server.StartTcp(0).ok());

  LineConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.tcp_port()).ok());
  auto pong = conn.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "ok");
  // Then go idle: the server must hang up, not hold the slot forever.
  auto eof = conn.ReadLine();
  EXPECT_FALSE(eof.ok());
  // The handler thread records the timeout as it exits; poll briefly.
  long long timeouts = 0;
  for (int tries = 0; tries < 400 && timeouts == 0; ++tries) {
    timeouts = server.stats().read_timeouts;
    if (timeouts == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_GE(timeouts, 1);
  server.StopTcp();
}

TEST_F(ServerOverloadTest, OversizedLineAnsweredOnceThenResyncs) {
  LineServer server(service_, {});
  ASSERT_TRUE(server.StartTcp(0).ok());

  LineConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.tcp_port()).ok());
  // Twice the cap with no newline: the server must answer one error while
  // the line is still unterminated instead of buffering without bound.
  const std::string flood(2 * kMaxRequestLineBytes, 'a');
  ASSERT_TRUE(conn.SendLine(flood.substr(0, flood.size() - 1) + "x").ok());
  // (SendLine appended the newline that ends the discarded line.)
  auto err = conn.ReadLine();
  ASSERT_TRUE(err.ok()) << err.status();
  EXPECT_EQ(err->rfind("err InvalidArgument", 0), 0u);
  // The stream resyncs at the newline; the connection keeps working.
  auto pong = conn.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "ok");
  EXPECT_EQ(server.stats().oversized_lines, 1);
  server.StopTcp();
}

TEST_F(ServerOverloadTest, MetricsVerbStreamsMultiLinePayload) {
  LineServer server(service_, {});
  ASSERT_TRUE(server.StartTcp(0).ok());

  LineConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.tcp_port()).ok());
  // The protocol's only multi-line response: "ok <n>" then n Prometheus
  // text lines over the same connection.
  ASSERT_TRUE(conn.SendLine("metrics").ok());
  auto header = conn.ReadLine();
  ASSERT_TRUE(header.ok()) << header.status();
  ASSERT_EQ(header->rfind("ok ", 0), 0u) << *header;
  const long long advertised = std::atoll(header->c_str() + 3);
  ASSERT_GT(advertised, 0);
  int help_lines = 0;
  for (long long i = 0; i < advertised; ++i) {
    auto line = conn.ReadLine();
    ASSERT_TRUE(line.ok()) << "payload line " << i << ": " << line.status();
    if (line->rfind("# HELP", 0) == 0) ++help_lines;
  }
  EXPECT_GT(help_lines, 0);
  // Framing is exact: the connection is immediately usable again.
  auto pong = conn.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "ok");
  server.StopTcp();
}

TEST_F(ServerOverloadTest, StatsGatesTheServerSection) {
  {
    LineServer plain(service_);
    bool quit = false;
    const std::string response = plain.HandleLine("stats", &quit);
    ASSERT_EQ(response.rfind("ok ", 0), 0u);
    // Byte-identical contract: no overload features configured, no
    // counters fired — the response carries no "server" section.
    EXPECT_EQ(response.find("\"server\""), std::string::npos);
  }
  {
    ServerOptions options;
    options.max_connections = 32;
    options.listen_backlog = 128;
    LineServer configured(service_, options);
    bool quit = false;
    const std::string response = configured.HandleLine("stats", &quit);
    ASSERT_EQ(response.rfind("ok ", 0), 0u);
    EXPECT_NE(response.find("\"server\""), std::string::npos);
    EXPECT_NE(response.find("\"accept_sheds\":0"), std::string::npos);
    EXPECT_NE(response.find("\"max_connections\":32"), std::string::npos);
    EXPECT_NE(response.find("\"listen_backlog\":128"), std::string::npos);
  }
}

}  // namespace
}  // namespace serve
}  // namespace weber

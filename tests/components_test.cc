#include "graph/components.h"

#include <gtest/gtest.h>

namespace weber {
namespace graph {
namespace {

TEST(ConnectedComponentsTest, NoEdgesAllSingletons) {
  Clustering c = ConnectedComponents(4, {});
  EXPECT_EQ(c.num_clusters(), 4);
}

TEST(ConnectedComponentsTest, ChainMerges) {
  Clustering c = ConnectedComponents(5, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(c.num_clusters(), 2);
  EXPECT_TRUE(c.SameCluster(0, 2));
  EXPECT_TRUE(c.SameCluster(3, 4));
  EXPECT_FALSE(c.SameCluster(2, 3));
}

TEST(TransitiveClosureTest, ClosesDecisionGraph) {
  DecisionGraph g(6, 0, 1);
  g.Set(0, 1, 1);
  g.Set(1, 2, 1);
  g.Set(4, 5, 1);
  Clustering c = TransitiveClosure(g);
  EXPECT_EQ(c.num_clusters(), 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_TRUE(c.SameCluster(0, 2));
  EXPECT_FALSE(c.SameCluster(0, 3));
  EXPECT_TRUE(c.SameCluster(4, 5));
}

TEST(TransitiveClosureTest, EmptyGraphYieldsSingletons) {
  DecisionGraph g(3, 0, 1);
  EXPECT_EQ(TransitiveClosure(g).num_clusters(), 3);
}

TEST(TransitiveClosureTest, CompleteGraphYieldsOneCluster) {
  const int n = 7;
  DecisionGraph g(n, 1, 1);
  EXPECT_EQ(TransitiveClosure(g).num_clusters(), 1);
}

TEST(TransitiveClosureTest, ResultIsACliquePartitionOfTheClosure) {
  // The paper's entity-graph property (Section II): the output is a union
  // of disjoint cliques — i.e. the closure is idempotent.
  DecisionGraph g(8, 0, 1);
  g.Set(0, 3, 1);
  g.Set(3, 5, 1);
  g.Set(1, 2, 1);
  Clustering once = TransitiveClosure(g);
  // Rebuild a decision graph from the clustering and close again.
  DecisionGraph closed(8, 0, 1);
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      if (once.SameCluster(i, j)) closed.Set(i, j, 1);
    }
  }
  EXPECT_EQ(TransitiveClosure(closed), once);
}

TEST(CountEdgesTest, CountsSetPairs) {
  DecisionGraph g(4, 0, 1);
  EXPECT_EQ(CountEdges(g), 0);
  g.Set(0, 1, 1);
  g.Set(2, 3, 1);
  EXPECT_EQ(CountEdges(g), 2);
}

}  // namespace
}  // namespace graph
}  // namespace weber

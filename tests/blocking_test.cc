#include "core/blocking.h"

#include <gtest/gtest.h>

namespace weber {
namespace core {
namespace {

corpus::Document Doc(const std::string& id, const std::string& text) {
  return {id, "http://x.com/" + id, text};
}

TEST(BlockingTest, EmptyQueriesRejected) {
  EXPECT_EQ(BlockByQueryNames({}, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BlockingTest, GroupsByWholeWordMention) {
  std::vector<corpus::Document> docs = {
      Doc("1", "a page about alice cohen and her work"),
      Doc("2", "bob ng published a paper"),
      Doc("3", "nothing relevant here"),
      Doc("4", "cohen met ng at a conference"),
  };
  auto blocks = BlockByQueryNames(docs, {"cohen", "ng"});
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ((*blocks)[0].query, "cohen");
  ASSERT_EQ((*blocks)[0].num_documents(), 2);
  EXPECT_EQ((*blocks)[0].documents[0].id, "1");
  EXPECT_EQ((*blocks)[0].documents[1].id, "4");
  ASSERT_EQ((*blocks)[1].num_documents(), 2);
  EXPECT_EQ((*blocks)[1].documents[0].id, "2");
  EXPECT_EQ((*blocks)[1].documents[1].id, "4");  // doc 4 joins both blocks
}

TEST(BlockingTest, SubstringsDoNotMatch) {
  std::vector<corpus::Document> docs = {
      Doc("1", "strange things"),          // contains "ng" inside words only
      Doc("2", "the king sang songs"),
  };
  auto blocks = BlockByQueryNames(docs, {"ng"});
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ((*blocks)[0].num_documents(), 0);
}

TEST(BlockingTest, MatchingIsCaseInsensitive) {
  std::vector<corpus::Document> docs = {Doc("1", "Interview with COHEN.")};
  auto blocks = BlockByQueryNames(docs, {"Cohen"});
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ((*blocks)[0].num_documents(), 1);
  EXPECT_EQ((*blocks)[0].query, "cohen");
}

TEST(BlockingTest, LabelsAreUnknown) {
  std::vector<corpus::Document> docs = {Doc("1", "cohen here")};
  auto blocks = BlockByQueryNames(docs, {"cohen"});
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ((*blocks)[0].entity_labels, (std::vector<int>{-1}));
}

}  // namespace
}  // namespace core
}  // namespace weber

#include "core/decision.h"

#include <gtest/gtest.h>

namespace weber {
namespace core {
namespace {

std::vector<ml::LabeledSimilarity> SeparableTraining() {
  std::vector<ml::LabeledSimilarity> t;
  for (int i = 0; i < 20; ++i) {
    t.push_back({0.1 + 0.01 * i, false});
    t.push_back({0.7 + 0.01 * i, true});
  }
  return t;
}

/// Non-monotone profile: links live in the middle band only.
std::vector<ml::LabeledSimilarity> MidBandTraining() {
  std::vector<ml::LabeledSimilarity> t;
  for (int i = 0; i < 20; ++i) {
    t.push_back({0.15, false});
    t.push_back({0.55, true});
    t.push_back({0.85, false});
  }
  return t;
}

TEST(ThresholdCriterionTest, FitAndDecide) {
  ThresholdCriterion c;
  Rng rng(1);
  ASSERT_TRUE(c.Fit(SeparableTraining(), &rng).ok());
  EXPECT_DOUBLE_EQ(c.train_accuracy(), 1.0);
  EXPECT_FALSE(c.Decide(0.2));
  EXPECT_TRUE(c.Decide(0.8));
  EXPECT_GT(c.threshold(), 0.29);
  EXPECT_LE(c.threshold(), 0.7);
}

TEST(ThresholdCriterionTest, LinkProbabilityIsCalibrated) {
  // Above threshold: 80% links; below: 10% links.
  std::vector<ml::LabeledSimilarity> training;
  for (int i = 0; i < 10; ++i) {
    training.push_back({0.2, i == 0});              // 1/10 links below
    training.push_back({0.8, i < 8});               // 8/10 links above
  }
  ThresholdCriterion c;
  Rng rng(2);
  ASSERT_TRUE(c.Fit(training, &rng).ok());
  EXPECT_NEAR(c.LinkProbability(0.9), 0.8, 1e-9);
  EXPECT_NEAR(c.LinkProbability(0.1), 0.1, 1e-9);
}

TEST(ThresholdCriterionTest, EmptyTrainingRejected) {
  ThresholdCriterion c;
  Rng rng(3);
  EXPECT_FALSE(c.Fit({}, &rng).ok());
}

TEST(RegionCriterionTest, EqualWidthCapturesMidBand) {
  auto c = RegionCriterion::EqualWidth(10);
  Rng rng(4);
  ASSERT_TRUE(c->Fit(MidBandTraining(), &rng).ok());
  EXPECT_FALSE(c->Decide(0.15));
  EXPECT_TRUE(c->Decide(0.55));
  EXPECT_FALSE(c->Decide(0.85));
  EXPECT_DOUBLE_EQ(c->train_accuracy(), 1.0);
  EXPECT_EQ(c->name(), "regions-eq10");
}

TEST(RegionCriterionTest, ThresholdCannotCaptureMidBand) {
  // The contrast that motivates the paper: on the same data the threshold
  // rule must misclassify one of the bands.
  ThresholdCriterion t;
  Rng rng(5);
  ASSERT_TRUE(t.Fit(MidBandTraining(), &rng).ok());
  EXPECT_LT(t.train_accuracy(), 1.0);
}

TEST(RegionCriterionTest, KMeansVariant) {
  auto c = RegionCriterion::KMeans(6);
  Rng rng(6);
  ASSERT_TRUE(c->Fit(MidBandTraining(), &rng).ok());
  EXPECT_TRUE(c->Decide(0.55));
  EXPECT_FALSE(c->Decide(0.15));
  EXPECT_EQ(c->name(), "regions-km6");
  EXPECT_EQ(c->model().regions().num_regions(), 3);  // 3 distinct values
}

TEST(RegionCriterionTest, LinkProbabilityEqualsRegionRate) {
  auto c = RegionCriterion::EqualWidth(2);
  std::vector<ml::LabeledSimilarity> training = {
      {0.2, true}, {0.3, false}, {0.3, false}, {0.4, false},
      {0.8, true}, {0.9, true},  {0.7, false}, {0.85, true},
  };
  Rng rng(7);
  ASSERT_TRUE(c->Fit(training, &rng).ok());
  EXPECT_NEAR(c->LinkProbability(0.1), 0.25, 1e-9);
  EXPECT_NEAR(c->LinkProbability(0.9), 0.75, 1e-9);
}

TEST(CriteriaFactoriesTest, StandardFamilyHasThreeMembers) {
  auto criteria = MakeStandardCriteria(10, 8);
  ASSERT_EQ(criteria.size(), 3u);
  EXPECT_EQ(criteria[0]->name(), "threshold");
  EXPECT_EQ(criteria[1]->name(), "regions-eq10");
  EXPECT_EQ(criteria[2]->name(), "regions-km8");
  EXPECT_EQ(MakeThresholdOnlyCriteria().size(), 1u);

  auto factories = MakeStandardCriterionFactories(10, 8);
  ASSERT_EQ(factories.size(), 3u);
  EXPECT_EQ(factories[1]()->name(), "regions-eq10");
  EXPECT_EQ(MakeThresholdOnlyCriterionFactories().size(), 1u);
}

TEST(CrossValidatedAccuracyTest, SeparableDataScoresHigh) {
  Rng rng(8);
  auto factory = MakeThresholdOnlyCriterionFactories()[0];
  auto acc = CrossValidatedAccuracy(factory, SeparableTraining(), 3, &rng);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(CrossValidatedAccuracyTest, RandomLabelsScoreNearChance) {
  Rng rng(9);
  std::vector<ml::LabeledSimilarity> noise;
  for (int i = 0; i < 300; ++i) {
    noise.push_back({rng.UniformDouble(), rng.Bernoulli(0.5)});
  }
  auto factory = MakeStandardCriterionFactories(10, 8)[1];  // eq regions
  auto acc = CrossValidatedAccuracy(factory, noise, 3, &rng);
  ASSERT_TRUE(acc.ok());
  // In-sample a 10-region model could look much better than chance; CV
  // must not.
  EXPECT_LT(*acc, 0.62);
  EXPECT_GT(*acc, 0.38);
}

TEST(CrossValidatedAccuracyTest, TinySampleFallsBackToInSample) {
  Rng rng(10);
  std::vector<ml::LabeledSimilarity> tiny = {{0.1, false}, {0.9, true}};
  auto factory = MakeThresholdOnlyCriterionFactories()[0];
  auto acc = CrossValidatedAccuracy(factory, tiny, 3, &rng);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
}

TEST(CrossValidatedAccuracyTest, EmptySampleRejected) {
  Rng rng(11);
  auto factory = MakeThresholdOnlyCriterionFactories()[0];
  EXPECT_FALSE(CrossValidatedAccuracy(factory, {}, 3, &rng).ok());
}

}  // namespace
}  // namespace core
}  // namespace weber

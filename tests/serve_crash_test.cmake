# Crash-recovery smoke test: weber_crashtest forks weber_serve over a
# durable --data-dir, SIGKILLs it at seeded random points (sometimes with a
# request in flight), restarts it, and asserts zero acked-write loss plus
# partition equality against a single-threaded in-process reference; the
# final cycle ends with SIGTERM and a clean exit. Invoked by ctest with
# -DWEBER_BIN=<weber> -DSERVE_BIN=<weber_serve> -DCRASH_BIN=<weber_crashtest>
# -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

run(${CRASH_BIN}
    --dataset=${WORK_DIR}/dataset.txt
    --gazetteer=${WORK_DIR}/gazetteer.txt
    --serve_bin=${SERVE_BIN}
    --data_dir=${WORK_DIR}/store
    --cycles=8 --seed=20260806)

if(NOT LAST_OUTPUT MATCHES "crashtest ok:")
  message(FATAL_ERROR "crashtest did not report success:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "graceful SIGTERM exit 0")
  message(FATAL_ERROR "crashtest did not verify the graceful exit:\n${LAST_OUTPUT}")
endif()

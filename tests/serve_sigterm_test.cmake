# Graceful-shutdown test: SIGTERM lands mid-session on a durable
# weber_serve; the server must answer what it already received, flush the
# micro-batcher and WAL, print "shutdown complete" and exit 0 — and a
# restart over the same --data-dir must recover the acked writes. Invoked
# by ctest with -DWEBER_BIN=<weber> -DSERVE_BIN=<weber_serve>
# -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

# The server must be the direct background process (not a compound
# command), so $! is the server's pid and the signal reaches it. A fifo
# keeps its stdin open across the whole session.
file(WRITE "${WORK_DIR}/sigterm.sh" "\
set -eu
cd \"${WORK_DIR}\"
mkfifo in.pipe
\"${SERVE_BIN}\" --dataset=dataset.txt --gazetteer=gazetteer.txt \\
    --data-dir=store --fsync=always < in.pipe > out.txt 2> err.txt &
pid=$!
exec 3> in.pipe
printf 'assign cohen 0\\nassign cohen 1\\n' >&3
for i in $(seq 1 200); do
  if [ \"$(wc -l < out.txt)\" -ge 2 ]; then break; fi
  sleep 0.05
done
if [ \"$(wc -l < out.txt)\" -lt 2 ]; then
  echo 'server never answered the assigns'; kill -9 $pid; exit 1
fi
kill -TERM $pid
rc=0
wait $pid || rc=$?
exec 3>&-
rm -f in.pipe
if [ $rc -ne 0 ]; then
  echo \"server exited $rc on SIGTERM\"; cat err.txt; exit 1
fi
grep -q 'shutdown complete' err.txt
")
execute_process(COMMAND bash "${WORK_DIR}/sigterm.sh"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "SIGTERM session failed (${rc}):\n${out}\n${err}")
endif()

# Both assigns must have been answered "ok ..." before shutdown.
file(READ "${WORK_DIR}/out.txt" session_out)
string(REPLACE "\n" ";" lines "${session_out}")
list(GET lines 0 l_first)
list(GET lines 1 l_second)
foreach(line IN ITEMS "${l_first}" "${l_second}")
  if(NOT line MATCHES "^ok ")
    message(FATAL_ERROR "assign not acked before shutdown: '${line}'")
  endif()
endforeach()

# Restart over the same store: both acked documents must be recovered.
file(WRITE "${WORK_DIR}/session2.txt" "dump cohen\nquit\n")
execute_process(
  COMMAND ${SERVE_BIN} --dataset=${WORK_DIR}/dataset.txt
          --gazetteer=${WORK_DIR}/gazetteer.txt --data-dir=${WORK_DIR}/store
  INPUT_FILE ${WORK_DIR}/session2.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "restart session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "ok 30 0:[0-9]+ 1:[0-9]+ ")
  message(FATAL_ERROR "acked writes missing after recovery:\n${out}")
endif()

// End-to-end integration tests: the paper's headline claims, asserted as
// quality gates on the full pipeline with fixed seeds. These mirror the
// benchmark binaries but run fewer repetitions.

#include <gtest/gtest.h>

#include <set>

#include "core/weber.h"

namespace weber {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto www = corpus::SyntheticWebGenerator(corpus::Www05Config()).Generate();
    ASSERT_TRUE(www.ok()) << www.status();
    www_ = new corpus::SyntheticData(std::move(www).ValueOrDie());

    runner_ = new core::ExperimentRunner(&www_->dataset, &www_->gazetteer,
                                         /*num_runs=*/2, /*seed=*/0x17);
    ASSERT_TRUE(runner_->Prepare().ok());
  }
  static void TearDownTestSuite() {
    delete runner_;
    runner_ = nullptr;
    delete www_;
    www_ = nullptr;
  }

  static core::ExperimentResult Run(const std::string& label,
                                    bool regions,
                                    core::CombinationStrategy combo =
                                        core::CombinationStrategy::kBestGraph) {
    core::ExperimentConfig config;
    config.label = label;
    config.options.use_region_criteria = regions;
    config.options.combination = combo;
    auto result = runner_->Run(config);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).ValueOrDie();
  }

  static corpus::SyntheticData* www_;
  static core::ExperimentRunner* runner_;
};

corpus::SyntheticData* IntegrationTest::www_ = nullptr;
core::ExperimentRunner* IntegrationTest::runner_ = nullptr;

TEST_F(IntegrationTest, RegionCriteriaBeatThresholdOnly) {
  // The paper's central claim (Table II: C10 > I10 on every metric).
  core::ExperimentResult i10 = Run("I10", /*regions=*/false);
  core::ExperimentResult c10 = Run("C10", /*regions=*/true);
  EXPECT_GT(c10.overall.fp_measure, i10.overall.fp_measure);
  EXPECT_GT(c10.overall.f_measure, i10.overall.f_measure);
  EXPECT_GT(c10.overall.rand_index, i10.overall.rand_index);
}

TEST_F(IntegrationTest, AbsoluteQualityIsInThePaperBallpark) {
  core::ExperimentResult c10 = Run("C10", /*regions=*/true);
  // Paper: 0.8774 Fp on WWW'05. Different corpus, same regime.
  EXPECT_GT(c10.overall.fp_measure, 0.80);
  EXPECT_GT(c10.overall.f_measure, 0.70);
  core::ExperimentResult i10 = Run("I10", /*regions=*/false);
  // Paper: 0.8232; ours must at least clear a loose floor.
  EXPECT_GT(i10.overall.fp_measure, 0.72);
}

TEST_F(IntegrationTest, WeightedAverageLandsBetweenIAndC) {
  core::ExperimentResult i10 = Run("I10", /*regions=*/false);
  core::ExperimentResult c10 = Run("C10", /*regions=*/true);
  core::ExperimentResult w =
      Run("W", /*regions=*/true, core::CombinationStrategy::kWeightedAverage);
  EXPECT_GT(w.overall.fp_measure, i10.overall.fp_measure - 0.02);
  EXPECT_LT(w.overall.fp_measure, c10.overall.fp_measure + 0.03);
}

TEST_F(IntegrationTest, CombinedBeatsEveryIndividualFunction) {
  // Figure 2's headline: the black combined bar tops all ten.
  core::ExperimentResult combined = Run("combined", /*regions=*/true);
  for (const std::string& name : core::kSubsetI10) {
    core::ExperimentConfig config;
    config.label = name;
    config.options.function_names = {name};
    config.options.use_region_criteria = false;
    auto result = runner_->Run(config);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(combined.overall.fp_measure, result->overall.fp_measure)
        << "combined must beat " << name;
  }
}

TEST_F(IntegrationTest, MoreFunctionsDoNotHurt) {
  // Table II row shape: I4 <= I7 <= I10 (within tolerance), same for C.
  auto run_subset = [&](const std::string& label,
                        const std::vector<std::string>& fns, bool regions) {
    core::ExperimentConfig config;
    config.label = label;
    config.options.function_names = fns;
    config.options.use_region_criteria = regions;
    auto result = runner_->Run(config);
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie().overall.fp_measure;
  };
  double i4 = run_subset("I4", core::kSubsetI4, false);
  double i10 = run_subset("I10", core::kSubsetI10, false);
  EXPECT_GT(i10, i4 - 0.02);
  double c4 = run_subset("C4", core::kSubsetI4, true);
  double c10 = run_subset("C10", core::kSubsetI10, true);
  EXPECT_GT(c10, c4 - 0.02);
}

TEST_F(IntegrationTest, PerNameWinnersRotate) {
  // Table III's observation: no single function is best for every name.
  std::vector<core::ExperimentResult> singles;
  for (const char* name : {"F2", "F5", "F7", "F8"}) {
    core::ExperimentConfig config;
    config.label = name;
    config.options.function_names = {name};
    config.options.use_region_criteria = false;
    auto result = runner_->Run(config);
    ASSERT_TRUE(result.ok());
    singles.push_back(std::move(result).ValueOrDie());
  }
  std::set<size_t> winners;
  for (size_t block = 0; block < www_->dataset.blocks.size(); ++block) {
    size_t best = 0;
    for (size_t f = 1; f < singles.size(); ++f) {
      if (singles[f].per_block[block].fp_measure >
          singles[best].per_block[block].fp_measure) {
        best = f;
      }
    }
    winners.insert(best);
  }
  EXPECT_GE(winners.size(), 2u) << "a single function dominated every name";
}

TEST_F(IntegrationTest, WepsIsHarderThanWww) {
  auto weps_data =
      corpus::SyntheticWebGenerator(corpus::WepsConfig()).Generate();
  ASSERT_TRUE(weps_data.ok());
  core::ExperimentRunner weps_runner(&weps_data->dataset,
                                     &weps_data->gazetteer, 1, 0x18);
  ASSERT_TRUE(weps_runner.Prepare().ok());
  core::ExperimentConfig c10;
  c10.label = "C10";
  auto weps = weps_runner.Run(c10);
  ASSERT_TRUE(weps.ok());
  core::ExperimentResult www_c10 = Run("C10", /*regions=*/true);
  EXPECT_LT(weps->overall.fp_measure, www_c10.overall.fp_measure + 0.02);
}

}  // namespace
}  // namespace weber

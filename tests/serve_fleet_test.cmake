# Fleet kill drill smoke test: weber_crashtest --fleet forks three durable
# weber_serve backends behind an in-process weber::router, storms assigns
# through the router, SIGKILLs the backend that owns the first block
# mid-storm, restarts it on the same port, and asserts zero acked-write
# loss, reads served throughout the outage, and a clean SIGTERM exit for
# every backend. Invoked by ctest with -DWEBER_BIN=<weber>
# -DSERVE_BIN=<weber_serve> -DCRASH_BIN=<weber_crashtest>
# -DWORK_DIR=<scratch dir>.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

run(${WEBER_BIN} generate --preset=tiny --out=${WORK_DIR})

run(${CRASH_BIN}
    --dataset=${WORK_DIR}/dataset.txt
    --gazetteer=${WORK_DIR}/gazetteer.txt
    --serve_bin=${SERVE_BIN}
    --data_dir=${WORK_DIR}/store
    --fleet=3 --writers=4 --kill_at=0.3 --seed=20260809
    --out=${WORK_DIR}/BENCH_fleet.json)

if(NOT LAST_OUTPUT MATCHES "fleet drill ok:")
  message(FATAL_ERROR "fleet drill did not report success:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "graceful SIGTERM exit 0 x3")
  message(FATAL_ERROR "fleet drill did not verify the graceful exits:\n${LAST_OUTPUT}")
endif()
if(NOT EXISTS "${WORK_DIR}/BENCH_fleet.json")
  message(FATAL_ERROR "fleet drill did not write BENCH_fleet.json")
endif()
file(READ "${WORK_DIR}/BENCH_fleet.json" BENCH)
if(NOT BENCH MATCHES "\"lost\":0,")
  message(FATAL_ERROR "BENCH_fleet.json does not record zero loss:\n${BENCH}")
endif()
# The drill must record how long the victim took to come back and how many
# probe cycles the router spent noticing + re-admitting it (both nonzero:
# a zero would mean the outage was never actually detected).
if(NOT BENCH MATCHES "\"recovery_ms\":[0-9]+")
  message(FATAL_ERROR "BENCH_fleet.json does not record recovery_ms:\n${BENCH}")
endif()
if(NOT BENCH MATCHES "\"detection_ms\":[0-9]+")
  message(FATAL_ERROR "BENCH_fleet.json does not record detection_ms:\n${BENCH}")
endif()
if(BENCH MATCHES "\"probe_cycles_during_outage\":0[,}]")
  message(FATAL_ERROR "fleet drill detected the outage without a single probe cycle:\n${BENCH}")
endif()
if(NOT BENCH MATCHES "\"probe_cycles_during_outage\":[0-9]+")
  message(FATAL_ERROR "BENCH_fleet.json does not record probe cycles:\n${BENCH}")
endif()
if(NOT BENCH MATCHES "\"probe_cycles_total\":[0-9]+")
  message(FATAL_ERROR "BENCH_fleet.json does not record probe_cycles_total:\n${BENCH}")
endif()

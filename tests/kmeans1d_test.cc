#include "ml/kmeans1d.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace weber {
namespace ml {
namespace {

TEST(NearestCenterTest, PicksClosest) {
  std::vector<double> centers = {0.1, 0.5, 0.9};
  EXPECT_EQ(NearestCenter(centers, 0.0), 0);
  EXPECT_EQ(NearestCenter(centers, 0.12), 0);
  EXPECT_EQ(NearestCenter(centers, 0.31), 1);
  EXPECT_EQ(NearestCenter(centers, 0.71), 2);
  EXPECT_EQ(NearestCenter(centers, 1.0), 2);
}

TEST(NearestCenterTest, TiesBreakLow) {
  std::vector<double> centers = {0.2, 0.4};
  EXPECT_EQ(NearestCenter(centers, 0.3), 0);
}

TEST(NearestCenterTest, SingleCenter) {
  EXPECT_EQ(NearestCenter({0.5}, -3.0), 0);
  EXPECT_EQ(NearestCenter({0.5}, 3.0), 0);
}

TEST(KMeans1DTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(KMeans1D({}, 2, &rng).ok());
  EXPECT_FALSE(KMeans1D({1.0}, 0, &rng).ok());
}

TEST(KMeans1DTest, RecoversWellSeparatedClusters) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(0.1 + rng.UniformDouble(-0.02, 0.02));
    values.push_back(0.5 + rng.UniformDouble(-0.02, 0.02));
    values.push_back(0.9 + rng.UniformDouble(-0.02, 0.02));
  }
  auto result = KMeans1D(values, 3, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centers.size(), 3u);
  EXPECT_NEAR(result->centers[0], 0.1, 0.03);
  EXPECT_NEAR(result->centers[1], 0.5, 0.03);
  EXPECT_NEAR(result->centers[2], 0.9, 0.03);
}

TEST(KMeans1DTest, CentersAreAscending) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.UniformDouble());
  auto result = KMeans1D(values, 8, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::is_sorted(result->centers.begin(), result->centers.end()));
}

TEST(KMeans1DTest, KCappedAtDistinctValues) {
  Rng rng(4);
  std::vector<double> values = {0.2, 0.2, 0.2, 0.8, 0.8};
  auto result = KMeans1D(values, 10, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centers.size(), 2u);
  EXPECT_NEAR(result->centers[0], 0.2, 1e-9);
  EXPECT_NEAR(result->centers[1], 0.8, 1e-9);
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeans1DTest, AllIdenticalValues) {
  Rng rng(5);
  std::vector<double> values(20, 0.5);
  auto result = KMeans1D(values, 4, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centers.size(), 1u);
  EXPECT_DOUBLE_EQ(result->centers[0], 0.5);
}

TEST(KMeans1DTest, KOneGivesMean) {
  Rng rng(6);
  std::vector<double> values = {0.0, 0.5, 1.0};
  auto result = KMeans1D(values, 1, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centers.size(), 1u);
  EXPECT_NEAR(result->centers[0], 0.5, 1e-9);
}

TEST(KMeans1DTest, InertiaIsSumOfSquaredResiduals) {
  Rng rng(7);
  std::vector<double> values = {0.0, 0.2, 0.8, 1.0};
  auto result = KMeans1D(values, 2, &rng);
  ASSERT_TRUE(result.ok());
  // Optimal: centers {0.1, 0.9}, inertia 4 * 0.01 = 0.04.
  ASSERT_EQ(result->centers.size(), 2u);
  EXPECT_NEAR(result->inertia, 0.04, 1e-9);
}

TEST(KMeans1DTest, MoreClustersNeverIncreaseInertia) {
  Rng rng(8);
  std::vector<double> values;
  for (int i = 0; i < 150; ++i) values.push_back(rng.UniformDouble());
  double prev = 1e18;
  for (int k : {1, 2, 4, 8}) {
    auto result = KMeans1D(values, k, &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, prev + 1e-9) << "k=" << k;
    prev = result->inertia;
  }
}

}  // namespace
}  // namespace ml
}  // namespace weber

#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace weber {
namespace eval {
namespace {

using graph::Clustering;

TEST(MetricsTest, PerfectPredictionScoresOneEverywhere) {
  Clustering truth = Clustering::FromLabels({0, 0, 1, 1, 2});
  auto r = Evaluate(truth, truth);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->precision, 1.0);
  EXPECT_DOUBLE_EQ(r->recall, 1.0);
  EXPECT_DOUBLE_EQ(r->f_measure, 1.0);
  EXPECT_DOUBLE_EQ(r->purity, 1.0);
  EXPECT_DOUBLE_EQ(r->inverse_purity, 1.0);
  EXPECT_DOUBLE_EQ(r->fp_measure, 1.0);
  EXPECT_DOUBLE_EQ(r->rand_index, 1.0);
  EXPECT_DOUBLE_EQ(r->bcubed_f, 1.0);
  EXPECT_EQ(r->false_positives, 0);
  EXPECT_EQ(r->false_negatives, 0);
}

TEST(MetricsTest, SizeMismatchRejected) {
  auto r = Evaluate(Clustering::FromLabels({0, 1}),
                    Clustering::FromLabels({0, 1, 2}));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MetricsTest, EmptyRejected) {
  auto r = Evaluate(Clustering::FromLabels({}), Clustering::FromLabels({}));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MetricsTest, AllSingletonsPredictionOnMergedTruth) {
  // truth: one cluster of 4; prediction: singletons.
  Clustering truth = Clustering::OneCluster(4);
  Clustering pred = Clustering::Singletons(4);
  auto r = Evaluate(truth, pred);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->true_positives, 0);
  EXPECT_EQ(r->false_negatives, 6);
  EXPECT_DOUBLE_EQ(r->precision, 1.0);  // vacuous precision
  EXPECT_DOUBLE_EQ(r->recall, 0.0);
  EXPECT_DOUBLE_EQ(r->f_measure, 0.0);
  EXPECT_DOUBLE_EQ(r->purity, 1.0);
  EXPECT_DOUBLE_EQ(r->inverse_purity, 0.25);
  EXPECT_NEAR(r->fp_measure, 2 * 1.0 * 0.25 / 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(r->rand_index, 0.0);
}

TEST(MetricsTest, OneClusterPredictionOnSingletonTruth) {
  Clustering truth = Clustering::Singletons(4);
  Clustering pred = Clustering::OneCluster(4);
  auto r = Evaluate(truth, pred);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->precision, 0.0);
  EXPECT_DOUBLE_EQ(r->recall, 1.0);  // vacuous recall
  EXPECT_DOUBLE_EQ(r->purity, 0.25);
  EXPECT_DOUBLE_EQ(r->inverse_purity, 1.0);
  EXPECT_DOUBLE_EQ(r->rand_index, 0.0);
}

TEST(MetricsTest, HandComputedContingencyExample) {
  // truth:      {0,1,2} {3,4} ; prediction: {0,1} {2,3} {4}
  Clustering truth = Clustering::FromLabels({0, 0, 0, 1, 1});
  Clustering pred = Clustering::FromLabels({0, 0, 1, 1, 2});
  auto r = Evaluate(truth, pred);
  ASSERT_TRUE(r.ok());
  // Pairs: total 10. same_truth = 3 + 1 = 4. same_pred = 1 + 1 = 2.
  // same_both: (0,1) co-clustered in both = 1.
  EXPECT_EQ(r->true_positives, 1);
  EXPECT_EQ(r->false_positives, 1);   // (2,3)
  EXPECT_EQ(r->false_negatives, 3);   // (0,2),(1,2),(3,4)
  EXPECT_EQ(r->true_negatives, 5);
  EXPECT_DOUBLE_EQ(r->precision, 0.5);
  EXPECT_DOUBLE_EQ(r->recall, 0.25);
  EXPECT_NEAR(r->f_measure, 2 * 0.5 * 0.25 / 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(r->rand_index, 0.6);
  // purity: best-overlap per predicted cluster: {0,1}->2, {2,3}->1, {4}->1
  // => 4/5. inverse purity: per truth cluster: {0,1,2}->2, {3,4}->1 => 3/5.
  EXPECT_DOUBLE_EQ(r->purity, 0.8);
  EXPECT_DOUBLE_EQ(r->inverse_purity, 0.6);
  EXPECT_NEAR(r->fp_measure, 2 * 0.8 * 0.6 / 1.4, 1e-12);
  // B-cubed precision: items 0,1: 2/2; item 2: 1/2; item 3: 1/2; item 4: 1.
  EXPECT_NEAR(r->bcubed_precision, (1 + 1 + 0.5 + 0.5 + 1) / 5.0, 1e-12);
  // B-cubed recall: items 0,1: 2/3; item 2: 1/3; item 3: 1/2; item 4: 1/2.
  EXPECT_NEAR(r->bcubed_recall, (2.0 / 3 + 2.0 / 3 + 1.0 / 3 + 0.5 + 0.5) / 5,
              1e-12);
}

TEST(MetricsTest, SingleItemIsPerfect) {
  auto r = Evaluate(Clustering::FromLabels({0}), Clustering::FromLabels({0}));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->rand_index, 1.0);
  EXPECT_DOUBLE_EQ(r->fp_measure, 1.0);
}

TEST(MetricsTest, MetricByNameLookup) {
  MetricReport r;
  r.fp_measure = 0.1;
  r.f_measure = 0.2;
  r.rand_index = 0.3;
  r.bcubed_f = 0.4;
  EXPECT_DOUBLE_EQ(MetricByName(r, "Fp"), 0.1);
  EXPECT_DOUBLE_EQ(MetricByName(r, "F"), 0.2);
  EXPECT_DOUBLE_EQ(MetricByName(r, "Rand"), 0.3);
  EXPECT_DOUBLE_EQ(MetricByName(r, "B3F"), 0.4);
  EXPECT_DOUBLE_EQ(MetricByName(r, "unknown"), 0.0);
}

TEST(MetricsTest, MeanReportAverages) {
  MetricReport a, b;
  a.fp_measure = 0.4;
  b.fp_measure = 0.8;
  a.true_positives = 3;
  b.true_positives = 5;
  auto mean = MeanReport({a, b});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean->fp_measure, 0.6);
  EXPECT_EQ(mean->true_positives, 8);  // counts are summed
  EXPECT_FALSE(MeanReport({}).ok());
}

// Property suite: bounds and identities over random clusterings.
class MetricsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsProperty, BoundsAndConsistency) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    int n = rng.UniformInt(1, 60);
    std::vector<int> t(n), p(n);
    for (int i = 0; i < n; ++i) {
      t[i] = rng.UniformInt(0, 8);
      p[i] = rng.UniformInt(0, 8);
    }
    auto truth = Clustering::FromLabels(t);
    auto pred = Clustering::FromLabels(p);
    auto r = Evaluate(truth, pred);
    ASSERT_TRUE(r.ok());
    for (double m : {r->precision, r->recall, r->f_measure, r->purity,
                     r->inverse_purity, r->fp_measure, r->rand_index,
                     r->bcubed_precision, r->bcubed_recall, r->bcubed_f}) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
    // Pair counts tile the pair universe.
    EXPECT_EQ(r->true_positives + r->false_positives + r->false_negatives +
                  r->true_negatives,
              static_cast<long long>(n) * (n - 1) / 2);
    // Purity is symmetric to inverse purity under truth<->prediction swap.
    auto swapped = Evaluate(pred, truth);
    ASSERT_TRUE(swapped.ok());
    EXPECT_DOUBLE_EQ(r->purity, swapped->inverse_purity);
    EXPECT_DOUBLE_EQ(r->inverse_purity, swapped->purity);
    EXPECT_DOUBLE_EQ(r->fp_measure, swapped->fp_measure);
    EXPECT_DOUBLE_EQ(r->rand_index, swapped->rand_index);
    // Fp is the harmonic mean of purity and inverse purity.
    double hm = (r->purity + r->inverse_purity) > 0
                    ? 2 * r->purity * r->inverse_purity /
                          (r->purity + r->inverse_purity)
                    : 0.0;
    EXPECT_NEAR(r->fp_measure, hm, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace eval
}  // namespace weber

// Durability-layer edge cases: WAL record encoding, torn-tail truncation at
// every byte offset, single-bit corruption in the header vs the payload,
// replay under an armed fault point, snapshot file validation, and ShardLog
// recovery (newest-valid-snapshot fallback, WAL restart).

#include "durability/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "durability/shard_log.h"
#include "durability/snapshot_file.h"

namespace weber {
namespace durability {
namespace {

std::string TestPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "weber_wal_" + name + "_" +
                           std::to_string(::getpid());
  (void)RemoveFileIfExists(path);
  return path;
}

std::string ReadRaw(const std::string& path) {
  auto contents = ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status();
  return contents.ok() ? contents.ValueOrDie() : std::string();
}

void WriteRaw(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good());
}

/// Replays `path`, decoding every payload into `out`.
Result<WalReplayResult> ReplayInto(const std::string& path,
                                   std::vector<WalRecord>* out) {
  return ReplayWal(path, [out](std::string_view payload) -> Status {
    WEBER_ASSIGN_OR_RETURN(WalRecord record, WalRecord::Decode(payload));
    out->push_back(std::move(record));
    return Status::OK();
  });
}

/// Writes `docs.size()` assign records and returns the cumulative file size
/// after each one (the record boundaries a torn tail must snap back to).
std::vector<uint64_t> WriteAssignLog(const std::string& path,
                                     const std::vector<int32_t>& docs) {
  std::vector<uint64_t> boundaries;
  auto writer = WalWriter::Open(path, FsyncPolicy::kNever, 0);
  EXPECT_TRUE(writer.ok()) << writer.status();
  for (int32_t doc : docs) {
    EXPECT_TRUE(
        writer.ValueOrDie()->Append(WalRecord::Assign(doc).Encode()).ok());
    boundaries.push_back(writer.ValueOrDie()->bytes());
  }
  return boundaries;
}

TEST(FsyncPolicyTest, ParseAndNameRoundTrip) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    auto parsed = ParseFsyncPolicy(FsyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), policy);
  }
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_FALSE(ParseFsyncPolicy("").ok());
}

TEST(WalRecordTest, EncodeDecodeRoundTripAllTypes) {
  const WalRecord assign = WalRecord::Assign(42);
  auto assign2 = WalRecord::Decode(assign.Encode());
  ASSERT_TRUE(assign2.ok());
  EXPECT_EQ(assign2.ValueOrDie().type, WalRecord::Type::kAssign);
  EXPECT_EQ(assign2.ValueOrDie().doc, 42);

  const WalRecord adopt =
      WalRecord::AdoptPartition(7, {0, 1, 1, 0, 2});
  auto adopt2 = WalRecord::Decode(adopt.Encode());
  ASSERT_TRUE(adopt2.ok());
  EXPECT_EQ(adopt2.ValueOrDie().type, WalRecord::Type::kAdoptPartition);
  EXPECT_EQ(adopt2.ValueOrDie().version, 7u);
  EXPECT_EQ(adopt2.ValueOrDie().labels, (std::vector<int32_t>{0, 1, 1, 0, 2}));

  const WalRecord published = WalRecord::SnapshotPublished(9);
  auto published2 = WalRecord::Decode(published.Encode());
  ASSERT_TRUE(published2.ok());
  EXPECT_EQ(published2.ValueOrDie().type,
            WalRecord::Type::kSnapshotPublished);
  EXPECT_EQ(published2.ValueOrDie().version, 9u);
}

TEST(WalRecordTest, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(WalRecord::Decode("").ok());
  EXPECT_FALSE(WalRecord::Decode(std::string(1, '\x7f')).ok());  // bad type
  // An adopt record truncated mid-labels.
  std::string adopt = WalRecord::AdoptPartition(1, {1, 2, 3}).Encode();
  EXPECT_FALSE(WalRecord::Decode(
                   std::string_view(adopt.data(), adopt.size() - 2))
                   .ok());
}

TEST(WalReplayTest, MissingFileIsAValidEmptyLog) {
  std::vector<WalRecord> records;
  auto replay = ReplayInto(TestPath("missing") + ".nope", &records);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay.ValueOrDie().records, 0);
  EXPECT_EQ(replay.ValueOrDie().valid_bytes, 0u);
  EXPECT_FALSE(replay.ValueOrDie().torn_tail);
  EXPECT_FALSE(replay.ValueOrDie().corrupt);
}

TEST(WalReplayTest, EmptyFileIsAValidEmptyLog) {
  const std::string path = TestPath("empty");
  WriteRaw(path, "");
  std::vector<WalRecord> records;
  auto replay = ReplayInto(path, &records);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay.ValueOrDie().records, 0);
  EXPECT_FALSE(replay.ValueOrDie().torn_tail);
}

TEST(WalReplayTest, AppendThenReplayRoundTrip) {
  const std::string path = TestPath("roundtrip");
  const std::vector<int32_t> docs = {5, 0, 9, 3, 3, 12};
  const std::vector<uint64_t> boundaries = WriteAssignLog(path, docs);
  std::vector<WalRecord> records;
  auto replay = ReplayInto(path, &records);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay.ValueOrDie().records,
            static_cast<long long>(docs.size()));
  EXPECT_EQ(replay.ValueOrDie().valid_bytes, boundaries.back());
  EXPECT_FALSE(replay.ValueOrDie().torn_tail);
  EXPECT_FALSE(replay.ValueOrDie().corrupt);
  ASSERT_EQ(records.size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(records[i].doc, docs[i]) << i;
  }
}

TEST(WalReplayTest, TornTailSweepAtEveryByteOffset) {
  // Truncate a three-record log at every possible length. The verified
  // prefix must always snap back to the last whole record, silently.
  const std::string path = TestPath("torn_sweep");
  const std::vector<uint64_t> boundaries =
      WriteAssignLog(path, {1, 2, 3});
  const std::string full = ReadRaw(path);
  ASSERT_EQ(full.size(), boundaries.back());
  for (size_t len = 0; len <= full.size(); ++len) {
    WriteRaw(path, full.substr(0, len));
    std::vector<WalRecord> records;
    auto replay = ReplayInto(path, &records);
    ASSERT_TRUE(replay.ok()) << "len " << len << ": " << replay.status();
    long long whole = 0;
    uint64_t valid = 0;
    for (uint64_t b : boundaries) {
      if (b <= len) {
        ++whole;
        valid = b;
      }
    }
    EXPECT_EQ(replay.ValueOrDie().records, whole) << "len " << len;
    EXPECT_EQ(replay.ValueOrDie().valid_bytes, valid) << "len " << len;
    EXPECT_EQ(replay.ValueOrDie().torn_tail, valid != len) << "len " << len;
    EXPECT_FALSE(replay.ValueOrDie().corrupt) << "len " << len;
    EXPECT_EQ(records.size(), static_cast<size_t>(whole)) << "len " << len;
  }
}

TEST(WalReplayTest, SingleBitFlipInLengthHeaderStopsAtValidPrefix) {
  const std::string path = TestPath("flip_len");
  const std::vector<uint64_t> boundaries = WriteAssignLog(path, {1, 2, 3});
  const std::string full = ReadRaw(path);
  // Flip every bit of the second record's 4-byte length field in turn. A
  // flip that shrinks the length makes the CRC check read the wrong bytes
  // (corrupt); a flip that grows it past the file is a torn tail. Either
  // way replay must stop exactly at the first record.
  for (int bit = 0; bit < 32; ++bit) {
    std::string damaged = full;
    const size_t at = boundaries[0] + static_cast<size_t>(bit / 8);
    damaged[at] = static_cast<char>(damaged[at] ^ (1 << (bit % 8)));
    WriteRaw(path, damaged);
    std::vector<WalRecord> records;
    auto replay = ReplayInto(path, &records);
    ASSERT_TRUE(replay.ok()) << "bit " << bit << ": " << replay.status();
    EXPECT_EQ(replay.ValueOrDie().records, 1) << "bit " << bit;
    EXPECT_EQ(replay.ValueOrDie().valid_bytes, boundaries[0])
        << "bit " << bit;
    EXPECT_TRUE(replay.ValueOrDie().torn_tail ||
                replay.ValueOrDie().corrupt)
        << "bit " << bit;
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].doc, 1);
  }
}

TEST(WalReplayTest, SingleBitFlipInCrcOrPayloadIsCorruption) {
  const std::string path = TestPath("flip_payload");
  const std::vector<uint64_t> boundaries = WriteAssignLog(path, {1, 2, 3});
  const std::string full = ReadRaw(path);
  const size_t record_size = boundaries[0];
  // Every bit of the second record past the length field: the stored CRC
  // (bytes 4..7) and the payload itself. All must be flagged corrupt, with
  // replay stopping after the first record.
  for (size_t offset = 4; offset < record_size; ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = full;
      const size_t at = boundaries[0] + offset;
      damaged[at] = static_cast<char>(damaged[at] ^ (1 << bit));
      WriteRaw(path, damaged);
      std::vector<WalRecord> records;
      auto replay = ReplayInto(path, &records);
      ASSERT_TRUE(replay.ok()) << replay.status();
      EXPECT_TRUE(replay.ValueOrDie().corrupt)
          << "offset " << offset << " bit " << bit;
      EXPECT_EQ(replay.ValueOrDie().records, 1)
          << "offset " << offset << " bit " << bit;
      EXPECT_EQ(replay.ValueOrDie().valid_bytes, boundaries[0]);
    }
  }
}

TEST(WalReplayTest, WriterTruncatesTheInvalidTailOnOpen) {
  const std::string path = TestPath("truncate_on_open");
  WriteAssignLog(path, {1, 2});
  // Simulate a crash mid-append: garbage that parses as a partial header.
  WriteRaw(path, ReadRaw(path) + std::string("\x30\x00", 2));
  std::vector<WalRecord> first;
  auto replay = ReplayInto(path, &first);
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay.ValueOrDie().torn_tail);

  auto writer = WalWriter::Open(path, FsyncPolicy::kNever,
                                replay.ValueOrDie().valid_bytes);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(
      writer.ValueOrDie()->Append(WalRecord::Assign(3).Encode()).ok());
  writer.ValueOrDie().reset();

  std::vector<WalRecord> second;
  auto again = ReplayInto(path, &second);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.ValueOrDie().torn_tail);
  EXPECT_FALSE(again.ValueOrDie().corrupt);
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(second[2].doc, 3);
}

TEST(WalReplayTest, RestartEmptiesTheLog) {
  const std::string path = TestPath("restart");
  auto writer = WalWriter::Open(path, FsyncPolicy::kNever, 0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      writer.ValueOrDie()->Append(WalRecord::Assign(1).Encode()).ok());
  ASSERT_TRUE(writer.ValueOrDie()->Restart().ok());
  EXPECT_EQ(writer.ValueOrDie()->bytes(), 0u);
  ASSERT_TRUE(
      writer.ValueOrDie()->Append(WalRecord::Assign(2).Encode()).ok());
  writer.ValueOrDie().reset();
  std::vector<WalRecord> records;
  auto replay = ReplayInto(path, &records);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].doc, 2);
}

TEST(WalFaultTest, AppendFaultFailsWithoutWritingBytes) {
  faults::ScopedFaultClearance clearance;
  const std::string path = TestPath("append_fault");
  auto writer = WalWriter::Open(path, FsyncPolicy::kNever, 0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(faults::FaultInjector::Instance()
                  .ArmFromSpec("serve.wal.append=ioerror")
                  .ok());
  EXPECT_FALSE(
      writer.ValueOrDie()->Append(WalRecord::Assign(1).Encode()).ok());
  EXPECT_EQ(writer.ValueOrDie()->bytes(), 0u);
  faults::FaultInjector::Instance().DisarmAll();
  EXPECT_TRUE(
      writer.ValueOrDie()->Append(WalRecord::Assign(1).Encode()).ok());
}

TEST(WalFaultTest, FsyncFaultSurfacesUnderAlwaysPolicy) {
  faults::ScopedFaultClearance clearance;
  const std::string path = TestPath("fsync_fault");
  auto writer = WalWriter::Open(path, FsyncPolicy::kAlways, 0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(faults::FaultInjector::Instance()
                  .ArmFromSpec("serve.wal.fsync=ioerror")
                  .ok());
  EXPECT_FALSE(
      writer.ValueOrDie()->Append(WalRecord::Assign(1).Encode()).ok());
  faults::FaultInjector::Instance().DisarmAll();
}

TEST(WalFaultTest, ReplayFaultAbortsRecovery) {
  faults::ScopedFaultClearance clearance;
  const std::string path = TestPath("replay_fault");
  WriteAssignLog(path, {1, 2, 3});
  ASSERT_TRUE(faults::FaultInjector::Instance()
                  .ArmFromSpec("serve.wal.replay=ioerror")
                  .ok());
  std::vector<WalRecord> records;
  EXPECT_FALSE(ReplayInto(path, &records).ok());
  faults::FaultInjector::Instance().DisarmAll();
  records.clear();
  auto replay = ReplayInto(path, &records);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(records.size(), 3u);
}

ShardSnapshotData MakeSnapshot(uint64_t version) {
  ShardSnapshotData data;
  data.version = version;
  data.threshold = 0.375;
  data.canonical_ids = {4, 0, 2, 1};
  data.labels = {0, 1, 0, 1};
  return data;
}

TEST(SnapshotFileTest, RoundTrip) {
  const std::string path = TestPath("snap_roundtrip");
  ASSERT_TRUE(WriteSnapshotFile(path, MakeSnapshot(11), /*sync=*/false).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.ValueOrDie().version, 11u);
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie().threshold, 0.375);
  EXPECT_EQ(loaded.ValueOrDie().canonical_ids,
            (std::vector<int32_t>{4, 0, 2, 1}));
  EXPECT_EQ(loaded.ValueOrDie().labels, (std::vector<int32_t>{0, 1, 0, 1}));
}

TEST(SnapshotFileTest, EveryBitFlipIsRejected) {
  const std::string path = TestPath("snap_bitflip");
  ASSERT_TRUE(WriteSnapshotFile(path, MakeSnapshot(3), /*sync=*/false).ok());
  const std::string clean = ReadRaw(path);
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::string damaged = clean;
    damaged[byte] = static_cast<char>(damaged[byte] ^ 0x10);
    WriteRaw(path, damaged);
    EXPECT_FALSE(ReadSnapshotFile(path).ok()) << "byte " << byte;
  }
  WriteRaw(path, clean);
  EXPECT_TRUE(ReadSnapshotFile(path).ok());
}

TEST(SnapshotFileTest, TruncationIsRejected) {
  const std::string path = TestPath("snap_trunc");
  ASSERT_TRUE(WriteSnapshotFile(path, MakeSnapshot(3), /*sync=*/false).ok());
  const std::string clean = ReadRaw(path);
  for (size_t len : {clean.size() - 1, clean.size() / 2, size_t{0}}) {
    WriteRaw(path, clean.substr(0, len));
    EXPECT_FALSE(ReadSnapshotFile(path).ok()) << "len " << len;
  }
}

TEST(SnapshotFileTest, FileNameRoundTrip) {
  uint64_t version = 0;
  ASSERT_TRUE(ParseSnapshotFileName(SnapshotFileName(42), &version));
  EXPECT_EQ(version, 42u);
  ASSERT_TRUE(
      ParseSnapshotFileName(SnapshotFileName(12345678901ull), &version));
  EXPECT_EQ(version, 12345678901ull);
  EXPECT_FALSE(ParseSnapshotFileName("wal.log", &version));
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-.snap", &version));
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-0000000001.snap.tmp",
                                     &version));
}

TEST(SnapshotFileTest, WriteFaultLeavesNoFile) {
  faults::ScopedFaultClearance clearance;
  const std::string path = TestPath("snap_fault");
  ASSERT_TRUE(faults::FaultInjector::Instance()
                  .ArmFromSpec("serve.snapshot.write=ioerror")
                  .ok());
  EXPECT_FALSE(WriteSnapshotFile(path, MakeSnapshot(1), false).ok());
  EXPECT_FALSE(FileExists(path));
}

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "weber_shardlog_" + name +
                          "_" + std::to_string(::getpid());
  auto entries = ListDirectory(dir);
  if (entries.ok()) {
    for (const std::string& entry : entries.ValueOrDie()) {
      (void)RemoveFileIfExists(dir + "/" + entry);
    }
  }
  return dir;
}

TEST(ShardLogTest, ColdOpenIsEmpty) {
  RecoveredShard recovered;
  auto log = ShardLog::Open(TestDir("cold"), ShardLogOptions{}, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_FALSE(recovered.snapshot_loaded);
  EXPECT_TRUE(recovered.records.empty());
  EXPECT_EQ(recovered.stats.corrupt_snapshots, 0);
}

TEST(ShardLogTest, RecoversSnapshotPlusWalTail) {
  const std::string dir = TestDir("snap_tail");
  {
    RecoveredShard recovered;
    auto log = ShardLog::Open(dir, ShardLogOptions{}, &recovered);
    ASSERT_TRUE(log.ok()) << log.status();
    for (int32_t doc : {0, 1, 2}) {
      ASSERT_TRUE(log.ValueOrDie()->Append(WalRecord::Assign(doc)).ok());
    }
    ShardSnapshotData snap;
    snap.version = 1;
    snap.threshold = 0.5;
    snap.canonical_ids = {0, 1, 2};
    snap.labels = {0, 0, 1};
    ASSERT_TRUE(
        log.ValueOrDie()->PublishSnapshot(snap, /*covers_all=*/true).ok());
    // Arrives after the snapshot: lives only in the WAL.
    ASSERT_TRUE(log.ValueOrDie()->Append(WalRecord::Assign(3)).ok());
  }
  RecoveredShard recovered;
  auto log = ShardLog::Open(dir, ShardLogOptions{}, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE(recovered.snapshot_loaded);
  EXPECT_EQ(recovered.snapshot.version, 1u);
  EXPECT_EQ(recovered.snapshot.labels, (std::vector<int32_t>{0, 0, 1}));
  // The tail assign must be among the replayed records.
  bool saw_tail_assign = false;
  for (const WalRecord& record : recovered.records) {
    if (record.type == WalRecord::Type::kAssign && record.doc == 3) {
      saw_tail_assign = true;
    }
  }
  EXPECT_TRUE(saw_tail_assign);
  EXPECT_FALSE(recovered.stats.wal_torn_tail);
  EXPECT_FALSE(recovered.stats.wal_corrupt);
}

TEST(ShardLogTest, FallsBackPastACorruptNewestSnapshot) {
  const std::string dir = TestDir("fallback");
  {
    RecoveredShard recovered;
    auto log = ShardLog::Open(dir, ShardLogOptions{}, &recovered);
    ASSERT_TRUE(log.ok()) << log.status();
    for (uint64_t version : {1, 2}) {
      ShardSnapshotData snap;
      snap.version = version;
      snap.threshold = 0.5;
      snap.canonical_ids = {0, 1};
      snap.labels = {0, static_cast<int32_t>(version % 2)};
      ASSERT_TRUE(log.ValueOrDie()->PublishSnapshot(snap, true).ok());
    }
  }
  // Flip a byte inside the newest snapshot.
  const std::string newest = dir + "/" + SnapshotFileName(2);
  std::string raw = ReadRaw(newest);
  raw[raw.size() / 2] = static_cast<char>(raw[raw.size() / 2] ^ 0x01);
  WriteRaw(newest, raw);

  RecoveredShard recovered;
  auto log = ShardLog::Open(dir, ShardLogOptions{}, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE(recovered.snapshot_loaded);
  EXPECT_EQ(recovered.snapshot.version, 1u);
  EXPECT_EQ(recovered.stats.corrupt_snapshots, 1);
}

TEST(ShardLogTest, CoveringSnapshotRestartsAnOversizedWal) {
  const std::string dir = TestDir("truncate");
  ShardLogOptions options;
  options.wal_truncate_bytes = 1;  // any non-empty log is "oversized"
  RecoveredShard recovered;
  auto log = ShardLog::Open(dir, options, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  for (int32_t doc : {0, 1, 2, 3}) {
    ASSERT_TRUE(log.ValueOrDie()->Append(WalRecord::Assign(doc)).ok());
  }
  const uint64_t before = log.ValueOrDie()->wal_bytes();
  ShardSnapshotData snap;
  snap.version = 1;
  snap.threshold = 0.5;
  snap.canonical_ids = {0, 1, 2, 3};
  snap.labels = {0, 0, 1, 1};
  ASSERT_TRUE(log.ValueOrDie()->PublishSnapshot(snap, true).ok());
  EXPECT_LT(log.ValueOrDie()->wal_bytes(), before);
  EXPECT_EQ(log.ValueOrDie()->wal_truncations(), 1);

  // Recovery after the restart: the snapshot alone carries the state.
  log.ValueOrDie().reset();
  RecoveredShard after;
  auto reopened = ShardLog::Open(dir, options, &after);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_TRUE(after.snapshot_loaded);
  EXPECT_EQ(after.snapshot.version, 1u);
  for (const WalRecord& record : after.records) {
    EXPECT_NE(record.type, WalRecord::Type::kAssign);
  }
}

}  // namespace
}  // namespace durability
}  // namespace weber

// Matcher race tests: fixed-seed determinism and the headline ordering —
// at the paper-style operating point the optimal assignment is at least as
// good as greedy, which beats the many-to-many threshold baseline on F1.

#include "match/race.h"

#include <gtest/gtest.h>

#include <sstream>

#include "corpus/presets.h"

namespace weber {
namespace match {
namespace {

RaceConfig FixedConfig() {
  RaceConfig config;
  config.corpus = corpus::TinyConfig();
  config.corpus.seed = 41;
  config.overlap_fraction = 0.6;
  return config;
}

TEST(MatchRace, RunsEveryEntrantInTableOrder) {
  auto result = RaceMatchers(FixedConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->entries.size(), 4u);
  EXPECT_EQ(result->entries[0].matcher, "threshold");
  EXPECT_EQ(result->entries[1].matcher, "greedy");
  EXPECT_EQ(result->entries[2].matcher, "greedy+sbm");
  EXPECT_EQ(result->entries[3].matcher, "optimal");
  EXPECT_GT(result->blocks, 0);
  EXPECT_GT(result->left_documents, 0);
  EXPECT_GT(result->right_documents, 0);
  EXPECT_GT(result->truth_pairs, 0);
  EXPECT_GT(result->threshold, 0.0);
  EXPECT_LT(result->threshold, 1.0);
}

TEST(MatchRace, OptimalBeatsGreedyBeatsThresholdOnF1) {
  // The acceptance ordering of the subsystem, pinned by seed: one-to-one
  // constraints buy precision over the threshold baseline, and the exact
  // assignment never loses to best-first.
  auto result = RaceMatchers(FixedConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  const double threshold_f1 = result->entries[0].report.f1;
  const double greedy_f1 = result->entries[1].report.f1;
  const double optimal_f1 = result->entries[3].report.f1;
  EXPECT_GE(optimal_f1, greedy_f1);
  EXPECT_GE(greedy_f1, threshold_f1);
  // The one-to-one win is strict at this operating point, not a tie.
  EXPECT_GT(greedy_f1, threshold_f1);
  // Precision ordering behind it: threshold is the many-to-many floor.
  EXPECT_GE(result->entries[1].report.precision,
            result->entries[0].report.precision);
}

TEST(MatchRace, Www05OperatingPointMatchesExperimentsTable) {
  // The paper-scale operating point recorded in EXPERIMENTS.md (www05
  // preset, seed 5): the exact counts are pinned so a similarity or
  // generator regression that silently shifts the table fails here first.
  RaceConfig config;
  config.corpus = corpus::Www05Config();
  config.corpus.seed = 5;
  auto result = RaceMatchers(config);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->entries.size(), 4u);
  EXPECT_EQ(result->blocks, 12);
  EXPECT_EQ(result->truth_pairs, 131);
  const auto& threshold = result->entries[0].report;
  const auto& greedy = result->entries[1].report;
  const auto& optimal = result->entries[3].report;
  EXPECT_EQ(threshold.true_positives, 96);
  EXPECT_EQ(greedy.true_positives, 79);
  EXPECT_EQ(optimal.true_positives, 83);
  EXPECT_GE(optimal.f1, greedy.f1);
  EXPECT_GE(greedy.f1, threshold.f1);
}

TEST(MatchRace, IsDeterministicForAFixedConfig) {
  auto a = RaceMatchers(FixedConfig());
  auto b = RaceMatchers(FixedConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Timing fields differ run to run; everything derived from the seed must
  // not. Compare through the JSON writer minus the match_ms fields.
  ASSERT_EQ(a->entries.size(), b->entries.size());
  EXPECT_EQ(a->threshold, b->threshold);
  EXPECT_EQ(a->train_accuracy, b->train_accuracy);
  EXPECT_EQ(a->truth_pairs, b->truth_pairs);
  for (size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_EQ(a->entries[i].report.true_positives,
              b->entries[i].report.true_positives);
    EXPECT_EQ(a->entries[i].report.false_positives,
              b->entries[i].report.false_positives);
    EXPECT_EQ(a->entries[i].report.false_negatives,
              b->entries[i].report.false_negatives);
  }
}

TEST(MatchRace, WritesWellFormedJson) {
  auto result = RaceMatchers(FixedConfig());
  ASSERT_TRUE(result.ok());
  std::ostringstream out;
  WriteRaceJson(*result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"threshold\""), std::string::npos);
  EXPECT_NE(json.find("\"matchers\""), std::string::npos);
  EXPECT_NE(json.find("\"greedy+sbm\""), std::string::npos);
  EXPECT_NE(json.find("\"f1\""), std::string::npos);
  EXPECT_EQ(json.find("\n\n"), std::string::npos);
}

TEST(MatchRace, RejectsBadOverlap) {
  RaceConfig config = FixedConfig();
  config.overlap_fraction = 0.0;
  EXPECT_FALSE(RaceMatchers(config).ok());
}

}  // namespace
}  // namespace match
}  // namespace weber

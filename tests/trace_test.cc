// weber::obs tracing: request-ID plumbing, the span ring buffer, slow-span
// counting, and null-collector no-op behaviour. The concurrency cases
// double as the TSan targets for the tracing hot path.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace weber {
namespace obs {
namespace {

TEST(TraceCollectorTest, RequestIdsStartAtOneAndIncrease) {
  TraceCollector collector;
  EXPECT_EQ(collector.NextRequestId(), 1u);
  EXPECT_EQ(collector.NextRequestId(), 2u);
  EXPECT_EQ(collector.NextRequestId(), 3u);
}

TEST(TraceCollectorTest, RecordsSpansOldestFirst) {
  TraceCollector collector;
  collector.Record("a", 1, 0.0, 1.0);
  collector.Record("b", 2, 1.0, 2.0);
  const std::vector<TraceSpan> spans = collector.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].request_id, 1u);
  EXPECT_DOUBLE_EQ(spans[0].duration_ms, 1.0);
  EXPECT_STREQ(spans[1].name, "b");
  EXPECT_EQ(collector.spans_recorded(), 2);
}

TEST(TraceCollectorTest, RingBufferKeepsOnlyTheNewest) {
  TraceOptions options;
  options.capacity = 4;
  TraceCollector collector(options);
  for (int i = 0; i < 10; ++i) {
    collector.Record("span", static_cast<uint64_t>(i), 0.0, 0.0);
  }
  const std::vector<TraceSpan> spans = collector.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first of the surviving window: requests 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<size_t>(i)].request_id,
              static_cast<uint64_t>(6 + i));
  }
  EXPECT_EQ(collector.spans_recorded(), 10);
}

TEST(TraceCollectorTest, SlowSpansAreCounted) {
  TraceOptions options;
  options.slow_ms = 5.0;
  TraceCollector collector(options);
  collector.Record("fast", 1, 0.0, 1.0);
  collector.Record("slow", 2, 0.0, 5.0);  // at the threshold counts
  collector.Record("slower", 3, 0.0, 50.0);
  EXPECT_EQ(collector.slow_spans(), 2);
  EXPECT_EQ(collector.spans_recorded(), 3);
  EXPECT_DOUBLE_EQ(collector.slow_ms(), 5.0);
}

TEST(TraceCollectorTest, ZeroThresholdNeverCountsSlow) {
  TraceCollector collector;
  collector.Record("span", 1, 0.0, 1e9);
  EXPECT_EQ(collector.slow_spans(), 0);
}

TEST(RequestIdTest, ScopeRestoresPreviousId) {
  SetCurrentRequestId(0);
  EXPECT_EQ(CurrentRequestId(), 0u);
  {
    RequestIdScope outer(7);
    EXPECT_EQ(CurrentRequestId(), 7u);
    {
      RequestIdScope inner(9);
      EXPECT_EQ(CurrentRequestId(), 9u);
    }
    EXPECT_EQ(CurrentRequestId(), 7u);
  }
  EXPECT_EQ(CurrentRequestId(), 0u);
}

TEST(RequestIdTest, IsPerThread) {
  SetCurrentRequestId(11);
  uint64_t seen_on_worker = 99;
  std::thread worker([&seen_on_worker] {
    seen_on_worker = CurrentRequestId();
    SetCurrentRequestId(42);  // must not leak back
  });
  worker.join();
  EXPECT_EQ(seen_on_worker, 0u);
  EXPECT_EQ(CurrentRequestId(), 11u);
  SetCurrentRequestId(0);
}

TEST(ScopedSpanTest, NullCollectorIsANoOp) {
  // Must not crash, read clocks, or record anywhere.
  ScopedSpan span(nullptr, "noop");
  span.End();
  span.End();
}

TEST(ScopedSpanTest, RecordsOnDestruction) {
  TraceCollector collector;
  {
    RequestIdScope id(5);
    ScopedSpan span(&collector, "scoped");
  }
  const std::vector<TraceSpan> spans = collector.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "scoped");
  EXPECT_EQ(spans[0].request_id, 5u);
  EXPECT_GE(spans[0].duration_ms, 0.0);
}

TEST(ScopedSpanTest, EndIsIdempotent) {
  TraceCollector collector;
  {
    ScopedSpan span(&collector, "once");
    span.End();
    span.End();  // destructor also calls End()
  }
  EXPECT_EQ(collector.spans_recorded(), 1);
}

TEST(TraceCollectorTest, ConcurrentRecordAndReadIsSafe) {
  TraceOptions options;
  options.capacity = 64;
  options.slow_ms = 0.5;
  TraceCollector collector(options);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&collector, t] {
      for (int i = 0; i < 2000; ++i) {
        const uint64_t id = collector.NextRequestId();
        RequestIdScope scope(id);
        ScopedSpan span(&collector, t % 2 == 0 ? "even" : "odd");
        if (i % 3 == 0) span.End();
      }
    });
  }
  std::thread reader([&collector, &stop] {
    while (!stop.load()) {
      const std::vector<TraceSpan> spans = collector.Spans();
      EXPECT_LE(spans.size(), 64u);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(collector.spans_recorded(), 4 * 2000);
  EXPECT_EQ(collector.Spans().size(), 64u);
}

}  // namespace
}  // namespace obs
}  // namespace weber

#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace weber {
namespace text {
namespace {

struct StemCase {
  const char* word;
  const char* stem;
};

// Classic cases from Porter's paper and the reference implementation's
// vocabulary.
class PorterKnownStems : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterKnownStems, MatchesReference) {
  const StemCase& c = GetParam();
  EXPECT_EQ(PorterStemmer::Stem(c.word), c.stem) << "word=" << c.word;
}

INSTANTIATE_TEST_SUITE_P(
    Step1, PorterKnownStems,
    ::testing::Values(StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
                      StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
                      StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
                      StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
                      StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
                      StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
                      StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
                      StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
                      StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
                      StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
                      StemCase{"filing", "file"}, StemCase{"happy", "happi"},
                      StemCase{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    Steps2to5, PorterKnownStems,
    ::testing::Values(StemCase{"relational", "relat"},
                      StemCase{"conditional", "condit"},
                      StemCase{"rational", "ration"},
                      StemCase{"valenci", "valenc"},
                      StemCase{"hesitanci", "hesit"},
                      StemCase{"digitizer", "digit"},
                      StemCase{"conformabli", "conform"},
                      StemCase{"radicalli", "radic"},
                      StemCase{"differentli", "differ"},
                      StemCase{"vileli", "vile"},
                      StemCase{"analogousli", "analog"},
                      StemCase{"vietnamization", "vietnam"},
                      StemCase{"predication", "predic"},
                      StemCase{"operator", "oper"},
                      StemCase{"feudalism", "feudal"},
                      StemCase{"decisiveness", "decis"},
                      StemCase{"hopefulness", "hope"},
                      StemCase{"callousness", "callous"},
                      StemCase{"formaliti", "formal"},
                      StemCase{"sensitiviti", "sensit"},
                      StemCase{"sensibiliti", "sensibl"},
                      StemCase{"triplicate", "triplic"},
                      StemCase{"formative", "form"},
                      StemCase{"formalize", "formal"},
                      StemCase{"electriciti", "electr"},
                      StemCase{"electrical", "electr"},
                      StemCase{"hopeful", "hope"},
                      StemCase{"goodness", "good"},
                      StemCase{"revival", "reviv"},
                      StemCase{"allowance", "allow"},
                      StemCase{"inference", "infer"},
                      StemCase{"airliner", "airlin"},
                      StemCase{"gyroscopic", "gyroscop"},
                      StemCase{"adjustable", "adjust"},
                      StemCase{"defensible", "defens"},
                      StemCase{"irritant", "irrit"},
                      StemCase{"replacement", "replac"},
                      StemCase{"adjustment", "adjust"},
                      StemCase{"dependent", "depend"},
                      StemCase{"adoption", "adopt"},
                      StemCase{"homologou", "homolog"},
                      StemCase{"communism", "commun"},
                      StemCase{"activate", "activ"},
                      StemCase{"angulariti", "angular"},
                      StemCase{"homologous", "homolog"},
                      StemCase{"effective", "effect"},
                      StemCase{"bowdlerize", "bowdler"},
                      StemCase{"probate", "probat"},
                      StemCase{"rate", "rate"},
                      StemCase{"cease", "ceas"},
                      StemCase{"controll", "control"},
                      StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStemmer::Stem("a"), "a");
  EXPECT_EQ(PorterStemmer::Stem("is"), "is");
  EXPECT_EQ(PorterStemmer::Stem(""), "");
}

TEST(PorterStemmerTest, StemmingUnifiesInflections) {
  // The property the TF-IDF pipeline relies on: inflected forms of one
  // lemma map to one stem.
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connected"));
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connecting"));
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connection"));
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connections"));
}

TEST(PorterStemmerTest, StemIsStableUnderRestemmingForCommonWords) {
  // Not a theorem for Porter in general — e.g. "databases" -> "databas"
  // restems to "databa", because the plural rule strips the trailing s
  // again — but it holds for stems that do not end in s/e, and guards
  // against gross regressions.
  for (const char* w : {"running", "entities", "resolution", "clustering",
                        "similarity", "documents"}) {
    std::string once = PorterStemmer::Stem(w);
    EXPECT_EQ(PorterStemmer::Stem(once), once) << w;
  }
}

TEST(PorterStemmerTest, DocumentedNonIdempotenceExample) {
  EXPECT_EQ(PorterStemmer::Stem("databases"), "databas");
  EXPECT_EQ(PorterStemmer::Stem("databas"), "databa");  // Porter behaviour
}

}  // namespace
}  // namespace text
}  // namespace weber

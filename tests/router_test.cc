// weber::router tests: the health state machine under a manual clock,
// rendezvous route orders, and end-to-end forwarding/failover against
// in-process fake backends (serve::LineServer in handler mode).

#include "router/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "router/health.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace weber {
namespace router {
namespace {

// ---------------------------------------------------------------------------
// BackendHealth
// ---------------------------------------------------------------------------

TEST(BackendHealthTest, SuspectThenRecovery) {
  HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 3;
  BackendHealth health(options);
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  EXPECT_TRUE(health.Routable());

  health.OnFailure(10.0);
  EXPECT_EQ(health.state(), HealthState::kSuspect);
  EXPECT_TRUE(health.Routable()) << "suspect still serves";

  health.OnSuccess(20.0);
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  EXPECT_EQ(health.consecutive_failures(), 0);
}

TEST(BackendHealthTest, FailuresCarryAcrossTheSuspectDemotion) {
  // down_after counts TOTAL consecutive failures, not failures since the
  // suspect demotion: with suspect_after=1 / down_after=3 the third
  // consecutive failure downs the backend, not the fourth.
  HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 3;
  BackendHealth health(options);
  health.OnFailure(1.0);
  EXPECT_EQ(health.state(), HealthState::kSuspect);
  health.OnFailure(2.0);
  EXPECT_EQ(health.state(), HealthState::kSuspect);
  health.OnFailure(3.0);
  EXPECT_EQ(health.state(), HealthState::kDown);
  EXPECT_FALSE(health.Routable());
  EXPECT_EQ(health.times_down(), 1);
}

TEST(BackendHealthTest, EqualThresholdsSkipTheSuspectGracePeriod) {
  HealthOptions options;
  options.suspect_after = 2;
  options.down_after = 2;
  BackendHealth health(options);
  health.OnFailure(1.0);
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  health.OnFailure(2.0);
  EXPECT_EQ(health.state(), HealthState::kDown);
}

TEST(BackendHealthTest, RecoveryEarnsTrustThroughProbation) {
  HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 2;
  options.probation_successes = 2;
  BackendHealth health(options);
  health.OnFailure(1.0);
  health.OnFailure(2.0);
  ASSERT_EQ(health.state(), HealthState::kDown);

  // First success after down: probation, still routable, not yet healthy.
  health.OnSuccess(100.0);
  EXPECT_EQ(health.state(), HealthState::kProbation);
  EXPECT_TRUE(health.Routable());

  health.OnSuccess(110.0);
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  // The down episode's duration is credited on recovery.
  EXPECT_DOUBLE_EQ(health.down_ms_total(), 98.0);
}

TEST(BackendHealthTest, ProbationFailureGoesStraightBackDown) {
  HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 2;
  options.probation_successes = 3;
  BackendHealth health(options);
  health.OnFailure(1.0);
  health.OnFailure(2.0);
  health.OnSuccess(10.0);
  ASSERT_EQ(health.state(), HealthState::kProbation);

  // One failure during probation: back to down immediately, not another
  // down_after failures.
  health.OnFailure(11.0);
  EXPECT_EQ(health.state(), HealthState::kDown);
  EXPECT_EQ(health.times_down(), 2);
}

TEST(BackendHealthTest, SingleProbationSuccessOptionGoesStraightHealthy) {
  HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 1;
  options.probation_successes = 1;
  BackendHealth health(options);
  health.OnFailure(1.0);
  ASSERT_EQ(health.state(), HealthState::kDown);
  health.OnSuccess(2.0);
  EXPECT_EQ(health.state(), HealthState::kHealthy);
}

TEST(BackendHealthTest, DownProbesAreRateLimited) {
  HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 1;
  options.down_probe_interval_ms = 100.0;
  BackendHealth health(options);

  // Routable states probe on every cadence tick.
  EXPECT_TRUE(health.ShouldProbe(0.0));
  health.NoteProbe(0.0);
  EXPECT_TRUE(health.ShouldProbe(1.0));

  health.OnFailure(10.0);
  ASSERT_EQ(health.state(), HealthState::kDown);
  health.NoteProbe(10.0);
  EXPECT_FALSE(health.ShouldProbe(50.0)) << "down probes wait out the gap";
  EXPECT_TRUE(health.ShouldProbe(111.0));
}

TEST(BackendHealthTest, CountsTransitions) {
  HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 2;
  options.probation_successes = 1;
  BackendHealth health(options);
  health.OnFailure(1.0);  // healthy -> suspect
  health.OnFailure(2.0);  // suspect -> down
  health.OnSuccess(3.0);  // down -> probation -> healthy (counts as one
                          // success; probation_successes == 1)
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  EXPECT_GE(health.transitions(), 3);
  EXPECT_EQ(health.times_down(), 1);
}

// ---------------------------------------------------------------------------
// ParseEndpoint and RouteOrder
// ---------------------------------------------------------------------------

TEST(ParseEndpointTest, SplitsHostAndPort) {
  auto parsed = ParseEndpoint("127.0.0.1:7001");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, "127.0.0.1");
  EXPECT_EQ(parsed->second, 7001);

  EXPECT_FALSE(ParseEndpoint("127.0.0.1").ok());
  EXPECT_FALSE(ParseEndpoint(":7001").ok());
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:").ok());
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:seventy").ok());
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:0").ok());
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:65536").ok());
  EXPECT_FALSE(ParseEndpoint("").ok());
}

TEST(RouteOrderTest, DeterministicPermutation) {
  const auto order = Router::RouteOrder("cohen", 5);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(std::set<size_t>(order.begin(), order.end()).size(), 5u)
      << "route order must be a permutation of the backends";
  EXPECT_EQ(Router::RouteOrder("cohen", 5), order)
      << "same block, same fleet size, same order";
  EXPECT_NE(Router::RouteOrder("baker", 5), order)
      << "distinct blocks should (overwhelmingly) disagree";
}

TEST(RouteOrderTest, SpreadsOwnershipAcrossTheFleet) {
  constexpr size_t kBackends = 4;
  std::vector<int> owned(kBackends, 0);
  for (int b = 0; b < 200; ++b) {
    ++owned[Router::RouteOrder("block" + std::to_string(b), kBackends)[0]];
  }
  for (size_t i = 0; i < kBackends; ++i) {
    // Perfectly even would be 50 each; rendezvous over 200 blocks should
    // not starve or overload any backend by more than ~2x.
    EXPECT_GT(owned[i], 20) << "backend " << i << " starved";
    EXPECT_LT(owned[i], 100) << "backend " << i << " overloaded";
  }
}

TEST(RouteOrderTest, GrowingTheFleetPreservesRelativeOrder) {
  // The rendezvous property: adding a backend never reorders the existing
  // ones relative to each other — each block either keeps its owner or
  // moves to the new backend, which is what bounds reshuffling.
  for (int b = 0; b < 50; ++b) {
    const std::string block = "block" + std::to_string(b);
    const auto small = Router::RouteOrder(block, 4);
    auto grown = Router::RouteOrder(block, 5);
    grown.erase(std::find(grown.begin(), grown.end(), size_t{4}));
    EXPECT_EQ(grown, small) << block;
  }
}

// ---------------------------------------------------------------------------
// End-to-end against fake backends
// ---------------------------------------------------------------------------

/// A fake weber_serve: answers every line "ok backend<id>" (probes parse
/// that as success) and records what it was asked.
class FakeBackend {
 public:
  explicit FakeBackend(int id) : id_(id) { Start(0); }

  void Start(int port) {
    server_ = std::make_unique<serve::LineServer>(
        [this](const std::string& line, bool* quit) {
          if (line == "quit") {
            *quit = true;
            return std::string("ok");
          }
          {
            std::lock_guard<std::mutex> lock(mu_);
            lines_.push_back(line);
          }
          return "ok backend" + std::to_string(id_);
        });
    ASSERT_TRUE(server_->StartTcp(port).ok());
    port_ = server_->tcp_port();
  }

  void Kill() { server_->StopTcp(); }
  void Restart() { Start(port_); }

  int port() const { return port_; }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port_);
  }
  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  int id_;
  int port_ = 0;
  std::unique_ptr<serve::LineServer> server_;
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// Tight timeouts so failure paths resolve in milliseconds; the prober is
/// never started — tests drive health with ProbeOnce() or request traffic.
RouterOptions FastOptions() {
  RouterOptions options;
  options.dial_timeout_ms = 200.0;
  options.call_timeout_ms = 500.0;
  options.probe_timeout_ms = 200.0;
  options.max_retries = 1;
  options.retry_backoff_ms = 1.0;
  options.health.down_probe_interval_ms = 0.0;
  options.breaker.failure_threshold = 100;  // out of the way by default
  return options;
}

class RouterEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      backends_.push_back(std::make_unique<FakeBackend>(i));
      endpoints_.push_back(backends_.back()->endpoint());
    }
  }

  std::string Tag(size_t index) const {
    return "ok backend" + std::to_string(index);
  }

  std::vector<std::unique_ptr<FakeBackend>> backends_;
  std::vector<std::string> endpoints_;
};

TEST_F(RouterEndToEndTest, WritesGoToTheOwnerOnly) {
  Router router(endpoints_, FastOptions());
  const std::string block = "cohen";
  const size_t owner = Router::RouteOrder(block, 3)[0];
  bool quit = false;
  EXPECT_EQ(router.HandleLine("assign " + block + " 0", &quit), Tag(owner));
  EXPECT_EQ(router.HandleLine("compact " + block, &quit), Tag(owner));
  EXPECT_EQ(router.HandleLine("dump " + block, &quit), Tag(owner));
  for (size_t i = 0; i < backends_.size(); ++i) {
    EXPECT_EQ(backends_[i]->lines().empty(), i != owner);
  }
}

TEST_F(RouterEndToEndTest, ReadsFailOverToALiveBackend) {
  Router router(endpoints_, FastOptions());
  const std::string block = "cohen";
  const auto order = Router::RouteOrder(block, 3);
  backends_[order[0]]->Kill();

  bool quit = false;
  const std::string response =
      router.HandleLine("query " + block + " 0", &quit);
  EXPECT_EQ(response, Tag(order[1]))
      << "the read must fail over to the next preference";

  // The failed dial taught health about the dead owner.
  EXPECT_GT(router.backend(order[0]).transport_failures, 0);
  EXPECT_NE(router.backend(order[0]).state, HealthState::kHealthy);
}

TEST_F(RouterEndToEndTest, MatchRoutesToTheOwnerAndFailsOver) {
  Router router(endpoints_, FastOptions());
  const std::string block = "cohen";
  const auto order = Router::RouteOrder(block, 3);
  bool quit = false;
  EXPECT_EQ(router.HandleLine("match " + block + " 0 1 2", &quit),
            Tag(order[0]));
  // The owner saw the verb with its document list intact.
  auto lines = backends_[order[0]]->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "match " + block + " 0 1 2");

  // match is an idempotent snapshot read: a dead owner must not take the
  // verb down with it.
  backends_[order[0]]->Kill();
  EXPECT_EQ(router.HandleLine("match " + block + " 0 1", &quit),
            Tag(order[1]));
}

TEST_F(RouterEndToEndTest, WriteToADeadOwnerDegradesHonestly) {
  auto options = FastOptions();
  options.health.suspect_after = 1;
  options.health.down_after = 2;
  Router router(endpoints_, options);
  const std::string block = "cohen";
  const auto order = Router::RouteOrder(block, 3);
  backends_[order[0]]->Kill();

  // The write was never sent (every dial failed), so the router may promise
  // OVERLOADED: fleet state did not change.
  bool quit = false;
  const std::string response =
      router.HandleLine("assign " + block + " 0", &quit);
  EXPECT_EQ(response.rfind("OVERLOADED ", 0), 0u) << response;

  // Enough dial failures accumulated to down the owner; a second write is
  // now shed before dialing, and reads still answer from the fleet.
  EXPECT_EQ(router.backend(order[0]).state, HealthState::kDown);
  EXPECT_EQ(router.HandleLine("assign " + block + " 1", &quit)
                .rfind("OVERLOADED ", 0),
            0u);
  EXPECT_EQ(router.HandleLine("query " + block + " 0", &quit), Tag(order[1]));
}

TEST_F(RouterEndToEndTest, ProbeOnceDrivesDetectionAndRecovery) {
  auto options = FastOptions();
  options.health.suspect_after = 1;
  options.health.down_after = 2;
  options.health.probation_successes = 2;
  Router router(endpoints_, options);

  backends_[1]->Kill();
  router.ProbeOnce();
  EXPECT_EQ(router.backend(1).state, HealthState::kSuspect);
  router.ProbeOnce();
  EXPECT_EQ(router.backend(1).state, HealthState::kDown);

  backends_[1]->Restart();
  router.ProbeOnce();
  EXPECT_EQ(router.backend(1).state, HealthState::kProbation);
  router.ProbeOnce();
  EXPECT_EQ(router.backend(1).state, HealthState::kHealthy);
  EXPECT_EQ(router.backend(1).times_down, 1);

  // The healthy backends never wavered.
  EXPECT_EQ(router.backend(0).state, HealthState::kHealthy);
  EXPECT_EQ(router.backend(2).state, HealthState::kHealthy);
}

TEST_F(RouterEndToEndTest, BreakerOpensAfterRepeatedWriteFailures) {
  auto options = FastOptions();
  options.health.suspect_after = 10;  // keep health out of the way
  options.health.down_after = 100;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_ms = 60'000.0;
  options.max_retries = 0;
  Router router(endpoints_, options);
  const std::string block = "cohen";
  const auto order = Router::RouteOrder(block, 3);
  backends_[order[0]]->Kill();

  bool quit = false;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.HandleLine("assign " + block + " 0", &quit)
                  .rfind("OVERLOADED ", 0),
              0u);
  }
  EXPECT_EQ(router.backend(order[0]).breaker,
            serve::CircuitBreaker::State::kOpen);
  // With the breaker open the shed happens before any dial: the response is
  // still OVERLOADED and no transport failure is added.
  const long long failures_before =
      router.backend(order[0]).transport_failures;
  EXPECT_EQ(router.HandleLine("assign " + block + " 0", &quit)
                .rfind("OVERLOADED ", 0),
            0u);
  EXPECT_EQ(router.backend(order[0]).transport_failures, failures_before);
}

TEST_F(RouterEndToEndTest, DeadlinePropagatesToTheBackendHop) {
  Router router(endpoints_, FastOptions());
  const std::string block = "cohen";
  const size_t owner = Router::RouteOrder(block, 3)[0];
  bool quit = false;
  ASSERT_EQ(router.HandleLine("assign " + block + " 0 deadline 500", &quit),
            Tag(owner));
  const auto lines = backends_[owner]->lines();
  ASSERT_EQ(lines.size(), 1u);
  auto hop = serve::ParseRequest(lines[0]);
  ASSERT_TRUE(hop.ok()) << lines[0];
  EXPECT_GT(hop->deadline_ms, 0.0) << "the hop must carry a deadline";
  EXPECT_LE(hop->deadline_ms, 500.0)
      << "the hop budget is the REMAINING client budget";
}

TEST_F(RouterEndToEndTest, CompactAllFansOutToEveryRoutableBackend) {
  Router router(endpoints_, FastOptions());
  bool quit = false;
  EXPECT_EQ(router.HandleLine("compact", &quit), "ok 3");
  for (const auto& backend : backends_) {
    EXPECT_EQ(backend->lines(), std::vector<std::string>{"compact"});
  }

  backends_[2]->Kill();
  const std::string partial = router.HandleLine("compact", &quit);
  EXPECT_EQ(partial.rfind("err Unavailable", 0), 0u)
      << "a partial compact must not claim success: " << partial;
}

TEST_F(RouterEndToEndTest, AnswersStatsAndMetricsItself) {
  Router router(endpoints_, FastOptions());
  bool quit = false;
  router.ProbeOnce();

  const std::string stats = router.HandleLine("stats", &quit);
  ASSERT_EQ(stats.rfind("ok {", 0), 0u) << stats;
  EXPECT_NE(stats.find("\"backends\""), std::string::npos);
  EXPECT_NE(stats.find(endpoints_[0]), std::string::npos);
  EXPECT_NE(stats.find("\"healthy\""), std::string::npos);

  const std::string metrics = router.HandleLine("metrics", &quit);
  const size_t newline = metrics.find('\n');
  ASSERT_NE(newline, std::string::npos);
  auto n = serve::ParseMetricsHeader(metrics.substr(0, newline));
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_GT(*n, 0);
  EXPECT_NE(metrics.find("weber_router_probes_total"), std::string::npos);

  // Neither verb was forwarded: the backends saw only the probe's ping.
  for (const auto& backend : backends_) {
    EXPECT_EQ(backend->lines(), std::vector<std::string>{"ping"});
  }
}

TEST_F(RouterEndToEndTest, PingAndQuitAreLocal) {
  Router router(endpoints_, FastOptions());
  bool quit = false;
  EXPECT_EQ(router.HandleLine("ping", &quit), "ok");
  EXPECT_FALSE(quit);
  EXPECT_EQ(router.HandleLine("quit", &quit), "ok");
  EXPECT_TRUE(quit);
  EXPECT_EQ(router.HandleLine("bogus verb", &quit).rfind("err ", 0), 0u);
  for (const auto& backend : backends_) {
    EXPECT_TRUE(backend->lines().empty());
  }
}

// ---------------------------------------------------------------------------
// Route overrides (migration flips)
// ---------------------------------------------------------------------------

TEST_F(RouterEndToEndTest, RouteOverrideBeatsRendezvousOrder) {
  Router router(endpoints_, FastOptions());
  const std::string block = "cohen";
  const auto order = Router::RouteOrder(block, 3);
  const size_t new_owner = order[2];  // the least-preferred backend

  router.SetRouteOverride(block, new_owner);
  const auto effective = router.EffectiveOrder(block);
  ASSERT_EQ(effective.size(), 3u);
  EXPECT_EQ(effective[0], new_owner);
  // The displaced rendezvous owner stays in the order as a failover
  // candidate — "source drop" demotes, it does not evict.
  EXPECT_EQ(effective[1], order[0]);
  EXPECT_EQ(effective[2], order[1]);

  // Every verb class follows the override.
  bool quit = false;
  EXPECT_EQ(router.HandleLine("assign " + block + " 0", &quit),
            Tag(new_owner));
  EXPECT_EQ(router.HandleLine("query " + block + " 0", &quit),
            Tag(new_owner));
  EXPECT_EQ(router.HandleLine("dump " + block, &quit), Tag(new_owner));
  EXPECT_TRUE(backends_[order[0]]->lines().empty());

  // Other blocks are untouched.
  const std::string other = "smith";
  EXPECT_EQ(router.EffectiveOrder(other),
            Router::RouteOrder(other, 3));

  // An out-of-range index clears the override.
  router.SetRouteOverride(block, 99);
  EXPECT_EQ(router.EffectiveOrder(block), order);
}

TEST_F(RouterEndToEndTest, OverrideFlipIsAtomicUnderConcurrentReads) {
  Router router(endpoints_, FastOptions());
  const std::string block = "cohen";
  const auto order = Router::RouteOrder(block, 3);

  // Readers hammer the block while the owner flips back and forth. Every
  // response must come from a real backend — never a transport error or a
  // half-installed route — and TSan must see no race between the flip's
  // map mutation and EffectiveOrder's read.
  std::atomic<bool> stop{false};
  std::atomic<long long> bad_responses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      bool quit = false;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string response =
            router.HandleLine("query " + block + " 0", &quit);
        if (response.rfind("ok backend", 0) != 0) {
          bad_responses.fetch_add(1);
        }
      }
    });
  }
  for (int flip = 0; flip < 200; ++flip) {
    router.SetRouteOverride(block, order[flip % 2 == 0 ? 2 : 0]);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad_responses.load(), 0);
}

TEST_F(RouterEndToEndTest, OverrideSurvivesProberTransitions) {
  auto options = FastOptions();
  Router router(endpoints_, options);
  const std::string block = "cohen";
  const auto order = Router::RouteOrder(block, 3);
  const size_t new_owner = order[1];
  router.SetRouteOverride(block, new_owner);

  // Drive the displaced owner through down → probation → healthy; the
  // override must hold through every health transition, because a flip is
  // a routing fact, not a health fact.
  backends_[order[0]]->Kill();
  for (int i = 0; i < 10 && router.backend(order[0]).state !=
                                HealthState::kDown;
       ++i) {
    router.ProbeOnce();
  }
  EXPECT_EQ(router.backend(order[0]).state, HealthState::kDown);
  EXPECT_EQ(router.EffectiveOrder(block)[0], new_owner);

  backends_[order[0]]->Restart();
  for (int i = 0; i < 10 && router.backend(order[0]).state !=
                                HealthState::kHealthy;
       ++i) {
    router.ProbeOnce();
  }
  EXPECT_EQ(router.backend(order[0]).state, HealthState::kHealthy);
  EXPECT_EQ(router.EffectiveOrder(block)[0], new_owner);

  bool quit = false;
  EXPECT_EQ(router.HandleLine("assign " + block + " 1", &quit),
            Tag(new_owner));
}

TEST_F(RouterEndToEndTest, BackendVerbsAreRejectedAtTheRouter) {
  Router router(endpoints_, FastOptions());
  bool quit = false;
  EXPECT_EQ(router.HandleLine("export cohen", &quit)
                .rfind("err InvalidArgument", 0),
            0u);
  // A migrate naming an unknown endpoint fails without touching routing.
  EXPECT_EQ(router.HandleLine("migrate cohen 127.0.0.1:1", &quit)
                .rfind("err NotFound", 0),
            0u);
  EXPECT_EQ(router.EffectiveOrder("cohen"), Router::RouteOrder("cohen", 3));
}

TEST_F(RouterEndToEndTest, OverloadedHintsReportTheRemainingPause) {
  // During a migration write pause, every OVERLOADED the router sheds for
  // the paused block must carry the actual remaining pause, not the
  // generic retry floor — otherwise clients retry straight back into the
  // pause. The dump path exercises the shared RetryHint: pause the block,
  // kill its owner, and the dump's hint must be pause-sized.
  auto options = FastOptions();
  options.retry_after_ms = 50.0;
  Router router(endpoints_, options);
  const std::string block = "cohen";
  const size_t owner = Router::RouteOrder(block, 3)[0];
  router.SetWritePause(block, 5000.0);
  backends_[owner]->Kill();

  bool quit = false;
  auto hint_of = [](const std::string& response) {
    EXPECT_EQ(response.rfind("OVERLOADED ", 0), 0u) << response;
    return std::stod(response.substr(std::string("OVERLOADED ").size()));
  };
  // Writes shed at the pause check itself.
  EXPECT_GT(hint_of(router.HandleLine("assign " + block + " 0", &quit)),
            1000.0);
  // Dumps shed on the dead owner, but the hint still sees the pause.
  EXPECT_GT(hint_of(router.HandleLine("dump " + block, &quit)), 1000.0);

  // With the pause cleared, hints fall back to the configured floor.
  router.SetWritePause(block, 0.0);
  EXPECT_LE(hint_of(router.HandleLine("dump " + block, &quit)), 50.0);
}

TEST_F(RouterEndToEndTest, StartAndStopTheProberIsClean) {
  auto options = FastOptions();
  options.probe_interval_ms = 5.0;
  Router router(endpoints_, options);
  backends_[1]->Kill();
  router.Start();
  router.Start();  // idempotent
  // The prober notices the dead backend on its own cadence.
  while (router.backend(1).state == HealthState::kHealthy) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  router.Stop();
  router.Stop();  // idempotent
}

}  // namespace
}  // namespace router
}  // namespace weber

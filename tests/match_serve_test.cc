// The `match` verb end to end: protocol parse/format round-trips,
// ParseMatchResponse, ResolutionService::Match semantics (one-to-one
// output, validation, deadline, stats gating), concurrent matches against
// a compacting service, and LineServer dispatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "corpus/generator.h"
#include "corpus/presets.h"
#include "serve/protocol.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

namespace weber {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// Protocol layer.

TEST(MatchProtocol, ParsesBlockAndDocumentList) {
  auto request = ParseRequest("match cohen 0 3 1");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->op, Request::Op::kMatch);
  EXPECT_EQ(request->block, "cohen");
  EXPECT_EQ(request->docs, (std::vector<int>{0, 3, 1}));
  EXPECT_EQ(request->deadline_ms, 0.0);
}

TEST(MatchProtocol, ParsesTrailingDeadline) {
  auto request = ParseRequest("match cohen 2 5 deadline 40");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->op, Request::Op::kMatch);
  EXPECT_EQ(request->docs, (std::vector<int>{2, 5}));
  EXPECT_EQ(request->deadline_ms, 40.0);
}

TEST(MatchProtocol, RejectsMissingDocumentsAndBadIds) {
  EXPECT_FALSE(ParseRequest("match").ok());
  EXPECT_FALSE(ParseRequest("match cohen").ok());
  EXPECT_FALSE(ParseRequest("match cohen abc").ok());
  // A lone deadline suffix leaves no documents behind.
  EXPECT_FALSE(ParseRequest("match cohen deadline 40").ok());
}

TEST(MatchProtocol, FormatRoundTripsThroughParse) {
  Request request;
  request.op = Request::Op::kMatch;
  request.block = "cohen";
  request.docs = {4, 0, 7};
  EXPECT_EQ(FormatRequest(request), "match cohen 4 0 7");

  request.deadline_ms = 25.0;
  auto reparsed = ParseRequest(FormatRequest(request));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->op, Request::Op::kMatch);
  EXPECT_EQ(reparsed->block, request.block);
  EXPECT_EQ(reparsed->docs, request.docs);
  EXPECT_EQ(reparsed->deadline_ms, 25.0);
}

TEST(MatchProtocol, ParsesMatchResponsePairsInOrder) {
  auto pairs = ParseMatchResponse("ok 3 4:1 0:-1 2:0");
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  EXPECT_EQ(*pairs, (std::vector<std::pair<int, int>>{{4, 1},
                                                      {0, -1},
                                                      {2, 0}}));
}

TEST(MatchProtocol, RejectsMalformedMatchResponses) {
  EXPECT_FALSE(ParseMatchResponse("err internal boom").ok());
  EXPECT_FALSE(ParseMatchResponse("ok").ok());
  EXPECT_FALSE(ParseMatchResponse("ok 2 1:1").ok());      // count mismatch
  EXPECT_FALSE(ParseMatchResponse("ok 1 11").ok());       // no colon
  EXPECT_FALSE(ParseMatchResponse("ok 1 a:1").ok());      // bad doc
  EXPECT_FALSE(ParseMatchResponse("ok 1 1:b").ok());      // bad cluster
  EXPECT_FALSE(ParseMatchResponse("ok 1 -1:0").ok());     // negative doc
  EXPECT_FALSE(ParseMatchResponse("ok 1 1:-2").ok());     // cluster < -1
}

// ---------------------------------------------------------------------------
// Service layer.

class ResolutionServiceMatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = new corpus::SyntheticData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static std::unique_ptr<ResolutionService> MakeService() {
    auto service = ResolutionService::Create(data_->dataset,
                                             &data_->gazetteer, {});
    EXPECT_TRUE(service.ok()) << service.status();
    return std::move(service).ValueOrDie();
  }

  static const corpus::Block& Block(int i) { return data_->dataset.blocks[i]; }

  static std::vector<int> AllDocs(const corpus::Block& block) {
    std::vector<int> docs(block.num_documents());
    for (int d = 0; d < block.num_documents(); ++d) docs[d] = d;
    return docs;
  }

  static void Fill(ResolutionService* service) {
    for (const corpus::Block& block : data_->dataset.blocks) {
      for (int d = 0; d < block.num_documents(); ++d) {
        ASSERT_TRUE(service->Assign(block.query, d).ok());
      }
    }
    ASSERT_TRUE(service->CompactAll().ok());
  }

  static corpus::SyntheticData* data_;
};

corpus::SyntheticData* ResolutionServiceMatchTest::data_ = nullptr;

TEST_F(ResolutionServiceMatchTest, EmptySnapshotLeavesEverythingUnmatched) {
  auto service = MakeService();
  auto result = service->Match(Block(0).query, AllDocs(Block(0)));
  ASSERT_TRUE(result.ok()) << result.status();
  for (int cluster : result->clusters) EXPECT_EQ(cluster, -1);
}

TEST_F(ResolutionServiceMatchTest, MatchIsOneToOneOverSnapshotClusters) {
  auto service = MakeService();
  Fill(service.get());
  const corpus::Block& block = Block(0);
  auto result = service->Match(block.query, AllDocs(block));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->clusters.size(), AllDocs(block).size());
  EXPECT_GT(result->snapshot_version, 0u);

  std::set<int> used;
  int matched = 0;
  for (int cluster : result->clusters) {
    if (cluster < 0) continue;
    ++matched;
    EXPECT_TRUE(used.insert(cluster).second)
        << "cluster " << cluster << " assigned to two documents";
  }
  // Every page of the block is in the compacted snapshot, so at least its
  // own cluster clears the shard threshold for some document.
  EXPECT_GT(matched, 0);
}

TEST_F(ResolutionServiceMatchTest, ResultsArriveInRequestOrder) {
  auto service = MakeService();
  Fill(service.get());
  const corpus::Block& block = Block(0);
  std::vector<int> forward = AllDocs(block);
  std::vector<int> reversed(forward.rbegin(), forward.rend());
  auto a = service->Match(block.query, forward);
  auto b = service->Match(block.query, reversed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->clusters.size(), b->clusters.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(a->clusters[i], b->clusters[b->clusters.size() - 1 - i]);
  }
}

TEST_F(ResolutionServiceMatchTest, ValidatesBlockAndDocuments) {
  auto service = MakeService();
  EXPECT_EQ(service->Match("nonesuch", {0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->Match(Block(0).query, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Match(Block(0).query, {-1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service->Match(Block(0).query, {Block(0).num_documents()}).status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Match(Block(0).query, {0, 1, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ResolutionServiceMatchTest, ExpiredDeadlineIsRejected) {
  auto service = MakeService();
  RequestDeadline deadline = RequestDeadline::In(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto result = service->Match(Block(0).query, {0}, deadline);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ResolutionServiceMatchTest, StatsAreGatedUntilFirstMatch) {
  auto service = MakeService();
  Fill(service.get());
  // Unused verb: no match counter, no match endpoint, no trace of the
  // subsystem in the serialized stats (the byte-compatibility guarantee).
  EXPECT_EQ(service->Stats().matches, 0);
  std::ostringstream before;
  service->WriteStatsJson(before);
  EXPECT_EQ(before.str().find("match"), std::string::npos);

  ASSERT_TRUE(service->Match(Block(0).query, {0, 1}).ok());
  EXPECT_EQ(service->Stats().matches, 1);
  EXPECT_GT(service->Stats().match.count, 0);
  std::ostringstream after;
  service->WriteStatsJson(after);
  EXPECT_NE(after.str().find("\"matches\""), std::string::npos);
  EXPECT_NE(after.str().find("\"match\""), std::string::npos);
}

TEST_F(ResolutionServiceMatchTest, CompiledPathMatchIsBitIdenticalToInterpreted) {
  // The default service scores Match through the compiled strip kernels;
  // the same fill with compiled_path off must produce identical pairings
  // (the kernels are bit-identical, so this is equality, not tolerance).
  auto compiled = MakeService();
  ServiceOptions options;
  options.incremental.compiled_path = false;
  auto created =
      ResolutionService::Create(data_->dataset, &data_->gazetteer, options);
  ASSERT_TRUE(created.ok()) << created.status();
  auto interpreted = std::move(created).ValueOrDie();
  Fill(compiled.get());
  Fill(interpreted.get());
  for (const corpus::Block& block : data_->dataset.blocks) {
    auto a = compiled->Match(block.query, AllDocs(block));
    auto b = interpreted->Match(block.query, AllDocs(block));
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->clusters, b->clusters) << "block " << block.query;
  }
}

TEST_F(ResolutionServiceMatchTest, ConcurrentMatchesAndCompactionsAreSafe) {
  auto service = MakeService();
  Fill(service.get());
  const corpus::Block& block = Block(0);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = service->Match(block.query, {0, 1, 2});
        if (!result.ok() || result->clusters.size() != 3) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service->Compact(block.query).ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Server dispatch.

class LineServerMatchTest : public ResolutionServiceMatchTest {};

TEST_F(LineServerMatchTest, DispatchesMatchAndFormatsPairs) {
  auto service = MakeService();
  Fill(service.get());
  LineServer server(service.get(), {});
  bool quit = false;
  const corpus::Block& block = Block(0);
  const std::string line = "match " + block.query + " 2 0";
  const std::string response = server.HandleLine(line, &quit);
  EXPECT_FALSE(quit);
  auto pairs = ParseMatchResponse(response);
  ASSERT_TRUE(pairs.ok()) << response;
  ASSERT_EQ(pairs->size(), 2u);
  // Pairs echo the requested documents in request order.
  EXPECT_EQ((*pairs)[0].first, 2);
  EXPECT_EQ((*pairs)[1].first, 0);
}

TEST_F(LineServerMatchTest, SurfacesServiceErrorsOnTheWire) {
  auto service = MakeService();
  LineServer server(service.get(), {});
  bool quit = false;
  const std::string response = server.HandleLine("match nonesuch 0", &quit);
  EXPECT_EQ(response.rfind("err ", 0), 0u) << response;
  auto parsed = ParseResponse(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, Response::Kind::kError);
  EXPECT_EQ(parsed->code, StatusCode::kNotFound);
}

}  // namespace
}  // namespace serve
}  // namespace weber

#include "extract/feature_extractor.h"

#include <gtest/gtest.h>

namespace weber {
namespace extract {
namespace {

class FeatureExtractorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alice_ = gazetteer_.Add("alice cohen", EntityType::kPerson);
    bob_ = gazetteer_.Add("bob cohen", EntityType::kPerson);
    carol_ = gazetteer_.Add("carol smith", EntityType::kPerson);
    bare_ = gazetteer_.Add("cohen", EntityType::kPerson);
    epfl_ = gazetteer_.Add("epfl", EntityType::kOrganization);
    ml_ = gazetteer_.Add("machine learning", EntityType::kConcept, 2.0);
    db_ = gazetteer_.Add("databases", EntityType::kConcept, 1.0);
    zurich_ = gazetteer_.Add("zurich", EntityType::kLocation);
    gazetteer_.Build();
  }

  std::vector<FeatureBundle> Extract(std::vector<PageInput> pages) {
    auto result = extractor().ExtractBlock(pages, "cohen");
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).ValueOrDie();
  }

  FeatureExtractor extractor() { return FeatureExtractor(&gazetteer_, {}); }

  Gazetteer gazetteer_;
  int alice_ = 0, bob_ = 0, carol_ = 0, bare_ = 0, epfl_ = 0, ml_ = 0,
      db_ = 0, zurich_ = 0;
};

TEST_F(FeatureExtractorTest, EmptyBlockRejected) {
  auto result = extractor().ExtractBlock({}, "cohen");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FeatureExtractorTest, MostFrequentNameIsTheDominantMention) {
  auto bundles = Extract({{"http://x.com/a",
                           "alice cohen wrote this. alice cohen works at "
                           "epfl. bob cohen visited once."}});
  EXPECT_EQ(bundles[0].most_frequent_name, "alice cohen");
}

TEST_F(FeatureExtractorTest, ClosestNameIsNearTheKeyword) {
  // "bob cohen" contains the keyword; "carol smith" is far from it.
  auto bundles = Extract(
      {{"http://x.com/a", "carol smith met someone. later bob cohen arrived"}});
  EXPECT_EQ(bundles[0].closest_name, "bob cohen");
}

TEST_F(FeatureExtractorTest, OtherPersonsExcludeTheQueriedPerson) {
  auto bundles = Extract(
      {{"http://x.com/a", "alice cohen and carol smith run a lab"}});
  const auto& others = bundles[0].other_persons;
  EXPECT_DOUBLE_EQ(others.GetWeight(carol_), 1.0);
  EXPECT_DOUBLE_EQ(others.GetWeight(alice_), 0.0);
  EXPECT_DOUBLE_EQ(others.GetWeight(bare_), 0.0);
}

TEST_F(FeatureExtractorTest, OrganizationsAndConceptsAreSeparated) {
  auto bundles = Extract({{"http://x.com/a",
                           "alice cohen of epfl studies machine learning and "
                           "databases in zurich"}});
  EXPECT_DOUBLE_EQ(bundles[0].organizations.GetWeight(epfl_), 1.0);
  EXPECT_DOUBLE_EQ(bundles[0].concepts.GetWeight(ml_), 1.0);
  EXPECT_DOUBLE_EQ(bundles[0].concepts.GetWeight(db_), 1.0);
  // Locations contribute to the concept incidence vector.
  EXPECT_DOUBLE_EQ(bundles[0].concepts.GetWeight(zurich_), 1.0);
  // But not to organizations.
  EXPECT_DOUBLE_EQ(bundles[0].organizations.GetWeight(zurich_), 0.0);
}

TEST_F(FeatureExtractorTest, WeightedConceptsUseGazetteerWeights) {
  auto bundles = Extract({{"http://x.com/a",
                           "machine learning and databases and machine "
                           "learning again"}});
  // ml weight 2.0, mentioned twice -> 4.0; db weight 1.0 once -> 1.0.
  EXPECT_DOUBLE_EQ(bundles[0].weighted_concepts.GetWeight(ml_), 4.0);
  EXPECT_DOUBLE_EQ(bundles[0].weighted_concepts.GetWeight(db_), 1.0);
}

TEST_F(FeatureExtractorTest, PagesWithoutPersonsHaveEmptyNameFeatures) {
  auto bundles = Extract({{"http://x.com/a", "nothing but databases here"}});
  EXPECT_TRUE(bundles[0].most_frequent_name.empty());
  EXPECT_TRUE(bundles[0].closest_name.empty());
}

TEST_F(FeatureExtractorTest, TfIdfVectorsFittedPerBlock) {
  auto bundles = Extract({
      {"http://x.com/a", "machine learning research papers about learning"},
      {"http://x.com/b", "databases systems research"},
  });
  ASSERT_EQ(bundles.size(), 2u);
  EXPECT_FALSE(bundles[0].tfidf.empty());
  EXPECT_FALSE(bundles[1].tfidf.empty());
  EXPECT_GT(bundles[0].tfidf_dimension, 0);
  EXPECT_EQ(bundles[0].tfidf_dimension, bundles[1].tfidf_dimension);
  EXPECT_NEAR(bundles[0].tfidf.Norm(), 1.0, 1e-9);
}

TEST_F(FeatureExtractorTest, UrlIsPassedThrough) {
  auto bundles = Extract({{"http://host.org/page", "alice cohen"}});
  EXPECT_EQ(bundles[0].url, "http://host.org/page");
}

TEST_F(FeatureExtractorTest, BoilerplateConceptsAreSuppressed) {
  // A concept on (almost) every page of the block carries no signal; with
  // max_concept_block_frequency = 0.5 it must be dropped.
  FeatureExtractorOptions options;
  options.max_concept_block_frequency = 0.5;
  options.min_block_size_for_suppression = 2;
  FeatureExtractor fx(&gazetteer_, options);
  std::vector<PageInput> pages = {
      {"u1", "machine learning everywhere"},
      {"u2", "machine learning here too"},
      {"u3", "machine learning and databases"},
  };
  auto result = fx.ExtractBlock(pages, "cohen");
  ASSERT_TRUE(result.ok());
  // "machine learning" on 3/3 pages > 0.5 -> suppressed everywhere;
  // "databases" on 1/3 pages -> kept.
  EXPECT_DOUBLE_EQ((*result)[2].concepts.GetWeight(ml_), 0.0);
  EXPECT_DOUBLE_EQ((*result)[2].concepts.GetWeight(db_), 1.0);
}

TEST_F(FeatureExtractorTest, KeywordInsideMentionHasDistanceZeroPriority) {
  // Both names are near a keyword occurrence, but "bob cohen" *contains*
  // one; it must win over carol smith adjacent to a bare "cohen".
  auto bundles = Extract({{"http://x.com/a",
                           "carol smith cohen then later bob cohen again"}});
  EXPECT_EQ(bundles[0].closest_name, "bob cohen");
}

}  // namespace
}  // namespace extract
}  // namespace weber

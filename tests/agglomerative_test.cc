#include "graph/agglomerative.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/components.h"

namespace weber {
namespace graph {
namespace {

SimilarityMatrix Planted(const std::vector<int>& labels, double p_in,
                         double p_out) {
  const int n = static_cast<int>(labels.size());
  SimilarityMatrix m(n, 0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      m.Set(i, j, labels[i] == labels[j] ? p_in : p_out);
    }
  }
  return m;
}

TEST(AgglomerativeTest, TrivialSizes) {
  EXPECT_EQ(AgglomerativeClustering(SimilarityMatrix(0)).num_items(), 0);
  Clustering one = AgglomerativeClustering(SimilarityMatrix(1, 0.0, 1.0));
  EXPECT_EQ(one.num_items(), 1);
}

TEST(AgglomerativeTest, RecoversPlantedClusters) {
  std::vector<int> labels = {0, 0, 0, 1, 1, 2, 2, 2};
  SimilarityMatrix m = Planted(labels, 0.9, 0.1);
  for (Linkage linkage : {Linkage::kSingle, Linkage::kComplete,
                          Linkage::kAverage}) {
    AgglomerativeOptions options;
    options.linkage = linkage;
    EXPECT_EQ(AgglomerativeClustering(m, options),
              Clustering::FromLabels(labels))
        << LinkageToString(linkage);
  }
}

TEST(AgglomerativeTest, StopThresholdControlsGranularity) {
  std::vector<int> labels = {0, 0, 1, 1};
  SimilarityMatrix m = Planted(labels, 0.8, 0.4);
  AgglomerativeOptions fine;
  fine.stop_threshold = 0.9;  // nothing reaches 0.9 -> all singletons
  EXPECT_EQ(AgglomerativeClustering(m, fine).num_clusters(), 4);
  AgglomerativeOptions coarse;
  coarse.stop_threshold = 0.3;  // everything merges
  EXPECT_EQ(AgglomerativeClustering(m, coarse).num_clusters(), 1);
  AgglomerativeOptions balanced;
  balanced.stop_threshold = 0.6;
  EXPECT_EQ(AgglomerativeClustering(m, balanced),
            Clustering::FromLabels(labels));
}

TEST(AgglomerativeTest, CompleteLinkageResistsChaining) {
  // A chain: 0-1 strong, 1-2 strong, but 0-2 weak. Single linkage merges
  // all three; complete linkage refuses the final merge.
  SimilarityMatrix m(3, 0.0, 1.0);
  m.Set(0, 1, 0.9);
  m.Set(1, 2, 0.9);
  m.Set(0, 2, 0.1);
  AgglomerativeOptions single;
  single.linkage = Linkage::kSingle;
  single.stop_threshold = 0.5;
  EXPECT_EQ(AgglomerativeClustering(m, single).num_clusters(), 1);
  AgglomerativeOptions complete;
  complete.linkage = Linkage::kComplete;
  complete.stop_threshold = 0.5;
  EXPECT_EQ(AgglomerativeClustering(m, complete).num_clusters(), 2);
}

TEST(AgglomerativeTest, AverageLinkageWeighsClusterSizes) {
  // Cluster {0,1} at 0.9; candidate 2 with sim 0.8 to 0 and 0.2 to 1:
  // average = 0.5, which a 0.6 threshold rejects but 0.45 accepts.
  SimilarityMatrix m(3, 0.0, 1.0);
  m.Set(0, 1, 0.9);
  m.Set(0, 2, 0.8);
  m.Set(1, 2, 0.2);
  AgglomerativeOptions strict;
  strict.stop_threshold = 0.6;
  EXPECT_EQ(AgglomerativeClustering(m, strict).num_clusters(), 2);
  AgglomerativeOptions loose;
  loose.stop_threshold = 0.45;
  EXPECT_EQ(AgglomerativeClustering(m, loose).num_clusters(), 1);
}

TEST(AgglomerativeTest, SingleLinkageMatchesTransitiveClosureAtThreshold) {
  // Property: single-linkage with stop threshold t produces exactly the
  // connected components of the "similarity >= t" graph.
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 25;
    SimilarityMatrix m(n, 0.0, 1.0);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        m.Set(i, j, rng.UniformDouble());
      }
    }
    AgglomerativeOptions options;
    options.linkage = Linkage::kSingle;
    options.stop_threshold = 0.7;
    Clustering agg = AgglomerativeClustering(m, options);

    DecisionGraph g(n, 0, 1);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (m.Get(i, j) >= 0.7) g.Set(i, j, 1);
      }
    }
    EXPECT_EQ(agg, TransitiveClosure(g));
  }
}

TEST(LinkageNamesTest, Stable) {
  EXPECT_EQ(LinkageToString(Linkage::kSingle), "single");
  EXPECT_EQ(LinkageToString(Linkage::kComplete), "complete");
  EXPECT_EQ(LinkageToString(Linkage::kAverage), "average");
}

}  // namespace
}  // namespace graph
}  // namespace weber

#include "eval/significance.h"

#include <gtest/gtest.h>

namespace weber {
namespace eval {
namespace {

TEST(PairedBootstrapTest, RejectsBadInput) {
  EXPECT_FALSE(PairedBootstrap({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(PairedBootstrap({1.0}, {1.0}).ok());
  EXPECT_FALSE(PairedBootstrap({}, {}).ok());
}

TEST(PairedBootstrapTest, ClearImprovementIsSignificant) {
  // a beats b on every block by a consistent margin.
  std::vector<double> a = {0.85, 0.88, 0.90, 0.86, 0.83, 0.87, 0.89, 0.84};
  std::vector<double> b = {0.80, 0.81, 0.84, 0.79, 0.78, 0.83, 0.82, 0.80};
  auto r = PairedBootstrap(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->mean_difference, 0.05625, 1e-9);
  EXPECT_LT(r->p_value, 0.01);
  EXPECT_GT(r->ci_low, 0.0);
  EXPECT_LT(r->ci_low, r->ci_high);
}

TEST(PairedBootstrapTest, NoDifferenceIsNotSignificant) {
  std::vector<double> a = {0.8, 0.7, 0.9, 0.6, 0.75, 0.85};
  std::vector<double> b = {0.7, 0.8, 0.6, 0.9, 0.85, 0.75};  // permuted
  auto r = PairedBootstrap(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->mean_difference, 0.0, 1e-9);
  EXPECT_GT(r->p_value, 0.10);
  EXPECT_LE(r->ci_low, 0.0);
  EXPECT_GE(r->ci_high, 0.0);
}

TEST(PairedBootstrapTest, ConsistentDegradationHasHighPValue) {
  std::vector<double> a = {0.70, 0.71, 0.69, 0.72};
  std::vector<double> b = {0.80, 0.81, 0.79, 0.82};
  auto r = PairedBootstrap(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->mean_difference, 0.0);
  EXPECT_GT(r->p_value, 0.99);
}

TEST(PairedBootstrapTest, DeterministicForFixedSeed) {
  std::vector<double> a = {0.8, 0.85, 0.9, 0.7};
  std::vector<double> b = {0.78, 0.84, 0.86, 0.72};
  BootstrapOptions options;
  options.seed = 7;
  auto r1 = PairedBootstrap(a, b, options);
  auto r2 = PairedBootstrap(a, b, options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->p_value, r2->p_value);
  EXPECT_DOUBLE_EQ(r1->ci_low, r2->ci_low);
}

}  // namespace
}  // namespace eval
}  // namespace weber

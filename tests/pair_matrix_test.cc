#include "graph/pair_matrix.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/components.h"

namespace weber {
namespace graph {
namespace {

TEST(PairMatrixTest, DiagonalIsImplicit) {
  SimilarityMatrix m(4, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(m.Get(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 1), 0.0);  // init value
}

TEST(PairMatrixTest, SetGetIsSymmetric) {
  SimilarityMatrix m(5, 0.0, 1.0);
  m.Set(1, 3, 0.42);
  EXPECT_DOUBLE_EQ(m.Get(1, 3), 0.42);
  EXPECT_DOUBLE_EQ(m.Get(3, 1), 0.42);
  m.Set(4, 0, 0.9);
  EXPECT_DOUBLE_EQ(m.Get(0, 4), 0.9);
}

TEST(PairMatrixTest, StorageSizeIsTriangular) {
  EXPECT_EQ(SimilarityMatrix(0).num_pairs(), 0u);
  EXPECT_EQ(SimilarityMatrix(1).num_pairs(), 0u);
  EXPECT_EQ(SimilarityMatrix(2).num_pairs(), 1u);
  EXPECT_EQ(SimilarityMatrix(10).num_pairs(), 45u);
}

TEST(PairMatrixTest, IndexIsABijectionOverPairs) {
  const int n = 17;
  SimilarityMatrix m(n);
  std::set<size_t> seen;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      size_t idx = m.Index(i, j);
      EXPECT_LT(idx, m.num_pairs());
      EXPECT_TRUE(seen.insert(idx).second) << i << "," << j;
      EXPECT_EQ(m.Index(j, i), idx);  // unordered
    }
  }
  EXPECT_EQ(seen.size(), m.num_pairs());
}

TEST(PairMatrixTest, IndexLayoutIsRowMajorUpperTriangle) {
  SimilarityMatrix m(4);
  // (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5
  EXPECT_EQ(m.Index(0, 1), 0u);
  EXPECT_EQ(m.Index(0, 3), 2u);
  EXPECT_EQ(m.Index(1, 2), 3u);
  EXPECT_EQ(m.Index(2, 3), 5u);
}

TEST(PairMatrixTest, CharSpecialization) {
  DecisionGraph g(3, 0, 1);
  EXPECT_EQ(g.Get(1, 1), 1);  // diagonal: a node matches itself
  EXPECT_EQ(g.Get(0, 1), 0);
  g.Set(0, 1, 1);
  EXPECT_EQ(g.Get(1, 0), 1);
}

TEST(PairMatrixTest, DataGivesDirectPairAccess) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.1);
  m.Set(0, 2, 0.2);
  m.Set(1, 2, 0.3);
  ASSERT_EQ(m.data().size(), 3u);
  EXPECT_DOUBLE_EQ(m.data()[m.Index(0, 1)], 0.1);
  EXPECT_DOUBLE_EQ(m.data()[m.Index(1, 2)], 0.3);
}

}  // namespace
}  // namespace graph
}  // namespace weber

// GenerateCleanClean tests: seed determinism (byte-identical corpora and
// ground truth), per-collection duplicate-freedom, overlap-fraction
// honoring, truth-bijection well-formedness, and argument validation.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "corpus/generator.h"
#include "corpus/presets.h"

namespace weber {
namespace corpus {
namespace {

CleanCleanData Generate(double overlap, uint64_t seed = 0) {
  GeneratorConfig config = TinyConfig();
  if (seed != 0) config.seed = seed;
  auto data = SyntheticWebGenerator(config).GenerateCleanClean(overlap);
  EXPECT_TRUE(data.ok()) << data.status();
  return std::move(data).ValueOrDie();
}

bool DatasetsIdentical(const Dataset& a, const Dataset& b) {
  if (a.name != b.name || a.blocks.size() != b.blocks.size()) return false;
  for (size_t i = 0; i < a.blocks.size(); ++i) {
    const Block& x = a.blocks[i];
    const Block& y = b.blocks[i];
    if (x.query != y.query || x.entity_labels != y.entity_labels ||
        x.documents.size() != y.documents.size()) {
      return false;
    }
    for (size_t d = 0; d < x.documents.size(); ++d) {
      if (x.documents[d].id != y.documents[d].id ||
          x.documents[d].url != y.documents[d].url ||
          x.documents[d].text != y.documents[d].text) {
        return false;
      }
    }
  }
  return true;
}

TEST(CleanCleanGenerator, SameSeedIsByteIdentical) {
  CleanCleanData a = Generate(0.6);
  CleanCleanData b = Generate(0.6);
  EXPECT_TRUE(DatasetsIdentical(a.left, b.left));
  EXPECT_TRUE(DatasetsIdentical(a.right, b.right));
  EXPECT_EQ(a.truth, b.truth);
}

TEST(CleanCleanGenerator, DifferentSeedsDiffer) {
  CleanCleanData a = Generate(0.6, 11);
  CleanCleanData b = Generate(0.6, 12);
  EXPECT_FALSE(DatasetsIdentical(a.left, b.left));
}

TEST(CleanCleanGenerator, CollectionsAreParallelAndNamed) {
  CleanCleanData data = Generate(0.6);
  ASSERT_EQ(data.left.blocks.size(), data.right.blocks.size());
  ASSERT_EQ(data.truth.size(), data.left.blocks.size());
  EXPECT_NE(data.left.name.find("-left"), std::string::npos);
  EXPECT_NE(data.right.name.find("-right"), std::string::npos);
  for (size_t b = 0; b < data.left.blocks.size(); ++b) {
    EXPECT_EQ(data.left.blocks[b].query, data.right.blocks[b].query);
    // One page per persona on each side, same page count on both.
    EXPECT_EQ(data.left.blocks[b].num_documents(),
              data.right.blocks[b].num_documents());
  }
}

TEST(CleanCleanGenerator, EachCollectionIsDuplicateFree) {
  CleanCleanData data = Generate(0.6);
  for (const Dataset* side : {&data.left, &data.right}) {
    for (const Block& block : side->blocks) {
      std::set<int> labels(block.entity_labels.begin(),
                           block.entity_labels.end());
      EXPECT_EQ(static_cast<int>(labels.size()), block.num_documents())
          << side->name << " block " << block.query
          << " has two pages for one persona";
    }
  }
}

TEST(CleanCleanGenerator, OverlapFractionIsHonored) {
  for (double overlap : {0.25, 0.5, 1.0}) {
    CleanCleanData data = Generate(overlap);
    for (size_t b = 0; b < data.truth.size(); ++b) {
      const int entities = data.left.blocks[b].num_documents();
      const long long expected = std::max(
          1LL, std::llround(overlap * entities));
      EXPECT_EQ(static_cast<long long>(data.truth[b].size()), expected)
          << "overlap " << overlap << " block " << b;
    }
  }
}

TEST(CleanCleanGenerator, FullOverlapIsAPerfectBijection) {
  CleanCleanData data = Generate(1.0);
  for (size_t b = 0; b < data.truth.size(); ++b) {
    EXPECT_EQ(data.truth[b].size(),
              static_cast<size_t>(data.left.blocks[b].num_documents()));
  }
}

TEST(CleanCleanGenerator, TruthIsASortedPartialBijection) {
  CleanCleanData data = Generate(0.5);
  for (size_t b = 0; b < data.truth.size(); ++b) {
    const Block& left = data.left.blocks[b];
    const Block& right = data.right.blocks[b];
    std::set<int> lefts, rights;
    int prev_left = -1;
    for (const auto& [l, r] : data.truth[b]) {
      ASSERT_GE(l, 0);
      ASSERT_LT(l, left.num_documents());
      ASSERT_GE(r, 0);
      ASSERT_LT(r, right.num_documents());
      EXPECT_GT(l, prev_left) << "truth not sorted by left document";
      prev_left = l;
      EXPECT_TRUE(lefts.insert(l).second) << "left document matched twice";
      EXPECT_TRUE(rights.insert(r).second) << "right document matched twice";
    }
  }
}

TEST(CleanCleanGenerator, TruthPairsShareAPersonaAndOthersDoNot) {
  CleanCleanData data = Generate(0.5);
  for (size_t b = 0; b < data.truth.size(); ++b) {
    const Block& left = data.left.blocks[b];
    const Block& right = data.right.blocks[b];
    std::set<std::pair<int, int>> truth(data.truth[b].begin(),
                                        data.truth[b].end());
    for (int l = 0; l < left.num_documents(); ++l) {
      for (int r = 0; r < right.num_documents(); ++r) {
        const bool same_persona =
            left.entity_labels[l] == right.entity_labels[r];
        EXPECT_EQ(same_persona, truth.count({l, r}) > 0)
            << "block " << b << " pair (" << l << "," << r << ")";
      }
    }
  }
}

TEST(CleanCleanGenerator, RejectsBadOverlapFractions) {
  GeneratorConfig config = TinyConfig();
  SyntheticWebGenerator gen(config);
  for (double overlap : {0.0, -0.5, 1.5}) {
    auto data = gen.GenerateCleanClean(overlap);
    ASSERT_FALSE(data.ok()) << "overlap " << overlap;
    EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CleanCleanGenerator, RejectsEmptyConfigs) {
  GeneratorConfig config = TinyConfig();
  config.names.clear();
  auto data = SyntheticWebGenerator(config).GenerateCleanClean(0.5);
  EXPECT_FALSE(data.ok());
}

}  // namespace
}  // namespace corpus
}  // namespace weber

#include "graph/correlation_clustering.h"

#include <gtest/gtest.h>

namespace weber {
namespace graph {
namespace {

/// Builds a probability matrix with planted clusters: within-cluster pairs
/// get probability `p_in`, cross pairs `p_out`.
SimilarityMatrix Planted(const std::vector<int>& labels, double p_in,
                         double p_out) {
  const int n = static_cast<int>(labels.size());
  SimilarityMatrix m(n, 0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      m.Set(i, j, labels[i] == labels[j] ? p_in : p_out);
    }
  }
  return m;
}

TEST(CorrelationCostTest, PerfectClusteringHasZeroCost) {
  std::vector<int> labels = {0, 0, 1, 1, 2};
  SimilarityMatrix m = Planted(labels, 0.9, 0.1);
  EXPECT_DOUBLE_EQ(CorrelationCost(m, Clustering::FromLabels(labels)), 0.0);
}

TEST(CorrelationCostTest, WrongClusteringPaysMargins) {
  // Two items with p = 0.9 split apart: cost |0.9 - 0.5| = 0.4.
  SimilarityMatrix m(2, 0.0, 1.0);
  m.Set(0, 1, 0.9);
  EXPECT_DOUBLE_EQ(CorrelationCost(m, Clustering::Singletons(2)), 0.4);
  EXPECT_DOUBLE_EQ(CorrelationCost(m, Clustering::OneCluster(2)), 0.0);
  // And merged at p = 0.2: cost 0.3.
  m.Set(0, 1, 0.2);
  EXPECT_NEAR(CorrelationCost(m, Clustering::OneCluster(2)), 0.3, 1e-12);
}

TEST(CorrelationClusteringTest, RecoversCleanPlantedClusters) {
  std::vector<int> labels = {0, 0, 0, 1, 1, 1, 2, 2, 2, 2};
  SimilarityMatrix m = Planted(labels, 0.95, 0.05);
  Clustering found = CorrelationClustering(m);
  EXPECT_EQ(found, Clustering::FromLabels(labels));
}

TEST(CorrelationClusteringTest, HandlesEmptyAndSingle) {
  EXPECT_EQ(CorrelationClustering(SimilarityMatrix(0)).num_items(), 0);
  Clustering one = CorrelationClustering(SimilarityMatrix(1, 0.0, 1.0));
  EXPECT_EQ(one.num_items(), 1);
  EXPECT_EQ(one.num_clusters(), 1);
}

TEST(CorrelationClusteringTest, AllNegativeYieldsSingletons) {
  SimilarityMatrix m(6, 0.1, 1.0);
  EXPECT_EQ(CorrelationClustering(m).num_clusters(), 6);
}

TEST(CorrelationClusteringTest, AllPositiveYieldsOneCluster) {
  SimilarityMatrix m(6, 0.9, 1.0);
  EXPECT_EQ(CorrelationClustering(m).num_clusters(), 1);
}

TEST(CorrelationClusteringTest, DeterministicForFixedSeed) {
  Rng noise(5);
  SimilarityMatrix m(20, 0.0, 1.0);
  for (int i = 0; i < 20; ++i) {
    for (int j = i + 1; j < 20; ++j) {
      m.Set(i, j, noise.UniformDouble());
    }
  }
  CorrelationClusteringOptions options;
  options.seed = 99;
  EXPECT_EQ(CorrelationClustering(m, options),
            CorrelationClustering(m, options));
}

TEST(CorrelationClusteringTest, LocalSearchDoesNotHurt) {
  // With local search on, the final cost must be <= the pivot-only cost for
  // the same seed budget.
  Rng noise(11);
  SimilarityMatrix m(30, 0.0, 1.0);
  std::vector<int> planted(30);
  for (int i = 0; i < 30; ++i) planted[i] = i / 6;
  for (int i = 0; i < 30; ++i) {
    for (int j = i + 1; j < 30; ++j) {
      double base = planted[i] == planted[j] ? 0.8 : 0.2;
      m.Set(i, j, base + noise.UniformDouble(-0.15, 0.15));
    }
  }
  CorrelationClusteringOptions no_ls;
  no_ls.local_search_rounds = 0;
  no_ls.pivot_restarts = 4;
  CorrelationClusteringOptions with_ls = no_ls;
  with_ls.local_search_rounds = 4;
  double cost_no_ls = CorrelationCost(m, CorrelationClustering(m, no_ls));
  double cost_ls = CorrelationCost(m, CorrelationClustering(m, with_ls));
  EXPECT_LE(cost_ls, cost_no_ls + 1e-9);
}

TEST(CorrelationClusteringTest, NoisyPlantedClustersMostlyRecovered) {
  Rng noise(13);
  std::vector<int> planted(24);
  for (int i = 0; i < 24; ++i) planted[i] = i / 8;
  SimilarityMatrix m(24, 0.0, 1.0);
  for (int i = 0; i < 24; ++i) {
    for (int j = i + 1; j < 24; ++j) {
      double base = planted[i] == planted[j] ? 0.75 : 0.25;
      m.Set(i, j, base + noise.UniformDouble(-0.2, 0.2));
    }
  }
  Clustering found = CorrelationClustering(m);
  // The planted partition costs little; the found one must cost no more
  // than 1.5x the planted cost (loose bound; typically it matches).
  double planted_cost = CorrelationCost(m, Clustering::FromLabels(planted));
  EXPECT_LE(CorrelationCost(m, found), planted_cost * 1.5 + 1e-9);
}

TEST(CorrelationClusteringTest, CustomPositiveThreshold) {
  SimilarityMatrix m(4, 0.4, 1.0);  // all pairs at 0.4
  CorrelationClusteringOptions strict;
  strict.positive_threshold = 0.3;  // 0.4 now counts as positive
  EXPECT_EQ(CorrelationClustering(m, strict).num_clusters(), 1);
  CorrelationClusteringOptions loose;
  loose.positive_threshold = 0.5;
  EXPECT_EQ(CorrelationClustering(m, loose).num_clusters(), 4);
}

}  // namespace
}  // namespace graph
}  // namespace weber

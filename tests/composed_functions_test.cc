#include "core/composed_functions.h"

#include <gtest/gtest.h>

namespace weber {
namespace core {
namespace {

using extract::FeatureBundle;
using text::SparseVector;

FeatureBundle Bundle() {
  FeatureBundle fb;
  fb.concepts = SparseVector::FromPairs({{0, 1.0}, {1, 1.0}});
  fb.organizations = SparseVector::FromPairs({{5, 1.0}});
  fb.tfidf = SparseVector::FromPairs({{0, 0.6}, {1, 0.8}});
  fb.tfidf_dimension = 20;
  fb.most_frequent_name = "adam cohen";
  fb.closest_name = "a cohen";
  fb.url = "http://www.x.edu/a/b.html";
  return fb;
}

TEST(ComposeFunctionTest, RejectsTypeMismatches) {
  EXPECT_FALSE(
      ComposeFunction(PageFeature::kUrl, PairMeasure::kCosine, "bad").ok());
  EXPECT_FALSE(ComposeFunction(PageFeature::kConcepts,
                               PairMeasure::kJaroWinkler, "bad")
                   .ok());
  EXPECT_FALSE(ComposeFunction(PageFeature::kTfIdf,
                               PairMeasure::kNameCompatibility, "bad")
                   .ok());
}

TEST(ComposeFunctionTest, VectorComposition) {
  auto fn = ComposeFunction(PageFeature::kConcepts, PairMeasure::kJaccard,
                            "CJ");
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ((*fn)->name(), "CJ");
  EXPECT_EQ((*fn)->description(), "concepts / jaccard");
  FeatureBundle a = Bundle();
  FeatureBundle b = Bundle();
  b.concepts = SparseVector::FromPairs({{1, 1.0}, {2, 1.0}});
  // |{0,1} ∩ {1,2}| / |{0,1,2}| = 1/3.
  EXPECT_NEAR((*fn)->Compute(a, b), 1.0 / 3.0, 1e-12);
}

TEST(ComposeFunctionTest, StringComposition) {
  auto fn = ComposeFunction(PageFeature::kMostFrequentName,
                            PairMeasure::kNameCompatibility, "NC");
  ASSERT_TRUE(fn.ok());
  FeatureBundle a = Bundle();
  FeatureBundle b = Bundle();
  b.most_frequent_name = "a cohen";
  EXPECT_NEAR((*fn)->Compute(a, b), 0.8, 1e-12);  // initial match
  b.most_frequent_name = "brian cohen";
  EXPECT_NEAR((*fn)->Compute(a, b), 0.05, 1e-12);  // contradiction
}

TEST(ComposeFunctionTest, EmptyStringsScoreZeroForStringMeasures) {
  auto fn = ComposeFunction(PageFeature::kClosestName,
                            PairMeasure::kJaroWinkler, "JW");
  ASSERT_TRUE(fn.ok());
  FeatureBundle a = Bundle();
  FeatureBundle empty;
  EXPECT_DOUBLE_EQ((*fn)->Compute(a, empty), 0.0);
}

TEST(ComposeFunctionTest, AllValidCombinationsStayBounded) {
  FeatureBundle a = Bundle();
  FeatureBundle b = Bundle();
  b.concepts = SparseVector::FromPairs({{9, 1.0}});
  b.tfidf = SparseVector::FromPairs({{7, 1.0}});
  b.closest_name = "zed quark";
  for (PageFeature feature :
       {PageFeature::kWeightedConcepts, PageFeature::kConcepts,
        PageFeature::kOrganizations, PageFeature::kOtherPersons,
        PageFeature::kTfIdf}) {
    for (PairMeasure measure :
         {PairMeasure::kCosine, PairMeasure::kPearson,
          PairMeasure::kExtendedJaccard, PairMeasure::kJaccard,
          PairMeasure::kDice, PairMeasure::kOverlapCoefficient,
          PairMeasure::kSaturatingOverlap}) {
      auto fn = ComposeFunction(feature, measure, "X");
      ASSERT_TRUE(fn.ok());
      double v = (*fn)->Compute(a, b);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      EXPECT_DOUBLE_EQ(v, (*fn)->Compute(b, a));
    }
  }
  for (PageFeature feature :
       {PageFeature::kMostFrequentName, PageFeature::kClosestName,
        PageFeature::kUrl}) {
    for (PairMeasure measure :
         {PairMeasure::kJaroWinkler, PairMeasure::kLevenshtein,
          PairMeasure::kNgram, PairMeasure::kNameCompatibility,
          PairMeasure::kUrlTiers}) {
      auto fn = ComposeFunction(feature, measure, "Y");
      ASSERT_TRUE(fn.ok());
      double v = (*fn)->Compute(a, b);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(ExtendedFunctionsTest, SixteenFunctions) {
  auto fns = MakeExtendedFunctions();
  ASSERT_EQ(fns.size(), 16u);
  EXPECT_EQ(fns[10]->name(), "F11");
  EXPECT_EQ(fns[15]->name(), "F16");
  EXPECT_EQ(kSubsetExtended16.size(), 16u);
}

TEST(ExtendedFunctionsTest, SelectableThroughMakeFunctions) {
  auto fns = MakeFunctions({"F11", "F16"});
  ASSERT_TRUE(fns.ok());
  EXPECT_EQ((*fns)[0]->name(), "F11");
  EXPECT_EQ((*fns)[1]->name(), "F16");
  ASSERT_TRUE(MakeFunctions(kSubsetExtended16).ok());
}

TEST(ExtendedFunctionsTest, F11UsesStructuredComparison) {
  auto fns = MakeFunctions({"F7", "F11"});
  ASSERT_TRUE(fns.ok());
  FeatureBundle a = Bundle();
  FeatureBundle b = Bundle();
  a.closest_name = "adam cohen";
  b.closest_name = "brian cohen";
  // F7 (Jaro-Winkler) sees high string similarity; F11 sees a
  // contradiction.
  EXPECT_GT((*fns)[0]->Compute(a, b), 0.5);
  EXPECT_LT((*fns)[1]->Compute(a, b), 0.1);
}

TEST(EnumNamesTest, Stable) {
  EXPECT_EQ(PageFeatureToString(PageFeature::kTfIdf), "tfidf");
  EXPECT_EQ(PageFeatureToString(PageFeature::kUrl), "url");
  EXPECT_EQ(PairMeasureToString(PairMeasure::kCosine), "cosine");
  EXPECT_EQ(PairMeasureToString(PairMeasure::kNameCompatibility),
            "name-compatibility");
}

}  // namespace
}  // namespace core
}  // namespace weber

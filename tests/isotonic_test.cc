#include "ml/isotonic.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/decision.h"

namespace weber {
namespace ml {
namespace {

TEST(IsotonicTest, RejectsEmpty) {
  EXPECT_FALSE(IsotonicModel::Fit({}).ok());
}

TEST(IsotonicTest, PerfectlySeparableDataGivesTwoLevels) {
  std::vector<LabeledSimilarity> training = {
      {0.1, false}, {0.2, false}, {0.3, false},
      {0.7, true},  {0.8, true},  {0.9, true},
  };
  auto model = IsotonicModel::Fit(training);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->LinkProbability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model->LinkProbability(0.25), 0.0);
  EXPECT_DOUBLE_EQ(model->LinkProbability(0.75), 1.0);
  EXPECT_DOUBLE_EQ(model->LinkProbability(1.0), 1.0);
}

TEST(IsotonicTest, OutputIsNonDecreasing) {
  Rng rng(1);
  std::vector<LabeledSimilarity> training;
  for (int i = 0; i < 300; ++i) {
    double v = rng.UniformDouble();
    training.push_back({v, rng.Bernoulli(v)});
  }
  auto model = IsotonicModel::Fit(training);
  ASSERT_TRUE(model.ok());
  double prev = -1.0;
  for (double v = 0.0; v <= 1.0; v += 0.01) {
    double p = model->LinkProbability(v);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_GT(model->LinkProbability(0.95), model->LinkProbability(0.05));
}

TEST(IsotonicTest, ViolatorsArePooled) {
  // Labels decrease with value in the middle: PAV must pool into one
  // block with the average rate.
  std::vector<LabeledSimilarity> training = {
      {0.1, false}, {0.4, true}, {0.5, false}, {0.6, true},
      {0.7, false}, {0.9, true},
  };
  auto model = IsotonicModel::Fit(training);
  ASSERT_TRUE(model.ok());
  // Check monotone and that pooled middle sits strictly between 0 and 1.
  double mid = model->LinkProbability(0.55);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
  EXPECT_LE(model->LinkProbability(0.2), mid);
  EXPECT_GE(model->LinkProbability(0.95), mid);
}

TEST(IsotonicTest, ConstantLabelsGiveOneSegment) {
  std::vector<LabeledSimilarity> training = {
      {0.2, true}, {0.5, true}, {0.8, true}};
  auto model = IsotonicModel::Fit(training);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_segments(), 1);
  EXPECT_DOUBLE_EQ(model->LinkProbability(0.5), 1.0);
}

TEST(IsotonicTest, MatchesKnownPavExample) {
  // Classic PAV example: y = 1,0,1 at x = 1,2,3.
  // Block means: [1], then 0 violates -> pool {1,0} = 0.5; 1 is fine.
  std::vector<LabeledSimilarity> training = {
      {1.0, true}, {2.0, false}, {3.0, true}};
  auto model = IsotonicModel::Fit(training);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->num_segments(), 2);
  EXPECT_DOUBLE_EQ(model->levels()[0], 0.5);
  EXPECT_DOUBLE_EQ(model->levels()[1], 1.0);
}

TEST(IsotonicCriterionTest, FitsAndDecides) {
  core::IsotonicCriterion criterion;
  Rng rng(2);
  std::vector<LabeledSimilarity> training;
  for (int i = 0; i < 40; ++i) {
    training.push_back({0.1 + 0.005 * i, false});
    training.push_back({0.6 + 0.005 * i, true});
  }
  ASSERT_TRUE(criterion.Fit(training, &rng).ok());
  EXPECT_EQ(criterion.name(), "isotonic");
  EXPECT_DOUBLE_EQ(criterion.train_accuracy(), 1.0);
  EXPECT_FALSE(criterion.Decide(0.2));
  EXPECT_TRUE(criterion.Decide(0.8));
  EXPECT_LT(criterion.LinkProbability(0.2), 0.5);
}

TEST(IsotonicCriterionTest, CannotExpressMidBand) {
  // The Figure-1 structure: monotone models must misclassify a band.
  core::IsotonicCriterion criterion;
  Rng rng(3);
  std::vector<LabeledSimilarity> training;
  for (int i = 0; i < 20; ++i) {
    training.push_back({0.15, false});
    training.push_back({0.55, true});
    training.push_back({0.85, false});
  }
  ASSERT_TRUE(criterion.Fit(training, &rng).ok());
  EXPECT_LT(criterion.train_accuracy(), 1.0);
  // A free region model nails the same data (see decision_test.cc).
}

}  // namespace
}  // namespace ml
}  // namespace weber

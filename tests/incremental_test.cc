#include "core/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "eval/metrics.h"
#include "ml/splitter.h"

namespace weber {
namespace core {
namespace {

using extract::FeatureBundle;
using text::SparseVector;

std::vector<FeatureBundle> PlantedStream(std::vector<int>* labels) {
  // Three entities, four docs each, interleaved arrival order.
  std::vector<FeatureBundle> bundles(12);
  labels->resize(12);
  for (int i = 0; i < 12; ++i) {
    int entity = i % 3;
    (*labels)[i] = entity;
    int base = entity * 10;
    bundles[i].tfidf = SparseVector::FromPairs(
        {{base, 0.7}, {base + 1, 0.6}, {base + 2 + (i % 2), 0.4}});
    bundles[i].tfidf = bundles[i].tfidf.Normalized();
    bundles[i].tfidf_dimension = 40;
    bundles[i].most_frequent_name =
        std::string(1, static_cast<char>('a' + entity)) + "lice x";
    bundles[i].closest_name = bundles[i].most_frequent_name;
    bundles[i].url = "http://e" + std::to_string(entity) + ".edu/x/p.html";
  }
  return bundles;
}

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bundles_ = PlantedStream(&labels_);
    auto created = IncrementalResolver::Create({});
    ASSERT_TRUE(created.ok());
    resolver_ = std::make_unique<IncrementalResolver>(
        std::move(created).ValueOrDie());
    Rng rng(1);
    auto pairs = ml::SampleTrainingPairs(12, 0.6, &rng);
    ASSERT_TRUE(resolver_->CalibrateThreshold(bundles_, labels_, pairs).ok());
  }
  std::vector<FeatureBundle> bundles_;
  std::vector<int> labels_;
  std::unique_ptr<IncrementalResolver> resolver_;
};

TEST_F(IncrementalTest, UncalibratedAddFails) {
  auto fresh = IncrementalResolver::Create({});
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->calibrated());
  EXPECT_EQ(fresh->Add(bundles_[0]), -1);
}

TEST_F(IncrementalTest, CalibrationValidates) {
  auto fresh = IncrementalResolver::Create({});
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->CalibrateThreshold(bundles_, labels_, {}).ok());
  EXPECT_FALSE(
      fresh->CalibrateThreshold(bundles_, labels_, {{0, 99}}).ok());
  std::vector<int> short_labels = labels_;
  short_labels.pop_back();
  EXPECT_FALSE(
      fresh->CalibrateThreshold(bundles_, short_labels, {{0, 1}}).ok());
}

TEST_F(IncrementalTest, StreamingRecoversPlantedEntities) {
  for (const auto& b : bundles_) resolver_->Add(b);
  EXPECT_EQ(resolver_->num_documents(), 12);
  EXPECT_EQ(resolver_->CurrentClustering(),
            graph::Clustering::FromLabels(labels_));
}

TEST_F(IncrementalTest, FirstDocumentOpensCluster) {
  EXPECT_EQ(resolver_->Add(bundles_[0]), 0);
  EXPECT_EQ(resolver_->num_documents(), 1);
  EXPECT_EQ(resolver_->CurrentClustering().num_clusters(), 1);
}

TEST_F(IncrementalTest, AssignmentReturnsClusterIndex) {
  int c0 = resolver_->Add(bundles_[0]);  // entity 0
  int c1 = resolver_->Add(bundles_[1]);  // entity 1 -> new cluster
  int c2 = resolver_->Add(bundles_[3]);  // entity 0 again -> joins c0
  EXPECT_NE(c0, c1);
  EXPECT_EQ(c2, c0);
}

TEST_F(IncrementalTest, ResetKeepsCalibration) {
  resolver_->Add(bundles_[0]);
  resolver_->Reset();
  EXPECT_EQ(resolver_->num_documents(), 0);
  EXPECT_TRUE(resolver_->calibrated());
  for (const auto& b : bundles_) resolver_->Add(b);
  EXPECT_EQ(resolver_->CurrentClustering().num_clusters(), 3);
}

TEST_F(IncrementalTest, MaxLinkageVariantAlsoWorks) {
  IncrementalOptions options;
  options.assignment = IncrementalOptions::Assignment::kBestMax;
  auto created = IncrementalResolver::Create(options);
  ASSERT_TRUE(created.ok());
  Rng rng(2);
  auto pairs = ml::SampleTrainingPairs(12, 0.6, &rng);
  ASSERT_TRUE(created->CalibrateThreshold(bundles_, labels_, pairs).ok());
  for (const auto& b : bundles_) created->Add(b);
  EXPECT_EQ(created->CurrentClustering(),
            graph::Clustering::FromLabels(labels_));
}

TEST_F(IncrementalTest, SameArrivalOrderIsBitIdentical) {
  // Determinism contract the serving layer relies on: two resolvers fed the
  // same stream in the same order produce identical labels at every step.
  auto created = IncrementalResolver::Create({});
  ASSERT_TRUE(created.ok());
  auto twin = std::make_unique<IncrementalResolver>(
      std::move(created).ValueOrDie());
  Rng rng(1);
  auto pairs = ml::SampleTrainingPairs(12, 0.6, &rng);
  ASSERT_TRUE(twin->CalibrateThreshold(bundles_, labels_, pairs).ok());
  ASSERT_DOUBLE_EQ(twin->threshold(), resolver_->threshold());
  for (const auto& b : bundles_) {
    EXPECT_EQ(resolver_->Add(b), twin->Add(b));
    EXPECT_EQ(resolver_->CurrentClustering().labels(),
              twin->CurrentClustering().labels());
  }
}

TEST_F(IncrementalTest, BatchResolveIsArrivalOrderInvariant) {
  for (const auto& b : bundles_) resolver_->Add(b);
  auto forward = resolver_->BatchResolve();
  ASSERT_TRUE(forward.ok());

  auto created = IncrementalResolver::Create({});
  ASSERT_TRUE(created.ok());
  auto reversed = std::make_unique<IncrementalResolver>(
      std::move(created).ValueOrDie());
  Rng rng(1);
  auto pairs = ml::SampleTrainingPairs(12, 0.6, &rng);
  ASSERT_TRUE(reversed->CalibrateThreshold(bundles_, labels_, pairs).ok());
  std::vector<int> docs_reversed;
  for (int i = 11; i >= 0; --i) {
    reversed->Add(bundles_[i]);
    docs_reversed.push_back(i);
  }
  auto backward = reversed->BatchResolve();
  ASSERT_TRUE(backward.ok());

  // Translate the reversed partition back to canonical document ids before
  // comparing: position p in `backward` is document docs_reversed[p].
  std::vector<int> canonical(12, -1);
  for (int p = 0; p < 12; ++p) {
    canonical[docs_reversed[p]] = backward->label(p);
  }
  EXPECT_EQ(graph::Clustering::FromLabels(canonical), *forward);
}

TEST_F(IncrementalTest, BatchResolveRecoversPlantedEntities) {
  for (const auto& b : bundles_) resolver_->Add(b);
  auto batch = resolver_->BatchResolve();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, graph::Clustering::FromLabels(labels_));
}

TEST_F(IncrementalTest, AdoptPartitionReplacesClusters) {
  for (const auto& b : bundles_) resolver_->Add(b);
  auto batch = resolver_->BatchResolve();
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(resolver_->AdoptPartition(batch->Groups()).ok());
  EXPECT_EQ(resolver_->CurrentClustering(), *batch);
}

TEST_F(IncrementalTest, AdoptPartitionValidatesCoverage) {
  for (const auto& b : bundles_) resolver_->Add(b);
  // Missing a document.
  EXPECT_FALSE(resolver_->AdoptPartition({{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}})
                   .ok());
  // Document out of range.
  EXPECT_FALSE(
      resolver_->AdoptPartition(
                    {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12}})
          .ok());
  // Duplicate document.
  EXPECT_FALSE(
      resolver_->AdoptPartition(
                    {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {10, 11}})
          .ok());
  // Exact cover is accepted.
  EXPECT_TRUE(
      resolver_->AdoptPartition(
                   {{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}})
          .ok());
}

TEST_F(IncrementalTest, ScoreCacheObservesAndServesPairScores) {
  /// Counting cache: verifies the resolver consults and fills it.
  class CountingCache : public PairScoreCache {
   public:
    bool Lookup(int function_index, int a, int b, double* value) override {
      ++lookups;
      auto it = store.find(KeyOf(function_index, a, b));
      if (it == store.end()) return false;
      ++hits;
      *value = it->second;
      return true;
    }
    void Insert(int function_index, int a, int b, double value) override {
      store[KeyOf(function_index, a, b)] = value;
    }
    static long long KeyOf(int f, int a, int b) {
      return (static_cast<long long>(f) << 40) |
             (static_cast<long long>(std::min(a, b)) << 20) |
             static_cast<long long>(std::max(a, b));
    }
    std::map<long long, double> store;
    long long lookups = 0;
    long long hits = 0;
  };

  CountingCache cache;
  resolver_->set_score_cache(&cache);
  for (const auto& b : bundles_) resolver_->Add(b);
  EXPECT_GT(cache.lookups, 0);
  EXPECT_FALSE(cache.store.empty());
  // A full batch resolve re-scores every pair: now everything hits.
  const long long hits_before = cache.hits;
  auto batch = resolver_->BatchResolve();
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(cache.hits, hits_before);
  resolver_->set_score_cache(nullptr);
}

TEST(IncrementalCreateTest, RejectsUnknownFunctions) {
  IncrementalOptions bad;
  bad.function_names = {"F77"};
  EXPECT_FALSE(IncrementalResolver::Create(bad).ok());
}

}  // namespace
}  // namespace core
}  // namespace weber

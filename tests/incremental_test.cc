#include "core/incremental.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "ml/splitter.h"

namespace weber {
namespace core {
namespace {

using extract::FeatureBundle;
using text::SparseVector;

std::vector<FeatureBundle> PlantedStream(std::vector<int>* labels) {
  // Three entities, four docs each, interleaved arrival order.
  std::vector<FeatureBundle> bundles(12);
  labels->resize(12);
  for (int i = 0; i < 12; ++i) {
    int entity = i % 3;
    (*labels)[i] = entity;
    int base = entity * 10;
    bundles[i].tfidf = SparseVector::FromPairs(
        {{base, 0.7}, {base + 1, 0.6}, {base + 2 + (i % 2), 0.4}});
    bundles[i].tfidf = bundles[i].tfidf.Normalized();
    bundles[i].tfidf_dimension = 40;
    bundles[i].most_frequent_name =
        std::string(1, static_cast<char>('a' + entity)) + "lice x";
    bundles[i].closest_name = bundles[i].most_frequent_name;
    bundles[i].url = "http://e" + std::to_string(entity) + ".edu/x/p.html";
  }
  return bundles;
}

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bundles_ = PlantedStream(&labels_);
    auto created = IncrementalResolver::Create({});
    ASSERT_TRUE(created.ok());
    resolver_ = std::make_unique<IncrementalResolver>(
        std::move(created).ValueOrDie());
    Rng rng(1);
    auto pairs = ml::SampleTrainingPairs(12, 0.6, &rng);
    ASSERT_TRUE(resolver_->CalibrateThreshold(bundles_, labels_, pairs).ok());
  }
  std::vector<FeatureBundle> bundles_;
  std::vector<int> labels_;
  std::unique_ptr<IncrementalResolver> resolver_;
};

TEST_F(IncrementalTest, UncalibratedAddFails) {
  auto fresh = IncrementalResolver::Create({});
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->calibrated());
  EXPECT_EQ(fresh->Add(bundles_[0]), -1);
}

TEST_F(IncrementalTest, CalibrationValidates) {
  auto fresh = IncrementalResolver::Create({});
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->CalibrateThreshold(bundles_, labels_, {}).ok());
  EXPECT_FALSE(
      fresh->CalibrateThreshold(bundles_, labels_, {{0, 99}}).ok());
  std::vector<int> short_labels = labels_;
  short_labels.pop_back();
  EXPECT_FALSE(
      fresh->CalibrateThreshold(bundles_, short_labels, {{0, 1}}).ok());
}

TEST_F(IncrementalTest, StreamingRecoversPlantedEntities) {
  for (const auto& b : bundles_) resolver_->Add(b);
  EXPECT_EQ(resolver_->num_documents(), 12);
  EXPECT_EQ(resolver_->CurrentClustering(),
            graph::Clustering::FromLabels(labels_));
}

TEST_F(IncrementalTest, FirstDocumentOpensCluster) {
  EXPECT_EQ(resolver_->Add(bundles_[0]), 0);
  EXPECT_EQ(resolver_->num_documents(), 1);
  EXPECT_EQ(resolver_->CurrentClustering().num_clusters(), 1);
}

TEST_F(IncrementalTest, AssignmentReturnsClusterIndex) {
  int c0 = resolver_->Add(bundles_[0]);  // entity 0
  int c1 = resolver_->Add(bundles_[1]);  // entity 1 -> new cluster
  int c2 = resolver_->Add(bundles_[3]);  // entity 0 again -> joins c0
  EXPECT_NE(c0, c1);
  EXPECT_EQ(c2, c0);
}

TEST_F(IncrementalTest, ResetKeepsCalibration) {
  resolver_->Add(bundles_[0]);
  resolver_->Reset();
  EXPECT_EQ(resolver_->num_documents(), 0);
  EXPECT_TRUE(resolver_->calibrated());
  for (const auto& b : bundles_) resolver_->Add(b);
  EXPECT_EQ(resolver_->CurrentClustering().num_clusters(), 3);
}

TEST_F(IncrementalTest, MaxLinkageVariantAlsoWorks) {
  IncrementalOptions options;
  options.assignment = IncrementalOptions::Assignment::kBestMax;
  auto created = IncrementalResolver::Create(options);
  ASSERT_TRUE(created.ok());
  Rng rng(2);
  auto pairs = ml::SampleTrainingPairs(12, 0.6, &rng);
  ASSERT_TRUE(created->CalibrateThreshold(bundles_, labels_, pairs).ok());
  for (const auto& b : bundles_) created->Add(b);
  EXPECT_EQ(created->CurrentClustering(),
            graph::Clustering::FromLabels(labels_));
}

TEST(IncrementalCreateTest, RejectsUnknownFunctions) {
  IncrementalOptions bad;
  bad.function_names = {"F77"};
  EXPECT_FALSE(IncrementalResolver::Create(bad).ok());
}

}  // namespace
}  // namespace core
}  // namespace weber

#include "corpus/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "corpus/presets.h"
#include "extract/url.h"

namespace weber {
namespace corpus {
namespace {

TEST(SkewedPartitionTest, SumsToTotalWithPositiveParts) {
  Rng rng(1);
  for (int total : {10, 97, 150}) {
    for (int parts : {1, 2, 7, 10}) {
      auto sizes = SyntheticWebGenerator::SkewedPartition(total, parts, 1.2,
                                                          &rng);
      ASSERT_EQ(static_cast<int>(sizes.size()), std::min(parts, total));
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), total);
      for (int s : sizes) EXPECT_GE(s, 1);
    }
  }
}

TEST(SkewedPartitionTest, SizesAreDescending) {
  Rng rng(2);
  auto sizes = SyntheticWebGenerator::SkewedPartition(100, 8, 1.4, &rng);
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i - 1], sizes[i]);
  }
}

TEST(SkewedPartitionTest, MorePartsThanTotalIsClamped) {
  Rng rng(3);
  auto sizes = SyntheticWebGenerator::SkewedPartition(5, 20, 1.0, &rng);
  EXPECT_EQ(sizes.size(), 5u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 5);
}

TEST(SkewedPartitionTest, HigherSkewConcentratesMass) {
  Rng rng(4);
  auto flat = SyntheticWebGenerator::SkewedPartition(100, 10, 0.2, &rng);
  auto skewed = SyntheticWebGenerator::SkewedPartition(100, 10, 2.5, &rng);
  EXPECT_GT(skewed[0], flat[0]);
}

TEST(GeneratorTest, RejectsEmptyConfig) {
  GeneratorConfig cfg;
  auto result = SyntheticWebGenerator(cfg).Generate();
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GeneratorTest, RejectsMoreEntitiesThanDocuments) {
  GeneratorConfig cfg;
  NameSpec spec;
  spec.last_name = "x";
  spec.num_documents = 3;
  spec.num_entities = 10;
  cfg.names = {spec};
  auto result = SyntheticWebGenerator(cfg).Generate();
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

class GeneratedCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = SyntheticWebGenerator(TinyConfig(0xABCD)).Generate();
    ASSERT_TRUE(result.ok()) << result.status();
    data_ = new SyntheticData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static SyntheticData* data_;
};

SyntheticData* GeneratedCorpusTest::data_ = nullptr;

TEST_F(GeneratedCorpusTest, BlockShapeMatchesConfig) {
  const auto& dataset = data_->dataset;
  ASSERT_EQ(dataset.num_blocks(), 3);
  EXPECT_EQ(dataset.blocks[0].query, "cohen");
  EXPECT_EQ(dataset.blocks[0].num_documents(), 30);
  EXPECT_EQ(dataset.blocks[0].NumEntities(), 3);
  EXPECT_EQ(dataset.blocks[1].NumEntities(), 4);
  EXPECT_EQ(dataset.blocks[2].NumEntities(), 2);
}

TEST_F(GeneratedCorpusTest, LabelsAreParallelAndDense) {
  for (const Block& block : data_->dataset.blocks) {
    ASSERT_EQ(block.entity_labels.size(), block.documents.size());
    std::set<int> labels(block.entity_labels.begin(),
                         block.entity_labels.end());
    // Every entity id in [0, K) appears at least once.
    EXPECT_EQ(static_cast<int>(labels.size()), block.NumEntities());
    EXPECT_EQ(*labels.begin(), 0);
    EXPECT_EQ(*labels.rbegin(), block.NumEntities() - 1);
  }
}

TEST_F(GeneratedCorpusTest, PagesMentionTheirQueryName) {
  const Block& block = data_->dataset.blocks[0];
  int mentioning = 0;
  for (const Document& d : block.documents) {
    if (d.text.find(block.query) != std::string::npos) ++mentioning;
  }
  // Every page is about a persona carrying the name; the name (full or
  // bare) must appear on effectively all pages.
  EXPECT_GE(mentioning, block.num_documents() - 1);
}

TEST_F(GeneratedCorpusTest, UrlsParse) {
  for (const Block& block : data_->dataset.blocks) {
    for (const Document& d : block.documents) {
      EXPECT_TRUE(extract::ParseUrl(d.url).ok()) << d.url;
    }
  }
}

TEST_F(GeneratedCorpusTest, GazetteerKnowsPersonaNames) {
  ASSERT_EQ(data_->persona_names.size(), 3u);
  for (const auto& block_names : data_->persona_names) {
    for (const std::string& name : block_names) {
      auto mentions = data_->gazetteer.Annotate(name);
      ASSERT_FALSE(mentions.empty()) << name;
      EXPECT_EQ(data_->gazetteer.entry(mentions[0].entry_id).type,
                extract::EntityType::kPerson);
    }
  }
}

TEST_F(GeneratedCorpusTest, DocumentIdsAreUnique) {
  std::set<std::string> ids;
  for (const Block& block : data_->dataset.blocks) {
    for (const Document& d : block.documents) {
      EXPECT_TRUE(ids.insert(d.id).second) << "duplicate id " << d.id;
    }
  }
}

TEST(GeneratorDeterminismTest, SameSeedSameCorpus) {
  auto a = SyntheticWebGenerator(TinyConfig(7)).Generate();
  auto b = SyntheticWebGenerator(TinyConfig(7)).Generate();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->dataset.num_blocks(), b->dataset.num_blocks());
  for (int i = 0; i < a->dataset.num_blocks(); ++i) {
    const Block& ba = a->dataset.blocks[i];
    const Block& bb = b->dataset.blocks[i];
    ASSERT_EQ(ba.num_documents(), bb.num_documents());
    EXPECT_EQ(ba.entity_labels, bb.entity_labels);
    for (int d = 0; d < ba.num_documents(); ++d) {
      EXPECT_EQ(ba.documents[d].text, bb.documents[d].text);
      EXPECT_EQ(ba.documents[d].url, bb.documents[d].url);
    }
  }
}

TEST(GeneratorDeterminismTest, DifferentSeedsDiffer) {
  auto a = SyntheticWebGenerator(TinyConfig(7)).Generate();
  auto b = SyntheticWebGenerator(TinyConfig(8)).Generate();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->dataset.blocks[0].documents[0].text,
            b->dataset.blocks[0].documents[0].text);
}

TEST(GeneratorPresetsTest, Www05HasTwelvePaperNames) {
  GeneratorConfig cfg = Www05Config();
  ASSERT_EQ(cfg.names.size(), 12u);
  std::set<std::string> names;
  for (const auto& spec : cfg.names) names.insert(spec.last_name);
  for (const char* expected :
       {"cheyer", "cohen", "hardt", "israel", "kaelbling", "mark", "mccallum",
        "mitchell", "mulford", "ng", "pereira", "voss"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  // Entity counts span the published 2..61 range.
  int min_e = 1000, max_e = 0;
  for (const auto& spec : cfg.names) {
    min_e = std::min(min_e, spec.num_entities);
    max_e = std::max(max_e, spec.num_entities);
  }
  EXPECT_LE(min_e, 3);
  EXPECT_GE(max_e, 40);
}

TEST(GeneratorPresetsTest, WepsHasTenNamesOf150Docs) {
  GeneratorConfig cfg = WepsConfig();
  ASSERT_EQ(cfg.names.size(), 10u);
  for (const auto& spec : cfg.names) {
    EXPECT_EQ(spec.num_documents, 150);
  }
}

}  // namespace
}  // namespace corpus
}  // namespace weber

#include "core/similarity_function.h"

#include <gtest/gtest.h>

namespace weber {
namespace core {
namespace {

using extract::FeatureBundle;
using text::SparseVector;

FeatureBundle MakeBundle() {
  FeatureBundle fb;
  fb.url = "http://www.velonar.edu/cohen/a.html";
  fb.most_frequent_name = "alice cohen";
  fb.closest_name = "alice cohen";
  fb.weighted_concepts = SparseVector::FromPairs({{0, 2.0}, {1, 1.0}});
  fb.concepts = SparseVector::FromPairs({{0, 1.0}, {1, 1.0}});
  fb.organizations = SparseVector::FromPairs({{10, 1.0}});
  fb.other_persons = SparseVector::FromPairs({{20, 1.0}, {21, 1.0}});
  fb.tfidf = SparseVector::FromPairs({{0, 0.6}, {1, 0.8}});
  fb.tfidf_dimension = 50;
  return fb;
}

class StandardFunctionsTest : public ::testing::Test {
 protected:
  std::vector<std::unique_ptr<SimilarityFunction>> fns_ =
      MakeStandardFunctions();

  const SimilarityFunction& Fn(const std::string& name) {
    for (const auto& f : fns_) {
      if (f->name() == name) return *f;
    }
    ADD_FAILURE() << "missing " << name;
    return *fns_.front();
  }
};

TEST_F(StandardFunctionsTest, TenFunctionsInOrder) {
  ASSERT_EQ(fns_.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fns_[i]->name(), "F" + std::to_string(i + 1));
    EXPECT_FALSE(fns_[i]->description().empty());
  }
}

TEST_F(StandardFunctionsTest, SelfSimilarityIsMaximal) {
  FeatureBundle fb = MakeBundle();
  // Self-similarity is 1 for every function except the saturating-overlap
  // ones (F4, F5, F6), which approach 1 from below.
  EXPECT_NEAR(Fn("F1").Compute(fb, fb), 1.0, 1e-9);
  EXPECT_NEAR(Fn("F2").Compute(fb, fb), 1.0, 1e-9);
  EXPECT_NEAR(Fn("F3").Compute(fb, fb), 1.0, 1e-9);
  EXPECT_NEAR(Fn("F7").Compute(fb, fb), 1.0, 1e-9);
  EXPECT_NEAR(Fn("F8").Compute(fb, fb), 1.0, 1e-9);
  EXPECT_NEAR(Fn("F9").Compute(fb, fb), 1.0, 1e-9);
  EXPECT_NEAR(Fn("F10").Compute(fb, fb), 1.0, 1e-9);
  EXPECT_GT(Fn("F4").Compute(fb, fb), 0.4);
  EXPECT_GT(Fn("F5").Compute(fb, fb), 0.3);
  EXPECT_GT(Fn("F6").Compute(fb, fb), 0.5);
}

TEST_F(StandardFunctionsTest, AllFunctionsSymmetricAndBounded) {
  FeatureBundle a = MakeBundle();
  FeatureBundle b = MakeBundle();
  b.url = "http://hostral.com/x/b.html";
  b.most_frequent_name = "bob cohen";
  b.closest_name = "b cohen";
  b.weighted_concepts = SparseVector::FromPairs({{1, 0.5}, {2, 2.0}});
  b.concepts = SparseVector::FromPairs({{1, 1.0}, {2, 1.0}});
  b.organizations = SparseVector::FromPairs({{10, 1.0}, {11, 1.0}});
  b.other_persons = SparseVector::FromPairs({{21, 1.0}});
  b.tfidf = SparseVector::FromPairs({{1, 1.0}});
  b.tfidf_dimension = 50;
  for (const auto& fn : fns_) {
    double ab = fn->Compute(a, b);
    double ba = fn->Compute(b, a);
    EXPECT_DOUBLE_EQ(ab, ba) << fn->name();
    EXPECT_GE(ab, 0.0) << fn->name();
    EXPECT_LE(ab, 1.0) << fn->name();
  }
}

TEST_F(StandardFunctionsTest, EmptyBundlesAreSafe) {
  FeatureBundle empty;
  FeatureBundle full = MakeBundle();
  for (const auto& fn : fns_) {
    double v1 = fn->Compute(empty, empty);
    double v2 = fn->Compute(empty, full);
    EXPECT_GE(v1, 0.0) << fn->name();
    EXPECT_LE(v1, 1.0) << fn->name();
    EXPECT_GE(v2, 0.0) << fn->name();
    EXPECT_LE(v2, 1.0) << fn->name();
  }
}

TEST_F(StandardFunctionsTest, F3AndF7EmptyNamesScoreZero) {
  FeatureBundle named = MakeBundle();
  FeatureBundle unnamed = MakeBundle();
  unnamed.most_frequent_name.clear();
  unnamed.closest_name.clear();
  EXPECT_DOUBLE_EQ(Fn("F3").Compute(named, unnamed), 0.0);
  EXPECT_DOUBLE_EQ(Fn("F7").Compute(named, unnamed), 0.0);
}

TEST_F(StandardFunctionsTest, F2DistinguishesUrlTiers) {
  FeatureBundle same_host = MakeBundle();
  FeatureBundle same_domain = MakeBundle();
  same_domain.url = "http://people.velonar.edu/cohen/b.html";
  FeatureBundle other = MakeBundle();
  other.url = "http://unrelated.org/z.html";
  FeatureBundle base = MakeBundle();
  EXPECT_GT(Fn("F2").Compute(base, same_host),
            Fn("F2").Compute(base, same_domain));
  EXPECT_GT(Fn("F2").Compute(base, same_domain),
            Fn("F2").Compute(base, other));
}

TEST_F(StandardFunctionsTest, F4CountsConceptOverlapNotWeights) {
  FeatureBundle a = MakeBundle();
  FeatureBundle b = MakeBundle();
  // Same incidence, wildly different weights: F4 identical, F1 differs.
  b.weighted_concepts = SparseVector::FromPairs({{0, 100.0}, {1, 0.01}});
  EXPECT_DOUBLE_EQ(Fn("F4").Compute(a, b), Fn("F4").Compute(a, a));
  EXPECT_LT(Fn("F1").Compute(a, b), Fn("F1").Compute(a, a));
}

TEST_F(StandardFunctionsTest, F9UsesAmbientDimension) {
  FeatureBundle a = MakeBundle();
  FeatureBundle b = MakeBundle();
  b.tfidf = SparseVector::FromPairs({{2, 1.0}});
  // Disjoint vectors: with a large ambient dimension both look like rare
  // spikes, so correlation is near zero -> rescaled near 0.5.
  double sim = Fn("F9").Compute(a, b);
  EXPECT_GT(sim, 0.3);
  EXPECT_LT(sim, 0.55);
}

TEST(ComputeSimilarityMatrixTest, FillsAllPairs) {
  auto fns = MakeStandardFunctions();
  std::vector<FeatureBundle> bundles(3, MakeBundle());
  bundles[2].most_frequent_name = "someone else";
  graph::SimilarityMatrix m = ComputeSimilarityMatrix(*fns[2], bundles);
  EXPECT_EQ(m.size(), 3);
  EXPECT_NEAR(m.Get(0, 1), 1.0, 1e-9);  // identical bundles
  EXPECT_LT(m.Get(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 1), 1.0);  // diagonal
}

TEST(MakeFunctionsTest, SelectsByName) {
  auto fns = MakeFunctions({"F3", "F7"});
  ASSERT_TRUE(fns.ok());
  ASSERT_EQ(fns->size(), 2u);
  EXPECT_EQ((*fns)[0]->name(), "F3");
  EXPECT_EQ((*fns)[1]->name(), "F7");
}

TEST(MakeFunctionsTest, UnknownNameIsNotFound) {
  EXPECT_EQ(MakeFunctions({"F3", "F99"}).status().code(),
            StatusCode::kNotFound);
}

TEST(MakeFunctionsTest, PaperSubsets) {
  EXPECT_EQ(kSubsetI4, (std::vector<std::string>{"F4", "F5", "F7", "F9"}));
  EXPECT_EQ(kSubsetI7.size(), 7u);
  EXPECT_EQ(kSubsetI10.size(), 10u);
  ASSERT_TRUE(MakeFunctions(kSubsetI4).ok());
  ASSERT_TRUE(MakeFunctions(kSubsetI7).ok());
  ASSERT_TRUE(MakeFunctions(kSubsetI10).ok());
}

}  // namespace
}  // namespace core
}  // namespace weber

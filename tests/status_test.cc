#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace weber {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryProducesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, MessageConcatenatesMixedArguments) {
  Status s = Status::NotFound("function ", "F", 11, " missing");
  EXPECT_EQ(s.message(), "function F11 missing");
}

TEST(StatusTest, AllFactoriesMapToTheirCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsAtSecondStep() {
  WEBER_RETURN_NOT_OK(Status::OK());
  WEBER_RETURN_NOT_OK(Status::IOError("disk gone"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagatesFirstError) {
  Status s = FailsAtSecondStep();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledPositive(int x) {
  WEBER_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubledPositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = DoubledPositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperatorOnStruct) {
  struct Payload {
    int x = 5;
  };
  Result<Payload> r = Payload{};
  EXPECT_EQ(r->x, 5);
}

}  // namespace
}  // namespace weber

#include "corpus/stats.h"

#include <gtest/gtest.h>

#include <sstream>

namespace weber {
namespace corpus {
namespace {

Block MakeBlock() {
  Block block;
  block.query = "cohen";
  for (int i = 0; i < 6; ++i) {
    block.documents.push_back(
        {"cohen/" + std::to_string(i), "http://x.com/" + std::to_string(i),
         "one two three two"});
  }
  // Clusters: {0,1,2}, {3,4}, {5}.
  block.entity_labels = {0, 0, 0, 1, 1, 2};
  return block;
}

TEST(BlockStatsTest, ClusterShape) {
  BlockStats stats = ComputeBlockStats(MakeBlock());
  EXPECT_EQ(stats.query, "cohen");
  EXPECT_EQ(stats.num_documents, 6);
  EXPECT_EQ(stats.num_entities, 3);
  EXPECT_EQ(stats.largest_cluster, 3);
  EXPECT_EQ(stats.singleton_clusters, 1);
  EXPECT_EQ(stats.cluster_sizes, (std::vector<int>{3, 2, 1}));
  // Intra pairs: 3 + 1 = 4 of 15.
  EXPECT_NEAR(stats.link_rate, 4.0 / 15.0, 1e-12);
}

TEST(BlockStatsTest, TokenCounts) {
  BlockStats stats = ComputeBlockStats(MakeBlock());
  EXPECT_NEAR(stats.mean_tokens_per_document, 4.0, 1e-12);
  EXPECT_NEAR(stats.mean_distinct_tokens, 3.0, 1e-12);
}

TEST(BlockStatsTest, EmptyBlock) {
  Block empty;
  empty.query = "x";
  BlockStats stats = ComputeBlockStats(empty);
  EXPECT_EQ(stats.num_documents, 0);
  EXPECT_EQ(stats.num_entities, 0);
  EXPECT_DOUBLE_EQ(stats.link_rate, 0.0);
}

TEST(DatasetStatsTest, Aggregation) {
  Dataset dataset;
  dataset.name = "d";
  dataset.blocks.push_back(MakeBlock());
  Block other = MakeBlock();
  other.query = "ng";
  other.entity_labels = {0, 1, 2, 3, 4, 5};  // all singletons
  dataset.blocks.push_back(other);
  DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_EQ(stats.num_blocks, 2);
  EXPECT_EQ(stats.total_documents, 12);
  EXPECT_EQ(stats.min_entities, 3);
  EXPECT_EQ(stats.max_entities, 6);
  EXPECT_NEAR(stats.mean_entities, 4.5, 1e-12);
  EXPECT_NEAR(stats.mean_link_rate, (4.0 / 15.0 + 0.0) / 2, 1e-12);
}

TEST(DatasetStatsTest, PrintRendersEveryBlock) {
  Dataset dataset;
  dataset.name = "render";
  dataset.blocks.push_back(MakeBlock());
  std::ostringstream os;
  PrintDatasetStats(ComputeDatasetStats(dataset), os);
  EXPECT_NE(os.str().find("render"), std::string::npos);
  EXPECT_NE(os.str().find("cohen"), std::string::npos);
  EXPECT_NE(os.str().find("link rate"), std::string::npos);
}

}  // namespace
}  // namespace corpus
}  // namespace weber

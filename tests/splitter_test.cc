#include "ml/splitter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace weber {
namespace ml {
namespace {

TEST(SampleTrainingDocumentsTest, TenPercentWithFloor) {
  Rng rng(1);
  auto sample = SampleTrainingDocuments(100, 0.10, &rng, 4);
  EXPECT_EQ(sample.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());

  auto floored = SampleTrainingDocuments(20, 0.10, &rng, 4);
  EXPECT_EQ(floored.size(), 4u);
}

TEST(SampleTrainingDocumentsTest, EdgeCases) {
  Rng rng(2);
  EXPECT_TRUE(SampleTrainingDocuments(0, 0.1, &rng).empty());
  EXPECT_EQ(SampleTrainingDocuments(3, 0.1, &rng, 10).size(), 3u);  // clamp
  EXPECT_EQ(SampleTrainingDocuments(5, 1.0, &rng, 1).size(), 5u);
}

TEST(PairsAmongTest, AllUnorderedPairs) {
  auto pairs = PairsAmong({2, 5, 9});
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], std::make_pair(2, 5));
  EXPECT_EQ(pairs[1], std::make_pair(2, 9));
  EXPECT_EQ(pairs[2], std::make_pair(5, 9));
  EXPECT_TRUE(PairsAmong({7}).empty());
  EXPECT_TRUE(PairsAmong({}).empty());
}

TEST(SampleTrainingPairsTest, SizeAndDistinctness) {
  Rng rng(3);
  const int n = 30;  // 435 pairs
  auto pairs = SampleTrainingPairs(n, 0.10, &rng, 10);
  EXPECT_EQ(pairs.size(), 44u);  // ceil(43.5)
  std::set<std::pair<int, int>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), pairs.size());
  for (const auto& [a, b] : pairs) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, b);
    EXPECT_LT(b, n);
  }
}

TEST(SampleTrainingPairsTest, MinimumFloor) {
  Rng rng(4);
  auto pairs = SampleTrainingPairs(6, 0.01, &rng, 10);  // 15 total pairs
  EXPECT_EQ(pairs.size(), 10u);
}

TEST(SampleTrainingPairsTest, FullFraction) {
  Rng rng(5);
  const int n = 8;
  auto pairs = SampleTrainingPairs(n, 1.0, &rng);
  EXPECT_EQ(pairs.size(), 28u);
  std::set<std::pair<int, int>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 28u);
}

TEST(SampleTrainingPairsTest, TinyBlocks) {
  Rng rng(6);
  EXPECT_TRUE(SampleTrainingPairs(0, 0.5, &rng).empty());
  EXPECT_TRUE(SampleTrainingPairs(1, 0.5, &rng).empty());
  auto two = SampleTrainingPairs(2, 0.5, &rng);
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(two[0], std::make_pair(0, 1));
}

TEST(SampleTrainingPairsTest, OffsetDecodingCoversAllPairsUniformly) {
  // Statistical check: over many samples, every pair of a small block is
  // drawn with roughly equal frequency (offset decode is not biased).
  Rng rng(7);
  const int n = 6;  // 15 pairs
  std::map<std::pair<int, int>, int> counts;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    for (const auto& p : SampleTrainingPairs(n, 0.2, &rng, 3)) {
      counts[p] += 1;
    }
  }
  ASSERT_EQ(counts.size(), 15u);  // every pair seen
  int min_count = 1 << 30, max_count = 0;
  for (const auto& [p, c] : counts) {
    min_count = std::min(min_count, c);
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(min_count, max_count / 2);  // no pair is systematically starved
}

}  // namespace
}  // namespace ml
}  // namespace weber

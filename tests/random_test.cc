#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace weber {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformDoubleStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(17);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformUint64(bound), bound);
    }
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ZipfStaysInRangeAndFavorsLowRanks) {
  Rng rng(31);
  const int n = 20;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    int r = rng.Zipf(n, 1.1);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, n);
    counts[r] += 1;
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[n - 1] * 3);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Zipf(1, 1.0), 0);
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(41);
  for (double lambda : {0.5, 3.0, 20.0, 80.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, lambda * 0.05 + 0.05) << "lambda=" << lambda;
  }
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(43);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, CategoricalHonorsWeights) {
  Rng rng(47);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    int pick = rng.Categorical(weights);
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 3);
    counts[pick] += 1;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, CategoricalDegenerateInputs) {
  Rng rng(53);
  EXPECT_EQ(rng.Categorical({}), -1);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), -1);
  EXPECT_EQ(rng.Categorical({0.0, 5.0, 0.0}), 1);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(59);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingle) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(67);
  std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFullAndEmpty) {
  Rng rng(71);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  auto all = rng.SampleWithoutReplacement(10, 10);
  std::sort(all.begin(), all.end());
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(101);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

// Property sweep: distribution outputs stay in their documented ranges for
// many seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, AllDistributionsRespectRanges) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
    double d = rng.UniformDouble(2.0, 5.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 5.0);
    int z = rng.Zipf(9, 1.3);
    EXPECT_GE(z, 0);
    EXPECT_LT(z, 9);
    EXPECT_GE(rng.Poisson(2.5), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 0xDEADBEEF, 0xFFFFFFFFull,
                                           42, 1000003));

}  // namespace
}  // namespace weber

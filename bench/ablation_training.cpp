// Ablation: training-set size. The paper fixes 10% (Section V-A2) and notes
// "the performance of the ER algorithm depends on how well the training set
// represents the features of the complete dataset"; this sweep quantifies
// that dependence.

#include <iostream>

#include "bench_util.h"

using namespace weber;

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());

  std::cout << "== Ablation: training fraction (WWW'05-like corpus, C10 and "
               "I10, 3-run averages) ==\n";
  TablePrinter table;
  table.SetHeader({"train fraction", "I10 Fp", "C10 Fp", "C10 F", "C10 Rand"});
  for (double fraction : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    core::ExperimentRunner runner(&data.dataset, &data.gazetteer, 3, 0xAB1B8);
    bench::CheckOk(runner.Prepare({}, fraction), "prepare");
    auto i10 = bench::CheckResult(
        runner.Run(bench::ThresholdBestConfig("I10", core::kSubsetI10)),
        "I10 run");
    auto c10 = bench::CheckResult(
        runner.Run(bench::RegionBestConfig("C10", core::kSubsetI10)),
        "C10 run");
    table.AddRow({FormatDouble(fraction, 2),
                  FormatDouble(i10.overall.fp_measure, 4),
                  FormatDouble(c10.overall.fp_measure, 4),
                  FormatDouble(c10.overall.f_measure, 4),
                  FormatDouble(c10.overall.rand_index, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: quality rises with the training fraction and "
               "flattens; the region advantage (C10 - I10) persists at 10% "
               "(the paper's operating point).\n";
  return 0;
}

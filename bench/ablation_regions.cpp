// Ablation: region construction. Sweeps the equal-width bin count and the
// k-means cluster count of the region-accuracy criteria, and compares the
// two schemes (Section IV-A discusses exactly this design choice: "the
// similarity values do not have a uniform distribution ... choosing the
// regions as equal size intervals is not the best option").

#include <iostream>

#include "bench_util.h"

using namespace weber;

namespace {

core::ExperimentConfig SchemeConfig(const std::string& label, int bins,
                                    int k) {
  core::ExperimentConfig config = bench::RegionBestConfig(label, core::kSubsetI10);
  config.options.equal_width_bins = bins;
  config.options.kmeans_k = k;
  return config;
}

}  // namespace

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());
  core::ExperimentRunner runner = bench::MakeRunner(data, 0xAB1A7, /*runs=*/3);

  std::cout << "== Ablation: region construction (WWW'05-like corpus, C10 "
               "configuration, 3-run averages) ==\n\n";

  // Sweep k-means k with bins fixed.
  TablePrinter ktable;
  ktable.SetHeader({"kmeans k", "Fp", "F", "Rand"});
  for (int k : {2, 4, 8, 12, 16, 24}) {
    auto r = bench::CheckResult(
        runner.Run(SchemeConfig("km" + std::to_string(k), 10, k)),
        "kmeans sweep");
    ktable.AddRow({std::to_string(k), FormatDouble(r.overall.fp_measure, 4),
                   FormatDouble(r.overall.f_measure, 4),
                   FormatDouble(r.overall.rand_index, 4)});
  }
  std::cout << "k-means cluster count sweep (equal-width bins fixed at 10):\n";
  ktable.Print(std::cout);

  // Sweep equal-width bins with k fixed.
  TablePrinter btable;
  btable.SetHeader({"eq-width bins", "Fp", "F", "Rand"});
  for (int bins : {4, 10, 20, 40}) {
    auto r = bench::CheckResult(
        runner.Run(SchemeConfig("eq" + std::to_string(bins), bins, 8)),
        "bins sweep");
    btable.AddRow({std::to_string(bins), FormatDouble(r.overall.fp_measure, 4),
                   FormatDouble(r.overall.f_measure, 4),
                   FormatDouble(r.overall.rand_index, 4)});
  }
  std::cout << "\nequal-width bin count sweep (k-means k fixed at 8):\n";
  btable.Print(std::cout);

  // Criteria-family ladder: threshold (step) < isotonic (monotone) <
  // regions (free). Separates "better calibration" from "non-monotone
  // expressiveness" as the source of the C-columns' gain.
  TablePrinter ladder;
  ladder.SetHeader({"criteria family", "Fp", "F", "Rand"});
  {
    core::ExperimentConfig threshold_only =
        bench::ThresholdBestConfig("threshold", core::kSubsetI10);
    core::ExperimentConfig isotonic = threshold_only;
    isotonic.label = "isotonic";
    isotonic.options.include_isotonic_criterion = true;
    core::ExperimentConfig regions =
        bench::RegionBestConfig("regions", core::kSubsetI10);
    core::ExperimentConfig all = regions;
    all.label = "all";
    all.options.include_isotonic_criterion = true;
    for (const auto& config : {threshold_only, isotonic, regions, all}) {
      auto r = bench::CheckResult(runner.Run(config), "ladder run");
      ladder.AddRow({r.label, FormatDouble(r.overall.fp_measure, 4),
                     FormatDouble(r.overall.f_measure, 4),
                     FormatDouble(r.overall.rand_index, 4)});
    }
  }
  std::cout << "\ncriteria-family ladder (threshold ⊂ +isotonic ⊂ +regions):\n";
  ladder.Print(std::cout);

  std::cout << "\nExpected: quality is stable across a broad middle range "
               "and degrades at the extremes (too few regions cannot express "
               "the accuracy profile; too many overfit the training sample). "
               "In the ladder, isotonic matches the plain threshold almost "
               "exactly while regions jump far ahead: on this corpus "
               "essentially the *entire* C-column gain comes from "
               "non-monotone expressiveness (the Figure-1 dips), not from "
               "better calibration of a monotone rule.\n";
  return 0;
}

// Hot-path benchmark (ROADMAP item 1): pair-scoring throughput of the
// interpreted per-pair walk vs the compiled batch kernels, per block size.
//
// For each block size the seven batchable vector functions (F1, F4, F5,
// F6, F8, F9, F10) score the full upper triangle three ways:
//
//   interpreted      — virtual SimilarityFunction::Compute per pair
//   compiled-scalar  — BlockScorer strips, kernels forced to scalar
//   compiled-avx2    — BlockScorer strips, AVX2 kernels (when available)
//
// plus the fitted decision criteria evaluated per value (virtual Decide /
// LinkProbability) vs CompiledDecision::EvalBlock. Emits BENCH_hotpath.json
// with pairs/sec per mode and the speedup ratios. All three modes produce
// bit-identical scores (asserted here via checksums), so the ratios are
// pure speed.
//
// Usage: hotpath [--quick] [output.json]

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/compiled_path.h"
#include "core/decision.h"
#include "extract/feature_extractor.h"
#include "ml/splitter.h"
#include "text/batch_similarity.h"

using namespace weber;

namespace {

struct ModeResult {
  double pairs_per_sec = 0.0;
  double checksum = 0.0;
};

struct SizeResult {
  int block_size = 0;
  long long pairs = 0;
  ModeResult interpreted;
  ModeResult compiled_scalar;
  ModeResult compiled_avx2;
  double decision_interpreted_vals_per_sec = 0.0;
  double decision_compiled_vals_per_sec = 0.0;
};

/// Tiles the extracted bundles of one synthetic block up to `n` documents,
/// so every size benchmarks the same realistic feature distributions.
std::vector<extract::FeatureBundle> TileBundles(
    const std::vector<extract::FeatureBundle>& seed, int n) {
  std::vector<extract::FeatureBundle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(seed[i % seed.size()]);
  return out;
}

/// Runs `body` (one full upper-triangle pass) until ~`budget_s` of wall
/// clock is spent, returning pairs/sec over all repetitions.
template <typename Body>
ModeResult Measure(long long pairs_per_rep, double budget_s, Body&& body) {
  // One warm-up pass (freezes vectors, faults pages in).
  double checksum = body();
  WallTimer timer;
  long long reps = 0;
  do {
    checksum += body();
    ++reps;
  } while (timer.ElapsedSeconds() < budget_s);
  const double elapsed = timer.ElapsedSeconds();
  return {static_cast<double>(pairs_per_rep) * reps / elapsed, checksum};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const double budget_s = quick ? 0.05 : 0.5;
  const std::vector<int> sizes =
      quick ? std::vector<int>{64} : std::vector<int>{32, 64, 128, 256};

  corpus::SyntheticData data = bench::GenerateOrDie(corpus::TinyConfig());
  const corpus::Block& block = data.dataset.blocks[0];
  std::vector<extract::PageInput> pages;
  for (const corpus::Document& d : block.documents) {
    pages.push_back({d.url, d.text});
  }
  extract::FeatureExtractor extractor(&data.gazetteer, {});
  auto seed_bundles =
      bench::CheckResult(extractor.ExtractBlock(pages, block.query),
                         "feature extraction");

  auto functions = bench::CheckResult(core::MakeFunctions(core::kSubsetI10),
                                      "function registry");
  // Keep only the kernel-covered vector functions; the string/composed
  // functions are identical in all modes and would only dilute the ratio.
  std::vector<core::SimilarityFunction*> batchable;
  std::vector<core::BatchSpec> specs;
  for (const auto& fn : functions) {
    const core::BatchSpec spec = fn->batch_spec();
    if (spec.batchable()) {
      batchable.push_back(fn.get());
      specs.push_back(spec);
    }
  }

  // A fitted region criterion for the decision-table comparison.
  Rng rng(0x407);
  std::vector<ml::LabeledSimilarity> training;
  for (int i = 0; i < 400; ++i) {
    const double v = (i % 100) / 100.0;
    training.push_back({v, v > 0.55});
  }
  auto criterion = core::RegionCriterion::EqualWidth(10);
  bench::CheckOk(criterion->Fit(training, &rng), "criterion fit");
  core::CompiledDecision table;
  if (!criterion->Compile(&table)) {
    std::cerr << "fitted criterion failed to compile\n";
    return 1;
  }

  std::vector<SizeResult> results;
  for (int n : sizes) {
    const auto bundles = TileBundles(seed_bundles, n);
    const long long tri_pairs = static_cast<long long>(n) * (n - 1) / 2;
    const long long pairs_per_rep =
        tri_pairs * static_cast<long long>(batchable.size());
    SizeResult r;
    r.block_size = n;
    r.pairs = pairs_per_rep;

    r.interpreted = Measure(pairs_per_rep, budget_s, [&] {
      double sum = 0.0;
      for (core::SimilarityFunction* fn : batchable) {
        for (int a = 0; a < n; ++a) {
          for (int b = a + 1; b < n; ++b) {
            sum += fn->Compute(bundles[a], bundles[b]);
          }
        }
      }
      return sum;
    });

    auto compiled_pass = [&] {
      core::BlockScorer scorer(&bundles);
      std::vector<double> strip(n);
      double sum = 0.0;
      for (size_t f = 0; f < batchable.size(); ++f) {
        if (!scorer.CanBatch(specs[f])) {
          std::cerr << "spec unexpectedly not batchable\n";
          std::exit(1);
        }
        for (int a = 0; a < n - 1; ++a) {
          scorer.ScoreStrip(specs[f], a, a + 1, n, strip.data());
          for (int k = 0; k < n - a - 1; ++k) sum += strip[k];
        }
      }
      return sum;
    };
    text::ForceKernelMode(text::KernelMode::kScalar);
    r.compiled_scalar = Measure(pairs_per_rep, budget_s, compiled_pass);
    if (text::Avx2Available()) {
      text::ForceKernelMode(text::KernelMode::kAvx2);
      r.compiled_avx2 = Measure(pairs_per_rep, budget_s, compiled_pass);
    }
    text::ForceKernelMode(text::KernelMode::kAuto);

    // Decision tables: one value per pair, region criterion.
    std::vector<double> values(tri_pairs);
    for (long long k = 0; k < tri_pairs; ++k) {
      values[k] = (k % 1000) / 999.0;
    }
    std::vector<char> dec(tri_pairs);
    std::vector<double> probs(tri_pairs);
    const ModeResult di = Measure(tri_pairs, budget_s / 2, [&] {
      double sum = 0.0;
      for (long long k = 0; k < tri_pairs; ++k) {
        dec[k] = criterion->Decide(values[k]) ? 1 : 0;
        probs[k] = criterion->LinkProbability(values[k]);
        sum += probs[k];
      }
      return sum;
    });
    const ModeResult dc = Measure(tri_pairs, budget_s / 2, [&] {
      table.EvalBlock(values.data(), values.size(), dec.data(), probs.data());
      double sum = 0.0;
      for (long long k = 0; k < tri_pairs; ++k) sum += probs[k];
      return sum;
    });
    r.decision_interpreted_vals_per_sec = di.pairs_per_sec;
    r.decision_compiled_vals_per_sec = dc.pairs_per_sec;

    results.push_back(r);
    std::cout << "n=" << n << "  interpreted " << r.interpreted.pairs_per_sec
              << " pairs/s, scalar " << r.compiled_scalar.pairs_per_sec
              << " (x"
              << r.compiled_scalar.pairs_per_sec / r.interpreted.pairs_per_sec
              << "), avx2 " << r.compiled_avx2.pairs_per_sec << " (x"
              << r.compiled_avx2.pairs_per_sec / r.interpreted.pairs_per_sec
              << ")\n";
  }

  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"hotpath\",\n  \"functions\": "
      << batchable.size() << ",\n  \"avx2_available\": "
      << (text::Avx2Available() ? "true" : "false") << ",\n  \"results\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    const double s_speed =
        r.compiled_scalar.pairs_per_sec / r.interpreted.pairs_per_sec;
    const double v_speed =
        r.compiled_avx2.pairs_per_sec / r.interpreted.pairs_per_sec;
    out << (i ? "," : "") << "\n    {\"block_size\": " << r.block_size
        << ", \"pairs_per_rep\": " << r.pairs
        << ", \"interpreted_pairs_per_sec\": " << r.interpreted.pairs_per_sec
        << ", \"compiled_scalar_pairs_per_sec\": "
        << r.compiled_scalar.pairs_per_sec
        << ", \"compiled_avx2_pairs_per_sec\": "
        << r.compiled_avx2.pairs_per_sec
        << ", \"scalar_speedup\": " << s_speed
        << ", \"avx2_speedup\": " << v_speed
        << ", \"decision_interpreted_vals_per_sec\": "
        << r.decision_interpreted_vals_per_sec
        << ", \"decision_compiled_vals_per_sec\": "
        << r.decision_compiled_vals_per_sec << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Extra evaluation: the paper's framework against the classic ER baselines
// it cites — R-Swoosh-style match/merge (Benjelloun et al. [5,7]) and
// merge/purge sorted neighborhood (Hernandez & Stolfo [2]) — plus trivial
// floor/ceiling references (all-singletons, one-cluster), all on identical
// features and training splits.

#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/incremental.h"
#include "ml/splitter.h"

using namespace weber;

namespace {

struct Row {
  std::string label;
  eval::MetricReport mean;
};

template <typename ResolveFn>
Row EvaluateStrategy(const std::string& label,
                     const corpus::SyntheticData& data,
                     const ResolveFn& resolve) {
  extract::FeatureExtractor extractor(&data.gazetteer, {});
  std::vector<eval::MetricReport> reports;
  Rng master(0xBA5E);
  for (const corpus::Block& block : data.dataset.blocks) {
    std::vector<extract::PageInput> pages;
    for (const corpus::Document& d : block.documents) {
      pages.push_back({d.url, d.text});
    }
    auto bundles = bench::CheckResult(
        extractor.ExtractBlock(pages, block.query), "extraction");
    Rng rng = master.Fork(reports.size());
    auto training =
        ml::SampleTrainingPairs(block.num_documents(), 0.10, &rng, 10);
    graph::Clustering clustering =
        resolve(bundles, block.entity_labels, training, &rng);
    reports.push_back(bench::CheckResult(
        eval::Evaluate(block.GroundTruth(), clustering), "evaluation"));
  }
  Row row;
  row.label = label;
  row.mean = bench::CheckResult(eval::MeanReport(reports), "averaging");
  return row;
}

}  // namespace

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());
  std::vector<Row> rows;

  using Bundles = std::vector<extract::FeatureBundle>;
  using Pairs = std::vector<std::pair<int, int>>;

  // Trivial references.
  rows.push_back(EvaluateStrategy(
      "all-singletons", data,
      [](const Bundles& b, const std::vector<int>&, const Pairs&, Rng*) {
        return graph::Clustering::Singletons(static_cast<int>(b.size()));
      }));
  rows.push_back(EvaluateStrategy(
      "one-cluster", data,
      [](const Bundles& b, const std::vector<int>&, const Pairs&, Rng*) {
        return graph::Clustering::OneCluster(static_cast<int>(b.size()));
      }));

  // Literature baselines on identical features.
  auto swoosh =
      bench::CheckResult(core::SwooshResolver::Create({}), "swoosh setup");
  rows.push_back(EvaluateStrategy(
      "r-swoosh (mean sim, merge)", data,
      [&](const Bundles& b, const std::vector<int>& labels, const Pairs& tp,
          Rng* rng) {
        return bench::CheckResult(swoosh.Resolve(b, labels, tp, rng),
                                  "swoosh");
      }));
  core::SortedNeighborhoodOptions sn_options;
  sn_options.window = 10;
  auto sn = bench::CheckResult(
      core::SortedNeighborhoodResolver::Create(sn_options), "sn setup");
  rows.push_back(EvaluateStrategy(
      "sorted-neighborhood (w=10, 2 passes)", data,
      [&](const Bundles& b, const std::vector<int>& labels, const Pairs& tp,
          Rng* rng) {
        return bench::CheckResult(sn.Resolve(b, labels, tp, rng), "sn");
      }));

  // Incremental (streaming) resolution, documents in crawl order.
  auto incremental = bench::CheckResult(core::IncrementalResolver::Create({}),
                                        "incremental setup");
  rows.push_back(EvaluateStrategy(
      "incremental (streaming, mean linkage)", data,
      [&](const Bundles& b, const std::vector<int>& labels, const Pairs& tp,
          Rng*) {
        bench::CheckOk(incremental.CalibrateThreshold(b, labels, tp),
                       "incremental calibration");
        for (const auto& bundle : b) incremental.Add(bundle);
        return incremental.CurrentClustering();
      }));

  // The paper's framework (region criteria + best-graph + closure).
  core::ResolverOptions paper_options;
  auto resolver = bench::CheckResult(
      core::EntityResolver::Create(&data.gazetteer, paper_options),
      "resolver setup");
  rows.push_back(EvaluateStrategy(
      "weber C10 (paper method)", data,
      [&](const Bundles& b, const std::vector<int>& labels, const Pairs& tp,
          Rng* rng) {
        return bench::CheckResult(resolver.ResolveExtracted(b, labels, tp, rng),
                                  "resolve")
            .clustering;
      }));

  std::cout << "== Baseline comparison (WWW'05-like corpus, identical "
               "features and 10% training pairs) ==\n";
  TablePrinter table;
  table.SetHeader({"strategy", "Fp", "F", "Rand", "B-cubed F"});
  for (const Row& row : rows) {
    table.AddRow({row.label, FormatDouble(row.mean.fp_measure, 4),
                  FormatDouble(row.mean.f_measure, 4),
                  FormatDouble(row.mean.rand_index, 4),
                  FormatDouble(row.mean.bcubed_f, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: the paper's framework tops both literature "
               "baselines; one-cluster/all-singletons bracket the range.\n";
  return 0;
}

// Ablation: final clustering algorithm. The paper computes the transitive
// closure of G_combined but "also experimented with several other clustering
// techniques, such as correlation clustering [16]" (Section IV-C); this
// binary compares the two, plus the combination strategies (best-graph /
// weighted average / majority vote).

#include <iostream>

#include "bench_util.h"

using namespace weber;

namespace {

core::ExperimentConfig Config(const std::string& label,
                              core::CombinationStrategy strategy,
                              core::ClusteringAlgorithm clustering) {
  core::ExperimentConfig config;
  config.label = label;
  config.options.function_names = core::kSubsetI10;
  config.options.use_region_criteria = true;
  config.options.combination = strategy;
  config.options.clustering = clustering;
  return config;
}

}  // namespace

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());
  core::ExperimentRunner runner = bench::MakeRunner(data, 0xAB1C9, /*runs=*/3);

  std::cout << "== Ablation: clustering algorithm x combination strategy "
               "(WWW'05-like corpus, all 10 functions, region criteria, "
               "3-run averages) ==\n";
  TablePrinter table;
  table.SetHeader({"combination", "clustering", "Fp", "F", "Rand"});

  struct Case {
    const char* label;
    core::CombinationStrategy strategy;
  };
  const Case cases[] = {
      {"best-graph", core::CombinationStrategy::kBestGraph},
      {"weighted-average", core::CombinationStrategy::kWeightedAverage},
      {"majority-vote", core::CombinationStrategy::kMajorityVote},
  };
  for (const Case& c : cases) {
    for (auto clustering : {core::ClusteringAlgorithm::kTransitiveClosure,
                            core::ClusteringAlgorithm::kCorrelationClustering}) {
      auto r = bench::CheckResult(
          runner.Run(Config(c.label, c.strategy, clustering)), "ablation run");
      table.AddRow({c.label, core::ClusteringAlgorithmToString(clustering),
                    FormatDouble(r.overall.fp_measure, 4),
                    FormatDouble(r.overall.f_measure, 4),
                    FormatDouble(r.overall.rand_index, 4)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected: best-graph selection leads (the paper: "
               "\"interestingly, this combination technique performed the "
               "best on our datasets\"); correlation clustering trades some "
               "Fp for robustness to inconsistent edges.\n";
  return 0;
}

// Ablation: the entropy-based informativeness gate (the paper's Section VII
// future work, implemented as an extension). Sweeps the gate threshold on
// the standard WWW'05-like corpus and on a sparse variant where a third of
// the pages carry almost no extractable information — the regime the paper
// says motivates entropy metrics.

#include <iostream>

#include "bench_util.h"

using namespace weber;

namespace {

void Sweep(const char* title, const corpus::GeneratorConfig& cfg,
           uint64_t seed) {
  corpus::SyntheticData data = bench::GenerateOrDie(cfg);
  core::ExperimentRunner runner = bench::MakeRunner(data, seed, /*runs=*/3);

  std::cout << title << "\n";
  TablePrinter table;
  table.SetHeader({"gate threshold", "Fp", "F", "Rand"});
  for (double gate : {0.0, 0.40, 0.55, 0.65, 0.80}) {
    core::ExperimentConfig config = bench::CombinedConfig(
        gate == 0.0 ? "off" : FormatDouble(gate, 2));
    config.options.min_pair_informativeness = gate;
    auto r = bench::CheckResult(runner.Run(config), "entropy sweep");
    table.AddRow({gate == 0.0 ? "off" : FormatDouble(gate, 2),
                  FormatDouble(r.overall.fp_measure, 4),
                  FormatDouble(r.overall.f_measure, 4),
                  FormatDouble(r.overall.rand_index, 4)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "== Ablation: entropy-based informativeness gate ==\n\n";
  Sweep("standard WWW'05-like corpus:", corpus::Www05Config(), 0xE117);

  // Sparse variant: far more incomplete pages.
  corpus::GeneratorConfig sparse_cfg = corpus::Www05Config();
  for (auto& name : sparse_cfg.names) {
    name.sparse_page_prob = 0.35;
    name.concept_drop_prob = std::min(1.0, name.concept_drop_prob + 0.15);
  }
  sparse_cfg.dataset_name = "www05-sparse-synthetic";
  Sweep("sparse variant (35% near-empty pages):", sparse_cfg, 0xE118);

  std::cout << "Expected: the gate is neutral while it only touches the "
               "emptiest pages and costs recall once it gates ordinary "
               "pages (links the region criteria would have made correctly "
               "are vetoed). In this corpus sparse pages rarely *cause* "
               "false merges — their similarities are already low — so the "
               "gate buys no precision; its value is as a guardrail when "
               "similarity functions misbehave on empty input.\n";
  return 0;
}

// Calibration study: the paper treats per-region accuracies as
// "estimations of the probability of a link" (Section IV-B). This binary
// checks how literally that holds: for each decision-criterion family, the
// fitted link probabilities are scored as probability forecasts (Brier /
// log loss / expected calibration error) on the held-out pairs of every
// WWW'05-like block, against the raw similarity value used directly as a
// probability.

#include <iostream>
#include <set>

#include "bench_util.h"
#include "core/decision.h"
#include "eval/calibration.h"
#include "ml/splitter.h"

using namespace weber;

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());
  extract::FeatureExtractor extractor(&data.gazetteer, {});
  auto functions = core::MakeStandardFunctions();

  struct Family {
    const char* label;
    std::vector<eval::LabeledProbability> predictions;
  };
  Family families[] = {{"raw similarity value", {}},
                       {"threshold two-rate model", {}},
                       {"equal-width regions (10)", {}},
                       {"k-means regions (8)", {}}};

  Rng master(0xCA11B);
  for (const corpus::Block& block : data.dataset.blocks) {
    std::vector<extract::PageInput> pages;
    for (const auto& d : block.documents) pages.push_back({d.url, d.text});
    auto bundles = bench::CheckResult(
        extractor.ExtractBlock(pages, block.query), "extraction");
    Rng rng = master.Fork(block.num_documents());
    auto train_pairs =
        ml::SampleTrainingPairs(block.num_documents(), 0.10, &rng, 10);

    for (const auto& fn : functions) {
      graph::SimilarityMatrix sims =
          core::ComputeSimilarityMatrix(*fn, bundles);
      std::vector<ml::LabeledSimilarity> training;
      for (const auto& [a, b] : train_pairs) {
        training.push_back({sims.Get(a, b),
                            block.entity_labels[a] == block.entity_labels[b]});
      }
      core::ThresholdCriterion threshold;
      auto eq = core::RegionCriterion::EqualWidth(10);
      auto km = core::RegionCriterion::KMeans(8);
      bench::CheckOk(threshold.Fit(training, &rng), "threshold fit");
      bench::CheckOk(eq->Fit(training, &rng), "eq fit");
      bench::CheckOk(km->Fit(training, &rng), "km fit");

      // Score on pairs *outside* the training sample.
      std::set<std::pair<int, int>> train_set(train_pairs.begin(),
                                              train_pairs.end());
      const int n = block.num_documents();
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          if (train_set.count({i, j})) continue;
          const double v = sims.Get(i, j);
          const bool link =
              block.entity_labels[i] == block.entity_labels[j];
          families[0].predictions.push_back({v, link});
          families[1].predictions.push_back(
              {threshold.LinkProbability(v), link});
          families[2].predictions.push_back({eq->LinkProbability(v), link});
          families[3].predictions.push_back({km->LinkProbability(v), link});
        }
      }
    }
  }

  std::cout << "== Link-probability calibration (WWW'05-like corpus, all 10 "
               "functions, held-out pairs) ==\n";
  TablePrinter table;
  table.SetHeader({"probability model", "Brier", "log loss", "ECE",
                   "samples"});
  for (const Family& family : families) {
    auto report = bench::CheckResult(
        eval::EvaluateCalibration(family.predictions, 10), "calibration");
    table.AddRow({family.label, FormatDouble(report.brier_score, 4),
                  FormatDouble(report.log_loss, 4),
                  FormatDouble(report.expected_calibration_error, 4),
                  std::to_string(family.predictions.size())});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: the region models' link probabilities are much "
               "better calibrated than the raw similarity values (the "
               "paper's justification for using accuracy estimations as "
               "edge weights), with k-means regions at least matching "
               "equal-width ones.\n";
  return 0;
}

// Reproduces Figure 1: per-region accuracy of link existence for one
// similarity function (F3) on one name ("Cohen") of the WWW'05-like corpus,
// with k-means-generated regions. The paper plots accuracy against the
// region means with boundaries as dotted lines; this binary prints the same
// series as a table plus an ASCII rendering.

#include <iostream>

#include "bench_util.h"
#include "core/decision.h"
#include "ml/splitter.h"

using namespace weber;

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());

  // Locate the "cohen" block.
  const corpus::Block* block = nullptr;
  for (const corpus::Block& b : data.dataset.blocks) {
    if (b.query == "cohen") block = &b;
  }
  if (block == nullptr) {
    std::cerr << "no 'cohen' block in the corpus\n";
    return 1;
  }

  // Extract features, compute the F3 similarity matrix.
  extract::FeatureExtractor extractor(&data.gazetteer, {});
  std::vector<extract::PageInput> pages;
  for (const corpus::Document& d : block->documents) {
    pages.push_back({d.url, d.text});
  }
  auto bundles =
      bench::CheckResult(extractor.ExtractBlock(pages, block->query),
                         "feature extraction");
  auto functions = bench::CheckResult(core::MakeFunctions({"F3"}), "F3 setup");
  graph::SimilarityMatrix sims =
      core::ComputeSimilarityMatrix(*functions.front(), bundles);

  // Training sample and k-means region accuracy model (Section IV-A).
  Rng rng(0xF16001);
  auto train_pairs =
      ml::SampleTrainingPairs(block->num_documents(), 0.10, &rng);
  std::vector<ml::LabeledSimilarity> training;
  for (const auto& [a, b] : train_pairs) {
    training.push_back(
        {sims.Get(a, b), block->entity_labels[a] == block->entity_labels[b]});
  }
  auto model = bench::CheckResult(
      ml::RegionAccuracyModel::FitKMeans(training, 8, &rng), "region fit");

  std::cout << "== Figure 1: accuracy of similarity function F3 "
               "(most frequent name), person 'cohen', k-means regions ==\n";
  std::cout << "training pairs: " << training.size()
            << ", link rate (prior): "
            << FormatDouble(model.prior_link_rate(), 4) << "\n\n";

  TablePrinter table;
  table.SetHeader({"region", "center", "span", "samples",
                   "accuracy of link existence", "decision"});
  const ml::RegionModel& regions = model.regions();
  const auto& boundaries = regions.boundaries();
  for (int r = 0; r < regions.num_regions(); ++r) {
    double lo = r == 0 ? 0.0 : boundaries[r - 1];
    double hi = r + 1 == regions.num_regions() ? 1.0 : boundaries[r];
    double acc = model.region_accuracies()[r];
    table.AddRow({std::to_string(r), FormatDouble(regions.center(r), 4),
                  "[" + FormatDouble(lo, 3) + ", " + FormatDouble(hi, 3) + ")",
                  std::to_string(model.region_sample_counts()[r]),
                  FormatDouble(acc, 4), acc >= 0.5 ? "link" : "no link"});
  }
  table.Print(std::cout);

  // ASCII rendering of the figure: x = similarity value, y = accuracy.
  std::cout << "\naccuracy vs region center (ASCII; paper Fig. 1 shows the "
               "same non-flat profile):\n";
  for (int r = 0; r < regions.num_regions(); ++r) {
    double acc = model.region_accuracies()[r];
    int bar = static_cast<int>(acc * 50 + 0.5);
    std::cout << FormatDouble(regions.center(r), 3) << " | "
              << std::string(bar, '#') << " " << FormatDouble(acc, 3) << "\n";
  }
  std::cout << "\nPaper observation reproduced: accuracy varies "
               "significantly across regions (it is not a step function of "
               "a single threshold).\n";
  return 0;
}

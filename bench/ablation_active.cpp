// Ablation: active vs uniform training-pair selection at small labeling
// budgets. The paper buys 10% of pairs uniformly; when the label budget is
// tight, uncertainty-driven selection should stretch it further.

#include <iostream>

#include "bench_util.h"
#include "core/active_sampling.h"
#include "ml/splitter.h"

using namespace weber;

namespace {

struct Cell {
  double fp = 0.0;
  double f = 0.0;
};

Cell Evaluate(const corpus::SyntheticData& data,
              const core::EntityResolver& resolver, double budget_fraction,
              bool active, uint64_t seed) {
  extract::FeatureExtractor extractor(&data.gazetteer, {});
  auto functions = core::MakeFunctions(core::kSubsetI10);
  std::vector<eval::MetricReport> reports;
  Rng master(seed);
  for (const corpus::Block& block : data.dataset.blocks) {
    std::vector<extract::PageInput> pages;
    for (const auto& d : block.documents) pages.push_back({d.url, d.text});
    auto bundles = bench::CheckResult(
        extractor.ExtractBlock(pages, block.query), "extraction");
    Rng rng = master.Fork(reports.size());

    const int n = block.num_documents();
    const int budget = std::max(
        10, static_cast<int>(budget_fraction * n * (n - 1) / 2));
    std::vector<std::pair<int, int>> pairs;
    if (active) {
      std::vector<graph::SimilarityMatrix> matrices;
      for (const auto& fn : *functions) {
        matrices.push_back(core::ComputeSimilarityMatrix(*fn, bundles));
      }
      pairs = bench::CheckResult(
          core::SelectTrainingPairs(matrices, budget, &rng), "selection");
    } else {
      pairs = ml::SampleTrainingPairs(n, budget_fraction, &rng, 10);
    }
    auto resolution = bench::CheckResult(
        resolver.ResolveExtracted(bundles, block.entity_labels, pairs, &rng),
        "resolution");
    reports.push_back(bench::CheckResult(
        eval::Evaluate(block.GroundTruth(), resolution.clustering),
        "evaluation"));
  }
  auto mean = bench::CheckResult(eval::MeanReport(reports), "averaging");
  return {mean.fp_measure, mean.f_measure};
}

}  // namespace

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());
  core::ResolverOptions options;  // C10 configuration
  auto resolver = bench::CheckResult(
      core::EntityResolver::Create(&data.gazetteer, options), "resolver");

  std::cout << "== Ablation: active vs uniform training-pair selection "
               "(WWW'05-like corpus, C10) ==\n";
  TablePrinter table;
  table.SetHeader({"label budget", "uniform Fp", "active Fp", "uniform F",
                   "active F"});
  constexpr int kSeeds = 3;
  for (double fraction : {0.005, 0.01, 0.02, 0.05, 0.10}) {
    Cell uniform, active;
    for (int s = 0; s < kSeeds; ++s) {
      Cell u = Evaluate(data, resolver, fraction, false, 0xAC7 + s * 31);
      Cell a = Evaluate(data, resolver, fraction, true, 0xBC7 + s * 31);
      uniform.fp += u.fp / kSeeds;
      uniform.f += u.f / kSeeds;
      active.fp += a.fp / kSeeds;
      active.f += a.f / kSeeds;
    }
    table.AddRow({FormatDouble(fraction * 100, 1) + "% of pairs",
                  FormatDouble(uniform.fp, 4), FormatDouble(active.fp, 4),
                  FormatDouble(uniform.f, 4), FormatDouble(active.f, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: query-by-committee selection pays off at the "
               "extreme low end of the budget range and matches uniform "
               "sampling at the paper's 10% operating point. In between the "
               "two are comparable: uncertainty sampling skews the labeled "
               "value distribution, which costs the region models some "
               "calibration — the exploration quota is what keeps it "
               "competitive.\n";
  return 0;
}

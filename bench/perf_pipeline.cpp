// google-benchmark microbenchmarks for the resolution pipeline: similarity
// matrices, decision-criterion fitting, clustering, and end-to-end block
// resolution.

#include <benchmark/benchmark.h>

#include "core/weber.h"
#include "ml/splitter.h"

namespace {

using namespace weber;

const corpus::SyntheticData& SharedData() {
  static const corpus::SyntheticData data = [] {
    auto result =
        corpus::SyntheticWebGenerator(corpus::Www05Config()).Generate();
    return std::move(result).ValueOrDie();
  }();
  return data;
}

/// Pre-extracted feature bundles of the first block.
const std::vector<extract::FeatureBundle>& SharedBundles() {
  static const std::vector<extract::FeatureBundle> bundles = [] {
    const auto& data = SharedData();
    extract::FeatureExtractor extractor(&data.gazetteer, {});
    std::vector<extract::PageInput> pages;
    for (const auto& d : data.dataset.blocks[0].documents) {
      pages.push_back({d.url, d.text});
    }
    auto result = extractor.ExtractBlock(pages, data.dataset.blocks[0].query);
    return std::move(result).ValueOrDie();
  }();
  return bundles;
}

void BM_FeatureExtractionBlock(benchmark::State& state) {
  const auto& data = SharedData();
  extract::FeatureExtractor extractor(&data.gazetteer, {});
  std::vector<extract::PageInput> pages;
  for (const auto& d : data.dataset.blocks[0].documents) {
    pages.push_back({d.url, d.text});
  }
  for (auto _ : state) {
    auto result = extractor.ExtractBlock(pages, data.dataset.blocks[0].query);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * pages.size());
}
BENCHMARK(BM_FeatureExtractionBlock);

void BM_SimilarityMatrix(benchmark::State& state) {
  auto functions = core::MakeStandardFunctions();
  const auto& fn = *functions[static_cast<size_t>(state.range(0))];
  const auto& bundles = SharedBundles();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeSimilarityMatrix(fn, bundles));
  }
  const long long pairs =
      static_cast<long long>(bundles.size()) * (bundles.size() - 1) / 2;
  state.SetItemsProcessed(state.iterations() * pairs);
  state.SetLabel(std::string(fn.name()));
}
BENCHMARK(BM_SimilarityMatrix)->DenseRange(0, 9);

void BM_KMeansRegionFit(benchmark::State& state) {
  Rng rng(1);
  std::vector<ml::LabeledSimilarity> training;
  for (int i = 0; i < 500; ++i) {
    double v = rng.UniformDouble();
    training.push_back({v, v > 0.6});
  }
  for (auto _ : state) {
    auto model = ml::RegionAccuracyModel::FitKMeans(
        training, static_cast<int>(state.range(0)), &rng);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_KMeansRegionFit)->Arg(4)->Arg(8)->Arg(16);

void BM_TransitiveClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  graph::DecisionGraph g(n, 0, 1);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.Set(i, j, rng.Bernoulli(0.05) ? 1 : 0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::TransitiveClosure(g));
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(100)->Arg(300)->Arg(1000);

void BM_CorrelationClustering(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  graph::SimilarityMatrix probs(n, 0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      probs.Set(i, j, rng.UniformDouble());
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CorrelationClustering(probs));
  }
}
BENCHMARK(BM_CorrelationClustering)->Arg(50)->Arg(100)->Arg(200);

void BM_ResolveBlockEndToEnd(benchmark::State& state) {
  const auto& data = SharedData();
  auto resolver =
      core::EntityResolver::Create(&data.gazetteer, core::ResolverOptions{});
  Rng rng(4);
  for (auto _ : state) {
    auto result = resolver->ResolveBlock(data.dataset.blocks[0], &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ResolveBlockEndToEnd);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto data = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_CorpusGeneration);

void BM_Metrics(benchmark::State& state) {
  const int n = 1000;
  Rng rng(5);
  std::vector<int> truth(n), pred(n);
  for (int i = 0; i < n; ++i) {
    truth[i] = rng.UniformInt(0, 30);
    pred[i] = rng.UniformInt(0, 25);
  }
  auto t = graph::Clustering::FromLabels(truth);
  auto p = graph::Clustering::FromLabels(pred);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::Evaluate(t, p));
  }
}
BENCHMARK(BM_Metrics);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Table III: Fp measure for each name in the WWW'05-like corpus,
// for each individual function F1..F10 plus the C10 and W combinations.
// The paper's observation: "each function performs differently for
// different persons" — the per-row argmax moves across columns.

#include <iostream>

#include "bench_util.h"

using namespace weber;

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());
  core::ExperimentRunner runner = bench::MakeRunner(data, 0xF16004);

  std::vector<core::ExperimentConfig> configs;
  for (const std::string& name : core::kSubsetI10) {
    configs.push_back(bench::SingleFunctionConfig(name));
  }
  configs.push_back(bench::RegionBestConfig("C10", core::kSubsetI10));
  configs.push_back(bench::WeightedAverageConfig("W"));

  auto results = bench::CheckResult(runner.RunAllParallel(configs, 8), "table III");

  std::cout << "== Table III: Fp measure for each name in the WWW'05-like "
               "corpus (" << runner.num_runs() << "-run averages) ==\n";
  TablePrinter table;
  std::vector<std::string> header = {"name"};
  for (const auto& r : results) header.push_back(r.label);
  header.push_back("best fn");
  table.SetHeader(header);

  const auto& blocks = data.dataset.blocks;
  for (size_t b = 0; b < blocks.size(); ++b) {
    std::vector<std::string> row = {blocks[b].query};
    double best = -1.0;
    std::string best_label;
    for (const auto& r : results) {
      double fp = r.per_block[b].fp_measure;
      row.push_back(FormatDouble(fp, 4));
      // Track the best *individual* function (exclude combinations).
      if (r.label != "C10" && r.label != "W" && fp > best) {
        best = fp;
        best_label = r.label;
      }
    }
    row.push_back(best_label);
    table.AddRow(row);
  }
  table.AddSeparator();
  std::vector<std::string> mean_row = {"MEAN"};
  for (const auto& r : results) {
    mean_row.push_back(FormatDouble(r.overall.fp_measure, 4));
  }
  mean_row.push_back("");
  table.AddRow(mean_row);
  table.Print(std::cout);

  // Shape check: the per-name best individual function is not constant
  // (paper: F8 wins for "Voss", F6 for "Mulford", ...).
  std::cout << "\nPaper observation to reproduce: the winning individual "
               "function differs across names, and C10 >= the best "
               "individual function for most names.\n";
  return 0;
}

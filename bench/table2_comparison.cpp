// Reproduces Table II: I4/I7/I10 (threshold-only best graph) vs C4/C7/C10
// (region-accuracy best graph) vs W (weighted-average combination) on both
// datasets, for Fp-measure, F-measure and Rand index, next to the figures
// the paper reports for itself and for related work.

#include <iostream>

#include "bench_util.h"
#include "eval/significance.h"

using namespace weber;

namespace {

struct PaperRow {
  const char* metric;
  double i4, i7, i10, c4, c7, c10, w;
  const char* related;
};

// The paper's Table II, quoted for side-by-side comparison.
constexpr PaperRow kPaperWww[] = {
    {"Fp", 0.8128, 0.8211, 0.8232, 0.8537, 0.8732, 0.8774, 0.8371,
     "0.864 [20], 0.9000 [19]"},
    {"F", 0.7654, 0.7773, 0.7822, 0.8338, 0.8376, 0.8438, 0.8168,
     "0.8000 [17], 0.8 [19]"},
    {"Rand", 0.8018, 0.8109, 0.8326, 0.8747, 0.8814, 0.8886, 0.8531, ""},
};
constexpr PaperRow kPaperWeps[] = {
    {"Fp", 0.7270, 0.7388, 0.7682, 0.7560, 0.7659, 0.7880, 0.7785,
     "0.791 [20], WePS: 0.7800"},
    {"F", 0.7042, 0.7042, 0.7042, 0.7127, 0.7231, 0.7476, 0.7190, ""},
    {"Rand", 0.7102, 0.7102, 0.7139, 0.7492, 0.7531, 0.7675, 0.7290, ""},
};

void RunDataset(const char* title, const corpus::GeneratorConfig& cfg,
                uint64_t seed, const PaperRow* paper_rows) {
  corpus::SyntheticData data = bench::GenerateOrDie(cfg);
  core::ExperimentRunner runner = bench::MakeRunner(data, seed);

  std::vector<core::ExperimentConfig> configs = {
      bench::ThresholdBestConfig("I4", core::kSubsetI4),
      bench::ThresholdBestConfig("I7", core::kSubsetI7),
      bench::ThresholdBestConfig("I10", core::kSubsetI10),
      bench::RegionBestConfig("C4", core::kSubsetI4),
      bench::RegionBestConfig("C7", core::kSubsetI7),
      bench::RegionBestConfig("C10", core::kSubsetI10),
      bench::WeightedAverageConfig("W"),
  };
  auto results =
      bench::CheckResult(runner.RunAllParallel(configs, 8), "table II experiment");

  std::cout << "== Table II (" << title << ", " << runner.num_runs()
            << "-run averages) ==\n";
  TablePrinter table;
  table.SetHeader({"metric", "I4", "I7", "I10", "C4", "C7", "C10", "W",
                   "paper (same cols)", "related work"});
  const char* metrics[] = {"Fp", "F", "Rand"};
  for (int m = 0; m < 3; ++m) {
    std::vector<std::string> row = {metrics[m]};
    for (const auto& r : results) {
      row.push_back(FormatDouble(eval::MetricByName(r.overall, metrics[m]), 4));
    }
    const PaperRow& p = paper_rows[m];
    row.push_back(FormatDouble(p.i4, 2) + "/" + FormatDouble(p.i7, 2) + "/" +
                  FormatDouble(p.i10, 2) + "/" + FormatDouble(p.c4, 2) + "/" +
                  FormatDouble(p.c7, 2) + "/" + FormatDouble(p.c10, 2) + "/" +
                  FormatDouble(p.w, 2));
    row.push_back(p.related);
    table.AddRow(row);
  }
  table.Print(std::cout);

  // Headline significance: C10 vs I10 on per-block Fp (paired bootstrap).
  std::vector<double> i10_fp, c10_fp;
  for (const auto& r : results) {
    if (r.label == "I10") {
      for (const auto& b : r.per_block) i10_fp.push_back(b.fp_measure);
    }
    if (r.label == "C10") {
      for (const auto& b : r.per_block) c10_fp.push_back(b.fp_measure);
    }
  }
  auto boot = eval::PairedBootstrap(c10_fp, i10_fp);
  if (boot.ok()) {
    std::cout << "C10 - I10 per-block Fp: mean "
              << FormatDouble(boot->mean_difference, 4) << " (95% CI ["
              << FormatDouble(boot->ci_low, 4) << ", "
              << FormatDouble(boot->ci_high, 4) << "], one-sided p = "
              << FormatDouble(boot->p_value, 4) << ")\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  RunDataset("WWW'05-like corpus", corpus::Www05Config(), 0xAA01,
             kPaperWww);
  RunDataset("WePS-2-like corpus", corpus::WepsConfig(), 0xBB02, kPaperWeps);
  std::cout << "Expected shape (paper): C* > I* column-wise; more functions "
               "help (4 <= 7 <= 10); C10 best; W between I* and C10; WePS "
               "below WWW'05.\n";
  return 0;
}

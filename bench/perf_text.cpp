// google-benchmark microbenchmarks for the text-processing substrate:
// tokenizer, stemmer, analyzer, TF-IDF vectorization, gazetteer annotation.

#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "corpus/presets.h"
#include "extract/gazetteer.h"
#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace {

using namespace weber;

/// One shared corpus for all text benchmarks (generated once).
const corpus::SyntheticData& SharedData() {
  static const corpus::SyntheticData data = [] {
    auto result = corpus::SyntheticWebGenerator(corpus::TinyConfig()).Generate();
    return std::move(result).ValueOrDie();
  }();
  return data;
}

const std::string& SampleText() {
  return SharedData().dataset.blocks[0].documents[0].text;
}

void BM_Tokenize(benchmark::State& state) {
  text::Tokenizer tokenizer;
  const std::string& doc = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(doc));
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_Tokenize);

void BM_PorterStem(benchmark::State& state) {
  const char* words[] = {"caresses", "relational", "generalization",
                         "disambiguating", "entities", "resolution"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::PorterStemmer::Stem(words[i++ % 6]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_Analyze(benchmark::State& state) {
  text::Analyzer analyzer;
  const std::string& doc = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Analyze(doc));
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_Analyze);

void BM_TfIdfVectorize(benchmark::State& state) {
  text::Analyzer analyzer;
  text::TfIdfModel model;
  const auto& block = SharedData().dataset.blocks[0];
  std::vector<std::vector<std::string>> analyzed;
  for (const auto& d : block.documents) {
    analyzed.push_back(analyzer.Analyze(d.text));
    model.AddDocument(analyzed.back());
  }
  (void)model.Finalize();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Vectorize(analyzed[i++ % analyzed.size()]));
  }
}
BENCHMARK(BM_TfIdfVectorize);

void BM_GazetteerAnnotate(benchmark::State& state) {
  const auto& data = SharedData();
  const std::string& doc = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.gazetteer.Annotate(doc));
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_GazetteerAnnotate);

}  // namespace

BENCHMARK_MAIN();

// Extended-function study: does the combination framework keep improving
// when the function pool grows beyond the paper's Table I? Compares the
// paper's C10 against C16 (Table I + six composed functions, including the
// structured name-compatibility measures F11/F12) on both corpora, and
// reports each new function's individual quality.

#include <iostream>

#include "bench_util.h"
#include "core/composed_functions.h"

using namespace weber;

namespace {

void RunDataset(const char* title, const corpus::GeneratorConfig& cfg,
                uint64_t seed) {
  corpus::SyntheticData data = bench::GenerateOrDie(cfg);
  core::ExperimentRunner runner = bench::MakeRunner(data, seed, /*runs=*/3);

  std::vector<core::ExperimentConfig> configs;
  for (const std::string& name :
       {"F11", "F12", "F13", "F14", "F15", "F16"}) {
    configs.push_back(bench::SingleFunctionConfig(name));
  }
  configs.push_back(bench::RegionBestConfig("C10", core::kSubsetI10));
  configs.push_back(bench::RegionBestConfig("C16", core::kSubsetExtended16));
  core::ExperimentConfig w16 = bench::WeightedAverageConfig("W16");
  w16.options.function_names = core::kSubsetExtended16;
  configs.push_back(w16);

  auto results = bench::CheckResult(runner.RunAllParallel(configs, 8), "extended study");

  std::cout << title << "\n";
  TablePrinter table;
  table.SetHeader({"config", "Fp", "F", "Rand"});
  for (const auto& r : results) {
    table.AddRow({r.label, FormatDouble(r.overall.fp_measure, 4),
                  FormatDouble(r.overall.f_measure, 4),
                  FormatDouble(r.overall.rand_index, 4)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "== Extended function set (F11..F16 composed from the Table-I "
               "design space) ==\n\n"
               "F11 closest-name x name-compatibility, F12 "
               "most-frequent-name x name-compatibility,\nF13 concepts x "
               "jaccard, F14 organizations x dice, F15 tfidf x term-overlap "
               "jaccard,\nF16 url x jaro-winkler\n\n";
  RunDataset("WWW'05-like corpus:", corpus::Www05Config(), 0xE16A);
  RunDataset("WePS-2-like corpus:", corpus::WepsConfig(), 0xE16B);
  std::cout << "Reading: with reliable (cross-validated) graph ranking, "
               "adding candidate functions never hurts best-graph selection "
               "much and can help when a composed function dominates a "
               "name (the structured F11/F12 are immune to the "
               "contradictory-first-name failure of F3/F7).\n";
  return 0;
}

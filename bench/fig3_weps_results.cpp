// Reproduces Figure 3: per-function Fp / F / Rand bars on the WePS-2-like
// corpus, with the combined technique as the final column.

#include <iostream>

#include "bench_util.h"

using namespace weber;

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::WepsConfig());
  core::ExperimentRunner runner = bench::MakeRunner(data, 0xF16003);

  std::vector<core::ExperimentConfig> configs;
  for (const std::string& name : core::kSubsetI10) {
    configs.push_back(bench::SingleFunctionConfig(name));
  }
  configs.push_back(bench::CombinedConfig());

  auto results = bench::CheckResult(runner.RunAllParallel(configs, 8), "figure 3");

  std::cout << "== Figure 3: WEPS results graph (" << runner.num_runs()
            << "-run averages over 10 ACL'08-style names) ==\n";
  TablePrinter table;
  table.SetHeader({"function", "Fp-measure", "F-measure", "Rand-index"});
  for (const auto& r : results) {
    table.AddRow({r.label, FormatDouble(r.overall.fp_measure, 4),
                  FormatDouble(r.overall.f_measure, 4),
                  FormatDouble(r.overall.rand_index, 4)});
  }
  table.Print(std::cout);

  std::cout << "\nFp-measure bars:\n";
  for (const auto& r : results) {
    int bar = static_cast<int>(r.overall.fp_measure * 60 + 0.5);
    std::cout << (r.label + std::string(9 - std::min<size_t>(r.label.size(), 8),
                                        ' '))
              << std::string(bar, r.label == "Combined" ? '#' : '=') << " "
              << FormatDouble(r.overall.fp_measure, 4) << "\n";
  }

  const auto& combined = results.back();
  int beaten = 0;
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    if (combined.overall.fp_measure > results[i].overall.fp_measure) ++beaten;
  }
  std::cout << "\ncombined beats " << beaten << "/" << results.size() - 1
            << " individual functions on Fp (paper: 10/10)\n";
  return 0;
}

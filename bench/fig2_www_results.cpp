// Reproduces Figure 2: per-function Fp / F / Rand bars on the WWW'05-like
// corpus, with the combined (proposed) technique as the final column, which
// must beat every individual function.

#include <iostream>

#include "bench_util.h"

using namespace weber;

int main() {
  corpus::SyntheticData data = bench::GenerateOrDie(corpus::Www05Config());
  core::ExperimentRunner runner = bench::MakeRunner(data, 0xF16002);

  std::vector<core::ExperimentConfig> configs;
  for (const std::string& name : core::kSubsetI10) {
    configs.push_back(bench::SingleFunctionConfig(name));
  }
  configs.push_back(bench::CombinedConfig());

  auto results = bench::CheckResult(runner.RunAllParallel(configs, 8), "figure 2");

  std::cout << "== Figure 2: WWW results graph (" << runner.num_runs()
            << "-run averages over 12 names) ==\n";
  TablePrinter table;
  table.SetHeader({"function", "Fp-measure", "F-measure", "Rand-index"});
  for (const auto& r : results) {
    table.AddRow({r.label, FormatDouble(r.overall.fp_measure, 4),
                  FormatDouble(r.overall.f_measure, 4),
                  FormatDouble(r.overall.rand_index, 4)});
  }
  table.Print(std::cout);

  // ASCII bars for the Fp series (the paper's leftmost bar group).
  std::cout << "\nFp-measure bars:\n";
  for (const auto& r : results) {
    int bar = static_cast<int>(r.overall.fp_measure * 60 + 0.5);
    std::cout << (r.label + std::string(9 - std::min<size_t>(r.label.size(), 8),
                                        ' '))
              << std::string(bar, r.label == "Combined" ? '#' : '=') << " "
              << FormatDouble(r.overall.fp_measure, 4) << "\n";
  }

  // The paper's headline: the combined column improves on every individual
  // function.
  const auto& combined = results.back();
  int beaten = 0;
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    if (combined.overall.fp_measure > results[i].overall.fp_measure) ++beaten;
  }
  std::cout << "\ncombined beats " << beaten << "/" << results.size() - 1
            << " individual functions on Fp (paper: 10/10)\n";
  return 0;
}

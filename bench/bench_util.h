// Shared helpers for the reproduction benchmarks (one binary per paper
// table/figure). Not part of the public library API.

#ifndef WEBER_BENCH_BENCH_UTIL_H_
#define WEBER_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/weber.h"

namespace weber {
namespace bench {

/// The number of randomized runs averaged per configuration (Section V-A2).
inline constexpr int kNumRuns = 5;

/// Aborts with a message when a Status is not OK (benchmarks have no
/// recovery path; a failure is a bug).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

/// Resolver configuration for a single similarity function evaluated with
/// the plain threshold criterion (the individual bars in Figures 2-3 and the
/// F1..F10 columns of Table III).
inline core::ExperimentConfig SingleFunctionConfig(const std::string& name) {
  core::ExperimentConfig config;
  config.label = name;
  config.options.function_names = {name};
  config.options.use_region_criteria = false;
  config.options.combination = core::CombinationStrategy::kBestGraph;
  return config;
}

/// I columns of Table II: best threshold-only decision graph over a
/// function subset.
inline core::ExperimentConfig ThresholdBestConfig(
    const std::string& label, const std::vector<std::string>& functions) {
  core::ExperimentConfig config;
  config.label = label;
  config.options.function_names = functions;
  config.options.use_region_criteria = false;
  config.options.combination = core::CombinationStrategy::kBestGraph;
  return config;
}

/// C columns of Table II: best decision graph over (functions x criteria),
/// criteria including the region-accuracy models.
inline core::ExperimentConfig RegionBestConfig(
    const std::string& label, const std::vector<std::string>& functions) {
  core::ExperimentConfig config;
  config.label = label;
  config.options.function_names = functions;
  config.options.use_region_criteria = true;
  config.options.combination = core::CombinationStrategy::kBestGraph;
  return config;
}

/// The W column of Table II: accuracy-weighted average combination over all
/// ten functions with region criteria.
inline core::ExperimentConfig WeightedAverageConfig(
    const std::string& label = "W") {
  core::ExperimentConfig config;
  config.label = label;
  config.options.function_names = core::kSubsetI10;
  config.options.use_region_criteria = true;
  config.options.combination = core::CombinationStrategy::kWeightedAverage;
  return config;
}

/// The paper's combined column for Figures 2-3: the full proposed technique
/// (all functions, region criteria, best-graph selection).
inline core::ExperimentConfig CombinedConfig(
    const std::string& label = "Combined") {
  return RegionBestConfig(label, core::kSubsetI10);
}

/// Generates a dataset from a preset config, aborting on error.
inline corpus::SyntheticData GenerateOrDie(const corpus::GeneratorConfig& cfg) {
  return CheckResult(corpus::SyntheticWebGenerator(cfg).Generate(),
                     "corpus generation");
}

/// A prepared runner over a dataset.
inline core::ExperimentRunner MakeRunner(const corpus::SyntheticData& data,
                                         uint64_t seed, int runs = kNumRuns) {
  core::ExperimentRunner runner(&data.dataset, &data.gazetteer, runs, seed);
  CheckOk(runner.Prepare(), "runner preparation");
  return runner;
}

}  // namespace bench
}  // namespace weber

#endif  // WEBER_BENCH_BENCH_UTIL_H_

// Blocking: grouping documents by the ambiguous name they mention. The
// paper's datasets arrive pre-blocked (one collection per queried name,
// Section IV-C footnote 1); this utility builds such blocks from a flat
// document collection, for pipelines that start from raw crawls.

#ifndef WEBER_CORE_BLOCKING_H_
#define WEBER_CORE_BLOCKING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/document.h"

namespace weber {
namespace core {

/// Groups documents into one block per query name. A document joins the
/// block of every query that occurs in its text as a whole word
/// (case-insensitive), mirroring how search-engine result sets overlap.
/// Documents matching no query are dropped. Entity labels are set to -1
/// (unknown); blocks built this way are inputs for *resolution*, not
/// *evaluation*. Returns InvalidArgument when `queries` is empty.
Result<std::vector<corpus::Block>> BlockByQueryNames(
    const std::vector<corpus::Document>& documents,
    const std::vector<std::string>& queries);

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_BLOCKING_H_

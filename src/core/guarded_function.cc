#include "core/guarded_function.h"

#include <algorithm>
#include <cmath>

#include "common/fault_injection.h"

namespace weber {
namespace core {

double GuardedSimilarityFunction::Compute(const extract::FeatureBundle& a,
                                          const extract::FeatureBundle& b) const {
  ++calls_;
  double raw = inner_->Compute(a, b);
  faults::MaybeCorrupt("similarity.compute", &raw);

  double value = raw;
  if (!std::isfinite(value)) {
    ++counters_.non_finite;
    value = 0.0;
  } else if (value < 0.0 || value > 1.0) {
    ++counters_.out_of_range;
    value = std::clamp(value, 0.0, 1.0);
  } else if (options_.symmetry_check_interval > 0 &&
             calls_ % options_.symmetry_check_interval == 0) {
    // Spot-check symmetry on healthy values only: a corrupted value already
    // counted above, and comparing against it would double-report.
    double reversed = inner_->Compute(b, a);
    if (!std::isfinite(reversed) ||
        std::abs(reversed - raw) > options_.symmetry_tolerance) {
      ++counters_.asymmetry;
    }
  }

  if (!quarantined_ && options_.quarantine_threshold > 0 &&
      counters_.total() >= options_.quarantine_threshold) {
    quarantined_ = true;
  }
  return value;
}

}  // namespace core
}  // namespace weber

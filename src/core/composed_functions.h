// Composable similarity functions: the generalization of Table I's design
// space. The paper builds each function as (page feature) x (similarity
// measure); this module lets users compose any valid combination, and
// defines an extended function set (F11..F16) beyond the paper's ten —
// used by the extended-function benchmark to ask whether the combination
// framework keeps improving as the function pool grows.

#ifndef WEBER_CORE_COMPOSED_FUNCTIONS_H_
#define WEBER_CORE_COMPOSED_FUNCTIONS_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/similarity_function.h"

namespace weber {
namespace core {

/// The page features a composed function can read from a FeatureBundle.
enum class PageFeature : int {
  kWeightedConcepts = 0,  ///< sparse vector
  kConcepts = 1,          ///< sparse incidence vector
  kOrganizations = 2,     ///< sparse incidence vector
  kOtherPersons = 3,      ///< sparse incidence vector
  kTfIdf = 4,             ///< sparse vector
  kMostFrequentName = 5,  ///< string
  kClosestName = 6,       ///< string
  kUrl = 7,               ///< string
};

/// Pairwise measures. Vector measures apply to vector features, string
/// measures to string features; ComposeFunction rejects invalid pairings.
enum class PairMeasure : int {
  // Vector measures.
  kCosine = 0,
  kPearson = 1,
  kExtendedJaccard = 2,
  kJaccard = 3,
  kDice = 4,
  kOverlapCoefficient = 5,
  kSaturatingOverlap = 6,
  // String measures.
  kJaroWinkler = 10,
  kLevenshtein = 11,
  kNgram = 12,
  kNameCompatibility = 13,  ///< structured person-name comparison
  kUrlTiers = 14,           ///< the domain-aware URL tier measure
  kSoundex = 15,            ///< phonetic code equality
  kPhoneticName = 16,       ///< phonetic last name + first-initial agreement
};

std::string_view PageFeatureToString(PageFeature feature);
std::string_view PairMeasureToString(PairMeasure measure);

/// Builds a similarity function computing measure(feature(a), feature(b)).
/// `name` is the identifier reported by SimilarityFunction::name().
/// Returns InvalidArgument for a feature/measure type mismatch (e.g.
/// cosine over a URL).
Result<std::unique_ptr<SimilarityFunction>> ComposeFunction(
    PageFeature feature, PairMeasure measure, std::string name);

/// The extended set: the paper's F1..F10 plus six composed functions.
///
///   F11  closest name        x structured name compatibility
///   F12  most frequent name  x structured name compatibility
///   F13  concepts            x Jaccard
///   F14  organizations       x Dice
///   F15  TF-IDF terms        x Jaccard over term ids (term overlap)
///   F16  URL                 x Jaro-Winkler of the raw strings
///
std::vector<std::unique_ptr<SimilarityFunction>> MakeExtendedFunctions();

/// Names of the extended set ("F1".."F16"), for ResolverOptions.
extern const std::vector<std::string> kSubsetExtended16;

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_COMPOSED_FUNCTIONS_H_

#include "core/resolver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "core/compiled_path.h"
#include "core/decision.h"
#include "ml/splitter.h"
#include "text/vector_similarity.h"

namespace weber {
namespace core {

namespace {

/// Labeled training pair with its similarity value under one function.
struct LabeledPair {
  int a;
  int b;
  bool link;
};

/// Cross-validated *graph-level* quality of one decision criterion for one
/// similarity matrix: the paper's acc(G^i_{Dj}) estimated without the
/// winner's curse. For each fold, a fresh criterion is fitted on the fold
/// complement, the full decision graph is built and transitively closed
/// (closure uses no labels — it is transductive structure), and the
/// held-out pairs are scored. The score is the F1 of the link class, which
/// — unlike raw pair accuracy under heavy class imbalance — tracks the
/// clustering quality the graph will deliver.
Result<double> CvGraphScore(const CriterionFactory& factory,
                            const graph::SimilarityMatrix& sims,
                            const std::vector<LabeledPair>& training,
                            int folds, Rng* rng, bool compiled) {
  if (training.empty()) {
    return Status::InvalidArgument("CvGraphScore: empty training sample");
  }
  folds = std::max(2, folds);
  const int n = sims.size();

  std::vector<int> order(training.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng->Shuffle(&order);
  const bool tiny = static_cast<int>(training.size()) < 2 * folds;

  long long tp = 0, fp = 0, fn = 0, tn = 0;
  const int fold_count = tiny ? 1 : folds;
  for (int f = 0; f < fold_count; ++f) {
    std::vector<ml::LabeledSimilarity> fit_part;
    std::vector<const LabeledPair*> held_out;
    for (size_t i = 0; i < order.size(); ++i) {
      const LabeledPair& p = training[order[i]];
      const bool in_fold = !tiny && static_cast<int>(i) % folds == f;
      if (in_fold) {
        held_out.push_back(&p);
      } else {
        fit_part.push_back({sims.Get(p.a, p.b), p.link});
      }
    }
    if (tiny) {
      // Degenerate sample: score in-sample (still post-closure).
      for (const LabeledPair& p : training) held_out.push_back(&p);
    }
    if (fit_part.empty() || held_out.empty()) continue;

    std::unique_ptr<DecisionCriterion> criterion = factory();
    WEBER_RETURN_NOT_OK(criterion->Fit(fit_part, rng));
    graph::DecisionGraph decisions(n, 0, 1);
    auto& dec = decisions.data();
    const auto& values = sims.data();
    CompiledDecision table;
    if (compiled && criterion->Compile(&table)) {
      table.EvalBlock(values.data(), values.size(), dec.data(), nullptr);
    } else {
      for (size_t k = 0; k < values.size(); ++k) {
        dec[k] = criterion->Decide(values[k]) ? 1 : 0;
      }
    }
    graph::Clustering closed = graph::TransitiveClosure(decisions);
    for (const LabeledPair* p : held_out) {
      const bool predicted = closed.SameCluster(p->a, p->b);
      if (predicted && p->link) ++tp;
      else if (predicted && !p->link) ++fp;
      else if (!predicted && p->link) ++fn;
      else ++tn;
    }
  }
  if (tp + fp + fn == 0) return 1.0;  // no links anywhere: vacuously perfect
  return 2.0 * tp / static_cast<double>(2 * tp + fp + fn);
}

}  // namespace

std::string ClusteringAlgorithmToString(ClusteringAlgorithm a) {
  switch (a) {
    case ClusteringAlgorithm::kTransitiveClosure:
      return "transitive-closure";
    case ClusteringAlgorithm::kCorrelationClustering:
      return "correlation-clustering";
    case ClusteringAlgorithm::kAgglomerative:
      return "agglomerative";
  }
  return "unknown";
}

Result<EntityResolver> EntityResolver::Create(
    const extract::Gazetteer* gazetteer, ResolverOptions options) {
  WEBER_ASSIGN_OR_RETURN(auto functions,
                         MakeFunctions(options.function_names));
  return CreateWithFunctions(gazetteer, std::move(options),
                             std::move(functions));
}

Result<EntityResolver> EntityResolver::CreateWithFunctions(
    const extract::Gazetteer* gazetteer, ResolverOptions options,
    std::vector<std::unique_ptr<SimilarityFunction>> functions) {
  if (gazetteer == nullptr) {
    return Status::InvalidArgument("EntityResolver: null gazetteer");
  }
  if (options.train_fraction <= 0.0 || options.train_fraction > 1.0) {
    return Status::InvalidArgument("EntityResolver: train_fraction must be in"
                                   " (0, 1], got ", options.train_fraction);
  }
  if (functions.empty()) {
    return Status::InvalidArgument("EntityResolver: no similarity functions");
  }
  for (const auto& fn : functions) {
    if (fn == nullptr) {
      return Status::InvalidArgument("EntityResolver: null similarity function");
    }
  }
  if (options.deadline_ms < 0.0) {
    return Status::InvalidArgument("EntityResolver: deadline_ms must be >= 0");
  }
  if (options.max_pair_budget < 0) {
    return Status::InvalidArgument(
        "EntityResolver: max_pair_budget must be >= 0");
  }
  return EntityResolver(gazetteer, std::move(options), std::move(functions));
}

Result<BlockResolution> EntityResolver::ResolveBlock(
    const corpus::Block& block, Rng* rng) const {
  if (block.documents.empty()) {
    return Status::InvalidArgument("ResolveBlock: empty block");
  }
  if (block.entity_labels.size() != block.documents.size()) {
    return Status::InvalidArgument(
        "ResolveBlock: labels/documents size mismatch in block '",
        block.query, "'");
  }
  // Blocking already happened upstream (documents grouped per name); extract
  // features for this block.
  std::vector<extract::PageInput> pages;
  pages.reserve(block.documents.size());
  for (const corpus::Document& d : block.documents) {
    pages.push_back({d.url, d.text});
  }
  WEBER_ASSIGN_OR_RETURN(auto bundles,
                         extractor_.ExtractBlock(pages, block.query));

  // Training sample (Section V-A2): 10% of the block's pairs, or all pairs
  // among 10% of its documents, per options.
  std::vector<std::pair<int, int>> training_pairs;
  if (options_.train_sampling == ResolverOptions::TrainSampling::kPairs) {
    training_pairs = ml::SampleTrainingPairs(
        block.num_documents(), options_.train_fraction, rng,
        options_.min_train_size);
  } else {
    training_pairs = ml::PairsAmong(ml::SampleTrainingDocuments(
        block.num_documents(), options_.train_fraction, rng,
        options_.min_train_size));
  }

  return ResolveExtracted(bundles, block.entity_labels, training_pairs, rng);
}

Result<BlockResolution> EntityResolver::ResolveExtracted(
    const std::vector<extract::FeatureBundle>& bundles,
    const std::vector<int>& entity_labels,
    const std::vector<std::pair<int, int>>& training_pairs, Rng* rng) const {
  const int n = static_cast<int>(bundles.size());
  if (n == 0) return Status::InvalidArgument("ResolveExtracted: no documents");
  if (static_cast<int>(entity_labels.size()) != n) {
    return Status::InvalidArgument("ResolveExtracted: label size mismatch");
  }
  for (const auto& [a, b] : training_pairs) {
    if (a < 0 || b < 0 || a >= n || b >= n || a == b) {
      return Status::InvalidArgument("ResolveExtracted: bad training pair (",
                                     a, ", ", b, ")");
    }
  }

  BlockResolution resolution;
  resolution.training_pairs = training_pairs;

  // Trivial blocks: nothing to pair up.
  if (n == 1) {
    resolution.clustering = graph::Clustering::Singletons(1);
    return resolution;
  }

  const std::vector<std::pair<int, int>>& train_pairs = training_pairs;
  RunHealth& health = resolution.health;

  WallTimer timer;
  auto deadline_exceeded = [&]() {
    return options_.deadline_ms > 0.0 &&
           timer.ElapsedMillis() > options_.deadline_ms;
  };

  // Per-call guards: quarantine state is per block, so one poisoned block
  // cannot blacklist a function for the rest of the run, and concurrent
  // ResolveExtracted calls on the same resolver stay thread-compatible.
  std::vector<GuardedSimilarityFunction> guards;
  if (options_.guard_functions) {
    guards.reserve(functions_.size());
    for (const auto& fn : functions_) {
      guards.emplace_back(fn.get(), options_.guard);
    }
  }

  // --- Step 1: complete weighted graph per function, under the pair budget
  // and deadline. ---
  WallTimer stage_timer;
  obs::ScopedSpan similarity_span(options_.trace, "pipeline.similarity");
  const long long pairs_per_matrix =
      static_cast<long long>(n) * (n - 1) / 2;
  long long pairs_spent = 0;
  std::vector<graph::SimilarityMatrix> matrices(functions_.size());
  std::vector<char> computed(functions_.size(), 0);
  std::vector<char> quarantined(functions_.size(), 0);
  // Compiled hot path: score whole matrices through the frozen CSR/SoA
  // kernels when the function declares a batchable form. Bit-identical to
  // the per-pair walk (see compiled_path.h), so the guard wrapper — which
  // is value-transparent for these contract-abiding standard functions —
  // can be skipped. Armed fault injection forces the interpreted path so
  // the `similarity.compute` fault point keeps seeing every pair.
  BlockScorer block_scorer(&bundles);
  const bool use_batch =
      options_.compiled_path && !faults::FaultInjector::Instance().AnyArmed();
  const long long pearson_corrections_before =
      text::PearsonDimensionCorrections();
  for (size_t f = 0; f < functions_.size(); ++f) {
    if (options_.max_pair_budget > 0 &&
        pairs_spent + pairs_per_matrix > options_.max_pair_budget) {
      if (health.budget_hits == 0) health.budget_hits = 1;
      health.skipped_pairs += pairs_per_matrix;
      continue;
    }
    if (deadline_exceeded()) {
      if (health.deadline_hits == 0) health.deadline_hits = 1;
      health.skipped_pairs += pairs_per_matrix;
      continue;
    }
    const BatchSpec spec = functions_[f]->batch_spec();
    if (use_batch && spec.batchable() && block_scorer.CanBatch(spec)) {
      matrices[f] = block_scorer.ScoreMatrix(spec);
    } else {
      const SimilarityFunction& fn =
          options_.guard_functions ? static_cast<const SimilarityFunction&>(
                                         guards[f])
                                   : *functions_[f];
      matrices[f] = ComputeSimilarityMatrix(fn, bundles);
    }
    computed[f] = 1;
    pairs_spent += pairs_per_matrix;
    if (options_.guard_functions && guards[f].quarantined()) {
      quarantined[f] = 1;
      ++health.quarantined_functions;
    }
  }
  health.dimension_corrections +=
      text::PearsonDimensionCorrections() - pearson_corrections_before;
  if (options_.guard_functions) {
    for (const GuardedSimilarityFunction& g : guards) {
      health.value_violations +=
          g.violations().non_finite + g.violations().out_of_range;
      health.asymmetry_violations += g.violations().asymmetry;
    }
  }

  similarity_span.End();
  resolution.stage_ms.similarity_ms = stage_timer.ElapsedMillis();
  stage_timer.Restart();
  obs::ScopedSpan decision_span(options_.trace, "pipeline.decision");

  // Layout helper for pair offsets (all matrices share the same indexing).
  const graph::SimilarityMatrix* layout = nullptr;
  for (size_t f = 0; f < matrices.size(); ++f) {
    if (computed[f]) {
      layout = &matrices[f];
      break;
    }
  }

  // --- Steps 2-4: fit criteria per function, build decision graphs with
  // accuracy estimates. ---
  std::vector<DecisionSource> sources;
  std::vector<TrainingPair> training_offsets;
  training_offsets.reserve(train_pairs.size());
  if (!train_pairs.empty() && layout != nullptr) {
    for (const auto& [a, b] : train_pairs) {
      training_offsets.push_back(
          {a, b, layout->Index(a, b), entity_labels[a] == entity_labels[b]});
    }
  }

  // Informativeness gate (optional extension): pairs with too little page
  // evidence cannot carry positive decisions.
  std::vector<char> pair_gated;
  if (options_.min_pair_informativeness > 0.0 && layout != nullptr) {
    pair_gated.assign(layout->num_pairs(), 0);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double evidence = std::sqrt(bundles[i].informativeness *
                                    bundles[j].informativeness);
        if (evidence < options_.min_pair_informativeness) {
          pair_gated[layout->Index(i, j)] = 1;
        }
      }
    }
  }

  // First fitting failure, preserved so a clean-but-unfittable run (e.g. an
  // empty training sample) still surfaces the underlying error instead of
  // silently degrading.
  Status first_fit_error = Status::OK();
  long long fault_skips = 0;

  for (size_t f = 0; f < functions_.size(); ++f) {
    if (!computed[f]) continue;
    // A quarantined function's values are untrustworthy end to end: drop
    // its decision graphs and continue with the remaining functions. The
    // RNG stream then matches a run that omitted the function, so the
    // resolution is identical to never having included it.
    if (quarantined[f]) continue;
    if (deadline_exceeded()) {
      if (health.deadline_hits == 0) health.deadline_hits = 1;
      break;
    }
    const graph::SimilarityMatrix& sims = matrices[f];

    std::vector<ml::LabeledSimilarity> training;
    training.reserve(train_pairs.size());
    for (const auto& [a, b] : train_pairs) {
      training.push_back(
          {sims.Get(a, b), entity_labels[a] == entity_labels[b]});
    }

    std::vector<CriterionFactory> factories =
        options_.use_region_criteria
            ? MakeStandardCriterionFactories(options_.equal_width_bins,
                                             options_.kmeans_k)
            : MakeThresholdOnlyCriterionFactories();
    if (options_.include_isotonic_criterion) {
      factories.push_back([] {
        return std::unique_ptr<DecisionCriterion>(
            std::make_unique<IsotonicCriterion>());
      });
    }

    std::vector<LabeledPair> labeled_pairs;
    labeled_pairs.reserve(train_pairs.size());
    for (const auto& [a, b] : train_pairs) {
      labeled_pairs.push_back({a, b, entity_labels[a] == entity_labels[b]});
    }

    for (const CriterionFactory& factory : factories) {
      if (Status fault = faults::MaybeFail("resolver.train"); !fault.ok()) {
        ++health.skipped_criteria;
        ++fault_skips;
        continue;
      }
      std::unique_ptr<DecisionCriterion> criterion = factory();
      if (Status fit = criterion->Fit(training, rng); !fit.ok()) {
        if (first_fit_error.ok()) first_fit_error = fit;
        ++health.skipped_criteria;
        continue;
      }
      // Rank decision graphs by cross-validated post-closure F1, not
      // in-sample pair accuracy: with up to 30 competing graphs, in-sample
      // ranking suffers a strong winner's curse, and raw pair accuracy is
      // swamped by the negative class.
      Result<double> graph_score =
          CvGraphScore(factory, sims, labeled_pairs, /*folds=*/3, rng,
                       options_.compiled_path);
      if (!graph_score.ok()) {
        if (first_fit_error.ok()) first_fit_error = graph_score.status();
        ++health.skipped_criteria;
        continue;
      }
      DecisionSource source;
      source.function_name = std::string(functions_[f]->name());
      source.criterion_name = criterion->name();
      source.train_accuracy = *graph_score;
      source.decisions = graph::DecisionGraph(n, 0, 1);
      source.link_probs = graph::SimilarityMatrix(n, 0.0, 1.0);
      const auto& values = sims.data();
      auto& dec = source.decisions.data();
      auto& probs = source.link_probs.data();
      CompiledDecision table;
      if (options_.compiled_path && criterion->Compile(&table)) {
        table.EvalBlock(values.data(), values.size(), dec.data(),
                        probs.data());
      } else {
        for (size_t k = 0; k < values.size(); ++k) {
          dec[k] = criterion->Decide(values[k]) ? 1 : 0;
          probs[k] = criterion->LinkProbability(values[k]);
        }
      }
      if (!pair_gated.empty()) {
        for (size_t k = 0; k < values.size(); ++k) {
          if (!pair_gated[k]) continue;
          dec[k] = 0;
          probs[k] = std::min(probs[k], 0.49);
        }
      }
      resolution.sources.push_back({source.function_name,
                                    source.criterion_name,
                                    source.train_accuracy,
                                    graph::CountEdges(source.decisions)});
      sources.push_back(std::move(source));
    }
  }

  decision_span.End();
  resolution.stage_ms.decision_ms = stage_timer.ElapsedMillis();
  stage_timer.Restart();

  bool used_fallback = false;
  if (sources.empty()) {
    // No usable decision graph. If fitting failed on otherwise healthy
    // inputs (no quarantine, no deadline/budget cut, no injected faults),
    // keep the strict contract and report the error.
    const bool degraded_cause = health.quarantined_functions > 0 ||
                                health.deadline_hits > 0 ||
                                health.budget_hits > 0 || fault_skips > 0;
    if (!first_fit_error.ok() && !degraded_cause) return first_fit_error;

    // Graceful degradation: plain-threshold baseline over the mean of the
    // computed (guarded, clamped) matrices; singletons when even that is
    // impossible. Never fail the block for a recoverable cause.
    used_fallback = true;
    // The whole fallback path (mean matrix + threshold + closure) counts
    // as clustering time: it substitutes for Steps 5-6.
    obs::ScopedSpan fallback_span(options_.trace, "pipeline.cluster");
    resolution.clustering = graph::Clustering::Singletons(n);
    resolution.chosen_source = "fallback/singletons";
    if (layout != nullptr && !train_pairs.empty()) {
      graph::SimilarityMatrix mean(n, 0.0, 1.0);
      int used = 0;
      for (size_t f = 0; f < matrices.size(); ++f) {
        if (!computed[f]) continue;
        const auto& values = matrices[f].data();
        auto& acc = mean.data();
        for (size_t k = 0; k < values.size(); ++k) acc[k] += values[k];
        ++used;
      }
      if (used > 0) {
        for (double& v : mean.data()) v /= used;
        std::vector<ml::LabeledSimilarity> training;
        training.reserve(train_pairs.size());
        for (const auto& [a, b] : train_pairs) {
          training.push_back(
              {mean.Get(a, b), entity_labels[a] == entity_labels[b]});
        }
        ThresholdCriterion threshold;
        if (threshold.Fit(training, rng).ok()) {
          graph::DecisionGraph decisions(n, 0, 1);
          const auto& values = mean.data();
          auto& dec = decisions.data();
          for (size_t k = 0; k < values.size(); ++k) {
            dec[k] = threshold.Decide(values[k]) ? 1 : 0;
            if (!pair_gated.empty() && pair_gated[k]) dec[k] = 0;
          }
          resolution.clustering = graph::TransitiveClosure(decisions);
          resolution.chosen_source = "fallback/threshold";
        }
      }
    }
    fallback_span.End();
    resolution.stage_ms.cluster_ms = stage_timer.ElapsedMillis();
  } else {
    // --- Step 5: combine. ---
    obs::ScopedSpan combine_span(options_.trace, "pipeline.combine");
    WEBER_ASSIGN_OR_RETURN(
        CombinedGraph combined,
        CombineDecisionGraphs(sources, training_offsets, options_.combination));
    resolution.chosen_source = combined.chosen_source;
    combine_span.End();
    resolution.stage_ms.combine_ms = stage_timer.ElapsedMillis();
    stage_timer.Restart();

    // --- Step 6: cluster. ---
    obs::ScopedSpan cluster_span(options_.trace, "pipeline.cluster");
    if (Status fault = faults::MaybeFail("clustering.run"); !fault.ok()) {
      // The robust default: transitive closure needs no parameters and
      // cannot fail, so a broken clustering backend degrades to the
      // paper's baseline clustering instead of failing the block.
      ++health.clustering_fallbacks;
      resolution.clustering = graph::TransitiveClosure(combined.decisions);
    } else {
      switch (options_.clustering) {
        case ClusteringAlgorithm::kTransitiveClosure:
          resolution.clustering = graph::TransitiveClosure(combined.decisions);
          break;
        case ClusteringAlgorithm::kCorrelationClustering: {
          graph::CorrelationClusteringOptions cc = options_.correlation_options;
          cc.seed = rng->NextUint64();
          resolution.clustering =
              graph::CorrelationClustering(combined.link_probs, cc);
          break;
        }
        case ClusteringAlgorithm::kAgglomerative:
          resolution.clustering = graph::AgglomerativeClustering(
              combined.link_probs, options_.agglomerative_options);
          break;
      }
    }
    cluster_span.End();
    resolution.stage_ms.cluster_ms = stage_timer.ElapsedMillis();
  }

  if (used_fallback || health.deadline_hits > 0 || health.budget_hits > 0 ||
      health.clustering_fallbacks > 0) {
    health.degraded_blocks = 1;
  }
  return resolution;
}

}  // namespace core
}  // namespace weber

#include "core/baselines.h"

#include <algorithm>
#include <list>
#include <numeric>

#include "extract/url.h"
#include "graph/components.h"
#include "ml/threshold.h"

namespace weber {
namespace core {

namespace {

text::SparseVector SumVectors(const text::SparseVector& a,
                              const text::SparseVector& b) {
  std::vector<text::SparseVector::Entry> entries(a.entries());
  entries.insert(entries.end(), b.entries().begin(), b.entries().end());
  return text::SparseVector::FromPairs(std::move(entries));
}

/// Fits the match threshold from labeled training pairs under a given
/// pairwise score function.
template <typename ScoreFn>
Result<double> FitMatchThreshold(
    const std::vector<extract::FeatureBundle>& bundles,
    const std::vector<int>& entity_labels,
    const std::vector<std::pair<int, int>>& training_pairs, double margin,
    const ScoreFn& score) {
  if (training_pairs.empty()) {
    return Status::InvalidArgument("baseline: no training pairs");
  }
  std::vector<ml::LabeledSimilarity> labeled;
  labeled.reserve(training_pairs.size());
  for (const auto& [a, b] : training_pairs) {
    labeled.push_back(
        {score(bundles[a], bundles[b]), entity_labels[a] == entity_labels[b]});
  }
  WEBER_ASSIGN_OR_RETURN(ml::ThresholdFit fit, ml::FitOptimalThreshold(labeled));
  return std::min(1.0, fit.threshold + margin);
}

}  // namespace

extract::FeatureBundle MergeBundles(const extract::FeatureBundle& a,
                                    const extract::FeatureBundle& b) {
  extract::FeatureBundle merged;
  merged.weighted_concepts = SumVectors(a.weighted_concepts, b.weighted_concepts);
  merged.concepts = SumVectors(a.concepts, b.concepts);
  merged.organizations = SumVectors(a.organizations, b.organizations);
  merged.other_persons = SumVectors(a.other_persons, b.other_persons);
  // TF-IDF: average then renormalize so the merged profile stays on the
  // unit sphere the cosine measures expect.
  merged.tfidf = SumVectors(a.tfidf, b.tfidf);
  merged.tfidf.Scale(0.5);
  merged.tfidf = merged.tfidf.Normalized();
  merged.tfidf_dimension = std::max(a.tfidf_dimension, b.tfidf_dimension);
  // Names/URL: keep the richer side's values (non-empty wins, a wins ties).
  merged.most_frequent_name =
      !a.most_frequent_name.empty() ? a.most_frequent_name
                                    : b.most_frequent_name;
  merged.closest_name =
      !a.closest_name.empty() ? a.closest_name : b.closest_name;
  merged.url = !a.url.empty() ? a.url : b.url;
  merged.informativeness = std::max(a.informativeness, b.informativeness);
  return merged;
}

// ---------------------------------------------------------------------------
// SwooshResolver
// ---------------------------------------------------------------------------

Result<SwooshResolver> SwooshResolver::Create(BaselineOptions options) {
  WEBER_ASSIGN_OR_RETURN(auto functions, MakeFunctions(options.function_names));
  if (functions.empty()) {
    return Status::InvalidArgument("SwooshResolver: no functions");
  }
  return SwooshResolver(std::move(options), std::move(functions));
}

double SwooshResolver::MatchScore(const extract::FeatureBundle& a,
                                  const extract::FeatureBundle& b) const {
  double sum = 0.0;
  for (const auto& fn : functions_) sum += fn->Compute(a, b);
  return sum / static_cast<double>(functions_.size());
}

Result<graph::Clustering> SwooshResolver::Resolve(
    const std::vector<extract::FeatureBundle>& bundles,
    const std::vector<int>& entity_labels,
    const std::vector<std::pair<int, int>>& training_pairs,
    Rng* /*rng*/) const {
  const int n = static_cast<int>(bundles.size());
  if (n == 0) return Status::InvalidArgument("SwooshResolver: no documents");
  if (static_cast<int>(entity_labels.size()) != n) {
    return Status::InvalidArgument("SwooshResolver: label size mismatch");
  }
  if (n == 1) return graph::Clustering::Singletons(1);

  WEBER_ASSIGN_OR_RETURN(
      double threshold,
      FitMatchThreshold(bundles, entity_labels, training_pairs,
                        options_.threshold_margin,
                        [this](const extract::FeatureBundle& a,
                               const extract::FeatureBundle& b) {
                          return MatchScore(a, b);
                        }));

  // R-Swoosh: R holds unresolved records, Rp ("R prime") resolved ones.
  struct Record {
    extract::FeatureBundle profile;
    std::vector<int> members;
  };
  std::list<Record> pending;
  for (int i = 0; i < n; ++i) {
    pending.push_back({bundles[i], {i}});
  }
  std::list<Record> resolved;
  while (!pending.empty()) {
    Record current = std::move(pending.front());
    pending.pop_front();
    bool merged = false;
    for (auto it = resolved.begin(); it != resolved.end(); ++it) {
      if (MatchScore(current.profile, it->profile) >= threshold) {
        // Merge and requeue the combined record: merging can enable new
        // matches (the "merge closure").
        Record combined;
        combined.profile = MergeBundles(current.profile, it->profile);
        combined.members = std::move(current.members);
        combined.members.insert(combined.members.end(), it->members.begin(),
                                it->members.end());
        resolved.erase(it);
        pending.push_back(std::move(combined));
        merged = true;
        break;
      }
    }
    if (!merged) resolved.push_back(std::move(current));
  }

  std::vector<int> labels(n, 0);
  int cluster = 0;
  for (const Record& record : resolved) {
    for (int member : record.members) labels[member] = cluster;
    ++cluster;
  }
  return graph::Clustering::FromLabels(labels);
}

// ---------------------------------------------------------------------------
// SortedNeighborhoodResolver
// ---------------------------------------------------------------------------

Result<SortedNeighborhoodResolver> SortedNeighborhoodResolver::Create(
    SortedNeighborhoodOptions options) {
  if (options.window < 2) {
    return Status::InvalidArgument("SortedNeighborhood: window must be >= 2");
  }
  WEBER_ASSIGN_OR_RETURN(auto functions, MakeFunctions(options.function_names));
  if (functions.empty()) {
    return Status::InvalidArgument("SortedNeighborhood: no functions");
  }
  return SortedNeighborhoodResolver(std::move(options), std::move(functions));
}

double SortedNeighborhoodResolver::MatchScore(
    const extract::FeatureBundle& a, const extract::FeatureBundle& b) const {
  double sum = 0.0;
  for (const auto& fn : functions_) sum += fn->Compute(a, b);
  return sum / static_cast<double>(functions_.size());
}

Result<graph::Clustering> SortedNeighborhoodResolver::Resolve(
    const std::vector<extract::FeatureBundle>& bundles,
    const std::vector<int>& entity_labels,
    const std::vector<std::pair<int, int>>& training_pairs,
    Rng* /*rng*/) const {
  const int n = static_cast<int>(bundles.size());
  if (n == 0) {
    return Status::InvalidArgument("SortedNeighborhood: no documents");
  }
  if (static_cast<int>(entity_labels.size()) != n) {
    return Status::InvalidArgument("SortedNeighborhood: label size mismatch");
  }
  if (n == 1) return graph::Clustering::Singletons(1);

  WEBER_ASSIGN_OR_RETURN(
      double threshold,
      FitMatchThreshold(bundles, entity_labels, training_pairs,
                        options_.threshold_margin,
                        [this](const extract::FeatureBundle& a,
                               const extract::FeatureBundle& b) {
                          return MatchScore(a, b);
                        }));

  // Pass keys: dominant person name, then URL host (multi-pass SN).
  auto name_key = [&](int i) {
    return bundles[i].most_frequent_name.empty() ? bundles[i].closest_name
                                                 : bundles[i].most_frequent_name;
  };
  auto host_key = [&](int i) {
    auto parsed = extract::ParseUrl(bundles[i].url);
    return parsed.ok() ? parsed->host : bundles[i].url;
  };

  std::vector<std::pair<int, int>> links;
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      std::string ka = pass == 0 ? name_key(a) : host_key(a);
      std::string kb = pass == 0 ? name_key(b) : host_key(b);
      if (ka != kb) return ka < kb;
      return a < b;
    });
    for (int i = 0; i < n; ++i) {
      for (int d = 1; d < options_.window && i + d < n; ++d) {
        int a = order[i];
        int b = order[i + d];
        if (MatchScore(bundles[a], bundles[b]) >= threshold) {
          links.emplace_back(a, b);
        }
      }
    }
  }
  return graph::ConnectedComponents(n, links);
}

}  // namespace core
}  // namespace weber

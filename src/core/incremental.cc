#include "core/incremental.h"

#include <algorithm>

#include "common/timer.h"
#include "core/compiled_path.h"
#include "graph/components.h"
#include "ml/threshold.h"

namespace weber {
namespace core {

Result<IncrementalResolver> IncrementalResolver::Create(
    IncrementalOptions options) {
  WEBER_ASSIGN_OR_RETURN(auto functions, MakeFunctions(options.function_names));
  if (functions.empty()) {
    return Status::InvalidArgument("IncrementalResolver: no functions");
  }
  return IncrementalResolver(std::move(options), std::move(functions));
}

double IncrementalResolver::MatchScore(const extract::FeatureBundle& a,
                                       const extract::FeatureBundle& b) const {
  double sum = 0.0;
  for (const auto& fn : functions_) sum += fn->Compute(a, b);
  return sum / static_cast<double>(functions_.size());
}

double IncrementalResolver::MatchScoreIndexed(int a, int b) const {
  if (score_cache_ == nullptr) {
    return MatchScore(documents_[a], documents_[b]);
  }
  // Cache keys are unordered pairs; similarity functions are symmetric.
  const int lo = std::min(a, b), hi = std::max(a, b);
  double sum = 0.0;
  for (size_t f = 0; f < functions_.size(); ++f) {
    double value;
    if (!score_cache_->Lookup(static_cast<int>(f), lo, hi, &value)) {
      value = functions_[f]->Compute(documents_[lo], documents_[hi]);
      score_cache_->Insert(static_cast<int>(f), lo, hi, value);
    }
    sum += value;
  }
  return sum / static_cast<double>(functions_.size());
}

double IncrementalResolver::ClusterScore(int doc,
                                         const std::vector<int>& members) const {
  double best = 0.0, sum = 0.0;
  for (int member : members) {
    double score = MatchScoreIndexed(doc, member);
    best = std::max(best, score);
    sum += score;
  }
  if (members.empty()) return 0.0;
  return options_.assignment == IncrementalOptions::Assignment::kBestMax
             ? best
             : sum / static_cast<double>(members.size());
}

Status IncrementalResolver::CalibrateThreshold(
    const std::vector<extract::FeatureBundle>& bundles,
    const std::vector<int>& entity_labels,
    const std::vector<std::pair<int, int>>& training_pairs) {
  if (bundles.size() != entity_labels.size()) {
    return Status::InvalidArgument(
        "CalibrateThreshold: bundle/label size mismatch");
  }
  if (training_pairs.empty()) {
    return Status::InvalidArgument("CalibrateThreshold: no training pairs");
  }
  std::vector<ml::LabeledSimilarity> labeled;
  labeled.reserve(training_pairs.size());
  const int n = static_cast<int>(bundles.size());
  for (const auto& [a, b] : training_pairs) {
    if (a < 0 || b < 0 || a >= n || b >= n) {
      return Status::InvalidArgument("CalibrateThreshold: bad pair (", a, ", ",
                                     b, ")");
    }
    labeled.push_back({MatchScore(bundles[a], bundles[b]),
                       entity_labels[a] == entity_labels[b]});
  }
  WEBER_ASSIGN_OR_RETURN(ml::ThresholdFit fit, ml::FitOptimalThreshold(labeled));
  threshold_ = fit.threshold;
  calibrated_ = true;
  Reset();
  return Status::OK();
}

int IncrementalResolver::Add(extract::FeatureBundle bundle) {
  if (!calibrated_) return -1;
  const int doc = next_document_++;
  documents_.push_back(std::move(bundle));

  int best_cluster = -1;
  double best_score = threshold_;  // must reach the calibrated threshold
  for (size_t c = 0; c < clusters_.size(); ++c) {
    double score = ClusterScore(doc, clusters_[c]);
    if (score >= best_score) {
      best_score = score;
      best_cluster = static_cast<int>(c);
    }
  }
  if (best_cluster < 0) {
    clusters_.push_back({doc});
    return static_cast<int>(clusters_.size()) - 1;
  }
  clusters_[best_cluster].push_back(doc);
  return best_cluster;
}

Result<graph::Clustering> IncrementalResolver::BatchResolve(
    double deadline_ms) const {
  if (!calibrated_) {
    return Status::FailedPrecondition("BatchResolve: not calibrated");
  }
  const int n = next_document_;
  WallTimer timer;
  std::vector<std::pair<int, int>> edges;

  // Compiled hot path: with no cache to consult every pair is scored fresh,
  // so whole rows of the upper triangle can go through the batched kernels.
  // Accumulating the functions in declaration order per pair and dividing
  // once reproduces MatchScore's sum bit for bit (see compiled_path.h).
  if (options_.compiled_path && score_cache_ == nullptr && n >= 2) {
    BlockScorer scorer(&documents_);
    std::vector<BatchSpec> specs(functions_.size());
    std::vector<char> batchable(functions_.size(), 0);
    for (size_t f = 0; f < functions_.size(); ++f) {
      specs[f] = functions_[f]->batch_spec();
      batchable[f] = specs[f].batchable() && scorer.CanBatch(specs[f]) ? 1 : 0;
    }
    const double num_functions = static_cast<double>(functions_.size());
    std::vector<double> row(n), strip(n);
    for (int a = 0; a < n; ++a) {
      if (deadline_ms > 0.0 && timer.ElapsedMillis() > deadline_ms) {
        return Status::DeadlineExceeded("BatchResolve: deadline of ",
                                        deadline_ms, " ms hit after ", a,
                                        " of ", n, " rows");
      }
      const int width = n - a - 1;
      if (width <= 0) continue;
      std::fill(row.begin(), row.begin() + width, 0.0);
      for (size_t f = 0; f < functions_.size(); ++f) {
        if (batchable[f]) {
          scorer.ScoreStrip(specs[f], a, a + 1, n, strip.data());
          for (int k = 0; k < width; ++k) row[k] += strip[k];
        } else {
          for (int k = 0; k < width; ++k) {
            row[k] +=
                functions_[f]->Compute(documents_[a], documents_[a + 1 + k]);
          }
        }
      }
      for (int k = 0; k < width; ++k) {
        if (row[k] / num_functions >= threshold_) {
          edges.push_back({a, a + 1 + k});
        }
      }
    }
    return graph::ConnectedComponents(n, edges);
  }

  for (int a = 0; a < n; ++a) {
    // Cooperative deadline check once per row: cheap relative to the O(n)
    // scores the row costs, and a blown budget stops before the next row.
    if (deadline_ms > 0.0 && timer.ElapsedMillis() > deadline_ms) {
      return Status::DeadlineExceeded("BatchResolve: deadline of ",
                                      deadline_ms, " ms hit after ", a,
                                      " of ", n, " rows");
    }
    for (int b = a + 1; b < n; ++b) {
      if (MatchScoreIndexed(a, b) >= threshold_) edges.push_back({a, b});
    }
  }
  return graph::ConnectedComponents(n, edges);
}

Status IncrementalResolver::AdoptPartition(
    const std::vector<std::vector<int>>& clusters) {
  std::vector<char> seen(next_document_, 0);
  int covered = 0;
  for (const auto& members : clusters) {
    if (members.empty()) {
      return Status::InvalidArgument("AdoptPartition: empty cluster");
    }
    for (int doc : members) {
      if (doc < 0 || doc >= next_document_ || seen[doc]) {
        return Status::InvalidArgument("AdoptPartition: clusters must ",
                                       "partition the added documents (bad ",
                                       "or repeated index ", doc, ")");
      }
      seen[doc] = 1;
      ++covered;
    }
  }
  if (covered != next_document_) {
    return Status::InvalidArgument("AdoptPartition: ", covered, " of ",
                                   next_document_, " documents covered");
  }
  clusters_ = clusters;
  return Status::OK();
}

Status IncrementalResolver::Restore(
    std::vector<extract::FeatureBundle> documents,
    const std::vector<std::vector<int>>& clusters) {
  if (!calibrated_) {
    return Status::FailedPrecondition("Restore: not calibrated");
  }
  if (next_document_ != 0) {
    return Status::FailedPrecondition("Restore: resolver already holds ",
                                      next_document_, " documents");
  }
  documents_ = std::move(documents);
  next_document_ = static_cast<int>(documents_.size());
  if (Status st = AdoptPartition(clusters); !st.ok()) {
    Reset();
    return st;
  }
  return Status::OK();
}

graph::Clustering IncrementalResolver::CurrentClustering() const {
  std::vector<int> labels(next_document_, 0);
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (int doc : clusters_[c]) labels[doc] = static_cast<int>(c);
  }
  return graph::Clustering::FromLabels(labels);
}

void IncrementalResolver::Reset() {
  documents_.clear();
  clusters_.clear();
  next_document_ = 0;
}

}  // namespace core
}  // namespace weber

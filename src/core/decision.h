// Decision criteria D_j (Section IV-A): rules that turn a similarity value
// into a link decision, fitted on the block's training pairs. Two families:
// the plain optimal threshold, and region-accuracy models (equal-width or
// k-means regions).

#ifndef WEBER_CORE_DECISION_H_
#define WEBER_CORE_DECISION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "core/compiled_path.h"
#include "ml/isotonic.h"
#include "ml/region_model.h"
#include "ml/threshold.h"

namespace weber {
namespace core {

/// A fitted decision rule over similarity values.
class DecisionCriterion {
 public:
  virtual ~DecisionCriterion() = default;

  /// Identifier, e.g. "threshold", "regions-eq10", "regions-km8".
  virtual std::string name() const = 0;

  /// Fits the rule on labeled training similarities. Must be called before
  /// Decide / LinkProbability.
  virtual Status Fit(const std::vector<ml::LabeledSimilarity>& training,
                     Rng* rng) = 0;

  /// Link / no-link decision for a similarity value.
  virtual bool Decide(double value) const = 0;

  /// Estimated probability that a pair with this value is a true link; the
  /// edge weight used by the weighted-average combiner (Section IV-B).
  virtual double LinkProbability(double value) const = 0;

  /// Accuracy of this rule's decisions on the training set it was fitted
  /// on; the graph-ranking score used for best-graph selection.
  virtual double train_accuracy() const = 0;

  /// Flattens the fitted rule into a CompiledDecision whose Decide /
  /// LinkProbability are bit-identical to the virtual walk. Returns false
  /// when the rule has no compiled form (or is not fitted yet); callers
  /// then stay on the virtual path.
  virtual bool Compile(CompiledDecision* out) const {
    (void)out;
    return false;
  }
};

/// Plain optimal-threshold rule: link iff value >= t*, with t* maximizing
/// training accuracy. LinkProbability is the empirical link rate above /
/// below the threshold (a two-region accuracy model), so the combiner gets
/// calibrated weights rather than hard 0/1.
class ThresholdCriterion final : public DecisionCriterion {
 public:
  std::string name() const override { return "threshold"; }
  Status Fit(const std::vector<ml::LabeledSimilarity>& training,
             Rng* rng) override;
  bool Decide(double value) const override { return value >= fit_.threshold; }
  double LinkProbability(double value) const override {
    return value >= fit_.threshold ? link_rate_above_ : link_rate_below_;
  }
  double train_accuracy() const override { return fit_.train_accuracy; }
  bool Compile(CompiledDecision* out) const override;

  double threshold() const { return fit_.threshold; }

 private:
  ml::ThresholdFit fit_;
  bool fitted_ = false;
  double link_rate_above_ = 1.0;
  double link_rate_below_ = 0.0;
};

/// Region-accuracy rule (the paper's contribution): link iff the value's
/// region has link rate >= 0.5; LinkProbability is the region's link rate.
class RegionCriterion final : public DecisionCriterion {
 public:
  /// Equal-width construction with `bins` regions, or k-means construction
  /// with `k` clusters.
  static std::unique_ptr<RegionCriterion> EqualWidth(int bins);
  static std::unique_ptr<RegionCriterion> KMeans(int k);

  std::string name() const override { return name_; }
  Status Fit(const std::vector<ml::LabeledSimilarity>& training,
             Rng* rng) override;
  bool Decide(double value) const override { return model_->Decide(value); }
  double LinkProbability(double value) const override {
    return model_->LinkProbability(value);
  }
  double train_accuracy() const override { return train_accuracy_; }
  bool Compile(CompiledDecision* out) const override;

  /// The fitted model (valid after Fit); exposed for diagnostics and the
  /// Figure 1 benchmark.
  const ml::RegionAccuracyModel& model() const { return *model_; }

 private:
  RegionCriterion(ml::RegionScheme scheme, int param, std::string name)
      : scheme_(scheme), param_(param), name_(std::move(name)) {}

  ml::RegionScheme scheme_;
  int param_;
  std::string name_;
  std::unique_ptr<ml::RegionAccuracyModel> model_;
  double train_accuracy_ = 0.0;
};

/// Monotone-calibrated rule (extension): isotonic regression of the link
/// probability via pool-adjacent-violators. Strictly more expressive than
/// a threshold, strictly less than free regions — the middle rung of the
/// assumption ladder. Not part of the paper's configuration; used by the
/// region ablation to isolate how much of C's gain comes from
/// *non-monotone* structure.
class IsotonicCriterion final : public DecisionCriterion {
 public:
  std::string name() const override { return "isotonic"; }
  Status Fit(const std::vector<ml::LabeledSimilarity>& training,
             Rng* rng) override;
  bool Decide(double value) const override {
    return model_->LinkProbability(value) >= 0.5;
  }
  double LinkProbability(double value) const override {
    return model_->LinkProbability(value);
  }
  double train_accuracy() const override { return train_accuracy_; }
  bool Compile(CompiledDecision* out) const override;

 private:
  std::unique_ptr<ml::IsotonicModel> model_;
  double train_accuracy_ = 0.0;
};

/// The full criteria family used by the resolver: a plain threshold, an
/// equal-width region model, and a k-means region model.
std::vector<std::unique_ptr<DecisionCriterion>> MakeStandardCriteria(
    int equal_width_bins, int kmeans_k);

/// Threshold-only family (the paper's I columns).
std::vector<std::unique_ptr<DecisionCriterion>> MakeThresholdOnlyCriteria();

/// Factory producing fresh (unfitted) instances of one criterion; needed
/// for cross-validated accuracy estimation.
using CriterionFactory = std::function<std::unique_ptr<DecisionCriterion>()>;

std::vector<CriterionFactory> MakeStandardCriterionFactories(
    int equal_width_bins, int kmeans_k);
std::vector<CriterionFactory> MakeThresholdOnlyCriterionFactories();

/// K-fold cross-validated decision accuracy of a criterion family on a
/// labeled training sample. A fresh criterion is fitted on each fold
/// complement and scored on the held-out fold; the pooled accuracy is
/// returned. Ranking decision graphs by this estimate instead of in-sample
/// accuracy avoids the winner's curse when many graphs compete (the larger
/// the candidate set — C10 has 30 graphs — the more in-sample ranking
/// overfits). Falls back to in-sample accuracy when the sample is smaller
/// than 2 * folds. Returns InvalidArgument on an empty sample.
Result<double> CrossValidatedAccuracy(
    const CriterionFactory& factory,
    const std::vector<ml::LabeledSimilarity>& training, int folds, Rng* rng);

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_DECISION_H_

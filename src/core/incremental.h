// Incremental entity resolution: documents arrive one at a time and are
// assigned to an existing person cluster or open a new one — the
// "incremental clustering-based methods" family the paper's related work
// describes ([2] and the merge-based systems [5], [7]). Useful when a Web
// crawl streams in and re-running batch resolution per page is wasteful.

#ifndef WEBER_CORE_INCREMENTAL_H_
#define WEBER_CORE_INCREMENTAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/similarity_function.h"
#include "graph/clustering.h"

namespace weber {
namespace core {

/// Memo for per-function pair scores, keyed by the arrival indices of the
/// two documents within one resolver. Lets a serving layer (see
/// serve::SimilarityCache) share similarity work between the hot assignment
/// path and background batch re-resolution. Implementations must be
/// thread-safe when the resolver is driven from multiple threads.
class PairScoreCache {
 public:
  virtual ~PairScoreCache() = default;

  /// Returns true and fills `*value` when (function, a, b) is cached.
  virtual bool Lookup(int function_index, int a, int b, double* value) = 0;
  virtual void Insert(int function_index, int a, int b, double value) = 0;
};

struct IncrementalOptions {
  /// Functions averaged into the match score.
  std::vector<std::string> function_names = kSubsetI10;

  /// How a document is scored against an existing cluster.
  enum class Assignment : int {
    kBestMean = 0,  ///< mean score over cluster members (average linkage)
    kBestMax = 1,   ///< max score over cluster members (single linkage)
  };
  Assignment assignment = Assignment::kBestMean;

  /// Score BatchResolve's all-pairs pass through the compiled batch kernels
  /// (core/compiled_path.h). Bit-identical to the per-pair walk — a pure
  /// speed switch. Only taken when no PairScoreCache is installed: a cache
  /// must keep observing (and serving) every pair score, so cached
  /// resolvers stay on the interpreted path.
  bool compiled_path = true;
};

/// Streaming resolver. Calibrate the match threshold once on labeled pairs
/// (CalibrateThreshold), then feed documents in arrival order with Add.
///
///   auto r = IncrementalResolver::Create({});
///   r->CalibrateThreshold(bundles, labels, training_pairs);
///   for (const auto& page : stream) r->Add(page_bundle);
///   graph::Clustering now = r->CurrentClustering();
class IncrementalResolver {
 public:
  static Result<IncrementalResolver> Create(IncrementalOptions options);

  /// Fits the match threshold from labeled pairs (same evidence as Add
  /// uses). Must be called before the first Add. Resets streaming state.
  Status CalibrateThreshold(
      const std::vector<extract::FeatureBundle>& bundles,
      const std::vector<int>& entity_labels,
      const std::vector<std::pair<int, int>>& training_pairs);

  /// Adds one document; returns the cluster index it was assigned to
  /// (possibly a brand-new cluster). Must be calibrated first; returns -1
  /// and logs nothing if not (check calibrated()).
  int Add(extract::FeatureBundle bundle);

  /// The partition of all documents Added so far, in arrival order.
  graph::Clustering CurrentClustering() const;

  /// Full batch re-resolution of every document Added so far: links every
  /// pair whose match score reaches the calibrated threshold and takes the
  /// transitive closure (the paper's default clustering step). Unlike the
  /// greedy Add path, the result is invariant to arrival order, which is
  /// what makes it a fixed point for concurrent serving: any interleaving
  /// of the same document set batch-resolves to the same partition.
  ///
  /// `deadline_ms` is a soft wall-clock budget with the same semantics as
  /// ResolverOptions::deadline_ms: checked cooperatively between pair-score
  /// rows, and on expiry the call returns DeadlineExceeded instead of a
  /// partial partition (a batch result is only useful whole). 0 disables.
  Result<graph::Clustering> BatchResolve(double deadline_ms = 0.0) const;

  /// Replaces the current partition with an externally computed one (e.g.
  /// the published result of BatchResolve) over the same documents. The
  /// clusters must partition exactly the arrival indices [0, num_documents).
  Status AdoptPartition(const std::vector<std::vector<int>>& clusters);

  /// Rebuilds streaming state from durable storage: installs `documents` as
  /// the arrival history and adopts `clusters` (indices into `documents`)
  /// as their partition. Requires a calibrated resolver with no documents;
  /// on failure the resolver is left empty.
  Status Restore(std::vector<extract::FeatureBundle> documents,
                 const std::vector<std::vector<int>>& clusters);

  /// Installs a pair-score memo consulted (and filled) by every indexed
  /// match-score computation. Not owned; pass nullptr to detach. The cache
  /// keys are arrival indices, so it must be cleared or swapped when the
  /// resolver is Reset.
  void set_score_cache(PairScoreCache* cache) { score_cache_ = cache; }

  /// Document indices (arrival order) per cluster.
  const std::vector<std::vector<int>>& clusters() const { return clusters_; }

  int num_documents() const { return next_document_; }
  bool calibrated() const { return calibrated_; }
  double threshold() const { return threshold_; }

  /// Clears streaming state but keeps the calibrated threshold.
  void Reset();

 private:
  explicit IncrementalResolver(
      IncrementalOptions options,
      std::vector<std::unique_ptr<SimilarityFunction>> functions)
      : options_(std::move(options)), functions_(std::move(functions)) {}

  double MatchScore(const extract::FeatureBundle& a,
                    const extract::FeatureBundle& b) const;
  double MatchScoreIndexed(int a, int b) const;
  double ClusterScore(int doc, const std::vector<int>& members) const;

  IncrementalOptions options_;
  std::vector<std::unique_ptr<SimilarityFunction>> functions_;
  PairScoreCache* score_cache_ = nullptr;
  double threshold_ = 0.5;
  bool calibrated_ = false;

  std::vector<extract::FeatureBundle> documents_;  // arrival order
  std::vector<std::vector<int>> clusters_;
  int next_document_ = 0;
};

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_INCREMENTAL_H_

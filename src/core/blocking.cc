#include "core/blocking.h"

#include "common/string_util.h"

namespace weber {
namespace core {

namespace {

bool ContainsWholeWord(const std::string& haystack_lower,
                       const std::string& needle_lower) {
  auto is_word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
  };
  size_t pos = 0;
  while ((pos = haystack_lower.find(needle_lower, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_word(haystack_lower[pos - 1]);
    size_t end = pos + needle_lower.size();
    bool right_ok = end >= haystack_lower.size() || !is_word(haystack_lower[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

}  // namespace

Result<std::vector<corpus::Block>> BlockByQueryNames(
    const std::vector<corpus::Document>& documents,
    const std::vector<std::string>& queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("BlockByQueryNames: no queries");
  }
  std::vector<corpus::Block> blocks(queries.size());
  std::vector<std::string> queries_lower(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    blocks[q].query = ToLowerAscii(queries[q]);
    queries_lower[q] = blocks[q].query;
  }
  for (const corpus::Document& doc : documents) {
    const std::string text_lower = ToLowerAscii(doc.text);
    for (size_t q = 0; q < queries.size(); ++q) {
      if (ContainsWholeWord(text_lower, queries_lower[q])) {
        blocks[q].documents.push_back(doc);
        blocks[q].entity_labels.push_back(-1);
      }
    }
  }
  return blocks;
}

}  // namespace core
}  // namespace weber

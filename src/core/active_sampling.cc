#include "core/active_sampling.h"

#include <algorithm>
#include <cmath>

namespace weber {
namespace core {

namespace {

/// Per-function preliminary vote: similarity above the function's own
/// median pair value counts as a provisional "link" vote. The median is a
/// label-free stand-in for the fitted threshold.
std::vector<double> MedianPerFunction(
    const std::vector<graph::SimilarityMatrix>& matrices) {
  std::vector<double> medians;
  medians.reserve(matrices.size());
  for (const auto& m : matrices) {
    std::vector<double> values = m.data();
    if (values.empty()) {
      medians.push_back(0.5);
      continue;
    }
    size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    medians.push_back(values[mid]);
  }
  return medians;
}

}  // namespace

Result<std::vector<std::pair<int, int>>> SelectTrainingPairs(
    const std::vector<graph::SimilarityMatrix>& matrices, int budget,
    Rng* rng, const ActiveSamplingOptions& options) {
  if (matrices.empty()) {
    return Status::InvalidArgument("SelectTrainingPairs: no matrices");
  }
  const int n = matrices.front().size();
  for (const auto& m : matrices) {
    if (m.size() != n) {
      return Status::InvalidArgument("SelectTrainingPairs: size mismatch");
    }
  }
  if (budget < 1) {
    return Status::InvalidArgument("SelectTrainingPairs: budget must be >= 1");
  }
  const size_t num_pairs = matrices.front().num_pairs();
  if (num_pairs == 0) return std::vector<std::pair<int, int>>{};
  budget = std::min<int>(budget, static_cast<int>(num_pairs));

  // Uncertainty score per pair offset.
  std::vector<double> score(num_pairs, 0.0);
  if (options.strategy == ActiveStrategy::kQueryByCommittee) {
    const std::vector<double> medians = MedianPerFunction(matrices);
    std::vector<int> votes(num_pairs, 0);
    for (size_t f = 0; f < matrices.size(); ++f) {
      const auto& values = matrices[f].data();
      for (size_t k = 0; k < num_pairs; ++k) {
        votes[k] += values[k] > medians[f] ? 1 : 0;
      }
    }
    // Disagreement is maximal when half the committee votes "link".
    const double half = static_cast<double>(matrices.size()) / 2.0;
    for (size_t k = 0; k < num_pairs; ++k) {
      score[k] = half - std::fabs(votes[k] - half);
    }
  } else {
    // Margin sampling on the mean similarity: closest to the global median
    // is most ambiguous.
    std::vector<double> mean(num_pairs, 0.0);
    for (const auto& m : matrices) {
      const auto& values = m.data();
      for (size_t k = 0; k < num_pairs; ++k) mean[k] += values[k];
    }
    for (double& v : mean) v /= static_cast<double>(matrices.size());
    std::vector<double> sorted = mean;
    size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
    const double median = sorted[mid];
    for (size_t k = 0; k < num_pairs; ++k) {
      score[k] = -std::fabs(mean[k] - median);
    }
  }

  // Exploration quota: random pairs first, then the most uncertain rest.
  const int explore = std::min(
      budget,
      static_cast<int>(std::lround(options.exploration_fraction * budget)));
  std::vector<char> taken(num_pairs, 0);
  std::vector<size_t> chosen;
  chosen.reserve(budget);
  for (int idx : rng->SampleWithoutReplacement(static_cast<int>(num_pairs),
                                               explore)) {
    taken[idx] = 1;
    chosen.push_back(static_cast<size_t>(idx));
  }
  std::vector<size_t> order(num_pairs);
  for (size_t k = 0; k < num_pairs; ++k) order[k] = k;
  // Shuffle before the stable ranking so ties break randomly.
  rng->Shuffle(&order);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return score[a] > score[b]; });
  for (size_t k = 0; k < num_pairs && static_cast<int>(chosen.size()) < budget;
       ++k) {
    if (!taken[order[k]]) {
      taken[order[k]] = 1;
      chosen.push_back(order[k]);
    }
  }

  // Decode offsets back to (i, j) using the canonical upper-triangle
  // layout.
  const graph::SimilarityMatrix& layout = matrices.front();
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(chosen.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (taken[layout.Index(i, j)]) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

}  // namespace core
}  // namespace weber

// GuardedSimilarityFunction: runtime enforcement of the SimilarityFunction
// contract (symmetric, finite, in [0,1] — similarity_function.h).
//
// The paper's Algorithm 1 assumes well-behaved f_i; in production a single
// buggy or numerically unstable function (NaN from a 0/0 cosine, an
// unnormalized overlap count, an asymmetric heuristic) must not poison the
// whole block. The guard decorates a function and
//
//   * clamps non-finite and out-of-range values into [0,1] (NaN -> 0),
//   * spot-checks symmetry every Nth call by evaluating the reversed pair,
//   * counts violations per kind, and
//   * quarantines the function once violations reach a threshold; the
//     resolver then drops its decision graphs and continues with the
//     remaining functions.
//
// The guard also hosts the `similarity.compute` fault point, so chaos tests
// can inject NaN/Inf/out-of-range values between the inner function and the
// contract check.
//
// Guards accumulate state in Compute() and are therefore NOT thread-safe:
// create one set of guards per resolve call (EntityResolver does this), not
// one shared set per process.

#ifndef WEBER_CORE_GUARDED_FUNCTION_H_
#define WEBER_CORE_GUARDED_FUNCTION_H_

#include <string>

#include "core/similarity_function.h"

namespace weber {
namespace core {

struct GuardOptions {
  /// Violations (of any kind) after which the function is quarantined.
  /// 0 disables quarantine (violations are still clamped and counted).
  int quarantine_threshold = 8;
  /// Every Nth Compute() also evaluates the reversed pair and compares.
  /// 0 disables the spot-check. The check is pure recomputation — it draws
  /// no randomness and never alters the returned value, so enabling it
  /// cannot perturb resolution results.
  int symmetry_check_interval = 64;
  /// Maximum |Compute(a,b) - Compute(b,a)| before the pair counts as an
  /// asymmetry violation.
  double symmetry_tolerance = 1e-9;
};

struct ViolationCounters {
  long long non_finite = 0;    ///< NaN or ±Inf results
  long long out_of_range = 0;  ///< finite but outside [0,1]
  long long asymmetry = 0;     ///< failed symmetry spot-checks

  long long total() const { return non_finite + out_of_range + asymmetry; }
};

/// Contract-enforcing decorator. Does not own the inner function.
class GuardedSimilarityFunction final : public SimilarityFunction {
 public:
  GuardedSimilarityFunction(const SimilarityFunction* inner,
                            GuardOptions options)
      : inner_(inner), options_(options) {}

  std::string_view name() const override { return inner_->name(); }
  std::string_view description() const override {
    return inner_->description();
  }

  /// The inner value, validated and clamped into [0,1]. Keeps computing
  /// (and clamping) after quarantine so an already-running matrix pass
  /// stays well-defined; callers decide what to do with a quarantined
  /// function's output.
  double Compute(const extract::FeatureBundle& a,
                 const extract::FeatureBundle& b) const override;

  bool quarantined() const { return quarantined_; }
  const ViolationCounters& violations() const { return counters_; }
  long long calls() const { return calls_; }

 private:
  const SimilarityFunction* inner_;
  GuardOptions options_;
  mutable ViolationCounters counters_;
  mutable long long calls_ = 0;
  mutable bool quarantined_ = false;
};

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_GUARDED_FUNCTION_H_

// SimilarityFunction: the pairwise page-similarity abstraction of Section
// III. A similarity function maps two extracted page representations
// (FeatureBundles) to a value in [0, 1].

#ifndef WEBER_CORE_SIMILARITY_FUNCTION_H_
#define WEBER_CORE_SIMILARITY_FUNCTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "extract/feature_bundle.h"
#include "graph/pair_matrix.h"

namespace weber {
namespace core {

/// Declares that a similarity function is a standard sparse-vector measure
/// over one FeatureBundle field, so the compiled hot path (compiled_path.h)
/// may score it with the batched text kernels instead of per-pair Compute
/// calls. kNone means "no batch form; always call Compute".
struct BatchSpec {
  enum class Measure : int {
    kNone = 0,
    kCosine = 1,
    kSaturatingOverlap = 2,
    kPearson = 3,
    kExtendedJaccard = 4,
  };
  enum class Field : int {
    kWeightedConcepts = 0,
    kConcepts = 1,
    kOrganizations = 2,
    kOtherPersons = 3,
    kTfidf = 4,
  };

  Measure measure = Measure::kNone;
  Field field = Field::kTfidf;
  /// kSaturatingOverlap only: the damping constant.
  double damping = 0.0;

  bool batchable() const { return measure != Measure::kNone; }
};

/// Interface for pairwise similarity functions. Implementations must be
/// symmetric (Compute(a,b) == Compute(b,a)), return values in [0,1], and be
/// stateless/thread-compatible. They need NOT be transitive — the framework
/// exists precisely because they are not (Section III).
class SimilarityFunction {
 public:
  virtual ~SimilarityFunction() = default;

  /// Short identifier, e.g. "F3".
  virtual std::string_view name() const = 0;

  /// Human-readable description: feature + measure, as in Table I.
  virtual std::string_view description() const = 0;

  /// The similarity of two pages, in [0, 1].
  virtual double Compute(const extract::FeatureBundle& a,
                         const extract::FeatureBundle& b) const = 0;

  /// Batch form of this function, if any. A non-kNone spec promises that
  /// Compute(a, b) is EXACTLY the declared text-kernel measure applied to
  /// the declared field (the compiled path asserts bit-identical results in
  /// its equivalence tests). The default is "not batchable", which is
  /// always safe: the compiled path falls back to per-pair Compute.
  virtual BatchSpec batch_spec() const { return BatchSpec{}; }
};

/// Computes the complete weighted graph G_w^{f} of one block (Section IV-C):
/// the dense matrix of pairwise similarities under one function.
graph::SimilarityMatrix ComputeSimilarityMatrix(
    const SimilarityFunction& fn,
    const std::vector<extract::FeatureBundle>& bundles);

/// The ten standard functions of Table I, in order F1..F10.
std::vector<std::unique_ptr<SimilarityFunction>> MakeStandardFunctions();

/// A subset of the standard functions selected by name ("F1".."F10").
/// Returns NotFound for an unknown name.
Result<std::vector<std::unique_ptr<SimilarityFunction>>> MakeFunctions(
    const std::vector<std::string>& names);

/// The paper's Table II subsets.
extern const std::vector<std::string> kSubsetI4;   // {F4, F5, F7, F9}
extern const std::vector<std::string> kSubsetI7;   // {F3,F4,F5,F7,F8,F9,F10}
extern const std::vector<std::string> kSubsetI10;  // {F1..F10}

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_SIMILARITY_FUNCTION_H_

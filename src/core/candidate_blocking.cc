#include "core/candidate_blocking.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace weber {
namespace core {

Result<CandidateBlockingResult> GenerateCandidatePairs(
    const std::vector<std::string>& documents,
    const CandidateBlockingOptions& options) {
  if (documents.empty()) {
    return Status::InvalidArgument("GenerateCandidatePairs: no documents");
  }
  if (options.min_shared_terms < 1) {
    return Status::InvalidArgument(
        "GenerateCandidatePairs: min_shared_terms must be >= 1");
  }
  const int n = static_cast<int>(documents.size());

  // Postings of distinct terms per document.
  text::Analyzer analyzer(options.analyzer);
  std::unordered_map<std::string, std::vector<int>> postings;
  for (int d = 0; d < n; ++d) {
    std::unordered_set<std::string> seen;
    for (auto& term : analyzer.Analyze(documents[d])) {
      if (seen.insert(term).second) postings[term].push_back(d);
    }
  }

  const int df_cap = std::min(
      options.max_term_doc_freq,
      std::max(1, static_cast<int>(options.max_term_doc_fraction * n)));

  CandidateBlockingResult result;
  std::map<std::pair<int, int>, int> shared_counts;
  for (const auto& [term, docs] : postings) {
    if (static_cast<int>(docs.size()) < 2 ||
        static_cast<int>(docs.size()) > df_cap) {
      continue;
    }
    ++result.blocking_terms;
    for (size_t a = 0; a < docs.size(); ++a) {
      for (size_t b = a + 1; b < docs.size(); ++b) {
        shared_counts[{docs[a], docs[b]}] += 1;
      }
    }
  }
  for (const auto& [pair, count] : shared_counts) {
    if (count >= options.min_shared_terms) result.pairs.push_back(pair);
  }
  const double total = static_cast<double>(n) * (n - 1) / 2.0;
  result.pair_fraction =
      total > 0 ? static_cast<double>(result.pairs.size()) / total : 0.0;
  return result;
}

double BlockingRecall(const std::vector<std::pair<int, int>>& candidates,
                      const std::vector<int>& entity_labels) {
  long long true_pairs = 0;
  const int n = static_cast<int>(entity_labels.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (entity_labels[i] == entity_labels[j]) ++true_pairs;
    }
  }
  if (true_pairs == 0) return 1.0;
  long long covered = 0;
  for (const auto& [a, b] : candidates) {
    if (a >= 0 && b >= 0 && a < n && b < n &&
        entity_labels[a] == entity_labels[b]) {
      ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(true_pairs);
}

}  // namespace core
}  // namespace weber

// Combination of multiple decision graphs (Section IV-B). Each (similarity
// function, decision criterion) pair yields one decision graph G_{D_j}
// with per-edge link-probability weights; the combiner merges them into the
// single graph G_combined.

#ifndef WEBER_CORE_COMBINER_H_
#define WEBER_CORE_COMBINER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/components.h"
#include "graph/pair_matrix.h"

namespace weber {
namespace core {

/// One decision graph: the output of applying one criterion to one
/// function's similarity matrix.
struct DecisionSource {
  std::string function_name;   ///< e.g. "F3"
  std::string criterion_name;  ///< e.g. "regions-km8"
  graph::DecisionGraph decisions;      ///< link / no-link per pair
  graph::SimilarityMatrix link_probs;  ///< estimated P(link) per pair
  /// Estimated decision accuracy on the training pairs.
  double train_accuracy = 0.0;
};

/// How to merge the decision graphs.
enum class CombinationStrategy : int {
  /// Choose the source with the best estimated training accuracy ("a very
  /// simple method ... chose the best one as G_combined. Interestingly,
  /// this combination technique performed the best", Section IV-B). Used by
  /// the paper's I*/C* columns.
  kBestGraph = 0,
  /// Per-pair weighted average of link probabilities, thresholded at a
  /// value learned from the training pairs (the paper's W column).
  kWeightedAverage = 1,
  /// Simple majority vote of the per-source decisions (extra baseline from
  /// the classifier-fusion literature the paper cites).
  kMajorityVote = 2,
};

std::string CombinationStrategyToString(CombinationStrategy s);

/// A labeled training pair: document indices, PairMatrix offset, label.
struct TrainingPair {
  int a = 0;
  int b = 0;
  size_t pair_offset = 0;
  bool link = false;
};

/// The merged graph.
struct CombinedGraph {
  graph::DecisionGraph decisions;
  /// Per-pair combined link probability (drives correlation clustering).
  graph::SimilarityMatrix link_probs;
  /// For kBestGraph: which source won ("F3/regions-km8").
  std::string chosen_source;
  /// For kWeightedAverage: the learned combination threshold.
  double threshold = 0.5;
};

/// Merges sources with the requested strategy. `training` is needed by
/// kWeightedAverage (to learn the combination threshold) and ignored
/// otherwise. Returns InvalidArgument when `sources` is empty or their
/// sizes disagree.
Result<CombinedGraph> CombineDecisionGraphs(
    const std::vector<DecisionSource>& sources,
    const std::vector<TrainingPair>& training, CombinationStrategy strategy);

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_COMBINER_H_

// RunHealth: diagnostics counters describing how much a resolution run had
// to degrade to complete. All-zero means the run was pristine; nonzero
// fields record recovered faults (clamped similarity values, quarantined
// functions, skipped criteria, deadline/budget cuts, corrupt blocks skipped
// by lenient loading, retried loads). Threaded through BlockResolution and
// ExperimentResult and serialized into the experiment JSON so operators can
// alert on degradation instead of discovering it in the output quality.

#ifndef WEBER_CORE_RUN_HEALTH_H_
#define WEBER_CORE_RUN_HEALTH_H_

#include "common/json_writer.h"

namespace weber {
namespace core {

struct RunHealth {
  /// Similarity values clamped by the guard (NaN / ±Inf / outside [0,1]).
  long long value_violations = 0;
  /// Symmetry spot-checks that found Compute(a,b) != Compute(b,a).
  long long asymmetry_violations = 0;
  /// Similarity functions quarantined after repeated contract violations.
  long long quarantined_functions = 0;
  /// Decision-criterion fits skipped because fitting failed.
  long long skipped_criteria = 0;
  /// Blocks whose result is partial: deadline/budget hit, all functions
  /// quarantined (threshold fallback), or clustering fallback.
  long long degraded_blocks = 0;
  /// Blocks that hit ResolverOptions::deadline_ms.
  long long deadline_hits = 0;
  /// Blocks that hit ResolverOptions::max_pair_budget.
  long long budget_hits = 0;
  /// Pairwise similarity evaluations skipped by deadline/budget cuts.
  long long skipped_pairs = 0;
  /// Configured clustering algorithm failed; fell back to transitive
  /// closure.
  long long clustering_fallbacks = 0;
  /// Dataset load attempts retried on transient I/O errors.
  long long retried_loads = 0;
  /// Corrupt blocks skipped by lenient dataset loading.
  long long skipped_blocks = 0;
  /// Write-ahead logs whose tail ended mid-record (crash during append);
  /// the torn suffix was truncated away on recovery.
  long long torn_wal_tails = 0;
  /// WAL records that failed their checksum; replay stopped at the last
  /// valid prefix of that log.
  long long corrupt_wal_records = 0;
  /// Snapshot files that failed validation (recovery fell back to an older
  /// snapshot or to WAL-only replay), plus published-but-missing snapshots
  /// detected during replay.
  long long corrupt_snapshots = 0;
  /// Pearson similarity calls whose ambient dimension was smaller than the
  /// pair's union size; the dimension was corrected up to the union so the
  /// mean/variance stay well-defined (vector_similarity.h).
  long long dimension_corrections = 0;

  long long TotalViolations() const {
    return value_violations + asymmetry_violations;
  }

  bool AnyDegradation() const {
    return TotalViolations() + quarantined_functions + skipped_criteria +
               degraded_blocks + deadline_hits + budget_hits + skipped_pairs +
               clustering_fallbacks + retried_loads + skipped_blocks +
               torn_wal_tails + corrupt_wal_records + corrupt_snapshots +
               dimension_corrections >
           0;
  }

  void Merge(const RunHealth& other) {
    value_violations += other.value_violations;
    asymmetry_violations += other.asymmetry_violations;
    quarantined_functions += other.quarantined_functions;
    skipped_criteria += other.skipped_criteria;
    degraded_blocks += other.degraded_blocks;
    deadline_hits += other.deadline_hits;
    budget_hits += other.budget_hits;
    skipped_pairs += other.skipped_pairs;
    clustering_fallbacks += other.clustering_fallbacks;
    retried_loads += other.retried_loads;
    skipped_blocks += other.skipped_blocks;
    torn_wal_tails += other.torn_wal_tails;
    corrupt_wal_records += other.corrupt_wal_records;
    corrupt_snapshots += other.corrupt_snapshots;
    dimension_corrections += other.dimension_corrections;
  }
};

/// Serializes the counters as one JSON object — the canonical "health"
/// shape shared by the experiment JSON and the serving stats export.
inline void WriteRunHealthJson(JsonWriter& json, const RunHealth& health) {
  json.BeginObject();
  json.Key("value_violations").Number(health.value_violations);
  json.Key("asymmetry_violations").Number(health.asymmetry_violations);
  json.Key("quarantined_functions").Number(health.quarantined_functions);
  json.Key("skipped_criteria").Number(health.skipped_criteria);
  json.Key("degraded_blocks").Number(health.degraded_blocks);
  json.Key("deadline_hits").Number(health.deadline_hits);
  json.Key("budget_hits").Number(health.budget_hits);
  json.Key("skipped_pairs").Number(health.skipped_pairs);
  json.Key("clustering_fallbacks").Number(health.clustering_fallbacks);
  json.Key("retried_loads").Number(health.retried_loads);
  json.Key("skipped_blocks").Number(health.skipped_blocks);
  json.Key("torn_wal_tails").Number(health.torn_wal_tails);
  json.Key("corrupt_wal_records").Number(health.corrupt_wal_records);
  json.Key("corrupt_snapshots").Number(health.corrupt_snapshots);
  json.Key("dimension_corrections").Number(health.dimension_corrections);
  json.EndObject();
}

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_RUN_HEALTH_H_

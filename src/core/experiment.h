// ExperimentRunner: the paper's evaluation protocol (Section V-A2) — for
// each configuration, resolve every block over R independent runs (each run
// re-samples the 10% training documents) and report averaged metrics.
//
// Feature extraction and the training-document samples are shared across
// configurations so that columns of the same table (I4 vs C4 vs W, ...) are
// compared on identical inputs and splits.

#ifndef WEBER_CORE_EXPERIMENT_H_
#define WEBER_CORE_EXPERIMENT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/resolver.h"
#include "corpus/document.h"
#include "eval/metrics.h"
#include "extract/gazetteer.h"

namespace weber {
namespace core {

/// One table column: a label plus resolver configuration.
struct ExperimentConfig {
  std::string label;
  ResolverOptions options;
};

/// Averaged results of one configuration.
struct ExperimentResult {
  std::string label;
  /// Mean over blocks of the per-block run-averages (macro average).
  eval::MetricReport overall;
  /// Per-block run-averaged reports, aligned with the dataset's blocks.
  std::vector<eval::MetricReport> per_block;
  /// Summed degradation counters over every (run, block) resolution of this
  /// configuration; all-zero for a clean run. Serialized into the
  /// experiment JSON.
  RunHealth health;
  /// Per-stage wall-clock totals summed over every (run, block) resolution.
  /// `blocking_ms` is the shared Prepare() extraction cost (identical across
  /// configurations, since extraction is shared). Serialized as "stage_ms".
  StageTimings stage_ms;
};

/// Shares extraction and training splits across configurations.
class ExperimentRunner {
 public:
  /// The dataset and gazetteer must outlive the runner.
  ExperimentRunner(const corpus::Dataset* dataset,
                   const extract::Gazetteer* gazetteer, int num_runs,
                   uint64_t seed)
      : dataset_(dataset),
        gazetteer_(gazetteer),
        num_runs_(num_runs),
        seed_(seed) {}

  /// Extracts features for every block and fixes the per-(run, block)
  /// training pair samples. Must be called before Run. When `trace` is set,
  /// the extraction/blocking work is recorded as one "pipeline.blocking"
  /// span; its wall-clock cost is always kept and reported via
  /// `ExperimentResult::stage_ms.blocking_ms`.
  Status Prepare(const extract::FeatureExtractorOptions& extractor_options = {},
                 double train_fraction = 0.10, int min_train_pairs = 10,
                 obs::TraceCollector* trace = nullptr);

  /// Evaluates one configuration. The configuration's own train_fraction /
  /// extractor settings are ignored in favour of the shared Prepare state.
  Result<ExperimentResult> Run(const ExperimentConfig& config) const;

  /// Evaluates several configurations (table columns) in one call.
  Result<std::vector<ExperimentResult>> RunAll(
      const std::vector<ExperimentConfig>& configs) const;

  /// As RunAll, but resolves different configurations on worker threads
  /// (block-level work inside a configuration stays single-threaded, so
  /// results are bit-identical to RunAll).
  Result<std::vector<ExperimentResult>> RunAllParallel(
      const std::vector<ExperimentConfig>& configs, int num_threads) const;

  int num_runs() const { return num_runs_; }
  bool prepared() const { return prepared_; }

 private:
  const corpus::Dataset* dataset_;
  const extract::Gazetteer* gazetteer_;
  int num_runs_;
  uint64_t seed_;

  bool prepared_ = false;
  /// Wall-clock cost of the Prepare() extraction loop, copied into every
  /// configuration's result as stage_ms.blocking_ms.
  double blocking_ms_ = 0.0;
  std::vector<std::vector<extract::FeatureBundle>> block_bundles_;
  /// training_pairs_[run][block] = sampled labeled training pairs.
  std::vector<std::vector<std::vector<std::pair<int, int>>>> training_pairs_;
};

/// Serializes experiment results as JSON:
///   {"dataset": "...", "runs": R, "configs": [{"label": "...",
///    "overall": {...}, "per_block": [{"name": "...", "fp": ...}, ...]}]}
/// for downstream plotting/analysis.
Status WriteExperimentJson(const corpus::Dataset& dataset, int num_runs,
                           const std::vector<ExperimentResult>& results,
                           std::ostream& os);

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_EXPERIMENT_H_

#include "core/compiled_path.h"

#include <cassert>

namespace weber {
namespace core {

void CompiledDecision::EvalBlock(const double* values, size_t count,
                                 char* decisions, double* link_probs) const {
  for (size_t k = 0; k < count; ++k) {
    const int r = RegionOf(values[k]);
    if (decisions != nullptr) {
      decisions[k] =
          (decide_region >= 0 ? r >= decide_region : probs[r] >= 0.5) ? 1 : 0;
    }
    if (link_probs != nullptr) link_probs[k] = probs[r];
  }
}

CompiledCombineWeights BakeCombineWeights(
    const std::vector<double>& train_accuracies) {
  CompiledCombineWeights baked;
  baked.weights.reserve(train_accuracies.size());
  double best_score = 0.0;
  for (double acc : train_accuracies) best_score = std::max(best_score, acc);
  double total_weight = 0.0;
  for (double acc : train_accuracies) {
    const double rel = best_score > 0.0 ? acc / best_score : 1.0;
    const double w = rel * rel * rel * rel + 0.01;
    total_weight += w;
    baked.weights.push_back(w);
  }
  baked.inv_total = total_weight > 0.0 ? 1.0 / total_weight : 0.0;
  return baked;
}

void FusedWeightedAverage(const std::vector<const double*>& source_probs,
                          const CompiledCombineWeights& baked,
                          size_t num_pairs, double* out) {
  assert(source_probs.size() == baked.weights.size());
  const size_t num_sources = source_probs.size();
  for (size_t k = 0; k < num_pairs; ++k) {
    // Accumulate in source order, then normalize: the same per-pair
    // addition sequence as the interpreted source-major double loop.
    double acc = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      acc += baked.weights[s] * source_probs[s][k];
    }
    out[k] = acc * baked.inv_total;
  }
}

BlockScorer::BlockScorer(const std::vector<extract::FeatureBundle>* bundles)
    : bundles_(bundles) {
  assert(bundles != nullptr);
}

BlockScorer::Field& BlockScorer::GetField(BatchSpec::Field field) {
  Field& f = fields_[static_cast<int>(field)];
  if (f.ready) return f;
  std::vector<const text::SparseVector*> vectors;
  vectors.reserve(bundles_->size());
  for (const extract::FeatureBundle& b : *bundles_) {
    switch (field) {
      case BatchSpec::Field::kWeightedConcepts:
        vectors.push_back(&b.weighted_concepts);
        break;
      case BatchSpec::Field::kConcepts:
        vectors.push_back(&b.concepts);
        break;
      case BatchSpec::Field::kOrganizations:
        vectors.push_back(&b.organizations);
        break;
      case BatchSpec::Field::kOtherPersons:
        vectors.push_back(&b.other_persons);
        break;
      case BatchSpec::Field::kTfidf:
        vectors.push_back(&b.tfidf);
        break;
    }
  }
  f.frozen = text::FrozenVectors::Freeze(vectors);
  f.scorer = std::make_unique<text::BatchScorer>(&f.frozen);
  f.ready = true;
  return f;
}

bool BlockScorer::CanBatch(const BatchSpec& spec) {
  if (!spec.batchable()) return false;
  if (spec.measure != BatchSpec::Measure::kPearson) return true;

  if (pearson_state_ == 0) {
    // Pearson batches only when the interpreted per-pair ambient dimension
    // max(a.dim, b.dim, union(a, b)) is the same constant D for every pair:
    // all bundles must share one tfidf_dimension D >= 2 that strictly
    // bounds every term id (then union <= max_id + 1 <= D for all pairs).
    pearson_state_ = -1;
    if (!bundles_->empty()) {
      const int dim = bundles_->front().tfidf_dimension;
      bool uniform = dim >= 2;
      for (const extract::FeatureBundle& b : *bundles_) {
        if (b.tfidf_dimension != dim) {
          uniform = false;
          break;
        }
      }
      if (uniform) {
        Field& f = GetField(BatchSpec::Field::kTfidf);
        if (f.frozen.max_id() < dim) {
          pearson_state_ = 1;
          pearson_dim_ = dim;
          f.scorer->PreparePearson(dim);
        }
      }
    }
  }
  return pearson_state_ == 1;
}

void BlockScorer::ScoreStrip(const BatchSpec& spec, int anchor, int begin,
                             int end, double* out) {
  Field& f = GetField(spec.field);
  f.scorer->SetAnchor(anchor);
  switch (spec.measure) {
    case BatchSpec::Measure::kCosine:
      f.scorer->Cosine(begin, end, out);
      break;
    case BatchSpec::Measure::kSaturatingOverlap:
      f.scorer->SaturatingOverlap(spec.damping, begin, end, out);
      break;
    case BatchSpec::Measure::kPearson:
      assert(pearson_state_ == 1 && "CanBatch(spec) must be checked first");
      f.scorer->Pearson(begin, end, out);
      break;
    case BatchSpec::Measure::kExtendedJaccard:
      f.scorer->ExtendedJaccard(begin, end, out);
      break;
    case BatchSpec::Measure::kNone:
      assert(false && "ScoreStrip on a non-batchable spec");
      break;
  }
}

graph::SimilarityMatrix BlockScorer::ScoreMatrix(const BatchSpec& spec) {
  const int n = size();
  graph::SimilarityMatrix m(n, 0.0, 1.0);
  auto& data = m.data();
  for (int i = 0; i + 1 < n; ++i) {
    // Row i of the upper triangle is contiguous: pairs (i, i+1) .. (i, n-1).
    double* row = data.data() + m.Index(i, i + 1);
    ScoreStrip(spec, i, i + 1, n, row);
    // Same final clamp as ComputeSimilarityMatrix applies per value.
    for (int j = i + 1; j < n; ++j) {
      row[j - i - 1] = std::clamp(row[j - i - 1], 0.0, 1.0);
    }
  }
  return m;
}

}  // namespace core
}  // namespace weber

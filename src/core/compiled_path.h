// The compiled decision hot path (ROADMAP item 1).
//
// The interpreted pipeline evaluates every pair through a virtual
// DecisionCriterion::Decide / LinkProbability call (binary search plus
// per-region branching inside the model), a virtual
// SimilarityFunction::Compute per function (merge-join + per-pair norm
// recomputation), and a per-source pass in the combiner. This header bakes
// each of those walks into flat tables evaluated branchlessly:
//
//   * CompiledDecision — a trained criterion (threshold / region-accuracy /
//     isotonic) flattened into one sorted boundary array plus a per-region
//     link-probability array. Region lookup is a branch-free comparison
//     count over the contiguous boundaries; Decide and LinkProbability are
//     table lookups off that index. EvalBlock processes a whole pair array
//     per call.
//   * BlockScorer — a block's FeatureBundles frozen into the text layer's
//     CSR/SoA arenas (text::FrozenVectors, one per feature family), scoring
//     each function's full similarity matrix with one-against-strip batch
//     kernels (AVX2 or scalar, CPUID-dispatched) instead of per-pair
//     Compute calls.
//   * BakeCombineWeights / FusedWeightedAverage — the weighted-average
//     combiner's accuracy weights baked once, each pair combined as a fused
//     dot product over the sources.
//
// Equivalence guarantee: every compiled evaluation is BIT-IDENTICAL to its
// interpreted counterpart (see batch_similarity.h for how the kernels
// achieve this; CompiledDecision reproduces the exact comparison semantics
// of each criterion, including NaN ordering and the region models' input
// clamp). fig2_www_results output is byte-identical with the compiled path
// on or off; compiled_path_test fuzzes the equivalence per criterion and
// kernel.

#ifndef WEBER_CORE_COMPILED_PATH_H_
#define WEBER_CORE_COMPILED_PATH_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/similarity_function.h"
#include "extract/feature_bundle.h"
#include "graph/pair_matrix.h"
#include "text/batch_similarity.h"

namespace weber {
namespace core {

/// A fitted decision criterion flattened into a sorted-boundary table.
/// Region lookup is a linear comparison count over the contiguous
/// boundaries — branch-free (each comparison becomes a flag-to-int add) and
/// comparison-equivalent to the interpreted std::upper_bound for every
/// input, NaN included.
struct CompiledDecision {
  /// Ascending region boundaries; region r spans [boundaries[r-1],
  /// boundaries[r]) under the upper_bound convention.
  std::vector<double> boundaries;

  /// Per-region link probability; size boundaries.size() + 1.
  std::vector<double> probs;

  /// Region models clamp the value into [0, 1] before lookup; threshold and
  /// isotonic rules compare the raw value.
  bool clamp_input = false;

  /// Comparison semantics for NaN values, replicating the interpreted rule:
  /// true  — upper_bound-style (NaN lands in the top region; region and
  ///         isotonic criteria),
  /// false — `value >= boundary`-style (NaN lands in region 0; the
  ///         threshold criterion).
  bool nan_in_top_region = false;

  /// When >= 0, Decide is `region >= decide_region` (the threshold rule,
  /// whose upper link rate may itself be below 0.5); when -1, Decide is
  /// `probs[region] >= 0.5` (region and isotonic rules).
  int decide_region = -1;

  int RegionOf(double value) const {
    if (clamp_input) value = std::clamp(value, 0.0, 1.0);
    const double* b = boundaries.data();
    const size_t nb = boundaries.size();
    int r = 0;
    if (nan_in_top_region) {
      for (size_t i = 0; i < nb; ++i) r += value < b[i] ? 0 : 1;
    } else {
      for (size_t i = 0; i < nb; ++i) r += b[i] <= value ? 1 : 0;
    }
    return r;
  }

  bool Decide(double value) const {
    const int r = RegionOf(value);
    return decide_region >= 0 ? r >= decide_region : probs[r] >= 0.5;
  }

  double LinkProbability(double value) const { return probs[RegionOf(value)]; }

  /// Evaluates a whole pair array: decisions[k] = Decide(values[k]) (0/1),
  /// link_probs[k] = LinkProbability(values[k]). Either output may be null.
  void EvalBlock(const double* values, size_t count, char* decisions,
                 double* link_probs) const;
};

/// Pre-baked accuracy weights for the weighted-average combiner: one weight
/// per source (rel^4 + 0.01 against the best score) plus the normalizing
/// inverse. The inverse is applied AFTER each pair's fused dot — folding it
/// into the weights would change the rounding sequence and break
/// bit-identity with the interpreted two-pass loop.
struct CompiledCombineWeights {
  std::vector<double> weights;
  double inv_total = 0.0;
};

CompiledCombineWeights BakeCombineWeights(
    const std::vector<double>& train_accuracies);

/// out[k] = (Σ_s weights[s] * source_probs[s][k]) * inv_total, accumulated
/// in source order per pair (bit-identical to the source-major loop).
void FusedWeightedAverage(const std::vector<const double*>& source_probs,
                          const CompiledCombineWeights& baked,
                          size_t num_pairs, double* out);

/// Batched pair scoring for one block: freezes each required FeatureBundle
/// field family into text::FrozenVectors (lazily, on first use) and scores
/// whole similarity matrices / strips through the batch kernels. Not
/// thread-safe; use one scorer per resolve call (freezing is per block).
class BlockScorer {
 public:
  /// The bundles must outlive the scorer and not change while it is used.
  explicit BlockScorer(const std::vector<extract::FeatureBundle>* bundles);

  /// True when `spec` can be scored by the batch kernels for THIS block.
  /// Always true for cosine / saturating-overlap / extended-Jaccard specs;
  /// Pearson additionally requires a block-constant ambient dimension
  /// (every bundle shares one tfidf_dimension ≥ 2 that bounds every term
  /// id), because the interpreted per-pair dimension max(dim, union) must
  /// collapse to that constant. Non-batchable specs always return false.
  bool CanBatch(const BatchSpec& spec);

  /// The full similarity matrix for `spec`, values clamped into [0, 1] —
  /// bit-identical to ComputeSimilarityMatrix over the declaring function.
  /// Requires CanBatch(spec).
  graph::SimilarityMatrix ScoreMatrix(const BatchSpec& spec);

  /// Scores bundle `anchor` against bundles [begin, end) under `spec`,
  /// writing raw (unclamped) measure values — bit-identical to
  /// fn.Compute(bundles[anchor], bundles[j]). Requires CanBatch(spec).
  void ScoreStrip(const BatchSpec& spec, int anchor, int begin, int end,
                  double* out);

  int size() const { return static_cast<int>(bundles_->size()); }

 private:
  struct Field {
    bool ready = false;
    text::FrozenVectors frozen;
    std::unique_ptr<text::BatchScorer> scorer;
  };

  Field& GetField(BatchSpec::Field field);

  const std::vector<extract::FeatureBundle>* bundles_;
  std::array<Field, 5> fields_;

  int pearson_state_ = 0;  // 0 = unknown, 1 = eligible, -1 = ineligible
  int pearson_dim_ = 0;    // the shared ambient dimension when eligible
};

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_COMPILED_PATH_H_

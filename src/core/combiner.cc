#include "core/combiner.h"

#include <algorithm>

#include "core/compiled_path.h"
#include "ml/threshold.h"

namespace weber {
namespace core {

namespace {

Status ValidateSources(const std::vector<DecisionSource>& sources) {
  if (sources.empty()) {
    return Status::InvalidArgument("CombineDecisionGraphs: no sources");
  }
  const int n = sources.front().decisions.size();
  for (const DecisionSource& s : sources) {
    if (s.decisions.size() != n || s.link_probs.size() != n) {
      return Status::InvalidArgument(
          "CombineDecisionGraphs: source size mismatch for ",
          s.function_name, "/", s.criterion_name);
    }
  }
  return Status::OK();
}

CombinedGraph FromSource(const DecisionSource& source) {
  CombinedGraph combined;
  combined.decisions = source.decisions;
  combined.link_probs = source.link_probs;
  combined.chosen_source = source.function_name + "/" + source.criterion_name;
  return combined;
}

}  // namespace

std::string CombinationStrategyToString(CombinationStrategy s) {
  switch (s) {
    case CombinationStrategy::kBestGraph:
      return "best-graph";
    case CombinationStrategy::kWeightedAverage:
      return "weighted-average";
    case CombinationStrategy::kMajorityVote:
      return "majority-vote";
  }
  return "unknown";
}

Result<CombinedGraph> CombineDecisionGraphs(
    const std::vector<DecisionSource>& sources,
    const std::vector<TrainingPair>& training, CombinationStrategy strategy) {
  WEBER_RETURN_NOT_OK(ValidateSources(sources));
  const int n = sources.front().decisions.size();
  const size_t num_pairs = sources.front().decisions.num_pairs();

  switch (strategy) {
    case CombinationStrategy::kBestGraph: {
      const DecisionSource* best = &sources.front();
      for (const DecisionSource& s : sources) {
        if (s.train_accuracy > best->train_accuracy) best = &s;
      }
      return FromSource(*best);
    }

    case CombinationStrategy::kWeightedAverage: {
      // Per-pair weighted mean of the sources' link probabilities (the
      // multigraph edges carry their accuracy-estimation weights, Section
      // IV-B), followed by a decision threshold learned on the training
      // pairs' combined values.
      CombinedGraph combined;
      combined.decisions = graph::DecisionGraph(n, 0, 1);
      combined.link_probs = graph::SimilarityMatrix(n, 0.0, 1.0);
      auto& probs = combined.link_probs.data();
      // Every edge of the multigraph contributes its accuracy-estimation
      // weight (the per-region link probability); sources enter the average
      // weighted by their estimated graph quality relative to the best
      // source, so a long tail of weak graphs cannot drown the informative
      // ones. The weights are baked once and each pair is combined as one
      // fused dot product over the sources (compiled_path.h); the result is
      // bit-identical to the former source-major two-pass loop.
      std::vector<double> accuracies;
      std::vector<const double*> source_probs;
      accuracies.reserve(sources.size());
      source_probs.reserve(sources.size());
      for (const DecisionSource& s : sources) {
        accuracies.push_back(s.train_accuracy);
        source_probs.push_back(s.link_probs.data().data());
      }
      const CompiledCombineWeights baked = BakeCombineWeights(accuracies);
      FusedWeightedAverage(source_probs, baked, num_pairs, probs.data());

      // Optimal threshold on the combined values, learned from the training
      // pairs (Section IV-B). Among thresholds whose training accuracy is
      // within a small tolerance of the optimum, the highest is chosen:
      // under transitive closure a false edge merges whole clusters, so the
      // conservative end of the plateau is the safer decision rule.
      double threshold = 0.5;
      if (!training.empty()) {
        std::vector<ml::LabeledSimilarity> labeled;
        labeled.reserve(training.size());
        for (const TrainingPair& t : training) {
          labeled.push_back({probs[t.pair_offset], t.link});
        }
        WEBER_ASSIGN_OR_RETURN(ml::ThresholdFit fit,
                               ml::FitOptimalThreshold(labeled));
        threshold = fit.threshold;
        constexpr double kTolerance = 0.005;
        std::sort(labeled.begin(), labeled.end(),
                  [](const ml::LabeledSimilarity& x,
                     const ml::LabeledSimilarity& y) {
                    return x.value < y.value;
                  });
        for (size_t i = labeled.size(); i-- > 0;) {
          if (labeled[i].value < threshold) break;
          const double candidate = labeled[i].value;
          if (ml::ThresholdAccuracy(labeled, candidate) + kTolerance >=
              fit.train_accuracy) {
            threshold = candidate;
            break;
          }
        }
      }
      combined.threshold = threshold;
      auto& dec = combined.decisions.data();
      for (size_t k = 0; k < num_pairs; ++k) {
        dec[k] = probs[k] >= threshold ? 1 : 0;
      }
      combined.chosen_source = "weighted-average";
      return combined;
    }

    case CombinationStrategy::kMajorityVote: {
      CombinedGraph combined;
      combined.decisions = graph::DecisionGraph(n, 0, 1);
      combined.link_probs = graph::SimilarityMatrix(n, 0.0, 1.0);
      auto& votes = combined.link_probs.data();
      for (const DecisionSource& s : sources) {
        const auto& sd = s.decisions.data();
        for (size_t k = 0; k < num_pairs; ++k) votes[k] += sd[k] ? 1.0 : 0.0;
      }
      const double inv = 1.0 / static_cast<double>(sources.size());
      auto& dec = combined.decisions.data();
      for (size_t k = 0; k < num_pairs; ++k) {
        votes[k] *= inv;
        dec[k] = votes[k] > 0.5 ? 1 : 0;
      }
      combined.chosen_source = "majority-vote";
      return combined;
    }
  }
  return Status::InvalidArgument("unknown combination strategy");
}

}  // namespace core
}  // namespace weber

// EntityResolver: the paper's Algorithm 1 (Section IV-C).
//
//   compute the graph G_w^{fi} for each fi (per block)
//   obtain the decision criteria Dj (threshold, regions, ...) from training
//   apply Dj to the data, to compute G^i_{Dj}, for each i and Dj
//   compute the accuracy acc(G^i_{Dj})
//   combine them, for all i, Dj
//   apply a clustering algorithm
//   output the final entity resolution

#ifndef WEBER_CORE_RESOLVER_H_
#define WEBER_CORE_RESOLVER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/combiner.h"
#include "core/guarded_function.h"
#include "core/run_health.h"
#include "core/similarity_function.h"
#include "corpus/document.h"
#include "extract/feature_extractor.h"
#include "extract/gazetteer.h"
#include "graph/agglomerative.h"
#include "graph/clustering.h"
#include "graph/correlation_clustering.h"

namespace weber {
namespace core {

/// Final clustering step of Algorithm 1.
enum class ClusteringAlgorithm : int {
  kTransitiveClosure = 0,      ///< the paper's default
  kCorrelationClustering = 1,  ///< the paper's experimental alternative
  kAgglomerative = 2,          ///< hierarchical clustering on link probs
};

std::string ClusteringAlgorithmToString(ClusteringAlgorithm a);

struct ResolverOptions {
  /// Which similarity functions to use; default all ten of Table I.
  std::vector<std::string> function_names = kSubsetI10;

  /// Use region-based decision criteria in addition to the plain threshold
  /// (false reproduces the paper's threshold-only I columns).
  bool use_region_criteria = true;

  /// Score pairs through the compiled hot path (compiled_path.h): batched
  /// CSR/SoA similarity kernels (AVX2/scalar, CPUID-dispatched) for the
  /// standard vector functions and flattened decision tables for the
  /// fitted criteria. Bit-identical to the interpreted walk — this is a
  /// pure speed switch; `--no-compiled-path` on the tools is the escape
  /// hatch. Automatically bypassed while fault injection is armed so the
  /// `similarity.compute` fault point keeps observing every pair.
  bool compiled_path = true;

  /// Extension: also include the isotonic (monotone-calibrated) criterion
  /// in the candidate family. Off in the paper's configuration; used by
  /// the region ablation to separate "better calibration" from
  /// "non-monotone expressiveness".
  bool include_isotonic_criterion = false;

  /// Region construction parameters.
  int equal_width_bins = 10;
  int kmeans_k = 8;

  CombinationStrategy combination = CombinationStrategy::kBestGraph;

  /// Extension (the paper's Section VII future work): entropy-based
  /// handling of incomplete pages. A pair whose geometric-mean page
  /// informativeness falls below this threshold has too little evidence for
  /// a positive decision: its link decisions are vetoed in every decision
  /// graph and its link probability is capped below 0.5. 0 disables the
  /// gate (the paper's published configuration).
  double min_pair_informativeness = 0.0;

  ClusteringAlgorithm clustering = ClusteringAlgorithm::kTransitiveClosure;
  graph::CorrelationClusteringOptions correlation_options;
  graph::AgglomerativeOptions agglomerative_options;

  /// How the training sample is drawn (Section V-A2, "10% of the complete
  /// dataset"): kPairs samples 10% of the block's document pairs directly;
  /// kDocuments samples 10% of the documents and labels all pairs among
  /// them (a much smaller, noisier sample).
  enum class TrainSampling : int { kPairs = 0, kDocuments = 1 };
  TrainSampling train_sampling = TrainSampling::kPairs;

  /// Fraction of the block (pairs or documents, per train_sampling) whose
  /// labels form the training set (the paper uses 10%).
  double train_fraction = 0.10;
  /// Lower bound on training pairs (kPairs) or documents (kDocuments).
  int min_train_size = 10;

  extract::FeatureExtractorOptions extractor;

  // --- Robustness (hardening substrate; see DESIGN.md "Failure model"). ---

  /// Wrap every similarity function in a GuardedSimilarityFunction that
  /// clamps non-finite / out-of-range values, spot-checks symmetry and
  /// quarantines repeat offenders. The guard is value-transparent for
  /// contract-abiding functions, so disabling it only removes the safety
  /// net (it never changes results of well-behaved runs).
  bool guard_functions = true;
  GuardOptions guard;

  /// Soft wall-clock deadline for one ResolveExtracted call, checked
  /// cooperatively between similarity matrices and decision criteria. When
  /// exceeded, the block resolves from the sources computed so far (or the
  /// threshold fallback) and is marked degraded. 0 disables.
  double deadline_ms = 0.0;

  /// Maximum pairwise similarity evaluations per block across all
  /// functions. Protects against one pathologically large block starving
  /// the rest of a run. When the next function's matrix would exceed the
  /// budget, remaining functions are skipped and the block is marked
  /// degraded. 0 disables.
  long long max_pair_budget = 0;

  /// Optional span sink (weber::obs): when set, ResolveExtracted records
  /// one span per pipeline stage. Stage timings in BlockResolution are
  /// collected regardless — they cost two clock reads per stage. The
  /// collector must outlive the resolver.
  obs::TraceCollector* trace = nullptr;
};

/// Wall-clock milliseconds spent in each stage of Algorithm 1 for one
/// block. `blocking_ms` (extraction/blocking) is filled by the caller that
/// owns that work (the experiment runner); the resolver fills the rest.
struct StageTimings {
  double blocking_ms = 0.0;
  double similarity_ms = 0.0;
  double decision_ms = 0.0;
  double combine_ms = 0.0;
  double cluster_ms = 0.0;

  void Merge(const StageTimings& other) {
    blocking_ms += other.blocking_ms;
    similarity_ms += other.similarity_ms;
    decision_ms += other.decision_ms;
    combine_ms += other.combine_ms;
    cluster_ms += other.cluster_ms;
  }
  double TotalMs() const {
    return blocking_ms + similarity_ms + decision_ms + combine_ms +
           cluster_ms;
  }
};

/// Diagnostics for one (function, criterion) decision graph.
struct SourceDiagnostics {
  std::string function_name;
  std::string criterion_name;
  double train_accuracy = 0.0;
  long long num_edges = 0;
};

/// Result of resolving one block.
struct BlockResolution {
  graph::Clustering clustering;

  /// The combined graph's chosen source (best-graph) or strategy tag.
  std::string chosen_source;

  /// Per-source diagnostics, in (function-major, criterion-minor) order.
  std::vector<SourceDiagnostics> sources;

  /// The labeled pairs used for training in this run.
  std::vector<std::pair<int, int>> training_pairs;

  /// Wall-clock per-stage breakdown (blocking_ms left 0 here; the caller
  /// that performed extraction fills it in).
  StageTimings stage_ms;

  /// Degradation diagnostics for this block (all-zero on a clean run).
  /// `health.degraded_blocks` is 1 when the result is partial: a deadline
  /// or pair budget was hit, all functions were quarantined (threshold
  /// fallback), or the configured clustering failed and transitive closure
  /// substituted.
  RunHealth health;
};

/// Per-block entity resolver. Construct once (feature extraction config +
/// gazetteer + functions), resolve many blocks.
class EntityResolver {
 public:
  /// The gazetteer must outlive the resolver. Returns via factory so that
  /// unknown function names surface as a Status rather than a constructor
  /// failure.
  static Result<EntityResolver> Create(const extract::Gazetteer* gazetteer,
                                       ResolverOptions options);

  /// As Create, but with an explicit function set instead of resolving
  /// `options.function_names` through the registry. Lets callers (and chaos
  /// tests) inject custom — including deliberately misbehaving — functions.
  static Result<EntityResolver> CreateWithFunctions(
      const extract::Gazetteer* gazetteer, ResolverOptions options,
      std::vector<std::unique_ptr<SimilarityFunction>> functions);

  /// Runs Algorithm 1 on one labeled block. `rng` drives the training
  /// sample and k-means seeding; pass a differently-seeded Rng per run to
  /// reproduce the paper's 5-run averaging.
  Result<BlockResolution> ResolveBlock(const corpus::Block& block,
                                       Rng* rng) const;

  /// Variant for callers that already extracted features and sampled the
  /// training pairs (used by the benchmark harness to share work across the
  /// I4/I7/I10/C4/C7/C10/W configurations).
  Result<BlockResolution> ResolveExtracted(
      const std::vector<extract::FeatureBundle>& bundles,
      const std::vector<int>& entity_labels,
      const std::vector<std::pair<int, int>>& training_pairs, Rng* rng) const;

  const ResolverOptions& options() const { return options_; }

 private:
  EntityResolver(const extract::Gazetteer* gazetteer, ResolverOptions options,
                 std::vector<std::unique_ptr<SimilarityFunction>> functions)
      : gazetteer_(gazetteer),
        options_(std::move(options)),
        functions_(std::move(functions)),
        extractor_(gazetteer_, options_.extractor) {}

  const extract::Gazetteer* gazetteer_;
  ResolverOptions options_;
  std::vector<std::unique_ptr<SimilarityFunction>> functions_;
  extract::FeatureExtractor extractor_;
};

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_RESOLVER_H_

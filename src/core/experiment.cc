#include "core/experiment.h"

#include <ostream>

#include "common/executor.h"
#include "common/json_writer.h"
#include "common/timer.h"
#include "common/trace.h"
#include "ml/splitter.h"

namespace weber {
namespace core {

Status ExperimentRunner::Prepare(
    const extract::FeatureExtractorOptions& extractor_options,
    double train_fraction, int min_train_pairs, obs::TraceCollector* trace) {
  if (dataset_ == nullptr || gazetteer_ == nullptr) {
    return Status::InvalidArgument("ExperimentRunner: null dataset/gazetteer");
  }
  if (num_runs_ < 1) {
    return Status::InvalidArgument("ExperimentRunner: num_runs must be >= 1");
  }
  extract::FeatureExtractor extractor(gazetteer_, extractor_options);
  WallTimer blocking_timer;
  obs::ScopedSpan blocking_span(trace, "pipeline.blocking");
  block_bundles_.clear();
  block_bundles_.reserve(dataset_->blocks.size());
  for (const corpus::Block& block : dataset_->blocks) {
    std::vector<extract::PageInput> pages;
    pages.reserve(block.documents.size());
    for (const corpus::Document& d : block.documents) {
      pages.push_back({d.url, d.text});
    }
    WEBER_ASSIGN_OR_RETURN(auto bundles,
                           extractor.ExtractBlock(pages, block.query));
    block_bundles_.push_back(std::move(bundles));
  }
  blocking_span.End();
  blocking_ms_ = blocking_timer.ElapsedMillis();

  // Fix the training samples: one Rng stream per (run, block).
  Rng master(seed_);
  training_pairs_.assign(num_runs_, {});
  for (int run = 0; run < num_runs_; ++run) {
    training_pairs_[run].reserve(dataset_->blocks.size());
    for (size_t b = 0; b < dataset_->blocks.size(); ++b) {
      Rng rng = master.Fork(run * 1000 + b);
      training_pairs_[run].push_back(ml::SampleTrainingPairs(
          dataset_->blocks[b].num_documents(), train_fraction, &rng,
          min_train_pairs));
    }
  }
  prepared_ = true;
  return Status::OK();
}

Result<ExperimentResult> ExperimentRunner::Run(
    const ExperimentConfig& config) const {
  if (!prepared_) {
    return Status::FailedPrecondition("ExperimentRunner: call Prepare() first");
  }
  WEBER_ASSIGN_OR_RETURN(EntityResolver resolver,
                         EntityResolver::Create(gazetteer_, config.options));

  ExperimentResult result;
  result.label = config.label;
  result.stage_ms.blocking_ms = blocking_ms_;
  result.per_block.reserve(dataset_->blocks.size());

  Rng master(seed_ ^ 0xABCDEF12345ULL);
  for (size_t b = 0; b < dataset_->blocks.size(); ++b) {
    const corpus::Block& block = dataset_->blocks[b];
    std::vector<eval::MetricReport> run_reports;
    run_reports.reserve(num_runs_);
    for (int run = 0; run < num_runs_; ++run) {
      Rng rng = master.Fork(run * 7919 + b * 13);
      WEBER_ASSIGN_OR_RETURN(
          BlockResolution resolution,
          resolver.ResolveExtracted(block_bundles_[b], block.entity_labels,
                                    training_pairs_[run][b], &rng));
      result.health.Merge(resolution.health);
      result.stage_ms.Merge(resolution.stage_ms);
      WEBER_ASSIGN_OR_RETURN(
          eval::MetricReport report,
          eval::Evaluate(block.GroundTruth(), resolution.clustering));
      run_reports.push_back(report);
    }
    WEBER_ASSIGN_OR_RETURN(eval::MetricReport block_mean,
                           eval::MeanReport(run_reports));
    result.per_block.push_back(block_mean);
  }
  WEBER_ASSIGN_OR_RETURN(result.overall, eval::MeanReport(result.per_block));
  return result;
}

Result<std::vector<ExperimentResult>> ExperimentRunner::RunAll(
    const std::vector<ExperimentConfig>& configs) const {
  std::vector<ExperimentResult> results;
  results.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    WEBER_ASSIGN_OR_RETURN(ExperimentResult r, Run(config));
    results.push_back(std::move(r));
  }
  return results;
}

Result<std::vector<ExperimentResult>> ExperimentRunner::RunAllParallel(
    const std::vector<ExperimentConfig>& configs, int num_threads) const {
  if (!prepared_) {
    return Status::FailedPrecondition("ExperimentRunner: call Prepare() first");
  }
  if (num_threads <= 1 || configs.size() <= 1) return RunAll(configs);

  // One configuration per pool iteration. Run() only reads the prepared
  // state, so concurrent calls are safe.
  std::vector<Result<ExperimentResult>> slots(
      configs.size(), Result<ExperimentResult>(Status::Internal("unset")));
  Executor pool(std::min<int>(num_threads, static_cast<int>(configs.size())));
  pool.ParallelFor(static_cast<int>(configs.size()),
                   [&](int i) { slots[i] = Run(configs[i]); });

  std::vector<ExperimentResult> results;
  results.reserve(configs.size());
  for (auto& slot : slots) {
    if (!slot.ok()) return slot.status();
    results.push_back(std::move(slot).ValueOrDie());
  }
  return results;
}

Status WriteExperimentJson(const corpus::Dataset& dataset, int num_runs,
                           const std::vector<ExperimentResult>& results,
                           std::ostream& os) {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("dataset").String(dataset.name);
  json.Key("runs").Number(num_runs);
  json.Key("configs").BeginArray();
  for (const ExperimentResult& r : results) {
    if (r.per_block.size() != static_cast<size_t>(dataset.num_blocks())) {
      return Status::InvalidArgument(
          "WriteExperimentJson: result '", r.label,
          "' does not align with the dataset's blocks");
    }
    json.BeginObject();
    json.Key("label").String(r.label);
    auto write_report = [&json](const eval::MetricReport& m) {
      json.BeginObject();
      json.Key("fp").Number(m.fp_measure);
      json.Key("f").Number(m.f_measure);
      json.Key("rand").Number(m.rand_index);
      json.Key("precision").Number(m.precision);
      json.Key("recall").Number(m.recall);
      json.Key("purity").Number(m.purity);
      json.Key("inverse_purity").Number(m.inverse_purity);
      json.Key("bcubed_f").Number(m.bcubed_f);
      json.EndObject();
    };
    json.Key("overall");
    write_report(r.overall);
    json.Key("health");
    WriteRunHealthJson(json, r.health);
    json.Key("stage_ms").BeginObject();
    json.Key("blocking").Number(r.stage_ms.blocking_ms);
    json.Key("similarity").Number(r.stage_ms.similarity_ms);
    json.Key("decision").Number(r.stage_ms.decision_ms);
    json.Key("combine").Number(r.stage_ms.combine_ms);
    json.Key("cluster").Number(r.stage_ms.cluster_ms);
    json.Key("total").Number(r.stage_ms.TotalMs());
    json.EndObject();
    json.Key("per_block").BeginArray();
    for (size_t b = 0; b < r.per_block.size(); ++b) {
      json.BeginObject();
      json.Key("name").String(dataset.blocks[b].query);
      json.Key("metrics");
      write_report(r.per_block[b]);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  os << "\n";
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace core
}  // namespace weber

// Baseline entity resolution algorithms from the literature the paper
// builds on, implemented over the same feature bundles so the benchmark can
// compare the paper's framework against what it cites:
//
//   * SwooshResolver — R-Swoosh-style generic ER (Benjelloun et al., "Swoosh:
//     a generic approach to entity resolution", VLDB J. 2009; Menestrina et
//     al. 2006): records that match are *merged immediately* into a combined
//     profile, and resolution iterates to a fixpoint of the match/merge
//     closure.
//   * SortedNeighborhoodResolver — the merge/purge method (Hernandez &
//     Stolfo, SIGMOD 1995): sort records by a key, slide a fixed window,
//     and link matching records inside the window; multiple passes with
//     different keys are unioned.
//
// Both baselines use the same match evidence as the main framework (the
// mean of the selected Table-I similarity functions, thresholded at a value
// fitted on the training pairs), so differences in output quality are
// attributable to the resolution *strategy*, not the features.

#ifndef WEBER_CORE_BASELINES_H_
#define WEBER_CORE_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/similarity_function.h"
#include "graph/clustering.h"

namespace weber {
namespace core {

struct BaselineOptions {
  /// Functions averaged into the match score.
  std::vector<std::string> function_names = kSubsetI10;
  /// Extra margin added to the fitted threshold; Swoosh-style merging is
  /// very sensitive to false merges (a bad merge poisons the merged
  /// profile), so a conservative margin is customary.
  double threshold_margin = 0.0;
};

/// Merges two page profiles into one combined profile (union of evidence):
/// sparse feature vectors are summed, TF-IDF vectors averaged and
/// re-normalized, names keep the more frequent page's values, and
/// informativeness takes the maximum.
extract::FeatureBundle MergeBundles(const extract::FeatureBundle& a,
                                    const extract::FeatureBundle& b);

/// R-Swoosh: match-and-merge to fixpoint.
class SwooshResolver {
 public:
  static Result<SwooshResolver> Create(BaselineOptions options);

  /// Resolves one block. The labeled training pairs calibrate the match
  /// threshold (same protocol as the main framework).
  Result<graph::Clustering> Resolve(
      const std::vector<extract::FeatureBundle>& bundles,
      const std::vector<int>& entity_labels,
      const std::vector<std::pair<int, int>>& training_pairs, Rng* rng) const;

 private:
  explicit SwooshResolver(
      BaselineOptions options,
      std::vector<std::unique_ptr<SimilarityFunction>> functions)
      : options_(std::move(options)), functions_(std::move(functions)) {}

  double MatchScore(const extract::FeatureBundle& a,
                    const extract::FeatureBundle& b) const;

  BaselineOptions options_;
  std::vector<std::unique_ptr<SimilarityFunction>> functions_;
};

struct SortedNeighborhoodOptions : BaselineOptions {
  /// Window width of the sliding comparison window.
  int window = 10;
};

/// Multi-pass sorted neighborhood (merge/purge): pass 1 keys on the page's
/// dominant person name, pass 2 on the URL host; links from both passes are
/// unioned and transitively closed.
class SortedNeighborhoodResolver {
 public:
  static Result<SortedNeighborhoodResolver> Create(
      SortedNeighborhoodOptions options);

  Result<graph::Clustering> Resolve(
      const std::vector<extract::FeatureBundle>& bundles,
      const std::vector<int>& entity_labels,
      const std::vector<std::pair<int, int>>& training_pairs, Rng* rng) const;

 private:
  explicit SortedNeighborhoodResolver(
      SortedNeighborhoodOptions options,
      std::vector<std::unique_ptr<SimilarityFunction>> functions)
      : options_(std::move(options)), functions_(std::move(functions)) {}

  double MatchScore(const extract::FeatureBundle& a,
                    const extract::FeatureBundle& b) const;

  SortedNeighborhoodOptions options_;
  std::vector<std::unique_ptr<SimilarityFunction>> functions_;
};

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_BASELINES_H_

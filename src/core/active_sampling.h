// Active selection of training pairs. The paper samples its 10% training
// set uniformly and notes that "the performance of the ER algorithm
// depends on how well the training set represents the features of the
// complete dataset" (Section V-A2). When labels are bought one pair at a
// time (crowdsourcing, curation), uniform sampling wastes budget on pairs
// every function already agrees about; this module picks the pairs the
// current function pool is most *uncertain* about.
//
// Two classic strategies are provided:
//   * query-by-committee: label pairs where the functions' preliminary
//     (threshold-at-median) votes disagree the most;
//   * margin sampling: label pairs whose mean similarity is closest to the
//     decision boundary.
// Both include an exploration quota of uniformly random pairs so the
// labeled sample still covers the easy regions the region-accuracy models
// need for calibration.

#ifndef WEBER_CORE_ACTIVE_SAMPLING_H_
#define WEBER_CORE_ACTIVE_SAMPLING_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/pair_matrix.h"

namespace weber {
namespace core {

enum class ActiveStrategy : int {
  kQueryByCommittee = 0,
  kMarginSampling = 1,
};

struct ActiveSamplingOptions {
  ActiveStrategy strategy = ActiveStrategy::kQueryByCommittee;
  /// Fraction of the budget spent on uniformly random pairs (exploration).
  double exploration_fraction = 0.3;
};

/// Selects `budget` training pairs from the n-document block described by
/// the per-function similarity matrices. Returns (i, j) pairs with i < j,
/// sorted. Returns InvalidArgument when matrices is empty, sizes disagree,
/// or budget < 1; the budget is capped at the number of pairs.
Result<std::vector<std::pair<int, int>>> SelectTrainingPairs(
    const std::vector<graph::SimilarityMatrix>& matrices, int budget,
    Rng* rng, const ActiveSamplingOptions& options = {});

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_ACTIVE_SAMPLING_H_

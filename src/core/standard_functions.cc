// The ten similarity functions of Table I.

#include <algorithm>

#include "core/composed_functions.h"
#include "core/similarity_function.h"
#include "extract/url.h"
#include "text/string_similarity.h"
#include "text/vector_similarity.h"

namespace weber {
namespace core {

namespace {

using extract::FeatureBundle;

/// F1: cosine similarity of the weighted concept vectors.
class F1WeightedConceptCosine final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F1"; }
  std::string_view description() const override {
    return "Weighted concept vector / cosine similarity";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return text::CosineSimilarity(a.weighted_concepts, b.weighted_concepts);
  }
  BatchSpec batch_spec() const override {
    return {BatchSpec::Measure::kCosine, BatchSpec::Field::kWeightedConcepts,
            0.0};
  }
};

/// F2: string similarity of the page URLs (domain-aware).
class F2UrlSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F2"; }
  std::string_view description() const override {
    return "URL of the page / string similarity";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return extract::UrlSimilarity(a.url, b.url);
  }
};

/// F3: string similarity of the most frequent person name on each page.
class F3MostFrequentName final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F3"; }
  std::string_view description() const override {
    return "Most frequent name on the page / string similarity";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    if (a.most_frequent_name.empty() || b.most_frequent_name.empty()) {
      return 0.0;
    }
    return text::JaroWinklerSimilarity(a.most_frequent_name,
                                       b.most_frequent_name);
  }
};

/// F4: number of overlapping concepts (squashed into [0,1]).
class F4ConceptOverlap final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F4"; }
  std::string_view description() const override {
    return "Concepts vector / number of overlapping concepts";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return text::SaturatingOverlap(a.concepts, b.concepts);
  }
  BatchSpec batch_spec() const override {
    return {BatchSpec::Measure::kSaturatingOverlap, BatchSpec::Field::kConcepts,
            2.0};
  }
};

/// F5: number of overlapping organization entities.
class F5OrganizationOverlap final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F5"; }
  std::string_view description() const override {
    return "Organization entities on the page / number of overlapping "
           "organizations";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return text::SaturatingOverlap(a.organizations, b.organizations, 1.5);
  }
  BatchSpec batch_spec() const override {
    return {BatchSpec::Measure::kSaturatingOverlap,
            BatchSpec::Field::kOrganizations, 1.5};
  }
};

/// F6: number of overlapping other person names.
class F6PersonOverlap final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F6"; }
  std::string_view description() const override {
    return "Other person-names on the page / number of overlapping persons";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return text::SaturatingOverlap(a.other_persons, b.other_persons, 1.5);
  }
  BatchSpec batch_spec() const override {
    return {BatchSpec::Measure::kSaturatingOverlap,
            BatchSpec::Field::kOtherPersons, 1.5};
  }
};

/// F7: string similarity of the name closest to the search keyword.
class F7ClosestName final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F7"; }
  std::string_view description() const override {
    return "The name closest to the search keyword / string similarity";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    if (a.closest_name.empty() || b.closest_name.empty()) return 0.0;
    return text::JaroWinklerSimilarity(a.closest_name, b.closest_name);
  }
};

/// F8: cosine similarity of the TF-IDF word vectors.
class F8TfIdfCosine final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F8"; }
  std::string_view description() const override {
    return "TF-IDF words vector / cosine similarity";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return text::CosineSimilarity(a.tfidf, b.tfidf);
  }
  BatchSpec batch_spec() const override {
    return {BatchSpec::Measure::kCosine, BatchSpec::Field::kTfidf, 0.0};
  }
};

/// F9: Pearson correlation of the TF-IDF word vectors.
class F9TfIdfPearson final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F9"; }
  std::string_view description() const override {
    return "TF-IDF words vector / Pearson correlation similarity";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    // A stale (too small) dimension is clamped to the union size inside
    // PearsonSimilarity, where the correction is counted — the resolver
    // surfaces that count as RunHealth::dimension_corrections.
    const int dim = std::max(a.tfidf_dimension, b.tfidf_dimension);
    return text::PearsonSimilarity(a.tfidf, b.tfidf, dim);
  }
  BatchSpec batch_spec() const override {
    return {BatchSpec::Measure::kPearson, BatchSpec::Field::kTfidf, 0.0};
  }
};

/// F10: extended Jaccard similarity of the TF-IDF word vectors.
class F10TfIdfExtendedJaccard final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "F10"; }
  std::string_view description() const override {
    return "TF-IDF words vector / extended Jaccard similarity";
  }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return text::ExtendedJaccardSimilarity(a.tfidf, b.tfidf);
  }
  BatchSpec batch_spec() const override {
    return {BatchSpec::Measure::kExtendedJaccard, BatchSpec::Field::kTfidf,
            0.0};
  }
};

}  // namespace

graph::SimilarityMatrix ComputeSimilarityMatrix(
    const SimilarityFunction& fn,
    const std::vector<extract::FeatureBundle>& bundles) {
  const int n = static_cast<int>(bundles.size());
  graph::SimilarityMatrix m(n, 0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v = fn.Compute(bundles[i], bundles[j]);
      m.Set(i, j, std::clamp(v, 0.0, 1.0));
    }
  }
  return m;
}

std::vector<std::unique_ptr<SimilarityFunction>> MakeStandardFunctions() {
  std::vector<std::unique_ptr<SimilarityFunction>> fns;
  fns.push_back(std::make_unique<F1WeightedConceptCosine>());
  fns.push_back(std::make_unique<F2UrlSimilarity>());
  fns.push_back(std::make_unique<F3MostFrequentName>());
  fns.push_back(std::make_unique<F4ConceptOverlap>());
  fns.push_back(std::make_unique<F5OrganizationOverlap>());
  fns.push_back(std::make_unique<F6PersonOverlap>());
  fns.push_back(std::make_unique<F7ClosestName>());
  fns.push_back(std::make_unique<F8TfIdfCosine>());
  fns.push_back(std::make_unique<F9TfIdfPearson>());
  fns.push_back(std::make_unique<F10TfIdfExtendedJaccard>());
  return fns;
}

Result<std::vector<std::unique_ptr<SimilarityFunction>>> MakeFunctions(
    const std::vector<std::string>& names) {
  // The catalog is the extended set (F1..F16); selecting only F1..F10
  // reproduces the paper's configuration.
  std::vector<std::unique_ptr<SimilarityFunction>> all =
      MakeExtendedFunctions();
  std::vector<std::unique_ptr<SimilarityFunction>> selected;
  for (const std::string& name : names) {
    bool found = false;
    for (auto& fn : all) {
      if (fn && fn->name() == name) {
        selected.push_back(std::move(fn));
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("unknown similarity function: ", name);
    }
  }
  return selected;
}

const std::vector<std::string> kSubsetI4 = {"F4", "F5", "F7", "F9"};
const std::vector<std::string> kSubsetI7 = {"F3", "F4", "F5", "F7",
                                            "F8", "F9", "F10"};
const std::vector<std::string> kSubsetI10 = {"F1", "F2", "F3", "F4", "F5",
                                             "F6", "F7", "F8", "F9", "F10"};

}  // namespace core
}  // namespace weber

// Term-based candidate generation — the "more careful blocking scheme" the
// paper's footnote 1 defers ("In general, one needs to consider the
// applicable blocking schemes more carefully"). For flat collections that
// are not already organized per name, comparing all O(n^2) pairs is
// infeasible; this module generates candidate pairs that share enough
// *rare* terms, the standard token-blocking scheme from the ER literature.

#ifndef WEBER_CORE_CANDIDATE_BLOCKING_H_
#define WEBER_CORE_CANDIDATE_BLOCKING_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "text/analyzer.h"

namespace weber {
namespace core {

struct CandidateBlockingOptions {
  text::AnalyzerOptions analyzer;
  /// Terms appearing in more than this fraction of documents are too
  /// common to be blocking keys (they would pair everything with
  /// everything).
  double max_term_doc_fraction = 0.10;
  /// Also ignore terms above this absolute document frequency.
  int max_term_doc_freq = 100;
  /// A pair becomes a candidate when it shares at least this many blocking
  /// terms.
  int min_shared_terms = 2;
};

struct CandidateBlockingResult {
  /// Candidate pairs (i < j), sorted.
  std::vector<std::pair<int, int>> pairs;
  /// Number of terms used as blocking keys.
  int blocking_terms = 0;
  /// pairs.size() / (n choose 2): the fraction of the full pair space kept.
  double pair_fraction = 0.0;
};

/// Generates candidate pairs over raw document texts. Returns
/// InvalidArgument for empty input or non-positive min_shared_terms.
Result<CandidateBlockingResult> GenerateCandidatePairs(
    const std::vector<std::string>& documents,
    const CandidateBlockingOptions& options = {});

/// Recall of a candidate set against ground-truth labels: the fraction of
/// true same-entity pairs that survived blocking (the metric blocking
/// schemes are judged by).
double BlockingRecall(const std::vector<std::pair<int, int>>& candidates,
                      const std::vector<int>& entity_labels);

}  // namespace core
}  // namespace weber

#endif  // WEBER_CORE_CANDIDATE_BLOCKING_H_

// Umbrella header: include everything a typical WEBER user needs.
//
//   #include "core/weber.h"
//
//   auto data = weber::corpus::SyntheticWebGenerator(
//       weber::corpus::Www05Config()).Generate();
//   auto resolver = weber::core::EntityResolver::Create(
//       &data->gazetteer, weber::core::ResolverOptions{});
//   auto resolution = resolver->ResolveBlock(data->dataset.blocks[0], &rng);

#ifndef WEBER_CORE_WEBER_H_
#define WEBER_CORE_WEBER_H_

#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/active_sampling.h"
#include "core/baselines.h"
#include "core/candidate_blocking.h"
#include "core/composed_functions.h"
#include "core/blocking.h"
#include "core/combiner.h"
#include "core/decision.h"
#include "core/experiment.h"
#include "core/incremental.h"
#include "core/resolver.h"
#include "core/similarity_function.h"
#include "corpus/dataset_io.h"
#include "corpus/document.h"
#include "corpus/generator.h"
#include "corpus/presets.h"
#include "corpus/resolution_io.h"
#include "corpus/stats.h"
#include "eval/calibration.h"
#include "eval/metrics.h"
#include "eval/significance.h"
#include "extract/feature_extractor.h"
#include "extract/gazetteer.h"
#include "graph/agglomerative.h"
#include "graph/clustering.h"
#include "graph/components.h"
#include "graph/correlation_clustering.h"

#endif  // WEBER_CORE_WEBER_H_

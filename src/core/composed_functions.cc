#include "core/composed_functions.h"

#include <algorithm>
#include <functional>

#include "extract/url.h"
#include "text/person_name.h"
#include "text/phonetic.h"
#include "text/string_similarity.h"
#include "text/vector_similarity.h"

namespace weber {
namespace core {

namespace {

using extract::FeatureBundle;
using text::SparseVector;

bool IsVectorFeature(PageFeature feature) {
  switch (feature) {
    case PageFeature::kWeightedConcepts:
    case PageFeature::kConcepts:
    case PageFeature::kOrganizations:
    case PageFeature::kOtherPersons:
    case PageFeature::kTfIdf:
      return true;
    default:
      return false;
  }
}

bool IsVectorMeasure(PairMeasure measure) {
  return static_cast<int>(measure) < 10;
}

const SparseVector& VectorOf(const FeatureBundle& fb, PageFeature feature) {
  switch (feature) {
    case PageFeature::kWeightedConcepts:
      return fb.weighted_concepts;
    case PageFeature::kConcepts:
      return fb.concepts;
    case PageFeature::kOrganizations:
      return fb.organizations;
    case PageFeature::kOtherPersons:
      return fb.other_persons;
    default:
      return fb.tfidf;
  }
}

const std::string& StringOf(const FeatureBundle& fb, PageFeature feature) {
  switch (feature) {
    case PageFeature::kMostFrequentName:
      return fb.most_frequent_name;
    case PageFeature::kClosestName:
      return fb.closest_name;
    default:
      return fb.url;
  }
}

/// A similarity function assembled from closures.
class ComposedFunction final : public SimilarityFunction {
 public:
  using Body = std::function<double(const FeatureBundle&, const FeatureBundle&)>;

  ComposedFunction(std::string name, std::string description, Body body)
      : name_(std::move(name)),
        description_(std::move(description)),
        body_(std::move(body)) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  double Compute(const FeatureBundle& a, const FeatureBundle& b) const override {
    return std::clamp(body_(a, b), 0.0, 1.0);
  }

 private:
  std::string name_;
  std::string description_;
  Body body_;
};

ComposedFunction::Body VectorBody(PageFeature feature, PairMeasure measure) {
  return [feature, measure](const FeatureBundle& a, const FeatureBundle& b) {
    const SparseVector& va = VectorOf(a, feature);
    const SparseVector& vb = VectorOf(b, feature);
    switch (measure) {
      case PairMeasure::kCosine:
        return text::CosineSimilarity(va, vb);
      case PairMeasure::kPearson: {
        // Stale dimensions are clamped (and counted) inside
        // PearsonSimilarity itself.
        const int dim = std::max(a.tfidf_dimension, b.tfidf_dimension);
        return text::PearsonSimilarity(va, vb, dim);
      }
      case PairMeasure::kExtendedJaccard:
        return text::ExtendedJaccardSimilarity(va, vb);
      case PairMeasure::kJaccard:
        return text::JaccardOverlap(va, vb);
      case PairMeasure::kDice:
        return text::DiceOverlap(va, vb);
      case PairMeasure::kOverlapCoefficient:
        return text::OverlapCoefficient(va, vb);
      case PairMeasure::kSaturatingOverlap:
      default:
        return text::SaturatingOverlap(va, vb);
    }
  };
}

ComposedFunction::Body StringBody(PageFeature feature, PairMeasure measure) {
  return [feature, measure](const FeatureBundle& a, const FeatureBundle& b) {
    const std::string& sa = StringOf(a, feature);
    const std::string& sb = StringOf(b, feature);
    switch (measure) {
      case PairMeasure::kUrlTiers:
        return extract::UrlSimilarity(sa, sb);
      case PairMeasure::kNameCompatibility:
        return text::NameCompatibilitySimilarity(sa, sb);
      case PairMeasure::kSoundex:
        return text::SoundexSimilarity(sa, sb);
      case PairMeasure::kPhoneticName:
        return text::PhoneticNameSimilarity(sa, sb);
      case PairMeasure::kJaroWinkler:
        if (sa.empty() || sb.empty()) return 0.0;
        return text::JaroWinklerSimilarity(sa, sb);
      case PairMeasure::kLevenshtein:
        if (sa.empty() || sb.empty()) return 0.0;
        return text::LevenshteinSimilarity(sa, sb);
      case PairMeasure::kNgram:
      default:
        if (sa.empty() || sb.empty()) return 0.0;
        return text::NgramSimilarity(sa, sb);
    }
  };
}

}  // namespace

std::string_view PageFeatureToString(PageFeature feature) {
  switch (feature) {
    case PageFeature::kWeightedConcepts:
      return "weighted-concepts";
    case PageFeature::kConcepts:
      return "concepts";
    case PageFeature::kOrganizations:
      return "organizations";
    case PageFeature::kOtherPersons:
      return "other-persons";
    case PageFeature::kTfIdf:
      return "tfidf";
    case PageFeature::kMostFrequentName:
      return "most-frequent-name";
    case PageFeature::kClosestName:
      return "closest-name";
    case PageFeature::kUrl:
      return "url";
  }
  return "unknown";
}

std::string_view PairMeasureToString(PairMeasure measure) {
  switch (measure) {
    case PairMeasure::kCosine:
      return "cosine";
    case PairMeasure::kPearson:
      return "pearson";
    case PairMeasure::kExtendedJaccard:
      return "extended-jaccard";
    case PairMeasure::kJaccard:
      return "jaccard";
    case PairMeasure::kDice:
      return "dice";
    case PairMeasure::kOverlapCoefficient:
      return "overlap-coefficient";
    case PairMeasure::kSaturatingOverlap:
      return "saturating-overlap";
    case PairMeasure::kJaroWinkler:
      return "jaro-winkler";
    case PairMeasure::kLevenshtein:
      return "levenshtein";
    case PairMeasure::kNgram:
      return "ngram";
    case PairMeasure::kNameCompatibility:
      return "name-compatibility";
    case PairMeasure::kUrlTiers:
      return "url-tiers";
    case PairMeasure::kSoundex:
      return "soundex";
    case PairMeasure::kPhoneticName:
      return "phonetic-name";
  }
  return "unknown";
}

Result<std::unique_ptr<SimilarityFunction>> ComposeFunction(
    PageFeature feature, PairMeasure measure, std::string name) {
  const bool vector_feature = IsVectorFeature(feature);
  if (vector_feature != IsVectorMeasure(measure)) {
    return Status::InvalidArgument(
        "ComposeFunction: measure '", std::string(PairMeasureToString(measure)),
        "' does not apply to feature '",
        std::string(PageFeatureToString(feature)), "'");
  }
  std::string description = std::string(PageFeatureToString(feature)) + " / " +
                            std::string(PairMeasureToString(measure));
  ComposedFunction::Body body = vector_feature ? VectorBody(feature, measure)
                                               : StringBody(feature, measure);
  return std::unique_ptr<SimilarityFunction>(std::make_unique<ComposedFunction>(
      std::move(name), std::move(description), std::move(body)));
}

std::vector<std::unique_ptr<SimilarityFunction>> MakeExtendedFunctions() {
  std::vector<std::unique_ptr<SimilarityFunction>> fns =
      MakeStandardFunctions();
  struct Extra {
    PageFeature feature;
    PairMeasure measure;
    const char* name;
  };
  const Extra extras[] = {
      {PageFeature::kClosestName, PairMeasure::kNameCompatibility, "F11"},
      {PageFeature::kMostFrequentName, PairMeasure::kNameCompatibility, "F12"},
      {PageFeature::kConcepts, PairMeasure::kJaccard, "F13"},
      {PageFeature::kOrganizations, PairMeasure::kDice, "F14"},
      {PageFeature::kTfIdf, PairMeasure::kJaccard, "F15"},
      {PageFeature::kUrl, PairMeasure::kJaroWinkler, "F16"},
  };
  for (const Extra& e : extras) {
    fns.push_back(
        std::move(ComposeFunction(e.feature, e.measure, e.name)).ValueOrDie());
  }
  return fns;
}

const std::vector<std::string> kSubsetExtended16 = {
    "F1", "F2",  "F3",  "F4",  "F5",  "F6",  "F7",  "F8",
    "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16"};

}  // namespace core
}  // namespace weber

#include "core/decision.h"

#include <algorithm>

namespace weber {
namespace core {

Status ThresholdCriterion::Fit(
    const std::vector<ml::LabeledSimilarity>& training, Rng* /*rng*/) {
  WEBER_ASSIGN_OR_RETURN(fit_, ml::FitOptimalThreshold(training));
  // Calibrate the two-sided link rates.
  int above = 0, above_links = 0, below = 0, below_links = 0;
  for (const ml::LabeledSimilarity& s : training) {
    if (s.value >= fit_.threshold) {
      ++above;
      above_links += s.link ? 1 : 0;
    } else {
      ++below;
      below_links += s.link ? 1 : 0;
    }
  }
  link_rate_above_ = above > 0 ? static_cast<double>(above_links) / above : 1.0;
  link_rate_below_ = below > 0 ? static_cast<double>(below_links) / below : 0.0;
  fitted_ = true;
  return Status::OK();
}

bool ThresholdCriterion::Compile(CompiledDecision* out) const {
  if (!fitted_) return false;
  out->boundaries = {fit_.threshold};
  out->probs = {link_rate_below_, link_rate_above_};
  out->clamp_input = false;
  // Decide is `value >= threshold` (NaN compares below), independent of the
  // link rates — the upper rate may itself sit below 0.5.
  out->nan_in_top_region = false;
  out->decide_region = 1;
  return true;
}

std::unique_ptr<RegionCriterion> RegionCriterion::EqualWidth(int bins) {
  return std::unique_ptr<RegionCriterion>(
      new RegionCriterion(ml::RegionScheme::kEqualWidth, bins,
                          "regions-eq" + std::to_string(bins)));
}

std::unique_ptr<RegionCriterion> RegionCriterion::KMeans(int k) {
  return std::unique_ptr<RegionCriterion>(
      new RegionCriterion(ml::RegionScheme::kKMeans, k,
                          "regions-km" + std::to_string(k)));
}

Status RegionCriterion::Fit(const std::vector<ml::LabeledSimilarity>& training,
                            Rng* rng) {
  Result<ml::RegionAccuracyModel> fitted =
      scheme_ == ml::RegionScheme::kEqualWidth
          ? ml::RegionAccuracyModel::FitEqualWidth(training, param_)
          : ml::RegionAccuracyModel::FitKMeans(training, param_, rng);
  if (!fitted.ok()) return fitted.status();
  model_ = std::make_unique<ml::RegionAccuracyModel>(std::move(*fitted));
  int correct = 0;
  for (const ml::LabeledSimilarity& s : training) {
    if (model_->Decide(s.value) == s.link) ++correct;
  }
  train_accuracy_ = training.empty()
                        ? 0.0
                        : static_cast<double>(correct) / training.size();
  return Status::OK();
}

bool RegionCriterion::Compile(CompiledDecision* out) const {
  if (model_ == nullptr) return false;
  out->boundaries = model_->regions().boundaries();
  out->probs = model_->region_accuracies();
  // RegionModel::RegionOf clamps into [0, 1] and then upper_bounds the
  // boundaries (NaN survives the clamp and lands in the top region).
  out->clamp_input = true;
  out->nan_in_top_region = true;
  out->decide_region = -1;
  return true;
}

Status IsotonicCriterion::Fit(
    const std::vector<ml::LabeledSimilarity>& training, Rng* /*rng*/) {
  WEBER_ASSIGN_OR_RETURN(ml::IsotonicModel fitted,
                         ml::IsotonicModel::Fit(training));
  model_ = std::make_unique<ml::IsotonicModel>(std::move(fitted));
  int correct = 0;
  for (const ml::LabeledSimilarity& s : training) {
    if (Decide(s.value) == s.link) ++correct;
  }
  train_accuracy_ = training.empty()
                        ? 0.0
                        : static_cast<double>(correct) / training.size();
  return Status::OK();
}

bool IsotonicCriterion::Compile(CompiledDecision* out) const {
  if (model_ == nullptr) return false;
  // IsotonicModel::LinkProbability upper_bounds the knots and takes the
  // preceding level (values below the first knot get the first level), so
  // the compiled regions are delimited by knots[1:]: region 0 covers both
  // "below knots[0]" and segment 0, which share levels[0].
  const std::vector<double>& knots = model_->knots();
  out->boundaries.assign(knots.begin() + (knots.empty() ? 0 : 1), knots.end());
  out->probs = model_->levels();
  out->clamp_input = false;
  out->nan_in_top_region = true;
  out->decide_region = -1;
  return true;
}

std::vector<std::unique_ptr<DecisionCriterion>> MakeStandardCriteria(
    int equal_width_bins, int kmeans_k) {
  std::vector<std::unique_ptr<DecisionCriterion>> criteria;
  criteria.push_back(std::make_unique<ThresholdCriterion>());
  criteria.push_back(RegionCriterion::EqualWidth(equal_width_bins));
  criteria.push_back(RegionCriterion::KMeans(kmeans_k));
  return criteria;
}

std::vector<std::unique_ptr<DecisionCriterion>> MakeThresholdOnlyCriteria() {
  std::vector<std::unique_ptr<DecisionCriterion>> criteria;
  criteria.push_back(std::make_unique<ThresholdCriterion>());
  return criteria;
}

std::vector<CriterionFactory> MakeStandardCriterionFactories(
    int equal_width_bins, int kmeans_k) {
  return {
      [] { return std::unique_ptr<DecisionCriterion>(
               std::make_unique<ThresholdCriterion>()); },
      [equal_width_bins] {
        return std::unique_ptr<DecisionCriterion>(
            RegionCriterion::EqualWidth(equal_width_bins));
      },
      [kmeans_k] {
        return std::unique_ptr<DecisionCriterion>(
            RegionCriterion::KMeans(kmeans_k));
      },
  };
}

std::vector<CriterionFactory> MakeThresholdOnlyCriterionFactories() {
  return {[] {
    return std::unique_ptr<DecisionCriterion>(
        std::make_unique<ThresholdCriterion>());
  }};
}

Result<double> CrossValidatedAccuracy(
    const CriterionFactory& factory,
    const std::vector<ml::LabeledSimilarity>& training, int folds,
    Rng* rng) {
  if (training.empty()) {
    return Status::InvalidArgument("CrossValidatedAccuracy: empty sample");
  }
  folds = std::max(2, folds);
  if (static_cast<int>(training.size()) < 2 * folds) {
    // Too small to hold anything out; fall back to in-sample accuracy.
    auto criterion = factory();
    WEBER_RETURN_NOT_OK(criterion->Fit(training, rng));
    return criterion->train_accuracy();
  }
  std::vector<int> order(training.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng->Shuffle(&order);

  int correct = 0, total = 0;
  for (int f = 0; f < folds; ++f) {
    std::vector<ml::LabeledSimilarity> fit_part, held_out;
    for (size_t i = 0; i < order.size(); ++i) {
      if (static_cast<int>(i) % folds == f) {
        held_out.push_back(training[order[i]]);
      } else {
        fit_part.push_back(training[order[i]]);
      }
    }
    if (fit_part.empty() || held_out.empty()) continue;
    auto criterion = factory();
    WEBER_RETURN_NOT_OK(criterion->Fit(fit_part, rng));
    for (const ml::LabeledSimilarity& s : held_out) {
      if (criterion->Decide(s.value) == s.link) ++correct;
      ++total;
    }
  }
  if (total == 0) {
    auto criterion = factory();
    WEBER_RETURN_NOT_OK(criterion->Fit(training, rng));
    return criterion->train_accuracy();
  }
  return static_cast<double>(correct) / total;
}

}  // namespace core
}  // namespace weber

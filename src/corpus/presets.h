// Dataset presets matching the statistics of the paper's two evaluation
// corpora (Section V-A1).

#ifndef WEBER_CORPUS_PRESETS_H_
#define WEBER_CORPUS_PRESETS_H_

#include <cstdint>

#include "corpus/generator.h"

namespace weber {
namespace corpus {

/// WWW'05-like corpus (Bekkerman & McCallum): the paper's 12 ambiguous
/// surnames, ~100 pages per name, per-name cluster counts spanning the
/// published 2..61 range, and per-name feature-reliability profiles chosen
/// so that different similarity functions dominate for different names.
GeneratorConfig Www05Config(uint64_t seed = 0x77705ULL);

/// WePS-2-like corpus: 10 ACL'08-style ambiguous names, 150 pages per name,
/// noisier pages than WWW'05 (the paper reports systematically lower scores
/// on WePS).
GeneratorConfig WepsConfig(uint64_t seed = 0x3E952ULL);

/// A small smoke-test corpus (3 names, 30 docs each) for tests and the
/// quickstart example.
GeneratorConfig TinyConfig(uint64_t seed = 0x714FULL);

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_PRESETS_H_

#include "corpus/presets.h"

#include <algorithm>

namespace weber {
namespace corpus {

namespace {

/// Builds a NameSpec with a reliability profile indexed by `profile`.
/// Profiles rotate which feature family is strong for the name, so no single
/// similarity function wins everywhere (the paper's Table III observation:
/// "each function performs differently for different persons").
NameSpec MakeName(const char* last_name, int docs, int entities, double skew,
                  int profile, double hardness) {
  // Global difficulty calibration: shifts every name's noise level so the
  // absolute metric values land near the paper's (Table II).
  hardness = std::min(1.0, hardness + 0.15);
  NameSpec spec;
  spec.last_name = last_name;
  spec.num_documents = docs;
  spec.num_entities = entities;
  spec.cluster_skew = skew;

  // Base difficulty scaling: `hardness` in [0,1] raises noise and dropout.
  spec.sparse_page_prob = 0.10 + 0.25 * hardness;
  spec.topic_noise = 0.20 + 0.35 * hardness;
  spec.concept_drop_prob = 0.10 + 0.25 * hardness;
  spec.topic_collision_prob = 0.10 + 0.40 * hardness;
  spec.boilerplate_prob = 0.20 + 0.30 * hardness;
  spec.name_variant_prob = 0.25 + 0.30 * hardness;
  spec.celebrity_mention_prob = 0.20 + 0.30 * hardness;

  // Feature reliability rotation: each profile makes one feature family
  // strong and the others weak, so no function subset dominates every name.
  switch (profile % 4) {
    case 0:  // URL-strong name: personal homepages dominate.
      spec.url_home_prob = 0.85;
      spec.org_mention_prob = 0.30;
      spec.associate_mention_prob = 0.25;
      break;
    case 1:  // Social name: associates dominate.
      spec.url_home_prob = 0.25;
      spec.org_mention_prob = 0.35;
      spec.associate_mention_prob = 0.80;
      break;
    case 2:  // Institutional name: organizations dominate.
      spec.url_home_prob = 0.30;
      spec.org_mention_prob = 0.85;
      spec.associate_mention_prob = 0.25;
      break;
    case 3:  // Topical name: concepts/words dominate.
      spec.url_home_prob = 0.25;
      spec.org_mention_prob = 0.30;
      spec.associate_mention_prob = 0.30;
      spec.concept_drop_prob *= 0.3;
      spec.topic_noise *= 0.6;
      spec.boilerplate_prob *= 0.7;
      break;
  }
  return spec;
}

}  // namespace

GeneratorConfig Www05Config(uint64_t seed) {
  GeneratorConfig cfg;
  cfg.dataset_name = "www05-synthetic";
  cfg.seed = seed;
  // The 12 WWW'05 surnames with entity counts spanning the published
  // 2..61-cluster range, ~100 pages each, difficulty roughly increasing
  // with the entity count (as in the real data, where "Cheyer" is nearly
  // unambiguous and "Voss" shatters into 61 clusters).
  cfg.names = {
      MakeName("cheyer", 97, 2, 1.6, 0, 0.05),
      MakeName("kaelbling", 98, 3, 1.5, 3, 0.10),
      MakeName("hardt", 99, 5, 1.4, 2, 0.25),
      MakeName("cohen", 100, 7, 1.3, 1, 0.30),
      MakeName("israel", 99, 8, 1.3, 2, 0.40),
      MakeName("mulford", 98, 12, 1.2, 0, 0.50),
      MakeName("mark", 100, 20, 1.1, 1, 0.55),
      MakeName("ng", 101, 22, 1.1, 3, 0.50),
      MakeName("mccallum", 100, 25, 1.0, 2, 0.45),
      MakeName("mitchell", 100, 28, 1.0, 1, 0.60),
      MakeName("pereira", 99, 32, 0.9, 0, 0.65),
      MakeName("voss", 100, 55, 0.8, 3, 0.70),
  };
  return cfg;
}

GeneratorConfig WepsConfig(uint64_t seed) {
  GeneratorConfig cfg;
  cfg.dataset_name = "weps2-synthetic";
  cfg.seed = seed;
  // 10 ACL'08-style names, 150 pages each (WePS-2 used the top-150 Yahoo
  // results). Noise is globally higher than WWW'05: the paper's WePS scores
  // run ~0.08 Fp below its WWW'05 scores.
  cfg.names = {
      MakeName("johnson", 150, 10, 1.2, 0, 0.45),
      MakeName("meyer", 150, 14, 1.1, 1, 0.50),
      MakeName("fisher", 150, 18, 1.1, 2, 0.55),
      MakeName("sanders", 150, 22, 1.0, 3, 0.60),
      MakeName("lambert", 150, 12, 1.2, 1, 0.55),
      MakeName("watson", 150, 26, 1.0, 2, 0.65),
      MakeName("griffin", 150, 16, 1.1, 0, 0.60),
      MakeName("hayes", 150, 30, 0.9, 3, 0.70),
      MakeName("jordan", 150, 20, 1.0, 1, 0.65),
      MakeName("turner", 150, 35, 0.9, 2, 0.70),
  };
  // WePS pages are longer on average (full Web pages, not filtered
  // snippets).
  cfg.min_words_per_page = 90;
  cfg.max_words_per_page = 280;
  return cfg;
}

GeneratorConfig TinyConfig(uint64_t seed) {
  GeneratorConfig cfg;
  cfg.dataset_name = "tiny-synthetic";
  cfg.seed = seed;
  cfg.names = {
      MakeName("cohen", 30, 3, 1.3, 0, 0.2),
      MakeName("baker", 30, 4, 1.2, 1, 0.3),
      MakeName("morgan", 30, 2, 1.5, 2, 0.2),
  };
  cfg.num_topics = 24;
  return cfg;
}

}  // namespace corpus
}  // namespace weber

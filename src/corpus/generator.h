// SyntheticWebGenerator: builds labeled Web-people-search corpora with the
// statistical structure of the paper's WWW'05 and WePS-2 datasets (which are
// not redistributable): per ambiguous name, a block of pages generated from
// hidden personas, with heterogeneous and partially missing features —
// exactly the regime that motivates the paper's region-accuracy machinery.
//
// Hidden universe model:
//   * A global topic space; each topic owns concept phrases and content
//     words.
//   * Each ambiguous name has K personas; a persona has a first name,
//     1-2 topics, a few organizations, associates (other people), home
//     locations and a home Web domain.
//   * Each page is rendered from one persona: body text mixes function
//     words, persona-topic words and background noise; concept phrases,
//     organization/associate/location mentions and the persona's name are
//     embedded subject to per-name dropout probabilities; the URL lives on
//     the persona's home domain or on a shared hosting domain.
//   * "Sparse" pages (the paper's incomplete-information pages) drop most
//     features.
//
// The generator also produces the matching Gazetteer — the dictionary an
// NER service like OpenCalais would have of this universe's entities.

#ifndef WEBER_CORPUS_GENERATOR_H_
#define WEBER_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "corpus/document.h"
#include "extract/gazetteer.h"

namespace weber {
namespace corpus {

/// Per-ambiguous-name generation parameters. The per-name reliability knobs
/// are what make different similarity functions win for different names
/// (the paper's Table III heterogeneity).
struct NameSpec {
  /// The ambiguous last name; the block's search query.
  std::string last_name;

  int num_documents = 100;

  /// Number of distinct real-world persons carrying the name (2..61 in
  /// WWW'05).
  int num_entities = 5;

  /// Zipf skew of entity sizes: higher = one dominant person plus many
  /// near-singletons.
  double cluster_skew = 1.1;

  /// Probability that a page lives on its persona's home domain (F2's
  /// signal quality).
  double url_home_prob = 0.55;

  /// Probability that a given persona organization is mentioned on a page
  /// (F5's signal quality).
  double org_mention_prob = 0.55;

  /// Probability that a given associate is mentioned (F6's signal quality).
  double associate_mention_prob = 0.45;

  /// Probability that a page carries no concept phrases at all (hurts
  /// F1/F4).
  double concept_drop_prob = 0.12;

  /// Probability that a page is sparse: short text, most features dropped.
  double sparse_page_prob = 0.15;

  /// Fraction of off-topic (noise) words/concepts mixed into the page.
  double topic_noise = 0.25;

  /// Probability that two personas of this name share their primary topic
  /// (inherently confusable persons).
  double topic_collision_prob = 0.15;

  /// Probability that a full-name mention is rendered in its initial form
  /// ("a cohen" instead of "adam cohen"); degrades F3/F7 the way imperfect
  /// extraction does on real pages.
  double name_variant_prob = 0.30;

  /// Probability that a page mentions a globally famous person (shared
  /// across all personas); pollutes F6's "other persons" overlap.
  double celebrity_mention_prob = 0.25;

  /// Probability that a page carries Web boilerplate concepts ("curriculum
  /// vitae", "photo gallery", ...). Two boilerplate-heavy pages share
  /// several concepts regardless of who they are about, which makes the
  /// *high* end of F4's overlap range unreliable — the non-monotone
  /// accuracy structure of Figure 1 that region criteria exploit and a
  /// single threshold cannot.
  double boilerplate_prob = 0.30;
};

struct GeneratorConfig {
  std::string dataset_name = "synthetic";
  std::vector<NameSpec> names;
  uint64_t seed = 0x5EEDULL;

  // ---- Universe scale ----
  int num_topics = 64;
  int concepts_per_topic = 20;
  int words_per_topic = 100;
  int num_background_words = 600;
  int num_organizations = 160;
  int num_locations = 64;
  /// Shared hosting domains; fewer domains = more cross-person URL
  /// collisions (pages of different people on the same host), which makes
  /// F2's value-to-link relationship non-monotone.
  int num_hosting_domains = 4;
  /// Globally famous people mentioned across unrelated pages.
  int num_celebrities = 24;
  /// Generic Web concepts shared across all pages (low gazetteer weight, so
  /// the *weighted* concept function F1 resists them while the raw overlap
  /// count F4 does not).
  int num_generic_concepts = 12;
  /// Zipf skew of organization popularity: personas draw their affiliations
  /// from this distribution, so popular organizations are shared across
  /// unrelated personas (F5 cross-overlap noise).
  double org_popularity_skew = 0.85;

  // ---- Persona scale ----
  int min_orgs_per_persona = 1;
  int max_orgs_per_persona = 3;
  int min_associates_per_persona = 2;
  int max_associates_per_persona = 6;

  // ---- Page scale ----
  int min_words_per_page = 70;
  int max_words_per_page = 220;
  /// Probability of emitting a function word at each body-text position.
  double function_word_rate = 0.35;
  /// Zipf exponent for word/concept choice within a topic.
  double zipf_exponent = 1.05;
};

/// A generated corpus plus its entity dictionary and hidden truth metadata.
struct SyntheticData {
  Dataset dataset;
  extract::Gazetteer gazetteer;

  /// Full names of each block's personas: persona_names[block][entity].
  std::vector<std::vector<std::string>> persona_names;
};

/// Two duplicate-free collections over the same hidden personas, for
/// clean-clean ER. Blocks are parallel: left.blocks[b] and right.blocks[b]
/// cover the same ambiguous name, and truth[b] is the ground-truth partial
/// bijection between their document positions.
struct CleanCleanData {
  Dataset left;
  Dataset right;
  extract::Gazetteer gazetteer;

  /// Per block, the (left document, right document) pairs that are the
  /// same real-world person, sorted by left document. Documents not in any
  /// pair have no counterpart in the other collection.
  std::vector<std::vector<std::pair<int, int>>> truth;
};

/// Deterministic corpus generator; one Generate() call per corpus.
class SyntheticWebGenerator {
 public:
  explicit SyntheticWebGenerator(GeneratorConfig config)
      : config_(std::move(config)) {}

  /// Builds the corpus. Returns InvalidArgument for inconsistent
  /// configurations (no names, more entities than documents, ...).
  Result<SyntheticData> Generate() const;

  /// Builds two duplicate-free collections for clean-clean matching: per
  /// block, every persona gets exactly one page in the left collection; a
  /// round(overlap_fraction * num_entities) subset of those personas (at
  /// least one) also gets one page in the right collection, padded with
  /// fresh right-only personas so both sides have num_entities pages and
  /// both sides contain unmatchable distractors. NameSpec::num_documents
  /// is ignored in this mode. overlap_fraction must be in (0, 1].
  Result<CleanCleanData> GenerateCleanClean(double overlap_fraction) const;

  const GeneratorConfig& config() const { return config_; }

  /// Splits `total` into `parts` positive integers with Zipf-skewed sizes
  /// (descending). Exposed for tests.
  static std::vector<int> SkewedPartition(int total, int parts, double skew,
                                          Rng* rng);

 private:
  GeneratorConfig config_;
};

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_GENERATOR_H_

// Line-oriented text serialization of datasets and gazetteers, so generated
// corpora can be inspected, versioned, and re-loaded without regeneration.

#ifndef WEBER_CORPUS_DATASET_IO_H_
#define WEBER_CORPUS_DATASET_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "corpus/document.h"
#include "extract/gazetteer.h"

namespace weber {
namespace corpus {

/// Writes a dataset in the WEBER text format:
///
///   #dataset <name>
///   #block <query> <num_docs>
///   #doc <id> <entity_label>
///   #url <url>
///   #text <num_lines>
///   <text lines...>
///
/// Text is stored verbatim with an explicit line count, so no escaping is
/// required.
Status SaveDataset(const Dataset& dataset, std::ostream& os);
Status SaveDatasetToFile(const Dataset& dataset, const std::string& path);

/// Dataset loading behavior.
struct LoadOptions {
  /// Strict (default): any malformed line fails the whole file with
  /// Corruption. Lenient: a corrupt block is skipped — the parser records
  /// the error, scans forward to the next `#block` directive and keeps
  /// going — so one bad block does not discard an otherwise usable file.
  bool lenient = false;

  /// LoadDatasetFromFile only: retry transient IOError failures (open
  /// failures, injected `dataset_io.read` faults) up to this many extra
  /// attempts with bounded exponential backoff. Corruption is never
  /// retried; re-reading a malformed file cannot fix it.
  int max_retries = 0;

  /// Base backoff before the first retry; doubles per attempt, capped at
  /// one second.
  int retry_backoff_ms = 10;
};

/// One skipped block (lenient mode).
struct BlockLoadError {
  std::string query;  ///< May be empty when the #block header itself failed.
  int line_no = 0;
  Status status;
};

/// What loading had to tolerate; all-zero/empty for a clean strict load.
struct LoadReport {
  int blocks_loaded = 0;
  int blocks_skipped = 0;
  int retries = 0;
  std::vector<BlockLoadError> block_errors;
};

/// Parses the WEBER text format. Malformed input yields Corruption with the
/// offending line number (strict mode) or a per-block LoadReport entry
/// (lenient mode). `report` may be null.
Result<Dataset> LoadDataset(std::istream& is);
Result<Dataset> LoadDataset(std::istream& is, const LoadOptions& options,
                            LoadReport* report);
Result<Dataset> LoadDatasetFromFile(const std::string& path);
Result<Dataset> LoadDatasetFromFile(const std::string& path,
                                    const LoadOptions& options,
                                    LoadReport* report);

/// Gazetteer serialization: one "type<TAB>weight<TAB>surface" line per
/// entry, preceded by "#gazetteer <count>".
Status SaveGazetteer(const extract::Gazetteer& gazetteer, std::ostream& os);
Result<extract::Gazetteer> LoadGazetteer(std::istream& is);

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_DATASET_IO_H_

// Line-oriented text serialization of datasets and gazetteers, so generated
// corpora can be inspected, versioned, and re-loaded without regeneration.

#ifndef WEBER_CORPUS_DATASET_IO_H_
#define WEBER_CORPUS_DATASET_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "corpus/document.h"
#include "extract/gazetteer.h"

namespace weber {
namespace corpus {

/// Writes a dataset in the WEBER text format:
///
///   #dataset <name>
///   #block <query> <num_docs>
///   #doc <id> <entity_label>
///   #url <url>
///   #text <num_lines>
///   <text lines...>
///
/// Text is stored verbatim with an explicit line count, so no escaping is
/// required.
Status SaveDataset(const Dataset& dataset, std::ostream& os);
Status SaveDatasetToFile(const Dataset& dataset, const std::string& path);

/// Parses the WEBER text format. Malformed input yields Corruption with the
/// offending line number.
Result<Dataset> LoadDataset(std::istream& is);
Result<Dataset> LoadDatasetFromFile(const std::string& path);

/// Gazetteer serialization: one "type<TAB>weight<TAB>surface" line per
/// entry, preceded by "#gazetteer <count>".
Status SaveGazetteer(const extract::Gazetteer& gazetteer, std::ostream& os);
Result<extract::Gazetteer> LoadGazetteer(std::istream& is);

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_DATASET_IO_H_

#include "corpus/resolution_io.h"

#include <fstream>
#include <unordered_map>

#include "common/string_util.h"

namespace weber {
namespace corpus {

Status SaveResolutions(const std::vector<BlockResolutionRecord>& resolutions,
                       std::ostream& os) {
  for (const BlockResolutionRecord& r : resolutions) {
    if (static_cast<int>(r.document_ids.size()) != r.clustering.num_items()) {
      return Status::InvalidArgument(
          "resolution for '", r.query,
          "': document id count does not match clustering size");
    }
    os << "#resolution " << r.query << " " << r.document_ids.size() << "\n";
    for (size_t i = 0; i < r.document_ids.size(); ++i) {
      os << r.document_ids[i] << "\t" << r.clustering.label(static_cast<int>(i))
         << "\n";
    }
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveResolutionsToFile(
    const std::vector<BlockResolutionRecord>& resolutions,
    const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: ", path);
  return SaveResolutions(resolutions, out);
}

Result<std::vector<BlockResolutionRecord>> LoadResolutions(std::istream& is) {
  std::vector<BlockResolutionRecord> out;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view view = TrimWhitespace(line);
    if (view.empty()) continue;
    if (!StartsWith(view, "#resolution ")) {
      return Status::Corruption("expected #resolution at line ", line_no);
    }
    auto parts = SplitWhitespace(view.substr(12));
    if (parts.size() != 2) {
      return Status::Corruption("malformed #resolution at line ", line_no);
    }
    BlockResolutionRecord record;
    record.query = parts[0];
    int count = 0;
    if (!ParseInt(parts[1], &count) || count < 0) {
      return Status::Corruption("bad document count at line ", line_no);
    }
    std::vector<int> labels;
    labels.reserve(count);
    for (int i = 0; i < count; ++i) {
      if (!std::getline(is, line)) {
        return Status::Corruption("unexpected EOF in resolution '",
                                  record.query, "'");
      }
      ++line_no;
      auto fields = Split(line, '\t');
      if (fields.size() != 2) {
        return Status::Corruption("malformed resolution row at line ", line_no);
      }
      int label = 0;
      if (!ParseInt(fields[1], &label)) {
        return Status::Corruption("bad cluster label at line ", line_no);
      }
      record.document_ids.push_back(fields[0]);
      labels.push_back(label);
    }
    record.clustering = graph::Clustering::FromLabels(labels);
    out.push_back(std::move(record));
  }
  return out;
}

Result<std::vector<BlockResolutionRecord>> LoadResolutionsFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: ", path);
  return LoadResolutions(in);
}

Result<graph::Clustering> AlignResolution(
    const Block& block, const BlockResolutionRecord& record) {
  if (static_cast<int>(record.document_ids.size()) != block.num_documents()) {
    return Status::InvalidArgument(
        "resolution for '", record.query, "' covers ",
        record.document_ids.size(), " documents, block has ",
        block.num_documents());
  }
  std::unordered_map<std::string, int> position;
  for (size_t i = 0; i < record.document_ids.size(); ++i) {
    if (!position.emplace(record.document_ids[i], static_cast<int>(i)).second) {
      return Status::InvalidArgument("duplicate document id '",
                                     record.document_ids[i],
                                     "' in resolution");
    }
  }
  std::vector<int> labels(block.num_documents());
  for (int d = 0; d < block.num_documents(); ++d) {
    auto it = position.find(block.documents[d].id);
    if (it == position.end()) {
      return Status::InvalidArgument("resolution is missing document '",
                                     block.documents[d].id, "'");
    }
    labels[d] = record.clustering.label(it->second);
  }
  return graph::Clustering::FromLabels(labels);
}

}  // namespace corpus
}  // namespace weber

#include "corpus/stats.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "common/table_printer.h"

namespace weber {
namespace corpus {

BlockStats ComputeBlockStats(const Block& block) {
  BlockStats stats;
  stats.query = block.query;
  stats.num_documents = block.num_documents();

  std::unordered_map<int, int> sizes;
  for (int label : block.entity_labels) sizes[label] += 1;
  stats.num_entities = static_cast<int>(sizes.size());
  for (const auto& [label, size] : sizes) {
    stats.cluster_sizes.push_back(size);
    if (size == 1) stats.singleton_clusters += 1;
  }
  std::sort(stats.cluster_sizes.rbegin(), stats.cluster_sizes.rend());
  stats.largest_cluster =
      stats.cluster_sizes.empty() ? 0 : stats.cluster_sizes.front();

  long long intra = 0;
  for (int s : stats.cluster_sizes) {
    intra += static_cast<long long>(s) * (s - 1) / 2;
  }
  long long total = static_cast<long long>(stats.num_documents) *
                    (stats.num_documents - 1) / 2;
  stats.link_rate =
      total > 0 ? static_cast<double>(intra) / static_cast<double>(total) : 0.0;

  double tokens = 0.0, distinct = 0.0;
  for (const Document& d : block.documents) {
    std::vector<std::string> toks = SplitWhitespace(d.text);
    tokens += static_cast<double>(toks.size());
    std::unordered_set<std::string> unique(toks.begin(), toks.end());
    distinct += static_cast<double>(unique.size());
  }
  if (stats.num_documents > 0) {
    stats.mean_tokens_per_document = tokens / stats.num_documents;
    stats.mean_distinct_tokens = distinct / stats.num_documents;
  }
  return stats;
}

DatasetStats ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name;
  stats.num_blocks = dataset.num_blocks();
  stats.min_entities = dataset.num_blocks() > 0 ? 1 << 30 : 0;
  double entity_sum = 0.0, link_sum = 0.0;
  for (const Block& block : dataset.blocks) {
    BlockStats b = ComputeBlockStats(block);
    stats.total_documents += b.num_documents;
    stats.min_entities = std::min(stats.min_entities, b.num_entities);
    stats.max_entities = std::max(stats.max_entities, b.num_entities);
    entity_sum += b.num_entities;
    link_sum += b.link_rate;
    stats.blocks.push_back(std::move(b));
  }
  if (stats.num_blocks > 0) {
    stats.mean_entities = entity_sum / stats.num_blocks;
    stats.mean_link_rate = link_sum / stats.num_blocks;
  }
  return stats;
}

void PrintDatasetStats(const DatasetStats& stats, std::ostream& os) {
  os << "dataset '" << stats.name << "': " << stats.num_blocks << " blocks, "
     << stats.total_documents << " documents, entities per name "
     << stats.min_entities << ".." << stats.max_entities << " (mean "
     << FormatDouble(stats.mean_entities, 1) << "), mean link rate "
     << FormatDouble(stats.mean_link_rate, 3) << "\n";
  TablePrinter table;
  table.SetHeader({"name", "docs", "entities", "largest", "singletons",
                   "link rate", "tokens/doc"});
  for (const BlockStats& b : stats.blocks) {
    table.AddRow({b.query, std::to_string(b.num_documents),
                  std::to_string(b.num_entities),
                  std::to_string(b.largest_cluster),
                  std::to_string(b.singleton_clusters),
                  FormatDouble(b.link_rate, 3),
                  FormatDouble(b.mean_tokens_per_document, 1)});
  }
  table.Print(os);
}

}  // namespace corpus
}  // namespace weber

// WordFactory: deterministic pools of pseudo-English words, person names,
// organization names, location names and Web domains used by the synthetic
// corpus generator. Every pool is a pure function of (kind, index), so two
// generators with the same configuration produce byte-identical corpora.

#ifndef WEBER_CORPUS_WORD_FACTORY_H_
#define WEBER_CORPUS_WORD_FACTORY_H_

#include <string>
#include <vector>

namespace weber {
namespace corpus {

/// Stateless generators for the synthetic universe's vocabulary.
class WordFactory {
 public:
  /// The i-th pseudo-English content word ("velonar", "kestrim", ...).
  /// Distinct indices yield distinct words.
  static std::string Word(int index);

  /// The i-th first name, cycling through a fixed pool of common first
  /// names with a numeric suffix beyond the pool ("anna", "anna2", ...).
  static std::string FirstName(int index);

  /// The i-th last name (same cycling scheme).
  static std::string LastName(int index);

  /// The i-th multi-word concept phrase ("statistical relational learning"
  /// style: 2-3 content words).
  static std::string ConceptPhrase(int index);

  /// The i-th organization name ("velonar institute", "kestrim labs", ...).
  static std::string Organization(int index);

  /// The i-th location name.
  static std::string Location(int index);

  /// The i-th Web domain ("velonar.edu", "kestrim.org", ...).
  static std::string Domain(int index);

  /// The i-th shared hosting domain ("pages.hostral.com", ...), used for
  /// pages that do not live on a persona's home domain.
  static std::string HostingDomain(int index);

  /// A few function words used to pad sentences so stopword removal has
  /// realistic work to do.
  static const std::vector<std::string>& FunctionWords();
};

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_WORD_FACTORY_H_

#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "corpus/word_factory.h"

namespace weber {
namespace corpus {

namespace {

/// A hidden real-world person behind some of a block's pages.
struct Persona {
  std::string first_name;
  std::string full_name;           // "william cohen"
  std::string initial_name;        // "w cohen"
  std::vector<int> topics;         // 1-2 topic ids
  std::vector<int> organizations;  // org ids
  std::vector<std::string> associates;  // full names
  std::vector<int> locations;      // location ids
  int home_domain = 0;             // domain id
};

/// Sentence assembler: accumulates tokens and flushes period-terminated
/// sentences into the page text.
class TextBuilder {
 public:
  void AddToken(const std::string& token) {
    if (!current_.empty()) current_ += ' ';
    current_ += token;
    ++tokens_in_sentence_;
    if (tokens_in_sentence_ >= 12) FlushSentence();
  }

  void AddPhrase(const std::string& phrase) {
    // Phrases (entity mentions) are kept intact within one sentence.
    AddToken(phrase);
  }

  void FlushSentence() {
    if (current_.empty()) return;
    text_ += current_;
    text_ += ". ";
    if (++sentences_on_line_ >= 4) {
      text_ += '\n';
      sentences_on_line_ = 0;
    }
    current_.clear();
    tokens_in_sentence_ = 0;
  }

  std::string Finish() {
    FlushSentence();
    while (!text_.empty() && (text_.back() == ' ' || text_.back() == '\n')) {
      text_.pop_back();
    }
    return std::move(text_);
  }

 private:
  std::string text_;
  std::string current_;
  int tokens_in_sentence_ = 0;
  int sentences_on_line_ = 0;
};

}  // namespace

std::vector<int> SyntheticWebGenerator::SkewedPartition(int total, int parts,
                                                        double skew,
                                                        Rng* rng) {
  parts = std::max(1, std::min(parts, total));
  // Zipf weights with mild multiplicative jitter, largest first.
  std::vector<double> weights(parts);
  for (int i = 0; i < parts; ++i) {
    double w = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    weights[i] = w * rng->UniformDouble(0.7, 1.3);
  }
  std::sort(weights.rbegin(), weights.rend());
  double sum = std::accumulate(weights.begin(), weights.end(), 0.0);

  std::vector<int> sizes(parts, 1);  // every persona gets at least one page
  int remaining = total - parts;
  for (int i = 0; i < parts && remaining > 0; ++i) {
    int extra = static_cast<int>(weights[i] / sum * (total - parts));
    extra = std::min(extra, remaining);
    sizes[i] += extra;
    remaining -= extra;
  }
  // Distribute any rounding remainder to the largest clusters.
  for (int i = 0; remaining > 0; i = (i + 1) % parts) {
    sizes[i] += 1;
    --remaining;
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

Result<SyntheticData> SyntheticWebGenerator::Generate() const {
  const GeneratorConfig& cfg = config_;
  if (cfg.names.empty()) {
    return Status::InvalidArgument("generator: no names configured");
  }
  for (const NameSpec& spec : cfg.names) {
    if (spec.num_entities < 1 || spec.num_documents < spec.num_entities) {
      return Status::InvalidArgument(
          "generator: name '", spec.last_name,
          "' needs 1 <= num_entities <= num_documents");
    }
  }

  Rng master(cfg.seed);
  SyntheticData out;
  out.dataset.name = cfg.dataset_name;

  // ---- Universe: topics own disjoint ranges of concept/word indices. ----
  const int total_concepts = cfg.num_topics * cfg.concepts_per_topic;
  std::vector<std::string> concepts(total_concepts);
  std::vector<double> concept_weights(total_concepts);
  {
    Rng rng = master.Fork(1);
    for (int i = 0; i < total_concepts; ++i) {
      concepts[i] = WordFactory::ConceptPhrase(i);
      concept_weights[i] = rng.UniformDouble(0.5, 2.0);
    }
  }
  std::vector<std::string> topic_words(cfg.num_topics * cfg.words_per_topic);
  for (size_t i = 0; i < topic_words.size(); ++i) {
    topic_words[i] = WordFactory::Word(static_cast<int>(i));
  }
  std::vector<std::string> background_words(cfg.num_background_words);
  for (int i = 0; i < cfg.num_background_words; ++i) {
    background_words[i] =
        WordFactory::Word(1000000 + i);  // disjoint from topic words
  }
  std::vector<std::string> organizations(cfg.num_organizations);
  for (int i = 0; i < cfg.num_organizations; ++i) {
    organizations[i] = WordFactory::Organization(i);
  }
  std::vector<std::string> locations(cfg.num_locations);
  for (int i = 0; i < cfg.num_locations; ++i) {
    locations[i] = WordFactory::Location(i);
  }
  std::vector<std::string> celebrities(cfg.num_celebrities);
  for (int i = 0; i < cfg.num_celebrities; ++i) {
    celebrities[i] = WordFactory::FirstName(20000 + i * 7) + " " +
                     WordFactory::LastName(20000 + i * 7);
  }
  std::vector<std::string> generic_concepts(cfg.num_generic_concepts);
  for (int i = 0; i < cfg.num_generic_concepts; ++i) {
    generic_concepts[i] = WordFactory::ConceptPhrase(900000 + i);
  }

  // ---- Gazetteer: concepts, organizations, locations now; persons as
  // personas are created. ----
  extract::Gazetteer gazetteer;
  for (int i = 0; i < total_concepts; ++i) {
    gazetteer.Add(concepts[i], extract::EntityType::kConcept,
                  concept_weights[i]);
  }
  for (const std::string& org : organizations) {
    gazetteer.Add(org, extract::EntityType::kOrganization);
  }
  for (const std::string& loc : locations) {
    gazetteer.Add(loc, extract::EntityType::kLocation);
  }
  for (const std::string& celeb : celebrities) {
    gazetteer.Add(celeb, extract::EntityType::kPerson);
  }
  for (const std::string& generic : generic_concepts) {
    // Low weight: a real concept weighting service ranks "photo gallery"
    // far below topical concepts.
    gazetteer.Add(generic, extract::EntityType::kConcept, 0.15);
  }

  int next_domain = 0;
  int next_associate = 0;

  // ---- Blocks ----
  for (size_t block_idx = 0; block_idx < cfg.names.size(); ++block_idx) {
    const NameSpec& spec = cfg.names[block_idx];
    Rng rng = master.Fork(100 + block_idx);
    const std::string last_lower = ToLowerAscii(spec.last_name);

    gazetteer.Add(last_lower, extract::EntityType::kPerson);

    // Personas.
    std::vector<Persona> personas(spec.num_entities);
    std::vector<std::string> persona_full_names;
    {
      // Distinct first names within the block.
      std::vector<int> first_ids =
          rng.SampleWithoutReplacement(10000, spec.num_entities);
      int shared_topic = rng.UniformInt(0, cfg.num_topics - 1);
      for (int e = 0; e < spec.num_entities; ++e) {
        Persona& p = personas[e];
        p.first_name = WordFactory::FirstName(first_ids[e]);
        p.full_name = p.first_name + " " + last_lower;
        p.initial_name = p.first_name.substr(0, 1) + " " + last_lower;
        // Topics: either a block-shared topic (confusable personas) or an
        // own primary topic, plus an optional secondary.
        int primary = rng.Bernoulli(spec.topic_collision_prob)
                          ? shared_topic
                          : rng.UniformInt(0, cfg.num_topics - 1);
        p.topics.push_back(primary);
        if (rng.Bernoulli(0.5)) {
          p.topics.push_back(rng.UniformInt(0, cfg.num_topics - 1));
        }
        // Affiliations drawn from a popularity-skewed distribution, so
        // unrelated personas share popular organizations.
        int n_orgs =
            rng.UniformInt(cfg.min_orgs_per_persona, cfg.max_orgs_per_persona);
        while (static_cast<int>(p.organizations.size()) <
               std::min(n_orgs, cfg.num_organizations)) {
          int id = rng.Zipf(cfg.num_organizations, cfg.org_popularity_skew);
          if (std::find(p.organizations.begin(), p.organizations.end(), id) ==
              p.organizations.end()) {
            p.organizations.push_back(id);
          }
        }
        int n_assoc = rng.UniformInt(cfg.min_associates_per_persona,
                                     cfg.max_associates_per_persona);
        for (int a = 0; a < n_assoc; ++a) {
          std::string assoc = WordFactory::FirstName(next_associate) + " " +
                              WordFactory::LastName(next_associate);
          ++next_associate;
          p.associates.push_back(assoc);
          gazetteer.Add(assoc, extract::EntityType::kPerson);
        }
        int n_locs = rng.UniformInt(1, 2);
        for (int id : rng.SampleWithoutReplacement(cfg.num_locations, n_locs)) {
          p.locations.push_back(id);
        }
        p.home_domain = next_domain++;
        gazetteer.Add(p.full_name, extract::EntityType::kPerson);
        gazetteer.Add(p.initial_name, extract::EntityType::kPerson);
        persona_full_names.push_back(p.full_name);
      }
    }
    out.persona_names.push_back(persona_full_names);

    // Entity sizes and page assignment.
    std::vector<int> sizes = SkewedPartition(spec.num_documents,
                                             spec.num_entities,
                                             spec.cluster_skew, &rng);
    std::vector<int> page_entity;
    page_entity.reserve(spec.num_documents);
    for (int e = 0; e < spec.num_entities; ++e) {
      for (int s = 0; s < sizes[e]; ++s) page_entity.push_back(e);
    }
    rng.Shuffle(&page_entity);

    Block block;
    block.query = last_lower;

    for (int d = 0; d < spec.num_documents; ++d) {
      const int entity = page_entity[d];
      const Persona& p = personas[entity];
      const bool sparse = rng.Bernoulli(spec.sparse_page_prob);
      const double feature_scale = sparse ? 0.25 : 1.0;

      TextBuilder tb;

      // --- Name mentions ---
      int full_mentions = 1 + rng.Poisson(sparse ? 0.3 : 1.2);
      int last_only_mentions = rng.Poisson(sparse ? 0.3 : 0.8);

      // --- Concept mentions ---
      std::vector<std::string> mention_phrases;
      if (!rng.Bernoulli(spec.concept_drop_prob) && !sparse) {
        int n_concepts = 2 + rng.Poisson(2.0);
        for (int c = 0; c < n_concepts; ++c) {
          int concept_id;
          if (rng.Bernoulli(spec.topic_noise)) {
            concept_id = rng.UniformInt(0, total_concepts - 1);
          } else {
            int topic = p.topics[rng.UniformUint64(p.topics.size())];
            concept_id = topic * cfg.concepts_per_topic +
                         rng.Zipf(cfg.concepts_per_topic, cfg.zipf_exponent);
          }
          mention_phrases.push_back(concepts[concept_id]);
        }
      } else if (sparse && rng.Bernoulli(0.3)) {
        int topic = p.topics[rng.UniformUint64(p.topics.size())];
        mention_phrases.push_back(
            concepts[topic * cfg.concepts_per_topic +
                     rng.Zipf(cfg.concepts_per_topic, cfg.zipf_exponent)]);
      }

      // --- Organization / associate / location mentions ---
      for (int org : p.organizations) {
        if (rng.Bernoulli(spec.org_mention_prob * feature_scale)) {
          mention_phrases.push_back(organizations[org]);
        }
      }
      for (const std::string& assoc : p.associates) {
        if (rng.Bernoulli(spec.associate_mention_prob * feature_scale)) {
          mention_phrases.push_back(assoc);
        }
      }
      for (int loc : p.locations) {
        if (rng.Bernoulli(0.5 * feature_scale)) {
          mention_phrases.push_back(locations[loc]);
        }
      }
      // Cross-entity noise: occasionally mention an unrelated organization
      // or a globally famous person (the Web is messy).
      if (rng.Bernoulli(0.15)) {
        mention_phrases.push_back(
            organizations[rng.Zipf(cfg.num_organizations,
                                   cfg.org_popularity_skew)]);
      }
      while (rng.Bernoulli(spec.celebrity_mention_prob * feature_scale)) {
        mention_phrases.push_back(
            celebrities[rng.Zipf(cfg.num_celebrities, 1.0)]);
      }
      // Boilerplate concepts: bursts of generic phrases, independent of the
      // persona.
      if (rng.Bernoulli(spec.boilerplate_prob)) {
        int n_generic = rng.UniformInt(2, 5);
        for (int id : rng.SampleWithoutReplacement(
                 cfg.num_generic_concepts,
                 std::min(n_generic, cfg.num_generic_concepts))) {
          mention_phrases.push_back(generic_concepts[id]);
        }
      }

      // --- Body text ---
      int n_words = rng.UniformInt(cfg.min_words_per_page,
                                   cfg.max_words_per_page);
      if (sparse) n_words /= 4;

      // Interleave: spread mention phrases across the body.
      int next_mention = 0;
      int mention_every =
          mention_phrases.empty()
              ? n_words + 1
              : std::max(1, n_words / static_cast<int>(mention_phrases.size() + 1));
      int full_every = std::max(1, n_words / (full_mentions + 1));

      // The page's dominant rendering of the person's name: some pages use
      // the initial form throughout (citation lists, directories).
      const bool page_uses_initials = rng.Bernoulli(spec.name_variant_prob);

      for (int w = 0; w < n_words; ++w) {
        if (w % full_every == full_every - 1 && full_mentions > 0) {
          tb.AddPhrase(page_uses_initials ? p.initial_name : p.full_name);
          --full_mentions;
        } else if (last_only_mentions > 0 && rng.Bernoulli(0.02)) {
          tb.AddToken(last_lower);
          --last_only_mentions;
        }
        if (w % mention_every == mention_every - 1 &&
            next_mention < static_cast<int>(mention_phrases.size())) {
          tb.AddPhrase(mention_phrases[next_mention++]);
        }
        // Regular token.
        if (rng.Bernoulli(cfg.function_word_rate)) {
          const auto& fw = WordFactory::FunctionWords();
          tb.AddToken(fw[rng.UniformUint64(fw.size())]);
        } else if (rng.Bernoulli(spec.topic_noise)) {
          tb.AddToken(background_words[rng.UniformInt(
              0, cfg.num_background_words - 1)]);
        } else {
          int topic = p.topics[rng.UniformUint64(p.topics.size())];
          int word_id = topic * cfg.words_per_topic +
                        rng.Zipf(cfg.words_per_topic, cfg.zipf_exponent);
          tb.AddToken(topic_words[word_id]);
        }
      }
      // Flush any remaining required mentions.
      while (full_mentions-- > 0) {
        tb.AddPhrase(page_uses_initials ? p.initial_name : p.full_name);
      }
      while (next_mention < static_cast<int>(mention_phrases.size())) {
        tb.AddPhrase(mention_phrases[next_mention++]);
      }

      // --- URL ---
      // Home pages live under the persona's registrable domain behind one of
      // several hosts ("www.X", "people.X", ...), in the persona's own
      // directory: two home pages of the same persona score 0.9 (same host)
      // or 0.6 (same domain, different host). Hosting pages share a small
      // pool of hosting domains with per-page directories, so *unrelated*
      // pages on the same host score 0.8 — a cross-person band sitting
      // between the two same-person bands. This is the non-monotone URL
      // structure that a threshold on F2 cannot represent.
      std::string url;
      if (rng.Bernoulli(spec.url_home_prob)) {
        static constexpr const char* kHostPrefixes[] = {"www", "people", "web"};
        const char* prefix = kHostPrefixes[rng.UniformInt(0, 2)];
        url = std::string("http://") + prefix + "." +
              WordFactory::Domain(p.home_domain) + "/" + last_lower +
              "/page" + std::to_string(d) + ".html";
      } else {
        url = "http://" +
              WordFactory::HostingDomain(
                  rng.UniformInt(0, cfg.num_hosting_domains - 1)) +
              "/" + WordFactory::Word(2000000 + rng.UniformInt(0, 5000)) +
              "/page" + std::to_string(d) + ".html";
      }

      Document doc;
      doc.id = last_lower + "/" + std::to_string(d);
      doc.url = std::move(url);
      doc.text = tb.Finish();
      block.documents.push_back(std::move(doc));
      block.entity_labels.push_back(entity);
    }
    out.dataset.blocks.push_back(std::move(block));
  }

  gazetteer.Build();
  out.gazetteer = std::move(gazetteer);
  return out;
}

}  // namespace corpus
}  // namespace weber

#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/string_util.h"
#include "corpus/word_factory.h"

namespace weber {
namespace corpus {

namespace {

/// A hidden real-world person behind some of a block's pages.
struct Persona {
  std::string first_name;
  std::string full_name;           // "william cohen"
  std::string initial_name;        // "w cohen"
  std::vector<int> topics;         // 1-2 topic ids
  std::vector<int> organizations;  // org ids
  std::vector<std::string> associates;  // full names
  std::vector<int> locations;      // location ids
  int home_domain = 0;             // domain id
};

/// Sentence assembler: accumulates tokens and flushes period-terminated
/// sentences into the page text.
class TextBuilder {
 public:
  void AddToken(const std::string& token) {
    if (!current_.empty()) current_ += ' ';
    current_ += token;
    ++tokens_in_sentence_;
    if (tokens_in_sentence_ >= 12) FlushSentence();
  }

  void AddPhrase(const std::string& phrase) {
    // Phrases (entity mentions) are kept intact within one sentence.
    AddToken(phrase);
  }

  void FlushSentence() {
    if (current_.empty()) return;
    text_ += current_;
    text_ += ". ";
    if (++sentences_on_line_ >= 4) {
      text_ += '\n';
      sentences_on_line_ = 0;
    }
    current_.clear();
    tokens_in_sentence_ = 0;
  }

  std::string Finish() {
    FlushSentence();
    while (!text_.empty() && (text_.back() == ' ' || text_.back() == '\n')) {
      text_.pop_back();
    }
    return std::move(text_);
  }

 private:
  std::string text_;
  std::string current_;
  int tokens_in_sentence_ = 0;
  int sentences_on_line_ = 0;
};

/// The deterministic hidden universe shared by every block: topics own
/// disjoint ranges of concept/word indices; organizations, locations,
/// celebrities and generic Web concepts are global.
struct Universe {
  int total_concepts = 0;
  std::vector<std::string> concepts;
  std::vector<double> concept_weights;
  std::vector<std::string> topic_words;
  std::vector<std::string> background_words;
  std::vector<std::string> organizations;
  std::vector<std::string> locations;
  std::vector<std::string> celebrities;
  std::vector<std::string> generic_concepts;
};

/// Builds the universe and registers its entities with the gazetteer.
/// Consumes master->Fork(1) for the concept weights, nothing else.
Universe BuildUniverse(const GeneratorConfig& cfg, Rng* master,
                       extract::Gazetteer* gazetteer) {
  Universe u;
  u.total_concepts = cfg.num_topics * cfg.concepts_per_topic;
  u.concepts.resize(u.total_concepts);
  u.concept_weights.resize(u.total_concepts);
  {
    Rng rng = master->Fork(1);
    for (int i = 0; i < u.total_concepts; ++i) {
      u.concepts[i] = WordFactory::ConceptPhrase(i);
      u.concept_weights[i] = rng.UniformDouble(0.5, 2.0);
    }
  }
  u.topic_words.resize(cfg.num_topics * cfg.words_per_topic);
  for (size_t i = 0; i < u.topic_words.size(); ++i) {
    u.topic_words[i] = WordFactory::Word(static_cast<int>(i));
  }
  u.background_words.resize(cfg.num_background_words);
  for (int i = 0; i < cfg.num_background_words; ++i) {
    u.background_words[i] =
        WordFactory::Word(1000000 + i);  // disjoint from topic words
  }
  u.organizations.resize(cfg.num_organizations);
  for (int i = 0; i < cfg.num_organizations; ++i) {
    u.organizations[i] = WordFactory::Organization(i);
  }
  u.locations.resize(cfg.num_locations);
  for (int i = 0; i < cfg.num_locations; ++i) {
    u.locations[i] = WordFactory::Location(i);
  }
  u.celebrities.resize(cfg.num_celebrities);
  for (int i = 0; i < cfg.num_celebrities; ++i) {
    u.celebrities[i] = WordFactory::FirstName(20000 + i * 7) + " " +
                       WordFactory::LastName(20000 + i * 7);
  }
  u.generic_concepts.resize(cfg.num_generic_concepts);
  for (int i = 0; i < cfg.num_generic_concepts; ++i) {
    u.generic_concepts[i] = WordFactory::ConceptPhrase(900000 + i);
  }

  for (int i = 0; i < u.total_concepts; ++i) {
    gazetteer->Add(u.concepts[i], extract::EntityType::kConcept,
                   u.concept_weights[i]);
  }
  for (const std::string& org : u.organizations) {
    gazetteer->Add(org, extract::EntityType::kOrganization);
  }
  for (const std::string& loc : u.locations) {
    gazetteer->Add(loc, extract::EntityType::kLocation);
  }
  for (const std::string& celeb : u.celebrities) {
    gazetteer->Add(celeb, extract::EntityType::kPerson);
  }
  for (const std::string& generic : u.generic_concepts) {
    // Low weight: a real concept weighting service ranks "photo gallery"
    // far below topical concepts.
    gazetteer->Add(generic, extract::EntityType::kConcept, 0.15);
  }
  return u;
}

/// Creates `count` personas carrying `last_lower`, with distinct first
/// names, topic/affiliation/associate/location profiles, and gazetteer
/// registrations. `next_domain` / `next_associate` are the corpus-global
/// id counters.
std::vector<Persona> BuildPersonas(const GeneratorConfig& cfg,
                                   const NameSpec& spec,
                                   const std::string& last_lower, int count,
                                   Rng* rng, extract::Gazetteer* gazetteer,
                                   int* next_domain, int* next_associate) {
  std::vector<Persona> personas(count);
  // Distinct first names within the block.
  std::vector<int> first_ids = rng->SampleWithoutReplacement(10000, count);
  int shared_topic = rng->UniformInt(0, cfg.num_topics - 1);
  for (int e = 0; e < count; ++e) {
    Persona& p = personas[e];
    p.first_name = WordFactory::FirstName(first_ids[e]);
    p.full_name = p.first_name + " " + last_lower;
    p.initial_name = p.first_name.substr(0, 1) + " " + last_lower;
    // Topics: either a block-shared topic (confusable personas) or an
    // own primary topic, plus an optional secondary.
    int primary = rng->Bernoulli(spec.topic_collision_prob)
                      ? shared_topic
                      : rng->UniformInt(0, cfg.num_topics - 1);
    p.topics.push_back(primary);
    if (rng->Bernoulli(0.5)) {
      p.topics.push_back(rng->UniformInt(0, cfg.num_topics - 1));
    }
    // Affiliations drawn from a popularity-skewed distribution, so
    // unrelated personas share popular organizations.
    int n_orgs =
        rng->UniformInt(cfg.min_orgs_per_persona, cfg.max_orgs_per_persona);
    while (static_cast<int>(p.organizations.size()) <
           std::min(n_orgs, cfg.num_organizations)) {
      int id = rng->Zipf(cfg.num_organizations, cfg.org_popularity_skew);
      if (std::find(p.organizations.begin(), p.organizations.end(), id) ==
          p.organizations.end()) {
        p.organizations.push_back(id);
      }
    }
    int n_assoc = rng->UniformInt(cfg.min_associates_per_persona,
                                  cfg.max_associates_per_persona);
    for (int a = 0; a < n_assoc; ++a) {
      std::string assoc = WordFactory::FirstName(*next_associate) + " " +
                          WordFactory::LastName(*next_associate);
      ++*next_associate;
      p.associates.push_back(assoc);
      gazetteer->Add(assoc, extract::EntityType::kPerson);
    }
    int n_locs = rng->UniformInt(1, 2);
    for (int id : rng->SampleWithoutReplacement(cfg.num_locations, n_locs)) {
      p.locations.push_back(id);
    }
    p.home_domain = (*next_domain)++;
    gazetteer->Add(p.full_name, extract::EntityType::kPerson);
    gazetteer->Add(p.initial_name, extract::EntityType::kPerson);
  }
  return personas;
}

/// Renders one page about `p`: body text mixing function words, topic words
/// and background noise, entity mentions subject to the spec's dropout
/// probabilities, and a URL on the persona's home domain or a shared
/// hosting domain. `d` is the page's index within its collection (used for
/// the URL path and document id).
Document RenderPage(const GeneratorConfig& cfg, const NameSpec& spec,
                    const Universe& universe, const Persona& p,
                    const std::string& last_lower, int d, Rng* rng) {
  Rng& r = *rng;
  const bool sparse = r.Bernoulli(spec.sparse_page_prob);
  const double feature_scale = sparse ? 0.25 : 1.0;

  TextBuilder tb;

  // --- Name mentions ---
  int full_mentions = 1 + r.Poisson(sparse ? 0.3 : 1.2);
  int last_only_mentions = r.Poisson(sparse ? 0.3 : 0.8);

  // --- Concept mentions ---
  std::vector<std::string> mention_phrases;
  if (!r.Bernoulli(spec.concept_drop_prob) && !sparse) {
    int n_concepts = 2 + r.Poisson(2.0);
    for (int c = 0; c < n_concepts; ++c) {
      int concept_id;
      if (r.Bernoulli(spec.topic_noise)) {
        concept_id = r.UniformInt(0, universe.total_concepts - 1);
      } else {
        int topic = p.topics[r.UniformUint64(p.topics.size())];
        concept_id = topic * cfg.concepts_per_topic +
                     r.Zipf(cfg.concepts_per_topic, cfg.zipf_exponent);
      }
      mention_phrases.push_back(universe.concepts[concept_id]);
    }
  } else if (sparse && r.Bernoulli(0.3)) {
    int topic = p.topics[r.UniformUint64(p.topics.size())];
    mention_phrases.push_back(
        universe.concepts[topic * cfg.concepts_per_topic +
                          r.Zipf(cfg.concepts_per_topic, cfg.zipf_exponent)]);
  }

  // --- Organization / associate / location mentions ---
  for (int org : p.organizations) {
    if (r.Bernoulli(spec.org_mention_prob * feature_scale)) {
      mention_phrases.push_back(universe.organizations[org]);
    }
  }
  for (const std::string& assoc : p.associates) {
    if (r.Bernoulli(spec.associate_mention_prob * feature_scale)) {
      mention_phrases.push_back(assoc);
    }
  }
  for (int loc : p.locations) {
    if (r.Bernoulli(0.5 * feature_scale)) {
      mention_phrases.push_back(universe.locations[loc]);
    }
  }
  // Cross-entity noise: occasionally mention an unrelated organization
  // or a globally famous person (the Web is messy).
  if (r.Bernoulli(0.15)) {
    mention_phrases.push_back(
        universe.organizations[r.Zipf(cfg.num_organizations,
                                      cfg.org_popularity_skew)]);
  }
  while (r.Bernoulli(spec.celebrity_mention_prob * feature_scale)) {
    mention_phrases.push_back(
        universe.celebrities[r.Zipf(cfg.num_celebrities, 1.0)]);
  }
  // Boilerplate concepts: bursts of generic phrases, independent of the
  // persona.
  if (r.Bernoulli(spec.boilerplate_prob)) {
    int n_generic = r.UniformInt(2, 5);
    for (int id : r.SampleWithoutReplacement(
             cfg.num_generic_concepts,
             std::min(n_generic, cfg.num_generic_concepts))) {
      mention_phrases.push_back(universe.generic_concepts[id]);
    }
  }

  // --- Body text ---
  int n_words = r.UniformInt(cfg.min_words_per_page, cfg.max_words_per_page);
  if (sparse) n_words /= 4;

  // Interleave: spread mention phrases across the body.
  int next_mention = 0;
  int mention_every =
      mention_phrases.empty()
          ? n_words + 1
          : std::max(1, n_words / static_cast<int>(mention_phrases.size() + 1));
  int full_every = std::max(1, n_words / (full_mentions + 1));

  // The page's dominant rendering of the person's name: some pages use
  // the initial form throughout (citation lists, directories).
  const bool page_uses_initials = r.Bernoulli(spec.name_variant_prob);

  for (int w = 0; w < n_words; ++w) {
    if (w % full_every == full_every - 1 && full_mentions > 0) {
      tb.AddPhrase(page_uses_initials ? p.initial_name : p.full_name);
      --full_mentions;
    } else if (last_only_mentions > 0 && r.Bernoulli(0.02)) {
      tb.AddToken(last_lower);
      --last_only_mentions;
    }
    if (w % mention_every == mention_every - 1 &&
        next_mention < static_cast<int>(mention_phrases.size())) {
      tb.AddPhrase(mention_phrases[next_mention++]);
    }
    // Regular token.
    if (r.Bernoulli(cfg.function_word_rate)) {
      const auto& fw = WordFactory::FunctionWords();
      tb.AddToken(fw[r.UniformUint64(fw.size())]);
    } else if (r.Bernoulli(spec.topic_noise)) {
      tb.AddToken(universe.background_words[r.UniformInt(
          0, cfg.num_background_words - 1)]);
    } else {
      int topic = p.topics[r.UniformUint64(p.topics.size())];
      int word_id = topic * cfg.words_per_topic +
                    r.Zipf(cfg.words_per_topic, cfg.zipf_exponent);
      tb.AddToken(universe.topic_words[word_id]);
    }
  }
  // Flush any remaining required mentions.
  while (full_mentions-- > 0) {
    tb.AddPhrase(page_uses_initials ? p.initial_name : p.full_name);
  }
  while (next_mention < static_cast<int>(mention_phrases.size())) {
    tb.AddPhrase(mention_phrases[next_mention++]);
  }

  // --- URL ---
  // Home pages live under the persona's registrable domain behind one of
  // several hosts ("www.X", "people.X", ...), in the persona's own
  // directory: two home pages of the same persona score 0.9 (same host)
  // or 0.6 (same domain, different host). Hosting pages share a small
  // pool of hosting domains with per-page directories, so *unrelated*
  // pages on the same host score 0.8 — a cross-person band sitting
  // between the two same-person bands. This is the non-monotone URL
  // structure that a threshold on F2 cannot represent.
  std::string url;
  if (r.Bernoulli(spec.url_home_prob)) {
    static constexpr const char* kHostPrefixes[] = {"www", "people", "web"};
    const char* prefix = kHostPrefixes[r.UniformInt(0, 2)];
    url = std::string("http://") + prefix + "." +
          WordFactory::Domain(p.home_domain) + "/" + last_lower +
          "/page" + std::to_string(d) + ".html";
  } else {
    url = "http://" +
          WordFactory::HostingDomain(
              r.UniformInt(0, cfg.num_hosting_domains - 1)) +
          "/" + WordFactory::Word(2000000 + r.UniformInt(0, 5000)) +
          "/page" + std::to_string(d) + ".html";
  }

  Document doc;
  doc.id = last_lower + "/" + std::to_string(d);
  doc.url = std::move(url);
  doc.text = tb.Finish();
  return doc;
}

}  // namespace

std::vector<int> SyntheticWebGenerator::SkewedPartition(int total, int parts,
                                                        double skew,
                                                        Rng* rng) {
  parts = std::max(1, std::min(parts, total));
  // Zipf weights with mild multiplicative jitter, largest first.
  std::vector<double> weights(parts);
  for (int i = 0; i < parts; ++i) {
    double w = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    weights[i] = w * rng->UniformDouble(0.7, 1.3);
  }
  std::sort(weights.rbegin(), weights.rend());
  double sum = std::accumulate(weights.begin(), weights.end(), 0.0);

  std::vector<int> sizes(parts, 1);  // every persona gets at least one page
  int remaining = total - parts;
  for (int i = 0; i < parts && remaining > 0; ++i) {
    int extra = static_cast<int>(weights[i] / sum * (total - parts));
    extra = std::min(extra, remaining);
    sizes[i] += extra;
    remaining -= extra;
  }
  // Distribute any rounding remainder to the largest clusters.
  for (int i = 0; remaining > 0; i = (i + 1) % parts) {
    sizes[i] += 1;
    --remaining;
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

Result<SyntheticData> SyntheticWebGenerator::Generate() const {
  const GeneratorConfig& cfg = config_;
  if (cfg.names.empty()) {
    return Status::InvalidArgument("generator: no names configured");
  }
  for (const NameSpec& spec : cfg.names) {
    if (spec.num_entities < 1 || spec.num_documents < spec.num_entities) {
      return Status::InvalidArgument(
          "generator: name '", spec.last_name,
          "' needs 1 <= num_entities <= num_documents");
    }
  }

  Rng master(cfg.seed);
  SyntheticData out;
  out.dataset.name = cfg.dataset_name;

  extract::Gazetteer gazetteer;
  const Universe universe = BuildUniverse(cfg, &master, &gazetteer);

  int next_domain = 0;
  int next_associate = 0;

  // ---- Blocks ----
  for (size_t block_idx = 0; block_idx < cfg.names.size(); ++block_idx) {
    const NameSpec& spec = cfg.names[block_idx];
    Rng rng = master.Fork(100 + block_idx);
    const std::string last_lower = ToLowerAscii(spec.last_name);

    gazetteer.Add(last_lower, extract::EntityType::kPerson);

    std::vector<Persona> personas =
        BuildPersonas(cfg, spec, last_lower, spec.num_entities, &rng,
                      &gazetteer, &next_domain, &next_associate);
    std::vector<std::string> persona_full_names;
    for (const Persona& p : personas) persona_full_names.push_back(p.full_name);
    out.persona_names.push_back(persona_full_names);

    // Entity sizes and page assignment.
    std::vector<int> sizes = SkewedPartition(spec.num_documents,
                                             spec.num_entities,
                                             spec.cluster_skew, &rng);
    std::vector<int> page_entity;
    page_entity.reserve(spec.num_documents);
    for (int e = 0; e < spec.num_entities; ++e) {
      for (int s = 0; s < sizes[e]; ++s) page_entity.push_back(e);
    }
    rng.Shuffle(&page_entity);

    Block block;
    block.query = last_lower;

    for (int d = 0; d < spec.num_documents; ++d) {
      const int entity = page_entity[d];
      block.documents.push_back(RenderPage(cfg, spec, universe,
                                           personas[entity], last_lower, d,
                                           &rng));
      block.entity_labels.push_back(entity);
    }
    out.dataset.blocks.push_back(std::move(block));
  }

  gazetteer.Build();
  out.gazetteer = std::move(gazetteer);
  return out;
}

Result<CleanCleanData> SyntheticWebGenerator::GenerateCleanClean(
    double overlap_fraction) const {
  const GeneratorConfig& cfg = config_;
  if (cfg.names.empty()) {
    return Status::InvalidArgument("generator: no names configured");
  }
  if (!(overlap_fraction > 0.0) || overlap_fraction > 1.0) {
    return Status::InvalidArgument("generator: overlap fraction ",
                                   overlap_fraction, " outside (0, 1]");
  }
  for (const NameSpec& spec : cfg.names) {
    if (spec.num_entities < 1) {
      return Status::InvalidArgument("generator: name '", spec.last_name,
                                     "' needs num_entities >= 1");
    }
  }

  Rng master(cfg.seed);
  CleanCleanData out;
  out.left.name = cfg.dataset_name + "-left";
  out.right.name = cfg.dataset_name + "-right";

  extract::Gazetteer gazetteer;
  const Universe universe = BuildUniverse(cfg, &master, &gazetteer);

  int next_domain = 0;
  int next_associate = 0;

  for (size_t block_idx = 0; block_idx < cfg.names.size(); ++block_idx) {
    const NameSpec& spec = cfg.names[block_idx];
    Rng rng = master.Fork(100 + block_idx);
    const std::string last_lower = ToLowerAscii(spec.last_name);

    gazetteer.Add(last_lower, extract::EntityType::kPerson);

    // Both collections carry num_entities pages each, one page per persona
    // — internally duplicate-free by construction. An `overlap` subset of
    // the left personas also appears on the right; the rest of the right
    // collection is fresh right-only personas, so both sides contain
    // distractors the matchers must leave unmatched.
    const int entities = spec.num_entities;
    const int overlap = std::max(
        1, std::min(entities, static_cast<int>(std::lround(
                                  overlap_fraction * entities))));
    std::vector<Persona> personas =
        BuildPersonas(cfg, spec, last_lower, entities + (entities - overlap),
                      &rng, &gazetteer, &next_domain, &next_associate);

    // Left personas are [0, entities); the shared subset appears on the
    // right together with the right-only personas [entities, ...).
    std::vector<int> shared = rng.SampleWithoutReplacement(entities, overlap);
    std::sort(shared.begin(), shared.end());
    std::vector<int> right_personas = shared;
    for (int e = entities; e < static_cast<int>(personas.size()); ++e) {
      right_personas.push_back(e);
    }

    // Independent page orders per collection, so document position carries
    // no cross-collection signal.
    std::vector<int> left_order(entities);
    std::iota(left_order.begin(), left_order.end(), 0);
    rng.Shuffle(&left_order);
    rng.Shuffle(&right_personas);

    Block left_block;
    left_block.query = last_lower;
    Rng left_rng = rng.Fork(501);
    for (int d = 0; d < static_cast<int>(left_order.size()); ++d) {
      left_block.documents.push_back(
          RenderPage(cfg, spec, universe, personas[left_order[d]], last_lower,
                     d, &left_rng));
      left_block.entity_labels.push_back(left_order[d]);
    }

    Block right_block;
    right_block.query = last_lower;
    Rng right_rng = rng.Fork(502);
    for (int d = 0; d < static_cast<int>(right_personas.size()); ++d) {
      right_block.documents.push_back(
          RenderPage(cfg, spec, universe, personas[right_personas[d]],
                     last_lower, d, &right_rng));
      right_block.entity_labels.push_back(right_personas[d]);
    }

    // Ground truth: one (left position, right position) pair per shared
    // persona — a partial bijection between the collections.
    std::vector<std::pair<int, int>> truth;
    for (int persona : shared) {
      int left_pos = -1;
      int right_pos = -1;
      for (int d = 0; d < static_cast<int>(left_block.entity_labels.size());
           ++d) {
        if (left_block.entity_labels[d] == persona) left_pos = d;
      }
      for (int d = 0; d < static_cast<int>(right_block.entity_labels.size());
           ++d) {
        if (right_block.entity_labels[d] == persona) right_pos = d;
      }
      truth.push_back({left_pos, right_pos});
    }
    std::sort(truth.begin(), truth.end());

    out.left.blocks.push_back(std::move(left_block));
    out.right.blocks.push_back(std::move(right_block));
    out.truth.push_back(std::move(truth));
  }

  gazetteer.Build();
  out.gazetteer = std::move(gazetteer);
  return out;
}

}  // namespace corpus
}  // namespace weber

#include "corpus/dataset_io.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace weber {
namespace corpus {

namespace {

/// Plausibility bounds for serialized counts: a corrupt or hostile header
/// must be rejected before any memory is reserved for it. Three orders of
/// magnitude above anything the generator or the paper's corpora produce.
constexpr int kMaxDocumentsPerBlock = 1000000;
constexpr int kMaxTextLinesPerDocument = 10000000;

int CountLines(const std::string& text) {
  if (text.empty()) return 0;
  int lines = 1;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

Status ParseError(int line_no, std::string_view what) {
  return Status::Corruption("dataset parse error at line ", line_no, ": ",
                            std::string(what));
}

}  // namespace

Status SaveDataset(const Dataset& dataset, std::ostream& os) {
  os << "#dataset " << dataset.name << "\n";
  for (const Block& block : dataset.blocks) {
    if (block.entity_labels.size() != block.documents.size()) {
      return Status::InvalidArgument(
          "block '", block.query,
          "': entity_labels size does not match documents size");
    }
    os << "#block " << block.query << " " << block.num_documents() << "\n";
    for (int i = 0; i < block.num_documents(); ++i) {
      const Document& d = block.documents[i];
      os << "#doc " << d.id << " " << block.entity_labels[i] << "\n";
      os << "#url " << d.url << "\n";
      os << "#text " << CountLines(d.text) << "\n";
      if (!d.text.empty()) {
        os << d.text;
        if (d.text.back() != '\n') os << "\n";
      }
    }
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveDatasetToFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: ", path);
  return SaveDataset(dataset, out);
}

Result<Dataset> LoadDataset(std::istream& is) {
  return LoadDataset(is, LoadOptions{}, nullptr);
}

Result<Dataset> LoadDataset(std::istream& is, const LoadOptions& options,
                            LoadReport* report) {
  Dataset dataset;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  // True when `line` already holds the next unconsumed directive (set after
  // a lenient skip scans forward to the next #block).
  bool have_line = false;

  auto next_line = [&]() -> bool {
    if (!std::getline(is, line)) return false;
    ++line_no;
    return true;
  };

  // Reads one block body (after its #block header) into `block`.
  auto parse_block = [&](int declared_docs, Block* block) -> Status {
    block->documents.reserve(
        static_cast<size_t>(std::min(declared_docs, 65536)));
    block->entity_labels.reserve(
        static_cast<size_t>(std::min(declared_docs, 65536)));
    for (int d = 0; d < declared_docs; ++d) {
      if (!next_line()) return ParseError(line_no, "unexpected EOF in block");
      std::string_view doc_line = TrimWhitespace(line);
      if (!StartsWith(doc_line, "#doc ")) {
        return ParseError(line_no, "expected #doc");
      }
      auto doc_parts = SplitWhitespace(doc_line.substr(5));
      if (doc_parts.size() != 2) return ParseError(line_no, "malformed #doc");
      Document doc;
      doc.id = doc_parts[0];
      int label = 0;
      if (!ParseInt(doc_parts[1], &label)) {
        return ParseError(line_no, "bad entity label");
      }
      if (!next_line()) return ParseError(line_no, "unexpected EOF after #doc");
      std::string_view url_line = TrimWhitespace(line);
      if (!StartsWith(url_line, "#url ")) {
        return ParseError(line_no, "expected #url");
      }
      doc.url = std::string(TrimWhitespace(url_line.substr(5)));
      if (!next_line()) return ParseError(line_no, "unexpected EOF after #url");
      std::string_view text_line = TrimWhitespace(line);
      if (!StartsWith(text_line, "#text ")) {
        return ParseError(line_no, "expected #text");
      }
      int text_lines = 0;
      if (!ParseInt(text_line.substr(6), &text_lines) || text_lines < 0 ||
          text_lines > kMaxTextLinesPerDocument) {
        return ParseError(line_no, "bad text line count");
      }
      std::string text;
      for (int t = 0; t < text_lines; ++t) {
        if (!next_line()) return ParseError(line_no, "unexpected EOF in text");
        text += line;
        if (t + 1 < text_lines) text += '\n';
      }
      doc.text = std::move(text);
      block->documents.push_back(std::move(doc));
      block->entity_labels.push_back(label);
    }
    return Status::OK();
  };

  // Lenient recovery: record the error, then scan forward to the next
  // #block directive (left in `line` for the main loop) or EOF.
  auto skip_block = [&](const std::string& query, const Status& error) {
    if (report != nullptr) {
      ++report->blocks_skipped;
      report->block_errors.push_back({query, line_no, error});
    }
    while (next_line()) {
      if (StartsWith(TrimWhitespace(line), "#block ")) {
        have_line = true;
        return;
      }
    }
  };

  while (have_line || next_line()) {
    have_line = false;
    std::string_view view = TrimWhitespace(line);
    if (view.empty()) continue;
    if (StartsWith(view, "#dataset ")) {
      dataset.name = std::string(TrimWhitespace(view.substr(9)));
      saw_header = true;
    } else if (StartsWith(view, "#block ")) {
      if (!saw_header) return ParseError(line_no, "#block before #dataset");
      auto parts = SplitWhitespace(view.substr(7));
      Block block;
      int declared_docs = 0;
      Status header = Status::OK();
      if (parts.size() != 2) {
        header = ParseError(line_no, "malformed #block");
      } else {
        block.query = parts[0];
        if (!ParseInt(parts[1], &declared_docs) || declared_docs < 0) {
          header = ParseError(line_no, "bad document count");
        } else if (declared_docs > kMaxDocumentsPerBlock) {
          header = ParseError(line_no, "implausible document count");
        }
      }
      if (!header.ok()) {
        if (!options.lenient) return header;
        skip_block(block.query, header);
        continue;
      }
      if (Status body = parse_block(declared_docs, &block); !body.ok()) {
        if (!options.lenient) return body;
        skip_block(block.query, body);
        continue;
      }
      dataset.blocks.push_back(std::move(block));
      if (report != nullptr) ++report->blocks_loaded;
    } else {
      if (!options.lenient) {
        return ParseError(line_no, "unrecognized directive");
      }
      // Lenient: stray top-level lines are usually debris from a block the
      // parser already gave up on; drop them and keep scanning.
    }
  }
  if (!saw_header) return Status::Corruption("missing #dataset header");
  return dataset;
}

Result<Dataset> LoadDatasetFromFile(const std::string& path) {
  return LoadDatasetFromFile(path, LoadOptions{}, nullptr);
}

Result<Dataset> LoadDatasetFromFile(const std::string& path,
                                    const LoadOptions& options,
                                    LoadReport* report) {
  const int max_retries = std::max(0, options.max_retries);
  for (int attempt = 0;; ++attempt) {
    Result<Dataset> result = [&]() -> Result<Dataset> {
      WEBER_RETURN_NOT_OK(faults::MaybeFail("dataset_io.read"));
      std::ifstream in(path);
      if (!in) return Status::IOError("cannot open for reading: ", path);
      return LoadDataset(in, options, report);
    }();
    // Only transient I/O failures are worth retrying; Corruption is a
    // property of the bytes and will not go away.
    if (result.ok() || result.status().code() != StatusCode::kIOError ||
        attempt >= max_retries) {
      return result;
    }
    if (report != nullptr) ++report->retries;
    const int backoff = std::min(
        std::max(0, options.retry_backoff_ms) * (1 << attempt), 1000);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
  }
}

Status SaveGazetteer(const extract::Gazetteer& gazetteer, std::ostream& os) {
  os << "#gazetteer " << gazetteer.size() << "\n";
  for (int i = 0; i < gazetteer.size(); ++i) {
    const extract::GazetteerEntry& e = gazetteer.entry(i);
    os << EntityTypeToString(e.type) << "\t" << FormatDouble(e.weight, 6)
       << "\t" << e.surface << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Result<extract::Gazetteer> LoadGazetteer(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return Status::Corruption("empty gazetteer");
  std::string_view header = TrimWhitespace(line);
  if (!StartsWith(header, "#gazetteer ")) {
    return Status::Corruption("missing #gazetteer header");
  }
  int count = 0;
  if (!ParseInt(header.substr(11), &count) || count < 0) {
    return Status::Corruption("bad gazetteer count");
  }
  extract::Gazetteer gazetteer;
  for (int i = 0; i < count; ++i) {
    if (!std::getline(is, line)) {
      return Status::Corruption("unexpected EOF in gazetteer at entry ", i);
    }
    auto fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::Corruption("malformed gazetteer entry at ", i);
    }
    extract::EntityType type;
    if (fields[0] == "person") {
      type = extract::EntityType::kPerson;
    } else if (fields[0] == "organization") {
      type = extract::EntityType::kOrganization;
    } else if (fields[0] == "location") {
      type = extract::EntityType::kLocation;
    } else if (fields[0] == "concept") {
      type = extract::EntityType::kConcept;
    } else {
      return Status::Corruption("unknown entity type: ", fields[0]);
    }
    double weight = 1.0;
    if (!ParseDouble(fields[1], &weight)) {
      return Status::Corruption("bad gazetteer weight at ", i);
    }
    gazetteer.Add(fields[2], type, weight);
  }
  gazetteer.Build();
  return gazetteer;
}

}  // namespace corpus
}  // namespace weber

#include "corpus/dataset_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace weber {
namespace corpus {

namespace {

int CountLines(const std::string& text) {
  if (text.empty()) return 0;
  int lines = 1;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

Status ParseError(int line_no, std::string_view what) {
  return Status::Corruption("dataset parse error at line ", line_no, ": ",
                            std::string(what));
}

}  // namespace

Status SaveDataset(const Dataset& dataset, std::ostream& os) {
  os << "#dataset " << dataset.name << "\n";
  for (const Block& block : dataset.blocks) {
    if (block.entity_labels.size() != block.documents.size()) {
      return Status::InvalidArgument(
          "block '", block.query,
          "': entity_labels size does not match documents size");
    }
    os << "#block " << block.query << " " << block.num_documents() << "\n";
    for (int i = 0; i < block.num_documents(); ++i) {
      const Document& d = block.documents[i];
      os << "#doc " << d.id << " " << block.entity_labels[i] << "\n";
      os << "#url " << d.url << "\n";
      os << "#text " << CountLines(d.text) << "\n";
      if (!d.text.empty()) {
        os << d.text;
        if (d.text.back() != '\n') os << "\n";
      }
    }
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveDatasetToFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: ", path);
  return SaveDataset(dataset, out);
}

Result<Dataset> LoadDataset(std::istream& is) {
  Dataset dataset;
  std::string line;
  int line_no = 0;
  bool saw_header = false;

  auto next_line = [&]() -> bool {
    if (!std::getline(is, line)) return false;
    ++line_no;
    return true;
  };

  while (next_line()) {
    std::string_view view = TrimWhitespace(line);
    if (view.empty()) continue;
    if (StartsWith(view, "#dataset ")) {
      dataset.name = std::string(TrimWhitespace(view.substr(9)));
      saw_header = true;
    } else if (StartsWith(view, "#block ")) {
      if (!saw_header) return ParseError(line_no, "#block before #dataset");
      auto parts = SplitWhitespace(view.substr(7));
      if (parts.size() != 2) return ParseError(line_no, "malformed #block");
      Block block;
      block.query = parts[0];
      int declared_docs = 0;
      if (!ParseInt(parts[1], &declared_docs) || declared_docs < 0) {
        return ParseError(line_no, "bad document count");
      }
      for (int d = 0; d < declared_docs; ++d) {
        if (!next_line()) return ParseError(line_no, "unexpected EOF in block");
        std::string_view doc_line = TrimWhitespace(line);
        if (!StartsWith(doc_line, "#doc ")) {
          return ParseError(line_no, "expected #doc");
        }
        auto doc_parts = SplitWhitespace(doc_line.substr(5));
        if (doc_parts.size() != 2) return ParseError(line_no, "malformed #doc");
        Document doc;
        doc.id = doc_parts[0];
        int label = 0;
        if (!ParseInt(doc_parts[1], &label)) {
          return ParseError(line_no, "bad entity label");
        }
        if (!next_line()) return ParseError(line_no, "unexpected EOF after #doc");
        std::string_view url_line = TrimWhitespace(line);
        if (!StartsWith(url_line, "#url ")) {
          return ParseError(line_no, "expected #url");
        }
        doc.url = std::string(TrimWhitespace(url_line.substr(5)));
        if (!next_line()) return ParseError(line_no, "unexpected EOF after #url");
        std::string_view text_line = TrimWhitespace(line);
        if (!StartsWith(text_line, "#text ")) {
          return ParseError(line_no, "expected #text");
        }
        int text_lines = 0;
        if (!ParseInt(text_line.substr(6), &text_lines) || text_lines < 0) {
          return ParseError(line_no, "bad text line count");
        }
        std::string text;
        for (int t = 0; t < text_lines; ++t) {
          if (!next_line()) return ParseError(line_no, "unexpected EOF in text");
          text += line;
          if (t + 1 < text_lines) text += '\n';
        }
        doc.text = std::move(text);
        block.documents.push_back(std::move(doc));
        block.entity_labels.push_back(label);
      }
      dataset.blocks.push_back(std::move(block));
    } else {
      return ParseError(line_no, "unrecognized directive");
    }
  }
  if (!saw_header) return Status::Corruption("missing #dataset header");
  return dataset;
}

Result<Dataset> LoadDatasetFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: ", path);
  return LoadDataset(in);
}

Status SaveGazetteer(const extract::Gazetteer& gazetteer, std::ostream& os) {
  os << "#gazetteer " << gazetteer.size() << "\n";
  for (int i = 0; i < gazetteer.size(); ++i) {
    const extract::GazetteerEntry& e = gazetteer.entry(i);
    os << EntityTypeToString(e.type) << "\t" << FormatDouble(e.weight, 6)
       << "\t" << e.surface << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Result<extract::Gazetteer> LoadGazetteer(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return Status::Corruption("empty gazetteer");
  std::string_view header = TrimWhitespace(line);
  if (!StartsWith(header, "#gazetteer ")) {
    return Status::Corruption("missing #gazetteer header");
  }
  int count = 0;
  if (!ParseInt(header.substr(11), &count) || count < 0) {
    return Status::Corruption("bad gazetteer count");
  }
  extract::Gazetteer gazetteer;
  for (int i = 0; i < count; ++i) {
    if (!std::getline(is, line)) {
      return Status::Corruption("unexpected EOF in gazetteer at entry ", i);
    }
    auto fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::Corruption("malformed gazetteer entry at ", i);
    }
    extract::EntityType type;
    if (fields[0] == "person") {
      type = extract::EntityType::kPerson;
    } else if (fields[0] == "organization") {
      type = extract::EntityType::kOrganization;
    } else if (fields[0] == "location") {
      type = extract::EntityType::kLocation;
    } else if (fields[0] == "concept") {
      type = extract::EntityType::kConcept;
    } else {
      return Status::Corruption("unknown entity type: ", fields[0]);
    }
    double weight = 1.0;
    if (!ParseDouble(fields[1], &weight)) {
      return Status::Corruption("bad gazetteer weight at ", i);
    }
    gazetteer.Add(fields[2], type, weight);
  }
  gazetteer.Build();
  return gazetteer;
}

}  // namespace corpus
}  // namespace weber

// Document / Block / Dataset: the data model of the entity resolution task
// (Section II). A dataset holds one block per ambiguous person name; each
// block holds the Web pages returned for that name, plus the ground-truth
// partition (which pages refer to the same real person).

#ifndef WEBER_CORPUS_DOCUMENT_H_
#define WEBER_CORPUS_DOCUMENT_H_

#include <string>
#include <vector>

#include "graph/clustering.h"

namespace weber {
namespace corpus {

/// One Web page.
struct Document {
  std::string id;    ///< Stable identifier, e.g. "cohen/017".
  std::string url;   ///< Page URL.
  std::string text;  ///< Page text content (markup already stripped).
};

/// All pages retrieved for one ambiguous person name, with labels.
struct Block {
  /// The ambiguous name the block is organized around (the search query),
  /// e.g. "cohen". Doubles as the blocking key (Section IV-C, footnote 1).
  std::string query;

  std::vector<Document> documents;

  /// Ground-truth entity label per document (parallel to `documents`).
  /// Labels are arbitrary ints; equal label = same real-world person.
  std::vector<int> entity_labels;

  int num_documents() const { return static_cast<int>(documents.size()); }

  /// Ground truth as a canonical Clustering.
  graph::Clustering GroundTruth() const {
    return graph::Clustering::FromLabels(entity_labels);
  }

  /// Number of distinct persons in the block.
  int NumEntities() const { return GroundTruth().num_clusters(); }
};

/// A collection of blocks (one evaluation dataset).
struct Dataset {
  std::string name;  ///< e.g. "www05-synthetic"
  std::vector<Block> blocks;

  int num_blocks() const { return static_cast<int>(blocks.size()); }

  int TotalDocuments() const {
    int total = 0;
    for (const Block& b : blocks) total += b.num_documents();
    return total;
  }
};

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_DOCUMENT_H_

// Dataset statistics: the per-name profile tables the paper's Section V-A1
// describes its corpora with (documents per name, number of clusters,
// cluster size distribution), plus text-level statistics useful when
// calibrating the synthetic generator against a target corpus.

#ifndef WEBER_CORPUS_STATS_H_
#define WEBER_CORPUS_STATS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "corpus/document.h"

namespace weber {
namespace corpus {

/// Statistics of one block.
struct BlockStats {
  std::string query;
  int num_documents = 0;
  int num_entities = 0;
  int largest_cluster = 0;
  int singleton_clusters = 0;
  /// Cluster sizes, descending.
  std::vector<int> cluster_sizes;
  /// Fraction of document pairs that are true links (class balance of the
  /// pairwise decision problem).
  double link_rate = 0.0;
  /// Mean page length in whitespace tokens.
  double mean_tokens_per_document = 0.0;
  /// Mean distinct whitespace tokens per page.
  double mean_distinct_tokens = 0.0;
};

/// Statistics of a whole dataset.
struct DatasetStats {
  std::string name;
  int num_blocks = 0;
  int total_documents = 0;
  int min_entities = 0;
  int max_entities = 0;
  double mean_entities = 0.0;
  double mean_link_rate = 0.0;
  std::vector<BlockStats> blocks;
};

/// Computes per-block statistics.
BlockStats ComputeBlockStats(const Block& block);

/// Computes dataset-level statistics.
DatasetStats ComputeDatasetStats(const Dataset& dataset);

/// Renders the statistics as an aligned table (one row per block).
void PrintDatasetStats(const DatasetStats& stats, std::ostream& os);

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_STATS_H_

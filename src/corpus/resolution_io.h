// Serialization of resolution outputs (one clustering per block), so the
// CLI can split resolution and evaluation into separate steps — the shape
// of the WePS evaluation campaign (participants submit clusterings, the
// organizers score them).

#ifndef WEBER_CORPUS_RESOLUTION_IO_H_
#define WEBER_CORPUS_RESOLUTION_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/document.h"
#include "graph/clustering.h"

namespace weber {
namespace corpus {

/// One block's resolved clustering, keyed by document ids.
struct BlockResolutionRecord {
  std::string query;
  std::vector<std::string> document_ids;
  graph::Clustering clustering;
};

/// Format:
///   #resolution <query> <num_docs>
///   <doc_id>\t<cluster_label>
Status SaveResolutions(const std::vector<BlockResolutionRecord>& resolutions,
                       std::ostream& os);
Status SaveResolutionsToFile(
    const std::vector<BlockResolutionRecord>& resolutions,
    const std::string& path);

Result<std::vector<BlockResolutionRecord>> LoadResolutions(std::istream& is);
Result<std::vector<BlockResolutionRecord>> LoadResolutionsFromFile(
    const std::string& path);

/// Aligns a loaded resolution with a dataset block (documents matched by
/// id, order-independent) and returns the clustering reindexed to the
/// block's document order. Returns InvalidArgument when ids do not match
/// the block exactly.
Result<graph::Clustering> AlignResolution(const Block& block,
                                          const BlockResolutionRecord& record);

}  // namespace corpus
}  // namespace weber

#endif  // WEBER_CORPUS_RESOLUTION_IO_H_

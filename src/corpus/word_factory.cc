#include "corpus/word_factory.h"

#include <array>

#include "common/random.h"

namespace weber {
namespace corpus {

namespace {

constexpr std::array<const char*, 24> kOnsets = {
    "b", "br", "c", "cr", "d", "dr", "f", "g", "gr", "h", "k", "l",
    "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z"};
constexpr std::array<const char*, 12> kNuclei = {
    "a", "e", "i", "o", "u", "ai", "ea", "ia", "io", "oa", "ou", "ue"};
constexpr std::array<const char*, 14> kCodas = {
    "", "l", "m", "n", "nd", "r", "rn", "s", "st", "t", "th", "x", "ck", "sh"};

constexpr std::array<const char*, 64> kFirstNames = {
    "adam",    "alice",  "andrew", "anna",   "arthur", "brian",  "carla",
    "carol",   "claire", "daniel", "david",  "diana",  "edward", "elena",
    "emily",   "eric",   "frank",  "george", "grace",  "hannah", "harold",
    "helen",   "henry",  "irene",  "jack",   "james",  "janet",  "jason",
    "john",    "julia",  "karen",  "kevin",  "laura",  "leon",   "linda",
    "louis",   "lucy",   "maria",  "mark",   "martin", "mary",   "michael",
    "nancy",   "nina",   "oliver", "oscar",  "paul",   "peter",  "philip",
    "rachel",  "ralph",  "robert", "rosa",   "ruth",   "samuel", "sarah",
    "simon",   "sophia", "steven", "thomas", "victor", "walter", "wendy",
    "william"};

constexpr std::array<const char*, 48> kLastNames = {
    "anderson", "baker",    "bennett", "brooks",   "campbell", "carter",
    "clark",    "collins",  "cooper",  "edwards",  "evans",    "fisher",
    "foster",   "garcia",   "gray",    "griffin",  "hall",     "harris",
    "hayes",    "henderson", "hughes", "jenkins",  "johnson",  "jordan",
    "kelly",    "kennedy",  "lambert", "lawrence", "marshall", "mason",
    "meyer",    "morgan",   "murphy",  "nelson",   "parker",   "patterson",
    "peterson", "reed",     "reynolds", "richards", "russell", "sanders",
    "stewart",  "sullivan", "turner",  "walker",   "watson",   "wright"};

constexpr std::array<const char*, 12> kOrgSuffixes = {
    "institute",  "labs",       "university", "systems", "group",  "college",
    "foundation", "consulting", "networks",   "center",  "society", "corp"};

constexpr std::array<const char*, 10> kLocationSuffixes = {
    "ville", "burg", "field", "ford", "haven", "port", "ton", "dale", "wood",
    "bridge"};

constexpr std::array<const char*, 5> kTlds = {"edu", "org", "com", "net", "io"};

constexpr std::array<const char*, 8> kHostingNames = {
    "hostral", "webhome", "pageland", "netfolio", "sitenest", "webgarden",
    "freepage", "homestead"};

// Deterministic per-index mixing so neighbouring indices do not produce
// near-identical words.
uint64_t Mix(uint64_t kind, uint64_t index) {
  SplitMix64 mixer(kind * 0x9E3779B97F4A7C15ULL + index + 1);
  return mixer.Next();
}

std::string Syllable(uint64_t bits) {
  std::string s;
  s += kOnsets[bits % kOnsets.size()];
  bits /= kOnsets.size();
  s += kNuclei[bits % kNuclei.size()];
  bits /= kNuclei.size();
  s += kCodas[bits % kCodas.size()];
  return s;
}

std::string PseudoWord(uint64_t kind, int index) {
  uint64_t bits = Mix(kind, static_cast<uint64_t>(index));
  // Two or three syllables; always append the index in base-26 letters when
  // collisions would otherwise be possible (cheap uniqueness guarantee).
  std::string w = Syllable(bits);
  w += Syllable(bits >> 24);
  if (bits & 1) w += Syllable(bits >> 40);
  // Uniqueness suffix, letters only so tokenization keeps it one token.
  int n = index;
  std::string suffix;
  do {
    suffix += static_cast<char>('a' + n % 26);
    n /= 26;
  } while (n > 0);
  return w + suffix;
}

std::string PoolName(const char* const* pool, size_t pool_size, int index) {
  std::string base = pool[index % pool_size];
  int round = index / static_cast<int>(pool_size);
  if (round > 0) base += std::to_string(round + 1);
  return base;
}

}  // namespace

std::string WordFactory::Word(int index) { return PseudoWord(1, index); }

std::string WordFactory::FirstName(int index) {
  return PoolName(kFirstNames.data(), kFirstNames.size(), index);
}

std::string WordFactory::LastName(int index) {
  return PoolName(kLastNames.data(), kLastNames.size(), index);
}

std::string WordFactory::ConceptPhrase(int index) {
  uint64_t bits = Mix(2, static_cast<uint64_t>(index));
  std::string phrase = Word(static_cast<int>(bits % 5000) + 100000 + index * 3);
  phrase += " ";
  phrase += Word(static_cast<int>((bits >> 20) % 5000) + 200000 + index * 3);
  if (bits & 4) {
    phrase += " ";
    phrase += Word(static_cast<int>((bits >> 40) % 5000) + 300000 + index * 3);
  }
  return phrase;
}

std::string WordFactory::Organization(int index) {
  uint64_t bits = Mix(3, static_cast<uint64_t>(index));
  std::string name = PseudoWord(4, index);
  name += " ";
  name += kOrgSuffixes[bits % kOrgSuffixes.size()];
  return name;
}

std::string WordFactory::Location(int index) {
  uint64_t bits = Mix(5, static_cast<uint64_t>(index));
  std::string name = Syllable(bits);
  name += Syllable(bits >> 24);
  name += kLocationSuffixes[(bits >> 48) % kLocationSuffixes.size()];
  int n = index;
  std::string suffix;
  do {
    suffix += static_cast<char>('a' + n % 26);
    n /= 26;
  } while (n > 0);
  return name + suffix;
}

std::string WordFactory::Domain(int index) {
  uint64_t bits = Mix(6, static_cast<uint64_t>(index));
  return PseudoWord(7, index) + "." + kTlds[bits % kTlds.size()];
}

std::string WordFactory::HostingDomain(int index) {
  return std::string(kHostingNames[index % kHostingNames.size()]) + ".com";
}

const std::vector<std::string>& WordFactory::FunctionWords() {
  static const std::vector<std::string> kWords = {
      "the",  "of",   "and",  "a",    "in",   "to",   "is",    "was",
      "for",  "with", "on",   "as",   "by",   "at",   "from",  "that",
      "this", "it",   "an",   "be",   "are",  "or",   "which", "their",
      "has",  "had",  "also", "more", "other", "into", "about", "after"};
  return kWords;
}

}  // namespace corpus
}  // namespace weber

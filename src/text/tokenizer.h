// Word tokenizer for Web page text.

#ifndef WEBER_TEXT_TOKENIZER_H_
#define WEBER_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace weber {
namespace text {

struct TokenizerOptions {
  /// Lowercase tokens (ASCII fold).
  bool lowercase = true;
  /// Keep digits-only tokens ("2010"). Mixed alnum tokens are always kept.
  bool keep_numbers = true;
  /// Minimum token length; shorter tokens are dropped.
  int min_token_length = 1;
  /// Maximum token length; longer tokens are truncated (defensive bound
  /// against pathological inputs such as base64 blobs on Web pages).
  int max_token_length = 64;
};

/// Splits raw text into word tokens. A token is a maximal run of ASCII
/// letters/digits plus embedded apostrophes and hyphens ("o'brien",
/// "entity-resolution"); all other bytes separate tokens. Non-ASCII bytes are
/// treated as separators (the corpus layer ASCII-folds upstream).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `s` and returns the tokens in order of appearance.
  std::vector<std::string> Tokenize(std::string_view s) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_TOKENIZER_H_

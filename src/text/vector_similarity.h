// Vector-space similarity measures over SparseVector document vectors.
//
// All measures return values in [0, 1] (Pearson correlation is affinely
// rescaled from [-1, 1]); the entity-resolution framework requires that
// range (Section III of the paper).

#ifndef WEBER_TEXT_VECTOR_SIMILARITY_H_
#define WEBER_TEXT_VECTOR_SIMILARITY_H_

#include "text/sparse_vector.h"

namespace weber {
namespace text {

/// Cosine similarity: dot(a,b) / (|a||b|). 0 if either vector is empty.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Pearson correlation across `dimension` coordinates (absent ids count as
/// zeros), rescaled to [0, 1] via (r + 1) / 2. `dimension` should be at
/// least the union size of the two vectors (typically the vocabulary size);
/// a smaller value — e.g. a stale vocabulary dimension — is clamped up to
/// the union size at runtime and counted in PearsonDimensionCorrections().
/// Returns 0.5 (i.e. r = 0) for degenerate inputs (constant vectors).
double PearsonSimilarity(const SparseVector& a, const SparseVector& b,
                         int dimension);

/// Number of PearsonSimilarity calls on this thread whose `dimension` was
/// below the union size and had to be corrected. Thread-local so callers
/// can attribute corrections to one resolution run; read a delta around the
/// work being attributed.
long long PearsonDimensionCorrections();

/// Extended Jaccard (Tanimoto) coefficient:
/// dot(a,b) / (|a|^2 + |b|^2 - dot(a,b)). 0 if both vectors are empty.
double ExtendedJaccardSimilarity(const SparseVector& a, const SparseVector& b);

/// Set-based Jaccard over the ids (weights ignored): |A∩B| / |A∪B|.
double JaccardOverlap(const SparseVector& a, const SparseVector& b);

/// Dice coefficient over ids: 2|A∩B| / (|A| + |B|).
double DiceOverlap(const SparseVector& a, const SparseVector& b);

/// Overlap coefficient over ids: |A∩B| / min(|A|, |B|). 0 if either empty.
double OverlapCoefficient(const SparseVector& a, const SparseVector& b);

/// The paper's "number of overlapping items" measure, squashed into [0, 1]:
/// n / (n + damping). `damping` controls how quickly counts saturate
/// (default 2: one shared item -> 0.33, four -> 0.67).
double SaturatingOverlap(const SparseVector& a, const SparseVector& b,
                         double damping = 2.0);

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_VECTOR_SIMILARITY_H_

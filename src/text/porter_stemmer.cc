#include "text/porter_stemmer.h"

namespace weber {
namespace text {

namespace {

// Working buffer view: the algorithm mutates a std::string in place and
// tracks the end of the relevant region with `k` (index of last char).
struct Ctx {
  std::string b;
  int k = 0;   // offset of the last character of the current word
  int j = 0;   // general-purpose offset set by EndsWith

  bool IsConsonant(int i) const {
    switch (b[i]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measures the number of consonant-vowel sequences between 0 and j:
  // <c><v>       -> 0
  // <c>vc<v>     -> 1
  // <c>vcvc<v>   -> 2 ...
  int Measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True iff 0..j contains a vowel.
  bool HasVowelInStem() const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // True iff chars at i-1, i are a double consonant.
  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b[i] != b[i - 1]) return false;
    return IsConsonant(i);
  }

  // True iff i-2, i-1, i are consonant-vowel-consonant and the final
  // consonant is not w, x or y ("cvc" test used for -e restoration).
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char ch = b[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True iff the word ends with `s`; sets j to the offset before the suffix.
  bool EndsWith(std::string_view s) {
    int len = static_cast<int>(s.size());
    if (len > k + 1) return false;
    if (b.compare(k - len + 1, len, s) != 0) return false;
    j = k - len;
    return true;
  }

  // Replaces the suffix (after EndsWith set j) with `s` and updates k.
  void SetTo(std::string_view s) {
    b.replace(j + 1, b.size() - j - 1, s);
    k = j + static_cast<int>(s.size());
    b.resize(k + 1);
  }

  // Replaces the suffix with s if the measure of the stem is > 0.
  void ReplaceIfM(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }
};

// Step 1a: plurals. caresses->caress, ponies->poni, ties->ti, cats->cat.
void Step1a(Ctx* c) {
  if (c->b[c->k] != 's') return;
  if (c->EndsWith("sses")) {
    c->k -= 2;
    c->b.resize(c->k + 1);
  } else if (c->EndsWith("ies")) {
    c->SetTo("i");
  } else if (c->b[c->k - 1] != 's') {
    c->k -= 1;
    c->b.resize(c->k + 1);
  }
}

// Step 1b: -ed / -ing. feed->feed, agreed->agree, plastered->plaster,
// motoring->motor. With cleanup of -at/-bl/-iz and double consonants.
void Step1b(Ctx* c) {
  bool cleanup = false;
  if (c->EndsWith("eed")) {
    if (c->Measure() > 0) {
      c->k -= 1;
      c->b.resize(c->k + 1);
    }
  } else if (c->EndsWith("ed")) {
    if (c->HasVowelInStem()) {
      c->k = c->j;
      c->b.resize(c->k + 1);
      cleanup = true;
    }
  } else if (c->EndsWith("ing")) {
    if (c->HasVowelInStem()) {
      c->k = c->j;
      c->b.resize(c->k + 1);
      cleanup = true;
    }
  }
  if (!cleanup) return;
  if (c->EndsWith("at")) {
    c->SetTo("ate");
  } else if (c->EndsWith("bl")) {
    c->SetTo("ble");
  } else if (c->EndsWith("iz")) {
    c->SetTo("ize");
  } else if (c->DoubleConsonant(c->k)) {
    char ch = c->b[c->k];
    if (ch != 'l' && ch != 's' && ch != 'z') {
      c->k -= 1;
      c->b.resize(c->k + 1);
    }
  } else if (c->Measure() == 1 && c->Cvc(c->k)) {
    c->j = c->k;
    c->SetTo("e");
  }
}

// Step 1c: y -> i when there is another vowel in the stem.
void Step1c(Ctx* c) {
  if (c->EndsWith("y") && c->HasVowelInStem()) c->b[c->k] = 'i';
}

// Step 2: double/triple suffixes mapped to single ones, when m > 0.
void Step2(Ctx* c) {
  switch (c->b[c->k - 1]) {
    case 'a':
      if (c->EndsWith("ational")) { c->ReplaceIfM("ate"); return; }
      if (c->EndsWith("tional")) { c->ReplaceIfM("tion"); return; }
      break;
    case 'c':
      if (c->EndsWith("enci")) { c->ReplaceIfM("ence"); return; }
      if (c->EndsWith("anci")) { c->ReplaceIfM("ance"); return; }
      break;
    case 'e':
      if (c->EndsWith("izer")) { c->ReplaceIfM("ize"); return; }
      break;
    case 'l':
      // The published improvement: -abli handled as -able via "bli"->"ble".
      if (c->EndsWith("bli")) { c->ReplaceIfM("ble"); return; }
      if (c->EndsWith("alli")) { c->ReplaceIfM("al"); return; }
      if (c->EndsWith("entli")) { c->ReplaceIfM("ent"); return; }
      if (c->EndsWith("eli")) { c->ReplaceIfM("e"); return; }
      if (c->EndsWith("ousli")) { c->ReplaceIfM("ous"); return; }
      break;
    case 'o':
      if (c->EndsWith("ization")) { c->ReplaceIfM("ize"); return; }
      if (c->EndsWith("ation")) { c->ReplaceIfM("ate"); return; }
      if (c->EndsWith("ator")) { c->ReplaceIfM("ate"); return; }
      break;
    case 's':
      if (c->EndsWith("alism")) { c->ReplaceIfM("al"); return; }
      if (c->EndsWith("iveness")) { c->ReplaceIfM("ive"); return; }
      if (c->EndsWith("fulness")) { c->ReplaceIfM("ful"); return; }
      if (c->EndsWith("ousness")) { c->ReplaceIfM("ous"); return; }
      break;
    case 't':
      if (c->EndsWith("aliti")) { c->ReplaceIfM("al"); return; }
      if (c->EndsWith("iviti")) { c->ReplaceIfM("ive"); return; }
      if (c->EndsWith("biliti")) { c->ReplaceIfM("ble"); return; }
      break;
    case 'g':
      if (c->EndsWith("logi")) { c->ReplaceIfM("log"); return; }
      break;
    default:
      break;
  }
}

// Step 3: -icate, -ful, -ness etc.
void Step3(Ctx* c) {
  switch (c->b[c->k]) {
    case 'e':
      if (c->EndsWith("icate")) { c->ReplaceIfM("ic"); return; }
      if (c->EndsWith("ative")) { c->ReplaceIfM(""); return; }
      if (c->EndsWith("alize")) { c->ReplaceIfM("al"); return; }
      break;
    case 'i':
      if (c->EndsWith("iciti")) { c->ReplaceIfM("ic"); return; }
      break;
    case 'l':
      if (c->EndsWith("ical")) { c->ReplaceIfM("ic"); return; }
      if (c->EndsWith("ful")) { c->ReplaceIfM(""); return; }
      break;
    case 's':
      if (c->EndsWith("ness")) { c->ReplaceIfM(""); return; }
      break;
    default:
      break;
  }
}

// Step 4: -ant, -ence etc. removed when m > 1.
void Step4(Ctx* c) {
  switch (c->b[c->k - 1]) {
    case 'a':
      if (c->EndsWith("al")) break;
      return;
    case 'c':
      if (c->EndsWith("ance")) break;
      if (c->EndsWith("ence")) break;
      return;
    case 'e':
      if (c->EndsWith("er")) break;
      return;
    case 'i':
      if (c->EndsWith("ic")) break;
      return;
    case 'l':
      if (c->EndsWith("able")) break;
      if (c->EndsWith("ible")) break;
      return;
    case 'n':
      if (c->EndsWith("ant")) break;
      if (c->EndsWith("ement")) break;
      if (c->EndsWith("ment")) break;
      if (c->EndsWith("ent")) break;
      return;
    case 'o':
      if (c->EndsWith("ion") && c->j >= 0 &&
          (c->b[c->j] == 's' || c->b[c->j] == 't')) {
        break;
      }
      if (c->EndsWith("ou")) break;  // for -ous
      return;
    case 's':
      if (c->EndsWith("ism")) break;
      return;
    case 't':
      if (c->EndsWith("ate")) break;
      if (c->EndsWith("iti")) break;
      return;
    case 'u':
      if (c->EndsWith("ous")) break;
      return;
    case 'v':
      if (c->EndsWith("ive")) break;
      return;
    case 'z':
      if (c->EndsWith("ize")) break;
      return;
    default:
      return;
  }
  if (c->Measure() > 1) {
    c->k = c->j;
    c->b.resize(c->k + 1);
  }
}

// Step 5: remove final -e when m > 1 (or m == 1 and not *o); -ll -> -l when
// m > 1.
void Step5(Ctx* c) {
  c->j = c->k;
  if (c->b[c->k] == 'e') {
    int m = c->Measure();
    if (m > 1 || (m == 1 && !c->Cvc(c->k - 1))) {
      c->k -= 1;
      c->b.resize(c->k + 1);
    }
  }
  if (c->b[c->k] == 'l' && c->DoubleConsonant(c->k) && c->Measure() > 1) {
    c->k -= 1;
    c->b.resize(c->k + 1);
  }
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) {
  if (word.size() < 3) return std::string(word);
  Ctx c;
  c.b = std::string(word);
  c.k = static_cast<int>(c.b.size()) - 1;
  Step1a(&c);
  if (c.k > 0) Step1b(&c);
  if (c.k > 0) Step1c(&c);
  if (c.k > 0) Step2(&c);
  if (c.k > 0) Step3(&c);
  if (c.k > 0) Step4(&c);
  if (c.k > 0) Step5(&c);
  return c.b;
}

}  // namespace text
}  // namespace weber

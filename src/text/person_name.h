// Structured person-name handling: parsing surface forms into components
// and comparing names the way Web people search needs — "a cohen" is
// *compatible* with "adam cohen" (initial matches) but not with
// "brian cohen", which plain string similarity cannot express.

#ifndef WEBER_TEXT_PERSON_NAME_H_
#define WEBER_TEXT_PERSON_NAME_H_

#include <string>
#include <string_view>

namespace weber {
namespace text {

/// A parsed person name. Supports the forms that occur on Web pages:
/// "adam cohen", "a cohen", "adam b cohen", "cohen".
struct PersonName {
  std::string first;        ///< empty for bare last names; may be an initial
  std::string middle;       ///< optional middle token(s), joined by spaces
  std::string last;         ///< never empty for a parsed name
  bool first_is_initial = false;  ///< first is a single letter

  bool operator==(const PersonName&) const = default;
};

/// Parses a (lowercase or mixed-case) name string. The final token is the
/// last name; a single-token input is a bare last name. Dots after
/// initials are tolerated ("a. cohen"). Returns a PersonName with empty
/// `last` for empty/whitespace input.
PersonName ParsePersonName(std::string_view raw);

/// Name compatibility classes, ordered by strength.
enum class NameCompatibility : int {
  kDifferent = 0,    ///< different last names, or contradictory firsts
  kLastNameOnly = 1, ///< same last name, at least one side has no first
  kInitialMatch = 2, ///< same last name, initial compatible with full first
  kSameName = 3,     ///< same last name and same (full) first name
};

/// Structural comparison of two names.
NameCompatibility CompareNames(const PersonName& a, const PersonName& b);

/// Compatibility folded into a similarity score in [0, 1], designed to be
/// *correctly non-monotone-resistant*: contradictory first names score
/// 0.05 even though their string similarity would be high.
///   kSameName -> 1.0, kInitialMatch -> 0.8, kLastNameOnly -> 0.5,
///   kDifferent (same last, different first) -> 0.05, different last -> 0.
double NameCompatibilitySimilarity(std::string_view a, std::string_view b);

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_PERSON_NAME_H_

// Porter stemming algorithm (M. F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980). Used to normalize word tokens before
// TF-IDF weighting, mirroring what Lucene's EnglishAnalyzer does.

#ifndef WEBER_TEXT_PORTER_STEMMER_H_
#define WEBER_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace weber {
namespace text {

/// Stateless Porter stemmer for lowercase ASCII words.
class PorterStemmer {
 public:
  /// Returns the stem of `word`. Input is expected lowercase; words shorter
  /// than 3 characters are returned unchanged (per the original algorithm's
  /// convention).
  static std::string Stem(std::string_view word);
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_PORTER_STEMMER_H_

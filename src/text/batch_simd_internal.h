// Internal SIMD entry points shared between batch_similarity.cc (dispatch)
// and batch_similarity_avx2.cc (the only translation unit built with
// -mavx2). Not part of the public text API.
//
// Both kernels consume the transposed quad layout of FrozenVectors: `ranks`
// entry ranks, each rank holding four lanes' term ids (ids[4k .. 4k+3]) and
// weights (weights[4k .. 4k+3]); lane L accumulates candidate 4g + L. Padded
// lanes carry the sentinel id, which indexes a guaranteed-zero slot of the
// dense scatter, so their contribution is an exact IEEE zero add.

#ifndef WEBER_TEXT_BATCH_SIMD_INTERNAL_H_
#define WEBER_TEXT_BATCH_SIMD_INTERNAL_H_

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define WEBER_HAVE_AVX2_KERNELS 1
#endif

namespace weber {
namespace text {
namespace internal {

#ifdef WEBER_HAVE_AVX2_KERNELS
/// For each group g in [g_begin, g_end):
///   out[4*(g - g_begin) + L] = Σ_k dense[ids[4k + L]] * weights[4k + L]
/// over that group's ranks (quad_offsets[g] .. quad_offsets[g+1]),
/// accumulated in rank order per lane (mul then add; never fused). Pairs of
/// groups run on two independent accumulator chains — different lanes, so
/// per-lane addition order (and thus bit-exactness) is untouched while the
/// 4-cycle vector-add dependency no longer bounds throughput.
void DotQuadRangeAvx2(const double* dense, const int32_t* quad_ids,
                      const double* quad_weights, const int64_t* quad_offsets,
                      int g_begin, int g_end, double* out);

/// Same shape for presence counts: out[4*(g - g_begin) + L] =
/// Σ_k present[ids[4k + L]] (0/1 counts; integer, exact).
void OverlapQuadRangeAvx2(const int32_t* present, const int32_t* quad_ids,
                          const int64_t* quad_offsets, int g_begin, int g_end,
                          int32_t* out);
#endif

}  // namespace internal
}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_BATCH_SIMD_INTERNAL_H_

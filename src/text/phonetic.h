// Phonetic codes for person-name matching: American Soundex and a
// refined-Soundex variant. Web pages misspell names ("Kaelbling" /
// "Kelbling"); phonetic equality catches what edit distance treats as a
// real difference and vice versa. Used as an additional string measure in
// the composable function space.

#ifndef WEBER_TEXT_PHONETIC_H_
#define WEBER_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace weber {
namespace text {

/// American Soundex: first letter + three digits ("robert" -> "R163").
/// Non-alphabetic characters are ignored; an empty/non-alphabetic input
/// yields an empty code.
std::string Soundex(std::string_view word);

/// Refined Soundex (Boyce/pure consonant-class string, no length cap,
/// vowels collapsed): better discrimination for longer names
/// ("robert" -> "R196"-style digit string without padding).
std::string RefinedSoundex(std::string_view word);

/// 1.0 when the Soundex codes of the two words match, 0.0 otherwise
/// (empty codes never match).
double SoundexSimilarity(std::string_view a, std::string_view b);

/// Phonetic similarity of full person names: last names compared by
/// Soundex, first names by initial compatibility. Returns a [0, 1] score:
///   1.0  last names phonetically equal and first initials agree
///   0.7  last names phonetically equal, first names unknown on a side
///   0.2  last names phonetically equal, contradicting first initials
///   0.0  otherwise
double PhoneticNameSimilarity(std::string_view a, std::string_view b);

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_PHONETIC_H_

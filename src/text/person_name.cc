#include "text/person_name.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace weber {
namespace text {

namespace {

/// Strips a trailing dot from an initial token ("a." -> "a").
std::string StripDot(std::string token) {
  if (!token.empty() && token.back() == '.') token.pop_back();
  return token;
}

bool IsInitial(const std::string& token) { return token.size() == 1; }

}  // namespace

PersonName ParsePersonName(std::string_view raw) {
  PersonName name;
  std::vector<std::string> tokens = SplitWhitespace(ToLowerAscii(raw));
  for (auto& t : tokens) t = StripDot(std::move(t));
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [](const std::string& t) { return t.empty(); }),
               tokens.end());
  if (tokens.empty()) return name;
  name.last = tokens.back();
  if (tokens.size() >= 2) {
    name.first = tokens.front();
    name.first_is_initial = IsInitial(name.first);
  }
  if (tokens.size() >= 3) {
    std::vector<std::string> middle(tokens.begin() + 1, tokens.end() - 1);
    name.middle = Join(middle, " ");
  }
  return name;
}

NameCompatibility CompareNames(const PersonName& a, const PersonName& b) {
  if (a.last.empty() || b.last.empty() || a.last != b.last) {
    return NameCompatibility::kDifferent;
  }
  if (a.first.empty() || b.first.empty()) {
    return NameCompatibility::kLastNameOnly;
  }
  if (a.first == b.first && !a.first_is_initial) {
    return NameCompatibility::kSameName;
  }
  if (a.first == b.first && a.first_is_initial) {
    // Two matching initials: consistent, but weaker than full names.
    return NameCompatibility::kInitialMatch;
  }
  // One side an initial, the other a full first name starting with it.
  if (a.first_is_initial != b.first_is_initial) {
    const std::string& initial = a.first_is_initial ? a.first : b.first;
    const std::string& full = a.first_is_initial ? b.first : a.first;
    if (!full.empty() && full.front() == initial.front()) {
      return NameCompatibility::kInitialMatch;
    }
  }
  return NameCompatibility::kDifferent;
}

double NameCompatibilitySimilarity(std::string_view a, std::string_view b) {
  PersonName pa = ParsePersonName(a);
  PersonName pb = ParsePersonName(b);
  if (pa.last.empty() || pb.last.empty() || pa.last != pb.last) return 0.0;
  switch (CompareNames(pa, pb)) {
    case NameCompatibility::kSameName:
      return 1.0;
    case NameCompatibility::kInitialMatch:
      return 0.8;
    case NameCompatibility::kLastNameOnly:
      return 0.5;
    case NameCompatibility::kDifferent:
      return 0.05;  // same last name, contradictory firsts
  }
  return 0.0;
}

}  // namespace text
}  // namespace weber

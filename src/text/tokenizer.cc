#include "text/tokenizer.h"

#include <cctype>

namespace weber {
namespace text {

namespace {

inline bool IsWordChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

inline bool IsJoiner(unsigned char c) { return c == '\'' || c == '-'; }

inline bool IsDigitsOnly(std::string_view t) {
  for (char c : t) {
    if (c < '0' || c > '9') return false;
  }
  return !t.empty();
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view s) const {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    while (i < n && !IsWordChar(static_cast<unsigned char>(s[i]))) ++i;
    if (i >= n) break;
    size_t start = i;
    while (i < n) {
      unsigned char c = static_cast<unsigned char>(s[i]);
      if (IsWordChar(c)) {
        ++i;
      } else if (IsJoiner(c) && i + 1 < n &&
                 IsWordChar(static_cast<unsigned char>(s[i + 1]))) {
        // Joiner must be surrounded by word chars to stay inside the token.
        ++i;
      } else {
        break;
      }
    }
    std::string_view raw = s.substr(start, i - start);
    if (static_cast<int>(raw.size()) < options_.min_token_length) continue;
    if (!options_.keep_numbers && IsDigitsOnly(raw)) continue;
    if (static_cast<int>(raw.size()) > options_.max_token_length) {
      raw = raw.substr(0, options_.max_token_length);
    }
    std::string token(raw);
    if (options_.lowercase) {
      for (char& c : token) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      }
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace text
}  // namespace weber

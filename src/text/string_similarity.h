// Character-level string similarity measures, used by the name- and
// URL-based similarity functions (F2, F3, F7).
//
// All similarities return values in [0, 1]; 1 means identical.

#ifndef WEBER_TEXT_STRING_SIMILARITY_H_
#define WEBER_TEXT_STRING_SIMILARITY_H_

#include <string_view>

namespace weber {
namespace text {

/// Levenshtein edit distance (unit costs). O(|a| * |b|) time, O(min) space.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(|a|, |b|); 1 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity (matching window + transpositions).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by common-prefix length (up to 4 chars) with
/// the standard scaling factor p = 0.1. The de-facto standard for person
/// name matching.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over character n-grams (default bigrams). Strings
/// shorter than n fall back to exact match (1 or 0).
double NgramSimilarity(std::string_view a, std::string_view b, int n = 2);

/// Length of the longest common substring divided by the shorter length.
double LongestCommonSubstringRatio(std::string_view a, std::string_view b);

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_STRING_SIMILARITY_H_

#include "text/analyzer.h"

namespace weber {
namespace text {

std::vector<std::string> Analyzer::Analyze(std::string_view raw_text) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(raw_text);
  std::vector<std::string> terms;
  terms.reserve(tokens.size());
  for (auto& token : tokens) {
    if (options_.remove_stopwords && stopwords_.Contains(token)) continue;
    std::string term =
        options_.stem ? PorterStemmer::Stem(token) : std::move(token);
    if (static_cast<int>(term.size()) < options_.min_term_length) continue;
    terms.push_back(std::move(term));
  }
  return terms;
}

}  // namespace text
}  // namespace weber

// TF-IDF weighting model over a document collection (the "Lucene document
// vector" substitute used by similarity functions F8/F9/F10).

#ifndef WEBER_TEXT_TFIDF_H_
#define WEBER_TEXT_TFIDF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace weber {
namespace text {

struct TfIdfOptions {
  /// Use 1 + log(tf) instead of raw tf (the "l" in ltc weighting).
  bool sublinear_tf = true;
  /// Smooth idf: log((1 + N) / (1 + df)) + 1; avoids zero weights for terms
  /// present in every document and division issues on tiny collections.
  bool smooth_idf = true;
  /// L2-normalize the produced vectors (the "c" in ltc).
  bool l2_normalize = true;
  /// Ignore terms that occur in fewer than this many documents.
  int min_doc_freq = 1;
};

/// Fitted TF-IDF statistics: per-term document frequency over a training
/// collection. Fit once per document block, then vectorize each document.
class TfIdfModel {
 public:
  explicit TfIdfModel(TfIdfOptions options = {}) : options_(options) {}

  /// Accumulates document-frequency counts from one document's term list
  /// (duplicates within the document count once).
  void AddDocument(const std::vector<std::string>& terms);

  /// Finalizes idf weights. Must be called after the last AddDocument and
  /// before Vectorize. Returns FailedPrecondition if no documents were added.
  Status Finalize();

  /// Converts a term list into a TF-IDF weighted sparse vector. Unknown
  /// terms (never seen during fitting) are ignored. Must be finalized.
  SparseVector Vectorize(const std::vector<std::string>& terms) const;

  int num_documents() const { return num_docs_; }
  int vocabulary_size() const { return vocab_.size(); }
  bool finalized() const { return finalized_; }

  /// Idf weight for a term; 0 for unknown terms. Must be finalized.
  double Idf(std::string_view term) const;

  const Vocabulary& vocabulary() const { return vocab_; }

 private:
  TfIdfOptions options_;
  Vocabulary vocab_;
  std::vector<int> doc_freq_;   // by TermId
  std::vector<double> idf_;     // by TermId, valid after Finalize
  int num_docs_ = 0;
  bool finalized_ = false;
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_TFIDF_H_

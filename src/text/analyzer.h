// Analyzer: the tokenize -> stopword-filter -> stem pipeline, mirroring a
// Lucene analyzer chain.

#ifndef WEBER_TEXT_ANALYZER_H_
#define WEBER_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace weber {
namespace text {

struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  /// Drop stopwords (using the default English set unless a custom set is
  /// installed via the Analyzer constructor).
  bool remove_stopwords = true;
  /// Apply the Porter stemmer to surviving tokens.
  bool stem = true;
  /// Drop tokens shorter than this *after* stemming.
  int min_term_length = 2;
};

/// Turns raw text into index terms.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {})
      : options_(options),
        stopwords_(options.remove_stopwords ? StopwordSet::DefaultEnglish()
                                            : StopwordSet::Empty()),
        tokenizer_(options.tokenizer) {}

  Analyzer(AnalyzerOptions options, StopwordSet stopwords)
      : options_(options),
        stopwords_(std::move(stopwords)),
        tokenizer_(options.tokenizer) {}

  /// Full pipeline: tokenize, drop stopwords, stem, drop short terms.
  std::vector<std::string> Analyze(std::string_view raw_text) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
  StopwordSet stopwords_;
  Tokenizer tokenizer_;
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_ANALYZER_H_

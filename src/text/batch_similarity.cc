#include "text/batch_similarity.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "text/batch_simd_internal.h"

namespace weber {
namespace text {

namespace {

std::atomic<int> g_forced_mode{static_cast<int>(KernelMode::kAuto)};

KernelMode DetectKernelMode() {
  return Avx2Available() ? KernelMode::kAvx2 : KernelMode::kScalar;
}

}  // namespace

bool Avx2Available() {
#ifdef WEBER_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

KernelMode ActiveKernelMode() {
  const int forced = g_forced_mode.load(std::memory_order_relaxed);
  if (forced == static_cast<int>(KernelMode::kScalar)) {
    return KernelMode::kScalar;
  }
  if (forced == static_cast<int>(KernelMode::kAvx2)) {
    return Avx2Available() ? KernelMode::kAvx2 : KernelMode::kScalar;
  }
  // CPUID dispatch, resolved once per process.
  static const KernelMode detected = DetectKernelMode();
  return detected;
}

void ForceKernelMode(KernelMode mode) {
  g_forced_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

FrozenVectors FrozenVectors::Freeze(
    const std::vector<const SparseVector*>& vectors) {
  FrozenVectors frozen;
  const int n = static_cast<int>(vectors.size());
  frozen.offsets_.resize(n + 1, 0);
  frozen.counts_.resize(n, 0);
  frozen.norms_.resize(n, 0.0);
  frozen.sums_.resize(n, 0.0);
  frozen.sum_squares_.resize(n, 0.0);

  int64_t total = 0;
  int32_t max_id = -1;
  for (int i = 0; i < n; ++i) {
    const size_t count = vectors[i] == nullptr ? 0 : vectors[i]->size();
    total += static_cast<int64_t>(count);
    frozen.offsets_[i + 1] = total;
    frozen.counts_[i] = static_cast<int32_t>(count);
    if (count > 0) max_id = std::max(max_id, vectors[i]->entries().back().id);
  }
  frozen.sentinel_ = max_id + 1;

  frozen.ids_.resize(total);
  frozen.weights_.resize(total);
  for (int i = 0; i < n; ++i) {
    if (vectors[i] == nullptr) continue;
    int64_t at = frozen.offsets_[i];
    // The statistics loops mirror SparseVector::Sum / Norm exactly (same
    // sequential accumulation), so the cached values are bit-identical to
    // what the interpreted path recomputes per pair.
    double sum = 0.0, sum_squares = 0.0;
    for (const SparseVector::Entry& e : vectors[i]->entries()) {
      frozen.ids_[at] = e.id;
      frozen.weights_[at] = e.weight;
      ++at;
      sum += e.weight;
      sum_squares += e.weight * e.weight;
    }
    frozen.sums_[i] = sum;
    frozen.sum_squares_[i] = sum_squares;
    frozen.norms_[i] = std::sqrt(sum_squares);
  }

  // Transposed quad layout: groups of four candidates, entries rank-major,
  // lanes padded to the group's longest vector with sentinel entries.
  const int num_groups = (n + 3) / 4;
  frozen.quad_offsets_.resize(num_groups + 1, 0);
  int64_t total_ranks = 0;
  for (int g = 0; g < num_groups; ++g) {
    int32_t longest = 0;
    for (int lane = 0; lane < 4; ++lane) {
      const int v = 4 * g + lane;
      if (v < n) longest = std::max(longest, frozen.counts_[v]);
    }
    total_ranks += longest;
    frozen.quad_offsets_[g + 1] = total_ranks;
  }
  frozen.quad_ids_.assign(4 * total_ranks, frozen.sentinel_);
  frozen.quad_weights_.assign(4 * total_ranks, 0.0);
  for (int g = 0; g < num_groups; ++g) {
    const int64_t rank_begin = frozen.quad_offsets_[g];
    for (int lane = 0; lane < 4; ++lane) {
      const int v = 4 * g + lane;
      if (v >= n) continue;
      const int64_t src = frozen.offsets_[v];
      for (int32_t k = 0; k < frozen.counts_[v]; ++k) {
        frozen.quad_ids_[4 * (rank_begin + k) + lane] = frozen.ids_[src + k];
        frozen.quad_weights_[4 * (rank_begin + k) + lane] =
            frozen.weights_[src + k];
      }
    }
  }
  return frozen;
}

BatchScorer::BatchScorer(const FrozenVectors* frozen) : frozen_(frozen) {
  // Slot `sentinel_` stays zero / absent forever; padded quad lanes and any
  // candidate id the anchor lacks both read exact zeros from it.
  dense_.assign(static_cast<size_t>(frozen_->sentinel_) + 1, 0.0);
  present_.assign(static_cast<size_t>(frozen_->sentinel_) + 1, 0);
}

void BatchScorer::SetAnchor(int anchor) {
  assert(anchor >= 0 && anchor < frozen_->size());
  if (anchor == anchor_) return;
  if (anchor_ >= 0) {
    for (int64_t k = frozen_->offsets_[anchor_];
         k < frozen_->offsets_[anchor_ + 1]; ++k) {
      dense_[frozen_->ids_[k]] = 0.0;
      present_[frozen_->ids_[k]] = 0;
    }
  }
  anchor_ = anchor;
  for (int64_t k = frozen_->offsets_[anchor]; k < frozen_->offsets_[anchor + 1];
       ++k) {
    dense_[frozen_->ids_[k]] = frozen_->weights_[k];
    present_[frozen_->ids_[k]] = 1;
  }
}

void BatchScorer::DotQuadRange(int begin, int end, double* out) const {
#ifdef WEBER_HAVE_AVX2_KERNELS
  const int g_begin = begin / 4;
  const int g_end = (end - 1) / 4 + 1;
  quad_scratch_.resize(4 * static_cast<size_t>(g_end - g_begin));
  internal::DotQuadRangeAvx2(dense_.data(), frozen_->quad_ids_.data(),
                             frozen_->quad_weights_.data(),
                             frozen_->quad_offsets_.data(), g_begin, g_end,
                             quad_scratch_.data());
  for (int j = begin; j < end; ++j) {
    out[j - begin] = quad_scratch_[j - 4 * g_begin];
  }
#else
  (void)begin;
  (void)end;
  (void)out;
  assert(false && "AVX2 kernels not built into this binary");
#endif
}

void BatchScorer::Dot(int begin, int end, double* out) const {
  assert(anchor_ >= 0);
  assert(begin >= 0 && begin <= end && end <= frozen_->size());
  if (begin == end) return;
  if (ActiveKernelMode() == KernelMode::kAvx2) {
    DotQuadRange(begin, end, out);
    return;
  }
  // Scalar fallback: each candidate's entries accumulate in ascending id
  // order against the dense anchor — the same addition sequence as
  // SparseVector::Dot's merge join (non-common ids add exact zeros).
  for (int j = begin; j < end; ++j) {
    double acc = 0.0;
    for (int64_t k = frozen_->offsets_[j]; k < frozen_->offsets_[j + 1]; ++k) {
      acc += dense_[frozen_->ids_[k]] * frozen_->weights_[k];
    }
    out[j - begin] = acc;
  }
}

void BatchScorer::OverlapCount(int begin, int end, int32_t* out) const {
  assert(anchor_ >= 0);
  assert(begin >= 0 && begin <= end && end <= frozen_->size());
  if (begin == end) return;
#ifdef WEBER_HAVE_AVX2_KERNELS
  if (ActiveKernelMode() == KernelMode::kAvx2) {
    const int g_begin = begin / 4;
    const int g_end = (end - 1) / 4 + 1;
    overlap_scratch_.resize(4 * static_cast<size_t>(g_end - g_begin));
    internal::OverlapQuadRangeAvx2(present_.data(), frozen_->quad_ids_.data(),
                                   frozen_->quad_offsets_.data(), g_begin,
                                   g_end, overlap_scratch_.data());
    for (int j = begin; j < end; ++j) {
      out[j - begin] = overlap_scratch_[j - 4 * g_begin];
    }
    return;
  }
#endif
  for (int j = begin; j < end; ++j) {
    int32_t count = 0;
    for (int64_t k = frozen_->offsets_[j]; k < frozen_->offsets_[j + 1]; ++k) {
      count += present_[frozen_->ids_[k]];
    }
    out[j - begin] = count;
  }
}

void BatchScorer::Cosine(int begin, int end, double* out) const {
  Dot(begin, end, out);
  const double na = frozen_->norms_[anchor_];
  for (int j = begin; j < end; ++j) {
    const double nb = frozen_->norms_[j];
    if (na == 0.0 || nb == 0.0) {
      out[j - begin] = 0.0;
      continue;
    }
    const double cos = out[j - begin] / (na * nb);
    out[j - begin] = std::clamp(cos, 0.0, 1.0);
  }
}

void BatchScorer::SaturatingOverlap(double damping, int begin, int end,
                                    double* out) const {
  if (begin == end) return;
  std::vector<int32_t> overlaps(static_cast<size_t>(end - begin));
  OverlapCount(begin, end, overlaps.data());
  for (int j = begin; j < end; ++j) {
    const double n = static_cast<double>(overlaps[j - begin]);
    const double denom = n + damping;
    out[j - begin] = denom <= 0.0 ? 0.0 : n / denom;
  }
}

void BatchScorer::ExtendedJaccard(int begin, int end, double* out) const {
  Dot(begin, end, out);
  const double na2 = frozen_->norms_[anchor_] * frozen_->norms_[anchor_];
  for (int j = begin; j < end; ++j) {
    const double dot = out[j - begin];
    const double nb2 = frozen_->norms_[j] * frozen_->norms_[j];
    const double denom = na2 + nb2 - dot;
    out[j - begin] = denom <= 0.0 ? 0.0 : std::clamp(dot / denom, 0.0, 1.0);
  }
}

void BatchScorer::PreparePearson(int dimension) {
  if (pearson_dim_ == dimension) return;
  pearson_dim_ = dimension;
  if (dimension <= 1) return;  // every pair is degenerate; Pearson() shortcuts
  const int n = frozen_->size();
  pearson_means_.resize(n);
  pearson_vars_.resize(n);
  const double nd = static_cast<double>(dimension);
  for (int i = 0; i < n; ++i) {
    const double mean = frozen_->sums_[i] / nd;
    // Replicates the scalar variance loop exactly: the -n*m² start value
    // participates in every intermediate rounding, so Σw² cannot be
    // substituted from the cached sum_squares_.
    double var = -nd * mean * mean;
    for (int64_t k = frozen_->offsets_[i]; k < frozen_->offsets_[i + 1]; ++k) {
      var += frozen_->weights_[k] * frozen_->weights_[k];
    }
    pearson_means_[i] = mean;
    pearson_vars_[i] = var;
  }
}

void BatchScorer::Pearson(int begin, int end, double* out) const {
  assert(pearson_dim_ >= 0 && "call PreparePearson first");
  if (begin == end) return;
  if (pearson_dim_ <= 1) {
    std::fill(out, out + (end - begin), 0.5);
    return;
  }
  Dot(begin, end, out);
  const double nd = static_cast<double>(pearson_dim_);
  const double mean_a = pearson_means_[anchor_];
  const double var_a = pearson_vars_[anchor_];
  for (int j = begin; j < end; ++j) {
    const double mean_b = pearson_means_[j];
    const double var_b = pearson_vars_[j];
    const double cov = out[j - begin] - nd * mean_a * mean_b;
    if (var_a <= 1e-15 || var_b <= 1e-15) {
      out[j - begin] = 0.5;
      continue;
    }
    double r = cov / std::sqrt(var_a * var_b);
    r = std::clamp(r, -1.0, 1.0);
    out[j - begin] = (r + 1.0) / 2.0;
  }
}

}  // namespace text
}  // namespace weber

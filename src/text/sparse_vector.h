// SparseVector: sorted (id, weight) pairs; the document-vector representation
// used throughout the similarity functions.

#ifndef WEBER_TEXT_SPARSE_VECTOR_H_
#define WEBER_TEXT_SPARSE_VECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace weber {
namespace text {

/// Term/concept id; ids are assigned by a Vocabulary or TfIdfModel.
using TermId = int32_t;

/// Sparse non-negative-id vector with entries sorted by id. Weights may be
/// any double (Pearson correlation needs signed intermediate values), though
/// document vectors are non-negative in practice.
class SparseVector {
 public:
  struct Entry {
    TermId id;
    double weight;
    bool operator==(const Entry&) const = default;
  };

  SparseVector() = default;

  /// Builds from possibly-unsorted, possibly-duplicated pairs; duplicate ids
  /// have their weights summed.
  static SparseVector FromPairs(std::vector<Entry> entries);

  /// Builds from an id->weight map.
  static SparseVector FromMap(const std::unordered_map<TermId, double>& m);

  /// Counts occurrences of each id in `ids` (term-frequency vector).
  static SparseVector FromCounts(const std::vector<TermId>& ids);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Weight for `id`, or 0 if absent. O(log n).
  double GetWeight(TermId id) const;

  /// Sum of weights.
  double Sum() const;

  /// Euclidean norm.
  double Norm() const;

  /// Returns a copy scaled to unit Euclidean norm (zero vector unchanged).
  SparseVector Normalized() const;

  /// Multiplies all weights in place.
  void Scale(double factor);

  /// Dot product with another sparse vector. O(n + m).
  double Dot(const SparseVector& other) const;

  /// Number of ids present in both vectors.
  int OverlapCount(const SparseVector& other) const;

  /// Number of distinct ids present in either vector.
  int UnionCount(const SparseVector& other) const;

  bool operator==(const SparseVector& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Entry> entries_;  // sorted by id, unique ids
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_SPARSE_VECTOR_H_

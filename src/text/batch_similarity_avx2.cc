// AVX2 strip kernels. This is the only translation unit compiled with
// -mavx2, and it is compiled with -ffp-contract=off: a fused multiply-add
// would round once where the scalar path rounds twice, breaking the
// bit-exactness guarantee of batch_similarity.h. The explicit mul/add
// intrinsic pair below can never be contracted.

#include "text/batch_simd_internal.h"

#ifdef WEBER_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <algorithm>

namespace weber {
namespace text {
namespace internal {

namespace {

inline __m256d DotRank(const double* dense, const int32_t* ids,
                       const double* weights, int64_t k, __m256d acc) {
  const __m128i idx =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + 4 * k));
  const __m256d w = _mm256_loadu_pd(weights + 4 * k);
  const __m256d d = _mm256_i32gather_pd(dense, idx, 8);
  return _mm256_add_pd(acc, _mm256_mul_pd(d, w));
}

inline __m128i OverlapRank(const int32_t* present, const int32_t* ids,
                           int64_t k, __m128i acc) {
  const __m128i idx =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + 4 * k));
  return _mm_add_epi32(acc, _mm_i32gather_epi32(present, idx, 4));
}

}  // namespace

void DotQuadRangeAvx2(const double* dense, const int32_t* quad_ids,
                      const double* quad_weights, const int64_t* quad_offsets,
                      int g_begin, int g_end, double* out) {
  int g = g_begin;
  // Two groups at a time on independent accumulators: each chain still adds
  // its lanes' entries strictly in rank order, so every lane's rounding
  // sequence is identical to the one-group loop below.
  for (; g + 1 < g_end; g += 2) {
    const int64_t b0 = quad_offsets[g], e0 = quad_offsets[g + 1];
    const int64_t b1 = e0, e1 = quad_offsets[g + 2];
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    int64_t k0 = b0, k1 = b1;
    const int64_t both = std::min(e0 - b0, e1 - b1);
    for (int64_t i = 0; i < both; ++i, ++k0, ++k1) {
      acc0 = DotRank(dense, quad_ids, quad_weights, k0, acc0);
      acc1 = DotRank(dense, quad_ids, quad_weights, k1, acc1);
    }
    for (; k0 < e0; ++k0) acc0 = DotRank(dense, quad_ids, quad_weights, k0, acc0);
    for (; k1 < e1; ++k1) acc1 = DotRank(dense, quad_ids, quad_weights, k1, acc1);
    _mm256_storeu_pd(out + 4 * (g - g_begin), acc0);
    _mm256_storeu_pd(out + 4 * (g - g_begin) + 4, acc1);
  }
  if (g < g_end) {
    __m256d acc = _mm256_setzero_pd();
    for (int64_t k = quad_offsets[g]; k < quad_offsets[g + 1]; ++k) {
      acc = DotRank(dense, quad_ids, quad_weights, k, acc);
    }
    _mm256_storeu_pd(out + 4 * (g - g_begin), acc);
  }
}

void OverlapQuadRangeAvx2(const int32_t* present, const int32_t* quad_ids,
                          const int64_t* quad_offsets, int g_begin, int g_end,
                          int32_t* out) {
  int g = g_begin;
  for (; g + 1 < g_end; g += 2) {
    const int64_t b0 = quad_offsets[g], e0 = quad_offsets[g + 1];
    const int64_t b1 = e0, e1 = quad_offsets[g + 2];
    __m128i acc0 = _mm_setzero_si128();
    __m128i acc1 = _mm_setzero_si128();
    int64_t k0 = b0, k1 = b1;
    const int64_t both = std::min(e0 - b0, e1 - b1);
    for (int64_t i = 0; i < both; ++i, ++k0, ++k1) {
      acc0 = OverlapRank(present, quad_ids, k0, acc0);
      acc1 = OverlapRank(present, quad_ids, k1, acc1);
    }
    for (; k0 < e0; ++k0) acc0 = OverlapRank(present, quad_ids, k0, acc0);
    for (; k1 < e1; ++k1) acc1 = OverlapRank(present, quad_ids, k1, acc1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * (g - g_begin)),
                     acc0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * (g - g_begin) + 4),
                     acc1);
  }
  if (g < g_end) {
    __m128i acc = _mm_setzero_si128();
    for (int64_t k = quad_offsets[g]; k < quad_offsets[g + 1]; ++k) {
      acc = OverlapRank(present, quad_ids, k, acc);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * (g - g_begin)),
                     acc);
  }
}

}  // namespace internal
}  // namespace text
}  // namespace weber

#endif  // WEBER_HAVE_AVX2_KERNELS

#include "text/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace weber {
namespace text {

SparseVector SparseVector::FromPairs(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  SparseVector v;
  v.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!v.entries_.empty() && v.entries_.back().id == e.id) {
      v.entries_.back().weight += e.weight;
    } else {
      v.entries_.push_back(e);
    }
  }
  return v;
}

SparseVector SparseVector::FromMap(
    const std::unordered_map<TermId, double>& m) {
  std::vector<Entry> entries;
  entries.reserve(m.size());
  for (const auto& [id, w] : m) entries.push_back({id, w});
  return FromPairs(std::move(entries));
}

SparseVector SparseVector::FromCounts(const std::vector<TermId>& ids) {
  std::vector<Entry> entries;
  entries.reserve(ids.size());
  for (TermId id : ids) entries.push_back({id, 1.0});
  return FromPairs(std::move(entries));
}

double SparseVector::GetWeight(TermId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, TermId target) { return e.id < target; });
  if (it != entries_.end() && it->id == id) return it->weight;
  return 0.0;
}

double SparseVector::Sum() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += e.weight;
  return s;
}

double SparseVector::Norm() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += e.weight * e.weight;
  return std::sqrt(s);
}

SparseVector SparseVector::Normalized() const {
  double n = Norm();
  SparseVector out = *this;
  if (n > 0.0) out.Scale(1.0 / n);
  return out;
}

void SparseVector::Scale(double factor) {
  for (Entry& e : entries_) e.weight *= factor;
}

double SparseVector::Dot(const SparseVector& other) const {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].id < other.entries_[j].id) {
      ++i;
    } else if (entries_[i].id > other.entries_[j].id) {
      ++j;
    } else {
      dot += entries_[i].weight * other.entries_[j].weight;
      ++i;
      ++j;
    }
  }
  return dot;
}

int SparseVector::OverlapCount(const SparseVector& other) const {
  int count = 0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].id < other.entries_[j].id) {
      ++i;
    } else if (entries_[i].id > other.entries_[j].id) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

int SparseVector::UnionCount(const SparseVector& other) const {
  return static_cast<int>(entries_.size() + other.entries_.size()) -
         OverlapCount(other);
}

}  // namespace text
}  // namespace weber

#include "text/tfidf.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace weber {
namespace text {

void TfIdfModel::AddDocument(const std::vector<std::string>& terms) {
  finalized_ = false;
  std::unordered_set<TermId> seen;
  for (const auto& t : terms) {
    TermId id = vocab_.GetOrAdd(t);
    if (static_cast<size_t>(id) >= doc_freq_.size()) doc_freq_.resize(id + 1, 0);
    if (seen.insert(id).second) doc_freq_[id] += 1;
  }
  ++num_docs_;
}

Status TfIdfModel::Finalize() {
  if (num_docs_ == 0) {
    return Status::FailedPrecondition("TfIdfModel: no documents added");
  }
  idf_.assign(doc_freq_.size(), 0.0);
  for (size_t i = 0; i < doc_freq_.size(); ++i) {
    int df = doc_freq_[i];
    if (df < options_.min_doc_freq) {
      idf_[i] = 0.0;
      continue;
    }
    if (options_.smooth_idf) {
      idf_[i] = std::log((1.0 + num_docs_) / (1.0 + df)) + 1.0;
    } else {
      idf_[i] = std::log(static_cast<double>(num_docs_) / df);
    }
  }
  finalized_ = true;
  return Status::OK();
}

SparseVector TfIdfModel::Vectorize(
    const std::vector<std::string>& terms) const {
  std::unordered_map<TermId, double> tf;
  for (const auto& t : terms) {
    TermId id = vocab_.Lookup(t);
    if (id < 0) continue;
    tf[id] += 1.0;
  }
  std::vector<SparseVector::Entry> entries;
  entries.reserve(tf.size());
  for (const auto& [id, count] : tf) {
    double idf = finalized_ && static_cast<size_t>(id) < idf_.size()
                     ? idf_[id]
                     : 0.0;
    if (idf <= 0.0) continue;
    double weight = options_.sublinear_tf ? 1.0 + std::log(count) : count;
    entries.push_back({id, weight * idf});
  }
  SparseVector v = SparseVector::FromPairs(std::move(entries));
  if (options_.l2_normalize) v = v.Normalized();
  return v;
}

double TfIdfModel::Idf(std::string_view term) const {
  TermId id = vocab_.Lookup(term);
  if (id < 0 || !finalized_ || static_cast<size_t>(id) >= idf_.size()) {
    return 0.0;
  }
  return idf_[id];
}

}  // namespace text
}  // namespace weber

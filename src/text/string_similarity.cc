#include "text/string_similarity.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace weber {
namespace text {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  std::vector<int> row(n + 1);
  for (size_t i = 0; i <= n; ++i) row[i] = static_cast<int>(i);
  for (size_t j = 1; j <= m; ++j) {
    int prev_diag = row[0];  // D[j-1][0]
    row[0] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      int prev_row = row[i];  // D[j-1][i]
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i - 1] + 1, prev_row + 1, prev_diag + cost});
      prev_diag = prev_row;
    }
  }
  return row[n];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int window = std::max(0, std::max(la, lb) / 2 - 1);

  std::vector<bool> matched_a(la, false), matched_b(lb, false);
  int matches = 0;
  for (int i = 0; i < la; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  constexpr double kScaling = 0.1;
  return jaro + prefix * kScaling * (1.0 - jaro);
}

double NgramSimilarity(std::string_view a, std::string_view b, int n) {
  if (n < 1) n = 1;
  if (static_cast<int>(a.size()) < n || static_cast<int>(b.size()) < n) {
    return a == b ? 1.0 : 0.0;
  }
  std::unordered_map<std::string, int> grams;
  const int count_a = static_cast<int>(a.size()) - n + 1;
  const int count_b = static_cast<int>(b.size()) - n + 1;
  for (int i = 0; i < count_a; ++i) {
    grams[std::string(a.substr(i, n))] += 1;
  }
  int shared = 0;
  for (int i = 0; i < count_b; ++i) {
    auto it = grams.find(std::string(b.substr(i, n)));
    if (it != grams.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  return 2.0 * shared / static_cast<double>(count_a + count_b);
}

double LongestCommonSubstringRatio(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(n + 1, 0), cur(n + 1, 0);
  int best = 0;
  for (size_t j = 1; j <= m; ++j) {
    for (size_t i = 1; i <= n; ++i) {
      if (a[i - 1] == b[j - 1]) {
        cur[i] = prev[i - 1] + 1;
        best = std::max(best, cur[i]);
      } else {
        cur[i] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(best) / static_cast<double>(n);
}

}  // namespace text
}  // namespace weber

#include "text/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace weber {
namespace text {

DocId InvertedIndex::AddDocument(std::string_view raw_text) {
  return AddAnalyzedDocument(analyzer_.Analyze(raw_text));
}

DocId InvertedIndex::AddAnalyzedDocument(
    const std::vector<std::string>& terms) {
  finalized_ = false;
  DocId doc = static_cast<DocId>(doc_lengths_.size());
  std::unordered_map<TermId, int> tf;
  for (const auto& t : terms) tf[vocab_.GetOrAdd(t)] += 1;
  for (const auto& [term, freq] : tf) {
    if (static_cast<size_t>(term) >= postings_.size()) {
      postings_.resize(term + 1);
    }
    postings_[term].push_back({doc, freq});
  }
  doc_lengths_.push_back(static_cast<int>(terms.size()));
  return doc;
}

Status InvertedIndex::Finalize() {
  if (doc_lengths_.empty()) {
    return Status::FailedPrecondition("InvertedIndex: empty index");
  }
  const double n = static_cast<double>(doc_lengths_.size());
  idf_.assign(postings_.size(), 0.0);
  for (size_t t = 0; t < postings_.size(); ++t) {
    if (!postings_[t].empty()) {
      idf_[t] = std::log((1.0 + n) / (1.0 + postings_[t].size())) + 1.0;
    }
  }
  // Build per-document lnc vectors (log tf, no idf on documents, cosine
  // normalized) from the postings.
  std::vector<std::vector<SparseVector::Entry>> per_doc(doc_lengths_.size());
  for (size_t t = 0; t < postings_.size(); ++t) {
    for (const Posting& p : postings_[t]) {
      double w = 1.0 + std::log(static_cast<double>(p.term_freq));
      per_doc[p.doc].push_back({static_cast<TermId>(t), w});
    }
  }
  doc_vectors_.clear();
  doc_vectors_.reserve(per_doc.size());
  for (auto& entries : per_doc) {
    doc_vectors_.push_back(
        SparseVector::FromPairs(std::move(entries)).Normalized());
  }
  finalized_ = true;
  return Status::OK();
}

Result<std::vector<SearchHit>> InvertedIndex::Search(std::string_view query,
                                                     int k) const {
  if (!finalized_) {
    return Status::FailedPrecondition("InvertedIndex: call Finalize() first");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive, got ", k);

  // Query vector: ltc (log tf * idf, normalized implicitly via scoring).
  std::unordered_map<TermId, int> qtf;
  for (const auto& t : analyzer_.Analyze(query)) {
    TermId id = vocab_.Lookup(t);
    if (id >= 0) qtf[id] += 1;
  }
  std::vector<double> scores(doc_lengths_.size(), 0.0);
  for (const auto& [term, freq] : qtf) {
    const double qw = (1.0 + std::log(static_cast<double>(freq))) * idf_[term];
    for (const Posting& p : postings_[term]) {
      scores[p.doc] += qw * doc_vectors_[p.doc].GetWeight(term);
    }
  }
  std::vector<SearchHit> hits;
  for (size_t d = 0; d < scores.size(); ++d) {
    if (scores[d] > 0.0) {
      hits.push_back({static_cast<DocId>(d), scores[d]});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (static_cast<int>(hits.size()) > k) hits.resize(k);
  return hits;
}

int InvertedIndex::DocumentFrequency(std::string_view term) const {
  TermId id = vocab_.Lookup(term);
  if (id < 0 || static_cast<size_t>(id) >= postings_.size()) return 0;
  return static_cast<int>(postings_[id].size());
}

}  // namespace text
}  // namespace weber

#include "text/phonetic.h"

#include <cctype>

#include "text/person_name.h"

namespace weber {
namespace text {

namespace {

/// Soundex digit classes; 0 = vowel/ignored (a e i o u y h w).
char SoundexClass(char c) {
  switch (c) {
    case 'b': case 'f': case 'p': case 'v':
      return '1';
    case 'c': case 'g': case 'j': case 'k': case 'q': case 's': case 'x':
    case 'z':
      return '2';
    case 'd': case 't':
      return '3';
    case 'l':
      return '4';
    case 'm': case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

/// Refined-Soundex classes (finer consonant grouping).
char RefinedClass(char c) {
  switch (c) {
    case 'b': case 'p':
      return '1';
    case 'f': case 'v':
      return '2';
    case 'c': case 'k': case 's':
      return '3';
    case 'g': case 'j':
      return '4';
    case 'q': case 'x': case 'z':
      return '5';
    case 'd': case 't':
      return '6';
    case 'l':
      return '7';
    case 'm': case 'n':
      return '8';
    case 'r':
      return '9';
    default:
      return '0';
  }
}

std::string LettersOnlyLower(std::string_view word) {
  std::string out;
  for (char c : word) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

}  // namespace

std::string Soundex(std::string_view word) {
  std::string letters = LettersOnlyLower(word);
  if (letters.empty()) return "";
  std::string code;
  code += static_cast<char>(std::toupper(static_cast<unsigned char>(letters[0])));
  char previous = SoundexClass(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    // h and w do not reset the previous class (classic Soundex rule);
    // vowels do.
    if (c == 'h' || c == 'w') continue;
    char cls = SoundexClass(c);
    if (cls == '0') {
      previous = '0';
      continue;
    }
    if (cls != previous) code += cls;
    previous = cls;
  }
  while (code.size() < 4) code += '0';
  return code;
}

std::string RefinedSoundex(std::string_view word) {
  std::string letters = LettersOnlyLower(word);
  if (letters.empty()) return "";
  std::string code;
  code += static_cast<char>(std::toupper(static_cast<unsigned char>(letters[0])));
  char previous = '\0';
  for (char c : letters) {
    char cls = RefinedClass(c);
    if (cls != previous) code += cls;
    previous = cls;
  }
  return code;
}

double SoundexSimilarity(std::string_view a, std::string_view b) {
  std::string ca = Soundex(a);
  std::string cb = Soundex(b);
  if (ca.empty() || cb.empty()) return 0.0;
  return ca == cb ? 1.0 : 0.0;
}

double PhoneticNameSimilarity(std::string_view a, std::string_view b) {
  PersonName pa = ParsePersonName(a);
  PersonName pb = ParsePersonName(b);
  if (pa.last.empty() || pb.last.empty()) return 0.0;
  if (Soundex(pa.last) != Soundex(pb.last)) return 0.0;
  if (pa.first.empty() || pb.first.empty()) return 0.7;
  if (pa.first.front() == pb.first.front()) return 1.0;
  return 0.2;
}

}  // namespace text
}  // namespace weber

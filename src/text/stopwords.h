// English stopword filtering.

#ifndef WEBER_TEXT_STOPWORDS_H_
#define WEBER_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace weber {
namespace text {

/// A set of stopwords. The default set is a standard English list (the
/// classic SMART-derived list trimmed to the high-frequency core), matching
/// what Lucene's StandardAnalyzer removes plus common Web boilerplate terms.
class StopwordSet {
 public:
  /// Builds the default English stopword set.
  static StopwordSet DefaultEnglish();

  /// Builds an empty set (no filtering).
  static StopwordSet Empty() { return StopwordSet(); }

  /// Builds a set from explicit words (expected lowercase).
  static StopwordSet FromWords(const std::vector<std::string>& words);

  bool Contains(std::string_view word) const {
    return words_.count(std::string(word)) > 0;
  }

  void Add(std::string_view word) { words_.insert(std::string(word)); }

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_STOPWORDS_H_

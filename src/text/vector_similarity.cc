#include "text/vector_similarity.h"

#include <algorithm>
#include <cmath>

namespace weber {
namespace text {

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  double na = a.Norm();
  double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  double cos = a.Dot(b) / (na * nb);
  return std::clamp(cos, 0.0, 1.0);
}

namespace {
thread_local long long g_pearson_dimension_corrections = 0;
}  // namespace

long long PearsonDimensionCorrections() {
  return g_pearson_dimension_corrections;
}

double PearsonSimilarity(const SparseVector& a, const SparseVector& b,
                         int dimension) {
  // A dimension below the union size (a stale vocabulary passed by the
  // caller) would silently produce a covariance around the wrong mean;
  // clamp up to the union size and count the correction so RunHealth can
  // surface it.
  const int union_count = a.UnionCount(b);
  if (dimension < union_count) {
    dimension = union_count;
    ++g_pearson_dimension_corrections;
  }
  if (dimension <= 1) return 0.5;
  const double n = static_cast<double>(dimension);
  const double mean_a = a.Sum() / n;
  const double mean_b = b.Sum() / n;
  // cov = sum((a_i - ma)(b_i - mb)) = dot(a,b) - n*ma*mb  (zeros included)
  const double cov = a.Dot(b) - n * mean_a * mean_b;
  double var_a = -n * mean_a * mean_a;
  for (const auto& e : a.entries()) var_a += e.weight * e.weight;
  double var_b = -n * mean_b * mean_b;
  for (const auto& e : b.entries()) var_b += e.weight * e.weight;
  if (var_a <= 1e-15 || var_b <= 1e-15) return 0.5;
  double r = cov / std::sqrt(var_a * var_b);
  r = std::clamp(r, -1.0, 1.0);
  return (r + 1.0) / 2.0;
}

double ExtendedJaccardSimilarity(const SparseVector& a,
                                 const SparseVector& b) {
  const double dot = a.Dot(b);
  const double na2 = a.Norm() * a.Norm();
  const double nb2 = b.Norm() * b.Norm();
  const double denom = na2 + nb2 - dot;
  if (denom <= 0.0) return 0.0;
  return std::clamp(dot / denom, 0.0, 1.0);
}

double JaccardOverlap(const SparseVector& a, const SparseVector& b) {
  int uni = a.UnionCount(b);
  if (uni == 0) return 0.0;
  return static_cast<double>(a.OverlapCount(b)) / uni;
}

double DiceOverlap(const SparseVector& a, const SparseVector& b) {
  size_t total = a.size() + b.size();
  if (total == 0) return 0.0;
  return 2.0 * a.OverlapCount(b) / static_cast<double>(total);
}

double OverlapCoefficient(const SparseVector& a, const SparseVector& b) {
  size_t m = std::min(a.size(), b.size());
  if (m == 0) return 0.0;
  return static_cast<double>(a.OverlapCount(b)) / static_cast<double>(m);
}

double SaturatingOverlap(const SparseVector& a, const SparseVector& b,
                         double damping) {
  double n = a.OverlapCount(b);
  const double denom = n + damping;
  // With no overlap and zero damping the ratio is 0/0; no shared items
  // means no similarity, not NaN.
  if (denom <= 0.0) return 0.0;
  return n / denom;
}

}  // namespace text
}  // namespace weber

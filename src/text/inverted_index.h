// Inverted index with TF-IDF ranked retrieval — a compact Lucene-like search
// core. The ER pipeline itself compares documents pairwise within blocks, but
// the index powers candidate retrieval in the examples and can serve as a
// blocking accelerator for large collections.

#ifndef WEBER_TEXT_INVERTED_INDEX_H_
#define WEBER_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "text/analyzer.h"
#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace weber {
namespace text {

/// Internal document handle assigned by the index (dense, starting at 0).
using DocId = int32_t;

/// One ranked search hit.
struct SearchHit {
  DocId doc = -1;
  double score = 0.0;
  bool operator==(const SearchHit&) const = default;
};

/// In-memory inverted index over analyzed documents with cosine/TF-IDF
/// ranking (lnc.ltc scheme). Build phase: Add all documents, then Finalize.
/// Query phase: Search / TopK.
class InvertedIndex {
 public:
  explicit InvertedIndex(AnalyzerOptions analyzer_options = {})
      : analyzer_(analyzer_options) {}

  /// Analyzes and indexes one document; returns its DocId.
  DocId AddDocument(std::string_view raw_text);

  /// Indexes a pre-analyzed term list; returns its DocId.
  DocId AddAnalyzedDocument(const std::vector<std::string>& terms);

  /// Computes idf values and document norms. Must be called before queries.
  Status Finalize();

  /// Ranked retrieval of the top `k` documents for a free-text query.
  /// Returns FailedPrecondition if the index is not finalized.
  Result<std::vector<SearchHit>> Search(std::string_view query, int k) const;

  /// Number of indexed documents.
  int num_documents() const { return static_cast<int>(doc_lengths_.size()); }

  /// Number of distinct terms.
  int num_terms() const { return vocab_.size(); }

  /// Document frequency of a term (0 if unknown).
  int DocumentFrequency(std::string_view term) const;

  /// The TF-IDF vector of an indexed document (valid after Finalize).
  const SparseVector& DocumentVector(DocId doc) const {
    return doc_vectors_[doc];
  }

 private:
  struct Posting {
    DocId doc;
    int term_freq;
  };

  Analyzer analyzer_;
  Vocabulary vocab_;
  std::vector<std::vector<Posting>> postings_;  // by TermId
  std::vector<int> doc_lengths_;                // token count per doc
  std::vector<double> idf_;                     // by TermId, after Finalize
  std::vector<SparseVector> doc_vectors_;       // normalized, after Finalize
  bool finalized_ = false;
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_INVERTED_INDEX_H_

// Vocabulary: bidirectional term <-> TermId mapping.

#ifndef WEBER_TEXT_VOCABULARY_H_
#define WEBER_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/sparse_vector.h"

namespace weber {
namespace text {

/// Append-only term dictionary. Ids are dense and start at 0.
class Vocabulary {
 public:
  /// Returns the id for `term`, interning it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term`, or -1 if unknown.
  TermId Lookup(std::string_view term) const;

  /// The term for an id; id must be valid.
  const std::string& term(TermId id) const { return terms_[id]; }

  int size() const { return static_cast<int>(terms_.size()); }

  /// Interns every term in `terms` and returns their ids in order.
  std::vector<TermId> GetOrAddAll(const std::vector<std::string>& terms);

  /// Looks up every term; unknown terms are skipped.
  std::vector<TermId> LookupAll(const std::vector<std::string>& terms) const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_VOCABULARY_H_

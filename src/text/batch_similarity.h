// Batch similarity kernels: the SoA/CSR layout and one-against-many strip
// kernels behind the resolver's compiled hot path (ROADMAP item 1).
//
// The interpreted path walks two SparseVectors per pair: a merge-join dot
// product plus Norm()/Sum() recomputed from scratch for every pair. Here a
// block's vectors are frozen once into contiguous CSR arrays (sorted term
// ids + weights in one arena) with per-vector norms/sums precomputed, and
// one anchor document is scored against a strip of candidates per call.
//
// Bit-exactness guarantee (stronger than the 1e-12 the equivalence sweep
// documents): every kernel reproduces the scalar functions in
// text/vector_similarity.h BIT FOR BIT.
//   * The scalar strip kernel accumulates each candidate's entries in
//     ascending id order against a dense scatter of the anchor — the same
//     addition sequence as SparseVector::Dot's merge join, plus exact-zero
//     additions for non-common ids (an IEEE-754 no-op).
//   * The AVX2 kernel transposes candidates into groups of four and keeps
//     one candidate per SIMD lane, so each lane performs the identical
//     sequential multiply-add sequence; padded tail entries index a
//     guaranteed-zero sentinel slot. No FMA contraction is used (the AVX2
//     translation unit is built with -ffp-contract=off) because fused
//     rounding would diverge from the scalar path.
//   * The composite measures (cosine, saturating overlap, extended Jaccard,
//     Pearson) replicate the exact expression and operand order of their
//     scalar counterparts.
//
// Kernel selection happens once at startup via runtime CPUID dispatch
// (AVX2 when the CPU reports it, scalar otherwise); tests and benchmarks
// can override it with ForceKernelMode.

#ifndef WEBER_TEXT_BATCH_SIMILARITY_H_
#define WEBER_TEXT_BATCH_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "text/sparse_vector.h"

namespace weber {
namespace text {

/// Which strip-kernel implementation runs.
enum class KernelMode : int {
  kAuto = 0,    ///< CPUID-dispatched choice (AVX2 if available, else scalar)
  kScalar = 1,  ///< force the scalar fallback
  kAvx2 = 2,    ///< force AVX2 (only valid when Avx2Available())
};

/// True when this binary was built with AVX2 kernels and the CPU reports
/// AVX2 support.
bool Avx2Available();

/// The mode strips will execute under: the forced mode if one is set, else
/// the CPUID-dispatched default (resolved once, at first use).
KernelMode ActiveKernelMode();

/// Overrides kernel selection process-wide (tests / benchmarks). kAuto
/// restores CPUID dispatch. Forcing kAvx2 without Avx2Available() is
/// ignored and leaves the scalar kernels active.
void ForceKernelMode(KernelMode mode);

/// A block's sparse vectors frozen into contiguous CSR arrays, with the
/// per-vector statistics (entry count, Euclidean norm, weight sum, sum of
/// squared weights) the composite measures need, plus the transposed
/// quad-of-candidates layout the AVX2 kernels consume.
class FrozenVectors {
 public:
  FrozenVectors() = default;

  /// Freezes `vectors[i]` for all i. Null entries freeze as empty vectors.
  static FrozenVectors Freeze(const std::vector<const SparseVector*>& vectors);

  int size() const { return static_cast<int>(counts_.size()); }
  int32_t count(int i) const { return counts_[i]; }
  double norm(int i) const { return norms_[i]; }
  double sum(int i) const { return sums_[i]; }
  double sum_squares(int i) const { return sum_squares_[i]; }
  /// Largest term id across all frozen vectors, or -1 when all are empty.
  int32_t max_id() const { return sentinel_ - 1; }

 private:
  friend class BatchScorer;

  // CSR: entries of vector i live at [offsets_[i], offsets_[i + 1]).
  std::vector<int64_t> offsets_;
  std::vector<int32_t> ids_;
  std::vector<double> weights_;

  // Per-vector statistics, computed with the same sequential loops as
  // SparseVector::Norm / SparseVector::Sum (bit-identical).
  std::vector<int32_t> counts_;
  std::vector<double> norms_;
  std::vector<double> sums_;
  std::vector<double> sum_squares_;

  // Transposed layout for AVX2: vectors are grouped in quads [4g, 4g + 4);
  // within group g, entry rank k stores the four lanes' ids then weights
  // contiguously (ids[4k..4k+3], weights[4k..4k+3]). Vectors shorter than
  // the group maximum are padded with (sentinel_, 0.0) entries; the dense
  // scratch guarantees slot `sentinel_` is zero, so padded lanes accumulate
  // exact zeros.
  std::vector<int64_t> quad_offsets_;  // per group: start rank offset
  std::vector<int32_t> quad_ids_;
  std::vector<double> quad_weights_;

  int32_t sentinel_ = 0;  // max id + 1; also the dense-scratch size - 1
};

/// Scores one anchor vector against strips of candidate vectors from the
/// same FrozenVectors set. Holds the dense scratch (anchor weights scattered
/// by id, plus a presence table — entry weights may legitimately be zero).
/// Not thread-safe; use one scorer per thread.
class BatchScorer {
 public:
  /// The frozen set must outlive the scorer.
  explicit BatchScorer(const FrozenVectors* frozen);

  /// Selects vector `anchor` as the one-against-many side. Clears the
  /// previous anchor's scatter first; cost is O(entries of both anchors).
  void SetAnchor(int anchor);
  int anchor() const { return anchor_; }

  /// out[j - begin] = dot(anchor, j), bit-identical to SparseVector::Dot.
  void Dot(int begin, int end, double* out) const;

  /// out[j - begin] = |ids(anchor) ∩ ids(j)|.
  void OverlapCount(int begin, int end, int32_t* out) const;

  // Composite measures; each is bit-identical to its scalar counterpart in
  // text/vector_similarity.h applied to (anchor, j).
  void Cosine(int begin, int end, double* out) const;
  void SaturatingOverlap(double damping, int begin, int end,
                         double* out) const;
  void ExtendedJaccard(int begin, int end, double* out) const;

  /// Precomputes the per-vector Pearson variance terms for ambient
  /// dimension `dimension`. Pearson(…) requires that every scored pair use
  /// this same ambient dimension — the caller must verify eligibility
  /// (shared vocabulary dimension ≥ every pairwise union size) before
  /// batching Pearson. Idempotent per dimension.
  void PreparePearson(int dimension);

  /// out[j - begin] = PearsonSimilarity(anchor, j, dimension) for the
  /// dimension passed to PreparePearson. Must call PreparePearson first.
  void Pearson(int begin, int end, double* out) const;

 private:
  void DotQuadRange(int begin, int end, double* out) const;

  const FrozenVectors* frozen_;
  std::vector<double> dense_;      // anchor weight by id; slot sentinel_ = 0
  std::vector<int32_t> present_;   // 1 iff the anchor has this id
  int anchor_ = -1;

  // Whole-quad landing zones for the AVX2 range kernels; the requested
  // [begin, end) window is copied out after one kernel call per strip.
  mutable std::vector<double> quad_scratch_;
  mutable std::vector<int32_t> overlap_scratch_;

  int pearson_dim_ = -1;
  std::vector<double> pearson_means_;  // sum(i) / dim
  std::vector<double> pearson_vars_;   // -dim*mean² + Σw² (scalar loop order)
};

}  // namespace text
}  // namespace weber

#endif  // WEBER_TEXT_BATCH_SIMILARITY_H_

#include "text/vocabulary.h"

namespace weber {
namespace text {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? -1 : it->second;
}

std::vector<TermId> Vocabulary::GetOrAddAll(
    const std::vector<std::string>& terms) {
  std::vector<TermId> ids;
  ids.reserve(terms.size());
  for (const auto& t : terms) ids.push_back(GetOrAdd(t));
  return ids;
}

std::vector<TermId> Vocabulary::LookupAll(
    const std::vector<std::string>& terms) const {
  std::vector<TermId> ids;
  ids.reserve(terms.size());
  for (const auto& t : terms) {
    TermId id = Lookup(t);
    if (id >= 0) ids.push_back(id);
  }
  return ids;
}

}  // namespace text
}  // namespace weber

#include "eval/significance.h"

#include <algorithm>

namespace weber {
namespace eval {

Result<BootstrapResult> PairedBootstrap(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        const BootstrapOptions& options) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("PairedBootstrap: size mismatch (",
                                   a.size(), " vs ", b.size(), ")");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument(
        "PairedBootstrap: need at least 2 paired observations");
  }
  const int n = static_cast<int>(a.size());
  std::vector<double> diff(n);
  double mean = 0.0;
  for (int i = 0; i < n; ++i) {
    diff[i] = a[i] - b[i];
    mean += diff[i];
  }
  mean /= n;

  Rng rng(options.seed);
  const int resamples = std::max(100, options.resamples);
  std::vector<double> means;
  means.reserve(resamples);
  int not_better = 0;
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      sum += diff[rng.UniformUint64(static_cast<uint64_t>(n))];
    }
    double m = sum / n;
    means.push_back(m);
    if (m <= 0.0) ++not_better;
  }
  std::sort(means.begin(), means.end());

  BootstrapResult result;
  result.mean_difference = mean;
  result.p_value = static_cast<double>(not_better) / resamples;
  result.ci_low = means[static_cast<size_t>(0.025 * (resamples - 1))];
  result.ci_high = means[static_cast<size_t>(0.975 * (resamples - 1))];
  return result;
}

}  // namespace eval
}  // namespace weber

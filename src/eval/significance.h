// Paired bootstrap significance testing for comparing two entity resolution
// configurations over the same blocks. The paper reports 5-run averages
// without significance; this module adds the standard paired-bootstrap test
// so "C10 > I10" can be stated with a p-value.

#ifndef WEBER_EVAL_SIGNIFICANCE_H_
#define WEBER_EVAL_SIGNIFICANCE_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace weber {
namespace eval {

struct BootstrapOptions {
  int resamples = 10000;
  uint64_t seed = 0xB007ULL;
};

struct BootstrapResult {
  /// Mean of a - b over the paired observations.
  double mean_difference = 0.0;
  /// Fraction of bootstrap resamples where mean(a) <= mean(b): the
  /// one-sided p-value for "a is better than b".
  double p_value = 1.0;
  /// 95% percentile bootstrap confidence interval of the difference.
  double ci_low = 0.0;
  double ci_high = 0.0;
};

/// Paired bootstrap over per-block scores. `a` and `b` must be the same
/// length (one score per block, e.g. per-block Fp of two configurations).
/// Returns InvalidArgument on size mismatch or fewer than 2 observations.
Result<BootstrapResult> PairedBootstrap(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        const BootstrapOptions& options = {});

}  // namespace eval
}  // namespace weber

#endif  // WEBER_EVAL_SIGNIFICANCE_H_

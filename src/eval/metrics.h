// Clustering quality metrics used in the paper's evaluation (Section V-A3):
// pairwise precision / recall / F-measure, purity / inverse purity and
// their harmonic mean (the Fp-measure), the Rand index, plus B-cubed
// precision / recall / F as an extra diagnostic.

#ifndef WEBER_EVAL_METRICS_H_
#define WEBER_EVAL_METRICS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/clustering.h"

namespace weber {
namespace eval {

/// All metrics for one (truth, prediction) pair.
struct MetricReport {
  // Pairwise counts over all unordered document pairs.
  long long true_positives = 0;   ///< same cluster in both
  long long false_positives = 0;  ///< same in prediction, split in truth
  long long false_negatives = 0;  ///< split in prediction, same in truth
  long long true_negatives = 0;   ///< split in both

  double precision = 0.0;  ///< pairwise
  double recall = 0.0;     ///< pairwise
  double f_measure = 0.0;  ///< pairwise F1

  double purity = 0.0;
  double inverse_purity = 0.0;
  double fp_measure = 0.0;  ///< harmonic mean of purity and inverse purity

  double rand_index = 0.0;

  double bcubed_precision = 0.0;
  double bcubed_recall = 0.0;
  double bcubed_f = 0.0;
};

/// Computes every metric. Returns InvalidArgument when the two clusterings
/// cover different numbers of items or are empty.
Result<MetricReport> Evaluate(const graph::Clustering& truth,
                              const graph::Clustering& predicted);

/// Element-wise arithmetic mean of reports (macro-average across blocks or
/// runs). Returns InvalidArgument on empty input. Pair counts are summed.
Result<MetricReport> MeanReport(const std::vector<MetricReport>& reports);

/// Convenience accessors for the three headline metrics by name
/// ("Fp", "F", "Rand"); used by the benchmark tables.
double MetricByName(const MetricReport& report, const std::string& name);

/// Pairwise quality of a clean-clean matching against a ground-truth
/// partial bijection. Unlike MetricReport this scores *links*, not
/// co-clustering: a predicted (left, right) pair is a true positive iff it
/// is in the truth, and every truth pair the matcher failed to produce is
/// a false negative — an unmatched ground-truth pair is a miss, not a
/// neutral.
struct MatchingReport {
  long long true_positives = 0;   ///< predicted pairs present in truth
  long long false_positives = 0;  ///< predicted pairs absent from truth
  long long false_negatives = 0;  ///< truth pairs the prediction missed

  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Scores `predicted` (left, right) document pairs against the `truth`
/// partial bijection. Duplicate pairs on either side are collapsed; the
/// degenerate empty-side conventions match Evaluate (no predictions =>
/// precision 1, no truth => recall 1).
MatchingReport EvaluateMatching(
    const std::vector<std::pair<int, int>>& truth,
    const std::vector<std::pair<int, int>>& predicted);

/// Micro-average: sums the pair counts of `reports` and recomputes the
/// rates, so large blocks weigh proportionally to their pair counts.
MatchingReport SumMatchingReports(const std::vector<MatchingReport>& reports);

}  // namespace eval
}  // namespace weber

#endif  // WEBER_EVAL_METRICS_H_

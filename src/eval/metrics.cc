#include "eval/metrics.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace weber {
namespace eval {

namespace {

double SafeDiv(double num, double den) { return den > 0.0 ? num / den : 0.0; }

double Harmonic(double a, double b) {
  return (a + b) > 0.0 ? 2.0 * a * b / (a + b) : 0.0;
}

}  // namespace

Result<MetricReport> Evaluate(const graph::Clustering& truth,
                              const graph::Clustering& predicted) {
  const int n = truth.num_items();
  if (n == 0) return Status::InvalidArgument("Evaluate: empty clustering");
  if (predicted.num_items() != n) {
    return Status::InvalidArgument("Evaluate: item count mismatch (",
                                   n, " vs ", predicted.num_items(), ")");
  }

  MetricReport r;

  // ---- Pairwise counts via the contingency table (O(n + K*L)). ----
  // overlap[t][p] = number of items with truth label t and predicted p.
  std::vector<std::unordered_map<int, long long>> overlap(truth.num_clusters());
  std::vector<long long> truth_sizes(truth.num_clusters(), 0);
  std::vector<long long> pred_sizes(predicted.num_clusters(), 0);
  for (int i = 0; i < n; ++i) {
    overlap[truth.label(i)][predicted.label(i)] += 1;
    truth_sizes[truth.label(i)] += 1;
    pred_sizes[predicted.label(i)] += 1;
  }
  long long same_both = 0;  // pairs co-clustered in both
  for (const auto& row : overlap) {
    for (const auto& [p, c] : row) same_both += c * (c - 1) / 2;
  }
  const long long same_truth = truth.NumIntraPairs();
  const long long same_pred = predicted.NumIntraPairs();
  const long long total_pairs = static_cast<long long>(n) * (n - 1) / 2;

  r.true_positives = same_both;
  r.false_positives = same_pred - same_both;
  r.false_negatives = same_truth - same_both;
  r.true_negatives = total_pairs - same_pred - same_truth + same_both;

  r.precision = SafeDiv(static_cast<double>(r.true_positives),
                        static_cast<double>(same_pred));
  r.recall = SafeDiv(static_cast<double>(r.true_positives),
                     static_cast<double>(same_truth));
  // Degenerate blocks (all singletons in truth or prediction) count as
  // perfect on the empty side, matching standard WePS scoring practice.
  if (same_pred == 0) r.precision = 1.0;
  if (same_truth == 0) r.recall = 1.0;
  r.f_measure = Harmonic(r.precision, r.recall);

  r.rand_index = SafeDiv(
      static_cast<double>(r.true_positives + r.true_negatives),
      static_cast<double>(total_pairs > 0 ? total_pairs : 1));
  if (total_pairs == 0) r.rand_index = 1.0;

  // ---- Purity / inverse purity ----
  std::vector<long long> pred_max(predicted.num_clusters(), 0);
  std::vector<long long> truth_max(truth.num_clusters(), 0);
  for (int t = 0; t < truth.num_clusters(); ++t) {
    for (const auto& [p, c] : overlap[t]) {
      pred_max[p] = std::max(pred_max[p], c);
      truth_max[t] = std::max(truth_max[t], c);
    }
  }
  long long purity_hits = 0;
  for (long long m : pred_max) purity_hits += m;
  long long inverse_hits = 0;
  for (long long m : truth_max) inverse_hits += m;
  r.purity = static_cast<double>(purity_hits) / n;
  r.inverse_purity = static_cast<double>(inverse_hits) / n;
  r.fp_measure = Harmonic(r.purity, r.inverse_purity);

  // ---- B-cubed ----
  // For each item i: P_i = |C(i) ∩ T(i)| / |C(i)|, R_i = same / |T(i)|,
  // computable from the contingency table: the item's overlap cell.
  double bp = 0.0, br = 0.0;
  for (int i = 0; i < n; ++i) {
    long long cell = overlap[truth.label(i)][predicted.label(i)];
    bp += static_cast<double>(cell) / pred_sizes[predicted.label(i)];
    br += static_cast<double>(cell) / truth_sizes[truth.label(i)];
  }
  r.bcubed_precision = bp / n;
  r.bcubed_recall = br / n;
  r.bcubed_f = Harmonic(r.bcubed_precision, r.bcubed_recall);

  return r;
}

Result<MetricReport> MeanReport(const std::vector<MetricReport>& reports) {
  if (reports.empty()) {
    return Status::InvalidArgument("MeanReport: no reports");
  }
  MetricReport mean;
  for (const MetricReport& r : reports) {
    mean.true_positives += r.true_positives;
    mean.false_positives += r.false_positives;
    mean.false_negatives += r.false_negatives;
    mean.true_negatives += r.true_negatives;
    mean.precision += r.precision;
    mean.recall += r.recall;
    mean.f_measure += r.f_measure;
    mean.purity += r.purity;
    mean.inverse_purity += r.inverse_purity;
    mean.fp_measure += r.fp_measure;
    mean.rand_index += r.rand_index;
    mean.bcubed_precision += r.bcubed_precision;
    mean.bcubed_recall += r.bcubed_recall;
    mean.bcubed_f += r.bcubed_f;
  }
  const double k = static_cast<double>(reports.size());
  mean.precision /= k;
  mean.recall /= k;
  mean.f_measure /= k;
  mean.purity /= k;
  mean.inverse_purity /= k;
  mean.fp_measure /= k;
  mean.rand_index /= k;
  mean.bcubed_precision /= k;
  mean.bcubed_recall /= k;
  mean.bcubed_f /= k;
  return mean;
}

double MetricByName(const MetricReport& report, const std::string& name) {
  if (name == "Fp" || name == "fp") return report.fp_measure;
  if (name == "F" || name == "f") return report.f_measure;
  if (name == "Rand" || name == "rand") return report.rand_index;
  if (name == "P" || name == "precision") return report.precision;
  if (name == "R" || name == "recall") return report.recall;
  if (name == "purity") return report.purity;
  if (name == "inverse_purity") return report.inverse_purity;
  if (name == "B3F" || name == "bcubed_f") return report.bcubed_f;
  return 0.0;
}

namespace {

void FinishMatchingRates(MatchingReport* r) {
  const long long predicted = r->true_positives + r->false_positives;
  const long long truth = r->true_positives + r->false_negatives;
  r->precision = predicted > 0
                     ? static_cast<double>(r->true_positives) / predicted
                     : 1.0;
  r->recall =
      truth > 0 ? static_cast<double>(r->true_positives) / truth : 1.0;
  r->f1 = Harmonic(r->precision, r->recall);
}

}  // namespace

MatchingReport EvaluateMatching(
    const std::vector<std::pair<int, int>>& truth,
    const std::vector<std::pair<int, int>>& predicted) {
  const std::set<std::pair<int, int>> truth_set(truth.begin(), truth.end());
  const std::set<std::pair<int, int>> pred_set(predicted.begin(),
                                               predicted.end());
  MatchingReport r;
  for (const auto& pair : pred_set) {
    if (truth_set.count(pair)) {
      ++r.true_positives;
    } else {
      ++r.false_positives;
    }
  }
  r.false_negatives =
      static_cast<long long>(truth_set.size()) - r.true_positives;
  FinishMatchingRates(&r);
  return r;
}

MatchingReport SumMatchingReports(const std::vector<MatchingReport>& reports) {
  MatchingReport sum;
  for (const MatchingReport& r : reports) {
    sum.true_positives += r.true_positives;
    sum.false_positives += r.false_positives;
    sum.false_negatives += r.false_negatives;
  }
  FinishMatchingRates(&sum);
  return sum;
}

}  // namespace eval
}  // namespace weber

// Probability calibration metrics for link-probability estimates. The
// paper treats per-region accuracies as "estimations of the probability of
// a link" (Section IV-B); this module measures how good those estimates
// are as probabilities: Brier score, log loss, expected calibration error,
// and a reliability table.

#ifndef WEBER_EVAL_CALIBRATION_H_
#define WEBER_EVAL_CALIBRATION_H_

#include <vector>

#include "common/result.h"

namespace weber {
namespace eval {

/// One predicted link probability with its outcome.
struct LabeledProbability {
  double probability = 0.0;
  bool outcome = false;
};

/// One reliability-diagram bin.
struct ReliabilityBin {
  double mean_predicted = 0.0;  ///< average predicted probability in the bin
  double observed_rate = 0.0;   ///< empirical positive rate in the bin
  int count = 0;
};

struct CalibrationReport {
  /// Mean squared error of the probabilities (lower is better; 0.25 is the
  /// score of always predicting 0.5).
  double brier_score = 0.0;
  /// Negative mean log-likelihood (probabilities clamped to [1e-6, 1-1e-6]).
  double log_loss = 0.0;
  /// Expected calibration error: count-weighted mean |predicted - observed|
  /// over the bins.
  double expected_calibration_error = 0.0;
  /// Equal-width probability bins with at least one sample.
  std::vector<ReliabilityBin> reliability;
};

/// Computes all calibration metrics. Returns InvalidArgument for an empty
/// sample or bins < 1.
Result<CalibrationReport> EvaluateCalibration(
    const std::vector<LabeledProbability>& predictions, int bins = 10);

}  // namespace eval
}  // namespace weber

#endif  // WEBER_EVAL_CALIBRATION_H_

#include "eval/calibration.h"

#include <algorithm>
#include <cmath>

namespace weber {
namespace eval {

Result<CalibrationReport> EvaluateCalibration(
    const std::vector<LabeledProbability>& predictions, int bins) {
  if (predictions.empty()) {
    return Status::InvalidArgument("EvaluateCalibration: empty sample");
  }
  if (bins < 1) {
    return Status::InvalidArgument("EvaluateCalibration: bins must be >= 1");
  }
  CalibrationReport report;

  std::vector<double> sum_pred(bins, 0.0);
  std::vector<int> positives(bins, 0);
  std::vector<int> counts(bins, 0);

  const double n = static_cast<double>(predictions.size());
  for (const LabeledProbability& p : predictions) {
    const double prob = std::clamp(p.probability, 0.0, 1.0);
    const double y = p.outcome ? 1.0 : 0.0;
    report.brier_score += (prob - y) * (prob - y);
    const double safe = std::clamp(prob, 1e-6, 1.0 - 1e-6);
    report.log_loss -= y * std::log(safe) + (1.0 - y) * std::log(1.0 - safe);

    int bin = std::min(bins - 1, static_cast<int>(prob * bins));
    sum_pred[bin] += prob;
    positives[bin] += p.outcome ? 1 : 0;
    counts[bin] += 1;
  }
  report.brier_score /= n;
  report.log_loss /= n;

  for (int b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    ReliabilityBin bin;
    bin.count = counts[b];
    bin.mean_predicted = sum_pred[b] / counts[b];
    bin.observed_rate = static_cast<double>(positives[b]) / counts[b];
    report.expected_calibration_error +=
        (counts[b] / n) * std::fabs(bin.mean_predicted - bin.observed_rate);
    report.reliability.push_back(bin);
  }
  return report;
}

}  // namespace eval
}  // namespace weber

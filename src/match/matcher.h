// weber::match — bipartite matching for clean-clean entity resolution.
//
// The paper's workload is dirty ER: one collection, partitioned into
// entities. Clean-clean ER links two collections that are each internally
// duplicate-free (e.g. two directories crawled from different sites), so
// the output is not a clustering but a partial one-to-one mapping between
// the collections. This module consumes a dense left-by-right score matrix
// (the rectangular sibling of graph::SimilarityMatrix) and produces that
// mapping under a selectable constraint regime:
//
//   * threshold  — every edge at or above the threshold; many-to-many.
//     The baseline every pairwise classifier gives for free, and the
//     precision floor the one-to-one matchers improve on.
//   * greedy     — best-first: edges sorted by score descending, taken
//     while both endpoints are free. One-to-one, O(E log E).
//   * optimal    — maximum-weight one-to-one assignment (Hungarian
//     algorithm on the reduced weights max(0, score - threshold), so
//     leaving a pair unmatched is always an option). Above a configurable
//     size cutoff it falls back to greedy rather than paying O(n^3).
//
// Independent of the matcher, symmetric-best-match filtering (Gemmell et
// al., arXiv 1108.6016) can be applied as an extra constraint: keep only
// pairs where each side is the other's single best candidate. It trades
// recall for precision and composes with any matcher above.

#ifndef WEBER_MATCH_MATCHER_H_
#define WEBER_MATCH_MATCHER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace weber {
namespace match {

/// Dense rectangular score matrix: rows are the left collection's
/// documents, columns the right collection's. Scores are similarities in
/// [0, 1] (not distances).
class ScoreMatrix {
 public:
  ScoreMatrix() = default;
  ScoreMatrix(int rows, int cols, double initial = 0.0)
      : rows_(rows), cols_(cols),
        values_(static_cast<size_t>(rows) * static_cast<size_t>(cols),
                initial) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double at(int row, int col) const {
    return values_[static_cast<size_t>(row) * cols_ + col];
  }
  void set(int row, int col, double value) {
    values_[static_cast<size_t>(row) * cols_ + col] = value;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> values_;
};

/// One matched edge.
struct MatchedPair {
  int left = -1;
  int right = -1;
  double score = 0.0;
};

/// A matcher's output. Pairs are sorted by (left, right) so equal matchings
/// compare equal and test output is stable.
struct Matching {
  std::vector<MatchedPair> pairs;
  /// Sum of the matched pairs' scores.
  double total_score = 0.0;

  /// Right index assigned to each left document, -1 for unmatched. Only
  /// meaningful for one-to-one matchings (the last pair wins otherwise).
  std::vector<int> LeftAssignment(int rows) const;
};

struct MatcherOptions {
  /// Edges below this score do not exist for any matcher.
  double threshold = 0.5;
  /// Largest max(rows, cols) the optimal matcher solves exactly; bigger
  /// problems fall back to greedy (the Hungarian algorithm is O(n^3)).
  int optimal_size_cutoff = 512;
  /// Apply symmetric-best-match filtering to the matcher's output: keep
  /// only pairs where the right document is the left's best candidate AND
  /// the left is the right's best (ties broken toward the lowest index).
  bool symmetric_best = false;
};

/// Interface every bipartite matcher implements. Implementations are
/// stateless after construction and thread-compatible.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Identifier used in tables and JSON, e.g. "greedy".
  virtual std::string_view name() const = 0;

  virtual Matching Match(const ScoreMatrix& scores) const = 0;
};

std::unique_ptr<Matcher> MakeThresholdMatcher(MatcherOptions options = {});
std::unique_ptr<Matcher> MakeGreedyMatcher(MatcherOptions options = {});
std::unique_ptr<Matcher> MakeOptimalMatcher(MatcherOptions options = {});

/// Matcher by kind name: "threshold" | "greedy" | "optimal". Returns
/// InvalidArgument for an unknown kind.
Result<std::unique_ptr<Matcher>> MakeMatcher(const std::string& kind,
                                             MatcherOptions options = {});

/// Keeps only the reciprocal-best pairs of `input`: pairs (l, r) where r is
/// the highest-scoring column of row l and l the highest-scoring row of
/// column r (ties toward the lowest index). Exposed for direct use and
/// tests; matchers apply it via MatcherOptions::symmetric_best.
Matching FilterSymmetricBest(const ScoreMatrix& scores, const Matching& input);

/// Maximum-weight one-to-one assignment on weights max(0, score -
/// threshold) via the Hungarian algorithm (potentials formulation,
/// O(n^3)). Pairs whose reduced weight is zero are left unmatched. Exposed
/// for tests; MakeOptimalMatcher wraps it with the size-cutoff fallback.
Matching SolveOptimalAssignment(const ScoreMatrix& scores, double threshold);

}  // namespace match
}  // namespace weber

#endif  // WEBER_MATCH_MATCHER_H_
